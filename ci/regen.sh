#!/usr/bin/env bash
# Regenerate every checked-in deterministic baseline in one command:
#
#   ci/smoke-counters.txt   probe/span/series counters of the smoke run
#   BENCH_smoke.json        smoke-run headline numbers (saturn-bench-smoke/1)
#   BENCH_engine.json       per-tier engine speed (saturn-bench-engine/1)
#   BENCH_shootout.json     per-system visibility + metadata bytes/op
#                           (saturn-bench-shootout/1)
#
# Run this after any change that legitimately shifts the gated numbers
# (new instrumentation, different event batching, a workload change) and
# commit the diff together with the change that caused it — the diff IS
# the reviewable statement of what moved.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin bench

dune exec bin/saturn_cli.exe -- obs --counters-out ci/smoke-counters.txt > /dev/null
dune exec bench/main.exe -- smoke --bench-out BENCH_smoke.json > /dev/null
dune exec bench/main.exe -- engine --out BENCH_engine.json
dune exec bench/main.exe -- shootout --out BENCH_shootout.json > /dev/null

echo
echo "regenerated baselines:"
git --no-pager diff --stat -- ci/smoke-counters.txt BENCH_smoke.json BENCH_engine.json BENCH_shootout.json
