#!/usr/bin/env bash
# Regenerate every checked-in deterministic baseline in one command:
#
#   ci/smoke-counters.txt   probe/span/series counters of the smoke run
#   ci/lint-waivers.txt     saturn-lint waiver inventory (the ratchet)
#   BENCH_smoke.json        smoke-run headline numbers (saturn-bench-smoke/1)
#   BENCH_engine.json       per-tier engine speed (saturn-bench-engine/1)
#   BENCH_shootout.json     per-system visibility + metadata bytes/op
#                           (saturn-bench-shootout/1)
#
# Run this after any change that legitimately shifts the gated numbers
# (new instrumentation, different event batching, a workload change) and
# commit the diff together with the change that caused it — the diff IS
# the reviewable statement of what moved.
set -euo pipefail
cd "$(dirname "$0")/.."

# --lint-baseline: refresh only the lint waiver inventory. Adding or
# removing a (* lint: allow ... *) comment fails `dune build @lint` until
# this file moves with it — the diff is the reviewable statement that the
# waiver set changed on purpose.
if [[ "${1:-}" == "--lint-baseline" ]]; then
  dune build bin/saturn_lint.exe
  dune exec bin/saturn_lint.exe -- --root . --waivers-out ci/lint-waivers.txt lib bin > /dev/null
  echo "regenerated ci/lint-waivers.txt:"
  git --no-pager diff --stat -- ci/lint-waivers.txt
  exit 0
fi

# Each baseline regenerates under step(), so a failure names the baseline
# left stale instead of dying on an anonymous non-zero exit.
step() {
  local baseline=$1
  shift
  if ! "$@"; then
    echo >&2
    echo "regen.sh: FAILED regenerating $baseline" >&2
    echo "hint: the checked-in $baseline is now STALE — fix the failure above" >&2
    echo "      and re-run ci/regen.sh before committing, or CI's gate on" >&2
    echo "      $baseline will compare against the old numbers." >&2
    exit 1
  fi
}

step "(build)" dune build bin bench

step ci/smoke-counters.txt \
  dune exec bin/saturn_cli.exe -- obs --counters-out ci/smoke-counters.txt > /dev/null
step BENCH_smoke.json \
  dune exec bench/main.exe -- smoke --bench-out BENCH_smoke.json > /dev/null
step BENCH_engine.json \
  dune exec bench/main.exe -- engine --out BENCH_engine.json
step BENCH_shootout.json \
  dune exec bench/main.exe -- shootout --out BENCH_shootout.json > /dev/null
step ci/lint-waivers.txt \
  dune exec bin/saturn_lint.exe -- --root . --waivers-out ci/lint-waivers.txt lib bin > /dev/null

echo
echo "regenerated baselines:"
git --no-pager diff --stat -- ci/smoke-counters.txt ci/lint-waivers.txt BENCH_smoke.json BENCH_engine.json BENCH_shootout.json
