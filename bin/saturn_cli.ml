(* saturn-cli: drive the Saturn reproduction from the command line.

   The subcommand surface is single-sourced in Harness.Cli_spec: every
   Cmd.info doc below pulls its summary from there, the top-level help
   renders Cli_spec.usage, and main asserts the registered command names
   equal the spec before dispatch. *)

open Cmdliner

let region_conv =
  let parse s =
    match Sim.Topology.site_of_name Sim.Ec2.topology (String.uppercase_ascii s) with
    | site -> Ok site
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown region %S (use NV NC O I F T S)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Sim.Topology.name Sim.Ec2.topology s))

(* ---- matrix ---------------------------------------------------------------- *)

let matrix_cmd =
  let doc = Harness.Cli_spec.summary "matrix" in
  Cmd.v (Cmd.info "matrix" ~doc)
    Term.(
      const (fun () ->
          Sim.Topology.pp_matrix Format.std_formatter Sim.Ec2.topology;
          Format.print_flush ())
      $ const ())

(* ---- plan ------------------------------------------------------------------ *)

let plan regions seed =
  let dc_sites =
    match regions with [] -> Array.of_list (Sim.Ec2.first_n 7) | rs -> Array.of_list rs
  in
  let n = Array.length dc_sites in
  if n < 2 then (prerr_endline "need at least 2 regions"; exit 2);
  let name i = Sim.Topology.name Sim.Ec2.topology dc_sites.(i) in
  let bulk i j = Sim.Topology.latency Sim.Ec2.topology dc_sites.(i) dc_sites.(j) in
  let problem =
    {
      Saturn.Config_solver.topo = Sim.Ec2.topology;
      dc_sites = Array.copy dc_sites;
      candidates = Saturn.Config_solver.default_candidates ~dc_sites;
      crit = Saturn.Mismatch.uniform ~n_dcs:n ~bulk;
    }
  in
  let config, score = Saturn.Config_gen.find_configuration ~seed problem in
  Format.printf "%a@.weighted mismatch: %.1f ms@.@." Saturn.Config.pp config score;
  let table =
    Stats.Table.create ~title:"metadata vs bulk (ms)" ~columns:[ "pair"; "metadata"; "bulk"; "gap" ]
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let meta =
          Sim.Time.to_ms_float
            (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:i ~dst_dc:j)
        in
        let b = Sim.Time.to_ms_float (bulk i j) in
        Stats.Table.add_row table
          [ Printf.sprintf "%s->%s" (name i) (name j); Printf.sprintf "%.0f" meta;
            Printf.sprintf "%.0f" b; Printf.sprintf "%+.0f" (meta -. b) ]
      end
    done
  done;
  Stats.Table.print table

let plan_cmd =
  let doc = Harness.Cli_spec.summary "plan" in
  let regions =
    Arg.(value & pos_all region_conv [] & info [] ~docv:"REGION" ~doc:"Regions (NV NC O I F T S).")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Deterministic search seed.") in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const plan $ regions $ seed)

(* ---- bench ------------------------------------------------------------------ *)

let system_conv =
  Arg.enum
    [
      ("saturn", Harness.Scenario.Saturn_sys);
      ("saturn-peer", Harness.Scenario.Saturn_peer);
      ("eventual", Harness.Scenario.Eventual);
      ("gentlerain", Harness.Scenario.Gentlerain);
      ("cure", Harness.Scenario.Cure);
      ("eunomia", Harness.Scenario.Eunomia);
      ("okapi", Harness.Scenario.Okapi);
    ]

let correlation_conv =
  Arg.enum
    [
      ("exponential", Workload.Keyspace.Exponential);
      ("proportional", Workload.Keyspace.Proportional);
      ("uniform", Workload.Keyspace.Uniform 4);
      ("full", Workload.Keyspace.Full);
    ]

let bench systems n_dcs correlation value_size read_pct remote_pct clients measure_s =
  let setup =
    { Harness.Scenario.default_setup with
      Harness.Scenario.n_dcs;
      correlation;
      value_size;
      read_ratio = float_of_int read_pct /. 100.;
      remote_read_ratio = float_of_int remote_pct /. 100.;
      clients_per_dc = clients;
      measure = Sim.Time.of_sec measure_s;
    }
  in
  let systems = match systems with [] -> Harness.Scenario.all_systems | s -> s in
  let table =
    Stats.Table.create ~title:"results"
      ~columns:[ "system"; "ops/s"; "visibility ms"; "extra ms"; "p90 ms" ]
  in
  List.iter
    (fun sys ->
      let o = Harness.Scenario.run sys setup in
      Stats.Table.add_row table
        [
          Harness.Scenario.system_name sys;
          Printf.sprintf "%.0f" o.Harness.Scenario.throughput;
          Printf.sprintf "%.1f" o.Harness.Scenario.mean_visibility_ms;
          Printf.sprintf "%.1f" o.Harness.Scenario.extra_visibility_ms;
          Printf.sprintf "%.1f" o.Harness.Scenario.p90_visibility_ms;
        ])
    systems;
  Stats.Table.print table

let bench_cmd =
  let doc = Harness.Cli_spec.summary "bench" in
  let systems =
    Arg.(value & opt_all system_conv [] & info [ "s"; "system" ] ~doc:"System(s) to run; default all.")
  in
  let n_dcs = Arg.(value & opt int 7 & info [ "dcs" ] ~doc:"Number of datacenters (3-7).") in
  let correlation =
    Arg.(value & opt correlation_conv Workload.Keyspace.Exponential
         & info [ "correlation" ] ~doc:"exponential|proportional|uniform|full")
  in
  let value_size = Arg.(value & opt int 2 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  let read_pct = Arg.(value & opt int 90 & info [ "reads" ] ~doc:"Read percentage.") in
  let remote_pct = Arg.(value & opt int 0 & info [ "remote-reads" ] ~doc:"Remote-read percentage of reads.") in
  let clients = Arg.(value & opt int 40 & info [ "clients" ] ~doc:"Clients per datacenter.") in
  let measure = Arg.(value & opt float 1.0 & info [ "measure" ] ~doc:"Measured window, simulated seconds.") in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const bench $ systems $ n_dcs $ correlation $ value_size $ read_pct $ remote_pct $ clients $ measure)

(* ---- social ------------------------------------------------------------------ *)

let social systems users max_replicas =
  let setup =
    { Harness.Scenario.default_social_setup with
      Harness.Scenario.n_users = users;
      max_replicas;
    }
  in
  let systems = match systems with [] -> Harness.Scenario.all_systems | s -> s in
  let table =
    Stats.Table.create ~title:"Facebook-like benchmark"
      ~columns:[ "system"; "ops/s"; "visibility ms"; "extra ms" ]
  in
  List.iter
    (fun sys ->
      let o = Harness.Scenario.run_social sys setup in
      Stats.Table.add_row table
        [
          Harness.Scenario.system_name sys;
          Printf.sprintf "%.0f" o.Harness.Scenario.throughput;
          Printf.sprintf "%.1f" o.Harness.Scenario.mean_visibility_ms;
          Printf.sprintf "%.1f" o.Harness.Scenario.extra_visibility_ms;
        ])
    systems;
  Stats.Table.print table

let social_cmd =
  let doc = Harness.Cli_spec.summary "social" in
  let systems =
    Arg.(value & opt_all system_conv [] & info [ "s"; "system" ] ~doc:"System(s) to run; default all.")
  in
  let users = Arg.(value & opt int 3500 & info [ "users" ] ~doc:"Users in the social graph.") in
  let max_replicas = Arg.(value & opt int 5 & info [ "max-replicas" ] ~doc:"Replication cap per user.") in
  Cmd.v (Cmd.info "social" ~doc) Term.(const social $ systems $ users $ max_replicas)

(* ---- trace ------------------------------------------------------------------- *)

let trace_record path n_dcs ops seed =
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rng = Sim.Rng.create ~seed in
  let n_keys = 100 * n_dcs in
  let rmap =
    Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites ~n_keys Workload.Keyspace.Exponential
  in
  let w =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys; seed }
      ~rmap ~topo:Sim.Ec2.topology ~dc_sites
  in
  let clients = List.init (3 * n_dcs) Fun.id in
  let t =
    Workload.Trace.record ~clients
      ~next:(fun ~client -> Workload.Synthetic.next w ~dc:(client mod n_dcs))
      ~ops_per_client:ops
  in
  Workload.Trace.save t ~path;
  Printf.printf "recorded %d ops for %d clients over %d datacenters to %s\n"
    (ops * List.length clients) (List.length clients) n_dcs path

let trace_replay path n_dcs sys =
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let trace = Workload.Trace.load ~path in
  let n_keys = 100 * n_dcs in
  let rng = Sim.Rng.create ~seed:1 in
  let rmap =
    Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites ~n_keys Workload.Keyspace.Exponential
  in
  let engine = Sim.Engine.create () in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  Harness.Metrics.set_window metrics ~start_at:Sim.Time.zero ~end_at:Sim.Time.infinity;
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let api =
    match sys with
    | Harness.Scenario.Saturn_sys -> fst (Harness.Build.saturn engine spec metrics)
    | Harness.Scenario.Saturn_peer -> fst (Harness.Build.saturn_peer engine spec metrics)
    | Harness.Scenario.Eventual -> Harness.Build.eventual engine spec metrics
    | Harness.Scenario.Gentlerain -> Harness.Build.gentlerain engine spec metrics
    | Harness.Scenario.Cure -> Harness.Build.cure engine spec metrics
    | Harness.Scenario.Eunomia -> Harness.Build.eunomia engine spec metrics
    | Harness.Scenario.Okapi -> Harness.Build.okapi engine spec metrics
  in
  let total = Workload.Trace.remaining trace in
  let clients = List.init (3 * n_dcs) (fun i ->
      Harness.Client.create ~id:i ~home_site:dc_sites.(i mod n_dcs) ~preferred_dc:(i mod n_dcs))
  in
  let done_ops = ref 0 in
  let rec loop (c : Harness.Client.t) () =
    match Workload.Trace.next trace ~client:c.Harness.Client.id with
    | None -> ()
    | Some (Workload.Op.Read { key }) -> api.Harness.Api.read c ~key ~k:(fun _ -> incr done_ops; loop c ())
    | Some (Workload.Op.Write { key; value }) ->
      api.Harness.Api.update c ~key ~value ~k:(fun () -> incr done_ops; loop c ())
    | Some (Workload.Op.Remote_read { key; at }) ->
      api.Harness.Api.migrate c ~dest_dc:at ~k:(fun () ->
          api.Harness.Api.read c ~key ~k:(fun _ ->
              api.Harness.Api.migrate c ~dest_dc:c.Harness.Client.preferred_dc ~k:(fun () ->
                  incr done_ops; loop c ())))
  in
  List.iter (fun c -> api.Harness.Api.attach c ~dc:c.Harness.Client.preferred_dc ~k:(loop c)) clients;
  Sim.Engine.run ~until:(Sim.Time.of_sec 120.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run ~until:(Sim.Time.of_sec 125.) engine;
  Printf.printf "replayed %d/%d ops in %.3fs simulated; visibility mean %.1f ms over %d remote updates\n"
    !done_ops total
    (Sim.Time.to_sec_float (Sim.Engine.now engine))
    (Stats.Sample.mean (Harness.Metrics.visibility metrics))
    (Harness.Metrics.visible_count metrics)

(* ---- obs -------------------------------------------------------------------- *)

let obs seed out spans spans_out check counters_out counters_baseline tolerance =
  let r = Harness.Obs.run_smoke ~seed ?out_dir:out () in
  (if spans || spans_out <> None then begin
     let report = Harness.Journey.analyze r.Harness.Obs.probe in
     let rendered = Stats.Table.render (Harness.Journey.table report) in
     if spans then print_string (rendered ^ "\n");
     (match spans_out with
     | Some path ->
       let oc = open_out path in
       output_string oc (rendered ^ "\n");
       close_out oc;
       Printf.printf "wrote decomposition table to %s\n" path
     | None -> ());
     match Harness.Journey.check report with
     | Ok () ->
       Printf.printf "decomposition check: OK (%d journeys tile exactly)\n"
         (List.length report.Harness.Journey.journeys)
     | Error mismatches ->
       Printf.printf "decomposition check: FAILED\n";
       List.iter (fun m -> Printf.printf "  %s\n" m) mismatches;
       exit 1
   end);
  if check then begin
    (* determinism self-check: a second same-seed run must match *)
    let r2 = Harness.Obs.smoke ~seed () in
    if String.equal r.Harness.Obs.digest r2.Harness.Obs.digest then
      Printf.printf "determinism check: OK (%s)\n" r.Harness.Obs.digest
    else begin
      Printf.printf "determinism check: FAILED (%s vs %s)\n" r.Harness.Obs.digest
        r2.Harness.Obs.digest;
      exit 1
    end
  end;
  (match counters_out with
  | Some path ->
    Harness.Obs.write_counters r ~path;
    Printf.printf "wrote counter baseline to %s\n" path
  | None -> ());
  match counters_baseline with
  | None -> ()
  | Some baseline -> (
    match Harness.Obs.check_counters r ~baseline ~tolerance with
    | Ok () -> Printf.printf "counter baseline check: OK (tolerance %.0f%%)\n" (tolerance *. 100.)
    | Error failures ->
      Printf.printf "counter baseline check: FAILED\n";
      List.iter (fun f -> Printf.printf "  %s\n" f) failures;
      Printf.printf
        "hint: if the drift is expected (new instrumentation, changed batching), regenerate every \
         checked-in baseline with: ci/regen.sh (baseline: %s)\n"
        baseline;
      exit 1)

let obs_cmd =
  let doc = Harness.Cli_spec.summary "obs" in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario seed.") in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write the artifact set (trace, decomposition table, series dumps, \
                 reconfig.timeline.txt) under DIR.")
  in
  let spans =
    Arg.(value & flag & info [ "spans" ]
           ~doc:"Print the per-label visibility-latency decomposition table and verify that every \
                 journey's segments sum to its measured latency.")
  in
  let spans_out =
    Arg.(value & opt (some string) None & info [ "spans-out" ] ~docv:"FILE"
           ~doc:"Write the decomposition table to FILE (implies the tiling check).")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Run the scenario twice and assert digest equality.")
  in
  let counters_out =
    Arg.(value & opt (some string) None & info [ "counters-out" ] ~docv:"FILE"
           ~doc:"Write the run's counters as a baseline file.")
  in
  let counters_baseline =
    Arg.(value & opt (some string) None & info [ "check-counters" ] ~docv:"FILE"
           ~doc:"Fail if the run's counters drift from FILE beyond the tolerance.")
  in
  let tolerance =
    Arg.(value & opt float 0.25 & info [ "tolerance" ]
           ~doc:"Allowed relative counter drift for --check-counters.")
  in
  Cmd.v (Cmd.info "obs" ~doc)
    Term.(const obs $ seed $ out $ spans $ spans_out $ check $ counters_out $ counters_baseline
          $ tolerance)

(* ---- bench-check ------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_check baseline_path fresh_path tolerance =
  let baseline =
    try read_file baseline_path
    with Sys_error e -> Printf.eprintf "bench-check: %s\n" e; exit 2
  in
  let fresh =
    try read_file fresh_path with Sys_error e -> Printf.eprintf "bench-check: %s\n" e; exit 2
  in
  let r =
    try Harness.Engine_bench.check ~baseline ~fresh ~tolerance
    with Failure e -> Printf.eprintf "bench-check: %s\n" e; exit 2
  in
  List.iter (fun n -> Printf.printf "  wall  %s\n" n) r.Harness.Engine_bench.notes;
  match r.Harness.Engine_bench.failures with
  | [] ->
    Printf.printf "bench-check: OK (%s vs %s, tolerance %.0f%%)\n" fresh_path baseline_path
      (tolerance *. 100.)
  | failures ->
    Printf.printf "bench-check: FAILED\n";
    List.iter (fun f -> Printf.printf "  det   %s\n" f) failures;
    Printf.printf
      "hint: if the drift is intended (engine or workload change), regenerate every checked-in \
       baseline with: ci/regen.sh\n";
    exit 1

let bench_check_cmd =
  let doc = Harness.Cli_spec.summary "bench-check" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compare a fresh engine-bench JSON (bench -- engine --out) against the checked-in \
         baseline. Deterministic fields (counts, words/op) gate hard within the tolerance; \
         wall-clock fields are reported but never fail the check.";
    ]
  in
  let baseline =
    Arg.(required & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Checked-in baseline (BENCH_engine.json).")
  in
  let fresh =
    Arg.(required & opt (some string) None & info [ "fresh" ] ~docv:"FILE"
           ~doc:"Freshly generated engine-bench JSON.")
  in
  let tolerance =
    Arg.(value & opt float 0.02 & info [ "tolerance" ]
           ~doc:"Allowed relative drift for deterministic fields (absolute floor of the same \
                 magnitude for near-zero baselines).")
  in
  Cmd.v (Cmd.info "bench-check" ~doc ~man) Term.(const bench_check $ baseline $ fresh $ tolerance)

(* ---- series ------------------------------------------------------------------ *)

(* the accepted scenario names and their help text come from the one list
   in Harness.Fault_run, so the CLI can never drift from the matrix again *)
let scenario_enum = List.map (fun s -> (s, s)) (Harness.Fault_run.scenario_names @ [ "smoke" ])
let scenario_doc = String.concat "|" (List.map fst scenario_enum)

let series_of_run ~scenario ~system ~seed =
  if String.equal scenario "smoke" then
    ((Harness.Obs.smoke ~seed ()).Harness.Obs.series, None)
  else
    let o = Harness.Fault_run.run_scenario ~seed ~scenario ~system () in
    (o.Harness.Fault_run.series, Some o)

let series scenario system seed csv json out check =
  let sr, outcome = series_of_run ~scenario ~system ~seed in
  (match outcome with
  | Some o -> Harness.Fault_run.print_timeline o
  | None ->
    Stats.Table.print
      (Stats.Series.to_table ~title:(Printf.sprintf "smoke series (seed %d)" seed) sr));
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  let csv, json =
    match out with
    | None -> (csv, json)
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ( Some (Option.value csv ~default:(Filename.concat dir "series.csv")),
        Some (Option.value json ~default:(Filename.concat dir "series.json")) )
  in
  Option.iter (fun p -> write p (Stats.Series.to_csv sr)) csv;
  Option.iter (fun p -> write p (Stats.Series.to_json sr)) json;
  (match (out, outcome) with
  | Some dir, Some o ->
    write (Filename.concat dir "timeline.txt") (Harness.Fault_run.timeline_string o)
  | _ -> ());
  Printf.printf "series digest: %s (%d series x %d windows)\n" (Stats.Series.digest sr)
    (List.length (Stats.Series.names sr))
    (Stats.Series.n_windows sr);
  if check then begin
    let sr2, _ = series_of_run ~scenario ~system ~seed in
    if String.equal (Stats.Series.digest sr) (Stats.Series.digest sr2) then
      Printf.printf "determinism check: OK (%s)\n" (Stats.Series.digest sr)
    else begin
      Printf.printf "determinism check: FAILED (%s vs %s)\n" (Stats.Series.digest sr)
        (Stats.Series.digest sr2);
      exit 1
    end
  end

let series_cmd =
  let doc = Harness.Cli_spec.summary "series" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Run one scenario and print per-series sparklines (queue depths, apply throughput, \
         visibility p99 per 50 sim-ms window) with fault/heal and epoch-switch marks, the \
         series-derived recovery point cross-checked against the drain-based recovery metric.";
    ]
  in
  let scenario =
    Arg.(value & opt (enum scenario_enum) "partition" & info [ "scenario" ] ~doc:scenario_doc)
  in
  let system =
    Arg.(value & opt (enum [ ("saturn", `Saturn); ("eventual", `Eventual);
                             ("eunomia", `Eunomia); ("okapi", `Okapi) ]) `Saturn
         & info [ "system" ] ~doc:"saturn|eventual|eunomia|okapi (ignored by the smoke scenario).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario seed.") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the long-form CSV dump to FILE.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the JSON dump to FILE.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write series.csv, series.json and (for fault scenarios) timeline.txt under DIR \
                 (created if missing).")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Run the scenario twice and assert the series digests are byte-identical.")
  in
  Cmd.v (Cmd.info "series" ~doc ~man)
    Term.(const series $ scenario $ system $ seed $ csv $ json $ out $ check)

(* ---- faults ------------------------------------------------------------------ *)

let faults seed check digest_out =
  let outcomes = Harness.Fault_run.run_matrix ~seed () in
  Harness.Fault_run.print outcomes;
  let digest = Harness.Fault_run.matrix_digest outcomes in
  (match digest_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (digest ^ "\n");
    close_out oc
  | None -> ());
  let v = Harness.Fault_run.violations outcomes in
  if v > 0 then begin
    Printf.printf "invariant check: %d violation(s)\n" v;
    exit 1
  end;
  Printf.printf "invariant check: OK\n";
  if check then begin
    let digest2 = Harness.Fault_run.matrix_digest (Harness.Fault_run.run_matrix ~seed ()) in
    if String.equal digest digest2 then Printf.printf "determinism check: OK (%s)\n" digest
    else begin
      Printf.printf "determinism check: FAILED (%s vs %s)\n" digest digest2;
      exit 1
    end
  end

let faults_cmd =
  let doc = Harness.Cli_spec.summary "faults" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Run the fault-injection scenario matrix (serializer crash, transient partition, latency \
         spike, and the reconfig-* epoch-switch rows) for Saturn and the baselines, check \
         invariants — including the cross-epoch ones — and print recovery metrics.";
    ]
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario seed.") in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Run the matrix twice and assert digest equality.")
  in
  let digest_out =
    Arg.(value & opt (some string) None & info [ "digest-out" ] ~docv:"FILE"
           ~doc:"Write the matrix digest to FILE (for cross-run diffing in CI).")
  in
  Cmd.v (Cmd.info "faults" ~doc ~man) Term.(const faults $ seed $ check $ digest_out)

(* `saturn-cli trace --chrome out.json`: run the observability smoke scenario
   and export its span trace as Chrome trace-event JSON, viewable in Perfetto
   (https://ui.perfetto.dev) or chrome://tracing *)
let trace_chrome chrome seed =
  match chrome with
  | None ->
    prerr_endline "trace: use a subcommand (record|replay) or --chrome FILE; see --help";
    exit 2
  | Some path ->
    let r = Harness.Obs.smoke ~seed () in
    Harness.Chrome.write_file r.Harness.Obs.probe ~path;
    Printf.printf "wrote Chrome trace-event JSON for the smoke run (seed %d) to %s\n" seed path;
    Printf.printf "open it in https://ui.perfetto.dev or chrome://tracing\n"

let trace_cmd =
  let doc = Harness.Cli_spec.summary "trace" in
  let record =
    let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
    let n_dcs = Arg.(value & opt int 3 & info [ "dcs" ] ~doc:"Datacenters.") in
    let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Operations per client.") in
    let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Generator seed.") in
    Cmd.v (Cmd.info "record" ~doc:"Record a synthetic trace to FILE.")
      Term.(const trace_record $ path $ n_dcs $ ops $ seed)
  in
  let replay =
    let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
    let n_dcs = Arg.(value & opt int 3 & info [ "dcs" ] ~doc:"Datacenters (must match the recording).") in
    let sys =
      Arg.(value & opt system_conv Harness.Scenario.Saturn_sys & info [ "s"; "system" ] ~doc:"System.")
    in
    Cmd.v (Cmd.info "replay" ~doc:"Replay FILE against a system.")
      Term.(const trace_replay $ path $ n_dcs $ sys)
  in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Run the observability smoke scenario and write its span trace as Chrome \
                 trace-event JSON to FILE (open in Perfetto or chrome://tracing).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Smoke scenario seed for --chrome.") in
  Cmd.group
    ~default:Term.(const trace_chrome $ chrome $ seed)
    (Cmd.info "trace" ~doc) [ record; replay ]

(* ---- blame ------------------------------------------------------------------- *)

let blame_report ~scenario ~system ~seed =
  if String.equal scenario "smoke" then (Harness.Obs.smoke ~seed ()).Harness.Obs.blame
  else
    Harness.Fault_run.blame (Harness.Fault_run.run_scenario ~seed ~scenario ~system ())

let blame scenario system seed top out check =
  let r = blame_report ~scenario ~system ~seed in
  print_string (Harness.Blame.render ~top r);
  (* the tiling invariant is not optional: a blame table whose parts do
     not sum to the gap is a wrong answer, not a partial one *)
  (match Harness.Blame.check r with
  | Ok () ->
    Printf.printf "blame check: OK (%d journeys, every blame sums to its gap)\n"
      (List.length r.Harness.Blame.blamed)
  | Error mismatches ->
    Printf.printf "blame check: FAILED\n";
    List.iter (fun m -> Printf.printf "  %s\n" m) mismatches;
    exit 1);
  (match out with
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name s =
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write "blame.txt" (Harness.Blame.render ~top r);
    write "gap.csv" (Harness.Blame.gap_csv r)
  | None -> ());
  Printf.printf "blame digest: %s (%d journeys)\n" (Harness.Blame.digest r)
    (List.length r.Harness.Blame.blamed);
  if check then begin
    let r2 = blame_report ~scenario ~system ~seed in
    if String.equal (Harness.Blame.digest r) (Harness.Blame.digest r2) then
      Printf.printf "determinism check: OK (%s)\n" (Harness.Blame.digest r)
    else begin
      Printf.printf "determinism check: FAILED (%s vs %s)\n" (Harness.Blame.digest r) (Harness.Blame.digest r2);
      exit 1
    end
  end

let blame_cmd =
  let doc = Harness.Cli_spec.summary "blame" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replay one scenario's trace through the journey decomposition, compute each complete \
         journey's optimal visibility from the topology's shortest bulk path, and attribute the \
         gap (visibility minus optimal) to sink hold, serializer chains, configured delays, \
         proxy ordering and off-optimal-route transit. Prints the per-part blame table, the \
         culprit ranking by tail gap, and the top-K slowest journeys as annotated paths. The \
         exact-tiling check (every journey's parts sum to its gap) always runs and fails the \
         command on a mismatch.";
    ]
  in
  let scenario =
    Arg.(value & opt (enum scenario_enum) "smoke" & info [ "scenario" ] ~doc:scenario_doc)
  in
  let system =
    Arg.(value & opt (enum [ ("saturn", `Saturn); ("eventual", `Eventual);
                             ("eunomia", `Eunomia); ("okapi", `Okapi) ]) `Saturn
         & info [ "system" ] ~doc:"saturn|eventual|eunomia|okapi (ignored by the smoke scenario).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario seed.") in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc:"Annotated slowest journeys to print.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write blame.txt and gap.csv under DIR (created if missing).")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Run the scenario twice and assert the blame digests are byte-identical.")
  in
  Cmd.v (Cmd.info "blame" ~doc ~man)
    Term.(const blame $ scenario $ system $ seed $ top $ out $ check)

(* ---- diff -------------------------------------------------------------------- *)

let diff a b =
  let is_dir p = Sys.file_exists p && Sys.is_directory p in
  let exists p =
    if not (Sys.file_exists p) then begin
      Printf.eprintf "diff: no such file or directory: %s\n" p;
      exit 2
    end
  in
  exists a;
  exists b;
  match (is_dir a, is_dir b) with
  | true, true -> (
    match Harness.Diff.dirs a b with
    | [] -> Printf.printf "identical: %s and %s agree file by file\n" a b
    | findings ->
      List.iter (fun f -> print_endline (Harness.Diff.render f)) findings;
      exit 1)
  | false, false -> (
    match Harness.Diff.files ~a ~b with
    | Harness.Diff.Same -> Printf.printf "identical: %s and %s\n" a b
    | Harness.Diff.Differs f ->
      print_endline (Harness.Diff.render f);
      exit 1)
  | _ ->
    Printf.eprintf "diff: %s and %s must both be files or both be directories\n" a b;
    exit 2

let diff_cmd =
  let doc = Harness.Cli_spec.summary "diff" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compare two artifact files or directories from double runs of the same experiment and \
         report the first diverging unit of meaning instead of a raw byte diff: the first \
         diverging window for series CSVs (named by series and window start), the first drifted \
         or missing counter for counter files, the first diverging journey and column for gap \
         CSVs, and the first differing line otherwise. Exits 1 on any divergence.";
    ]
  in
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B") in
  Cmd.v (Cmd.info "diff" ~doc ~man) Term.(const diff $ a $ b)

(* ---- main -------------------------------------------------------------------- *)

let () =
  let doc = "Saturn (EuroSys '17) reproduction toolkit" in
  let man =
    [
      `S Manpage.s_description;
      `P "Subcommands (from Harness.Cli_spec, the single source of the surface):";
      `Pre (Harness.Cli_spec.usage ());
    ]
  in
  let info = Cmd.info "saturn-cli" ~version:"1.0.0" ~doc ~man in
  let cmds =
    [ matrix_cmd; plan_cmd; bench_cmd; bench_check_cmd; social_cmd; trace_cmd; obs_cmd;
      faults_cmd; series_cmd; blame_cmd; diff_cmd ]
  in
  (* the registered surface must equal the spec — a drift in either
     direction is a build bug, caught before any dispatch *)
  let registered = List.sort String.compare (List.map Cmd.name cmds) in
  let spec = List.sort String.compare Harness.Cli_spec.names in
  if registered <> spec then begin
    Printf.eprintf "saturn-cli: subcommands diverge from Harness.Cli_spec\n  registered: %s\n  spec: %s\n"
      (String.concat " " registered) (String.concat " " spec);
    exit 2
  end;
  exit (Cmd.eval (Cmd.group info cmds))
