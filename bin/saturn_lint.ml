(* saturn-lint: the determinism & invariant static-analysis pass.

   Scans the repo's own sources (default: lib/) with a hand-rolled
   tokenizer — no ppxlib, no compiler-libs — and fails on any unwaivered
   finding. See lib/lint/rules.mli for the rule set and README "Static
   analysis" for the waiver grammar. *)

let usage = "saturn_lint [--json] [--root DIR] [--baseline FILE] [DIR...]\n\nOptions:"

let () =
  let json = ref false in
  let root = ref "." in
  let baseline = ref None in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable report on stdout");
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default .)");
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE counter baseline (default ROOT/ci/smoke-counters.txt when present)" );
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib" ] | ds -> ds in
  let baseline =
    match !baseline with
    | Some f -> Some f
    | None -> Some (Filename.concat !root "ci/smoke-counters.txt")
  in
  let report = Lint.Engine.run ?baseline ~root:!root ~dirs () in
  Lint.Report.print ~json:!json report;
  exit (if report.Lint.Report.findings = [] then 0 else 1)
