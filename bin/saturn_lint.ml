(* saturn-lint: the determinism & invariant static-analysis pass.

   Scans the repo's own sources (default: lib/ and bin/) with a
   hand-rolled tokenizer and a lightweight parse layer — no ppxlib, no
   compiler-libs — and fails on any unwaivered finding. See
   lib/lint/rules.mli for the nine rules, ci/layers.txt for the layer
   contract, and README "Static analysis" for the waiver grammar. *)

let usage =
  "saturn_lint [--json] [--root DIR] [--baseline FILE] [--layers FILE] [--uses DIR]\n\
  \            [--waivers-out FILE] [--check-waivers FILE] [--summary-out FILE]\n\
  \            [--explain RULE] [DIR...]\n\nOptions:"

(* --explain RULE: rationale + minimal bad/good example, read from the
   rule's fixture file so the printed example is the same source the
   tests prove fires (and stops firing when fixed) — it cannot drift. *)
let explain ~root rule =
  if not (List.mem rule Lint.Rules.waivable) then begin
    Printf.eprintf "saturn-lint: unknown rule %S\nrules: %s\n" rule
      (String.concat ", " Lint.Rules.waivable);
    exit 2
  end;
  let path = Filename.concat root (Printf.sprintf "test/lint_fixtures/%s.ml" rule) in
  if not (Sys.file_exists path) then begin
    Printf.eprintf "saturn-lint: no fixture for %S at %s\n" rule path;
    exit 2
  end;
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let section = ref `Rationale in
  print_string (rule ^ "\n" ^ String.make (String.length rule) '=' ^ "\n");
  List.iter
    (fun line ->
      let trimmed = String.trim line in
      if trimmed = "(* --bad-- *)" then begin
        section := `Bad;
        print_string "\nA finding:\n"
      end
      else if trimmed = "(* --good-- *)" then begin
        section := `Good;
        print_string "\nThe fix:\n"
      end
      else
        match !section with
        | `Rationale ->
          (* strip the comment framing of the rationale header *)
          let t = trimmed in
          let t = if String.length t >= 2 && String.sub t 0 2 = "(*" then String.sub t 2 (String.length t - 2) else t in
          let t =
            if String.length t >= 2 && String.sub t (String.length t - 2) 2 = "*)" then
              String.sub t 0 (String.length t - 2)
            else t
          in
          let t = String.trim t in
          if t <> "" && not (Lint.Token.starts_with ~prefix:"rule:" t) then
            print_string (t ^ "\n")
        | `Bad | `Good -> print_string ("  " ^ line ^ "\n"))
    (String.split_on_char '\n' src);
  exit 0

let () =
  let json = ref false in
  let root = ref "." in
  let baseline = ref None in
  let layers = ref None in
  let uses = ref [] in
  let waivers_out = ref None in
  let check_waivers = ref None in
  let summary_out = ref None in
  let explain_rule = ref None in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable report on stdout");
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default .)");
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE counter baseline (default ROOT/ci/smoke-counters.txt when present)" );
      ( "--layers",
        Arg.String (fun s -> layers := Some s),
        "FILE layer contract (default ROOT/ci/layers.txt when present)" );
      ( "--uses",
        Arg.String (fun s -> uses := s :: !uses),
        "DIR reference-only tree whose uses keep exports alive (default: test bench examples)" );
      ( "--waivers-out",
        Arg.String (fun s -> waivers_out := Some s),
        "FILE write the waiver inventory (for ci/regen.sh --lint-baseline)" );
      ( "--check-waivers",
        Arg.String (fun s -> check_waivers := Some s),
        "FILE fail if the tree's waivers diverge from this inventory" );
      ( "--summary-out",
        Arg.String (fun s -> summary_out := Some s),
        "FILE write a markdown summary (appended to $GITHUB_STEP_SUMMARY by CI)" );
      ( "--explain",
        Arg.String (fun s -> explain_rule := Some s),
        "RULE print the rule's rationale and minimal bad/good example, then exit" );
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  (match !explain_rule with Some rule -> explain ~root:!root rule | None -> ());
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  let use_dirs = match List.rev !uses with [] -> [ "test"; "bench"; "examples" ] | ds -> ds in
  (* exclude scanned dirs double-listed as use dirs *)
  let use_dirs = List.filter (fun d -> not (List.mem d dirs)) use_dirs in
  let default_under name = function
    | Some f -> Some f
    | None -> Some (Filename.concat !root (Filename.concat "ci" name))
  in
  let baseline = default_under "smoke-counters.txt" !baseline in
  let layers = default_under "layers.txt" !layers in
  let report = Lint.Engine.run ?baseline ?layers ~use_dirs ~root:!root ~dirs () in
  (match !waivers_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Lint.Report.to_waivers_txt report);
    close_out oc
  | None -> ());
  (match !summary_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Lint.Report.to_summary_md report);
    close_out oc
  | None -> ());
  let ratchet_errors =
    match !check_waivers with
    | None -> []
    | Some path when Sys.file_exists path -> (
      let ic = open_in_bin path in
      let inv = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Lint.Report.check_waivers report ~inventory:inv with
      | Ok () -> []
      | Error errs -> errs)
    | Some path -> [ Printf.sprintf "waiver inventory %s does not exist" path ]
  in
  Lint.Report.print ~json:!json report;
  List.iter (fun e -> Printf.eprintf "saturn-lint: %s\n" e) ratchet_errors;
  exit (if report.Lint.Report.findings = [] && ratchet_errors = [] then 0 else 1)
