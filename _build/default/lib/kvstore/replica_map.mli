(** Which datacenters replicate which keys.

    This is the partial geo-replication description: the "correlation"
    between datacenters in the paper's terms is exactly how much of this map
    they share. Built once per experiment by the workload layer and consulted
    by gears (where to ship payloads), serializers (which subtrees are
    interested in a label — genuine partial replication) and frontends. *)

type t

val create : n_dcs:int -> n_keys:int -> assign:(int -> int list) -> t
(** [assign key] lists the datacenters replicating [key]; duplicates are
    removed, and the list must be non-empty with ids in [0, n_dcs).
    @raise Invalid_argument on an invalid assignment. *)

val n_dcs : t -> int
val n_keys : t -> int

val replicas : t -> key:int -> int list
(** Sorted, duplicate-free. *)

val replicates : t -> dc:int -> key:int -> bool

val local_keys : t -> dc:int -> int list
(** Keys replicated at [dc], ascending. *)

val degree : t -> key:int -> int

val mean_degree : t -> float

val shared_keys : t -> int -> int -> int
(** Number of keys replicated at both datacenters — the correlation between
    the two sites. *)

val full : n_dcs:int -> n_keys:int -> t
(** Full replication: every datacenter replicates every key. *)
