type t = {
  n_dcs : int;
  n_keys : int;
  by_key : int array array; (* key -> sorted dc ids *)
  member : Bytes.t array; (* dc -> bitset over keys *)
}

let create ~n_dcs ~n_keys ~assign =
  if n_dcs < 1 then invalid_arg "Replica_map.create: n_dcs < 1";
  if n_keys < 0 then invalid_arg "Replica_map.create: n_keys < 0";
  let member = Array.init n_dcs (fun _ -> Bytes.make ((n_keys / 8) + 1) '\000') in
  let set_bit dc key =
    let b = member.(dc) in
    let idx = key / 8 and bit = key mod 8 in
    Bytes.set b idx (Char.chr (Char.code (Bytes.get b idx) lor (1 lsl bit)))
  in
  let by_key =
    Array.init n_keys (fun key ->
        let dcs = List.sort_uniq Int.compare (assign key) in
        if dcs = [] then invalid_arg "Replica_map.create: key with no replicas";
        List.iter
          (fun dc ->
            if dc < 0 || dc >= n_dcs then invalid_arg "Replica_map.create: dc out of range";
            set_bit dc key)
          dcs;
        Array.of_list dcs)
  in
  { n_dcs; n_keys; by_key; member }

let n_dcs t = t.n_dcs
let n_keys t = t.n_keys
let replicas t ~key = Array.to_list t.by_key.(key)

let replicates t ~dc ~key =
  let b = t.member.(dc) in
  Char.code (Bytes.get b (key / 8)) land (1 lsl (key mod 8)) <> 0

let local_keys t ~dc =
  let rec loop k acc = if k < 0 then acc else loop (k - 1) (if replicates t ~dc ~key:k then k :: acc else acc) in
  loop (t.n_keys - 1) []

let degree t ~key = Array.length t.by_key.(key)

let mean_degree t =
  if t.n_keys = 0 then 0.
  else begin
    let sum = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.by_key in
    float_of_int sum /. float_of_int t.n_keys
  end

let shared_keys t a b =
  let count = ref 0 in
  for k = 0 to t.n_keys - 1 do
    if replicates t ~dc:a ~key:k && replicates t ~dc:b ~key:k then incr count
  done;
  !count

let full ~n_dcs ~n_keys = create ~n_dcs ~n_keys ~assign:(fun _ -> List.init n_dcs Fun.id)
