(** Stored values.

    The evaluation only exercises value *size* (transfer and handling cost)
    and identity (to check convergence and causal visibility), so a value is
    a payload tag plus a declared size in bytes. The tag uniquely identifies
    the update that wrote it. *)

type t = { payload : int; size_bytes : int }

val make : payload:int -> size_bytes:int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
