type t = { payload : int; size_bytes : int }

let make ~payload ~size_bytes =
  if size_bytes < 0 then invalid_arg "Value.make: negative size";
  { payload; size_bytes }

let equal a b = a.payload = b.payload && a.size_bytes = b.size_bytes
let pp ppf v = Format.fprintf ppf "v%d(%dB)" v.payload v.size_bytes
