lib/kvstore/store.mli: Value
