lib/kvstore/replica_map.ml: Array Bytes Char Fun Int List
