lib/kvstore/replica_map.mli:
