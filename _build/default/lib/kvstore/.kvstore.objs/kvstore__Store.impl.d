lib/kvstore/store.ml: Hashtbl Value
