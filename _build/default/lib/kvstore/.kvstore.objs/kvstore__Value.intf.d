lib/kvstore/value.mli: Format
