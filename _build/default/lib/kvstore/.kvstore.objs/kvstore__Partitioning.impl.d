lib/kvstore/partitioning.ml:
