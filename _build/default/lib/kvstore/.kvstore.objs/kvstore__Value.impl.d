lib/kvstore/value.ml: Format
