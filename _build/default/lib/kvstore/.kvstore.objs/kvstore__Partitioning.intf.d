lib/kvstore/partitioning.mli:
