type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : float array option;
  mutable total : float;
}

let create () = { data = [||]; len = 0; sorted = None; total = 0. }

let add t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndata = Array.make ncap 0. in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.total <- t.total +. x;
  t.sorted <- None

let add_time t d = add t (Sim.Time.to_ms_float d)
let count t = t.len
let is_empty t = t.len = 0
let mean t = if t.len = 0 then 0. else t.total /. float_of_int t.len
let total t = t.total

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.data 0 t.len in
    Array.sort Float.compare s;
    t.sorted <- Some s;
    s

let min_value t = if t.len = 0 then 0. else (sorted t).(0)
let max_value t = if t.len = 0 then 0. else (sorted t).(t.len - 1)

let percentile t p =
  if t.len = 0 then invalid_arg "Sample.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Sample.percentile: p out of [0,100]";
  let s = sorted t in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let median t = percentile t 50.

let stddev t =
  if t.len < 2 then 0.
  else begin
    let m = mean t in
    let acc = ref 0. in
    for i = 0 to t.len - 1 do
      let d = t.data.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.len - 1))
  end

let cdf t ?(points = 100) () =
  if t.len = 0 then []
  else
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        (percentile t (frac *. 100.), frac))

let values t = Array.sub t.data 0 t.len
