(** Growable sample container for latency/throughput observations.

    Observations are stored as floats (milliseconds for latencies,
    ops/second for rates). Percentile queries sort lazily and cache the
    sorted array until the next insertion. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_time : t -> Sim.Time.t -> unit
(** Records a simulated duration in milliseconds. *)

val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** 0 on an empty sample. *)

val total : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]; linear interpolation between
    ranks. @raise Invalid_argument on an empty sample or out-of-range p. *)

val median : t -> float
val stddev : t -> float

val cdf : t -> ?points:int -> unit -> (float * float) list
(** [(value, cumulative fraction)] pairs suitable for plotting a CDF;
    [points] evenly spaced quantiles (default 100). Empty list on an empty
    sample. *)

val values : t -> float array
(** Copy of the raw observations in insertion order. *)
