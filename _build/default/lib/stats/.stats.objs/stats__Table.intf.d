lib/stats/table.mli:
