lib/stats/sample.ml: Array Float List Sim
