lib/stats/sample.mli: Sim
