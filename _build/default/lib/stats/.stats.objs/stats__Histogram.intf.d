lib/stats/histogram.mli:
