type t =
  | Read of { key : int }
  | Write of { key : int; value : Kvstore.Value.t }
  | Remote_read of { key : int; at : int }

let pp ppf = function
  | Read { key } -> Format.fprintf ppf "read(%d)" key
  | Write { key; value } -> Format.fprintf ppf "write(%d,%a)" key Kvstore.Value.pp value
  | Remote_read { key; at } -> Format.fprintf ppf "remote-read(%d@@dc%d)" key at
