type params = {
  n_keys : int;
  value_size : int;
  read_ratio : float;
  remote_read_ratio : float;
  seed : int;
}

let default =
  { n_keys = 1024; value_size = 2; read_ratio = 0.9; remote_read_ratio = 0.; seed = 7 }

type t = {
  p : params;
  rng : Sim.Rng.t;
  local_keys : int array array; (* per dc *)
  remote_keys : int array array; (* per dc: keys NOT replicated there *)
  nearest_holder : (int * int, int) Hashtbl.t; (* (dc, key) -> closest replica dc *)
  nearest_other_dc : int array;
  mutable payload : int;
}

let create p ~rmap ~topo ~dc_sites =
  let n = Kvstore.Replica_map.n_dcs rmap in
  let local_keys =
    Array.init n (fun dc -> Array.of_list (Kvstore.Replica_map.local_keys rmap ~dc))
  in
  let remote_keys =
    Array.init n (fun dc ->
        Array.of_list
          (List.filter
             (fun key -> not (Kvstore.Replica_map.replicates rmap ~dc ~key))
             (List.init p.n_keys Fun.id)))
  in
  let lat a b = Sim.Time.to_ms_float (Sim.Topology.latency topo dc_sites.(a) dc_sites.(b)) in
  let nearest_holder = Hashtbl.create 1024 in
  Array.iteri
    (fun dc keys ->
      Array.iter
        (fun key ->
          let holders = Kvstore.Replica_map.replicas rmap ~key in
          let best =
            List.fold_left
              (fun acc j ->
                match acc with
                | None -> Some j
                | Some b -> if lat dc j < lat dc b then Some j else acc)
              None holders
          in
          match best with
          | Some b -> Hashtbl.replace nearest_holder (dc, key) b
          | None -> ())
        keys)
    remote_keys;
  let nearest_other_dc =
    Array.init n (fun dc ->
        let best = ref (-1) and best_lat = ref infinity in
        for j = 0 to n - 1 do
          if j <> dc && lat dc j < !best_lat then begin
            best := j;
            best_lat := lat dc j
          end
        done;
        !best)
  in
  { p; rng = Sim.Rng.create ~seed:p.seed; local_keys; remote_keys; nearest_holder;
    nearest_other_dc; payload = 0 }

let fresh_payload t =
  t.payload <- t.payload + 1;
  t.payload

let next t ~dc =
  let is_read = Sim.Rng.float t.rng 1.0 < t.p.read_ratio in
  if is_read then begin
    let remote = Sim.Rng.float t.rng 1.0 < t.p.remote_read_ratio in
    if remote && Array.length t.remote_keys.(dc) > 0 then begin
      let key = Sim.Rng.pick t.rng t.remote_keys.(dc) in
      Op.Remote_read { key; at = Hashtbl.find t.nearest_holder (dc, key) }
    end
    else if remote && t.nearest_other_dc.(dc) >= 0 then begin
      (* full replication: exercise the remote-attach path anyway *)
      let at = t.nearest_other_dc.(dc) in
      let key = Sim.Rng.pick t.rng t.local_keys.(at) in
      Op.Remote_read { key; at }
    end
    else Op.Read { key = Sim.Rng.pick t.rng t.local_keys.(dc) }
  end
  else begin
    let key = Sim.Rng.pick t.rng t.local_keys.(dc) in
    Op.Write
      { key; value = Kvstore.Value.make ~payload:(fresh_payload t) ~size_bytes:t.p.value_size }
  end
