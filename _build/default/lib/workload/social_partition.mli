(** Replication-constrained social partitioning (§7.4).

    Implements the spirit of Pujol et al.'s "little engine(s)" placement
    [46], augmented — as in the paper — with a cap on the number of
    replicas per user to avoid degenerating into full replication:

    - each user gets a {e master} datacenter, chosen so communities stay
      together (maximising friend locality and thus minimising remote
      reads);
    - each user's data is additionally replicated at the datacenters
      hosting most of their friends, bounded by [min_replicas] and
      [max_replicas].

    Each user owns two keys: a wall ([wall_key]) and an albums object
    ([album_key]); both share the user's replica set. *)

type t

val partition :
  Social_graph.t -> n_dcs:int -> min_replicas:int -> max_replicas:int -> seed:int -> t
(** @raise Invalid_argument when [min_replicas > max_replicas] or
    [min_replicas < 1]. *)

val master : t -> user:int -> int
val graph : t -> Social_graph.t
val replica_map : t -> Kvstore.Replica_map.t
(** Over [2 × n_users] keys: walls then albums. *)

val wall_key : t -> user:int -> int
val album_key : t -> user:int -> int

val locality : t -> float
(** Fraction of friendship edges whose endpoints share a master — the
    quantity the partitioner maximises. *)

val mean_replication : t -> float
