type t = {
  g : Social_graph.t;
  n_dcs : int;
  masters : int array;
  rmap : Kvstore.Replica_map.t;
}

let partition g ~n_dcs ~min_replicas ~max_replicas ~seed =
  if min_replicas < 1 then invalid_arg "Social_partition.partition: min_replicas < 1";
  if min_replicas > max_replicas then
    invalid_arg "Social_partition.partition: min_replicas > max_replicas";
  let n = Social_graph.n_users g in
  let rng = Sim.Rng.create ~seed in
  (* masters: start from communities spread round-robin over datacenters,
     then greedy local moves toward the majority of friends (bounded-size
     label propagation, the greedy heart of [46]) *)
  let masters = Array.init n (fun u -> Social_graph.community g u mod n_dcs) in
  let capacity = (n / n_dcs) + (n / (n_dcs * 4)) + 1 in
  let load = Array.make n_dcs 0 in
  Array.iter (fun m -> load.(m) <- load.(m) + 1) masters;
  let order = Array.init n Fun.id in
  Sim.Rng.shuffle rng order;
  for _pass = 1 to 3 do
    Array.iter
      (fun u ->
        let counts = Array.make n_dcs 0 in
        Array.iter (fun v -> counts.(masters.(v)) <- counts.(masters.(v)) + 1) (Social_graph.friends g u);
        let cur = masters.(u) in
        let best = ref cur in
        Array.iteri
          (fun dc c ->
            if dc <> cur && c > counts.(!best) && load.(dc) < capacity then best := dc)
          counts;
        if !best <> cur && counts.(!best) > counts.(cur) then begin
          load.(cur) <- load.(cur) - 1;
          load.(!best) <- load.(!best) + 1;
          masters.(u) <- !best
        end)
      order
  done;
  (* replica sets: master + datacenters hosting most friends, capped *)
  let replica_set u =
    let counts = Array.make n_dcs 0 in
    Array.iter (fun v -> counts.(masters.(v)) <- counts.(masters.(v)) + 1) (Social_graph.friends g u);
    let master = masters.(u) in
    let candidates =
      List.filter (fun dc -> dc <> master && counts.(dc) > 0) (List.init n_dcs Fun.id)
      |> List.sort (fun a b -> Int.compare counts.(b) counts.(a))
    in
    let rec take k = function [] -> [] | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest in
    let extras = take (max_replicas - 1) candidates in
    let set = master :: extras in
    (* pad up to the minimum degree with round-robin datacenters *)
    let rec pad set dc =
      if List.length set >= min min_replicas n_dcs then set
      else begin
        let dc = dc mod n_dcs in
        if List.mem dc set then pad set (dc + 1) else pad (dc :: set) (dc + 1)
      end
    in
    pad set (master + 1)
  in
  let sets = Array.init n replica_set in
  let rmap =
    Kvstore.Replica_map.create ~n_dcs ~n_keys:(2 * n) ~assign:(fun key -> sets.(key mod n))
  in
  { g; n_dcs; masters; rmap }

let master t ~user = t.masters.(user)
let graph t = t.g
let replica_map t = t.rmap
let wall_key _ ~user = user
let album_key t ~user = Social_graph.n_users t.g + user

let locality t =
  let total = ref 0 and local = ref 0 in
  for u = 0 to Social_graph.n_users t.g - 1 do
    Array.iter
      (fun v ->
        if v > u then begin
          incr total;
          if t.masters.(u) = t.masters.(v) then incr local
        end)
      (Social_graph.friends t.g u)
  done;
  if !total = 0 then 1. else float_of_int !local /. float_of_int !total

let mean_replication t = Kvstore.Replica_map.mean_degree t.rmap
