lib/workload/trace.ml: Buffer Fun Hashtbl Int Kvstore List Op Printf Queue String
