lib/workload/social_partition.ml: Array Fun Int Kvstore List Sim Social_graph
