lib/workload/op.ml: Format Kvstore
