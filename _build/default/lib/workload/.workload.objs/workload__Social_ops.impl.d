lib/workload/social_ops.ml: Array Format Hashtbl Kvstore Op Sim Social_graph Social_partition
