lib/workload/synthetic.ml: Array Fun Hashtbl Kvstore List Op Sim
