lib/workload/keyspace.mli: Format Kvstore Sim
