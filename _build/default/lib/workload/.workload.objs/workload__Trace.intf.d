lib/workload/trace.mli: Op
