lib/workload/synthetic.mli: Kvstore Op Sim
