lib/workload/social_ops.mli: Format Op Social_partition
