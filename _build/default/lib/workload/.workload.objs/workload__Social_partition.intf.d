lib/workload/social_partition.mli: Kvstore Social_graph
