lib/workload/keyspace.ml: Array Float Format Fun Int Kvstore List Sim
