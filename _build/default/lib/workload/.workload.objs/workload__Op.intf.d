lib/workload/op.mli: Format Kvstore
