type correlation = Exponential | Proportional | Uniform of int | Full

let pp_correlation ppf = function
  | Exponential -> Format.pp_print_string ppf "exponential"
  | Proportional -> Format.pp_print_string ppf "proportional"
  | Uniform d -> Format.fprintf ppf "uniform(%d)" d
  | Full -> Format.pp_print_string ppf "full"

let lat_ms topo a b = Sim.Time.to_ms_float (Sim.Topology.latency topo a b)

let nearest_other topo dc_sites home =
  let n = Array.length dc_sites in
  let best = ref (-1) and best_lat = ref infinity in
  for j = 0 to n - 1 do
    if j <> home then begin
      let l = lat_ms topo dc_sites.(home) dc_sites.(j) in
      if l < !best_lat then begin
        best_lat := l;
        best := j
      end
    end
  done;
  !best

let make ~rng ~topo ~dc_sites ~n_keys correlation =
  let n = Array.length dc_sites in
  let assign key =
    let home = key mod n in
    match correlation with
    | Full -> List.init n Fun.id
    | Uniform degree ->
      let degree = max 1 (min degree n) in
      let others = Array.of_list (List.filter (fun j -> j <> home) (List.init n Fun.id)) in
      Sim.Rng.shuffle rng others;
      home :: Array.to_list (Array.sub others 0 (degree - 1))
    | Exponential | Proportional ->
      let tau = 30. in
      let max_lat =
        Array.fold_left
          (fun acc s -> Array.fold_left (fun a s' -> Float.max a (lat_ms topo s s')) acc dc_sites)
          0. dc_sites
      in
      let joins j =
        if j = home then true
        else begin
          let l = lat_ms topo dc_sites.(home) dc_sites.(j) in
          let p =
            match correlation with
            | Exponential -> exp (-.l /. tau)
            | Proportional -> 0.9 *. (1. -. (l /. (max_lat *. 1.1)))
            | Uniform _ | Full -> assert false
          in
          Sim.Rng.float rng 1.0 < p
        end
      in
      let set = List.filter joins (List.init n Fun.id) in
      (* guarantee a minimum degree of 2 *)
      if List.length set >= 2 || n < 2 then set
      else List.sort_uniq Int.compare (nearest_other topo dc_sites home :: set)
  in
  Kvstore.Replica_map.create ~n_dcs:n ~n_keys ~assign

let nearest_degree ~topo ~dc_sites ~n_keys ~degree =
  let n = Array.length dc_sites in
  let degree = max 1 (min degree n) in
  let by_distance home =
    let others = List.filter (fun j -> j <> home) (List.init n Fun.id) in
    let sorted =
      List.sort
        (fun a b ->
          Float.compare (lat_ms topo dc_sites.(home) dc_sites.(a)) (lat_ms topo dc_sites.(home) dc_sites.(b)))
        others
    in
    home :: List.filteri (fun i _ -> i < degree - 1) sorted
  in
  let cache = Array.init n by_distance in
  Kvstore.Replica_map.create ~n_dcs:n ~n_keys ~assign:(fun key -> cache.(key mod n))
