(** Key-to-datacenter replication patterns (§7.3.2 "Correlation").

    The correlation between two datacenters is the amount of data they
    share. The paper sweeps four patterns — exponential, proportional,
    uniform and full — where the distance-based patterns give nearby
    datacenters (e.g. Ireland/Frankfurt) many common keys and distant ones
    (Ireland/Sydney) few. Figure 1b instead sweeps a fixed replication
    degree with nearest-neighbour placement. *)

type correlation =
  | Exponential  (** share ∝ exp(−latency/τ): prominent partial replication *)
  | Proportional  (** share decays linearly with latency: smoother *)
  | Uniform of int  (** every key at a fixed number of uniformly-chosen DCs *)
  | Full  (** full geo-replication *)

val pp_correlation : Format.formatter -> correlation -> unit

val make :
  rng:Sim.Rng.t ->
  topo:Sim.Topology.t ->
  dc_sites:Sim.Topology.site array ->
  n_keys:int ->
  correlation ->
  Kvstore.Replica_map.t
(** Every key's home datacenter is [key mod n_dcs]; other datacenters join
    the replica set according to the pattern. Distance-based patterns
    guarantee a minimum degree of 2 (the closest datacenter always joins). *)

val nearest_degree :
  topo:Sim.Topology.t ->
  dc_sites:Sim.Topology.site array ->
  n_keys:int ->
  degree:int ->
  Kvstore.Replica_map.t
(** Figure 1b's sweep: each key replicated at its home datacenter plus its
    [degree − 1] nearest neighbours by latency. *)
