(** Record and replay operation traces.

    A trace is an ordered list of (client, operation) pairs with a trivial
    line-based text format, so experiments can be captured once and
    replayed bit-identically against any system — or shared the way the
    paper shares its Basho Bench configurations.

    Format, one operation per line:
    {v
    R <client> <key>               read
    W <client> <key> <size>       write (payloads are re-minted on replay)
    RR <client> <key> <at>        remote read at datacenter <at>
    # comment / blank lines ignored
    v} *)

type t

val of_ops : (int * Op.t) list -> t
(** Build a replayable trace from explicit (client, op) pairs; per-client
    order is preserved. *)

val record :
  clients:int list -> next:(client:int -> Op.t) -> ops_per_client:int -> t
(** Capture [ops_per_client] operations per client from a generator. *)

val next : t -> client:int -> Op.t option
(** Pops the client's next operation; [None] when its script is exhausted. *)

val remaining : t -> int

val save : t -> path:string -> unit
val load : path:string -> t
(** @raise Failure on a malformed line. *)

val to_string : t -> string
val of_string : string -> t
