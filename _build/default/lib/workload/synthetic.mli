(** Synthetic workload generator — the Basho-Bench-style micro-benchmarks
    of §7.3 (defaults in parentheses as in the paper): value size (2 B),
    read:write ratio (9:1), correlation (exponential), remote reads (0%). *)

type params = {
  n_keys : int;
  value_size : int;
  read_ratio : float;  (** fraction of operations that are reads *)
  remote_read_ratio : float;  (** fraction of {e reads} targeting remote data *)
  seed : int;
}

val default : params

type t

val create : params -> rmap:Kvstore.Replica_map.t -> topo:Sim.Topology.t -> dc_sites:Sim.Topology.site array -> t

val next : t -> dc:int -> Op.t
(** Next operation for a client whose preferred datacenter is [dc]. Local
    operations pick uniformly among keys replicated at [dc]; remote reads
    pick a key not replicated at [dc] and the nearest datacenter that has
    it. When every key is local (full replication), a remote read falls
    back to reading a shared key at the nearest other datacenter, which
    still exercises the remote-attach path. *)

val fresh_payload : t -> int
(** Unique payload id for writes. *)
