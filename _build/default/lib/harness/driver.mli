(** Closed-loop load driver — the Basho Bench role (§7.1).

    Clients are co-located with their preferred datacenter and eagerly send
    requests with zero think time. Each run has a warm-up, a measurement
    window and a cool-down; only the window counts, mirroring the paper
    ("the first and the last minute of each experiment are ignored"). *)

type result = {
  throughput : float;  (** completed ops per simulated second, in-window *)
  ops_completed : int;  (** in-window *)
  duration : Sim.Time.t;  (** measurement window length *)
}

val run :
  Sim.Engine.t ->
  Api.t ->
  Metrics.t ->
  clients:Client.t list ->
  next_op:(Client.t -> Workload.Op.t) ->
  warmup:Sim.Time.t ->
  measure:Sim.Time.t ->
  cooldown:Sim.Time.t ->
  result
(** Drives every client in a closed loop: attach at the preferred
    datacenter, then issue operations back-to-back. A [Remote_read]
    migrates to the target, reads, and migrates home — one logical
    operation. Runs the engine to completion of the cool-down. *)

val make_clients :
  dc_sites:Sim.Topology.site array -> per_dc:int -> Client.t list
