type result = {
  throughput : float;
  ops_completed : int;
  duration : Sim.Time.t;
}

let make_clients ~dc_sites ~per_dc =
  List.concat
    (List.init (Array.length dc_sites) (fun dc ->
         List.init per_dc (fun i ->
             Client.create ~id:((dc * 1_000_000) + i) ~home_site:dc_sites.(dc) ~preferred_dc:dc)))

let run engine api metrics ~clients ~next_op ~warmup ~measure ~cooldown =
  let end_at = Sim.Time.add warmup (Sim.Time.add measure cooldown) in
  let window_start = warmup and window_end = Sim.Time.add warmup measure in
  Metrics.set_window metrics ~start_at:window_start ~end_at:window_end;
  let in_window () =
    let now = Sim.Engine.now engine in
    Sim.Time.compare now window_start >= 0 && Sim.Time.compare now window_end <= 0
  in
  let running () = Sim.Time.compare (Sim.Engine.now engine) end_at < 0 in
  let completed_op (c : Client.t) =
    c.Client.total <- c.Client.total + 1;
    if in_window () then c.Client.completed <- c.Client.completed + 1
  in
  let rec loop (c : Client.t) () =
    if running () then begin
      match next_op c with
      | Workload.Op.Read { key } ->
        api.Api.read c ~key ~k:(fun _ ->
            completed_op c;
            loop c ())
      | Workload.Op.Write { key; value } ->
        api.Api.update c ~key ~value ~k:(fun () ->
            completed_op c;
            loop c ())
      | Workload.Op.Remote_read { key; at } ->
        (* migrate to the holder, read there, and come home: one logical
           remote read *)
        api.Api.migrate c ~dest_dc:at ~k:(fun () ->
            api.Api.read c ~key ~k:(fun _ ->
                api.Api.migrate c ~dest_dc:c.Client.preferred_dc ~k:(fun () ->
                    completed_op c;
                    loop c ())))
    end
  in
  List.iter (fun c -> api.Api.attach c ~dc:c.Client.preferred_dc ~k:(loop c)) clients;
  Sim.Engine.run ~until:end_at engine;
  api.Api.stop ();
  (* drain whatever remains so visibility CDFs include late arrivals (the
     window filter keeps measurements honest) *)
  Sim.Engine.run ~until:(Sim.Time.add end_at (Sim.Time.of_sec 2.)) engine;
  let ops = List.fold_left (fun acc c -> acc + c.Client.completed) 0 clients in
  {
    throughput = float_of_int ops /. Sim.Time.to_sec_float measure;
    ops_completed = ops;
    duration = measure;
  }
