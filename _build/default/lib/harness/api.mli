(** Uniform operation surface over Saturn and every baseline, so the driver
    and the benchmarks treat all systems identically. *)

type t = {
  name : string;
  attach : Client.t -> dc:int -> k:(unit -> unit) -> unit;
      (** attach (with stabilization wait where the protocol requires it)
          and move the client's [current_dc] *)
  read : Client.t -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit;
      (** at the client's current datacenter *)
  update : Client.t -> key:int -> value:Kvstore.Value.t -> k:(unit -> unit) -> unit;
  migrate : Client.t -> dest_dc:int -> k:(unit -> unit) -> unit;
      (** protocol-specific fast path where available (Saturn's migration
          labels); plain attach otherwise *)
  stop : unit -> unit;
  store_value : dc:int -> key:int -> Kvstore.Value.t option;
      (** test/diagnostic access to the visible version at a datacenter *)
}
