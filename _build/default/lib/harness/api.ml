type t = {
  name : string;
  attach : Client.t -> dc:int -> k:(unit -> unit) -> unit;
  read : Client.t -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit;
  update : Client.t -> key:int -> value:Kvstore.Value.t -> k:(unit -> unit) -> unit;
  migrate : Client.t -> dest_dc:int -> k:(unit -> unit) -> unit;
  stop : unit -> unit;
  store_value : dc:int -> key:int -> Kvstore.Value.t option;
}
