lib/harness/build.ml: Api Array Baselines Client Hashtbl Kvstore Metrics Option Saturn Sim
