lib/harness/metrics.ml: Array Hashtbl Kvstore List Sim Stats
