lib/harness/api.ml: Client Kvstore
