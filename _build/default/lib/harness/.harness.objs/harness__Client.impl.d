lib/harness/client.ml: Sim
