lib/harness/api.mli: Client Kvstore
