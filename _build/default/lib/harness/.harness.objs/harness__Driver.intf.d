lib/harness/driver.mli: Api Client Metrics Sim Workload
