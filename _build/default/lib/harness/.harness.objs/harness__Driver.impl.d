lib/harness/driver.ml: Api Array Client List Metrics Sim Workload
