lib/harness/build.mli: Api Baselines Kvstore Metrics Saturn Sim
