lib/harness/scenario.ml: Array Build Client Driver Format Hashtbl List Metrics Option Saturn Sim Stats Workload
