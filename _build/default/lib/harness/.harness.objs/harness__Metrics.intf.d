lib/harness/metrics.mli: Kvstore Sim Stats
