lib/harness/client.mli: Sim
