lib/harness/scenario.mli: Kvstore Metrics Saturn Sim Workload
