(** Harness-level client handle, protocol-agnostic.

    Protocol-specific causal metadata (Saturn labels, GentleRain scalars,
    Cure vectors, COPS contexts) is tracked inside each system, keyed by
    the client id; the harness only knows where the client lives and where
    it is attached. *)

type t = {
  id : int;
  home_site : Sim.Topology.site;
  preferred_dc : int;
  mutable current_dc : int;
  mutable completed : int;  (** ops completed within the measurement window *)
  mutable total : int;  (** ops completed overall *)
}

val create : id:int -> home_site:Sim.Topology.site -> preferred_dc:int -> t
