type t = {
  id : int;
  home_site : Sim.Topology.site;
  preferred_dc : int;
  mutable current_dc : int;
  mutable completed : int;
  mutable total : int;
}

let create ~id ~home_site ~preferred_dc =
  { id; home_site; preferred_dc; current_dc = preferred_dc; completed = 0; total = 0 }
