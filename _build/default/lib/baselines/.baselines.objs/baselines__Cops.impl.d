lib/baselines/cops.ml: Array Common Hashtbl Int Kvstore List Option Saturn Sim
