lib/baselines/common.ml: Array Kvstore Saturn Sim
