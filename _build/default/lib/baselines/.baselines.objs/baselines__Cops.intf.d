lib/baselines/cops.mli: Common Kvstore Sim
