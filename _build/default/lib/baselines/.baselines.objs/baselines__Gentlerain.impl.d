lib/baselines/gentlerain.ml: Array Common Hashtbl Int Kvstore List Option Saturn Sim
