lib/baselines/orbe.mli: Common Kvstore Sim
