lib/baselines/cure.mli: Common Kvstore Sim
