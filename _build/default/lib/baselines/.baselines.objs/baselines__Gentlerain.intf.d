lib/baselines/gentlerain.mli: Common Kvstore Sim
