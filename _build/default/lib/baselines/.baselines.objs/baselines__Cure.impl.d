lib/baselines/cure.ml: Array Common Hashtbl Int Kvstore List Option Saturn Sim
