lib/baselines/eventual.ml: Array Common Int Kvstore List Option Saturn Sim
