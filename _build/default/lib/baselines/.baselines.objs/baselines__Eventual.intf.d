lib/baselines/eventual.mli: Common Kvstore Sim
