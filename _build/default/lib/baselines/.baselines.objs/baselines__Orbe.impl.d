lib/baselines/orbe.ml: Array Common Hashtbl Int Kvstore List Map Option Saturn Sim
