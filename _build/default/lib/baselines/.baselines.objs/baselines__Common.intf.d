lib/baselines/common.mli: Kvstore Saturn Sim
