(** Reliable in-order delivery over lossy {!Sim.Link}s.

    The serializer tree needs FIFO channels that survive link cuts and
    serializer-replica crashes without losing or reordering labels — losing
    a label would silently break causal delivery downstream. This module
    implements the standard sequence-number / cumulative-ack / retransmit
    scheme. A sender can be re-pointed at a different receiver (the new head
    of a healed chain) and will retransmit everything unacknowledged. *)

type 'msg sender
type 'msg receiver

val receiver : Sim.Engine.t -> deliver:('msg -> unit) -> 'msg receiver
(** Delivers messages in sequence order exactly once. Out-of-order arrivals
    (possible only across reconnects) are buffered. *)

val receiver_deferred :
  Sim.Engine.t -> deliver:('msg -> confirm:(unit -> unit) -> unit) -> 'msg receiver
(** Like {!receiver}, but a message is only acknowledged to the sender once
    the consumer calls [confirm]. A chain-replicated serializer confirms at
    chain commit, so a head crash between delivery and replication makes
    the sender retransmit instead of losing the label. Confirms must be
    issued in delivery order per sender. *)

val sender : Sim.Engine.t -> resend_period:Sim.Time.t -> 'msg sender
(** Unacknowledged messages are retransmitted every [resend_period]. *)

val connect : 'msg sender -> data:Sim.Link.t -> ack:Sim.Link.t -> 'msg receiver -> unit
(** Routes the sender's traffic to [receiver]; immediately retransmits any
    unacknowledged backlog. May be called again to re-target after a
    failure. *)

val send : 'msg sender -> ?size_bytes:int -> 'msg -> unit
(** Queues and transmits. @raise Invalid_argument before the first
    {!connect}. *)

val unacked : 'msg sender -> int
val delivered : 'msg receiver -> int

val redeliver_unconfirmed : 'msg receiver -> deliver:('msg -> confirm:(unit -> unit) -> unit) -> unit
(** Replays every delivered-but-unconfirmed message (deferred receivers
    only), in per-sender sequence order. Used when the consumer — a
    chain-replicated serializer — lost unreplicated state in a head crash:
    the replayed messages are re-ingested and deduplicated downstream. *)

val stop : 'msg sender -> unit
(** Cancels the retransmission timer (end of experiment teardown). *)
