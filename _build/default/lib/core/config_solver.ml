type problem = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  candidates : Sim.Topology.site array;
  crit : Mismatch.t;
}

let default_candidates ~dc_sites =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (fun s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        out := s :: !out
      end)
    dc_sites;
  Array.of_list (List.rev !out)

(* A pair's metadata path, decomposed into its delayable hops. *)
type pair = {
  src : int;
  dst : int;
  weight : float;
  beta_ms : float;
  hops : (int * Config.hop) list; (* serializer hops carrying artificial delay *)
}

let pairs_of problem config =
  let tree = Config.tree config in
  let n = Array.length problem.dc_sites in
  let out = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let c = problem.crit.Mismatch.weight src dst in
        if c > 0. then begin
          let path = Tree.serializer_path tree ~src_dc:src ~dst_dc:dst in
          let rec hops = function
            | a :: (b :: _ as rest) -> (a, Config.To_serializer b) :: hops rest
            | [ last ] -> [ (last, Config.To_dc dst) ]
            | [] -> []
          in
          let beta_ms = Sim.Time.to_ms_float (problem.crit.Mismatch.bulk src dst) in
          out := { src; dst; weight = c; beta_ms; hops = hops path } :: !out
        end
      end
    done
  done;
  !out

let base_ms problem config pair =
  (* physical-only latency of the pair's path (no artificial delays) *)
  let tree = Config.tree config in
  let path = Tree.serializer_path tree ~src_dc:pair.src ~dst_dc:pair.dst in
  match path with
  | [] -> assert false
  | first :: _ ->
    let lat a b = Sim.Time.to_ms_float (Sim.Topology.latency problem.topo a b) in
    let place = Config.placement config in
    let entry = lat problem.dc_sites.(pair.src) place.(first) in
    let rec walk acc = function
      | a :: (b :: _ as rest) -> walk (acc +. lat place.(a) place.(b)) rest
      | [ last ] -> acc +. lat place.(last) problem.dc_sites.(pair.dst)
      | [] -> acc
    in
    walk entry path

let weighted_median targets =
  (* targets: (value, weight) list, weight > 0; classic weighted median *)
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) targets in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. sorted in
  let rec walk acc = function
    | [] -> 0.
    | (v, w) :: rest -> if acc +. w >= total /. 2. then v else walk (acc +. w) rest
  in
  walk 0. sorted

let optimize_delays problem config =
  let pairs = pairs_of problem config in
  let bases = List.map (fun p -> (p, base_ms problem config p)) pairs in
  (* delta table in float ms, keyed by hop *)
  let deltas : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  let encode (from, hop) =
    (from, match hop with Config.To_serializer s -> s | Config.To_dc d -> -d - 1)
  in
  let delta h = Option.value ~default:0. (Hashtbl.find_opt deltas (encode h)) in
  let lambda (p, base) = base +. List.fold_left (fun acc h -> acc +. delta h) 0. p.hops in
  let objective () =
    List.fold_left (fun acc pb -> acc +. ((fst pb).weight *. Float.abs (lambda pb -. (fst pb).beta_ms))) 0. bases
  in
  let all_hops =
    let seen = Hashtbl.create 32 in
    List.concat_map (fun p -> p.hops) pairs
    |> List.filter (fun h ->
           let k = encode h in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
  in
  let pass () =
    List.iter
      (fun hop ->
        let key = encode hop in
        let affected = List.filter (fun (p, _) -> List.exists (fun h -> encode h = key) p.hops) bases in
        if affected <> [] then begin
          let cur = delta hop in
          let targets =
            List.map
              (fun ((p, _) as pb) ->
                let rest = lambda pb -. cur in
                (p.beta_ms -. rest, p.weight))
              affected
          in
          let best = Float.max 0. (weighted_median targets) in
          Hashtbl.replace deltas key best
        end)
      all_hops
  in
  let obj = ref (objective ()) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 50 do
    incr passes;
    pass ();
    let o = objective () in
    improved := o < !obj -. 1e-9;
    obj := o
  done;
  (* install the delays into the config *)
  List.iter
    (fun ((from, hop) as h) ->
      Config.set_delay config ~from ~hop (Sim.Time.of_us (int_of_float (Float.round (delta h *. 1000.)))))
    all_hops;
  Mismatch.objective problem.crit config problem.topo

let score_placement_fast problem config = Mismatch.lower_bound problem.crit config problem.topo

let initial_placement problem tree ~variant rng =
  let n = Tree.n_serializers tree in
  Array.init n (fun s ->
      if variant = 0 then begin
        (* seed: place each serializer at the site of a nearby attached DC *)
        match Tree.dcs_at tree s with
        | dc :: _ -> problem.dc_sites.(dc)
        | [] ->
          (* internal serializer without attached DCs: site of the first DC
             found through its first neighbor *)
          let rec probe at from =
            match Tree.dcs_at tree at with
            | dc :: _ -> problem.dc_sites.(dc)
            | [] -> (
              match List.filter (fun x -> x <> from) (Tree.neighbors tree at) with
              | next :: _ -> probe next at
              | [] -> problem.dc_sites.(0) )
          in
          probe s (-1)
      end
      else Sim.Rng.pick rng problem.candidates)

let placement_descent problem config ~score =
  let place = Config.placement config in
  let n = Array.length place in
  let best = ref (score config) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 8 do
    incr passes;
    improved := false;
    for s = 0 to n - 1 do
      let original = place.(s) in
      let best_site = ref original in
      Array.iter
        (fun w ->
          if w <> !best_site then begin
            place.(s) <- w;
            let v = score config in
            if v < !best -. 1e-9 then begin
              best := v;
              best_site := w;
              improved := true
            end
          end)
        problem.candidates;
      place.(s) <- !best_site
    done
  done;
  !best

let optimize_placement ?(fast = false) ?(restarts = 3) ~rng problem tree =
  let run variant =
    let placement = initial_placement problem tree ~variant rng in
    let config = Config.create ~tree ~placement ~dc_sites:(Array.copy problem.dc_sites) () in
    let _ = placement_descent problem config ~score:(score_placement_fast problem) in
    if not fast then begin
      (* refine: one descent round scoring with full delay optimization *)
      let full_score c =
        let c' = Config.copy c in
        optimize_delays problem c'
      in
      let _ = placement_descent problem config ~score:full_score in
      ()
    end;
    let obj = optimize_delays problem config in
    (config, obj)
  in
  let best = ref (run 0) in
  for variant = 1 to restarts - 1 do
    let candidate = run variant in
    if snd candidate < snd !best then best := candidate
  done;
  !best

let solve ?restarts ~seed problem tree =
  let rng = Sim.Rng.create ~seed in
  optimize_placement ?restarts ~rng problem tree

let solve_exact ?(max_enum = 200_000) problem tree =
  let n = Tree.n_serializers tree in
  let w = Array.length problem.candidates in
  let total =
    let rec pow acc i = if i = 0 then acc else if acc > max_enum then acc else pow (acc * w) (i - 1) in
    pow 1 n
  in
  if total > max_enum then
    invalid_arg
      (Printf.sprintf "Config_solver.solve_exact: %d placements exceed max_enum=%d" total max_enum);
  let best = ref None in
  let placement = Array.make n problem.candidates.(0) in
  let rec enumerate s =
    if s = n then begin
      let config =
        Config.create ~tree ~placement:(Array.copy placement) ~dc_sites:(Array.copy problem.dc_sites) ()
      in
      let score = optimize_delays problem config in
      match !best with
      | Some (_, b) when b <= score -> ()
      | Some _ | None -> best := Some (config, score)
    end
    else
      Array.iter
        (fun site ->
          placement.(s) <- site;
          enumerate (s + 1))
        problem.candidates
  in
  enumerate 0;
  match !best with Some r -> r | None -> assert false
