(** Configuration generator (§5.5, Algorithm 3).

    Enumerates isomorphism classes of full binary trees over the datacenter
    leaves by iterative leaf insertion, ranking candidates with the solver
    and pruning with the paper's threshold rule to avoid combinatorial
    explosion (nine datacenters would otherwise yield 2,027,025 trees). The
    final tree is solved exactly (placement + delays) and adjacent
    serializers that ended up co-located with zero delay are fused. *)

type btree = Leaf of int | Node of btree * btree

val leaves : btree -> int list
val count_nodes : btree -> int

val insertions : btree -> dc:int -> btree list
(** All 2f−1 isomorphism classes obtained by hanging leaf [dc] off each
    edge of a tree with f leaves (including the new-root case). *)

val to_tree : btree -> n_dcs:int -> Tree.t
(** Internal nodes become serializers; each leaf datacenter attaches to its
    parent serializer. @raise Invalid_argument on a bare leaf. *)

val fuse : Config.t -> Config.t
(** Contracts every serializer edge whose endpoints share a site and have
    zero artificial delay between them (shape change only; same behaviour). *)

val find_configuration :
  ?threshold:float ->
  ?pool:int ->
  ?seed:int ->
  ?insertion_order:int list ->
  Config_solver.problem ->
  Config.t * float
(** Runs Algorithm 3 and returns the best configuration found with its
    Weighted-Minimal-Mismatch objective (weighted ms). [threshold] is the
    ranking-gap cutoff used by FILTER (default 25.0), [pool] caps the
    surviving trees per iteration (default 10). *)

val find_configurations :
  ?threshold:float ->
  ?pool:int ->
  ?seed:int ->
  ?insertion_order:int list ->
  top:int ->
  Config_solver.problem ->
  (Config.t * float) list
(** Like {!find_configuration} but returns up to [top] distinct
    configurations, best first. The paper's §6.2 suggests pre-computing
    backup trees to speed up reconfiguration after a connectivity failure:
    the runners-up here are exactly those backups. *)
