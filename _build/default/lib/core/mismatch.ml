type t = {
  n_dcs : int;
  weight : int -> int -> float;
  bulk : int -> int -> Sim.Time.t;
}

let uniform ~n_dcs ~bulk = { n_dcs; weight = (fun i j -> if i = j then 0. else 1.); bulk }

let of_replica_map rm ~bulk =
  let n = Kvstore.Replica_map.n_dcs rm in
  let shared = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        shared.(i).(j) <- float_of_int (Kvstore.Replica_map.shared_keys rm i j)
    done
  done;
  { n_dcs = n; weight = (fun i j -> shared.(i).(j)); bulk }

let pair_mismatch_ms t config topo ~src ~dst =
  let lambda = Config.metadata_latency config topo ~src_dc:src ~dst_dc:dst in
  let beta = t.bulk src dst in
  Float.abs (Sim.Time.to_ms_float lambda -. Sim.Time.to_ms_float beta)

let fold_pairs t f init =
  let acc = ref init in
  for i = 0 to t.n_dcs - 1 do
    for j = 0 to t.n_dcs - 1 do
      if i <> j then begin
        let c = t.weight i j in
        if c > 0. then acc := f !acc i j c
      end
    done
  done;
  !acc

let objective t config topo =
  fold_pairs t (fun acc i j c -> acc +. (c *. pair_mismatch_ms t config topo ~src:i ~dst:j)) 0.

let lower_bound t config topo =
  fold_pairs t
    (fun acc i j c ->
      let lambda = Config.metadata_latency config topo ~src_dc:i ~dst_dc:j in
      let beta = t.bulk i j in
      let gap = Sim.Time.to_ms_float lambda -. Sim.Time.to_ms_float beta in
      if gap > 0. then acc +. (c *. gap) else acc)
    0.
