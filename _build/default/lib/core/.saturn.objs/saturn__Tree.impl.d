lib/core/tree.ml: Array Format Fun Hashtbl List Queue
