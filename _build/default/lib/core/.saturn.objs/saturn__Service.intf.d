lib/core/service.mli: Config Label Sim
