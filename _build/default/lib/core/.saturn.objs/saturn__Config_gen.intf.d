lib/core/config_gen.mli: Config Config_solver Tree
