lib/core/client_lib.ml: Label Sim
