lib/core/mismatch.ml: Array Config Float Kvstore Sim
