lib/core/datacenter.mli: Cost_model Kvstore Label Proxy Sim Sink
