lib/core/gear.ml: Sim
