lib/core/reliable_fifo.mli: Sim
