lib/core/label.ml: Format Int Sim
