lib/core/config.ml: Array Format Hashtbl Sim Tree
