lib/core/system.ml: Array Client_lib Config Cost_model Datacenter Fun Kvstore Label List Option Proxy Service Sim
