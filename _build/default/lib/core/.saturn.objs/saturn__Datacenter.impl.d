lib/core/datacenter.ml: Array Cost_model Gear Kvstore Label List Proxy Sim Sink
