lib/core/config_gen.ml: Array Config Config_solver Float Fun Hashtbl Int List Mismatch Printf Sim Tree
