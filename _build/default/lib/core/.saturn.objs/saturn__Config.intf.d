lib/core/config.mli: Format Sim Tree
