lib/core/sink.ml: Array Gear Label Sim
