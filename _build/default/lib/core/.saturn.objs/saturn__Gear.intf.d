lib/core/gear.mli: Sim
