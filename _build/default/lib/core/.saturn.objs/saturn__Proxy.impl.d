lib/core/proxy.ml: Array Fun Hashtbl Kvstore Label List Option Queue Sim
