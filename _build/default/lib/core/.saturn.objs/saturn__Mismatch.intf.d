lib/core/mismatch.mli: Config Kvstore Sim
