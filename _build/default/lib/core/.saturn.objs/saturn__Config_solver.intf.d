lib/core/config_solver.mli: Config Mismatch Sim Tree
