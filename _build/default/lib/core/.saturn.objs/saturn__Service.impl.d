lib/core/service.ml: Array Chain Config Hashtbl Label List Reliable_fifo Sim Tree
