lib/core/client_lib.mli: Label Sim
