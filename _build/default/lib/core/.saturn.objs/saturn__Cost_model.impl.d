lib/core/cost_model.ml: Sim
