lib/core/label.mli: Format Sim
