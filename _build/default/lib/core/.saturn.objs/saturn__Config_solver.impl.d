lib/core/config_solver.ml: Array Config Float Hashtbl List Mismatch Option Printf Sim Tree
