lib/core/chain.ml: Array Fun Hashtbl List Sim
