lib/core/sink.mli: Gear Label Sim
