lib/core/system.mli: Client_lib Config Cost_model Datacenter Kvstore Label Service Sim
