lib/core/reliable_fifo.ml: Hashtbl Int List Option Sim
