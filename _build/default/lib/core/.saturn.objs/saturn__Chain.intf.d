lib/core/chain.mli: Sim
