lib/core/proxy.mli: Kvstore Label Sim
