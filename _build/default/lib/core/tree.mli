(** Shape of the serializer tree (§5.3).

    Serializers and datacenters form a tree: serializers are internal
    infrastructure nodes, each datacenter attaches (as a leaf) to exactly
    one serializer. Labels travel along tree paths over FIFO channels;
    because every serializer relays in arrival order, each datacenter
    receives a causally consistent serialization.

    The structure precomputes routing (next hops) and, for every directed
    serializer edge, the set of datacenters on the far side — that is what
    lets a serializer forward a label only toward interested datacenters,
    giving genuine partial replication. *)

type t

val create : n_serializers:int -> edges:(int * int) list -> attach:int array -> t
(** [attach.(dc)] is the serializer datacenter [dc] connects to. [edges]
    must form a tree over the serializers (connected, n-1 edges).
    @raise Invalid_argument otherwise. *)

val star : n_dcs:int -> t
(** Single serializer with every datacenter attached — the S-configuration. *)

val n_serializers : t -> int
val n_dcs : t -> int
val edges : t -> (int * int) list
val neighbors : t -> int -> int list
val serializer_of : t -> dc:int -> int
val dcs_at : t -> int -> int list

val next_hop : t -> src:int -> dst:int -> int
(** Neighbor of [src] on the unique path to serializer [dst].
    @raise Invalid_argument if [src = dst]. *)

val serializer_path : t -> src_dc:int -> dst_dc:int -> int list
(** Serializers traversed from [src_dc]'s attachment to [dst_dc]'s,
    inclusive. A single element when both attach to the same serializer. *)

val dcs_behind : t -> from:int -> via:int -> int list
(** Datacenters whose attachment lies on the [via] side of the directed
    serializer edge [from → via]. Precomputed; O(1) lookup. *)

val routes_toward : t -> at:int -> dc:int -> int option
(** [routes_toward t ~at ~dc] is [Some next] when serializer [at] must
    forward toward neighbor [next] to reach [dc], or [None] when [dc] is
    attached locally. *)

val pp : Format.formatter -> t -> unit
