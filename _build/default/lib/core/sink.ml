type t = {
  gears : Gear.t array;
  buffer : Label.t Sim.Heap.t;
  emit : Label.t -> unit;
  mutable emitted : int;
  mutable last_emitted_ts : Sim.Time.t;
  mutable stopped : bool;
}

let stable_ts t =
  Array.fold_left (fun acc g -> Sim.Time.min acc (Gear.floor g)) max_int t.gears

let flush t =
  let stable = stable_ts t in
  let rec drain () =
    match Sim.Heap.peek t.buffer with
    | Some l when Sim.Time.compare l.Label.ts stable <= 0 ->
      let l = Sim.Heap.pop_exn t.buffer in
      (* the stability rule guarantees monotone emission *)
      assert (Sim.Time.compare l.Label.ts t.last_emitted_ts >= 0);
      t.last_emitted_ts <- l.Label.ts;
      t.emitted <- t.emitted + 1;
      t.emit l;
      drain ()
    | Some _ | None -> ()
  in
  drain ()

let create engine ~gears ~period ~emit () =
  let t =
    {
      gears;
      buffer = Sim.Heap.create ~cmp:Label.compare_ts_src ();
      emit;
      emitted = 0;
      last_emitted_ts = Sim.Time.zero;
      stopped = false;
    }
  in
  Sim.Engine.periodic engine ~every:period (fun () -> flush t) ~stop:(fun () -> t.stopped);
  t

let offer t label = Sim.Heap.push t.buffer label
let stop t = t.stopped <- true
let emitted t = t.emitted
let buffered t = Sim.Heap.size t.buffer
