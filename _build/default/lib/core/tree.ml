type t = {
  n : int;
  adj : int list array;
  edges : (int * int) list;
  attach : int array;
  dcs_at : int list array;
  next : int array array; (* next.(a).(b) = neighbor of a toward b; -1 on diagonal *)
  behind : (int * int, int list) Hashtbl.t; (* directed serializer edge -> dcs *)
}

let bfs_parents adj root =
  let n = Array.length adj in
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  let q = Queue.create () in
  visited.(root) <- true;
  Queue.push root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- u;
          Queue.push v q
        end)
      adj.(u)
  done;
  (parent, visited)

let create ~n_serializers ~edges ~attach =
  let n = n_serializers in
  if n < 1 then invalid_arg "Tree.create: need at least one serializer";
  if List.length edges <> n - 1 then invalid_arg "Tree.create: a tree over n nodes has n-1 edges";
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Tree.create: invalid edge";
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  let _, visited = bfs_parents adj 0 in
  if not (Array.for_all Fun.id visited) then invalid_arg "Tree.create: disconnected";
  Array.iter
    (fun s -> if s < 0 || s >= n then invalid_arg "Tree.create: attachment out of range")
    attach;
  let n_dcs = Array.length attach in
  let dcs_at = Array.make n [] in
  for dc = n_dcs - 1 downto 0 do
    dcs_at.(attach.(dc)) <- dc :: dcs_at.(attach.(dc))
  done;
  (* next hops: BFS from every destination; next.(a).(dst) follows parents. *)
  let next = Array.make_matrix n n (-1) in
  for dst = 0 to n - 1 do
    let parent, _ = bfs_parents adj dst in
    for a = 0 to n - 1 do
      if a <> dst then next.(a).(dst) <- parent.(a)
    done
  done;
  let behind = Hashtbl.create 16 in
  Array.iteri
    (fun a neighbors ->
      List.iter
        (fun b ->
          let dcs =
            List.filter
              (fun dc ->
                let s = attach.(dc) in
                s <> a && next.(a).(s) = b)
              (List.init n_dcs Fun.id)
          in
          Hashtbl.replace behind (a, b) dcs)
        neighbors)
    adj;
  { n; adj; edges; attach; dcs_at; next; behind }

let star ~n_dcs = create ~n_serializers:1 ~edges:[] ~attach:(Array.make n_dcs 0)
let n_serializers t = t.n
let n_dcs t = Array.length t.attach
let edges t = t.edges
let neighbors t s = t.adj.(s)
let serializer_of t ~dc = t.attach.(dc)
let dcs_at t s = t.dcs_at.(s)

let next_hop t ~src ~dst =
  if src = dst then invalid_arg "Tree.next_hop: src = dst";
  t.next.(src).(dst)

let serializer_path t ~src_dc ~dst_dc =
  let src = t.attach.(src_dc) and dst = t.attach.(dst_dc) in
  let rec walk s acc = if s = dst then List.rev (s :: acc) else walk t.next.(s).(dst) (s :: acc) in
  walk src []

let dcs_behind t ~from ~via =
  match Hashtbl.find_opt t.behind (from, via) with
  | Some dcs -> dcs
  | None -> invalid_arg "Tree.dcs_behind: not an edge"

let routes_toward t ~at ~dc =
  let s = t.attach.(dc) in
  if s = at then None else Some t.next.(at).(s)

let pp ppf t =
  Format.fprintf ppf "tree(%d serializers; edges:" t.n;
  List.iter (fun (a, b) -> Format.fprintf ppf " %d-%d" a b) t.edges;
  Format.fprintf ppf "; attach:";
  Array.iteri (fun dc s -> Format.fprintf ppf " dc%d→s%d" dc s) t.attach;
  Format.fprintf ppf ")"
