type btree = Leaf of int | Node of btree * btree

let rec leaves = function Leaf d -> [ d ] | Node (l, r) -> leaves l @ leaves r
let rec count_nodes = function Leaf _ -> 1 | Node (l, r) -> 1 + count_nodes l + count_nodes r

let insertions t ~dc =
  (* Replacing any subtree s by Node(Leaf dc, s) hangs the new leaf off the
     edge above s; replacing the root covers the new-root case. *)
  let rec at_positions t =
    let here = Node (Leaf dc, t) in
    match t with
    | Leaf _ -> [ here ]
    | Node (l, r) ->
      here
      :: (List.map (fun l' -> Node (l', r)) (at_positions l)
         @ List.map (fun r' -> Node (l, r')) (at_positions r))
  in
  at_positions t

let to_tree bt ~n_dcs =
  match bt with
  | Leaf _ -> invalid_arg "Config_gen.to_tree: a single leaf has no serializer"
  | Node _ ->
    let next_id = ref 0 in
    let edges = ref [] in
    let attach = Array.make n_dcs (-1) in
    (* returns the serializer id of the subtree root *)
    let rec build = function
      | Leaf _ -> assert false
      | Node (l, r) ->
        let id = !next_id in
        incr next_id;
        let handle = function
          | Leaf dc -> attach.(dc) <- id
          | Node _ as child ->
            let cid = build child in
            edges := (id, cid) :: !edges
        in
        handle l;
        handle r;
        id
    in
    let _root = build bt in
    Array.iteri
      (fun dc s -> if s < 0 then invalid_arg (Printf.sprintf "Config_gen.to_tree: dc %d missing" dc))
      attach;
    Tree.create ~n_serializers:!next_id ~edges:!edges ~attach

let fuse config =
  let rec step config =
    let tree = Config.tree config in
    let place = Config.placement config in
    let fusable =
      List.find_opt
        (fun (a, b) ->
          place.(a) = place.(b)
          && Sim.Time.equal (Config.delay config ~from:a ~hop:(To_serializer b)) Sim.Time.zero
          && Sim.Time.equal (Config.delay config ~from:b ~hop:(To_serializer a)) Sim.Time.zero)
        (Tree.edges tree)
    in
    match fusable with
    | None -> config
    | Some (a, b) ->
      (* contract b into a; renumber serializers > b down by one *)
      let rename s = if s = b then a else if s > b then s - 1 else s in
      let n' = Tree.n_serializers tree - 1 in
      let edges' =
        List.filter_map
          (fun (x, y) ->
            if (x = a && y = b) || (x = b && y = a) then None
            else Some (rename x, rename y))
          (Tree.edges tree)
      in
      let attach' = Array.init (Tree.n_dcs tree) (fun dc -> rename (Tree.serializer_of tree ~dc)) in
      let tree' = Tree.create ~n_serializers:n' ~edges:edges' ~attach:attach' in
      let place' = Array.init n' (fun s -> place.(if s >= b then s + 1 else s)) in
      (* b inherited a's site, so dropping b's entry keeps placements right *)
      place'.(rename a) <- place.(a);
      let config' = Config.create ~tree:tree' ~placement:place' ~dc_sites:(Config.dc_sites config) () in
      List.iter
        (fun (x, y) ->
          let dx = Config.delay config ~from:x ~hop:(To_serializer y) in
          if not (Sim.Time.equal dx Sim.Time.zero) then
            Config.set_delay config' ~from:(rename x) ~hop:(To_serializer (rename y)) dx;
          let dy = Config.delay config ~from:y ~hop:(To_serializer x) in
          if not (Sim.Time.equal dy Sim.Time.zero) then
            Config.set_delay config' ~from:(rename y) ~hop:(To_serializer (rename x)) dy)
        edges';
      for dc = 0 to Tree.n_dcs tree - 1 do
        let s = Tree.serializer_of tree ~dc in
        let d = Config.delay config ~from:s ~hop:(To_dc dc) in
        if not (Sim.Time.equal d Sim.Time.zero) then
          Config.set_delay config' ~from:(rename s) ~hop:(To_dc dc) d
      done;
      step config'
  in
  step config

let find_configurations ?(threshold = 25.0) ?(pool = 10) ?(seed = 42) ?insertion_order ~top problem =
  let n = Array.length problem.Config_solver.dc_sites in
  if n < 2 then invalid_arg "Config_gen.find_configuration: need at least 2 datacenters";
  let order = match insertion_order with Some o -> o | None -> List.init n Fun.id in
  (match List.sort_uniq Int.compare order with
  | sorted when sorted = List.init n Fun.id -> ()
  | _ -> invalid_arg "Config_gen.find_configuration: order must be a permutation of dcs");
  let rng = Sim.Rng.create ~seed in
  (* rank a partial tree on the sub-problem over the leaves it contains *)
  let rank bt =
    let present = List.sort Int.compare (leaves bt) in
    let f = List.length present in
    let index = Hashtbl.create 8 in
    List.iteri (fun i dc -> Hashtbl.replace index dc i) present;
    let orig = Array.of_list present in
    let rec relabel = function
      | Leaf dc -> Leaf (Hashtbl.find index dc)
      | Node (l, r) -> Node (relabel l, relabel r)
    in
    let sub_sites = Array.map (fun dc -> problem.Config_solver.dc_sites.(dc)) orig in
    let crit = problem.Config_solver.crit in
    let sub_crit =
      {
        Mismatch.n_dcs = f;
        weight = (fun i j -> crit.Mismatch.weight orig.(i) orig.(j));
        bulk = (fun i j -> crit.Mismatch.bulk orig.(i) orig.(j));
      }
    in
    let sub_problem = { problem with Config_solver.dc_sites = sub_sites; crit = sub_crit } in
    let tree = to_tree (relabel bt) ~n_dcs:f in
    let _, score = Config_solver.optimize_placement ~fast:true ~restarts:2 ~rng sub_problem tree in
    score
  in
  let filter ranked =
    (* FILTER of Alg. 3: cut at the first ranking gap wider than the
       threshold; additionally cap the pool. *)
    let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) ranked in
    let rec keep prev n = function
      | [] -> []
      | (t, s) :: rest ->
        if n >= pool || s -. prev > threshold then []
        else (t, s) :: keep s (n + 1) rest
    in
    match sorted with [] -> [] | (t, s) :: rest -> (t, s) :: keep s 1 rest
  in
  match order with
  | first :: second :: rest ->
    let init = Node (Leaf first, Leaf second) in
    let final_pool =
      List.fold_left
        (fun trees dc ->
          let expanded = List.concat_map (fun (t, _) -> insertions t ~dc) trees in
          let ranked = List.map (fun t -> (t, rank t)) expanded in
          filter ranked)
        [ (init, 0.) ]
        rest
    in
    let solved =
      List.map
        (fun (bt, _) ->
          let tree = to_tree bt ~n_dcs:n in
          let config, score = Config_solver.optimize_placement ~fast:false ~restarts:3 ~rng problem tree in
          (fuse config, score))
        final_pool
    in
    (match List.sort (fun (_, a) (_, b) -> Float.compare a b) solved with
    | [] -> invalid_arg "Config_gen.find_configurations: empty pool"
    | ranked -> List.filteri (fun i _ -> i < top) ranked)
  | _ -> invalid_arg "Config_gen.find_configurations: need at least 2 datacenters"

let find_configuration ?threshold ?pool ?seed ?insertion_order problem =
  match find_configurations ?threshold ?pool ?seed ?insertion_order ~top:1 problem with
  | best :: _ -> best
  | [] -> assert false
