type t = {
  engine : Engine.t;
  mutable free_at : Time.t; (* time at which the server drains its queue *)
  mutable busy : Time.t;
  mutable completed : int;
  mutable queued : int;
}

let create engine =
  { engine; free_at = Time.zero; busy = Time.zero; completed = 0; queued = 0 }

let submit t ~cost k =
  let cost = Time.max cost Time.zero in
  let now = Engine.now t.engine in
  let start = Time.max now t.free_at in
  let finish = Time.add start cost in
  t.free_at <- finish;
  t.busy <- Time.add t.busy cost;
  t.queued <- t.queued + 1;
  Engine.schedule_at t.engine finish (fun () ->
      t.queued <- t.queued - 1;
      t.completed <- t.completed + 1;
      k ())

let busy_time t = t.busy
let completed t = t.completed
let queue_length t = t.queued

let backlog t =
  let now = Engine.now t.engine in
  if Time.compare t.free_at now <= 0 then Time.zero else Time.sub t.free_at now
