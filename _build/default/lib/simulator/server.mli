(** Single-threaded server with a service-time (capacity) model.

    Every storage server, gear and serializer in the simulation is backed by
    one of these. Work items queue and execute one at a time; each item
    consumes a caller-declared service time. This is what turns per-operation
    metadata cost (scalar compare vs O(N) vector merge vs stabilization
    heartbeats) into the throughput differences the paper measures: a server
    saturates when offered-load × mean-service-time reaches 1. *)

type t

val create : Engine.t -> t

val submit : t -> cost:Time.t -> (unit -> unit) -> unit
(** Enqueues a work item that takes [cost] of server time; [k] runs at
    completion. Items complete in submission order. *)

val busy_time : t -> Time.t
(** Cumulative service time consumed — utilization = busy/elapsed. *)

val completed : t -> int
val queue_length : t -> int

val backlog : t -> Time.t
(** Service time currently queued ahead (0 when idle). *)
