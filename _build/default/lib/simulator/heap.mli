(** Array-based binary min-heap, polymorphic in the element type.

    The ordering function is supplied at creation time. Used by the event
    queue and by the statistics modules; kept generic so it can be
    property-tested in isolation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element at the top). *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; does not modify the heap. *)
