(** Deterministic pseudo-random number generator (splitmix64).

    The simulator never uses the global [Random] state: every stochastic
    component owns an [Rng.t] derived from the experiment seed, so a run is
    reproducible bit-for-bit from its seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new independent generator derived from [t]; advances [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
