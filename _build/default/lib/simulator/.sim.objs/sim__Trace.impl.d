lib/simulator/trace.ml: Array Engine Format List Time
