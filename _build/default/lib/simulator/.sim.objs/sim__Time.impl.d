lib/simulator/time.ml: Float Format Int Stdlib
