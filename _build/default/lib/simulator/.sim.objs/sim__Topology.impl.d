lib/simulator/topology.ml: Array Format Fun List String Time
