lib/simulator/link.ml: Engine Rng Time
