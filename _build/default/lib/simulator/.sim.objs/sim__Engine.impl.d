lib/simulator/engine.ml: Heap Int Time
