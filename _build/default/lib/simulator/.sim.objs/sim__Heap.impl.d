lib/simulator/heap.ml: Array
