lib/simulator/topology.mli: Format Time
