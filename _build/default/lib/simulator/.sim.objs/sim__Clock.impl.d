lib/simulator/clock.ml: Engine Time
