lib/simulator/ec2.ml: Fun List Topology
