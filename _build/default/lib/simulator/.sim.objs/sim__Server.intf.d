lib/simulator/server.mli: Engine Time
