lib/simulator/time.mli: Format
