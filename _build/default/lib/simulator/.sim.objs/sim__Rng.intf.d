lib/simulator/rng.mli:
