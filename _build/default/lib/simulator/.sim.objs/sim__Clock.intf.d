lib/simulator/clock.mli: Engine Time
