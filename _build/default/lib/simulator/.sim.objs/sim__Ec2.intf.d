lib/simulator/ec2.mli: Topology
