lib/simulator/heap.mli:
