lib/simulator/server.ml: Engine Time
