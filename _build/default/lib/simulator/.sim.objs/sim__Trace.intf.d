lib/simulator/trace.mli: Engine Format Time
