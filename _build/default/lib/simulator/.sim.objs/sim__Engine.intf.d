lib/simulator/engine.mli: Time
