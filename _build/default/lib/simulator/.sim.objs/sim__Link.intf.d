lib/simulator/link.mli: Engine Rng Time
