let region_names = [| "NV"; "NC"; "O"; "I"; "F"; "T"; "S" |]

(* Table 1 of the paper: average half-RTT in milliseconds. *)
let latency_ms =
  [|
    [| 0; 37; 49; 41; 45; 73; 115 |];
    [| 37; 0; 10; 74; 84; 52; 79 |];
    [| 49; 10; 0; 69; 79; 45; 81 |];
    [| 41; 74; 69; 0; 10; 107; 154 |];
    [| 45; 84; 79; 10; 0; 118; 161 |];
    [| 73; 52; 45; 107; 118; 0; 52 |];
    [| 115; 79; 81; 154; 161; 52; 0 |];
  |]

let topology = Topology.create ~names:region_names ~latency_ms
let nv = 0
let nc = 1
let o = 2
let i = 3
let f = 4
let t = 5
let s = 6
let first_n n = List.init n Fun.id
