(** Point-to-point FIFO network link.

    Links model the two transports the paper relies on:
    - the bulk-data transfer service between datacenters, and
    - the FIFO channels connecting serializers and datacenters
      (FIFO order is what makes the tree dissemination causal).

    Delivery time is [now + base latency + jitter + size/bandwidth], but
    never before a previously sent message: FIFO is enforced even under
    jitter. A link can be cut and restored to model partitions; messages in
    flight when the link is cut are dropped, messages sent while the link is
    down are dropped. *)

type t

val create :
  ?jitter_us:int ->
  ?bandwidth_bytes_per_us:float ->
  ?rng:Rng.t ->
  Engine.t ->
  latency:Time.t ->
  unit ->
  t
(** [jitter_us] adds a uniform random [0, jitter_us) component per message
    (requires [rng] when non-zero). [bandwidth_bytes_per_us], when given,
    adds a size-proportional transmission delay. *)

val send : t -> ?size_bytes:int -> (unit -> unit) -> unit
(** Schedules [deliver] on the receiving side after the link delay.
    [size_bytes] defaults to 0 (metadata-sized message). *)

val set_latency : t -> Time.t -> unit
(** Changes the base latency for subsequent messages (used by the
    latency-variability experiment, Fig. 6). *)

val latency : t -> Time.t

val cut : t -> unit
(** Take the link down: in-flight and future messages are dropped. *)

val restore : t -> unit

val is_up : t -> bool

val sent_count : t -> int
val delivered_count : t -> int
val dropped_count : t -> int
val bytes_sent : t -> int
