type entry = { at : Time.t; component : string; msg : string }

type t = {
  engine : Engine.t;
  capacity : int;
  mutable enabled : bool;
  buf : entry option array;
  mutable next : int;
  mutable count : int;
}

let create ?(capacity = 65536) engine =
  { engine; capacity; enabled = false; buf = Array.make capacity None; next = 0; count = 0 }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let log t ~component msg =
  if t.enabled then begin
    t.buf.(t.next) <- Some { at = Engine.now t.engine; component; msg };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- min (t.count + 1) t.capacity
  end

let logf t ~component fmt =
  if t.enabled then Format.kasprintf (fun msg -> log t ~component msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  let start = if t.count < t.capacity then 0 else t.next in
  let rec loop i acc =
    if i >= t.count then List.rev acc
    else
      let idx = (start + i) mod t.capacity in
      match t.buf.(idx) with
      | None -> loop (i + 1) acc
      | Some e -> loop (i + 1) ((e.at, e.component, e.msg) :: acc)
  in
  loop 0 []

let dump t ppf =
  List.iter
    (fun (at, component, msg) ->
      Format.fprintf ppf "[%a] %-16s %s@." Time.pp at component msg)
    (entries t)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0
