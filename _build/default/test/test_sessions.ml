(* Client session guarantees.

   Causal consistency subsumes the four classic session guarantees; the
   paper's client library realizes them through the causal-past label. We
   check them on Saturn with randomized single-client histories that roam
   across datacenters:
   - read your writes: a read never returns a version the store orders
     below the client's latest own write of that key;
   - monotonic reads: successive reads of a key never go backwards in the
     version (label) order;
   - monotonic writes / writes follow reads: the labels the client's
     operations produce are strictly increasing (gears dominate the causal
     past), so last-writer-wins can never reorder them. *)

let run_session ~seed =
  let engine = Sim.Engine.create () in
  let n_dcs = 3 in
  let n_keys = 10 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap = Kvstore.Replica_map.full ~n_dcs ~n_keys in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let _, system =
    Harness.Build.saturn engine
      { spec with Harness.Build.saturn_config = Some (Harness.Build.solve_config spec) }
      metrics
  in
  let rng = Sim.Rng.create ~seed in
  let client = Saturn.Client_lib.create ~id:1 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  (* background writers create interleaving traffic *)
  let stop_at = Sim.Time.of_sec 3. in
  let payload = ref 1000 in
  for dc = 0 to n_dcs - 1 do
    let w = Saturn.Client_lib.create ~id:(10 + dc) ~home_site:dc_sites.(dc) ~preferred_dc:dc in
    let rec loop () =
      if Sim.Time.compare (Sim.Engine.now engine) stop_at < 0 then begin
        incr payload;
        Saturn.System.update system w ~key:(!payload mod n_keys)
          ~value:(Kvstore.Value.make ~payload:!payload ~size_bytes:2)
          ~k:(fun () -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 7) loop)
      end
    in
    Saturn.System.attach system w ~dc ~k:loop
  done;
  (* the probed session *)
  let own_writes : (int, Saturn.Label.t) Hashtbl.t = Hashtbl.create 8 in
  let last_read : (int, Saturn.Label.t) Hashtbl.t = Hashtbl.create 8 in
  let last_op_label = ref None in
  let violations = ref [] in
  let ops_done = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let observe_write key l =
    Hashtbl.replace own_writes key l;
    (* monotonic writes: each op label strictly above the previous *)
    (match !last_op_label with
    | Some prev when Saturn.Label.compare l prev <= 0 ->
      note "write label not above the previous op label"
    | Some _ | None -> ());
    last_op_label := Some l
  in
  let check_read key = function
    | None -> () (* unwritten key *)
    | Some (_, label) ->
      (match Hashtbl.find_opt own_writes key with
      | Some mine when Saturn.Label.compare label mine < 0 ->
        note "read-your-writes violated at key %d" key
      | Some _ | None -> ());
      (match Hashtbl.find_opt last_read key with
      | Some prev when Saturn.Label.compare label prev < 0 ->
        note "monotonic reads violated at key %d" key
      | Some _ | None -> ());
      Hashtbl.replace last_read key label
  in
  let rec session () =
    if Sim.Time.compare (Sim.Engine.now engine) stop_at < 0 && !violations = [] then begin
      let dice = Sim.Rng.int rng 100 in
      if dice < 45 then begin
        let key = Sim.Rng.int rng n_keys in
        let dc = Saturn.Client_lib.current_dc client in
        let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key in
        Saturn.System.read system client ~key ~k:(fun _ ->
            (* read the version+label through the store at completion time *)
            check_read key (Kvstore.Store.get store ~key);
            incr ops_done;
            session ())
      end
      else if dice < 75 then begin
        incr payload;
        let key = Sim.Rng.int rng n_keys in
        Saturn.System.update_with_label system client ~key
          ~value:(Kvstore.Value.make ~payload:!payload ~size_bytes:2)
          ~k:(fun label ->
            observe_write key label;
            incr ops_done;
            session ())
      end
      else begin
        let dest = Sim.Rng.int rng n_dcs in
        Saturn.System.migrate system client ~dest_dc:dest ~k:(fun () ->
            incr ops_done;
            session ())
      end
    end
  in
  Saturn.System.attach system client ~dc:0 ~k:session;
  Sim.Engine.run ~until:stop_at engine;
  (match !violations with [] -> () | v :: _ -> Alcotest.fail v);
  if !ops_done < 20 then Alcotest.failf "session too short (%d ops)" !ops_done

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "session guarantees across migrations (seed %d)" seed)
        `Slow
        (fun () -> run_session ~seed))
    [ 11; 12; 13; 14 ]
