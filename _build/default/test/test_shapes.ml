(* Shape assertions: slow tests that lock the paper's headline directions
   into the suite, so a calibration or protocol regression that flips a
   conclusion fails CI rather than silently shipping wrong benchmarks. *)

open Harness

let mini_setup ~n_dcs ~correlation =
  { Scenario.default_setup with
    Scenario.n_dcs;
    correlation;
    n_keys = 60 * n_dcs;
    clients_per_dc = 20;
    measure = Sim.Time.of_ms 700;
    warmup = Sim.Time.of_ms 250;
    cooldown = Sim.Time.of_ms 100;
  }

let test_fig1_directions () =
  (* GentleRain: flat throughput penalty, staleness grows with #DCs;
     Cure: growing throughput penalty, flat staleness *)
  let at n sys = Scenario.run sys (mini_setup ~n_dcs:n ~correlation:Workload.Keyspace.Full) in
  let ev3 = at 3 Scenario.Eventual and ev5 = at 5 Scenario.Eventual in
  let gr3 = at 3 Scenario.Gentlerain and gr5 = at 5 Scenario.Gentlerain in
  let cu3 = at 3 Scenario.Cure and cu5 = at 5 Scenario.Cure in
  let pen (ev : Scenario.outcome) (o : Scenario.outcome) =
    (ev.Scenario.throughput -. o.Scenario.throughput) /. ev.Scenario.throughput
  in
  if pen ev5 cu5 <= pen ev3 cu3 then Alcotest.fail "Cure's throughput penalty must grow with #DCs";
  if pen ev5 gr5 > 0.10 then Alcotest.fail "GentleRain's throughput penalty must stay small";
  let stale (o : Scenario.outcome) = o.Scenario.extra_visibility_ms in
  if stale gr5 <= stale gr3 then Alcotest.fail "GentleRain's staleness must grow with #DCs";
  if stale cu5 > 0.5 *. stale gr5 then Alcotest.fail "Cure must stay far fresher than GentleRain"

let test_saturn_sweet_spot () =
  (* the paper's core claim at 5 DCs, exponential correlation *)
  let setup = mini_setup ~n_dcs:5 ~correlation:Workload.Keyspace.Exponential in
  let ev = Scenario.run Scenario.Eventual setup in
  let sat = Scenario.run Scenario.Saturn_sys setup in
  let gr = Scenario.run Scenario.Gentlerain setup in
  let cu = Scenario.run Scenario.Cure setup in
  let t (o : Scenario.outcome) = o.Scenario.throughput in
  let extra (o : Scenario.outcome) = o.Scenario.extra_visibility_ms in
  if t sat < 0.95 *. t ev then Alcotest.fail "Saturn throughput must be within 5% of eventual";
  if t sat < t gr then Alcotest.fail "Saturn must beat GentleRain on throughput";
  if t sat < 1.1 *. t cu then Alcotest.fail "Saturn must clearly beat Cure on throughput";
  if extra sat > 0.3 *. extra gr then
    Alcotest.failf "Saturn staleness (%.1f) must be far below GentleRain (%.1f)" (extra sat) (extra gr)

let test_pconf_matches_longest_latency () =
  (* the P-configuration tends to the longest inter-DC travel time *)
  let setup = mini_setup ~n_dcs:5 ~correlation:Workload.Keyspace.Full in
  let o = Scenario.run Scenario.Saturn_peer setup in
  (* per destination the timestamp fallback waits for the slowest incoming
     promise; averaged over the NV NC O I F pairs that sits in the 65-110ms
     band, far above the ~50ms mean bulk latency *)
  let vis = o.Scenario.mean_visibility_ms in
  if vis < 65. || vis > 110. then
    Alcotest.failf "P-conf visibility should be slowest-path bound, got %.1f" vis

let test_partial_replication_traffic_shape () =
  (* Saturn's metadata traffic per label must shrink with the correlation *)
  let hops correlation =
    let setup = mini_setup ~n_dcs:5 ~correlation in
    let engine = Sim.Engine.create () in
    let sites = Scenario.dc_sites setup in
    let rmap = Scenario.replica_map setup in
    let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
    let spec =
      { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with
        Build.saturn_config = Some (Scenario.solved_config setup);
      }
    in
    let api, system = Build.saturn engine spec metrics in
    let workload =
      Workload.Synthetic.create
        { Workload.Synthetic.default with Workload.Synthetic.n_keys = setup.Scenario.n_keys }
        ~rmap ~topo:Sim.Ec2.topology ~dc_sites:sites
    in
    let clients = Driver.make_clients ~dc_sites:sites ~per_dc:10 in
    let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
    let _ =
      Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 100)
        ~measure:(Sim.Time.of_ms 500) ~cooldown:(Sim.Time.of_ms 100)
    in
    match Saturn.System.service system with
    | Some s ->
      float_of_int (Saturn.Service.total_label_hops s)
      /. float_of_int (max 1 (Saturn.Service.labels_input s))
    | None -> Alcotest.fail "no service"
  in
  let exp_hops = hops Workload.Keyspace.Exponential in
  let full_hops = hops Workload.Keyspace.Full in
  if exp_hops >= full_hops then
    Alcotest.failf "partial replication must cut label traffic (%.2f vs %.2f hops/label)"
      exp_hops full_hops

let suite =
  [
    Alcotest.test_case "figure 1 directions hold" `Slow test_fig1_directions;
    Alcotest.test_case "saturn occupies the sweet spot" `Slow test_saturn_sweet_spot;
    Alcotest.test_case "P-conf tends to the longest latency" `Slow test_pconf_matches_longest_latency;
    Alcotest.test_case "partial replication cuts label traffic" `Slow test_partial_replication_traffic_shape;
  ]
