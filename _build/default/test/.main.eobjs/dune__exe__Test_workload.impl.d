test/test_workload.ml: Alcotest Array Float Kvstore List QCheck QCheck_alcotest Sim Workload
