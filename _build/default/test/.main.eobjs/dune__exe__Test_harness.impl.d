test/test_harness.ml: Alcotest Array Harness Kvstore List Sim Stats Workload
