test/test_baselines.ml: Alcotest Array Baselines Harness Kvstore List Sim Stats String
