test/test_integration.ml: Alcotest Helpers Kvstore List Printf Saturn Sim
