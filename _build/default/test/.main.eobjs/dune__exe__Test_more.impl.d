test/test_more.ml: Alcotest Array Format Harness Helpers Kvstore List QCheck QCheck_alcotest Saturn Sim Stats String Workload
