test/test_consistency.ml: Alcotest Array Fun Harness Hashtbl Int Kvstore List Option Printf Saturn Set Sim String
