test/test_tree.ml: Alcotest Array Float Fun Int Kvstore List Printf QCheck QCheck_alcotest Saturn Sim
