test/test_label.ml: Alcotest Array Format Gen List QCheck QCheck_alcotest Saturn Sim
