test/test_shapes.ml: Alcotest Build Client Driver Harness Metrics Saturn Scenario Sim Workload
