test/test_kvstore.ml: Alcotest Array Int Kvstore List QCheck QCheck_alcotest Sim
