test/test_transport.ml: Alcotest Array Fun Hashtbl Int List QCheck QCheck_alcotest Saturn Sim
