test/test_sessions.ml: Alcotest Array Harness Hashtbl Kvstore List Printf Saturn Sim
