test/test_system.ml: Alcotest Array Helpers Kvstore List Printf Saturn Sim
