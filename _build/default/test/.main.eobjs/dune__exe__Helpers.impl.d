test/helpers.ml: Alcotest Array Kvstore List Saturn Sim
