test/main.mli:
