test/test_sim.ml: Alcotest Array Int List QCheck QCheck_alcotest Sim
