test/test_reconfig.ml: Alcotest Array Fun Helpers Kvstore List Option Saturn Sim String
