test/test_proxy.ml: Alcotest Kvstore List Saturn Sim
