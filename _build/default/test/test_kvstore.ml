(* Tests for the key-value substrate: values, stores, partitioning and the
   replica map. *)

let qtest = QCheck_alcotest.to_alcotest

let test_value () =
  let v = Kvstore.Value.make ~payload:7 ~size_bytes:128 in
  Alcotest.(check bool) "equal" true (Kvstore.Value.equal v v);
  Alcotest.(check bool) "not equal" false
    (Kvstore.Value.equal v (Kvstore.Value.make ~payload:8 ~size_bytes:128));
  Alcotest.check_raises "negative size" (Invalid_argument "Value.make: negative size") (fun () ->
      ignore (Kvstore.Value.make ~payload:0 ~size_bytes:(-1)))

let test_store_lww () =
  let s : (int, int) Kvstore.Store.t = Kvstore.Store.create () in
  let v n = Kvstore.Value.make ~payload:n ~size_bytes:1 in
  Alcotest.(check bool) "install on empty" true
    (Kvstore.Store.put_if_newer s ~cmp:Int.compare ~key:1 (v 1) 10);
  Alcotest.(check bool) "newer wins" true
    (Kvstore.Store.put_if_newer s ~cmp:Int.compare ~key:1 (v 2) 20);
  Alcotest.(check bool) "older rejected" false
    (Kvstore.Store.put_if_newer s ~cmp:Int.compare ~key:1 (v 3) 15);
  Alcotest.(check bool) "equal rejected" false
    (Kvstore.Store.put_if_newer s ~cmp:Int.compare ~key:1 (v 4) 20);
  (match Kvstore.Store.get s ~key:1 with
  | Some (value, 20) -> Alcotest.(check int) "latest payload" 2 value.Kvstore.Value.payload
  | Some _ | None -> Alcotest.fail "wrong version");
  Alcotest.(check int) "applied counter" 2 (Kvstore.Store.puts_applied s);
  Alcotest.(check int) "size" 1 (Kvstore.Store.size s);
  Alcotest.(check bool) "mem" true (Kvstore.Store.mem s ~key:1);
  Alcotest.(check bool) "not mem" false (Kvstore.Store.mem s ~key:2)

let prop_partitioning_in_range =
  QCheck.Test.make ~name:"partitioning stays in range and is deterministic" ~count:200
    QCheck.(pair (int_bound 10_000) (int_range 1 16))
    (fun (key, parts) ->
      let p = Kvstore.Partitioning.create ~partitions:parts in
      let r = Kvstore.Partitioning.responsible p ~key in
      r >= 0 && r < parts && r = Kvstore.Partitioning.responsible p ~key)

let test_partitioning_spreads () =
  let p = Kvstore.Partitioning.create ~partitions:4 in
  let counts = Array.make 4 0 in
  for key = 0 to 999 do
    let r = Kvstore.Partitioning.responsible p ~key in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iter
    (fun c -> if c < 150 || c > 350 then Alcotest.failf "unbalanced partitioning: %d" c)
    counts

let test_replica_map_basics () =
  let rm = Kvstore.Replica_map.create ~n_dcs:3 ~n_keys:6 ~assign:(fun k -> [ k mod 3; (k + 1) mod 3 ]) in
  Alcotest.(check (list int)) "replicas of 0" [ 0; 1 ] (Kvstore.Replica_map.replicas rm ~key:0);
  Alcotest.(check (list int)) "replicas of 2" [ 0; 2 ] (Kvstore.Replica_map.replicas rm ~key:2);
  Alcotest.(check bool) "replicates" true (Kvstore.Replica_map.replicates rm ~dc:1 ~key:0);
  Alcotest.(check bool) "not replicates" false (Kvstore.Replica_map.replicates rm ~dc:2 ~key:0);
  Alcotest.(check (float 1e-9)) "mean degree" 2. (Kvstore.Replica_map.mean_degree rm);
  Alcotest.(check int) "degree" 2 (Kvstore.Replica_map.degree rm ~key:4);
  (* keys 0,3 -> {0,1}; 1,4 -> {1,2}; 2,5 -> {2,0} => dc0 and dc1 share 0,3 *)
  Alcotest.(check int) "shared keys" 2 (Kvstore.Replica_map.shared_keys rm 0 1);
  Alcotest.(check (list int)) "local keys of dc0" [ 0; 2; 3; 5 ] (Kvstore.Replica_map.local_keys rm ~dc:0)

let test_replica_map_validation () =
  Alcotest.check_raises "empty replicas" (Invalid_argument "Replica_map.create: key with no replicas")
    (fun () -> ignore (Kvstore.Replica_map.create ~n_dcs:2 ~n_keys:1 ~assign:(fun _ -> [])));
  Alcotest.check_raises "dc out of range" (Invalid_argument "Replica_map.create: dc out of range")
    (fun () -> ignore (Kvstore.Replica_map.create ~n_dcs:2 ~n_keys:1 ~assign:(fun _ -> [ 5 ])))

let prop_replica_map_consistency =
  QCheck.Test.make ~name:"replicas(key) agrees with replicates(dc,key)" ~count:50
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, n_dcs) ->
      let rng = Sim.Rng.create ~seed in
      let n_keys = 40 in
      let rm =
        Kvstore.Replica_map.create ~n_dcs ~n_keys ~assign:(fun _ ->
            let deg = 1 + Sim.Rng.int rng n_dcs in
            List.init deg (fun _ -> Sim.Rng.int rng n_dcs))
      in
      let ok = ref true in
      for key = 0 to n_keys - 1 do
        let reps = Kvstore.Replica_map.replicas rm ~key in
        for dc = 0 to n_dcs - 1 do
          if Kvstore.Replica_map.replicates rm ~dc ~key <> List.mem dc reps then ok := false
        done;
        (* sorted and duplicate-free *)
        if List.sort_uniq Int.compare reps <> reps then ok := false
      done;
      !ok)

let test_replica_map_full () =
  let rm = Kvstore.Replica_map.full ~n_dcs:4 ~n_keys:10 in
  Alcotest.(check (float 1e-9)) "degree 4" 4. (Kvstore.Replica_map.mean_degree rm);
  Alcotest.(check int) "all shared" 10 (Kvstore.Replica_map.shared_keys rm 1 3)

let suite =
  [
    Alcotest.test_case "value" `Quick test_value;
    Alcotest.test_case "store last-writer-wins" `Quick test_store_lww;
    qtest prop_partitioning_in_range;
    Alcotest.test_case "partitioning balance" `Quick test_partitioning_spreads;
    Alcotest.test_case "replica map basics" `Quick test_replica_map_basics;
    Alcotest.test_case "replica map validation" `Quick test_replica_map_validation;
    qtest prop_replica_map_consistency;
    Alcotest.test_case "full replication map" `Quick test_replica_map_full;
  ]
