(* Shared helpers for the test suites. *)

let time = Alcotest.testable Sim.Time.pp Sim.Time.equal

let label = Alcotest.testable Saturn.Label.pp Saturn.Label.equal

(* A 3-datacenter star deployment over the first EC2 regions with full
   replication: the workhorse fixture for integration tests. *)
let star_system ?(n_dcs = 3) ?(n_keys = 64) ?(partitions = 2) ?(peer_mode = false)
    ?(serializer_replicas = 1) ?rmap ?hooks () =
  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap =
    match rmap with
    | Some rm -> rm
    | None -> Kvstore.Replica_map.full ~n_dcs ~n_keys
  in
  let tree = Saturn.Tree.star ~n_dcs in
  let config =
    Saturn.Config.create ~tree ~placement:[| dc_sites.(0) |] ~dc_sites:(Array.copy dc_sites) ()
  in
  let params =
    { (Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites ~rmap ~config) with
      partitions;
      peer_mode;
      serializer_replicas;
    }
  in
  let hooks = match hooks with Some h -> h | None -> Saturn.System.no_hooks in
  let system = Saturn.System.create engine params hooks in
  (engine, system)

let client ~id ~dc =
  Saturn.Client_lib.create ~id ~home_site:(List.nth (Sim.Ec2.first_n 7) dc) ~preferred_dc:dc

(* Run the engine until the continuation result materialises. *)
let run_until_some engine result =
  Sim.Engine.run ~until:(Sim.Time.of_sec 30.) engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "operation did not complete within simulated 30s"

let value ?(size = 8) payload = Kvstore.Value.make ~payload ~size_bytes:size
