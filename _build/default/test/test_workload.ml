(* Tests for the workload layer: replication patterns, the synthetic
   generator, the social graph, its partitioning and the op mix. *)

let qtest = QCheck_alcotest.to_alcotest
let dc_sites7 = Array.of_list (Sim.Ec2.first_n 7)

let test_keyspace_full () =
  let rng = Sim.Rng.create ~seed:1 in
  let rm = Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:70 Workload.Keyspace.Full in
  Alcotest.(check (float 1e-9)) "every key everywhere" 7. (Kvstore.Replica_map.mean_degree rm)

let test_keyspace_uniform_degree () =
  let rng = Sim.Rng.create ~seed:2 in
  let rm =
    Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:140
      (Workload.Keyspace.Uniform 3)
  in
  for key = 0 to 139 do
    Alcotest.(check int) "degree exactly 3" 3 (Kvstore.Replica_map.degree rm ~key);
    (* home always included *)
    Alcotest.(check bool) "home included" true
      (Kvstore.Replica_map.replicates rm ~dc:(key mod 7) ~key)
  done

let test_keyspace_distance_patterns () =
  let rng = Sim.Rng.create ~seed:3 in
  let exp_rm =
    Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:700
      Workload.Keyspace.Exponential
  in
  (* near pair (I,F @10ms) must share much more than a far pair (I,S @154ms) *)
  let near = Kvstore.Replica_map.shared_keys exp_rm Sim.Ec2.i Sim.Ec2.f in
  let far = Kvstore.Replica_map.shared_keys exp_rm Sim.Ec2.i Sim.Ec2.s in
  if near <= 2 * far then Alcotest.failf "exponential: near=%d should dwarf far=%d" near far;
  (* minimum degree 2 *)
  for key = 0 to 699 do
    if Kvstore.Replica_map.degree exp_rm ~key < 2 then Alcotest.failf "degree < 2 at key %d" key
  done

let test_keyspace_nearest_degree () =
  let rm = Workload.Keyspace.nearest_degree ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:70 ~degree:2 in
  Alcotest.(check (float 1e-9)) "degree 2" 2. (Kvstore.Replica_map.mean_degree rm);
  (* Ireland's nearest is Frankfurt: a key homed at I must replicate at F *)
  let key_at_i = Sim.Ec2.i in
  Alcotest.(check bool) "I's partner is F" true
    (Kvstore.Replica_map.replicates rm ~dc:Sim.Ec2.f ~key:key_at_i)

let test_synthetic_ratios () =
  let rng = Sim.Rng.create ~seed:4 in
  let rm = Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:140 Workload.Keyspace.Exponential in
  let w =
    Workload.Synthetic.create
      { Workload.Synthetic.n_keys = 140; value_size = 8; read_ratio = 0.8; remote_read_ratio = 0.25; seed = 5 }
      ~rmap:rm ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7
  in
  let reads = ref 0 and writes = ref 0 and remotes = ref 0 in
  for _ = 1 to 10_000 do
    match Workload.Synthetic.next w ~dc:3 with
    | Workload.Op.Read _ -> incr reads
    | Workload.Op.Write { value; _ } ->
      incr writes;
      Alcotest.(check int) "value size" 8 value.Kvstore.Value.size_bytes
    | Workload.Op.Remote_read _ -> incr remotes
  done;
  let frac x = float_of_int !x /. 10_000. in
  if Float.abs (frac writes -. 0.2) > 0.02 then Alcotest.failf "write ratio off: %f" (frac writes);
  (* remote = 25%% of reads = 20%% of all ops *)
  if Float.abs (frac remotes -. 0.2) > 0.02 then Alcotest.failf "remote ratio off: %f" (frac remotes)

let prop_synthetic_ops_well_formed =
  QCheck.Test.make ~name:"synthetic ops target valid keys/dcs" ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let rm =
        Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:70
          Workload.Keyspace.Exponential
      in
      let w =
        Workload.Synthetic.create
          { Workload.Synthetic.default with Workload.Synthetic.n_keys = 70; remote_read_ratio = 0.3; seed }
          ~rmap:rm ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7
      in
      let ok = ref true in
      for _ = 1 to 500 do
        let dc = Sim.Rng.int rng 7 in
        match Workload.Synthetic.next w ~dc with
        | Workload.Op.Read { key } | Workload.Op.Write { key; _ } ->
          if not (Kvstore.Replica_map.replicates rm ~dc ~key) then ok := false
        | Workload.Op.Remote_read { key; at } ->
          (* the target datacenter must hold the key *)
          if not (Kvstore.Replica_map.replicates rm ~dc:at ~key) then ok := false
      done;
      !ok)

(* ---- social graph ----------------------------------------------------------- *)

let graph = Workload.Social_graph.facebook_scaled ~n_users:1200 ~seed:11

let test_social_graph_stats () =
  Alcotest.(check int) "users" 1200 (Workload.Social_graph.n_users graph);
  let mean = Workload.Social_graph.mean_degree graph in
  if mean < 20. || mean > 40. then Alcotest.failf "mean degree should be ~30, got %.1f" mean;
  (* heavy tail: the max degree should far exceed the mean *)
  let mx = Workload.Social_graph.max_degree graph in
  if float_of_int mx < 3. *. mean then Alcotest.failf "no heavy tail: max %d vs mean %.1f" mx mean

let test_social_graph_symmetry () =
  for u = 0 to Workload.Social_graph.n_users graph - 1 do
    Array.iter
      (fun v ->
        if not (Array.exists (fun w -> w = u) (Workload.Social_graph.friends graph v)) then
          Alcotest.failf "asymmetric edge %d-%d" u v;
        if v = u then Alcotest.failf "self loop at %d" u)
      (Workload.Social_graph.friends graph u)
  done

let test_social_graph_deterministic () =
  let g2 = Workload.Social_graph.facebook_scaled ~n_users:1200 ~seed:11 in
  Alcotest.(check int) "same edge count" (Workload.Social_graph.n_edges graph)
    (Workload.Social_graph.n_edges g2)

(* ---- social partition ------------------------------------------------------- *)

let part = Workload.Social_partition.partition graph ~n_dcs:7 ~min_replicas:2 ~max_replicas:4 ~seed:12

let test_partition_replica_bounds () =
  let rm = Workload.Social_partition.replica_map part in
  Alcotest.(check int) "two keys per user" (2 * 1200) (Kvstore.Replica_map.n_keys rm);
  for u = 0 to 1199 do
    let wall = Workload.Social_partition.wall_key part ~user:u in
    let d = Kvstore.Replica_map.degree rm ~key:wall in
    if d < 2 || d > 4 then Alcotest.failf "user %d replicas out of bounds: %d" u d;
    (* the master always holds its user's data *)
    Alcotest.(check bool) "master holds wall" true
      (Kvstore.Replica_map.replicates rm ~dc:(Workload.Social_partition.master part ~user:u) ~key:wall);
    (* wall and albums share a replica set *)
    let album = Workload.Social_partition.album_key part ~user:u in
    Alcotest.(check (list int)) "wall/albums colocated"
      (Kvstore.Replica_map.replicas rm ~key:wall)
      (Kvstore.Replica_map.replicas rm ~key:album)
  done

let test_partition_locality () =
  let loc = Workload.Social_partition.locality part in
  (* the community-aware placement must beat random assignment (1/7 ≈ 0.14) *)
  if loc < 0.3 then Alcotest.failf "partitioner locality too low: %.2f" loc

let test_partition_more_replicas_more_coverage () =
  let tight = Workload.Social_partition.partition graph ~n_dcs:7 ~min_replicas:2 ~max_replicas:2 ~seed:12 in
  let wide = Workload.Social_partition.partition graph ~n_dcs:7 ~min_replicas:2 ~max_replicas:6 ~seed:12 in
  let mr p = Workload.Social_partition.mean_replication p in
  if mr wide <= mr tight then
    Alcotest.failf "max_replicas should raise replication: %.2f vs %.2f" (mr wide) (mr tight)

(* ---- social ops -------------------------------------------------------------- *)

let test_social_ops_mix_sums () =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. Workload.Social_ops.mix in
  Alcotest.(check (float 1e-9)) "mix sums to 1" 1.0 total

let test_social_ops_shape () =
  let ops = Workload.Social_ops.create part ~value_size:64 ~seed:13 in
  let rm = Workload.Social_partition.replica_map part in
  let reads = ref 0 and writes = ref 0 and remotes = ref 0 in
  let rng = Sim.Rng.create ~seed:14 in
  for _ = 1 to 5_000 do
    let user = Sim.Rng.int rng 1200 in
    let dc = Workload.Social_partition.master part ~user in
    match Workload.Social_ops.next ops ~user with
    | Workload.Op.Read { key } ->
      incr reads;
      if not (Kvstore.Replica_map.replicates rm ~dc ~key) then
        Alcotest.fail "local read of non-replicated key"
    | Workload.Op.Write { key; _ } ->
      incr writes;
      if not (Kvstore.Replica_map.replicates rm ~dc ~key) then
        Alcotest.fail "write to non-replicated key"
    | Workload.Op.Remote_read { key; at } ->
      incr remotes;
      if not (Kvstore.Replica_map.replicates rm ~dc:at ~key) then
        Alcotest.fail "remote read target lacks the key"
  done;
  let w = float_of_int !writes /. 5_000. in
  (* browsing-dominated: ~10% writes *)
  if w < 0.05 || w > 0.18 then Alcotest.failf "write fraction off: %.2f" w;
  if !remotes = 0 then Alcotest.fail "no remote reads generated under partial replication"

(* ---- trace record/replay ------------------------------------------------------ *)

let test_trace_roundtrip () =
  let ops =
    [
      (0, Workload.Op.Read { key = 3 });
      (0, Workload.Op.Write { key = 4; value = Kvstore.Value.make ~payload:9 ~size_bytes:64 });
      (1, Workload.Op.Remote_read { key = 5; at = 2 });
      (0, Workload.Op.Read { key = 6 });
    ]
  in
  let t = Workload.Trace.of_ops ops in
  Alcotest.(check int) "remaining" 4 (Workload.Trace.remaining t);
  let s = Workload.Trace.to_string t in
  let t2 = Workload.Trace.of_string s in
  (* per-client order preserved across the round trip *)
  (match Workload.Trace.next t2 ~client:0 with
  | Some (Workload.Op.Read { key = 3 }) -> ()
  | _ -> Alcotest.fail "client 0 first op");
  (match Workload.Trace.next t2 ~client:0 with
  | Some (Workload.Op.Write { key = 4; value }) ->
    Alcotest.(check int) "size survives" 64 value.Kvstore.Value.size_bytes
  | _ -> Alcotest.fail "client 0 second op");
  (match Workload.Trace.next t2 ~client:1 with
  | Some (Workload.Op.Remote_read { key = 5; at = 2 }) -> ()
  | _ -> Alcotest.fail "client 1 op");
  (match Workload.Trace.next t2 ~client:0 with
  | Some (Workload.Op.Read { key = 6 }) -> ()
  | _ -> Alcotest.fail "client 0 third op");
  Alcotest.(check (option (of_pp Workload.Op.pp))) "exhausted" None
    (Workload.Trace.next t2 ~client:0);
  Alcotest.(check (option (of_pp Workload.Op.pp))) "unknown client" None
    (Workload.Trace.next t2 ~client:7)

let test_trace_parse_errors_and_comments () =
  let t = Workload.Trace.of_string "# header\n\nR 1 2\n" in
  Alcotest.(check int) "comments skipped" 1 (Workload.Trace.remaining t);
  (match Workload.Trace.of_string "BOGUS 1" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line must raise")

let test_trace_record_from_generator () =
  let rng = Sim.Rng.create ~seed:9 in
  let rm = Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7 ~n_keys:70 Workload.Keyspace.Exponential in
  let w =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys = 70 }
      ~rmap:rm ~topo:Sim.Ec2.topology ~dc_sites:dc_sites7
  in
  let t =
    Workload.Trace.record ~clients:[ 0; 1; 2 ]
      ~next:(fun ~client -> Workload.Synthetic.next w ~dc:(client mod 7))
      ~ops_per_client:25
  in
  Alcotest.(check int) "75 ops recorded" 75 (Workload.Trace.remaining t);
  (* replay through a tiny saturn run: every op must be consumable *)
  let consumed = ref 0 in
  let rec drain client =
    match Workload.Trace.next t ~client with
    | Some _ ->
      incr consumed;
      drain client
    | None -> ()
  in
  List.iter drain [ 0; 1; 2 ];
  Alcotest.(check int) "all consumable" 75 !consumed

let suite =
  [
    Alcotest.test_case "full pattern" `Quick test_keyspace_full;
    Alcotest.test_case "uniform degree pattern" `Quick test_keyspace_uniform_degree;
    Alcotest.test_case "distance-based correlation patterns" `Quick test_keyspace_distance_patterns;
    Alcotest.test_case "nearest-degree pattern (Fig 1b)" `Quick test_keyspace_nearest_degree;
    Alcotest.test_case "synthetic generator ratios" `Quick test_synthetic_ratios;
    qtest prop_synthetic_ops_well_formed;
    Alcotest.test_case "social graph statistics" `Quick test_social_graph_stats;
    Alcotest.test_case "social graph symmetry" `Quick test_social_graph_symmetry;
    Alcotest.test_case "social graph determinism" `Quick test_social_graph_deterministic;
    Alcotest.test_case "partition replica bounds" `Quick test_partition_replica_bounds;
    Alcotest.test_case "partition locality" `Quick test_partition_locality;
    Alcotest.test_case "partition replication knob" `Quick test_partition_more_replicas_more_coverage;
    Alcotest.test_case "social op mix sums to 1" `Quick test_social_ops_mix_sums;
    Alcotest.test_case "social ops shape" `Quick test_social_ops_shape;
    Alcotest.test_case "trace round trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace comments and errors" `Quick test_trace_parse_errors_and_comments;
    Alcotest.test_case "trace recording" `Quick test_trace_record_from_generator;
  ]
