(* Tests for the serializer tree, configurations, the mismatch objective and
   the configuration generator/solver. *)

let qtest = QCheck_alcotest.to_alcotest

(* a chain of 3 serializers with 4 DCs:
   dc0,dc1 -> s0 ; dc2 -> s1 ; dc3 -> s2 ; edges s0-s1-s2 *)
let chain_tree () =
  Saturn.Tree.create ~n_serializers:3 ~edges:[ (0, 1); (1, 2) ] ~attach:[| 0; 0; 1; 2 |]

let test_tree_validation () =
  Alcotest.check_raises "edge count" (Invalid_argument "Tree.create: a tree over n nodes has n-1 edges")
    (fun () -> ignore (Saturn.Tree.create ~n_serializers:3 ~edges:[ (0, 1) ] ~attach:[| 0 |]));
  Alcotest.check_raises "disconnected" (Invalid_argument "Tree.create: disconnected") (fun () ->
      ignore (Saturn.Tree.create ~n_serializers:4 ~edges:[ (0, 1); (2, 3); (0, 1) ] ~attach:[| 0 |]));
  Alcotest.check_raises "self edge" (Invalid_argument "Tree.create: invalid edge") (fun () ->
      ignore (Saturn.Tree.create ~n_serializers:2 ~edges:[ (1, 1) ] ~attach:[| 0 |]))

let test_tree_routing () =
  let t = chain_tree () in
  Alcotest.(check int) "next hop 0->2" 1 (Saturn.Tree.next_hop t ~src:0 ~dst:2);
  Alcotest.(check (list int)) "path dc0->dc3" [ 0; 1; 2 ] (Saturn.Tree.serializer_path t ~src_dc:0 ~dst_dc:3);
  Alcotest.(check (list int)) "path within serializer" [ 0 ] (Saturn.Tree.serializer_path t ~src_dc:0 ~dst_dc:1);
  Alcotest.(check (list int)) "behind s0->s1" [ 2; 3 ] (Saturn.Tree.dcs_behind t ~from:0 ~via:1);
  Alcotest.(check (list int)) "behind s1->s0" [ 0; 1 ] (Saturn.Tree.dcs_behind t ~from:1 ~via:0);
  Alcotest.(check (option int)) "routes toward remote" (Some 1) (Saturn.Tree.routes_toward t ~at:0 ~dc:3);
  Alcotest.(check (option int)) "local attachment" None (Saturn.Tree.routes_toward t ~at:0 ~dc:1)

let test_tree_star () =
  let t = Saturn.Tree.star ~n_dcs:5 in
  Alcotest.(check int) "one serializer" 1 (Saturn.Tree.n_serializers t);
  Alcotest.(check (list int)) "all attached" [ 0; 1; 2; 3; 4 ] (Saturn.Tree.dcs_at t 0)

(* random tree generator: n serializers in a random parent structure *)
let random_tree_gen =
  QCheck.Gen.(
    let* n = 2 -- 7 in
    let* parents = list_repeat (n - 1) (int_bound 1000) in
    let edges = List.mapi (fun i p -> (i + 1, p mod (i + 1))) parents in
    let* n_dcs = 2 -- 6 in
    let* attach = list_repeat n_dcs (int_bound (n - 1)) in
    return (Saturn.Tree.create ~n_serializers:n ~edges ~attach:(Array.of_list attach)))

let arbitrary_tree = QCheck.make random_tree_gen

let prop_dcs_behind_partition =
  QCheck.Test.make ~name:"dcs_behind partitions the remote datacenters" ~count:100 arbitrary_tree
    (fun t ->
      let ok = ref true in
      for s = 0 to Saturn.Tree.n_serializers t - 1 do
        let local = Saturn.Tree.dcs_at t s in
        let behind = List.concat_map (fun b -> Saturn.Tree.dcs_behind t ~from:s ~via:b) (Saturn.Tree.neighbors t s) in
        let all = List.sort Int.compare (local @ behind) in
        if all <> List.init (Saturn.Tree.n_dcs t) Fun.id then ok := false
      done;
      !ok)

let prop_path_endpoints =
  QCheck.Test.make ~name:"serializer paths start/end at attachments" ~count:100 arbitrary_tree
    (fun t ->
      let n_dcs = Saturn.Tree.n_dcs t in
      let ok = ref true in
      for a = 0 to n_dcs - 1 do
        for b = 0 to n_dcs - 1 do
          let path = Saturn.Tree.serializer_path t ~src_dc:a ~dst_dc:b in
          (match (path, List.rev path) with
          | first :: _, last :: _ ->
            if first <> Saturn.Tree.serializer_of t ~dc:a then ok := false;
            if last <> Saturn.Tree.serializer_of t ~dc:b then ok := false
          | [], _ | _, [] -> ok := false);
          (* paths never repeat a serializer *)
          if List.sort_uniq Int.compare path <> List.sort Int.compare path then ok := false
        done
      done;
      !ok)

(* ---- Config --------------------------------------------------------------- *)

let test_config_latency () =
  let tree = chain_tree () in
  (* sites: use EC2 NV(0) NC(1) O(2) for the serializers; DCs at NV NV NC O *)
  let config =
    Saturn.Config.create ~tree ~placement:[| 0; 1; 2 |] ~dc_sites:[| 0; 0; 1; 2 |] ()
  in
  (* dc0 -> dc3: dc0(NV)->s0(NV)=0 + s0->s1 (NV-NC 37) + s1->s2 (NC-O 10) + s2->dc3(O)=0 *)
  Alcotest.(check int) "metadata latency" 47_000
    (Sim.Time.to_us (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:0 ~dst_dc:3));
  Saturn.Config.set_delay config ~from:0 ~hop:(Saturn.Config.To_serializer 1) (Sim.Time.of_ms 5);
  Alcotest.(check int) "with artificial delay" 52_000
    (Sim.Time.to_us (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:0 ~dst_dc:3));
  Saturn.Config.set_delay config ~from:2 ~hop:(Saturn.Config.To_dc 3) (Sim.Time.of_ms 2);
  Alcotest.(check int) "delivery delay" 54_000
    (Sim.Time.to_us (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:0 ~dst_dc:3));
  Alcotest.(check int) "reverse unaffected by directed delays" 47_000
    (Sim.Time.to_us (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:3 ~dst_dc:0));
  Alcotest.check_raises "negative delay" (Invalid_argument "Config.set_delay: negative delay")
    (fun () -> Saturn.Config.set_delay config ~from:0 ~hop:(Saturn.Config.To_serializer 1) (-1));
  let copy = Saturn.Config.copy config in
  Saturn.Config.clear_delays copy;
  Alcotest.(check int) "copy cleared" 47_000
    (Sim.Time.to_us (Saturn.Config.metadata_latency copy Sim.Ec2.topology ~src_dc:0 ~dst_dc:3));
  Alcotest.(check int) "original intact" 54_000
    (Sim.Time.to_us (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:0 ~dst_dc:3))

(* ---- Mismatch / solver ----------------------------------------------------- *)

let three_dc_problem () =
  let dc_sites = [| Sim.Ec2.nv; Sim.Ec2.nc; Sim.Ec2.o |] in
  let bulk i j = Sim.Topology.latency Sim.Ec2.topology dc_sites.(i) dc_sites.(j) in
  {
    Saturn.Config_solver.topo = Sim.Ec2.topology;
    dc_sites;
    candidates = Saturn.Config_solver.default_candidates ~dc_sites;
    crit = Saturn.Mismatch.uniform ~n_dcs:3 ~bulk;
  }

let test_solver_three_dcs () =
  let problem = three_dc_problem () in
  let tree = Saturn.Tree.star ~n_dcs:3 in
  let _config, score = Saturn.Config_solver.solve ~seed:5 problem tree in
  (* the star over NV/NC/O: placing the serializer anywhere gives some
     mismatch; the solver must find a placement no worse than every
     single-site alternative it could enumerate *)
  let best_manual =
    List.fold_left
      (fun acc site ->
        let c =
          Saturn.Config.create ~tree ~placement:[| site |]
            ~dc_sites:(Array.copy problem.Saturn.Config_solver.dc_sites) ()
        in
        let v = Saturn.Config_solver.optimize_delays problem c in
        Float.min acc v)
      infinity
      (Array.to_list problem.Saturn.Config_solver.candidates)
  in
  if score > best_manual +. 1e-6 then
    Alcotest.failf "solver (%.2f) worse than exhaustive placement (%.2f)" score best_manual

let test_optimize_delays_improves () =
  let problem = three_dc_problem () in
  let tree = Saturn.Tree.star ~n_dcs:3 in
  (* serializer at NV: NC->O via NV is 37+49=86 vs bulk 10: late (no delay
     can help); NV->NC is 0+37 matching bulk 37 *)
  let config =
    Saturn.Config.create ~tree ~placement:[| Sim.Ec2.nv |]
      ~dc_sites:(Array.copy problem.Saturn.Config_solver.dc_sites) ()
  in
  let before = Saturn.Mismatch.objective problem.Saturn.Config_solver.crit config Sim.Ec2.topology in
  let after = Saturn.Config_solver.optimize_delays problem config in
  Alcotest.(check bool) "no worse" true (after <= before +. 1e-9);
  (* objective consistency: returned value equals a fresh evaluation *)
  let fresh = Saturn.Mismatch.objective problem.Saturn.Config_solver.crit config Sim.Ec2.topology in
  Alcotest.(check (float 1e-6)) "objective consistent" after fresh

let test_mismatch_lower_bound () =
  let problem = three_dc_problem () in
  let tree = Saturn.Tree.star ~n_dcs:3 in
  let config =
    Saturn.Config.create ~tree ~placement:[| Sim.Ec2.nc |]
      ~dc_sites:(Array.copy problem.Saturn.Config_solver.dc_sites) ()
  in
  let crit = problem.Saturn.Config_solver.crit in
  let lb = Saturn.Mismatch.lower_bound crit config Sim.Ec2.topology in
  let obj = Saturn.Mismatch.objective crit config Sim.Ec2.topology in
  Alcotest.(check bool) "lower bound is a lower bound" true (lb <= obj +. 1e-9)

(* ---- Config generator ------------------------------------------------------ *)

let test_insertions_count () =
  (* a full binary tree with f leaves yields 2f-1 isomorphism classes *)
  let t2 = Saturn.Config_gen.Node (Leaf 0, Leaf 1) in
  Alcotest.(check int) "f=2 gives 3" 3 (List.length (Saturn.Config_gen.insertions t2 ~dc:2));
  let t3 = List.hd (Saturn.Config_gen.insertions t2 ~dc:2) in
  Alcotest.(check int) "f=3 gives 5" 5 (List.length (Saturn.Config_gen.insertions t3 ~dc:3));
  List.iter
    (fun t ->
      Alcotest.(check (list int)) "leaves preserved" [ 0; 1; 2 ]
        (List.sort Int.compare (Saturn.Config_gen.leaves t)))
    (Saturn.Config_gen.insertions t2 ~dc:2)

let test_count_nodes () =
  let open Saturn.Config_gen in
  Alcotest.(check int) "leaf" 1 (count_nodes (Leaf 0));
  Alcotest.(check int) "full tree with 3 leaves" 5
    (count_nodes (Node (Node (Leaf 0, Leaf 1), Leaf 2)))

let test_to_tree () =
  let bt = Saturn.Config_gen.Node (Node (Leaf 0, Leaf 1), Leaf 2) in
  let tree = Saturn.Config_gen.to_tree bt ~n_dcs:3 in
  Alcotest.(check int) "two serializers" 2 (Saturn.Tree.n_serializers tree);
  Alcotest.(check int) "dc2 at root" (Saturn.Tree.serializer_of tree ~dc:2) 0;
  Alcotest.(check bool) "dc0 and dc1 together" true
    (Saturn.Tree.serializer_of tree ~dc:0 = Saturn.Tree.serializer_of tree ~dc:1)

let test_find_configuration_three_dcs () =
  let problem = three_dc_problem () in
  let config, score = Saturn.Config_gen.find_configuration ~seed:7 problem in
  (* must be at least as good as the best solved star *)
  let star = Saturn.Tree.star ~n_dcs:3 in
  let _, star_score = Saturn.Config_solver.solve ~seed:7 problem star in
  if score > star_score +. 1e-6 then
    Alcotest.failf "generator (%.2f) worse than a solved star (%.2f)" score star_score;
  (* metadata latencies should be close to bulk for every pair *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j then begin
        let meta =
          Sim.Time.to_ms_float (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:i ~dst_dc:j)
        in
        let bulk =
          Sim.Time.to_ms_float
            (Sim.Topology.latency Sim.Ec2.topology
               problem.Saturn.Config_solver.dc_sites.(i)
               problem.Saturn.Config_solver.dc_sites.(j))
        in
        if Float.abs (meta -. bulk) > 15. then
          Alcotest.failf "pair %d->%d mismatch too large: meta=%.0f bulk=%.0f" i j meta bulk
      end
    done
  done

let test_solver_exact_agrees () =
  (* the heuristic must land on (or near) the exhaustive optimum *)
  let problem = three_dc_problem () in
  List.iter
    (fun tree ->
      let _, exact = Saturn.Config_solver.solve_exact problem tree in
      let _, heuristic = Saturn.Config_solver.solve ~seed:3 problem tree in
      if heuristic < exact -. 1e-6 then
        Alcotest.failf "heuristic (%.2f) beat the exhaustive optimum (%.2f)?!" heuristic exact;
      if heuristic > exact *. 1.10 +. 1e-6 then
        Alcotest.failf "heuristic (%.2f) more than 10%% off the optimum (%.2f)" heuristic exact)
    [
      Saturn.Tree.star ~n_dcs:3;
      Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 0; 1 |];
      Saturn.Tree.create ~n_serializers:3 ~edges:[ (0, 1); (1, 2) ] ~attach:[| 0; 1; 2 |];
    ]

let test_solver_exact_guard () =
  let problem = three_dc_problem () in
  let big = Saturn.Tree.create ~n_serializers:4 ~edges:[ (0, 1); (1, 2); (2, 3) ] ~attach:[| 0; 1; 2 |] in
  match Saturn.Config_solver.solve_exact ~max_enum:10 problem big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "enumeration guard must trip"

let test_find_configurations_backups () =
  (* §6.2: backup trees pre-computed to speed up reconfiguration *)
  let problem = three_dc_problem () in
  let ranked = Saturn.Config_gen.find_configurations ~seed:7 ~top:3 problem in
  Alcotest.(check bool) "returns at least one" true (List.length ranked >= 1);
  let scores = List.map snd ranked in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked best-first" true (non_decreasing scores);
  (* the head must agree with find_configuration *)
  let _, best = Saturn.Config_gen.find_configuration ~seed:7 problem in
  Alcotest.(check (float 1e-6)) "head is the winner" best (List.hd scores)

let test_backup_tree_switch () =
  (* pre-compute a backup, crash the primary tree, switch to the backup
     with the forced protocol: data keeps flowing *)
  let problem = three_dc_problem () in
  let ranked = Saturn.Config_gen.find_configurations ~seed:9 ~top:2 problem in
  let primary = fst (List.hd ranked) in
  let backup =
    match ranked with
    | _ :: (b, _) :: _ -> b
    | _ ->
      (* only one distinct configuration survived the pool: fall back to a
         star at a different site as the backup *)
      Saturn.Config.create ~tree:(Saturn.Tree.star ~n_dcs:3)
        ~placement:[| problem.Saturn.Config_solver.dc_sites.(2) |]
        ~dc_sites:(Array.copy problem.Saturn.Config_solver.dc_sites) ()
  in
  let engine = Sim.Engine.create () in
  let dc_sites = problem.Saturn.Config_solver.dc_sites in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys:8 in
  let params =
    Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites:(Array.copy dc_sites) ~rmap
      ~config:primary
  in
  let system = Saturn.System.create engine params Saturn.System.no_hooks in
  let c = Saturn.Client_lib.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let wrote_after_switch = ref false in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:1 ~value:(Kvstore.Value.make ~payload:1 ~size_bytes:2)
        ~k:(fun () -> ()));
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 100) (fun () ->
      for s = 0 to Saturn.Tree.n_serializers (Saturn.Config.tree primary) - 1 do
        Saturn.System.crash_serializer system s
      done;
      Saturn.System.switch_config system backup ~graceful:false);
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 200) (fun () ->
      Saturn.System.update system c ~key:2 ~value:(Kvstore.Value.make ~payload:2 ~size_bytes:2)
        ~k:(fun () -> wrote_after_switch := true));
  Sim.Engine.run ~until:(Sim.Time.of_sec 4.) engine;
  Alcotest.(check bool) "writes continued" true !wrote_after_switch;
  Alcotest.(check bool) "switch completed" true (Saturn.System.switch_complete system);
  for dc = 1 to 2 do
    let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key:2 in
    Alcotest.(check bool)
      (Printf.sprintf "key 2 visible at dc%d via the backup tree" dc)
      true
      (Kvstore.Store.mem store ~key:2)
  done

let test_fuse () =
  (* two serializers at the same site with zero delays fuse into one *)
  let tree = Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 1 |] in
  let config = Saturn.Config.create ~tree ~placement:[| Sim.Ec2.nv; Sim.Ec2.nv |] ~dc_sites:[| Sim.Ec2.nv; Sim.Ec2.nc |] () in
  let before = Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:0 ~dst_dc:1 in
  let fused = Saturn.Config_gen.fuse config in
  Alcotest.(check int) "one serializer" 1 (Saturn.Tree.n_serializers (Saturn.Config.tree fused));
  Alcotest.(check int) "latency preserved"
    (Sim.Time.to_us before)
    (Sim.Time.to_us (Saturn.Config.metadata_latency fused Sim.Ec2.topology ~src_dc:0 ~dst_dc:1))

let test_fuse_keeps_delayed_pairs () =
  (* a pair with a non-zero delay between them must NOT fuse *)
  let tree = Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 1 |] in
  let config = Saturn.Config.create ~tree ~placement:[| Sim.Ec2.nv; Sim.Ec2.nv |] ~dc_sites:[| Sim.Ec2.nv; Sim.Ec2.nc |] () in
  Saturn.Config.set_delay config ~from:0 ~hop:(Saturn.Config.To_serializer 1) (Sim.Time.of_ms 1);
  let fused = Saturn.Config_gen.fuse config in
  Alcotest.(check int) "still two serializers" 2 (Saturn.Tree.n_serializers (Saturn.Config.tree fused))

let suite =
  [
    Alcotest.test_case "tree validation" `Quick test_tree_validation;
    Alcotest.test_case "tree routing" `Quick test_tree_routing;
    Alcotest.test_case "star tree" `Quick test_tree_star;
    qtest prop_dcs_behind_partition;
    qtest prop_path_endpoints;
    Alcotest.test_case "config metadata latency" `Quick test_config_latency;
    Alcotest.test_case "solver beats exhaustive star placements" `Quick test_solver_three_dcs;
    Alcotest.test_case "delay optimization never hurts" `Quick test_optimize_delays_improves;
    Alcotest.test_case "mismatch lower bound" `Quick test_mismatch_lower_bound;
    Alcotest.test_case "Alg 3 insertion enumeration (2f-1)" `Quick test_insertions_count;
    Alcotest.test_case "binary-tree node counting" `Quick test_count_nodes;
    Alcotest.test_case "binary tree to serializer tree" `Quick test_to_tree;
    Alcotest.test_case "Alg 3 end-to-end on 3 DCs" `Quick test_find_configuration_three_dcs;
    Alcotest.test_case "exhaustive solver agrees with heuristic" `Quick test_solver_exact_agrees;
    Alcotest.test_case "exhaustive solver enumeration guard" `Quick test_solver_exact_guard;
    Alcotest.test_case "backup trees are ranked (§6.2)" `Quick test_find_configurations_backups;
    Alcotest.test_case "failover to a pre-computed backup tree" `Quick test_backup_tree_switch;
    Alcotest.test_case "serializer fusion" `Quick test_fuse;
    Alcotest.test_case "fusion respects delays" `Quick test_fuse_keeps_delayed_pairs;
  ]
