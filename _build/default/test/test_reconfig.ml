(* Integration tests for on-line reconfiguration (§6.2) and fault
   tolerance: tree switches under live traffic, serializer failures with
   the timestamp fallback, and chain-replicated serializers. *)

open Helpers

(* a live workload: [writers] clients per DC writing continuously *)
let start_writers engine system ~n_dcs ~until =
  let stop = Sim.Time.of_sec until in
  let payload = ref 0 in
  let issued = ref [] in
  let rec loop c () =
    if Sim.Time.compare (Sim.Engine.now engine) stop < 0 then begin
      incr payload;
      let p = !payload in
      Saturn.System.update system c ~key:(p mod 16)
        ~value:(Kvstore.Value.make ~payload:p ~size_bytes:2)
        ~k:(fun () ->
          issued := p :: !issued;
          Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 3) (loop c))
    end
  in
  for dc = 0 to n_dcs - 1 do
    let c = client ~id:(100 + dc) ~dc in
    Saturn.System.attach system c ~dc ~k:(loop c)
  done;
  issued

let check_convergence system ~n_dcs ~n_keys =
  for key = 0 to n_keys - 1 do
    let versions =
      List.filter_map
        (fun dc ->
          let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key in
          Option.map (fun ((v : Kvstore.Value.t), _) -> v.Kvstore.Value.payload)
            (Kvstore.Store.get store ~key))
        (List.init n_dcs Fun.id)
    in
    match versions with
    | [] -> ()
    | first :: rest ->
      if not (List.for_all (fun v -> v = first) rest) then
        Alcotest.failf "key %d diverged: %s" key
          (String.concat "," (List.map string_of_int versions))
  done

let alt_config ~dc_sites =
  (* a chain s0-s1 with dc0,dc1 at s0 and dc2 at s1 — different from the
     star the fixture starts with *)
  let tree = Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 0; 1 |] in
  Saturn.Config.create ~tree ~placement:[| dc_sites.(0); dc_sites.(2) |]
    ~dc_sites:(Array.copy dc_sites) ()

let test_graceful_switch_under_load () =
  let engine, system = star_system ~n_keys:16 () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
  let issued = start_writers engine system ~n_dcs:3 ~until:1.5 in
  (* switch trees mid-run *)
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 500) (fun () ->
      Saturn.System.switch_config system (alt_config ~dc_sites) ~graceful:true);
  Sim.Engine.run ~until:(Sim.Time.of_sec 5.) engine;
  Alcotest.(check bool) "switch completed" true (Saturn.System.switch_complete system);
  Alcotest.(check bool) "traffic flowed" true (List.length !issued > 100);
  check_convergence system ~n_dcs:3 ~n_keys:16

let test_forced_switch_after_crash () =
  let engine, system = star_system ~n_keys:16 () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
  let issued = start_writers engine system ~n_dcs:3 ~until:1.5 in
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 500) (fun () ->
      (* the single serializer of C1 dies; switch via the slow protocol *)
      Saturn.System.crash_serializer system 0;
      Saturn.System.switch_config system (alt_config ~dc_sites) ~graceful:false);
  Sim.Engine.run ~until:(Sim.Time.of_sec 6.) engine;
  Alcotest.(check bool) "switch completed" true (Saturn.System.switch_complete system);
  Alcotest.(check bool) "traffic flowed" true (List.length !issued > 100);
  check_convergence system ~n_dcs:3 ~n_keys:16

let test_causality_across_graceful_switch () =
  (* the c0-writes / c1-reads-then-writes scenario of the integration suite,
     with the switch racing the causal chain *)
  let visible = ref [] in
  let hooks =
    {
      Saturn.System.on_visible =
        (fun ~dc ~key ~origin_dc:_ ~origin_time:_ ~value:_ ->
          visible := (dc, key) :: !visible);
    }
  in
  let engine, system = star_system ~hooks ~n_keys:16 () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
  let c0 = client ~id:0 ~dc:0 and c1 = client ~id:1 ~dc:1 in
  let step = ref 0 in
  Saturn.System.attach system c0 ~dc:0 ~k:(fun () ->
      Saturn.System.update system c0 ~key:1 ~value:(value 11) ~k:(fun () -> step := 1));
  let rec poll () =
    Saturn.System.read system c1 ~key:1 ~k:(fun v ->
        match v with
        | Some _ -> Saturn.System.update system c1 ~key:2 ~value:(value 22) ~k:(fun () -> step := 2)
        | None -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 5) poll)
  in
  Saturn.System.attach system c1 ~dc:1 ~k:poll;
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 20) (fun () ->
      Saturn.System.switch_config system (alt_config ~dc_sites) ~graceful:true);
  Sim.Engine.run ~until:(Sim.Time.of_sec 5.) engine;
  Alcotest.(check int) "chain completed" 2 !step;
  let at2 = List.rev (List.filter (fun (dc, _) -> dc = 2) !visible) in
  (match (List.find_index (fun (_, k) -> k = 1) at2, List.find_index (fun (_, k) -> k = 2) at2) with
  | Some i1, Some i2 ->
    if i2 < i1 then Alcotest.fail "dependent update visible before its dependency across the switch"
  | _ -> Alcotest.fail "updates missing at dc2")

let test_replicated_serializer_survives_crash_under_load () =
  let engine, system = star_system ~n_keys:16 ~serializer_replicas:3 () in
  let issued = start_writers engine system ~n_dcs:3 ~until:1.0 in
  (match Saturn.System.service system with
  | Some service ->
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 300) (fun () ->
        Saturn.Service.crash_replica service ~serializer:0 ~replica:0);
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 600) (fun () ->
        Saturn.Service.crash_replica service ~serializer:0 ~replica:1)
  | None -> Alcotest.fail "expected a metadata service");
  Sim.Engine.run ~until:(Sim.Time.of_sec 5.) engine;
  Alcotest.(check bool) "traffic flowed" true (List.length !issued > 100);
  check_convergence system ~n_dcs:3 ~n_keys:16

let test_tree_partition_heals () =
  (* cut the serializer-to-dc path indirectly by cutting a tree edge of a
     two-serializer config; traffic must stall and then heal losslessly *)
  let engine = Sim.Engine.create () in
  let n_dcs = 3 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap = Kvstore.Replica_map.full ~n_dcs ~n_keys:16 in
  let config = alt_config ~dc_sites in
  let params =
    { (Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites ~rmap ~config) with
      Saturn.System.partitions = 2 }
  in
  let system = Saturn.System.create engine params Saturn.System.no_hooks in
  let issued = start_writers engine system ~n_dcs ~until:1.5 in
  (match Saturn.System.service system with
  | Some service ->
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 300) (fun () -> Saturn.Service.cut_edge service 0 1);
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 900) (fun () -> Saturn.Service.restore_edge service 0 1)
  | None -> Alcotest.fail "expected a metadata service");
  Sim.Engine.run ~until:(Sim.Time.of_sec 6.) engine;
  Alcotest.(check bool) "traffic flowed" true (List.length !issued > 100);
  check_convergence system ~n_dcs:3 ~n_keys:16

let suite =
  [
    Alcotest.test_case "graceful tree switch under load" `Quick test_graceful_switch_under_load;
    Alcotest.test_case "forced switch after serializer crash" `Quick test_forced_switch_after_crash;
    Alcotest.test_case "causality preserved across a switch" `Quick test_causality_across_graceful_switch;
    Alcotest.test_case "replicated serializer survives crashes under load" `Quick
      test_replicated_serializer_survives_crash_under_load;
    Alcotest.test_case "tree partition heals losslessly" `Quick test_tree_partition_heals;
  ]
