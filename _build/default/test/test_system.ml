(* System-level semantic tests: Algorithm 1 attach cases, clock skew,
   LWW convergence, bulk-path inflation and the cost model. *)

open Helpers

let test_attach_local_label_instant () =
  (* Alg 1 line 4: a causal past generated here never blocks the attach *)
  let engine, system = star_system () in
  let c = client ~id:0 ~dc:0 in
  let t_attach = ref None in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:1 ~value:(value 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          Saturn.System.attach system c ~dc:0 ~k:(fun () ->
              t_attach := Some (Sim.Time.sub (Sim.Engine.now engine) t0))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) engine;
  match !t_attach with
  | None -> Alcotest.fail "attach never completed"
  | Some d ->
    (* only the intra-dc round trip (2 x 250us) plus frontend time *)
    if Sim.Time.to_us d > 2_000 then
      Alcotest.failf "local attach should be instant, took %a" Sim.Time.pp d

let test_attach_remote_update_label_waits () =
  (* Alg 1 third case: attaching remotely with a fresh update label must
     wait for per-source stabilization *)
  let engine, system = star_system () in
  let c = client ~id:0 ~dc:0 in
  let dur = ref None in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:1 ~value:(value 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          Saturn.System.attach system c ~dc:1 ~k:(fun () ->
              dur := Some (Sim.Time.sub (Sim.Engine.now engine) t0))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  match !dur with
  | None -> Alcotest.fail "attach never completed"
  | Some d ->
    let ms = Sim.Time.to_ms_float d in
    (* NV->NC request is 37ms each way; the wait for the O (49ms into NV...)
       sources to stabilize past the fresh write overlaps the travel; total
       must exceed a plain RTT *)
    if ms < 74.0 then Alcotest.failf "conservative attach finished too fast: %.1f ms" ms;
    if ms > 200.0 then Alcotest.failf "conservative attach too slow: %.1f ms" ms

let test_migration_beats_conservative_on_near_pair () =
  let engine, system = star_system ~n_dcs:4 () in
  (* measure attach at dc1 (NC) from dc2 (O): 10ms apart; the star
     serializer sits at NV so the label path is 49+37=86ms... use the
     conservative wait dominated by Ireland (74ms into NC) as the contrast *)
  let c = client ~id:0 ~dc:2 in
  let mig = ref None and cons = ref None in
  Saturn.System.attach system c ~dc:2 ~k:(fun () ->
      Saturn.System.update system c ~key:1 ~value:(value 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          Saturn.System.migrate system c ~dest_dc:1 ~k:(fun () ->
              mig := Some (Sim.Time.sub (Sim.Engine.now engine) t0);
              (* go home, write again, then attach conservatively *)
              Saturn.System.attach system c ~dc:2 ~k:(fun () ->
                  Saturn.System.update system c ~key:2 ~value:(value 2) ~k:(fun () ->
                      let t1 = Sim.Engine.now engine in
                      Saturn.System.attach system c ~dc:1 ~k:(fun () ->
                          cons := Some (Sim.Time.sub (Sim.Engine.now engine) t1)))))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 3.) engine;
  match (!mig, !cons) with
  | Some _, Some _ -> () (* both paths complete; relative speed depends on topology *)
  | _ -> Alcotest.fail "migration or conservative attach never completed"

let test_clock_skew_preserves_causality () =
  (* give each datacenter a different clock offset; the sink/gear discipline
     must still deliver causally *)
  let engine = Sim.Engine.create () in
  let n_dcs = 3 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap = Kvstore.Replica_map.full ~n_dcs ~n_keys:8 in
  let tree = Saturn.Tree.star ~n_dcs in
  let config = Saturn.Config.create ~tree ~placement:[| dc_sites.(0) |] ~dc_sites () in
  let visible = ref [] in
  let hooks =
    {
      Saturn.System.on_visible =
        (fun ~dc ~key ~origin_dc:_ ~origin_time:_ ~value:_ -> visible := (dc, key) :: !visible);
    }
  in
  let params =
    { (Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites ~rmap ~config) with
      Saturn.System.clock_offsets =
        Some [| Sim.Time.of_ms 20; Sim.Time.of_ms (-15); Sim.Time.zero |];
    }
  in
  let system = Saturn.System.create engine params hooks in
  (* the classic chain: write at the fast-clock DC, read at the slow-clock
     DC, dependent write there; causal order must still hold at dc2 *)
  let c0 = client ~id:0 ~dc:0 and c1 = client ~id:1 ~dc:1 in
  Saturn.System.attach system c0 ~dc:0 ~k:(fun () ->
      Saturn.System.update system c0 ~key:1 ~value:(value 11) ~k:(fun () -> ()));
  let rec poll () =
    Saturn.System.read system c1 ~key:1 ~k:(function
      | Some _ -> Saturn.System.update system c1 ~key:2 ~value:(value 22) ~k:(fun () -> ())
      | None -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 5) poll)
  in
  Saturn.System.attach system c1 ~dc:1 ~k:poll;
  Sim.Engine.run ~until:(Sim.Time.of_sec 3.) engine;
  let at2 = List.rev (List.filter (fun (dc, _) -> dc = 2) !visible) in
  (match (List.find_index (fun (_, k) -> k = 1) at2, List.find_index (fun (_, k) -> k = 2) at2) with
  | Some i1, Some i2 ->
    if i2 < i1 then Alcotest.fail "clock skew broke causal delivery at dc2"
  | _ -> Alcotest.fail "updates missing at dc2");
  (* the gear discipline itself *)
  let clock_fast = Sim.Clock.create ~offset:(Sim.Time.of_ms 20) engine in
  let clock_slow = Sim.Clock.create ~offset:(Sim.Time.of_ms (-20)) engine in
  let fast = Saturn.Gear.create clock_fast ~dc:0 ~gear_id:0 in
  let slow = Saturn.Gear.create clock_slow ~dc:0 ~gear_id:1 in
  let l1 = Saturn.Gear.generate_ts fast ~client_ts:Sim.Time.zero in
  let l2 = Saturn.Gear.generate_ts slow ~client_ts:l1 in
  Alcotest.(check bool) "causality across skewed gears" true (Sim.Time.compare l2 l1 > 0)

let test_lww_convergence_on_conflict () =
  (* two concurrent writes to the same key at different DCs: all replicas
     must converge to the same winner *)
  let engine, system = star_system () in
  let c0 = client ~id:0 ~dc:0 and c1 = client ~id:1 ~dc:1 in
  Saturn.System.attach system c0 ~dc:0 ~k:(fun () ->
      Saturn.System.update system c0 ~key:5 ~value:(value 100) ~k:(fun () -> ()));
  Saturn.System.attach system c1 ~dc:1 ~k:(fun () ->
      Saturn.System.update system c1 ~key:5 ~value:(value 200) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  let winner dc =
    let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key:5 in
    match Kvstore.Store.get store ~key:5 with
    | Some (v, _) -> v.Kvstore.Value.payload
    | None -> Alcotest.failf "key 5 missing at dc%d" dc
  in
  let w0 = winner 0 in
  Alcotest.(check int) "dc1 agrees" w0 (winner 1);
  Alcotest.(check int) "dc2 agrees" w0 (winner 2)

let test_bulk_factor_slows_bulk_only () =
  let engine = Sim.Engine.create () in
  let n_dcs = 2 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap = Kvstore.Replica_map.full ~n_dcs ~n_keys:4 in
  let tree = Saturn.Tree.star ~n_dcs in
  let config = Saturn.Config.create ~tree ~placement:[| dc_sites.(0) |] ~dc_sites () in
  let seen_at = ref None in
  let hooks =
    {
      Saturn.System.on_visible =
        (fun ~dc:_ ~key:_ ~origin_dc:_ ~origin_time ~value:_ ->
          seen_at := Some (Sim.Time.sub (Sim.Engine.now engine) origin_time));
    }
  in
  let params =
    { (Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites ~rmap ~config) with
      Saturn.System.bulk_factor = 2.0 }
  in
  let system = Saturn.System.create engine params hooks in
  let c = client ~id:0 ~dc:0 in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:1 ~value:(value 1) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) engine;
  match !seen_at with
  | None -> Alcotest.fail "update never visible"
  | Some d ->
    (* NV->NC is 37ms; with bulk_factor 2.0 the payload takes ~74ms and
       visibility is payload-bound *)
    let ms = Sim.Time.to_ms_float d in
    if ms < 74.0 || ms > 90.0 then Alcotest.failf "expected ~74ms (2x bulk), got %.1f" ms

let test_counters () =
  let engine, system = star_system () in
  let c = client ~id:0 ~dc:0 in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:1 ~value:(value 1) ~k:(fun () ->
          Saturn.System.update system c ~key:2 ~value:(value 2) ~k:(fun () -> ())));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  Alcotest.(check int) "updates originated" 2 (Saturn.System.total_updates system);
  (* each update applied at the 2 other replicas *)
  Alcotest.(check int) "remote applies" 4 (Saturn.System.total_remote_applied system)

(* ---- cost model -------------------------------------------------------------- *)

let test_cost_model_shape () =
  let cm = Saturn.Cost_model.default in
  let ev = Saturn.Cost_model.eventual_write_us cm ~size_bytes:2 in
  let sat = Saturn.Cost_model.saturn_write_us cm ~size_bytes:2 in
  let gr = Saturn.Cost_model.gentlerain_write_us cm ~size_bytes:2 in
  let cure3 = Saturn.Cost_model.cure_write_us cm ~n_dcs:3 ~size_bytes:2 in
  let cure7 = Saturn.Cost_model.cure_write_us cm ~n_dcs:7 ~size_bytes:2 in
  Alcotest.(check bool) "eventual cheapest" true (ev <= sat && sat <= gr);
  Alcotest.(check bool) "cure grows with dcs" true (cure7 > cure3);
  Alcotest.(check bool) "cure above scalar systems" true (cure3 > gr);
  (* value size monotone *)
  let small = Saturn.Cost_model.eventual_read_us cm ~size_bytes:8 in
  let large = Saturn.Cost_model.eventual_read_us cm ~size_bytes:2048 in
  Alcotest.(check bool) "size raises cost" true (large > small);
  (* stabilization: cure pays more than gentlerain *)
  Alcotest.(check bool) "vector stabilization dearer" true
    (Saturn.Cost_model.cure_stab_us cm ~n_dcs:7 > Saturn.Cost_model.gentlerain_stab_us cm)

let test_label_size_constant () =
  (* the metadata footprint is independent of everything *)
  Alcotest.(check int) "17 bytes" 17 Saturn.Label.size_bytes

(* ---- replica map bitset edges -------------------------------------------------- *)

let test_replica_map_bitset_boundaries () =
  (* n_keys around the byte boundary of the bitset *)
  List.iter
    (fun n_keys ->
      let rm = Kvstore.Replica_map.create ~n_dcs:2 ~n_keys ~assign:(fun k -> [ k mod 2 ]) in
      for key = 0 to n_keys - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "key %d of %d" key n_keys)
          true
          (Kvstore.Replica_map.replicates rm ~dc:(key mod 2) ~key)
      done)
    [ 7; 8; 9; 16; 17 ]

let suite =
  [
    Alcotest.test_case "attach with a local label is instant" `Quick test_attach_local_label_instant;
    Alcotest.test_case "remote attach with fresh label waits" `Quick test_attach_remote_update_label_waits;
    Alcotest.test_case "migration and conservative paths both live" `Quick
      test_migration_beats_conservative_on_near_pair;
    Alcotest.test_case "clock skew: gear discipline" `Quick test_clock_skew_preserves_causality;
    Alcotest.test_case "LWW convergence under conflict" `Quick test_lww_convergence_on_conflict;
    Alcotest.test_case "bulk_factor inflates payload path" `Quick test_bulk_factor_slows_bulk_only;
    Alcotest.test_case "system counters" `Quick test_counters;
    Alcotest.test_case "cost model shape" `Quick test_cost_model_shape;
    Alcotest.test_case "labels are constant-size" `Quick test_label_size_constant;
    Alcotest.test_case "replica map bitset boundaries" `Quick test_replica_map_bitset_boundaries;
  ]
