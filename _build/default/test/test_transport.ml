(* Tests for the metadata transport: reliable FIFO channels, chain
   replication and the serializer tree service. *)

let qtest = QCheck_alcotest.to_alcotest

let make_channel ?(latency = Sim.Time.of_ms 5) ?(deferred = false) e received =
  let data = Sim.Link.create e ~latency () in
  let ack = Sim.Link.create e ~latency () in
  let recv =
    if deferred then
      Saturn.Reliable_fifo.receiver_deferred e ~deliver:(fun m ~confirm ->
          received := m :: !received;
          confirm ())
    else Saturn.Reliable_fifo.receiver e ~deliver:(fun m -> received := m :: !received)
  in
  let sender = Saturn.Reliable_fifo.sender e ~resend_period:(Sim.Time.of_ms 30) in
  Saturn.Reliable_fifo.connect sender ~data ~ack recv;
  (sender, recv, data, ack)

let test_fifo_basic () =
  let e = Sim.Engine.create () in
  let received = ref [] in
  let sender, recv, _, _ = make_channel e received in
  List.iter (Saturn.Reliable_fifo.send sender) [ 1; 2; 3 ];
  Sim.Engine.run ~until:(Sim.Time.of_ms 100) e;
  Saturn.Reliable_fifo.stop sender;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (List.rev !received);
  Alcotest.(check int) "all acked" 0 (Saturn.Reliable_fifo.unacked sender);
  Alcotest.(check int) "delivered counter" 3 (Saturn.Reliable_fifo.delivered recv)

let test_fifo_survives_cut () =
  let e = Sim.Engine.create () in
  let received = ref [] in
  let sender, _, data, ack = make_channel e received in
  Saturn.Reliable_fifo.send sender 1;
  (* cut mid-flight: the message is lost and must be retransmitted *)
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 2) (fun () ->
      Sim.Link.cut data;
      Sim.Link.cut ack;
      Saturn.Reliable_fifo.send sender 2);
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 40) (fun () ->
      Sim.Link.restore data;
      Sim.Link.restore ack);
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) e;
  Saturn.Reliable_fifo.stop sender;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "no loss, no reorder, no dup" [ 1; 2 ] (List.rev !received)

let prop_fifo_exactly_once_under_cuts =
  QCheck.Test.make ~name:"reliable fifo is exactly-once in order under cuts" ~count:40
    QCheck.(pair small_int (int_range 1 30))
    (fun (seed, n) ->
      let e = Sim.Engine.create () in
      let rng = Sim.Rng.create ~seed in
      let received = ref [] in
      let sender, _, data, ack = make_channel e received in
      for i = 1 to n do
        Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 500)) (fun () ->
            Saturn.Reliable_fifo.send sender i)
      done;
      (* random cut/restore pulses *)
      for _ = 1 to 4 do
        let at = Sim.Rng.int rng 20_000 in
        Sim.Engine.schedule e ~delay:(Sim.Time.of_us at) (fun () ->
            Sim.Link.cut data;
            Sim.Link.cut ack);
        Sim.Engine.schedule e ~delay:(Sim.Time.of_us (at + 3_000)) (fun () ->
            Sim.Link.restore data;
            Sim.Link.restore ack)
      done;
      Sim.Engine.run ~until:(Sim.Time.of_sec 2.) e;
      Saturn.Reliable_fifo.stop sender;
      Sim.Engine.run e;
      List.rev !received = List.init n (fun i -> i + 1))

let test_fifo_deferred_ack () =
  (* without confirmation the sender keeps the backlog *)
  let e = Sim.Engine.create () in
  let confirms = ref [] in
  let data = Sim.Link.create e ~latency:(Sim.Time.of_ms 1) () in
  let ack = Sim.Link.create e ~latency:(Sim.Time.of_ms 1) () in
  let recv =
    Saturn.Reliable_fifo.receiver_deferred e ~deliver:(fun m ~confirm ->
        confirms := (m, confirm) :: !confirms)
  in
  let sender = Saturn.Reliable_fifo.sender e ~resend_period:(Sim.Time.of_ms 500) in
  Saturn.Reliable_fifo.connect sender ~data ~ack recv;
  Saturn.Reliable_fifo.send sender "x";
  Sim.Engine.run ~until:(Sim.Time.of_ms 50) e;
  Alcotest.(check int) "unacked until confirmed" 1 (Saturn.Reliable_fifo.unacked sender);
  (match !confirms with
  | [ (_, confirm) ] -> confirm ()
  | _ -> Alcotest.fail "expected one delivery");
  Sim.Engine.run ~until:(Sim.Time.of_ms 100) e;
  Saturn.Reliable_fifo.stop sender;
  Sim.Engine.run e;
  Alcotest.(check int) "acked after confirm" 0 (Saturn.Reliable_fifo.unacked sender)

(* ---- chain replication ----------------------------------------------------- *)

let make_chain ?(replicas = 3) e committed =
  Saturn.Chain.create e ~replicas ~intra_latency:(Sim.Time.of_us 300)
    ~deliver:(fun m -> committed := m :: !committed)
    ()

let feed chain e xs =
  List.iteri
    (fun i x ->
      Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 100)) (fun () ->
          Saturn.Chain.input chain ~ext_key:(0, i) x ~confirm:(fun () -> ())))
    xs

let test_chain_commit_order () =
  let e = Sim.Engine.create () in
  let committed = ref [] in
  let chain = make_chain e committed in
  feed chain e [ "a"; "b"; "c" ];
  Sim.Engine.run e;
  Alcotest.(check (list string)) "commit order" [ "a"; "b"; "c" ] (List.rev !committed);
  Alcotest.(check int) "committed count" 3 (Saturn.Chain.committed chain);
  Alcotest.(check int) "replicas alive" 3 (Saturn.Chain.alive_replicas chain)

let test_chain_confirm_after_commit () =
  let e = Sim.Engine.create () in
  let committed = ref [] in
  let chain = make_chain e committed in
  let confirmed_at = ref (-1) in
  Saturn.Chain.input chain ~ext_key:(1, 0) "m" ~confirm:(fun () -> confirmed_at := Sim.Engine.now e);
  Sim.Engine.run e;
  (* 2 hops down + 2 hops of commit-ack back up = 4 x 300us *)
  Alcotest.(check int) "ack after full chain round" 1_200 !confirmed_at

let test_chain_dedup () =
  let e = Sim.Engine.create () in
  let committed = ref [] in
  let chain = make_chain e committed in
  Saturn.Chain.input chain ~ext_key:(0, 0) "m" ~confirm:(fun () -> ());
  Saturn.Chain.input chain ~ext_key:(0, 0) "m" ~confirm:(fun () -> ());
  Sim.Engine.run e;
  Alcotest.(check (list string)) "retransmission not re-committed" [ "m" ] !committed;
  (* late retransmission after commit confirms immediately *)
  let confirmed = ref false in
  Saturn.Chain.input chain ~ext_key:(0, 0) "m" ~confirm:(fun () -> confirmed := true);
  Alcotest.(check bool) "post-commit retransmission confirmed" true !confirmed

let crash_test ~replica_to_crash () =
  let e = Sim.Engine.create () in
  let committed = ref [] in
  let chain = make_chain e committed in
  feed chain e [ "a"; "b"; "c"; "d" ];
  (* crash mid-stream *)
  Sim.Engine.schedule e ~delay:(Sim.Time.of_us 350) (fun () ->
      Saturn.Chain.crash_replica chain replica_to_crash);
  Sim.Engine.run e;
  Alcotest.(check int) "two replicas left" 2 (Saturn.Chain.alive_replicas chain);
  Alcotest.(check (list string)) "no loss/dup/reorder" [ "a"; "b"; "c"; "d" ] (List.rev !committed)

let test_chain_crash_head () = crash_test ~replica_to_crash:0 ()
let test_chain_crash_middle () = crash_test ~replica_to_crash:1 ()
let test_chain_crash_tail () = crash_test ~replica_to_crash:2 ()

let test_chain_all_crash () =
  let e = Sim.Engine.create () in
  let committed = ref [] in
  let chain = make_chain ~replicas:2 e committed in
  Saturn.Chain.crash_replica chain 0;
  Saturn.Chain.crash_replica chain 1;
  Alcotest.(check bool) "down" true (Saturn.Chain.is_down chain);
  (* inputs are silently dropped (no ack -> sender would retransmit) *)
  let confirmed = ref false in
  Saturn.Chain.input chain ~ext_key:(0, 0) "x" ~confirm:(fun () -> confirmed := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "no confirm while down" false !confirmed;
  Alcotest.check_raises "double crash rejected"
    (Invalid_argument "Chain.crash_replica: already crashed") (fun () ->
      Saturn.Chain.crash_replica chain 0)

let prop_chain_random_crashes =
  QCheck.Test.make ~name:"chain never loses/dups/reorders under a random crash" ~count:60
    QCheck.(triple small_int (int_range 1 20) (int_bound 2))
    (fun (seed, n, victim) ->
      let e = Sim.Engine.create () in
      let rng = Sim.Rng.create ~seed in
      let committed = ref [] in
      let chain = make_chain e committed in
      (* the chain promises order only to a sender that replays its
         unconfirmed messages at head change, which is exactly what the
         service's reliable channels do (Reliable_fifo.redeliver_unconfirmed) *)
      let unconfirmed : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let submit i =
        Hashtbl.replace unconfirmed i ();
        Saturn.Chain.input chain ~ext_key:(0, i) i ~confirm:(fun () -> Hashtbl.remove unconfirmed i)
      in
      Saturn.Chain.set_on_head_change chain (fun () ->
          let pending = List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) unconfirmed []) in
          List.iter submit pending);
      for i = 1 to n do
        Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 150)) (fun () -> submit i)
      done;
      let crash_at = Sim.Rng.int rng (n * 150 + 1_000) in
      Sim.Engine.schedule e ~delay:(Sim.Time.of_us crash_at) (fun () ->
          Saturn.Chain.crash_replica chain victim);
      Sim.Engine.run e;
      List.rev !committed = List.init n (fun i -> i + 1))

(* ---- service (serializer tree) --------------------------------------------- *)

let star_service ?(serializer_replicas = 1) ~interest e delivered =
  let tree = Saturn.Tree.star ~n_dcs:3 in
  let config =
    Saturn.Config.create ~tree ~placement:[| Sim.Ec2.nv |]
      ~dc_sites:[| Sim.Ec2.nv; Sim.Ec2.nc; Sim.Ec2.o |] ()
  in
  Saturn.Service.create e ~topo:Sim.Ec2.topology ~config ~interest
    ~deliver:(fun ~dc label -> delivered := (dc, label) :: !delivered)
    ~serializer_replicas ()

let update_label ~ts ~src ~key = Saturn.Label.update ~ts ~src_dc:src ~src_gear:0 ~key

let test_service_selective_delivery () =
  let e = Sim.Engine.create () in
  let delivered = ref [] in
  (* key 1 interests dc1 only; key 2 interests dc1 and dc2 *)
  let interest (l : Saturn.Label.t) =
    match l.Saturn.Label.target with
    | Saturn.Label.Update { key = 1 } -> [ 0; 1 ]
    | Saturn.Label.Update _ -> [ 0; 1; 2 ]
    | Saturn.Label.Migration { dest_dc } -> [ dest_dc ]
    | Saturn.Label.Epoch_change _ -> [ 0; 1; 2 ]
  in
  let service = star_service ~interest e delivered in
  Saturn.Service.input service ~dc:0 (update_label ~ts:10 ~src:0 ~key:1);
  Saturn.Service.input service ~dc:0 (update_label ~ts:20 ~src:0 ~key:2);
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) e;
  Saturn.Service.shutdown service;
  Sim.Engine.run e;
  let at dc = List.filter (fun (d, _) -> d = dc) !delivered in
  Alcotest.(check int) "dc1 got both" 2 (List.length (at 1));
  Alcotest.(check int) "dc2 only the shared key" 1 (List.length (at 2));
  Alcotest.(check int) "origin gets nothing back" 0 (List.length (at 0));
  Alcotest.(check int) "labels input" 2 (Saturn.Service.labels_input service);
  Alcotest.(check int) "labels delivered" 3 (Saturn.Service.labels_delivered service)

let test_service_migration_targeted () =
  (* migration labels go to the destination datacenter only *)
  let e = Sim.Engine.create () in
  let delivered = ref [] in
  let interest (l : Saturn.Label.t) =
    match l.Saturn.Label.target with
    | Saturn.Label.Migration { dest_dc } -> [ dest_dc ]
    | Saturn.Label.Update _ | Saturn.Label.Epoch_change _ -> [ 0; 1; 2 ]
  in
  let service = star_service ~interest e delivered in
  Saturn.Service.input service ~dc:0
    (Saturn.Label.migration ~ts:(Sim.Time.of_ms 5) ~src_dc:0 ~src_gear:0 ~dest_dc:2);
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) e;
  Saturn.Service.shutdown service;
  Sim.Engine.run e;
  Alcotest.(check int) "only the destination" 1 (List.length !delivered);
  (match !delivered with
  | [ (2, l) ] -> Alcotest.(check bool) "is the migration" true (Saturn.Label.is_migration l)
  | _ -> Alcotest.fail "wrong destination")

let test_service_skips_labels_without_targets () =
  (* a label whose only interested dc is its origin never enters the tree *)
  let e = Sim.Engine.create () in
  let delivered = ref [] in
  let interest (l : Saturn.Label.t) =
    match l.Saturn.Label.target with
    | Saturn.Label.Update { key } when key = 1 -> [ 0 ] (* origin only *)
    | _ -> [ 0; 1; 2 ]
  in
  let service = star_service ~interest e delivered in
  Saturn.Service.input service ~dc:0 (update_label ~ts:10 ~src:0 ~key:1);
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) e;
  Saturn.Service.shutdown service;
  Sim.Engine.run e;
  Alcotest.(check int) "counted as input" 1 (Saturn.Service.labels_input service);
  Alcotest.(check int) "zero hops" 0 (Saturn.Service.total_label_hops service);
  Alcotest.(check int) "nothing delivered" 0 (List.length !delivered)

let test_service_preserves_order () =
  let e = Sim.Engine.create () in
  let delivered = ref [] in
  let interest _ = [ 0; 1; 2 ] in
  let service = star_service ~interest e delivered in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 50)) (fun () ->
        Saturn.Service.input service ~dc:0 (update_label ~ts:(i * 10) ~src:0 ~key:i))
  done;
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) e;
  Saturn.Service.shutdown service;
  Sim.Engine.run e;
  let keys_at dc =
    List.filter_map
      (fun (d, (l : Saturn.Label.t)) ->
        match l.Saturn.Label.target with
        | Saturn.Label.Update { key } when d = dc -> Some key
        | _ -> None)
      (List.rev !delivered)
  in
  Alcotest.(check (list int)) "dc1 in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (keys_at 1);
  Alcotest.(check (list int)) "dc2 in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (keys_at 2)

let test_service_edge_cut_transparent () =
  (* a chain tree: dc0 - s0 - s1 - dc1/dc2; cutting s0-s1 delays but never
     loses labels *)
  let e = Sim.Engine.create () in
  let delivered = ref [] in
  let tree = Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 1; 1 |] in
  let config =
    Saturn.Config.create ~tree ~placement:[| Sim.Ec2.nv; Sim.Ec2.nc |]
      ~dc_sites:[| Sim.Ec2.nv; Sim.Ec2.nc; Sim.Ec2.o |] ()
  in
  let service =
    Saturn.Service.create e ~topo:Sim.Ec2.topology ~config
      ~interest:(fun _ -> [ 0; 1; 2 ])
      ~deliver:(fun ~dc label -> delivered := (dc, label) :: !delivered)
      ()
  in
  Saturn.Service.cut_edge service 0 1;
  for i = 1 to 5 do
    Saturn.Service.input service ~dc:0 (update_label ~ts:(i * 10) ~src:0 ~key:i)
  done;
  Sim.Engine.run ~until:(Sim.Time.of_ms 500) e;
  Alcotest.(check int) "nothing through the cut" 0 (List.length !delivered);
  Saturn.Service.restore_edge service 0 1;
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) e;
  Saturn.Service.shutdown service;
  Sim.Engine.run e;
  Alcotest.(check int) "all delivered after restore" 10 (List.length !delivered);
  Alcotest.check_raises "unknown edge" (Invalid_argument "Service.cut_edge: not an edge") (fun () ->
      Saturn.Service.cut_edge service 0 0)

let test_service_chain_replica_crash_no_loss () =
  let e = Sim.Engine.create () in
  let delivered = ref [] in
  let interest _ = [ 0; 1; 2 ] in
  let service = star_service ~serializer_replicas:3 ~interest e delivered in
  for i = 1 to 20 do
    Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 200)) (fun () ->
        Saturn.Service.input service ~dc:0 (update_label ~ts:(i * 10) ~src:0 ~key:i))
  done;
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 2) (fun () ->
      Saturn.Service.crash_replica service ~serializer:0 ~replica:0);
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) e;
  Saturn.Service.shutdown service;
  Sim.Engine.run e;
  Alcotest.(check bool) "serializer still up" false (Saturn.Service.serializer_down service 0);
  let keys_at dc =
    List.filter_map
      (fun (d, (l : Saturn.Label.t)) ->
        match l.Saturn.Label.target with
        | Saturn.Label.Update { key } when d = dc -> Some key
        | _ -> None)
      (List.rev !delivered)
  in
  Alcotest.(check (list int)) "dc1 complete and ordered" (List.init 20 (fun i -> i + 1)) (keys_at 1);
  Alcotest.(check (list int)) "dc2 complete and ordered" (List.init 20 (fun i -> i + 1)) (keys_at 2)

(* the paper's correctness argument (§5.3 footnote): for causally related
   updates a → b, the lowest common ancestor serializer observes a's label
   before b's, so every interested datacenter receives them in order. We
   check it end-to-end on random trees: b is injected at the dc that just
   received a. *)
let prop_service_cross_dc_causality =
  let tree_gen =
    QCheck.Gen.(
      let* n = 1 -- 5 in
      let* parents = list_repeat (n - 1) (int_bound 1000) in
      let edges = List.mapi (fun i p -> (i + 1, p mod (i + 1))) parents in
      let* n_dcs = 3 -- 5 in
      let* attach = list_repeat n_dcs (int_bound (n - 1)) in
      let* sites = list_repeat n (int_bound 6) in
      return (n, edges, Array.of_list attach, Array.of_list sites, n_dcs))
  in
  QCheck.Test.make ~name:"service: cross-dc causal pairs delivered in order on random trees"
    ~count:60 (QCheck.make tree_gen)
    (fun (n, edges, attach, placement, n_dcs) ->
      let tree = Saturn.Tree.create ~n_serializers:n ~edges ~attach in
      let dc_sites = Array.init n_dcs (fun i -> i mod 7) in
      let config = Saturn.Config.create ~tree ~placement ~dc_sites () in
      let e = Sim.Engine.create () in
      let delivered = ref [] in
      let service = ref None in
      let svc =
        Saturn.Service.create e ~topo:Sim.Ec2.topology ~config
          ~interest:(fun _ -> List.init n_dcs Fun.id)
          ~deliver:(fun ~dc label ->
            delivered := (dc, label) :: !delivered;
            (* causal reaction: when dc1 receives the seed label, it issues
               a dependent one *)
            match (label.Saturn.Label.target, !service) with
            | Saturn.Label.Update { key = 100 }, Some s when dc = 1 ->
              Saturn.Service.input s ~dc:1 (update_label ~ts:(Sim.Time.to_us label.Saturn.Label.ts + 1) ~src:1 ~key:200)
            | _ -> ())
          ()
      in
      service := Some svc;
      Saturn.Service.input svc ~dc:0 (update_label ~ts:1000 ~src:0 ~key:100);
      Sim.Engine.run ~until:(Sim.Time.of_sec 3.) e;
      Saturn.Service.shutdown svc;
      Sim.Engine.run e;
      (* every dc other than 0 and 1 that received both must see 100 first *)
      let ok = ref true in
      for dc = 2 to n_dcs - 1 do
        let keys =
          List.filter_map
            (fun (d, (l : Saturn.Label.t)) ->
              match l.Saturn.Label.target with
              | Saturn.Label.Update { key } when d = dc -> Some key
              | _ -> None)
            (List.rev !delivered)
        in
        if keys <> [ 100; 200 ] then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "reliable fifo basics" `Quick test_fifo_basic;
    QCheck_alcotest.to_alcotest prop_service_cross_dc_causality;
    Alcotest.test_case "reliable fifo survives cuts" `Quick test_fifo_survives_cut;
    qtest prop_fifo_exactly_once_under_cuts;
    Alcotest.test_case "deferred acknowledgements" `Quick test_fifo_deferred_ack;
    Alcotest.test_case "chain commit order" `Quick test_chain_commit_order;
    Alcotest.test_case "chain confirms after commit" `Quick test_chain_confirm_after_commit;
    Alcotest.test_case "chain dedups retransmissions" `Quick test_chain_dedup;
    Alcotest.test_case "chain survives head crash" `Quick test_chain_crash_head;
    Alcotest.test_case "chain survives middle crash" `Quick test_chain_crash_middle;
    Alcotest.test_case "chain survives tail crash" `Quick test_chain_crash_tail;
    Alcotest.test_case "fully-crashed chain is silent" `Quick test_chain_all_crash;
    qtest prop_chain_random_crashes;
    Alcotest.test_case "service selective delivery" `Quick test_service_selective_delivery;
    Alcotest.test_case "service targets migrations" `Quick test_service_migration_targeted;
    Alcotest.test_case "service skips targetless labels" `Quick test_service_skips_labels_without_targets;
    Alcotest.test_case "service preserves per-dc order" `Quick test_service_preserves_order;
    Alcotest.test_case "service edge cut is transparent" `Quick test_service_edge_cut_transparent;
    Alcotest.test_case "service chain replica crash: no loss" `Quick test_service_chain_replica_crash_no_loss;
  ]
