(* End-to-end tests of the Saturn system: replication, causal visibility,
   migration, fallback. *)

open Helpers

let test_write_becomes_visible () =
  let engine, system = star_system () in
  let c0 = client ~id:0 ~dc:0 in
  let done_ = ref None in
  Saturn.System.attach system c0 ~dc:0 ~k:(fun () ->
      Saturn.System.update system c0 ~key:7 ~value:(value 100) ~k:(fun () -> done_ := Some ()));
  run_until_some engine done_;
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  (* the update must be installed at every replica *)
  for dc = 0 to 2 do
    let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key:7 in
    match Kvstore.Store.get store ~key:7 with
    | Some (v, _) -> Alcotest.(check int) (Printf.sprintf "payload at dc%d" dc) 100 v.Kvstore.Value.payload
    | None -> Alcotest.fail (Printf.sprintf "update missing at dc%d" dc)
  done

let test_causal_order_across_dcs () =
  (* classic causality scenario: c0 writes a at dc0; c1 reads a at dc1 and
     writes b; b must never be visible anywhere before a. *)
  let engine, system = star_system () in
  let visible : (int * int * Sim.Time.t) list ref = ref [] in
  let hooks =
    {
      Saturn.System.on_visible =
        (fun ~dc ~key ~origin_dc:_ ~origin_time:_ ~value:_ ->
          visible := (dc, key, Sim.Engine.now engine) :: !visible);
    }
  in
  (* rebuild with hooks *)
  let engine, system =
    ignore (engine, system);
    star_system ~hooks ()
  in
  let c0 = client ~id:0 ~dc:0 in
  let c1 = client ~id:1 ~dc:1 in
  let step = ref 0 in
  Saturn.System.attach system c0 ~dc:0 ~k:(fun () ->
      Saturn.System.update system c0 ~key:1 ~value:(value 11) ~k:(fun () -> step := 1));
  (* c1 polls key 1 at dc1 until it sees the write, then writes key 2 *)
  let rec poll () =
    Saturn.System.read system c1 ~key:1 ~k:(fun v ->
        match v with
        | Some _ -> Saturn.System.update system c1 ~key:2 ~value:(value 22) ~k:(fun () -> step := 2)
        | None -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 5) poll)
  in
  Saturn.System.attach system c1 ~dc:1 ~k:poll;
  Sim.Engine.run ~until:(Sim.Time.of_sec 10.) engine;
  Alcotest.(check int) "both updates issued" 2 !step;
  (* at dc2 (replicates both), key 2 must become visible after key 1 *)
  let at_dc2 = List.filter (fun (dc, _, _) -> dc = 2) !visible in
  let time_of key =
    match List.find_opt (fun (_, k, _) -> k = key) at_dc2 with
    | Some (_, _, t) -> t
    | None -> Alcotest.fail (Printf.sprintf "key %d never visible at dc2" key)
  in
  let t1 = time_of 1 and t2 = time_of 2 in
  if Sim.Time.compare t2 t1 < 0 then
    Alcotest.failf "causality violated at dc2: dependent write visible first (%a < %a)"
      Sim.Time.pp t2 Sim.Time.pp t1

let test_migration_attach () =
  (* a client writes at dc0, migrates to dc1, and must be able to read its
     own write immediately after attach *)
  let engine, system = star_system () in
  let c = client ~id:0 ~dc:0 in
  let result = ref None in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:3 ~value:(value 33) ~k:(fun () ->
          Saturn.System.migrate system c ~dest_dc:1 ~k:(fun () ->
              Saturn.System.read system c ~key:3 ~k:(fun v -> result := Some v))));
  let v = run_until_some engine result in
  match v with
  | Some v -> Alcotest.(check int) "own write visible after migration" 33 v.Kvstore.Value.payload
  | None -> Alcotest.fail "own write not visible after migration"

let test_peer_mode_converges () =
  (* P-configuration: no serializer tree at all; timestamp fallback must
     still deliver and converge *)
  let engine, system = star_system ~peer_mode:true () in
  let c = client ~id:0 ~dc:0 in
  let done_ = ref None in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:9 ~value:(value 99) ~k:(fun () -> done_ := Some ()));
  run_until_some engine done_;
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  for dc = 1 to 2 do
    let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key:9 in
    match Kvstore.Store.get store ~key:9 with
    | Some (v, _) -> Alcotest.(check int) (Printf.sprintf "dc%d" dc) 99 v.Kvstore.Value.payload
    | None -> Alcotest.fail (Printf.sprintf "peer mode: update missing at dc%d" dc)
  done

let test_serializer_crash_fallback () =
  (* crash the only serializer: the tree is down, but after switching the
     proxies to fallback, updates still become visible via timestamp order *)
  let engine, system = star_system () in
  let c = client ~id:0 ~dc:0 in
  Saturn.System.crash_serializer system 0;
  Saturn.System.enter_fallback system;
  let done_ = ref None in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:5 ~value:(value 55) ~k:(fun () -> done_ := Some ()));
  run_until_some engine done_;
  Sim.Engine.run ~until:(Sim.Time.of_sec 3.) engine;
  for dc = 1 to 2 do
    let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key:5 in
    match Kvstore.Store.get store ~key:5 with
    | Some (v, _) -> Alcotest.(check int) (Printf.sprintf "dc%d" dc) 55 v.Kvstore.Value.payload
    | None -> Alcotest.fail (Printf.sprintf "fallback: update missing at dc%d" dc)
  done

let test_partial_replication_no_leak () =
  (* genuine partial replication: dc2 replicates nothing of key 0, so it
     must never receive key 0's label or payload *)
  let n_keys = 8 in
  let rmap =
    Kvstore.Replica_map.create ~n_dcs:3 ~n_keys ~assign:(fun _ -> [ 0; 1 ])
  in
  let leaked = ref false in
  let hooks =
    {
      Saturn.System.on_visible =
        (fun ~dc ~key:_ ~origin_dc:_ ~origin_time:_ ~value:_ -> if dc = 2 then leaked := true);
    }
  in
  let engine, system = star_system ~rmap ~hooks ~n_keys () in
  let c = client ~id:0 ~dc:0 in
  let done_ = ref None in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:0 ~value:(value 1) ~k:(fun () -> done_ := Some ()));
  run_until_some engine done_;
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  Alcotest.(check bool) "dc2 received nothing" false !leaked;
  let store2 = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system 2) ~key:0 in
  Alcotest.(check bool) "dc2 store empty" false (Kvstore.Store.mem store2 ~key:0);
  (* and the interested replica did get it *)
  let store1 = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system 1) ~key:0 in
  Alcotest.(check bool) "dc1 store has it" true (Kvstore.Store.mem store1 ~key:0)

let suite =
  [
    Alcotest.test_case "write becomes visible at all replicas" `Quick test_write_becomes_visible;
    Alcotest.test_case "causal order across datacenters" `Quick test_causal_order_across_dcs;
    Alcotest.test_case "migration attach sees own writes" `Quick test_migration_attach;
    Alcotest.test_case "peer mode (P-conf) converges" `Quick test_peer_mode_converges;
    Alcotest.test_case "serializer crash + ts fallback" `Quick test_serializer_crash_fallback;
    Alcotest.test_case "genuine partial replication" `Quick test_partial_replication_no_leak;
  ]
