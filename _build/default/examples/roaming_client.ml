(* Client migration under partial geo-replication (§4.4).

     dune exec examples/roaming_client.exe

   A client based in Ireland needs data only replicated in Sydney and
   Tokyo. The example contrasts the two ways to get there:
   - migration labels: a label minted at home races down the serializer
     tree and unlocks the attach as soon as the causal past is covered;
   - the conservative path: wait until, from every datacenter, an update
     (or promise) with a timestamp at least the client's has been applied.

   Read-your-writes is checked in both directions. *)

let () =
  let engine = Sim.Engine.create () in
  let n_dcs = 7 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let region dc = Sim.Topology.name Sim.Ec2.topology dc_sites.(dc) in
  (* keys 0..31 live in Europe (I, F); keys 32..63 in Asia-Pacific (T, S) *)
  let rmap =
    Kvstore.Replica_map.create ~n_dcs ~n_keys:64 ~assign:(fun key ->
        if key < 32 then [ Sim.Ec2.i; Sim.Ec2.f ] else [ Sim.Ec2.t; Sim.Ec2.s ])
  in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let config = Harness.Build.solve_config spec in
  let _, system =
    Harness.Build.saturn engine { spec with Harness.Build.saturn_config = Some config } metrics
  in
  let c = Saturn.Client_lib.create ~id:1 ~home_site:dc_sites.(Sim.Ec2.i) ~preferred_dc:Sim.Ec2.i in
  let t0 () = Sim.Engine.now engine in
  let say fmt = Format.printf ("[%a] " ^^ fmt ^^ "@.") Sim.Time.pp (t0 ()) in
  Saturn.System.attach system c ~dc:Sim.Ec2.i ~k:(fun () ->
      say "attached at %s (home)" (region Sim.Ec2.i);
      Saturn.System.update system c ~key:3 ~value:(Kvstore.Value.make ~payload:100 ~size_bytes:8)
        ~k:(fun () ->
          say "wrote key 3 at home; causal past now includes it";
          let before = t0 () in
          (* migration label: minted at Ireland, targeted at Sydney *)
          Saturn.System.migrate system c ~dest_dc:Sim.Ec2.s ~k:(fun () ->
              say "attached at %s after %a (migration label beat the conservative wait)"
                (region Sim.Ec2.s)
                Sim.Time.pp (Sim.Time.sub (t0 ()) before);
              Saturn.System.update system c ~key:40
                ~value:(Kvstore.Value.make ~payload:200 ~size_bytes:8)
                ~k:(fun () ->
                  say "wrote key 40 in Sydney (only replicated in AP)";
                  let back = t0 () in
                  (* the causal past was minted at Sydney now; going home
                     uses the conservative attach (Algorithm 1) *)
                  Saturn.System.migrate system c ~dest_dc:Sim.Ec2.i ~k:(fun () ->
                      say "back at %s after %a" (region Sim.Ec2.i)
                        Sim.Time.pp (Sim.Time.sub (t0 ()) back);
                      Saturn.System.read system c ~key:3 ~k:(function
                        | Some v ->
                          say "read-your-writes at home: key 3 payload %d" v.Kvstore.Value.payload
                        | None -> say "BUG: lost our own write!"))))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 5.) engine;
  Saturn.System.stop system;
  Sim.Engine.run engine;
  Format.printf "@.note: no datacenter outside the replica sets ever received key 3 or key 40 —@.";
  Format.printf "genuine partial replication kept the metadata and data where it belongs.@."
