(* Online reconfiguration (§6.2): switch serializer trees without stopping
   the world.

     dune exec examples/reconfiguration.exe

   Live writers keep the system busy while the tree changes from a single
   serializer in Virginia to a two-serializer chain. The epoch-change
   protocol drains the old tree, buffers the new one, and no update is
   lost, duplicated or reordered. Then the example crashes the new tree's
   serializers and shows the timestamp fallback keeping data flowing. *)

let () =
  let engine = Sim.Engine.create () in
  let n_dcs = 3 in
  let n_keys = 32 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap = Kvstore.Replica_map.full ~n_dcs ~n_keys in
  let star =
    Saturn.Config.create ~tree:(Saturn.Tree.star ~n_dcs) ~placement:[| dc_sites.(0) |]
      ~dc_sites:(Array.copy dc_sites) ()
  in
  let chain =
    let tree = Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 1; 1 |] in
    Saturn.Config.create ~tree ~placement:[| dc_sites.(0); dc_sites.(2) |]
      ~dc_sites:(Array.copy dc_sites) ()
  in
  let params = Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites ~rmap ~config:star in
  let system = Saturn.System.create engine params Saturn.System.no_hooks in
  let say fmt = Format.printf ("[%a] " ^^ fmt ^^ "@.") Sim.Time.pp (Sim.Engine.now engine) in

  (* live writers *)
  let issued = ref 0 in
  let stop_at = Sim.Time.of_sec 3. in
  let payload = ref 0 in
  let rec writer c () =
    if Sim.Time.compare (Sim.Engine.now engine) stop_at < 0 then begin
      incr payload;
      Saturn.System.update system c ~key:(!payload mod n_keys)
        ~value:(Kvstore.Value.make ~payload:!payload ~size_bytes:8)
        ~k:(fun () ->
          incr issued;
          Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 2) (writer c))
    end
  in
  for dc = 0 to n_dcs - 1 do
    let c = Saturn.Client_lib.create ~id:dc ~home_site:dc_sites.(dc) ~preferred_dc:dc in
    Saturn.System.attach system c ~dc ~k:(writer c)
  done;

  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 500) (fun () ->
      say "switching to the two-serializer chain (graceful epoch change)...";
      Saturn.System.switch_config system chain ~graceful:true);
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 900) (fun () ->
      say "switch complete? %b" (Saturn.System.switch_complete system));
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_sec 1.5) (fun () ->
      say "crashing the metadata service; proxies fall back to timestamp order";
      Saturn.System.enter_fallback system);

  Sim.Engine.run ~until:(Sim.Time.of_sec 6.) engine;
  Saturn.System.stop system;
  Sim.Engine.run engine;

  say "writers issued %d updates across the switch and the outage" !issued;
  (* verify convergence *)
  let diverged = ref 0 in
  for key = 0 to n_keys - 1 do
    let versions =
      List.filter_map
        (fun dc ->
          let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key in
          Option.map (fun ((v : Kvstore.Value.t), _) -> v.Kvstore.Value.payload)
            (Kvstore.Store.get store ~key))
        (List.init n_dcs Fun.id)
    in
    match versions with
    | [] -> ()
    | first :: rest -> if not (List.for_all (fun v -> v = first) rest) then incr diverged
  done;
  say "diverged keys after quiescence: %d (expected 0)" !diverged
