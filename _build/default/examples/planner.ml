(* The configuration generator as a deployment planning tool (§5.4–5.5).

     dune exec examples/planner.exe

   Runs Algorithm 3 over all seven EC2 regions and prints the chosen
   serializer tree alongside a per-pair comparison of the metadata-path
   latency against the bulk path — the Weighted Minimal Mismatch the
   solver minimizes. Also contrasts it with the best single-serializer
   (S-conf) alternative. *)

let () =
  let dc_sites = Array.of_list (Sim.Ec2.first_n 7) in
  let n = Array.length dc_sites in
  let name i = Sim.Topology.name Sim.Ec2.topology dc_sites.(i) in
  let bulk i j = Sim.Topology.latency Sim.Ec2.topology dc_sites.(i) dc_sites.(j) in
  let problem =
    {
      Saturn.Config_solver.topo = Sim.Ec2.topology;
      dc_sites = Array.copy dc_sites;
      candidates = Saturn.Config_solver.default_candidates ~dc_sites;
      crit = Saturn.Mismatch.uniform ~n_dcs:n ~bulk;
    }
  in
  Printf.printf "running Algorithm 3 over %d regions...\n%!" n;
  let t0 = Sys.time () in
  let config, score = Saturn.Config_gen.find_configuration ~seed:2 problem in
  Printf.printf "done in %.1fs; weighted mismatch %.1f ms\n\n" (Sys.time () -. t0) score;
  Format.printf "%a@.@." Saturn.Config.pp config;
  let table =
    Stats.Table.create ~title:"metadata path vs bulk path (ms)"
      ~columns:[ "pair"; "metadata"; "bulk"; "gap" ]
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let meta =
          Sim.Time.to_ms_float (Saturn.Config.metadata_latency config Sim.Ec2.topology ~src_dc:i ~dst_dc:j)
        in
        let b = Sim.Time.to_ms_float (bulk i j) in
        Stats.Table.add_row table
          [
            Printf.sprintf "%s->%s" (name i) (name j);
            Printf.sprintf "%.0f" meta;
            Printf.sprintf "%.0f" b;
            Printf.sprintf "%+.0f" (meta -. b);
          ]
      end
    done
  done;
  Stats.Table.print table;
  (* compare with the best star *)
  let star = Saturn.Tree.star ~n_dcs:n in
  let _, star_score = Saturn.Config_solver.solve ~seed:2 problem star in
  Printf.printf "\nbest single-serializer configuration scores %.1f ms — the tree wins by %.0f%%\n"
    star_score
    (100. *. (star_score -. score) /. star_score)
