(* Quickstart: attach Saturn to a 3-datacenter geo-replicated store and
   watch a causally consistent update propagate.

     dune exec examples/quickstart.exe

   The deployment is simulated over the paper's EC2 latency matrix
   (N. Virginia, N. California, Oregon). A client in Virginia writes a
   key; Saturn's serializer tree delivers the label to the other
   datacenters in causal order, and the update becomes visible there at
   roughly the bulk-transfer latency. *)

let () =
  let engine = Sim.Engine.create () in
  let n_dcs = 3 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let region dc = Sim.Topology.name Sim.Ec2.topology dc_sites.(dc) in

  (* 1. describe what is replicated where: here, everything everywhere *)
  let rmap = Kvstore.Replica_map.full ~n_dcs ~n_keys:64 in

  (* 2. plan the metadata service: Algorithm 3 picks the serializer tree,
     placement and artificial delays that best match bulk latencies *)
  let bulk i j = Sim.Topology.latency Sim.Ec2.topology dc_sites.(i) dc_sites.(j) in
  let problem =
    {
      Saturn.Config_solver.topo = Sim.Ec2.topology;
      dc_sites = Array.copy dc_sites;
      candidates = Saturn.Config_solver.default_candidates ~dc_sites;
      crit = Saturn.Mismatch.uniform ~n_dcs ~bulk;
    }
  in
  let config, mismatch = Saturn.Config_gen.find_configuration ~seed:1 problem in
  Format.printf "planned configuration: %a@." Saturn.Config.pp config;
  Format.printf "weighted mismatch from optimal visibility: %.1f ms@.@." mismatch;

  (* 3. build the system and subscribe to visibility events *)
  let params = Saturn.System.default_params ~topo:Sim.Ec2.topology ~dc_sites ~rmap ~config in
  let hooks =
    {
      Saturn.System.on_visible =
        (fun ~dc ~key ~origin_dc ~origin_time ~value ->
          Format.printf "[%a] key %d (payload %d) from %s became visible at %s (+%a)@."
            Sim.Time.pp (Sim.Engine.now engine) key value.Kvstore.Value.payload
            (region origin_dc) (region dc)
            Sim.Time.pp (Sim.Time.sub (Sim.Engine.now engine) origin_time));
    }
  in
  let system = Saturn.System.create engine params hooks in

  (* 4. a client in Virginia writes; a client in Oregon polls until it
     observes the write, then writes a causally dependent key *)
  let alice = Saturn.Client_lib.create ~id:1 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let bob = Saturn.Client_lib.create ~id:2 ~home_site:dc_sites.(2) ~preferred_dc:2 in
  Saturn.System.attach system alice ~dc:0 ~k:(fun () ->
      Format.printf "[%a] alice writes key 7 at %s@." Sim.Time.pp (Sim.Engine.now engine) (region 0);
      Saturn.System.update system alice ~key:7
        ~value:(Kvstore.Value.make ~payload:1 ~size_bytes:64)
        ~k:(fun () -> ()));
  let rec poll () =
    Saturn.System.read system bob ~key:7 ~k:(function
      | Some v ->
        Format.printf "[%a] bob reads key 7 at %s: payload %d — writing dependent key 8@."
          Sim.Time.pp (Sim.Engine.now engine) (region 2) v.Kvstore.Value.payload;
        Saturn.System.update system bob ~key:8
          ~value:(Kvstore.Value.make ~payload:2 ~size_bytes:64)
          ~k:(fun () -> ())
      | None -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 10) poll)
  in
  Saturn.System.attach system bob ~dc:2 ~k:poll;

  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  Saturn.System.stop system;
  Sim.Engine.run engine;
  Format.printf "@.done: key 8 is everywhere visible only after key 7 — causal order held.@."
