(* Record a workload trace once, replay it against two systems.

     dune exec examples/trace_replay.exe

   Traces make comparisons airtight: both systems see exactly the same
   operation sequence per client, and a saved trace can be re-run months
   later (or attached to a bug report). *)

let n_dcs = 3
let n_keys = 64
let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs)

let record_trace () =
  let rng = Sim.Rng.create ~seed:77 in
  let rmap =
    Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites ~n_keys Workload.Keyspace.Exponential
  in
  let w =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys; seed = 78 }
      ~rmap ~topo:Sim.Ec2.topology ~dc_sites
  in
  let clients = List.init 9 Fun.id in
  (rmap, Workload.Trace.record ~clients ~next:(fun ~client -> Workload.Synthetic.next w ~dc:(client mod n_dcs)) ~ops_per_client:200)

let replay name build rmap trace_text =
  let trace = Workload.Trace.of_string trace_text in
  let engine = Sim.Engine.create () in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let api : Harness.Api.t = build engine spec metrics in
  let clients =
    List.init 9 (fun i ->
        Harness.Client.create ~id:i ~home_site:dc_sites.(i mod n_dcs) ~preferred_dc:(i mod n_dcs))
  in
  let done_ops = ref 0 in
  let rec loop (c : Harness.Client.t) () =
    match Workload.Trace.next trace ~client:c.Harness.Client.id with
    | None -> ()
    | Some (Workload.Op.Read { key }) ->
      api.Harness.Api.read c ~key ~k:(fun _ -> incr done_ops; loop c ())
    | Some (Workload.Op.Write { key; value }) ->
      api.Harness.Api.update c ~key ~value ~k:(fun () -> incr done_ops; loop c ())
    | Some (Workload.Op.Remote_read { key; at }) ->
      api.Harness.Api.migrate c ~dest_dc:at ~k:(fun () ->
          api.Harness.Api.read c ~key ~k:(fun _ ->
              api.Harness.Api.migrate c ~dest_dc:c.Harness.Client.preferred_dc ~k:(fun () ->
                  incr done_ops;
                  loop c ())))
  in
  List.iter (fun c -> api.Harness.Api.attach c ~dc:c.Harness.Client.preferred_dc ~k:(loop c)) clients;
  Sim.Engine.run ~until:(Sim.Time.of_sec 30.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run ~until:(Sim.Time.of_sec 32.) engine;
  Printf.printf "  %-10s completed %4d ops in %.3fs simulated; %d remote updates observed\n" name
    !done_ops
    (Sim.Time.to_sec_float (Sim.Engine.now engine))
    (Harness.Metrics.visible_count metrics)

let () =
  Printf.printf "recording a 1800-op trace from the synthetic generator...\n";
  let rmap, trace = record_trace () in
  let path = Filename.temp_file "saturn_trace" ".txt" in
  Workload.Trace.save trace ~path;
  Printf.printf "saved to %s (%d bytes)\n\n" path (In_channel.with_open_text path In_channel.length |> Int64.to_int);
  let text = In_channel.with_open_text path In_channel.input_all in
  Printf.printf "replaying the identical trace against two systems:\n";
  replay "saturn" (fun e s m -> fst (Harness.Build.saturn e s m)) rmap text;
  replay "eventual" Harness.Build.eventual rmap text;
  Sys.remove path
