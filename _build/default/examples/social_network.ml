(* A social network on Saturn — the paper's §7.4 scenario as a library
   walkthrough.

     dune exec examples/social_network.exe

   Generates a synthetic Facebook-like graph, partitions users across the
   seven EC2 regions with bounded replication, and drives the Benevenuto
   et al. operation mix against Saturn, printing the numbers an operator
   would care about: locality of the placement, remote-read rate,
   throughput and update visibility. *)

let () =
  Printf.printf "building a social graph (2000 users, Facebook statistics)...\n%!";
  let graph = Workload.Social_graph.facebook_scaled ~n_users:2000 ~seed:42 in
  Printf.printf "  %d users, %d friendships, mean degree %.1f (max %d)\n%!"
    (Workload.Social_graph.n_users graph)
    (Workload.Social_graph.n_edges graph)
    (Workload.Social_graph.mean_degree graph)
    (Workload.Social_graph.max_degree graph);

  Printf.printf "partitioning across 7 regions (2..4 replicas per user)...\n%!";
  let part =
    Workload.Social_partition.partition graph ~n_dcs:7 ~min_replicas:2 ~max_replicas:4 ~seed:43
  in
  Printf.printf "  friend-locality %.0f%%, mean replication %.1f\n%!"
    (100. *. Workload.Social_partition.locality part)
    (Workload.Social_partition.mean_replication part);

  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 7) in
  let rmap = Workload.Social_partition.replica_map part in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  Printf.printf "planning the serializer tree (Algorithm 3)...\n%!";
  let config = Harness.Build.solve_config spec in
  Format.printf "  %a@." Saturn.Config.pp config;
  let api, _system =
    Harness.Build.saturn engine { spec with Harness.Build.saturn_config = Some config } metrics
  in

  Printf.printf "driving the Benevenuto op mix (100 active users per region, 1s)...\n%!";
  let ops = Workload.Social_ops.create part ~value_size:64 ~seed:44 in
  let by_dc = Array.make 7 [] in
  for u = Workload.Social_graph.n_users graph - 1 downto 0 do
    let m = Workload.Social_partition.master part ~user:u in
    by_dc.(m) <- u :: by_dc.(m)
  done;
  let clients =
    List.concat
      (List.init 7 (fun dc ->
           List.filteri (fun i _ -> i < 100) by_dc.(dc)
           |> List.map (fun u -> Harness.Client.create ~id:u ~home_site:dc_sites.(dc) ~preferred_dc:dc)))
  in
  let result =
    Harness.Driver.run engine api metrics ~clients
      ~next_op:(fun c -> Workload.Social_ops.next ops ~user:c.Harness.Client.id)
      ~warmup:(Sim.Time.of_ms 300) ~measure:(Sim.Time.of_sec 1.) ~cooldown:(Sim.Time.of_ms 200)
  in

  Printf.printf "\nresults:\n";
  Printf.printf "  throughput      %.0f ops/s (%d ops in the window)\n" result.Harness.Driver.throughput
    result.Harness.Driver.ops_completed;
  Printf.printf "  remote ops      %.1f%% of generated operations\n"
    (100. *. Workload.Social_ops.remote_fraction ops);
  let vis = Harness.Metrics.visibility metrics in
  let extra = Harness.Metrics.extra_visibility metrics in
  Printf.printf "  visibility      %.1f ms mean, %.1f ms p90 (optimal + %.1f ms)\n"
    (Stats.Sample.mean vis)
    (if Stats.Sample.is_empty vis then 0. else Stats.Sample.percentile vis 90.)
    (Stats.Sample.mean extra);
  let pair = Harness.Metrics.pair_visibility metrics ~origin:Sim.Ec2.i ~dest:Sim.Ec2.f in
  if not (Stats.Sample.is_empty pair) then
    Printf.printf "  Ireland->Frankfurt updates visible in %.1f ms (bulk path: 10 ms)\n"
      (Stats.Sample.mean pair)
