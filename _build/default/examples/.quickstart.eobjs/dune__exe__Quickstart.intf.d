examples/quickstart.mli:
