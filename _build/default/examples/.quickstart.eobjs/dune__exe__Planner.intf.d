examples/planner.mli:
