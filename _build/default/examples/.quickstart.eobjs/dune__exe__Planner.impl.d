examples/planner.ml: Array Format Printf Saturn Sim Stats Sys
