examples/trace_replay.ml: Array Filename Fun Harness In_channel Int64 List Printf Sim Sys Workload
