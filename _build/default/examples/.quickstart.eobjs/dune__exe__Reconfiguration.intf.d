examples/reconfiguration.mli:
