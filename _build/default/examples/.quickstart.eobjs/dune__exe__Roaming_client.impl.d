examples/roaming_client.ml: Array Format Harness Kvstore Saturn Sim
