examples/social_network.ml: Array Format Harness List Printf Saturn Sim Stats Workload
