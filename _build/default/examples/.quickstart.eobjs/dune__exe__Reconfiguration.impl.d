examples/reconfiguration.ml: Array Format Fun Kvstore List Option Saturn Sim
