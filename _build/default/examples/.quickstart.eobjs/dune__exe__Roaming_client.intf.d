examples/roaming_client.mli:
