examples/quickstart.ml: Array Format Kvstore Saturn Sim
