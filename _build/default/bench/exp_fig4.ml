(* Figure 4: Saturn configuration matters. Visibility CDFs under three
   configurations — single serializer in Ireland (S-conf), the
   generator-built multi-serializer tree (M-conf), and the peer-to-peer
   timestamp-order variant (P-conf) — for updates Ireland→Frankfurt (10 ms
   bulk) and Tokyo→Sydney (52 ms bulk). Read-dominant workload (90%). *)

open Harness

let star_at site ~dc_sites =
  Saturn.Config.create ~tree:(Saturn.Tree.star ~n_dcs:(Array.length dc_sites))
    ~placement:[| site |] ~dc_sites:(Array.copy dc_sites) ()

let run () =
  Util.section "Figure 4: S-conf vs M-conf vs P-conf remote update visibility";
  let setup = { Util.quick_setup with Scenario.read_ratio = 0.9 } in
  let dc_sites = Scenario.dc_sites setup in
  let s_conf = { setup with Scenario.saturn_config = Some (star_at Sim.Ec2.i ~dc_sites) } in
  let runs =
    [
      ("M-conf", Scenario.run Scenario.Saturn_sys setup);
      ("S-conf", Scenario.run Scenario.Saturn_sys s_conf);
      ("P-conf", Scenario.run Scenario.Saturn_peer setup);
    ]
  in
  List.iter
    (fun (origin, dest, bulk_ms, caption) ->
      let table =
        Stats.Table.create
          ~title:(Printf.sprintf "%s (bulk %.0f ms)" caption bulk_ms)
          ~columns:Util.cdf_columns
      in
      List.iter
        (fun (name, o) ->
          let sample = Metrics.pair_visibility o.Scenario.metrics ~origin ~dest in
          Stats.Table.add_row table (Util.cdf_row name sample))
        runs;
      Util.print_table table)
    [
      (Sim.Ec2.i, Sim.Ec2.f, 10., "Ireland -> Frankfurt");
      (Sim.Ec2.t, Sim.Ec2.s, 52., "Tokyo -> Sydney");
    ];
  let table =
    Stats.Table.create ~title:"mean deviation from optimal visibility (all pairs)"
      ~columns:[ "config"; "extra ms (mean)" ]
  in
  List.iter
    (fun (name, o) ->
      Stats.Table.add_row table [ name; Printf.sprintf "%.1f" o.Scenario.extra_visibility_ms ])
    runs;
  Util.print_table table
