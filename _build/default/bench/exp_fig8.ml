(* Figure 8: Facebook-based benchmark. A synthetic social graph with the
   New Orleans dataset's statistics, the Benevenuto et al. op mix, and
   replication-constrained partitioning (min 2 replicas; max varied 2–5).
   (a) throughput; (b) visibility CDFs Ireland→Frankfurt (best case) and
   Ireland→Tokyo (worst case). *)

open Harness

let run_a () =
  Util.section "Figure 8a: Facebook benchmark throughput vs max replicas per item";
  let columns = "max replicas" :: List.map Scenario.system_name Scenario.all_systems in
  let table = Stats.Table.create ~title:"ops/s (min replicas = 2)" ~columns in
  List.iter
    (fun max_replicas ->
      let setup = { Scenario.default_social_setup with Scenario.max_replicas } in
      let row =
        List.map
          (fun sys -> Printf.sprintf "%.0f" (Scenario.run_social sys setup).Scenario.throughput)
          Scenario.all_systems
      in
      Stats.Table.add_row table (string_of_int max_replicas :: row))
    [ 2; 3; 4; 5 ];
  Util.print_table table

let run_b () =
  Util.section "Figure 8b: Facebook benchmark remote update visibility";
  let setup = Scenario.default_social_setup in
  let outcomes = List.map (fun sys -> Scenario.run_social sys setup) Scenario.all_systems in
  List.iter
    (fun (origin, dest, bulk_ms, caption) ->
      let table =
        Stats.Table.create
          ~title:(Printf.sprintf "%s (bulk %.0f ms)" caption bulk_ms)
          ~columns:Util.cdf_columns
      in
      List.iter
        (fun o ->
          let sample = Metrics.pair_visibility o.Scenario.metrics ~origin ~dest in
          Stats.Table.add_row table (Util.cdf_row (Scenario.system_name o.Scenario.system) sample))
        outcomes;
      Util.print_table table)
    [
      (Sim.Ec2.i, Sim.Ec2.f, 10., "Ireland -> Frankfurt");
      (Sim.Ec2.i, Sim.Ec2.t, 107., "Ireland -> Tokyo");
    ];
  let summary =
    Stats.Table.create ~title:"average extra visibility vs optimal (all pairs)"
      ~columns:[ "system"; "extra ms (mean)" ]
  in
  List.iter
    (fun o ->
      Stats.Table.add_row summary
        [
          Scenario.system_name o.Scenario.system;
          Printf.sprintf "%.1f" o.Scenario.extra_visibility_ms;
        ])
    outcomes;
  Util.print_table summary

let run () =
  run_a ();
  run_b ()
