(* Figure 7: remote update visibility CDFs of Eventual, Saturn, GentleRain
   and Cure under the default workload, for updates Ireland→Frankfurt (best
   case, 10 ms) and Ireland→Sydney (worst case, 154 ms). *)

open Harness

let run () =
  Util.section "Figure 7: remote update visibility — Saturn vs the state of the art";
  let outcomes = Scenario.run_all Util.quick_setup in
  List.iter
    (fun (origin, dest, bulk_ms, caption) ->
      let table =
        Stats.Table.create
          ~title:(Printf.sprintf "%s (bulk %.0f ms)" caption bulk_ms)
          ~columns:Util.cdf_columns
      in
      List.iter
        (fun o ->
          let sample = Metrics.pair_visibility o.Scenario.metrics ~origin ~dest in
          Stats.Table.add_row table (Util.cdf_row (Scenario.system_name o.Scenario.system) sample))
        outcomes;
      Util.print_table table)
    [
      (Sim.Ec2.i, Sim.Ec2.f, 10., "Ireland -> Frankfurt");
      (Sim.Ec2.i, Sim.Ec2.s, 154., "Ireland -> Sydney");
    ];
  let summary =
    Stats.Table.create ~title:"average extra visibility vs optimal (all pairs)"
      ~columns:[ "system"; "extra ms (mean)" ]
  in
  List.iter
    (fun o ->
      Stats.Table.add_row summary
        [
          Scenario.system_name o.Scenario.system;
          Printf.sprintf "%.1f" o.Scenario.extra_visibility_ms;
        ])
    outcomes;
  Util.print_table summary
