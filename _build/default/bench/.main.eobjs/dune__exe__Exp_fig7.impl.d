bench/exp_fig7.ml: Harness List Metrics Printf Scenario Sim Stats Util
