bench/exp_fig1.ml: Harness List Printf Scenario Sim Stats Util Workload
