bench/util.ml: Filename Harness List Printf Sim Stats String
