bench/exp_fig5.ml: Format Harness List Printf Scenario Stats Util Workload
