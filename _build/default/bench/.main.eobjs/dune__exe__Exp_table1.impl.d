bench/exp_table1.ml: Format Sim Util
