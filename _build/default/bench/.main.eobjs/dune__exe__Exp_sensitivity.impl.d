bench/exp_sensitivity.ml: Build Client Driver Format Harness List Metrics Printf Saturn Scenario Sim Stats Util Workload
