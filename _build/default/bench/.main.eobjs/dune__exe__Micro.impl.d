bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance Int List Measure Printf Saturn Sim Staged Stats Sys Test Time Toolkit Util
