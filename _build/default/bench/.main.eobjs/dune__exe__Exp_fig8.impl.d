bench/exp_fig8.ml: Harness List Metrics Printf Scenario Sim Stats Util
