bench/main.ml: Array Exp_ablation Exp_fig1 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_sensitivity Exp_table1 Exp_table2 List Micro Printf Sys Unix Util
