bench/exp_table2.ml: Array Baselines Build Client Driver Harness Kvstore List Metrics Printf Saturn Sim Stats Util Workload
