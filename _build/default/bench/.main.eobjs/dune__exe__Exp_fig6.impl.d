bench/exp_fig6.ml: Array Build Client Driver Harness Kvstore List Metrics Printf Saturn Sim Stats Util Workload
