bench/main.mli:
