bench/exp_fig4.ml: Array Harness List Metrics Printf Saturn Scenario Sim Stats Util
