bench/exp_ablation.ml: Api Build Client Driver Harness Kvstore List Metrics Printf Saturn Scenario Sim Stats Util Workload
