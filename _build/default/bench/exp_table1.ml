(* Table 1: average latencies (half RTT) among Amazon EC2 regions — the
   measured matrix the whole evaluation runs on. *)

let run () =
  Util.section "Table 1: EC2 inter-region latencies (half RTT) — simulation input";
  Sim.Topology.pp_matrix Format.std_formatter Sim.Ec2.topology;
  Format.print_flush ()
