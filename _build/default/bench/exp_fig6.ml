(* Figure 6: impact of latency variability. Three datacenters (N.
   California, Oregon, Ireland); extra latency is injected on the NC–Oregon
   link (measured average 10 ms). Two single-serializer configurations:
   T1 places the serializer in Oregon (optimal under normal conditions),
   T2 in Ireland. We report the average extra remote-visibility latency
   each adds over eventual consistency. *)

open Harness

let injected_topology ~extra_ms =
  Sim.Topology.create ~names:[| "NC"; "O"; "I" |]
    ~latency_ms:
      [|
        [| 0; 10 + extra_ms; 74 |];
        [| 10 + extra_ms; 0; 69 |];
        [| 74; 69; 0 |];
      |]

let run_one ~topo ~serializer_site system_kind =
  let engine = Sim.Engine.create () in
  let dc_sites = [| 0; 1; 2 |] in
  let n_keys = 300 in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let metrics = Metrics.create engine ~topo ~dc_sites in
  let config =
    Saturn.Config.create ~tree:(Saturn.Tree.star ~n_dcs:3) ~placement:[| serializer_site |]
      ~dc_sites:(Array.copy dc_sites) ()
  in
  let spec =
    { (Build.default_spec ~topo ~dc_sites ~rmap) with Build.saturn_config = Some config }
  in
  let api =
    match system_kind with
    | `Saturn -> fst (Build.saturn engine spec metrics)
    | `Eventual -> Build.eventual engine spec metrics
  in
  let workload =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys; seed = 23 }
      ~rmap ~topo ~dc_sites
  in
  let clients = Driver.make_clients ~dc_sites ~per_dc:30 in
  let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
  let _ =
    Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 300)
      ~measure:(Sim.Time.of_sec 1.0) ~cooldown:(Sim.Time.of_ms 200)
  in
  Stats.Sample.mean (Metrics.visibility metrics)

let run () =
  Util.section "Figure 6: extra remote visibility latency vs injected NC-Oregon delay";
  let table =
    Stats.Table.create ~title:"extra visibility vs eventual (ms, mean)"
      ~columns:[ "injected ms"; "T1 (Oregon)"; "T2 (Ireland)" ]
  in
  List.iter
    (fun extra_ms ->
      let topo = injected_topology ~extra_ms in
      let eventual = run_one ~topo ~serializer_site:1 `Eventual in
      let t1 = run_one ~topo ~serializer_site:1 `Saturn in
      let t2 = run_one ~topo ~serializer_site:2 `Saturn in
      Stats.Table.add_row table
        [
          string_of_int extra_ms;
          Printf.sprintf "%.1f" (t1 -. eventual);
          Printf.sprintf "%.1f" (t2 -. eventual);
        ])
    [ 0; 25; 50; 75; 100; 125 ];
  Util.print_table table;
  Util.note
    "T1 (Oregon) is optimal under normal conditions and degrades only slowly; T2 becomes\n\
     preferable only under a sustained injected delay far above normal variability."
