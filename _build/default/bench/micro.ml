(* Bechamel micro-benchmarks of Saturn's hot paths: label comparison (the
   per-operation metadata cost the paper argues is negligible), Cure-style
   vector merges (the cost it avoids), tree routing, sink stabilization and
   the event-queue heap. *)

open Bechamel
open Toolkit

let label_a = Saturn.Label.update ~ts:(Sim.Time.of_us 1234) ~src_dc:1 ~src_gear:0 ~key:42
let label_b = Saturn.Label.update ~ts:(Sim.Time.of_us 1235) ~src_dc:2 ~src_gear:1 ~key:43

let test_label_compare =
  Test.make ~name:"label compare (Saturn per-op metadata)"
    (Staged.stage (fun () -> ignore (Saturn.Label.compare label_a label_b)))

let vec_a = Array.init 7 (fun i -> i * 17)
let vec_b = Array.init 7 (fun i -> i * 13)

let test_vector_merge =
  Test.make ~name:"vector merge, 7 entries (Cure per-op metadata)"
    (Staged.stage (fun () ->
         let out = Array.copy vec_a in
         Array.iteri (fun i v -> if v > out.(i) then out.(i) <- v) vec_b;
         ignore (Sys.opaque_identity out)))

let routing_tree =
  Saturn.Tree.create ~n_serializers:6
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
    ~attach:[| 0; 1; 2; 3; 4; 5; 5 |]

let test_tree_routing =
  Test.make ~name:"tree routing decision (dcs_behind lookup)"
    (Staged.stage (fun () -> ignore (Saturn.Tree.dcs_behind routing_tree ~from:2 ~via:3)))

let test_heap =
  Test.make ~name:"event-queue heap push+pop"
    (Staged.stage
       (let heap = Sim.Heap.create ~cmp:Int.compare () in
        let i = ref 0 in
        fun () ->
          incr i;
          Sim.Heap.push heap (!i * 7919 mod 1000);
          if Sim.Heap.size heap > 64 then ignore (Sim.Heap.pop_exn heap)))

let test_sink =
  Test.make ~name:"label sink offer+flush"
    (Staged.stage
       (let engine = Sim.Engine.create () in
        let clock = Sim.Clock.create engine in
        let gears = [| Saturn.Gear.create clock ~dc:0 ~gear_id:0 |] in
        let sink =
          Saturn.Sink.create engine ~gears ~period:(Sim.Time.of_ms 1) ~emit:(fun _ -> ()) ()
        in
        let i = ref 0 in
        fun () ->
          incr i;
          let ts = Saturn.Gear.generate_ts gears.(0) ~client_ts:Sim.Time.zero in
          Saturn.Sink.offer sink (Saturn.Label.update ~ts ~src_dc:0 ~src_gear:0 ~key:!i);
          Saturn.Sink.flush sink))

let tests = [ test_label_compare; test_vector_merge; test_tree_routing; test_heap; test_sink ]

let run () =
  Util.section "Microbenchmarks (Bechamel): Saturn hot paths";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let table = Stats.Table.create ~title:"nanoseconds per call (OLS fit)" ~columns:[ "benchmark"; "ns/run" ] in
  List.iter
    (fun test ->
      List.iter
        (fun (name, raw) ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> Printf.sprintf "%.1f" v
            | Some _ | None -> "-"
          in
          Stats.Table.add_row table [ name; ns ])
        (List.map (fun (k, v) -> (k, v)) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) (Benchmark.all cfg [ instance ] test) [])))
    tests;
  Stats.Table.print table
