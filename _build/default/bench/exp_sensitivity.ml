(* Sensitivity and scalability experiments beyond the paper's figures,
   backing claims made in its text:
   1. genuine partial replication, quantified: Saturn's metadata traffic
      (label hops through the tree) scales with the correlation, not with
      the number of locations (§2 goal iii, §5.3);
   2. the stabilization period Θ of GentleRain/Cure trades staleness for
      overhead (§7.3.1 runs both at the authors' 5 ms);
   3. Saturn's sink period: the intra-datacenter serialization is off the
      critical path, so throughput is insensitive to it while visibility
      degrades only by the period itself. *)

open Harness

let run_partial () =
  Util.section "Sensitivity 1: metadata traffic under genuine partial replication";
  let table =
    Stats.Table.create
      ~title:"Saturn label traffic per correlation (7 DCs, same op count)"
      ~columns:[ "correlation"; "labels input"; "tree hops"; "hops/label" ]
  in
  List.iter
    (fun correlation ->
      let setup = { Util.quick_setup with Scenario.correlation } in
      (* a dedicated run so the service's traffic counters are reachable *)
      let engine = Sim.Engine.create () in
      let sites = Scenario.dc_sites setup in
      let rmap = Scenario.replica_map setup in
      let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
      let spec =
        { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with
          Build.saturn_config = Some (Scenario.solved_config setup);
        }
      in
      let api, system = Build.saturn engine spec metrics in
      let workload =
        Workload.Synthetic.create
          { Workload.Synthetic.default with Workload.Synthetic.n_keys = setup.Scenario.n_keys }
          ~rmap ~topo:Sim.Ec2.topology ~dc_sites:sites
      in
      let clients = Driver.make_clients ~dc_sites:sites ~per_dc:20 in
      let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
      let _ =
        Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 200)
          ~measure:(Sim.Time.of_ms 800) ~cooldown:(Sim.Time.of_ms 100)
      in
      match Saturn.System.service system with
      | None -> ()
      | Some service ->
        let input = Saturn.Service.labels_input service in
        let hops = Saturn.Service.total_label_hops service in
        Stats.Table.add_row table
          [
            Format.asprintf "%a" Workload.Keyspace.pp_correlation correlation;
            string_of_int input;
            string_of_int hops;
            Printf.sprintf "%.2f" (float_of_int hops /. float_of_int (max input 1));
          ])
    [ Workload.Keyspace.Exponential; Workload.Keyspace.Proportional; Workload.Keyspace.Full ];
  Util.print_table table;
  Util.note
    "Under exponential correlation each label traverses a fraction of the tree; under full\n\
     replication every label floods it — selective forwarding is what keeps Saturn's\n\
     metadata plane scalable."

let run_stabilization_period () =
  Util.section "Sensitivity 2: GentleRain/Cure stabilization period";
  let table =
    Stats.Table.create ~title:"staleness/throughput vs stabilization period (3 DCs)"
      ~columns:[ "period ms"; "GR extra ms"; "GR ops/s"; "Cure extra ms"; "Cure ops/s" ]
  in
  List.iter
    (fun period_ms ->
      let cost =
        { Saturn.Cost_model.default with
          Saturn.Cost_model.stabilization_period = Sim.Time.of_ms period_ms;
        }
      in
      let run sys =
        let setup =
          { Util.quick_setup with Scenario.n_dcs = 3; n_keys = 120; clients_per_dc = 30 }
        in
        (* thread the cost model through a manual run *)
        let engine = Sim.Engine.create () in
        let sites = Scenario.dc_sites setup in
        let rmap = Scenario.replica_map setup in
        let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
        let spec =
          { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with Build.cost = cost }
        in
        let api =
          match sys with
          | `Gr -> Build.gentlerain engine spec metrics
          | `Cure -> Build.cure engine spec metrics
        in
        let workload =
          Workload.Synthetic.create
            { Workload.Synthetic.default with Workload.Synthetic.n_keys = setup.Scenario.n_keys }
            ~rmap ~topo:Sim.Ec2.topology ~dc_sites:sites
        in
        let clients = Driver.make_clients ~dc_sites:sites ~per_dc:30 in
        let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
        let r =
          Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 300)
            ~measure:(Sim.Time.of_ms 800) ~cooldown:(Sim.Time.of_ms 100)
        in
        (Stats.Sample.mean (Metrics.extra_visibility metrics), r.Driver.throughput)
      in
      let gr_extra, gr_tput = run `Gr in
      let cure_extra, cure_tput = run `Cure in
      Stats.Table.add_row table
        [
          string_of_int period_ms;
          Printf.sprintf "%.1f" gr_extra;
          Printf.sprintf "%.0f" gr_tput;
          Printf.sprintf "%.1f" cure_extra;
          Printf.sprintf "%.0f" cure_tput;
        ])
    [ 1; 5; 20; 50 ];
  Util.print_table table

let run_sink_period () =
  Util.section "Sensitivity 3: Saturn label-sink period";
  let table =
    Stats.Table.create ~title:"Saturn vs sink period (7 DCs)"
      ~columns:[ "period ms"; "ops/s"; "extra visibility ms" ]
  in
  List.iter
    (fun period_ms ->
      let cost =
        { Saturn.Cost_model.default with Saturn.Cost_model.sink_period = Sim.Time.of_ms period_ms }
      in
      let setup = Util.quick_setup in
      let engine = Sim.Engine.create () in
      let sites = Scenario.dc_sites setup in
      let rmap = Scenario.replica_map setup in
      let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
      let spec =
        { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with
          Build.cost = cost;
          saturn_config = Some (Scenario.solved_config setup);
        }
      in
      let api, _ = Build.saturn engine spec metrics in
      let workload =
        Workload.Synthetic.create
          { Workload.Synthetic.default with Workload.Synthetic.n_keys = setup.Scenario.n_keys }
          ~rmap ~topo:Sim.Ec2.topology ~dc_sites:sites
      in
      let clients = Driver.make_clients ~dc_sites:sites ~per_dc:setup.Scenario.clients_per_dc in
      let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
      let r =
        Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 300)
          ~measure:(Sim.Time.of_ms 800) ~cooldown:(Sim.Time.of_ms 100)
      in
      Stats.Table.add_row table
        [
          string_of_int period_ms;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Printf.sprintf "%.1f" (Stats.Sample.mean (Metrics.extra_visibility metrics));
        ])
    [ 1; 2; 5; 10 ];
  Util.print_table table;
  Util.note
    "The sink runs off the critical path: throughput is flat; only visibility pays the\n\
     flush period (the paper's deferred-update-stabilization argument [32])."

let run () =
  run_partial ();
  run_stabilization_period ();
  run_sink_period ()
