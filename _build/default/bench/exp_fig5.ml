(* Figure 5: dynamic-workload throughput experiments. Four sweeps, each
   varying one knob with the others at the paper's defaults (2 B values,
   9:1 reads:writes, exponential correlation, 0% remote reads). *)

open Harness

let throughput_table ~title ~param_name points run_point =
  let columns = param_name :: List.map Scenario.system_name Scenario.all_systems in
  let table = Stats.Table.create ~title ~columns in
  List.iter
    (fun (label, setup) ->
      let row =
        List.map
          (fun sys -> Printf.sprintf "%.0f" (run_point sys setup).Scenario.throughput)
          Scenario.all_systems
      in
      Stats.Table.add_row table (label :: row))
    points;
  Util.print_table table

let run_value_size () =
  Util.section "Figure 5a: throughput vs value size (bytes)";
  throughput_table ~title:"ops/s" ~param_name:"bytes"
    (List.map
       (fun size ->
         (string_of_int size, { Util.quick_setup with Scenario.value_size = size }))
       [ 8; 32; 128; 512; 2048 ])
    Scenario.run

let run_rw_ratio () =
  Util.section "Figure 5b: throughput vs read:write ratio";
  throughput_table ~title:"ops/s" ~param_name:"R:W"
    (List.map
       (fun (label, r) -> (label, { Util.quick_setup with Scenario.read_ratio = r }))
       [ ("50:50", 0.5); ("75:25", 0.75); ("90:10", 0.9); ("99:1", 0.99) ])
    Scenario.run

let run_correlation () =
  Util.section "Figure 5c: throughput vs correlation distribution";
  throughput_table ~title:"ops/s" ~param_name:"correlation"
    (List.map
       (fun c ->
         ( Format.asprintf "%a" Workload.Keyspace.pp_correlation c,
           { Util.quick_setup with Scenario.correlation = c } ))
       [
         Workload.Keyspace.Exponential;
         Workload.Keyspace.Proportional;
         Workload.Keyspace.Uniform 4;
         Workload.Keyspace.Full;
       ])
    Scenario.run

let run_remote_reads () =
  Util.section "Figure 5d: throughput vs percentage of remote reads";
  (* remote reads block clients for WAN round trips, so the client pool is
     scaled with the remote ratio to keep the system near its capacity, as
     in the paper ("as many clients as necessary"); a hot keyspace keeps
     client dependency timestamps fresh, which is what makes the attach
     stabilization of GentleRain and Cure bite *)
  throughput_table ~title:"ops/s" ~param_name:"remote %"
    (List.map
       (fun (pct, clients) ->
         ( string_of_int pct,
           { Util.quick_setup with
             Scenario.remote_read_ratio = float_of_int pct /. 100.;
             n_keys = 140;
             clients_per_dc = clients;
           } ))
       [ (0, 40); (5, 400); (10, 700); (20, 1100); (40, 1500) ])
    Scenario.run

let run () =
  run_value_size ();
  run_rw_ratio ();
  run_correlation ();
  run_remote_reads ()
