(* Figure 1: the two problems motivating Saturn.
   (a) the throughput/data-freshness tradeoff of GentleRain vs Cure as the
       number of datacenters grows (full geo-replication), normalized
       against eventual consistency;
   (b) the partial geo-replication problem: staleness overhead as the
       replication degree decreases (nearest-neighbour replica placement). *)

open Harness

let setup_for ~n_dcs ~correlation =
  { Util.quick_setup with Scenario.n_dcs; correlation; n_keys = 100 * n_dcs }

let run_a () =
  Util.section "Figure 1a: throughput penalty and staleness overhead vs #datacenters (full replication)";
  let tput = Stats.Table.create ~title:"throughput penalty vs eventual (%)"
      ~columns:[ "#DCs"; "GentleRain"; "Cure" ] in
  let stale = Stats.Table.create ~title:"data staleness overhead vs eventual (%)"
      ~columns:[ "#DCs"; "GentleRain"; "Cure" ] in
  List.iter
    (fun n_dcs ->
      let setup = setup_for ~n_dcs ~correlation:Workload.Keyspace.Full in
      let ev = Scenario.run Scenario.Eventual setup in
      let gr = Scenario.run Scenario.Gentlerain setup in
      let cu = Scenario.run Scenario.Cure setup in
      let pen o = Util.pct_vs ev.Scenario.throughput o.Scenario.throughput in
      let ovh o = Util.pct_vs ev.Scenario.mean_visibility_ms o.Scenario.mean_visibility_ms in
      Stats.Table.add_row tput
        [ string_of_int n_dcs; Printf.sprintf "%+.1f" (pen gr); Printf.sprintf "%+.1f" (pen cu) ];
      Stats.Table.add_row stale
        [ string_of_int n_dcs; Printf.sprintf "%+.1f" (ovh gr); Printf.sprintf "%+.1f" (ovh cu) ])
    [ 3; 4; 5; 6; 7 ];
  Util.print_table tput;
  Util.print_table stale

let run_b () =
  Util.section "Figure 1b: staleness overhead vs replication degree (partial geo-replication)";
  let table =
    Stats.Table.create ~title:"data staleness overhead vs eventual (%), 7 DCs"
      ~columns:[ "degree"; "GentleRain"; "Cure" ]
  in
  List.iter
    (fun degree ->
      let setup = { Util.quick_setup with Scenario.n_dcs = 7; n_keys = 700 } in
      let rmap =
        Workload.Keyspace.nearest_degree ~topo:Sim.Ec2.topology
          ~dc_sites:(Scenario.dc_sites setup) ~n_keys:setup.Scenario.n_keys ~degree
      in
      let run sys = Scenario.run_with ~rmap sys setup in
      let ev = run Scenario.Eventual in
      let gr = run Scenario.Gentlerain in
      let cu = run Scenario.Cure in
      let ovh o = Util.pct_vs ev.Scenario.mean_visibility_ms o.Scenario.mean_visibility_ms in
      Stats.Table.add_row table
        [ string_of_int degree; Printf.sprintf "%+.1f" (ovh gr); Printf.sprintf "%+.1f" (ovh cu) ])
    [ 5; 4; 3; 2 ];
  Util.print_table table

let run () =
  run_a ();
  run_b ()
