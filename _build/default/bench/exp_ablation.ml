(* Ablations of Saturn's design decisions (DESIGN.md §4):
   1. artificial delays δ on/off — premature labels create false
      dependencies that delay other updates;
   2. migration labels on/off — attach latency at a remote datacenter with
      the fast path vs the conservative per-source stabilization;
   3. chain-replicated serializers (3 replicas) vs single replicas — the
      cost of fault tolerance on the metadata path. *)

open Harness

let run_delays () =
  Util.section "Ablation 1: artificial propagation delays (δ) on/off";
  (* δ only matters when the metadata path can beat the bulk path; over a
     shortest-path matrix it never can, so — as in the paper's motivation
     (§5.3, bulk data "is not necessarily sent through the shortest path") —
     the bulk path is inflated by 40% here *)
  let setup = { Util.quick_setup with Scenario.bulk_factor = 1.4 } in
  let with_delays = Scenario.run Scenario.Saturn_sys setup in
  let config = Saturn.Config.copy (Scenario.solved_config setup) in
  Saturn.Config.clear_delays config;
  let without =
    Scenario.run Scenario.Saturn_sys { setup with Scenario.saturn_config = Some config }
  in
  let table =
    Stats.Table.create ~title:"remote update visibility"
      ~columns:[ "variant"; "mean extra ms"; "p90 visibility ms" ]
  in
  List.iter
    (fun (label, (o : Scenario.outcome)) ->
      Stats.Table.add_row table
        [
          label;
          Printf.sprintf "%.1f" o.Scenario.extra_visibility_ms;
          Printf.sprintf "%.1f" o.Scenario.p90_visibility_ms;
        ])
    [ ("optimized δ", with_delays); ("δ = 0", without) ];
  Util.print_table table

let run_migration () =
  Util.section "Ablation 2: migration labels vs conservative attach (Ireland -> Frankfurt)";
  (* one roaming client at Ireland keeps reading from Sydney while the
     other clients generate background write traffic *)
  let setup = { Util.quick_setup with Scenario.clients_per_dc = 30 } in
  let measure_remote_cycle ~use_migration =
    let engine = Sim.Engine.create () in
    let sites = Scenario.dc_sites setup in
    let rmap = Scenario.replica_map setup in
    let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
    let spec =
      { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with
        Build.saturn_config = Some (Scenario.solved_config setup);
      }
    in
    let api, _ = Build.saturn engine spec metrics in
    (* background load *)
    let workload =
      Workload.Synthetic.create
        { Workload.Synthetic.default with Workload.Synthetic.n_keys = setup.Scenario.n_keys }
        ~rmap ~topo:Sim.Ec2.topology ~dc_sites:sites
    in
    let background = Driver.make_clients ~dc_sites:sites ~per_dc:20 in
    let running = ref true in
    let rec bg_loop (c : Client.t) () =
      if !running then begin
        match Workload.Synthetic.next workload ~dc:c.Client.preferred_dc with
        | Workload.Op.Read { key } -> api.Api.read c ~key ~k:(fun _ -> bg_loop c ())
        | Workload.Op.Write { key; value } -> api.Api.update c ~key ~value ~k:(fun () -> bg_loop c ())
        | Workload.Op.Remote_read _ -> bg_loop c ()
      end
    in
    List.iter (fun c -> api.Api.attach c ~dc:c.Client.preferred_dc ~k:(bg_loop c)) background;
    (* the roaming client: Ireland -> Sydney -> Ireland cycles *)
    let roamer = Client.create ~id:999_999 ~home_site:Sim.Ec2.i ~preferred_dc:Sim.Ec2.i in
    let durations = Stats.Sample.create () in
    let go_to c dest k =
      if use_migration then api.Api.migrate c ~dest_dc:dest ~k
      else api.Api.attach c ~dc:dest ~k
    in
    let shared_key =
      (* a key replicated at both Ireland and Sydney if any; else key 0 *)
      let rec find k =
        if k >= setup.Scenario.n_keys then 0
        else if
          Kvstore.Replica_map.replicates rmap ~dc:Sim.Ec2.f ~key:k
          && Kvstore.Replica_map.replicates rmap ~dc:Sim.Ec2.i ~key:k
        then k
        else find (k + 1)
      in
      find 0
    in
    let cycles = ref 0 in
    let rec roam () =
      if !running && !cycles < 60 then begin
        incr cycles;
        (* touch local state first so the causal past is non-trivial *)
        api.Api.update roamer ~key:shared_key
          ~value:(Kvstore.Value.make ~payload:(Workload.Synthetic.fresh_payload workload) ~size_bytes:2)
          ~k:(fun () ->
            let t0 = Sim.Engine.now engine in
            go_to roamer Sim.Ec2.f (fun () ->
                api.Api.read roamer ~key:shared_key ~k:(fun _ ->
                    go_to roamer Sim.Ec2.i (fun () ->
                        Stats.Sample.add_time durations (Sim.Time.sub (Sim.Engine.now engine) t0);
                        roam ()))))
      end
    in
    api.Api.attach roamer ~dc:Sim.Ec2.i ~k:roam;
    Sim.Engine.run ~until:(Sim.Time.of_sec 30.) engine;
    running := false;
    api.Api.stop ();
    Sim.Engine.run ~until:(Sim.Time.of_sec 31.) engine;
    durations
  in
  let with_mig = measure_remote_cycle ~use_migration:true in
  let without = measure_remote_cycle ~use_migration:false in
  let table =
    Stats.Table.create ~title:"Ireland->Frankfurt->Ireland remote-read cycle latency (ms)"
      ~columns:[ "variant"; "n"; "mean"; "p90" ]
  in
  List.iter
    (fun (label, s) ->
      Stats.Table.add_row table
        [
          label;
          string_of_int (Stats.Sample.count s);
          Printf.sprintf "%.1f" (Stats.Sample.mean s);
          (if Stats.Sample.is_empty s then "-" else Printf.sprintf "%.1f" (Stats.Sample.percentile s 90.));
        ])
    [ ("migration labels", with_mig); ("conservative attach", without) ];
  Util.print_table table

let run_chain () =
  Util.section "Ablation 3: chain-replicated serializers (fault tolerance) overhead";
  let table =
    Stats.Table.create ~title:"Saturn with replicated serializers"
      ~columns:[ "replicas"; "ops/s"; "extra visibility ms" ]
  in
  List.iter
    (fun replicas ->
      let o =
        Scenario.run Scenario.Saturn_sys
          { Util.quick_setup with Scenario.serializer_replicas = replicas }
      in
      Stats.Table.add_row table
        [
          string_of_int replicas;
          Printf.sprintf "%.0f" o.Scenario.throughput;
          Printf.sprintf "%.1f" o.Scenario.extra_visibility_ms;
        ])
    [ 1; 2; 3 ];
  Util.print_table table

let run () =
  run_delays ();
  run_migration ();
  run_chain ()
