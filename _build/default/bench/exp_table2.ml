(* Table 2: classification of causally consistent systems (§8). A static
   summary, plus a measured demonstration of the row that motivates it:
   explicit dependency checking (COPS-style) cannot prune client contexts
   under partial geo-replication, so dependency metadata keeps growing. *)

open Harness

let run () =
  Util.section "Table 2: summary of causally consistent systems";
  let table =
    Stats.Table.create ~title:"classification (from the paper's related-work analysis)"
      ~columns:[ "system"; "key technique"; "metadata"; "partial replication" ]
  in
  List.iter
    (fun row -> Stats.Table.add_row table row)
    [
      [ "Bayou"; "sequencer-based"; "scalar"; "no" ];
      [ "Practi"; "sequencer-based"; "scalar"; "yes" ];
      [ "ISIS"; "sequencer-based"; "vector[dcs]"; "no" ];
      [ "Lazy Replication"; "sequencer-based"; "vector[dcs]"; "no" ];
      [ "SwiftCloud"; "sequencer-based"; "vector[dcs]"; "no" ];
      [ "ChainReaction"; "sequencer-based"; "vector[dcs]"; "no" ];
      [ "COPS"; "explicit check"; "vector[keys]"; "no" ];
      [ "Eiger"; "explicit check"; "vector[keys]"; "no" ];
      [ "Bolt-on"; "explicit check"; "vector[keys]"; "no" ];
      [ "Orbe"; "explicit check"; "vector[servers]"; "no" ];
      [ "GentleRain"; "global stabilization"; "scalar"; "no" ];
      [ "Cure"; "global stabilization"; "vector[dcs]"; "no" ];
      [ "Saturn"; "tree-based dissemination"; "scalar"; "yes" ];
    ];
  Util.print_table table;
  Util.note "Measured: explicit-check dependency metadata growth (COPS-style), 3 DCs.";
  let measure ~correlation ~prune_on_write =
    let engine = Sim.Engine.create () in
    let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
    let n_keys = 300 in
    let rng = Sim.Rng.create ~seed:3 in
    let rmap =
      Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites ~n_keys correlation
    in
    let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
    let spec = Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
    let api, cops = Build.cops engine spec metrics ~prune_on_write in
    let workload =
      Workload.Synthetic.create
        { Workload.Synthetic.default with Workload.Synthetic.n_keys; read_ratio = 0.9; seed = 3 }
        ~rmap ~topo:Sim.Ec2.topology ~dc_sites
    in
    let clients = Driver.make_clients ~dc_sites ~per_dc:20 in
    let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
    let _ =
      Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 200)
        ~measure:(Sim.Time.of_sec 1.0) ~cooldown:(Sim.Time.of_ms 100)
    in
    (Baselines.Cops.mean_dependency_size cops, Baselines.Cops.max_dependency_size cops)
  in
  let table =
    Stats.Table.create ~title:"COPS-style dependency list size per shipped update"
      ~columns:[ "setting"; "mean deps"; "max deps" ]
  in
  List.iter
    (fun (label, correlation, prune) ->
      let mean, mx = measure ~correlation ~prune_on_write:prune in
      Stats.Table.add_row table [ label; Printf.sprintf "%.1f" mean; string_of_int mx ])
    [
      ("full replication, pruning (sound)", Workload.Keyspace.Full, true);
      ("partial replication, pruning disabled (sound)", Workload.Keyspace.Exponential, false);
    ];
  Util.print_table table;
  Util.note
    "Under partial geo-replication the transitivity-based pruning of COPS is unsound, and\n\
     without it client dependency lists grow toward the working set — Saturn's labels stay\n\
     constant-size (%d bytes) regardless." Saturn.Label.size_bytes;
  Util.note "Measured: Orbe's dependency-matrix footprint and its partial-replication failure.";
  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
  let n_keys = 300 in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let api, orbe = Build.orbe engine spec metrics in
  let workload =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys; read_ratio = 0.9; seed = 3 }
      ~rmap ~topo:Sim.Ec2.topology ~dc_sites
  in
  let clients = Driver.make_clients ~dc_sites ~per_dc:20 in
  let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
  let _ =
    Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 200)
      ~measure:(Sim.Time.of_sec 1.0) ~cooldown:(Sim.Time.of_ms 100)
  in
  Util.note
    "Orbe (full replication, 3 DCs x 2 partitions): %.1f dependency-matrix entries per update\n\
     (bounded by DCs x partitions; under partial replication the matrix wedges — see the\n\
     test suite's orbe tests)."
    (Baselines.Orbe.mean_matrix_entries orbe)
