(* Fault injection: the §6 failure-model scenario matrix.

   Runs the fixed-seed matrix — serializer head crash mid-stream, transient
   metadata-tree partition, latency spike on the tree's busiest edge — for
   Saturn and the eventual baseline, asserts the fault invariants over each
   trace, and prints visibility degradation plus recovery time. *)

let run () =
  Util.section "Fault injection (§6 failure model)";
  let outcomes = Harness.Fault_run.run_matrix ~seed:42 () in
  let table =
    Stats.Table.create ~title:"fault matrix: visibility degradation + recovery"
      ~columns:
        [ "scenario"; "system"; "ops"; "vis ms"; "p99 ms"; "recovery ms"; "resends"; "drops";
          "invariants" ]
  in
  List.iter
    (fun (o : Harness.Fault_run.outcome) ->
      let r = o.Harness.Fault_run.report in
      Stats.Table.add_row table
        [
          o.Harness.Fault_run.scenario;
          o.Harness.Fault_run.system;
          string_of_int o.Harness.Fault_run.ops;
          Printf.sprintf "%.1f" o.Harness.Fault_run.vis_mean_ms;
          Printf.sprintf "%.1f" o.Harness.Fault_run.vis_p99_ms;
          Printf.sprintf "%.1f" o.Harness.Fault_run.recovery_ms;
          string_of_int r.Faults.Checker.resends;
          string_of_int (r.Faults.Checker.drops_cut + r.Faults.Checker.drops_down);
          (if Faults.Checker.ok r then "OK"
           else Printf.sprintf "%d VIOLATIONS" (List.length r.Faults.Checker.violations));
        ])
    outcomes;
  Util.print_table table;
  (* the matrix runs under its own probes; aggregate their flames here *)
  let merge pick =
    let merged = Hashtbl.create 16 in
    List.iter
      (fun (o : Harness.Fault_run.outcome) ->
        List.iter
          (fun (k, n) ->
            Hashtbl.replace merged k (n + Option.value ~default:0 (Hashtbl.find_opt merged k)))
          (pick o))
      outcomes;
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) merged [])
  in
  Util.flame_table
    ~span_us:(merge (fun o -> o.Harness.Fault_run.span_us))
    (merge (fun o -> o.Harness.Fault_run.flame));
  Util.note "matrix digest: %s" (Harness.Fault_run.matrix_digest outcomes);
  let v = Harness.Fault_run.violations outcomes in
  if v > 0 then Util.note "WARNING: %d invariant violation(s)" v
