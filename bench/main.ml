(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7), plus microbenchmarks and design ablations.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig5a fig7   # a subset (ids below)
     dune exec bench/main.exe -- --csv out .. # also write CSV artifacts  *)

let experiments =
  [
    ("table1", "Table 1: EC2 latency matrix", Exp_table1.run);
    ("fig1a", "Figure 1a: throughput/freshness tradeoff (3-7 DCs)", Exp_fig1.run_a);
    ("fig1b", "Figure 1b: partial geo-replication problem", Exp_fig1.run_b);
    ("fig4", "Figure 4: Saturn configuration matters", Exp_fig4.run);
    ("fig5a", "Figure 5a: throughput vs value size", Exp_fig5.run_value_size);
    ("fig5b", "Figure 5b: throughput vs R:W ratio", Exp_fig5.run_rw_ratio);
    ("fig5c", "Figure 5c: throughput vs correlation", Exp_fig5.run_correlation);
    ("fig5d", "Figure 5d: throughput vs remote reads", Exp_fig5.run_remote_reads);
    ("fig6", "Figure 6: latency variability", Exp_fig6.run);
    ("fig7", "Figure 7: visibility vs state of the art", Exp_fig7.run);
    ("fig8a", "Figure 8a: Facebook benchmark throughput", Exp_fig8.run_a);
    ("fig8b", "Figure 8b: Facebook benchmark visibility", Exp_fig8.run_b);
    ("table2", "Table 2: systems classification + COPS metadata growth", Exp_table2.run);
    ("faults", "Fault injection: crash / partition / latency-spike matrix", Exp_faults.run);
    ("ablation", "Design ablations (delays, migration labels, chains)", Exp_ablation.run);
    ("sensitivity", "Sensitivity: partial-replication traffic, stabilization/sink periods", Exp_sensitivity.run);
    ("micro", "Bechamel microbenchmarks", Micro.run);
  ]

(* dune exec bench/main.exe -- smoke [--seed N] [--out DIR] [--bench-out FILE]
   The observability smoke run: fixed-seed scenario, registry table,
   trace.jsonl + trace.digest. CI runs it twice and diffs the digests.
   --bench-out writes the run's headline numbers — throughput, visibility
   p50/p99, optimality-gap p50/p99/p99.9, per-series peak queue depth — as
   one machine-readable JSON object, the repo's benchmark trajectory
   format (BENCH_smoke.json). *)
let smoke_measure_s = 1.0

let smoke_bench_json (r : Harness.Obs.result) ~seed =
  let b = Buffer.create 1024 in
  let vis =
    (* get-or-create returns the hist the run already filled *)
    Stats.Registry.histogram r.Harness.Obs.registry "smoke.visibility_ms" ~lo:0. ~hi:1000.
      ~buckets:40
  in
  let sr = r.Harness.Obs.series in
  Buffer.add_string b "{\"schema\":\"saturn-bench-smoke/1\",";
  Buffer.add_string b (Printf.sprintf "\"seed\":%d,\"ops\":%d," seed r.Harness.Obs.ops);
  Buffer.add_string b
    (Printf.sprintf "\"throughput_ops_s\":%.1f," (float_of_int r.Harness.Obs.ops /. smoke_measure_s));
  Buffer.add_string b
    (Printf.sprintf "\"visibility_ms\":{\"n\":%d,\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f},"
       (Stats.Histogram.count vis) (Stats.Histogram.mean vis)
       (Stats.Histogram.percentile vis 50.) (Stats.Histogram.percentile vis 99.));
  (* the avoidable part of visibility: per-journey gap over the shortest
     bulk path, from the blame pass the smoke run already performed *)
  let gap = r.Harness.Obs.blame.Harness.Blame.gap_hist in
  Buffer.add_string b
    (Printf.sprintf
       "\"gap_ms\":{\"n\":%d,\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f,\"p999\":%.3f},"
       (Stats.Hdr.count gap)
       (Stats.Hdr.mean gap /. 1000.)
       (Stats.Hdr.percentile gap 50. /. 1000.)
       (Stats.Hdr.percentile gap 99. /. 1000.)
       (Stats.Hdr.percentile gap 99.9 /. 1000.));
  Buffer.add_string b
    (Printf.sprintf "\"series\":{\"window_us\":%d,\"windows\":%d,\"peak\":["
       (Sim.Time.to_us (Stats.Series.window sr))
       (Stats.Series.n_windows sr));
  let first = ref true in
  List.iter
    (fun name ->
      if Stats.Series.kind_of sr name = Some Stats.Series.Gauge then begin
        let peak = Array.fold_left max 0. (Stats.Series.primary sr name) in
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b (Printf.sprintf "{\"name\":%S,\"peak\":%.3f}" name peak)
      end)
    (Stats.Series.names sr);
  Buffer.add_string b "]}}\n";
  Buffer.contents b

let smoke_cmd rest =
  let seed = ref 42 and out_dir = ref None and bench_out = ref None in
  let rec parse = function
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n -> seed := n
      | None ->
        Printf.eprintf "smoke: --seed expects an integer, got %S\n" n;
        exit 2);
      parse rest
    | "--out" :: dir :: rest ->
      out_dir := Some dir;
      parse rest
    | "--bench-out" :: path :: rest ->
      bench_out := Some path;
      parse rest
    | [] -> ()
    | x :: _ ->
      Printf.eprintf "smoke: unknown argument %S (expected --seed N / --out DIR / --bench-out FILE)\n" x;
      exit 2
  in
  parse rest;
  let r = Harness.Obs.run_smoke ~seed:!seed ?out_dir:!out_dir () in
  match !bench_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (smoke_bench_json r ~seed:!seed);
    close_out oc;
    Printf.printf "wrote %s\n" path

(* dune exec bench/main.exe -- engine [--tiers 61k,250k,1m] [--seed N] [--out FILE]
   Raw engine speed per scale tier: graph generation, op streaming and a
   fixed simulation, reported as deterministic counts/words plus advisory
   wall-clock rates (BENCH_engine.json; gated by saturn-cli bench-check). *)
let engine_cmd rest =
  let seed = ref 42 and out = ref None and tiers = ref Workload.Scale.tiers in
  let rec parse = function
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n -> seed := n
      | None ->
        Printf.eprintf "engine: --seed expects an integer, got %S\n" n;
        exit 2);
      parse rest
    | "--tiers" :: spec :: rest ->
      tiers :=
        List.map
          (fun name ->
            match Workload.Scale.tier_of_name name with
            | Some t -> t
            | None ->
              Printf.eprintf "engine: unknown tier %S (expected 61k / 250k / 1m)\n" name;
              exit 2)
          (String.split_on_char ',' spec);
      parse rest
    | "--out" :: path :: rest ->
      out := Some path;
      parse rest
    | [] -> ()
    | x :: _ ->
      Printf.eprintf
        "engine: unknown argument %S (expected --tiers LIST / --seed N / --out FILE)\n" x;
      exit 2
  in
  parse rest;
  let results =
    List.map
      (fun tier ->
        Printf.printf "engine: tier %s (%d users)...%!" (Workload.Scale.tier_name tier)
          (Workload.Scale.tier_users tier);
        let r = Harness.Engine_bench.run_tier ~now_s:Unix.gettimeofday ~seed:!seed tier in
        Printf.printf
          " %d edges, gen %.0f ms (%.1f w/edge), stream %.0f kops/s (%.1f w/op), sim %d ops / %d events (%.0f ev/s, %.1f w/op)\n%!"
          r.Harness.Engine_bench.edges r.gen_ms r.gen_words_per_edge r.stream_kops_per_s
          r.stream_words_per_op r.sim_ops r.sim_events r.sim_events_per_s r.sim_words_per_op;
        r)
      !tiers
  in
  match !out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Harness.Engine_bench.to_json ~seed:!seed results);
    close_out oc;
    Printf.printf "wrote %s\n" path

(* dune exec bench/main.exe -- shootout [--seed N] [--out FILE]
   The stabilization shootout: every system on one fixed deployment,
   visibility + metadata bytes/op per protocol, with the family-ordering
   verdict. Fully simulated time, so the JSON (BENCH_shootout.json) is
   byte-reproducible and gated by saturn-cli bench-check. *)
let shootout_cmd rest =
  let seed = ref 42 and out = ref None and systems = ref Harness.Shootout.systems in
  let rec parse = function
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n -> seed := n
      | None ->
        Printf.eprintf "shootout: --seed expects an integer, got %S\n" n;
        exit 2);
      parse rest
    | "--systems" :: spec :: rest ->
      let names = String.split_on_char ',' spec in
      List.iter
        (fun s ->
          if not (List.mem s Harness.Shootout.systems) then begin
            Printf.eprintf "shootout: unknown system %S (expected %s)\n" s
              (String.concat "/" Harness.Shootout.systems);
            exit 2
          end)
        names;
      systems := names;
      parse rest
    | "--out" :: path :: rest ->
      out := Some path;
      parse rest
    | [] -> ()
    | x :: _ ->
      Printf.eprintf
        "shootout: unknown argument %S (expected --seed N / --systems LIST / --out FILE)\n" x;
      exit 2
  in
  parse rest;
  let rows =
    List.map
      (fun name ->
        Printf.printf "shootout: %s...%!" name;
        let t0 = Unix.gettimeofday () in
        let r = Harness.Shootout.run_system ~seed:!seed name in
        Printf.printf " %d ops, %.2f B/op (%.1fs)\n%!" r.Harness.Shootout.ops
          r.Harness.Shootout.bytes_per_op
          (Unix.gettimeofday () -. t0);
        r)
      !systems
  in
  Harness.Shootout.print rows;
  match !out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Harness.Shootout.to_json ~seed:!seed rows);
    close_out oc;
    Printf.printf "wrote %s\n" path

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "smoke" :: rest -> smoke_cmd rest
  | "engine" :: rest -> engine_cmd rest
  | "shootout" :: rest -> shootout_cmd rest
  | args ->
  (* --csv DIR: additionally write every printed table as a CSV artifact *)
  let rec extract_csv acc = function
    | "--csv" :: dir :: rest ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Util.csv_dir := Some dir;
      extract_csv acc rest
    | x :: rest -> extract_csv (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_csv [] args in
  let wall = Unix.gettimeofday () in
  let selected =
    match args with
    | [] | [ "all" ] -> experiments
    | ids ->
      List.iter
        (fun id ->
          if not (List.exists (fun (eid, _, _) -> eid = id) experiments) then begin
            Printf.eprintf "unknown experiment %S; available:\n" id;
            List.iter (fun (eid, desc, _) -> Printf.eprintf "  %-8s %s\n" eid desc) experiments;
            exit 2
          end)
        ids;
      List.filter (fun (eid, _, _) -> List.mem eid ids) experiments
  in
  Printf.printf "Saturn reproduction benchmark harness — %d experiment(s)\n%!" (List.length selected);
  List.iter
    (fun (id, _, run) ->
      let t0 = Unix.gettimeofday () in
      Util.current_section := id;
      (* count-only probe around every experiment: the flame table below
         shows which subsystems the run actually exercised *)
      let probe = Sim.Probe.create ~keep:false () in
      Sim.Probe.with_probe probe run;
      Util.flame_table ~span_us:(Sim.Probe.span_totals_us probe) (Sim.Probe.counts_by_kind probe);
      Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t0))
    selected;
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. wall)
