(* Shared helpers for the benchmark experiments. *)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* when --csv DIR is given, every printed table is also written as a CSV
   artifact named after its section and title *)
let csv_dir : string option ref = ref None
let current_section = ref "misc"
let table_counter = ref 0

let slug s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '-')
    (String.lowercase_ascii s)

let print_table table =
  Stats.Table.print table;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    incr table_counter;
    let name =
      Printf.sprintf "%s-%02d-%s.csv" (slug !current_section) !table_counter
        (slug (Stats.Table.title table))
    in
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc (Stats.Table.to_csv table);
    close_out oc

(* Percentiles used when printing a CDF as rows. *)
let cdf_points = [ 10.; 25.; 50.; 75.; 90.; 95.; 99. ]

let cdf_row label sample =
  if Stats.Sample.is_empty sample then label :: List.map (fun _ -> "-") cdf_points
  else
    label
    :: List.map (fun p -> Printf.sprintf "%.1f" (Stats.Sample.percentile sample p)) cdf_points

let cdf_columns = "latency ms at CDF" :: List.map (fun p -> Printf.sprintf "p%.0f" p) cdf_points

let pct_vs baseline v = if baseline = 0. then 0. else (v -. baseline) /. baseline *. 100.

(* per-subsystem "flame" table: probe event counts by kind, with a bar
   proportional to each kind's share — a quick where-does-the-time-go view
   printed after every experiment. When [span_us] (plain-kind-keyed
   matched-span totals from [Sim.Probe.span_totals_us]) is given, the
   "span.*" count rows also get simulated-time columns with their own
   share bars — events say how often, spans say how long. *)
let flame_table ?(span_us = []) counts =
  match List.filter (fun (_, n) -> n > 0) counts with
  | [] -> ()
  | counts ->
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
    let widest = List.fold_left (fun acc (_, n) -> max acc n) 0 counts in
    let time_total = List.fold_left (fun acc (_, us) -> acc + us) 0 span_us in
    let widest_us = List.fold_left (fun acc (_, us) -> max acc us) 0 span_us in
    let span_of kind =
      (* count rows name span kinds "span.<kind>"; the time list keys them plain *)
      if String.length kind > 5 && String.sub kind 0 5 = "span." then
        List.assoc_opt (String.sub kind 5 (String.length kind - 5)) span_us
      else None
    in
    let columns =
      [ "kind"; "events"; "share"; "" ]
      @ (if span_us = [] then [] else [ "span ms"; "time"; "" ])
    in
    let table = Stats.Table.create ~title:"probe flame (events by kind)" ~columns in
    List.iter
      (fun (kind, n) ->
        let bar = String.make (max 1 (n * 24 / widest)) '#' in
        let time_cells =
          if span_us = [] then []
          else
            match span_of kind with
            | Some us when time_total > 0 ->
              [
                Printf.sprintf "%.1f" (float_of_int us /. 1000.);
                Printf.sprintf "%.1f%%" (100. *. float_of_int us /. float_of_int time_total);
                String.make (max 1 (us * 24 / max 1 widest_us)) '#';
              ]
            | _ -> [ "-"; "-"; "" ]
        in
        Stats.Table.add_row table
          ([
             kind;
             string_of_int n;
             Printf.sprintf "%.1f%%" (100. *. float_of_int n /. float_of_int total);
             bar;
           ]
          @ time_cells))
      (List.sort (fun (_, a) (_, b) -> compare b a) counts);
    print_table table

(* quick scenario variants used across experiments: short, stable windows *)
let quick_setup =
  { Harness.Scenario.default_setup with
    Harness.Scenario.measure = Sim.Time.of_sec 1.0;
    warmup = Sim.Time.of_ms 400;
    cooldown = Sim.Time.of_ms 200;
  }

let outcome_row (o : Harness.Scenario.outcome) ~tput_baseline ~vis_baseline =
  [
    Harness.Scenario.system_name o.Harness.Scenario.system;
    Printf.sprintf "%.0f" o.Harness.Scenario.throughput;
    Printf.sprintf "%+.1f%%" (pct_vs tput_baseline o.Harness.Scenario.throughput);
    Printf.sprintf "%.1f" o.Harness.Scenario.mean_visibility_ms;
    Printf.sprintf "%.1f" o.Harness.Scenario.extra_visibility_ms;
    Printf.sprintf "%+.1f%%" (pct_vs vis_baseline o.Harness.Scenario.mean_visibility_ms);
  ]

let outcome_columns =
  [ "system"; "ops/s"; "tput vs eventual"; "visibility ms"; "extra ms"; "staleness vs eventual" ]
