(* Tests for labels, gears and the label sink. *)

let qtest = QCheck_alcotest.to_alcotest

(* arbitrary labels for property tests *)
let label_gen =
  QCheck.Gen.(
    let* ts = int_bound 1_000 in
    let* src_dc = int_bound 4 in
    let* src_gear = int_bound 3 in
    let* kind = int_bound 2 in
    return
      (match kind with
      | 0 -> Saturn.Label.update ~ts ~src_dc ~src_gear ~key:(ts mod 17)
      | 1 -> Saturn.Label.migration ~ts ~src_dc ~src_gear ~dest_dc:(ts mod 5)
      | _ -> Saturn.Label.epoch_change ~ts ~src_dc ~epoch:(ts mod 3)))

let arbitrary_label = QCheck.make ~print:(Format.asprintf "%a" Saturn.Label.pp) label_gen

let test_label_compare_rule () =
  let a = Saturn.Label.update ~ts:10 ~src_dc:1 ~src_gear:0 ~key:5 in
  let b = Saturn.Label.update ~ts:11 ~src_dc:0 ~src_gear:0 ~key:5 in
  Alcotest.(check bool) "ts dominates" true (Saturn.Label.compare a b < 0);
  let c = Saturn.Label.update ~ts:10 ~src_dc:2 ~src_gear:0 ~key:5 in
  Alcotest.(check bool) "src breaks ts ties" true (Saturn.Label.compare a c < 0);
  let d = Saturn.Label.update ~ts:10 ~src_dc:1 ~src_gear:1 ~key:5 in
  Alcotest.(check bool) "gear breaks src ties" true (Saturn.Label.compare a d < 0);
  Alcotest.(check bool) "reflexive equal" true (Saturn.Label.equal a a)

let test_epoch_marker_sorts_last () =
  (* §6.2: the epoch-change marker must be the last label its origin pushes
     through the old tree, so at an equal timestamp it has to sort after
     every same-origin data label — pinned here so the gear tie-break
     cannot silently regress *)
  let ts = 10 and src_dc = 1 in
  let m = Saturn.Label.epoch_change ~ts ~src_dc ~epoch:2 in
  Alcotest.(check int) "marker gear is the 20-bit max" 0xFFFFF Saturn.Label.marker_gear;
  List.iter
    (fun src_gear ->
      let u = Saturn.Label.update ~ts ~src_dc ~src_gear ~key:3 in
      let g = Saturn.Label.migration ~ts ~src_dc ~src_gear ~dest_dc:2 in
      Alcotest.(check bool)
        (Printf.sprintf "same-ts update (gear %d) before marker" src_gear)
        true
        (Saturn.Label.compare u m < 0 && Saturn.Label.compare_ts_src u m < 0);
      Alcotest.(check bool)
        (Printf.sprintf "same-ts migration (gear %d) before marker" src_gear)
        true
        (Saturn.Label.compare g m < 0))
    [ 0; 1; Saturn.Label.marker_gear - 1 ];
  (* the tie-break never overrides the timestamp order *)
  let later = Saturn.Label.update ~ts:(ts + 1) ~src_dc ~src_gear:0 ~key:3 in
  Alcotest.(check bool) "later ts still after the marker" true (Saturn.Label.compare m later < 0)

let test_label_kind_predicates () =
  let u = Saturn.Label.update ~ts:1 ~src_dc:0 ~src_gear:0 ~key:0 in
  let m = Saturn.Label.migration ~ts:1 ~src_dc:0 ~src_gear:0 ~dest_dc:1 in
  let e = Saturn.Label.epoch_change ~ts:1 ~src_dc:0 ~epoch:1 in
  Alcotest.(check bool) "update" true (Saturn.Label.is_update u);
  Alcotest.(check bool) "migration" true (Saturn.Label.is_migration m);
  Alcotest.(check bool) "epoch is neither" false
    (Saturn.Label.is_update e || Saturn.Label.is_migration e)

let prop_compare_total_order =
  QCheck.Test.make ~name:"label compare is a total order" ~count:300
    QCheck.(triple arbitrary_label arbitrary_label arbitrary_label)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Saturn.Label.compare a b) = -sgn (Saturn.Label.compare b a)
      (* transitivity on a sorted triple *)
      && begin
           let sorted = List.sort Saturn.Label.compare [ a; b; c ] in
           match sorted with
           | [ x; y; z ] ->
             Saturn.Label.compare x y <= 0 && Saturn.Label.compare y z <= 0
             && Saturn.Label.compare x z <= 0
           | _ -> false
         end)

let prop_ts_src_consistent =
  QCheck.Test.make ~name:"compare refines the paper's (ts,src) rule" ~count:300
    QCheck.(pair arbitrary_label arbitrary_label)
    (fun (a, b) ->
      match Saturn.Label.compare_ts_src a b with
      | 0 -> true (* same gear+ts: full compare may order by target *)
      | c -> compare (Saturn.Label.compare a b) 0 = compare c 0)

(* ---- gears ---------------------------------------------------------------- *)

let test_gear_monotonic_and_dominating () =
  let e = Sim.Engine.create () in
  let clock = Sim.Clock.create e in
  let g = Saturn.Gear.create clock ~dc:2 ~gear_id:1 in
  let t1 = Saturn.Gear.generate_ts g ~client_ts:Sim.Time.zero in
  let t2 = Saturn.Gear.generate_ts g ~client_ts:Sim.Time.zero in
  Alcotest.(check bool) "strictly increasing" true (Sim.Time.compare t2 t1 > 0);
  (* a client label from the future pushes the gear forward *)
  let t3 = Saturn.Gear.generate_ts g ~client_ts:(Sim.Time.of_ms 50) in
  Alcotest.(check bool) "dominates client ts" true (Sim.Time.compare t3 (Sim.Time.of_ms 50) > 0);
  let t4 = Saturn.Gear.generate_ts g ~client_ts:Sim.Time.zero in
  Alcotest.(check bool) "stays past the bump" true (Sim.Time.compare t4 t3 > 0);
  Alcotest.(check int) "issued" 4 (Saturn.Gear.issued g);
  Alcotest.(check bool) "floor covers last ts" true
    (Sim.Time.compare (Saturn.Gear.floor g) t4 >= 0)

let prop_gear_respects_causality =
  QCheck.Test.make ~name:"gear timestamps exceed any observed label" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun client_ts_list ->
      let e = Sim.Engine.create () in
      let g = Saturn.Gear.create (Sim.Clock.create e) ~dc:0 ~gear_id:0 in
      List.for_all
        (fun client_ts ->
          let ts = Saturn.Gear.generate_ts g ~client_ts in
          Sim.Time.compare ts client_ts > 0)
        client_ts_list)

(* ---- sink ----------------------------------------------------------------- *)

let prop_gear_floor_monotone =
  QCheck.Test.make ~name:"gear floor never decreases" ~count:100
    QCheck.(list (int_bound 5_000))
    (fun client_ts_list ->
      let e = Sim.Engine.create () in
      let g = Saturn.Gear.create (Sim.Clock.create e) ~dc:0 ~gear_id:0 in
      let ok = ref true in
      let last_floor = ref Sim.Time.zero in
      List.iter
        (fun client_ts ->
          ignore (Saturn.Gear.generate_ts g ~client_ts);
          let f = Saturn.Gear.floor g in
          if Sim.Time.compare f !last_floor < 0 then ok := false;
          last_floor := f)
        client_ts_list;
      !ok)

let test_sink_stop () =
  let e = Sim.Engine.create () in
  let gears = [| Saturn.Gear.create (Sim.Clock.create e) ~dc:0 ~gear_id:0 |] in
  let emitted = ref 0 in
  let sink = Saturn.Sink.create e ~gears ~period:(Sim.Time.of_ms 1) ~emit:(fun _ -> incr emitted) () in
  Saturn.Sink.stop sink;
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 10) (fun () ->
      let ts = Saturn.Gear.generate_ts gears.(0) ~client_ts:Sim.Time.zero in
      Saturn.Sink.offer sink (Saturn.Label.update ~ts ~src_dc:0 ~src_gear:0 ~key:1));
  Sim.Engine.run e;
  Alcotest.(check int) "no periodic emission after stop" 0 !emitted;
  (* explicit flush still drains *)
  Saturn.Sink.flush sink;
  Alcotest.(check int) "manual flush works" 1 !emitted

let test_sink_orders_by_ts () =
  let e = Sim.Engine.create () in
  let clock = Sim.Clock.create e in
  let gears = Array.init 2 (fun gear_id -> Saturn.Gear.create clock ~dc:0 ~gear_id) in
  let emitted = ref [] in
  let sink =
    Saturn.Sink.create e ~gears ~period:(Sim.Time.of_ms 1)
      ~emit:(fun l -> emitted := l :: !emitted)
      ()
  in
  (* offer out of timestamp order *)
  let l1 = Saturn.Label.update ~ts:(Saturn.Gear.generate_ts gears.(0) ~client_ts:Sim.Time.zero) ~src_dc:0 ~src_gear:0 ~key:1 in
  let l2 = Saturn.Label.update ~ts:(Saturn.Gear.generate_ts gears.(1) ~client_ts:Sim.Time.zero) ~src_dc:0 ~src_gear:1 ~key:2 in
  Saturn.Sink.offer sink l2;
  Saturn.Sink.offer sink l1;
  Sim.Engine.run ~until:(Sim.Time.of_ms 5) e;
  Saturn.Sink.stop sink;
  Sim.Engine.run e;
  (match List.rev !emitted with
  | [ a; b ] ->
    Alcotest.(check bool) "ts order" true (Sim.Time.compare a.Saturn.Label.ts b.Saturn.Label.ts < 0)
  | out -> Alcotest.failf "expected 2 emissions, got %d" (List.length out));
  Alcotest.(check int) "emitted counter" 2 (Saturn.Sink.emitted sink)

let test_sink_holds_unstable_labels () =
  (* a gear with a skewed-slow clock must hold back the sink *)
  let e = Sim.Engine.create () in
  let fast = Saturn.Gear.create (Sim.Clock.create e) ~dc:0 ~gear_id:0 in
  let slow = Saturn.Gear.create (Sim.Clock.create ~offset:(Sim.Time.of_ms (-20)) e) ~dc:0 ~gear_id:1 in
  let emitted = ref 0 in
  let sink =
    Saturn.Sink.create e ~gears:[| fast; slow |] ~period:(Sim.Time.of_ms 1)
      ~emit:(fun _ -> incr emitted)
      ()
  in
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 10) (fun () ->
      let ts = Saturn.Gear.generate_ts fast ~client_ts:Sim.Time.zero in
      Saturn.Sink.offer sink (Saturn.Label.update ~ts ~src_dc:0 ~src_gear:0 ~key:1));
  Sim.Engine.run ~until:(Sim.Time.of_ms 15) e;
  (* the slow gear could still mint ts < fast label's ts: label must wait *)
  Alcotest.(check int) "held while unstable" 0 !emitted;
  Alcotest.(check int) "buffered" 1 (Saturn.Sink.buffered sink);
  Sim.Engine.run ~until:(Sim.Time.of_ms 40) e;
  Alcotest.(check int) "released once stable" 1 !emitted;
  Saturn.Sink.stop sink;
  Sim.Engine.run e

let prop_sink_emits_sorted =
  QCheck.Test.make ~name:"sink emission is sorted by (ts,src)" ~count:50
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 3))
    (fun gear_choices ->
      let e = Sim.Engine.create () in
      let clock = Sim.Clock.create e in
      let gears = Array.init 4 (fun gear_id -> Saturn.Gear.create clock ~dc:0 ~gear_id) in
      let emitted = ref [] in
      let sink =
        Saturn.Sink.create e ~gears ~period:(Sim.Time.of_ms 1)
          ~emit:(fun l -> emitted := l :: !emitted)
          ()
      in
      List.iteri
        (fun i gear ->
          Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 137)) (fun () ->
              let ts = Saturn.Gear.generate_ts gears.(gear) ~client_ts:Sim.Time.zero in
              Saturn.Sink.offer sink (Saturn.Label.update ~ts ~src_dc:0 ~src_gear:gear ~key:i)))
        gear_choices;
      Sim.Engine.run ~until:(Sim.Time.of_ms 50) e;
      Saturn.Sink.stop sink;
      Sim.Engine.run e;
      let out = List.rev !emitted in
      List.length out = List.length gear_choices
      &&
      let rec sorted = function
        | a :: (b :: _ as rest) -> Saturn.Label.compare_ts_src a b <= 0 && sorted rest
        | _ -> true
      in
      sorted out)

let suite =
  [
    Alcotest.test_case "label comparability rule" `Quick test_label_compare_rule;
    Alcotest.test_case "epoch marker sorts after same-ts data labels" `Quick
      test_epoch_marker_sorts_last;
    Alcotest.test_case "label kind predicates" `Quick test_label_kind_predicates;
    qtest prop_compare_total_order;
    qtest prop_ts_src_consistent;
    Alcotest.test_case "gear monotonicity" `Quick test_gear_monotonic_and_dominating;
    qtest prop_gear_respects_causality;
    qtest prop_gear_floor_monotone;
    Alcotest.test_case "sink stop" `Quick test_sink_stop;
    Alcotest.test_case "sink reorders by timestamp" `Quick test_sink_orders_by_ts;
    Alcotest.test_case "sink waits for gear stability" `Quick test_sink_holds_unstable_labels;
    qtest prop_sink_emits_sorted;
  ]
