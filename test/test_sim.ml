(* Unit and property tests for the simulator substrate. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Time ---------------------------------------------------------------- *)

let test_time_units () =
  Alcotest.(check int) "ms" 5_000 (Sim.Time.to_us (Sim.Time.of_ms 5));
  Alcotest.(check int) "sec" 1_500_000 (Sim.Time.to_us (Sim.Time.of_sec 1.5));
  Alcotest.(check (float 1e-9)) "to ms" 2.5 (Sim.Time.to_ms_float (Sim.Time.of_us 2_500));
  Alcotest.(check int) "add" 7 (Sim.Time.add 3 4);
  Alcotest.(check int) "sub" 1 (Sim.Time.sub 5 4);
  Alcotest.(check string) "pp us" "12us" (Sim.Time.to_string (Sim.Time.of_us 12));
  Alcotest.(check string) "pp ms" "1.500ms" (Sim.Time.to_string (Sim.Time.of_us 1_500));
  Alcotest.(check string) "pp s" "2.000s" (Sim.Time.to_string (Sim.Time.of_sec 2.))

(* ---- Heap ---------------------------------------------------------------- *)

let test_heap_basic () =
  let h = Sim.Heap.create ~cmp:Int.compare () in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "size" 5 (Sim.Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek h);
  Alcotest.(check int) "pop 1" 1 (Sim.Heap.pop_exn h);
  Alcotest.(check int) "pop dup" 1 (Sim.Heap.pop_exn h);
  Alcotest.(check int) "pop 3" 3 (Sim.Heap.pop_exn h);
  Sim.Heap.clear h;
  Alcotest.(check (option int)) "cleared" None (Sim.Heap.pop h)

let test_heap_pop_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare () in
  Alcotest.check_raises "pop_exn on empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Sim.Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare () in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc = match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort Int.compare xs)

let prop_heap_to_list_preserves =
  QCheck.Test.make ~name:"to_list holds exactly the pushed elements" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare () in
      List.iter (Sim.Heap.push h) xs;
      List.sort Int.compare (Sim.Heap.to_list h) = List.sort Int.compare xs)

(* ---- Keyed heap ----------------------------------------------------------- *)

let test_keyed_heap_basic () =
  let h = Sim.Heap.Keyed.create ~dummy:"" () in
  Alcotest.(check bool) "empty" true (Sim.Heap.Keyed.is_empty h);
  List.iter
    (fun (k1, k2, x) -> Sim.Heap.Keyed.push h ~k1 ~k2 x)
    [ (5, 0, "e"); (1, 1, "b"); (1, 0, "a"); (3, 0, "c"); (3, 0, "d") ];
  Alcotest.(check int) "size" 5 (Sim.Heap.Keyed.size h);
  Alcotest.(check int) "min_k1" 1 (Sim.Heap.Keyed.min_k1 h);
  Alcotest.(check (option string)) "peek" (Some "a") (Sim.Heap.Keyed.peek h);
  Alcotest.(check string) "pop a" "a" (Sim.Heap.Keyed.pop_exn h);
  Alcotest.(check int) "popped k1" 1 (Sim.Heap.Keyed.popped_k1 h);
  Alcotest.(check int) "popped k2" 0 (Sim.Heap.Keyed.popped_k2 h);
  Alcotest.(check string) "pop b" "b" (Sim.Heap.Keyed.pop_exn h);
  Sim.Heap.Keyed.clear h;
  Alcotest.(check (option string)) "cleared" None (Sim.Heap.Keyed.pop h)

let prop_keyed_heap_sorts =
  QCheck.Test.make ~name:"keyed heap drains in (k1, k2) order" ~count:200
    QCheck.(list (pair small_int small_int))
    (fun ks ->
      let h = Sim.Heap.Keyed.create ~dummy:(-1, -1) () in
      List.iter (fun (k1, k2) -> Sim.Heap.Keyed.push h ~k1 ~k2 (k1, k2)) ks;
      let rec drain acc =
        match Sim.Heap.Keyed.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare ks)

(* ---- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:99 and b = Sim.Rng.create ~seed:99 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Sim.Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "out of range: %d" x;
    let f = Sim.Rng.float rng 3.5 in
    if f < 0. || f >= 3.5 then Alcotest.failf "float out of range: %f" f
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int rng 0))

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Sim.Rng.shuffle (Sim.Rng.create ~seed) arr;
      List.sort Int.compare (Array.to_list arr) = List.sort Int.compare xs)

let test_rng_exponential_positive () =
  let rng = Sim.Rng.create ~seed:3 in
  let sum = ref 0. in
  for _ = 1 to 1000 do
    let x = Sim.Rng.exponential rng ~mean:10. in
    if x < 0. then Alcotest.fail "negative exponential sample";
    sum := !sum +. x
  done;
  let mean = !sum /. 1000. in
  if mean < 8. || mean > 12. then Alcotest.failf "exponential mean off: %f" mean

(* ---- Engine -------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 5) (fun () -> log := 2 :: !log);
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 1) (fun () -> log := 1 :: !log);
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 9) (fun () -> log := 3 :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "now at last event" 9_000 (Sim.Engine.now e)

let test_engine_fifo_same_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 1) (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo at equal timestamps" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 10) (fun () -> fired := true);
  Sim.Engine.run ~until:(Sim.Time.of_ms 5) e;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "clock advanced to horizon" 5_000 (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check bool) "eventually fires" true !fired

let test_engine_nested_schedule () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 1) (fun () ->
      Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 1) (fun () -> incr hits));
  Sim.Engine.run e;
  Alcotest.(check int) "nested event ran" 1 !hits;
  Alcotest.(check int) "two events processed" 2 (Sim.Engine.events_processed e)

let test_engine_periodic_stop () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  Sim.Engine.periodic e ~every:(Sim.Time.of_ms 2) (fun () -> incr n) ~stop:(fun () -> !n >= 3);
  Sim.Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !n

let test_engine_negative_delay_clamped () =
  let e = Sim.Engine.create () in
  let fired_at = ref (-1) in
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 2) (fun () ->
      Sim.Engine.schedule_at e Sim.Time.zero (fun () -> fired_at := Sim.Engine.now e));
  Sim.Engine.run e;
  Alcotest.(check int) "past-due event runs now" 2_000 !fired_at

(* ---- Clock --------------------------------------------------------------- *)

let test_clock_monotonic () =
  let e = Sim.Engine.create () in
  let c = Sim.Clock.create e in
  let a = Sim.Clock.read c in
  let b = Sim.Clock.read c in
  if Sim.Time.compare b a <= 0 then Alcotest.fail "clock reads must strictly increase"

let test_clock_offset_drift () =
  let e = Sim.Engine.create () in
  let c = Sim.Clock.create ~offset:(Sim.Time.of_ms 3) ~drift_ppm:1000. e in
  Sim.Engine.schedule e ~delay:(Sim.Time.of_sec 1.) (fun () ->
      (* 1s elapsed, +3ms offset, +1ms drift (1000 ppm of 1s) *)
      let v = Sim.Clock.peek c in
      Alcotest.(check int) "offset+drift" 1_004_000 (Sim.Time.to_us v));
  Sim.Engine.run e

(* ---- Link ---------------------------------------------------------------- *)

let test_link_latency () =
  let e = Sim.Engine.create () in
  let l = Sim.Link.create e ~latency:(Sim.Time.of_ms 10) () in
  let arrival = ref (-1) in
  Sim.Link.send l (fun () -> arrival := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "latency applied" 10_000 !arrival

let test_link_bandwidth () =
  let e = Sim.Engine.create () in
  let l = Sim.Link.create ~bandwidth_bytes_per_us:1. e ~latency:(Sim.Time.of_ms 1) () in
  let arrival = ref (-1) in
  Sim.Link.send l ~size_bytes:500 (fun () -> arrival := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "latency + transmission" 1_500 !arrival

let test_link_cut_drops () =
  let e = Sim.Engine.create () in
  let l = Sim.Link.create e ~latency:(Sim.Time.of_ms 10) () in
  let delivered = ref 0 in
  Sim.Link.send l (fun () -> incr delivered);
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 5) (fun () -> Sim.Link.cut l);
  (* in-flight message is lost; messages sent while down are lost too *)
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 6) (fun () -> Sim.Link.send l (fun () -> incr delivered));
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 7) (fun () -> Sim.Link.restore l);
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 8) (fun () -> Sim.Link.send l (fun () -> incr delivered));
  Sim.Engine.run e;
  Alcotest.(check int) "only post-restore delivery" 1 !delivered;
  Alcotest.(check int) "drops counted" 2 (Sim.Link.dropped_count l)

let prop_link_fifo_under_jitter =
  QCheck.Test.make ~name:"link preserves FIFO under jitter" ~count:50
    QCheck.(pair small_int (int_bound 50))
    (fun (seed, n) ->
      let n = n + 2 in
      let e = Sim.Engine.create () in
      let rng = Sim.Rng.create ~seed in
      let l = Sim.Link.create ~jitter_us:5_000 ~rng e ~latency:(Sim.Time.of_ms 2) () in
      let received = ref [] in
      for i = 1 to n do
        Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 100)) (fun () ->
            Sim.Link.send l (fun () -> received := i :: !received))
      done;
      Sim.Engine.run e;
      List.rev !received = List.init n (fun i -> i + 1))

(* ---- Server -------------------------------------------------------------- *)

let test_server_serializes () =
  let e = Sim.Engine.create () in
  let s = Sim.Server.create e in
  let finish = ref [] in
  Sim.Server.submit s ~cost:(Sim.Time.of_ms 2) (fun () -> finish := (1, Sim.Engine.now e) :: !finish);
  Sim.Server.submit s ~cost:(Sim.Time.of_ms 3) (fun () -> finish := (2, Sim.Engine.now e) :: !finish);
  Sim.Engine.run e;
  (match List.rev !finish with
  | [ (1, t1); (2, t2) ] ->
    Alcotest.(check int) "first at 2ms" 2_000 t1;
    Alcotest.(check int) "second queued behind" 5_000 t2
  | _ -> Alcotest.fail "completion order wrong");
  Alcotest.(check int) "busy time" 5_000 (Sim.Time.to_us (Sim.Server.busy_time s));
  Alcotest.(check int) "completed" 2 (Sim.Server.completed s)

let test_server_idle_gap () =
  let e = Sim.Engine.create () in
  let s = Sim.Server.create e in
  let at = ref 0 in
  Sim.Server.submit s ~cost:(Sim.Time.of_ms 1) (fun () -> ());
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 10) (fun () ->
      Sim.Server.submit s ~cost:(Sim.Time.of_ms 1) (fun () -> at := Sim.Engine.now e));
  Sim.Engine.run e;
  Alcotest.(check int) "no phantom queueing after idle" 11_000 !at

(* ---- Topology / EC2 ------------------------------------------------------ *)

let test_topology_validation () =
  let names = [| "a"; "b" |] in
  Alcotest.check_raises "asymmetric" (Invalid_argument "Topology.create: asymmetric matrix")
    (fun () -> ignore (Sim.Topology.create ~names ~latency_ms:[| [| 0; 1 |]; [| 2; 0 |] |]));
  Alcotest.check_raises "diagonal" (Invalid_argument "Topology.create: non-zero diagonal")
    (fun () -> ignore (Sim.Topology.create ~names ~latency_ms:[| [| 1; 1 |]; [| 1; 0 |] |]))

let test_ec2_matrix () =
  let t = Sim.Ec2.topology in
  Alcotest.(check int) "seven regions" 7 (Sim.Topology.n_sites t);
  Alcotest.(check int) "I-F 10ms" 10_000 (Sim.Time.to_us (Sim.Topology.latency t Sim.Ec2.i Sim.Ec2.f));
  Alcotest.(check int) "F-S 161ms" 161_000 (Sim.Time.to_us (Sim.Topology.latency t Sim.Ec2.f Sim.Ec2.s));
  Alcotest.(check string) "name" "T" (Sim.Topology.name t Sim.Ec2.t);
  Alcotest.(check int) "lookup" Sim.Ec2.o (Sim.Topology.site_of_name t "O");
  (* symmetry of the whole table *)
  for i = 0 to 6 do
    for j = 0 to 6 do
      Alcotest.(check int) "symmetric"
        (Sim.Time.to_us (Sim.Topology.latency t i j))
        (Sim.Time.to_us (Sim.Topology.latency t j i))
    done
  done

let test_topology_sub () =
  let sub, mapping = Sim.Topology.sub Sim.Ec2.topology [ Sim.Ec2.i; Sim.Ec2.s ] in
  Alcotest.(check int) "two sites" 2 (Sim.Topology.n_sites sub);
  Alcotest.(check int) "latency preserved" 154_000 (Sim.Time.to_us (Sim.Topology.latency sub 0 1));
  Alcotest.(check (array int)) "mapping" [| Sim.Ec2.i; Sim.Ec2.s |] mapping

(* ---- Trace --------------------------------------------------------------- *)

let test_trace_ring () =
  let e = Sim.Engine.create () in
  let tr = Sim.Trace.create ~capacity:3 e in
  Sim.Trace.log tr ~component:"x" "dropped (disabled)";
  Alcotest.(check int) "disabled drops" 0 (List.length (Sim.Trace.entries tr));
  Sim.Trace.set_enabled tr true;
  List.iter (fun m -> Sim.Trace.log tr ~component:"x" m) [ "a"; "b"; "c"; "d" ];
  let msgs = List.map (fun (_, _, m) -> m) (Sim.Trace.entries tr) in
  Alcotest.(check (list string)) "ring keeps newest" [ "b"; "c"; "d" ] msgs;
  Sim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Sim.Trace.entries tr))

let suite =
  [
    Alcotest.test_case "time units and printing" `Quick test_time_units;
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "heap pop on empty" `Quick test_heap_pop_empty;
    qtest prop_heap_sorts;
    qtest prop_heap_to_list_preserves;
    Alcotest.test_case "keyed heap basics" `Quick test_keyed_heap_basic;
    qtest prop_keyed_heap_sorts;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    qtest prop_shuffle_is_permutation;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential_positive;
    Alcotest.test_case "engine time ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine FIFO at equal times" `Quick test_engine_fifo_same_time;
    Alcotest.test_case "engine run ~until" `Quick test_engine_until;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine periodic with stop" `Quick test_engine_periodic_stop;
    Alcotest.test_case "engine clamps past-due events" `Quick test_engine_negative_delay_clamped;
    Alcotest.test_case "clock monotonic reads" `Quick test_clock_monotonic;
    Alcotest.test_case "clock offset and drift" `Quick test_clock_offset_drift;
    Alcotest.test_case "link latency" `Quick test_link_latency;
    Alcotest.test_case "link bandwidth term" `Quick test_link_bandwidth;
    Alcotest.test_case "link cut drops traffic" `Quick test_link_cut_drops;
    qtest prop_link_fifo_under_jitter;
    Alcotest.test_case "server serializes work" `Quick test_server_serializes;
    Alcotest.test_case "server no phantom queueing" `Quick test_server_idle_gap;
    Alcotest.test_case "topology validation" `Quick test_topology_validation;
    Alcotest.test_case "EC2 Table 1 data" `Quick test_ec2_matrix;
    Alcotest.test_case "topology sub-selection" `Quick test_topology_sub;
    Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
  ]
