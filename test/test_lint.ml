(* Tests for the static analyzer: each rule fires on a minimal fixture, is
   silenced by a waiver, and the whole linter reports zero findings on the
   real [lib/] tree (the same invariant CI's lint job enforces). *)

let run ?baseline sources = Lint.Engine.run_sources ?baseline sources
let rules_of (r : Lint.Report.t) = List.map (fun f -> f.Lint.Rules.rule) r.findings
let slist = Alcotest.(list string)

(* ---- R1: unordered-iteration -------------------------------------------- *)

let test_r1_fires () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let keys tbl =
  let out = ref [] in
  Hashtbl.iter (fun k _ -> out := k :: !out) tbl;
  !out
|}
        );
      ]
  in
  Alcotest.check slist "one R1 finding" [ Lint.Rules.r_unordered ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check int) "on the iter line" 3 f.Lint.Rules.line

let test_r1_sorted_same_expression () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let pairs tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
|}
        );
      ]
  in
  Alcotest.check slist "sort in the same expression silences R1" [] (rules_of r)

let test_r1_sort_next_statement_still_fires () =
  (* the sort must be in the same expression: a sort one [let] later is a
     different statement and does not count *)
  let r =
    run
      [
        ( "lib/x.ml",
          {|let keys tbl =
  let l = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort compare l
|}
        );
      ]
  in
  Alcotest.check slist "R1 still fires" [ Lint.Rules.r_unordered ] (rules_of r)

let test_r1_pipeline_sort_ok () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let pairs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
|}
        );
      ]
  in
  Alcotest.check slist "|> List.sort counts as the same expression" [] (rules_of r)

let test_r1_waiver () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let sum tbl =
  (* lint: allow unordered-iteration -- addition commutes *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
|}
        );
      ]
  in
  Alcotest.check slist "waiver silences R1" [] (rules_of r);
  Alcotest.(check int) "waiver counted as used" 1 r.waivers_used

(* ---- R2: ambient-nondeterminism ------------------------------------------ *)

let test_r2_fires () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let now () = Unix.gettimeofday ()
let pick n = Random.int n
let wire v = Marshal.to_string v []
let h x = Hashtbl.hash x
|}
        );
      ]
  in
  Alcotest.(check int) "four ambient sites" 4 (List.length r.findings);
  List.iter
    (fun (f : Lint.Rules.finding) ->
      Alcotest.(check string) "all R2" Lint.Rules.r_ambient f.rule)
    r.findings

let test_r2_seeded_state_ok () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let pick st n = Random.State.int st n
let mk seed = Random.State.make [| seed |]
|}
        );
      ]
  in
  Alcotest.check slist "seeded Random.State is allowed" [] (rules_of r)

(* ---- R5: physical-equality ------------------------------------------------ *)

let test_r5_fires_and_waives () =
  let r = run [ ("lib/x.ml", "let same a b = a == b\n") ] in
  Alcotest.check slist "R5 fires on ==" [ Lint.Rules.r_physeq ] (rules_of r);
  let r =
    run
      [
        ( "lib/x.ml",
          {|(* lint: allow physical-equality -- intentional identity check *)
let same a b = a == b
|}
        );
      ]
  in
  Alcotest.check slist "waived" [] (rules_of r)

let test_r5_not_confused_by_strings () =
  let r = run [ ("lib/x.ml", "let s = \"a == b\"\nlet c = '='\n") ] in
  Alcotest.check slist "== inside a string literal is not a finding" [] (rules_of r)

(* ---- R3: span-pairing ----------------------------------------------------- *)

let test_r3_unbalanced () =
  let r =
    run
      [
        ("lib/a.ml", "let f tr ~at = Sim.Span.begin_ tr ~at Sim.Span.Sk_flush\n");
      ]
  in
  Alcotest.check slist "begin without end" [ Lint.Rules.r_span ] (rules_of r)

let test_r3_paired_across_files () =
  let r =
    run
      [
        ("lib/a.ml", "let f tr ~at = Sim.Span.begin_ tr ~at Sim.Span.Sk_flush\n");
        ("lib/b.ml", "let g tr ~at = Sim.Span.end_ tr ~at Sim.Span.Sk_flush\n");
      ]
  in
  Alcotest.check slist "matching end in another file pairs up" [] (rules_of r)

let test_r3_unresolved_kind () =
  let r =
    run [ ("lib/a.ml", "let f tr ~at kind = Sim.Span.begin_ tr ~at kind\n") ] in
  Alcotest.check slist "kind not statically resolvable" [ Lint.Rules.r_span ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check bool) "message says unresolvable" true
    (String.length f.message > 0
    && String.sub f.message 0 14 = "cannot resolve")

let test_r3_helper_segment_fallback () =
  (* the Sk_* constructor may sit a statement away when a helper binds the
     call first (Proxy.span_label does this) *)
  let r =
    run
      [
        ( "lib/a.ml",
          {|let span_do tr ~at =
  let go = Sim.Span.begin_ tr ~at in
  go Sim.Span.Sk_flush
let close tr ~at = Sim.Span.end_ tr ~at Sim.Span.Sk_flush
|}
        );
      ]
  in
  Alcotest.check slist "enclosing-segment fallback resolves the kind" [] (rules_of r)

(* ---- R4: counter-name-grammar --------------------------------------------- *)

let test_r4_grammar () =
  let r =
    run [ ("lib/a.ml", "let c reg = Stats.Registry.counter reg \"Bad Name.x\"\n") ] in
  Alcotest.check slist "bad characters" [ Lint.Rules.r_counter ] (rules_of r);
  let r = run [ ("lib/a.ml", "let c reg = Stats.Registry.counter reg \"plain\"\n") ] in
  Alcotest.check slist "undotted name" [ Lint.Rules.r_counter ] (rules_of r);
  let r =
    run [ ("lib/a.ml", "let c reg = Stats.Registry.counter reg \"family.metric\"\n") ] in
  Alcotest.check slist "conforming name" [] (rules_of r)

(* Series registration sites share R4's grammar, plus the "series." prefix
   the runtime enforces *)
let test_r4_series_prefix () =
  let r =
    run [ ("lib/a.ml", "let c sr = Stats.Series.counter sr \"queue.depth\"\n") ] in
  Alcotest.check slist "missing series. prefix" [ Lint.Rules.r_counter ] (rules_of r);
  let r =
    run
      [ ("lib/a.ml",
         "let g sr dc = Stats.Series.sample sr (Printf.sprintf \"series.pending.dc%d\" dc)\n") ]
  in
  Alcotest.check slist "prefixed sprintf shape passes" [] (rules_of r);
  let r = run [ ("lib/a.ml", "let h sr = Stats.Series.hist sr \"series.vis ms\"\n") ] in
  Alcotest.check slist "grammar still applies to series names" [ Lint.Rules.r_counter ]
    (rules_of r)

let test_r4_baseline_coverage () =
  let sources =
    [
      ( "lib/a.ml",
        {|let c reg k = Stats.Registry.counter reg ("span." ^ k ^ ".us")
let d reg dc = Stats.Registry.counter reg (Printf.sprintf "dc%d.updates_originated" dc)
|}
      );
    ]
  in
  let covered = "# comment line\nspan.label_walk.us\ndc0.updates_originated 12\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", covered) sources in
  Alcotest.check slist "every baseline name covered by a glob" [] (rules_of r);
  let stale = "span.label_walk.us\nservice.requests\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", stale) sources in
  Alcotest.check slist "uncovered baseline name reported" [ Lint.Rules.r_counter ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check int) "at the baseline line" 2 f.Lint.Rules.line

let test_r4_meta_bytes_grammar () =
  (* the Meta_bytes registration shape: per-system counters built with a
     sprintf literal must glob to meta.bytes.*.<metric> and cover the
     smoke baseline's per-system names *)
  let sources =
    [
      ( "lib/a.ml",
        {|let c reg system = Stats.Registry.counter reg (Printf.sprintf "meta.bytes.%s.attached" system)
let h reg system =
  Stats.Registry.histogram reg (Printf.sprintf "meta.bytes.%s.per_op" system) ~lo:0. ~hi:1. ~buckets:2
|}
      );
    ]
  in
  let covered = "meta.bytes.saturn.attached 17\nmeta.bytes.okapi.per_op 3\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", covered) sources in
  Alcotest.check slist "meta.bytes baseline names covered" [] (rules_of r);
  let stale = "meta.bytes.saturn.heartbeat 12\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", stale) sources in
  Alcotest.check slist "unregistered meta.bytes metric reported" [ Lint.Rules.r_counter ]
    (rules_of r)

let test_glob () =
  let m p s = Lint.Rules.matches ~pattern:p s in
  Alcotest.(check bool) "star spans" true (m "span.*.us" "span.label_walk.us");
  Alcotest.(check bool) "star can be empty" true (m "dc*.x" "dc.x");
  Alcotest.(check bool) "no match" false (m "span.*.us" "proxy.label_walk.us");
  Alcotest.(check bool) "literal" true (m "a.b" "a.b");
  Alcotest.(check bool) "suffix anchored" false (m "a.*" "b.a.c")

(* ---- waiver hygiene -------------------------------------------------------- *)

let test_unused_waiver () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|(* lint: allow physical-equality -- nothing below actually uses it *)
let same a b = a = b
|}
        );
      ]
  in
  Alcotest.check slist "stale waiver reported" [ Lint.Rules.r_unused_waiver ] (rules_of r);
  Alcotest.(check int) "not counted as used" 0 r.waivers_used

let test_bad_waiver () =
  let r =
    run [ ("lib/x.ml", "(* lint: allow no-such-rule -- why not *)\nlet x = 1\n") ] in
  Alcotest.check slist "unknown rule name" [ Lint.Rules.r_bad_waiver ] (rules_of r);
  let r = run [ ("lib/x.ml", "(* lint: allow physical-equality *)\nlet x = 1\n") ] in
  Alcotest.check slist "missing reason" [ Lint.Rules.r_bad_waiver ] (rules_of r)

let test_waiver_scope_is_two_lines () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|(* lint: allow physical-equality -- only covers the next line *)
let near a b = a == b
let far a b = a == b
|}
        );
      ]
  in
  Alcotest.check slist "third line not covered" [ Lint.Rules.r_physeq ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check int) "finding is the far site" 3 f.Lint.Rules.line

(* ---- report shapes --------------------------------------------------------- *)

let test_json_shape () =
  let r = run [ ("lib/x.ml", "let same a b = a == b\n") ] in
  let json = Lint.Report.to_json r in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "version tag" true (has "\"version\":1");
  Alcotest.(check bool) "rule name" true (has "\"physical-equality\"");
  Alcotest.(check bool) "file name" true (has "\"lib/x.ml\"")

(* ---- the real tree --------------------------------------------------------- *)

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_real_tree_clean () =
  match find_root () with
  | None -> Alcotest.fail "cannot locate dune-project above the test cwd"
  | Some root ->
    let baseline = Filename.concat root "ci/smoke-counters.txt" in
    let r = Lint.Engine.run ~baseline ~root ~dirs:[ "lib" ] () in
    List.iter
      (fun (f : Lint.Rules.finding) ->
        Printf.eprintf "lint: %s:%d [%s] %s\n" f.file f.line f.rule f.message)
      r.findings;
    Alcotest.(check int) "zero findings on lib/" 0 (List.length r.findings);
    Alcotest.(check bool) "scanned a real tree" true (r.files_scanned > 50);
    Alcotest.(check int) "no stale waivers" r.waivers_total r.waivers_used

let suite =
  [
    Alcotest.test_case "R1 fires on bare Hashtbl.iter" `Quick test_r1_fires;
    Alcotest.test_case "R1 sorted in same expression" `Quick test_r1_sorted_same_expression;
    Alcotest.test_case "R1 sort a statement later still fires" `Quick
      test_r1_sort_next_statement_still_fires;
    Alcotest.test_case "R1 pipeline sort" `Quick test_r1_pipeline_sort_ok;
    Alcotest.test_case "R1 waiver" `Quick test_r1_waiver;
    Alcotest.test_case "R2 fires on ambient sources" `Quick test_r2_fires;
    Alcotest.test_case "R2 allows seeded Random.State" `Quick test_r2_seeded_state_ok;
    Alcotest.test_case "R5 fires and waives" `Quick test_r5_fires_and_waives;
    Alcotest.test_case "R5 ignores strings and chars" `Quick test_r5_not_confused_by_strings;
    Alcotest.test_case "R3 unbalanced span" `Quick test_r3_unbalanced;
    Alcotest.test_case "R3 pairs across files" `Quick test_r3_paired_across_files;
    Alcotest.test_case "R3 unresolved kind" `Quick test_r3_unresolved_kind;
    Alcotest.test_case "R3 helper segment fallback" `Quick test_r3_helper_segment_fallback;
    Alcotest.test_case "R4 name grammar" `Quick test_r4_grammar;
    Alcotest.test_case "R4 series name prefix" `Quick test_r4_series_prefix;
    Alcotest.test_case "R4 baseline coverage" `Quick test_r4_baseline_coverage;
    Alcotest.test_case "R4 meta.bytes grammar" `Quick test_r4_meta_bytes_grammar;
    Alcotest.test_case "glob matcher" `Quick test_glob;
    Alcotest.test_case "unused waiver reported" `Quick test_unused_waiver;
    Alcotest.test_case "bad waiver reported" `Quick test_bad_waiver;
    Alcotest.test_case "waiver covers two lines only" `Quick test_waiver_scope_is_two_lines;
    Alcotest.test_case "JSON report shape" `Quick test_json_shape;
    Alcotest.test_case "real lib/ tree is clean" `Quick test_real_tree_clean;
  ]
