(* Tests for the static analyzer: each rule fires on a minimal fixture, is
   silenced by a waiver, the checked-in [test/lint_fixtures/] examples (the
   same sources [saturn-lint --explain] prints) fire and stop firing as
   advertised, and the whole linter reports zero findings on the real
   [lib/]+[bin/] tree (the invariant CI's lint job enforces). *)

let run ?baseline ?layers ?dune_files ?use_sources sources =
  Lint.Engine.run_sources ?baseline ?layers ?dune_files ?use_sources sources

let rules_of (r : Lint.Report.t) = List.map (fun f -> f.Lint.Rules.rule) r.findings
let has_rule rule r = List.mem rule (rules_of r)
let count_rule rule r = List.length (List.filter (( = ) rule) (rules_of r))
let slist = Alcotest.(list string)

(* ---- R1: unordered-iteration -------------------------------------------- *)

let test_r1_fires () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let keys tbl =
  let out = ref [] in
  Hashtbl.iter (fun k _ -> out := k :: !out) tbl;
  !out
|}
        );
      ]
  in
  Alcotest.check slist "one R1 finding" [ Lint.Rules.r_unordered ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check int) "on the iter line" 3 f.Lint.Rules.line

let test_r1_sorted_same_expression () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let pairs tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
|}
        );
      ]
  in
  Alcotest.check slist "sort in the same expression silences R1" [] (rules_of r)

let test_r1_binding_sorted_later_ok () =
  (* the def-use classifier follows the binding: a fold whose result is
     only ever read through List.sort is order-safe even when the sort
     lives a statement away *)
  let r =
    run
      [
        ( "lib/x.ml",
          {|let keys tbl =
  let l = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort compare l
|}
        );
      ]
  in
  Alcotest.check slist "sorted-before-read binding is safe" [] (rules_of r)

let test_r1_binding_read_unsorted_fires () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let first tbl =
  let l = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.hd l
|}
        );
      ]
  in
  Alcotest.(check bool) "unsorted read of the binding fires" true
    (has_rule Lint.Rules.r_unordered r)

let test_r1_commutative_fold_ok () =
  let r =
    run
      [
        ("lib/x.ml", "let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0\n");
      ]
  in
  Alcotest.check slist "commutative reduction needs no waiver" [] (rules_of r)

let test_r1_noncommutative_fold_fires () =
  (* string concatenation depends on visit order: the commutative-fold
     classifier must not excuse it *)
  let r =
    run
      [
        ("lib/x.ml", "let join tbl = Hashtbl.fold (fun _ v acc -> acc ^ v) tbl \"\"\n");
      ]
  in
  Alcotest.check slist "order-dependent fold fires" [ Lint.Rules.r_unordered ] (rules_of r)

let test_r1_pipeline_sort_ok () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let pairs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
|}
        );
      ]
  in
  Alcotest.check slist "|> List.sort counts as the same expression" [] (rules_of r)

let test_r1_waiver () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let join tbl =
  (* lint: allow unordered-iteration -- all values are identical by construction *)
  Hashtbl.fold (fun _ v acc -> acc ^ v) tbl ""
|}
        );
      ]
  in
  Alcotest.check slist "waiver silences R1" [] (rules_of r);
  Alcotest.(check int) "waiver counted as used" 1 r.waivers_used

(* ---- R2: ambient-nondeterminism ------------------------------------------ *)

let test_r2_fires () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let now () = Unix.gettimeofday ()
let pick n = Random.int n
let wire v = Marshal.to_string v []
let h x = Hashtbl.hash x
|}
        );
      ]
  in
  Alcotest.(check int) "four ambient sites" 4 (count_rule Lint.Rules.r_ambient r)

let test_r2_seeded_state_ok () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let pick st n = Random.State.int st n
let mk seed = Random.State.make [| seed |]
|}
        );
      ]
  in
  Alcotest.check slist "seeded Random.State is allowed" [] (rules_of r)

(* ---- R5: physical-equality ------------------------------------------------ *)

let test_r5_fires_and_waives () =
  let r = run [ ("lib/x.ml", "let same a b = a == b\n") ] in
  Alcotest.check slist "R5 fires on ==" [ Lint.Rules.r_physeq ] (rules_of r);
  let r =
    run
      [
        ( "lib/x.ml",
          {|(* lint: allow physical-equality -- intentional identity check *)
let same a b = a == b
|}
        );
      ]
  in
  Alcotest.check slist "waived" [] (rules_of r)

let test_r5_not_confused_by_strings () =
  let r = run [ ("lib/x.ml", "let s = \"a == b\"\nlet c = '='\n") ] in
  Alcotest.check slist "== inside a string literal is not a finding" [] (rules_of r)

(* ---- R3: span-pairing ----------------------------------------------------- *)

let test_r3_unbalanced () =
  let r =
    run
      [
        ("lib/a.ml", "let f tr ~at = Sim.Span.begin_ tr ~at Sim.Span.Sk_flush\n");
      ]
  in
  Alcotest.check slist "begin without end" [ Lint.Rules.r_span ] (rules_of r)

let test_r3_paired_across_files () =
  let r =
    run
      [
        ("lib/a.ml", "let f tr ~at = Sim.Span.begin_ tr ~at Sim.Span.Sk_flush\n");
        ("lib/b.ml", "let g tr ~at = Sim.Span.end_ tr ~at Sim.Span.Sk_flush\n");
      ]
  in
  Alcotest.check slist "matching end in another file pairs up" [] (rules_of r)

let test_r3_unresolved_kind () =
  let r =
    run [ ("lib/a.ml", "let f tr ~at kind = Sim.Span.begin_ tr ~at kind\n") ] in
  Alcotest.check slist "kind not statically resolvable" [ Lint.Rules.r_span ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check bool) "message says unresolvable" true
    (String.length f.message > 0
    && String.sub f.message 0 14 = "cannot resolve")

let test_r3_helper_segment_fallback () =
  (* the Sk_* constructor may sit a statement away when a helper binds the
     call first (Proxy.span_label does this) *)
  let r =
    run
      [
        ( "lib/a.ml",
          {|let span_do tr ~at =
  let go = Sim.Span.begin_ tr ~at in
  go Sim.Span.Sk_flush
let close tr ~at = Sim.Span.end_ tr ~at Sim.Span.Sk_flush
|}
        );
      ]
  in
  Alcotest.check slist "enclosing-segment fallback resolves the kind" [] (rules_of r)

(* ---- R4: counter-name-grammar --------------------------------------------- *)

let test_r4_grammar () =
  let r =
    run [ ("lib/a.ml", "let c reg = Stats.Registry.counter reg \"Bad Name.x\"\n") ] in
  Alcotest.check slist "bad characters" [ Lint.Rules.r_counter ] (rules_of r);
  let r = run [ ("lib/a.ml", "let c reg = Stats.Registry.counter reg \"plain\"\n") ] in
  Alcotest.check slist "undotted name" [ Lint.Rules.r_counter ] (rules_of r);
  let r =
    run [ ("lib/a.ml", "let c reg = Stats.Registry.counter reg \"family.metric\"\n") ] in
  Alcotest.check slist "conforming name" [] (rules_of r)

(* Series registration sites share R4's grammar, plus the "series." prefix
   the runtime enforces *)
let test_r4_series_prefix () =
  let r =
    run [ ("lib/a.ml", "let c sr = Stats.Series.counter sr \"queue.depth\"\n") ] in
  Alcotest.check slist "missing series. prefix" [ Lint.Rules.r_counter ] (rules_of r);
  let r =
    run
      [ ("lib/a.ml",
         "let g sr dc = Stats.Series.sample sr (Printf.sprintf \"series.pending.dc%d\" dc)\n") ]
  in
  Alcotest.check slist "prefixed sprintf shape passes" [] (rules_of r);
  let r = run [ ("lib/a.ml", "let h sr = Stats.Series.hist sr \"series.vis ms\"\n") ] in
  Alcotest.check slist "grammar still applies to series names" [ Lint.Rules.r_counter ]
    (rules_of r)

let test_r4_baseline_coverage () =
  let sources =
    [
      ( "lib/a.ml",
        {|let c reg k = Stats.Registry.counter reg ("span." ^ k ^ ".us")
let d reg dc = Stats.Registry.counter reg (Printf.sprintf "dc%d.updates_originated" dc)
|}
      );
    ]
  in
  let covered = "# comment line\nspan.label_walk.us\ndc0.updates_originated 12\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", covered) sources in
  Alcotest.check slist "every baseline name covered by a glob" [] (rules_of r);
  let stale = "span.label_walk.us\nservice.requests\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", stale) sources in
  Alcotest.check slist "uncovered baseline name reported" [ Lint.Rules.r_counter ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check int) "at the baseline line" 2 f.Lint.Rules.line

let test_r4_meta_bytes_grammar () =
  (* the Meta_bytes registration shape: per-system counters built with a
     sprintf literal must glob to meta.bytes.*.<metric> and cover the
     smoke baseline's per-system names *)
  let sources =
    [
      ( "lib/a.ml",
        {|let c reg system = Stats.Registry.counter reg (Printf.sprintf "meta.bytes.%s.attached" system)
let h reg system =
  Stats.Registry.histogram reg (Printf.sprintf "meta.bytes.%s.per_op" system) ~lo:0. ~hi:1. ~buckets:2
|}
      );
    ]
  in
  let covered = "meta.bytes.saturn.attached 17\nmeta.bytes.okapi.per_op 3\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", covered) sources in
  Alcotest.check slist "meta.bytes baseline names covered" [] (rules_of r);
  let stale = "meta.bytes.saturn.heartbeat 12\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", stale) sources in
  Alcotest.check slist "unregistered meta.bytes metric reported" [ Lint.Rules.r_counter ]
    (rules_of r)

let test_r4_blame_family () =
  (* the blame.* family: scalar aggregates registered with plain literals,
     per-part totals with a sprintf literal that must glob to
     blame.part.*.us and cover the smoke baseline's per-part names *)
  let sources =
    [
      ( "lib/a.ml",
        {|let j reg = Stats.Registry.counter reg "blame.journeys"
let g reg = Stats.Registry.counter reg "blame.gap.us"
let p reg name = Stats.Registry.counter reg (Printf.sprintf "blame.part.%s.us" name)
|}
      );
    ]
  in
  let covered =
    "blame.journeys 7811\nblame.gap.us 11374413\nblame.part.sink_hold.us 3823191\n\
     blame.part.transit_excess.us 0\n"
  in
  let r = run ~baseline:("ci/smoke-counters.txt", covered) sources in
  Alcotest.check slist "blame baseline names covered" [] (rules_of r);
  let stale = "blame.part.sink_hold.us 3823191\nblame.tail.us 12\n" in
  let r = run ~baseline:("ci/smoke-counters.txt", stale) sources in
  Alcotest.check slist "unregistered blame metric reported" [ Lint.Rules.r_counter ] (rules_of r)

let test_glob () =
  let m p s = Lint.Rules.matches ~pattern:p s in
  Alcotest.(check bool) "star spans" true (m "span.*.us" "span.label_walk.us");
  Alcotest.(check bool) "star can be empty" true (m "dc*.x" "dc.x");
  Alcotest.(check bool) "no match" false (m "span.*.us" "proxy.label_walk.us");
  Alcotest.(check bool) "literal" true (m "a.b" "a.b");
  Alcotest.(check bool) "suffix anchored" false (m "a.*" "b.a.c")

(* ---- R6: nondeterminism-taint --------------------------------------------- *)

let test_r6_chain_reaches_sink () =
  (* the PR 8 shape R2 could not see: an ambient source two let-bindings
     away from the probe trace *)
  let r =
    run
      [
        ( "lib/x.ml",
          {|let stamp probe ~at =
  let t0 = Unix.gettimeofday () in
  let skew = t0 *. 1e6 in
  Sim.Probe.custom probe ~at skew
|}
        );
      ]
  in
  Alcotest.(check int) "one taint finding" 1 (count_rule Lint.Rules.r_taint r);
  let f =
    List.find (fun (f : Lint.Rules.finding) -> f.rule = Lint.Rules.r_taint) r.findings
  in
  Alcotest.(check int) "reported at the sink line" 4 f.Lint.Rules.line

let test_r6_fold_taint_reaches_registry () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let record reg tbl =
  let ks = Hashtbl.fold (fun k _ a -> k :: a) tbl [] in
  Stats.Registry.set reg (List.length ks)
|}
        );
      ]
  in
  Alcotest.(check bool) "unproven fold taints its binding into the sink" true
    (has_rule Lint.Rules.r_taint r)

let test_r6_sort_kills_taint () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let record reg tbl =
  let ks = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) tbl []) in
  Stats.Registry.set reg (List.length ks)
|}
        );
      ]
  in
  Alcotest.check slist "a canonicalizing sort ends the taint chain" [] (rules_of r)

let test_r6_no_sink_no_taint_finding () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|let skew () =
  let t0 = Unix.gettimeofday () in
  t0 *. 1e6
|}
        );
      ]
  in
  (* the ambient site itself is still an R2 finding, but with no sink in
     reach there is nothing for the taint pass to add *)
  Alcotest.(check int) "no taint finding" 0 (count_rule Lint.Rules.r_taint r);
  Alcotest.(check int) "source still flagged by R2" 1 (count_rule Lint.Rules.r_ambient r)

(* ---- R7: layer-boundary ---------------------------------------------------- *)

let test_layers =
  ( "ci/layers.txt",
    {|layer core = lib/core
layer sim = lib/simulator
deny core -> Unix.
deny sim -> layer:core
|} )

let test_dunes =
  [
    ("lib/core/dune", "(library (name saturn))");
    ("lib/simulator/dune", "(library (name sim))");
  ]

let test_r7_prefix_deny () =
  let r =
    run ~layers:test_layers ~dune_files:test_dunes
      [ ("lib/core/x.ml", "let home () = Unix.getenv \"HOME\"\n") ]
  in
  Alcotest.check slist "core may not reach Unix." [ Lint.Rules.r_layer ] (rules_of r)

let test_r7_layer_deny_both_edges () =
  (* sim reaching back into core is caught twice: the identifier chain in
     the source and the dune (libraries …) edge *)
  let r =
    run ~layers:test_layers
      ~dune_files:
        [
          ("lib/core/dune", "(library (name saturn))");
          ("lib/simulator/dune", "(library (name sim) (libraries saturn))");
        ]
      [ ("lib/simulator/s.ml", "let route l = Saturn.Label.compare l l\n") ]
  in
  Alcotest.(check int) "ident edge + dune edge" 2 (count_rule Lint.Rules.r_layer r)

let test_r7_alias_cannot_hide_edge () =
  let r =
    run ~layers:test_layers ~dune_files:test_dunes
      [
        ( "lib/simulator/s.ml",
          "module L = Saturn.Label\n\nlet route l = L.compare l l\n" );
      ]
  in
  Alcotest.(check bool) "module alias still counts as the edge" true
    (has_rule Lint.Rules.r_layer r)

let test_r7_allowed_direction_clean () =
  let r =
    run ~layers:test_layers ~dune_files:test_dunes
      [ ("lib/core/x.ml", "let at clock = Sim.Clock.now clock\n") ]
  in
  Alcotest.check slist "core -> sim has no deny edge" [] (rules_of r)

let test_r7_waiver_names_plan () =
  let r =
    run ~layers:test_layers ~dune_files:test_dunes
      [
        ( "lib/core/x.ml",
          {|(* lint: allow layer-boundary -- live-mode transport lands in PR 12 *)
let home () = Unix.getenv "HOME"
|}
        );
      ]
  in
  Alcotest.check slist "waiver with the plan silences R7" [] (rules_of r);
  Alcotest.(check int) "waiver used" 1 r.waivers_used

(* ---- R8: protocol-invariant ------------------------------------------------ *)

let test_r8_ship_missing_everything () =
  let r = run [ ("lib/core/x.ml", "let flush t links = Transport.ship links t.buf\n") ] in
  Alcotest.(check int) "size_bytes + Meta_bytes + epoch all missing" 3
    (count_rule Lint.Rules.r_proto r)

let test_r8_ship_fully_threaded () =
  let r =
    run
      [
        ( "lib/core/x.ml",
          {|let flush t links ~epoch =
  Stats.Meta_bytes.record t.meta ~bytes:(bytes t.buf);
  Transport.ship links t.buf ~size_bytes:(bytes t.buf) ~epoch
|}
        );
      ]
  in
  Alcotest.check slist "threaded ship site is clean" [] (rules_of r)

let test_r8_epoch_only_required_in_core () =
  let r =
    run
      [
        ( "lib/harness/x.ml",
          {|let flush t links =
  Stats.Meta_bytes.record t.meta ~bytes:64;
  Transport.ship links t.buf ~size_bytes:64
|}
        );
      ]
  in
  Alcotest.check slist "outside lib/core no epoch is demanded" [] (rules_of r)

let test_r8_probe_constructor_needs_consumer () =
  let r =
    run
      [
        ("lib/simulator/probe.mli", "type event = Ping | Pong of int\n");
        ("lib/faults/checker.ml", "let score = function Ping -> 1 | _ -> 0\n");
      ]
  in
  Alcotest.(check int) "unconsumed constructor flagged" 1 (count_rule Lint.Rules.r_proto r);
  let f = List.hd r.findings in
  Alcotest.(check bool) "names the constructor" true
    (Lint.Rules.matches ~pattern:"*Pong*" f.Lint.Rules.message)

(* ---- R9: dead-export ------------------------------------------------------- *)

let dead_export_sources =
  [
    ("lib/m.mli", "val used : int -> int\nval helper : int -> int\n");
    ("lib/m.ml", "let used x = x + 1\nlet helper x = x * 2\n");
    ("lib/caller.ml", "let y = M.used 1\n");
  ]

let test_r9_dead_mli_val () =
  let r = run dead_export_sources in
  Alcotest.(check int) "one dead export" 1 (count_rule Lint.Rules.r_dead r);
  let f = List.hd r.findings in
  Alcotest.(check string) "in the interface" "lib/m.mli" f.Lint.Rules.file;
  Alcotest.(check int) "the unreferenced val" 2 f.Lint.Rules.line

let test_r9_use_dir_keeps_alive () =
  let r =
    run ~use_sources:[ ("test/t.ml", "let _ = M.helper 2\n") ] dead_export_sources in
  Alcotest.check slist "a test-tree use keeps the export" [] (rules_of r)

let test_r9_alias_use_keeps_alive () =
  let r =
    run
      [
        ("lib/m.mli", "val helper : int -> int\n");
        ("lib/m.ml", "let helper x = x * 2\n");
        ("lib/caller.ml", "module Q = M\n\nlet y = Q.helper 1\n");
      ]
  in
  Alcotest.check slist "use through a module alias counts" [] (rules_of r)

let test_r9_submodule_val_path () =
  (* a record type before [module Json : sig] once made the submodule
     frame pop early and mis-path the val — regression guard *)
  let sources caller =
    [
      ( "lib/m.mli",
        {|type r = { a : int; b : string; }

module Json : sig
  val parse : string -> int
end
|} );
      ("lib/m.ml", "type r = { a : int; b : string }\n\nmodule Json = struct\n  let parse s = String.length s\nend\n");
      ("lib/caller.ml", caller);
    ]
  in
  let r = run (sources "let n = M.Json.parse \"x\"\n") in
  Alcotest.check slist "dotted submodule use is a reference" [] (rules_of r);
  let r = run (sources "let n = M.Json.member \"x\"\n") in
  Alcotest.(check int) "wrong member does not count" 1 (count_rule Lint.Rules.r_dead r)

let test_r9_hidden_unused_ml_value () =
  let r =
    run
      [
        ("lib/m.mli", "val used : int -> int\n");
        ("lib/m.ml", "let used x = x + 1\n\nlet orphan = 2\n");
        ("lib/caller.ml", "let y = M.used 1\n");
      ]
  in
  Alcotest.(check int) "hidden unused value flagged" 1 (count_rule Lint.Rules.r_dead r);
  let f = List.hd r.findings in
  Alcotest.(check string) "in the implementation" "lib/m.ml" f.Lint.Rules.file

let test_r9_hidden_but_used_internally_ok () =
  let r =
    run
      [
        ("lib/m.mli", "val used : int -> int\n");
        ("lib/m.ml", "let step = 3\n\nlet used x = x + step\n");
        ("lib/caller.ml", "let y = M.used 1\n");
      ]
  in
  Alcotest.check slist "internal use of a hidden value is fine" [] (rules_of r)

(* ---- waiver hygiene -------------------------------------------------------- *)

let test_unused_waiver () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|(* lint: allow physical-equality -- nothing below actually uses it *)
let same a b = a = b
|}
        );
      ]
  in
  Alcotest.check slist "stale waiver reported" [ Lint.Rules.r_unused_waiver ] (rules_of r);
  Alcotest.(check int) "not counted as used" 0 r.waivers_used

let test_bad_waiver () =
  let r =
    run [ ("lib/x.ml", "(* lint: allow no-such-rule -- why not *)\nlet x = 1\n") ] in
  Alcotest.check slist "unknown rule name" [ Lint.Rules.r_bad_waiver ] (rules_of r);
  let r = run [ ("lib/x.ml", "(* lint: allow physical-equality *)\nlet x = 1\n") ] in
  Alcotest.check slist "missing reason" [ Lint.Rules.r_bad_waiver ] (rules_of r)

let test_waiver_scope_is_two_lines () =
  let r =
    run
      [
        ( "lib/x.ml",
          {|(* lint: allow physical-equality -- only covers the next line *)
let near a b = a == b
let far a b = a == b
|}
        );
      ]
  in
  Alcotest.check slist "third line not covered" [ Lint.Rules.r_physeq ] (rules_of r);
  let f = List.hd r.findings in
  Alcotest.(check int) "finding is the far site" 3 f.Lint.Rules.line

let waived_source =
  {|(* lint: allow physical-equality -- intentional identity check *)
let same a b = a == b
|}

let test_waiver_ratchet () =
  let r = run [ ("lib/x.ml", waived_source) ] in
  let inv = Lint.Report.to_waivers_txt r in
  (match Lint.Report.check_waivers r ~inventory:inv with
  | Ok () -> ()
  | Error es -> Alcotest.failf "own inventory rejected: %s" (String.concat "; " es));
  (* a waiver the inventory does not list is a ratchet error: adding one
     requires a deliberate ci/regen.sh --lint-baseline refresh *)
  (match Lint.Report.check_waivers r ~inventory:"" with
  | Ok () -> Alcotest.fail "new waiver slipped past the ratchet"
  | Error _ -> ());
  (* an inventory line whose waiver is gone must also fail, so deletions
     shrink the checked-in inventory in the same commit *)
  let gone = run [ ("lib/x.ml", "let same a b = a = b\n") ] in
  match Lint.Report.check_waivers gone ~inventory:inv with
  | Ok () -> Alcotest.fail "stale inventory line accepted"
  | Error _ -> ()

(* ---- report shapes --------------------------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_json_shape () =
  let r = run [ ("lib/x.ml", "let same a b = a == b\n") ] in
  let json = Lint.Report.to_json r in
  Alcotest.(check bool) "version tag" true (contains json "\"version\":2");
  Alcotest.(check bool) "per-rule counts" true (contains json "\"by_rule\"");
  Alcotest.(check bool) "rule name" true (contains json "\"physical-equality\"");
  Alcotest.(check bool) "file name" true (contains json "\"lib/x.ml\"")

let test_by_rule_counts () =
  let r =
    run
      [
        ("lib/x.ml", "let a x y = x == y\n\nlet b x y = x != y\n");
        ("lib/y.ml", "let now () = Unix.gettimeofday ()\n");
      ]
  in
  let by = Lint.Report.by_rule r in
  Alcotest.(check int) "all rules listed" (List.length Lint.Rules.all_rules) (List.length by);
  Alcotest.(check (option int)) "two physeq" (Some 2)
    (List.assoc_opt Lint.Rules.r_physeq by);
  Alcotest.(check (option int)) "one ambient" (Some 1)
    (List.assoc_opt Lint.Rules.r_ambient by);
  Alcotest.(check (option int)) "zeros included" (Some 0)
    (List.assoc_opt Lint.Rules.r_span by)

let test_table_and_summary () =
  let r = run [ ("lib/x.ml", "let same a b = a == b\n") ] in
  let table = Lint.Report.to_table r in
  Alcotest.(check bool) "table names the file" true (contains table "lib/x.ml");
  let md = Lint.Report.to_summary_md r in
  Alcotest.(check bool) "summary has the rule" true (contains md "physical-equality");
  Alcotest.(check bool) "summary has the site" true (contains md "lib/x.ml")

(* Property: a waived finding never reaches the JSON report, whatever mix
   of waived and unwaived sites a file holds. Each generated file is a
   run of [let fN a b = a == b] lines, each independently waived or not. *)
let prop_waived_never_in_json =
  QCheck.Test.make ~count:100 ~name:"waived findings never reach the JSON report"
    QCheck.(list_of_size Gen.(1 -- 8) bool)
    (fun waived ->
      let buf = Buffer.create 256 in
      let line = ref 1 in
      let waived_lines = ref [] in
      List.iteri
        (fun i w ->
          if w then begin
            Buffer.add_string buf "(* lint: allow physical-equality -- generated *)\n";
            incr line;
            waived_lines := !line :: !waived_lines
          end;
          Buffer.add_string buf (Printf.sprintf "let f%d a b = a == b\n" i);
          incr line)
        waived;
      let r = run [ ("lib/x.ml", Buffer.contents buf) ] in
      let json = Lint.Report.to_json r in
      let n_waived = List.length (List.filter (fun w -> w) waived) in
      let n_live = List.length waived - n_waived in
      List.length r.findings = n_live
      && r.waivers_used = n_waived
      && List.assoc_opt Lint.Rules.r_physeq (Lint.Report.by_rule r) = Some n_live
      && List.for_all
           (fun (f : Lint.Rules.finding) -> not (List.mem f.line !waived_lines))
           r.findings
      && contains json
           (Printf.sprintf {|"waivers":{"total":%d,"used":%d}|} n_waived n_waived))

(* ---- the checked-in fixtures ----------------------------------------------- *)

(* [test/lint_fixtures/<rule>.ml] is both documentation (--explain prints
   it) and executable spec: the --bad-- section must fire the rule, the
   --good-- section must not. [(* @file path *)] directives split a
   section into a virtual tree for the path-sensitive rules. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_fixture src =
  let bad = ref [] and good = ref [] in
  let section = ref `Header in
  let file = ref "lib/fixture.ml" in
  let buf = Buffer.create 256 in
  let flush_into dst =
    if Buffer.length buf > 0 then begin
      dst := (!file, Buffer.contents buf) :: !dst;
      Buffer.clear buf
    end
  in
  let flush () =
    match !section with `Header -> Buffer.clear buf | `Bad -> flush_into bad | `Good -> flush_into good
  in
  List.iter
    (fun line ->
      let t = String.trim line in
      if t = "(* --bad-- *)" then begin
        flush ();
        section := `Bad;
        file := "lib/fixture.ml"
      end
      else if t = "(* --good-- *)" then begin
        flush ();
        section := `Good;
        file := "lib/fixture.ml"
      end
      else if String.length t > 12 && String.sub t 0 9 = "(* @file " then begin
        flush ();
        file := String.trim (String.sub t 9 (String.length t - 9 - 2))
      end
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      end)
    (String.split_on_char '\n' src);
  flush ();
  (List.rev !bad, List.rev !good)

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let fixture_layers root =
  let path = Filename.concat root "ci/layers.txt" in
  if Sys.file_exists path then Some ("ci/layers.txt", read_file path) else None

let test_fixture rule () =
  let root =
    match find_root () with
    | Some r -> r
    | None -> Alcotest.fail "cannot locate dune-project above the test cwd"
  in
  let path = Filename.concat root (Filename.concat "test/lint_fixtures" (rule ^ ".ml")) in
  let bad, good = parse_fixture (read_file path) in
  Alcotest.(check bool) "fixture has a bad section" true (bad <> []);
  Alcotest.(check bool) "fixture has a good section" true (good <> []);
  let layers = fixture_layers root in
  let run_section srcs = Lint.Engine.run_sources ?layers srcs in
  let r = run_section bad in
  Alcotest.(check bool)
    (Printf.sprintf "--bad-- fires %s" rule)
    true (has_rule rule r);
  let r = run_section good in
  Alcotest.(check int)
    (Printf.sprintf "--good-- is clean of %s" rule)
    0 (count_rule rule r)

(* ---- the real tree --------------------------------------------------------- *)

let test_real_tree_clean () =
  match find_root () with
  | None -> Alcotest.fail "cannot locate dune-project above the test cwd"
  | Some root ->
    let r =
      Lint.Engine.run ~use_dirs:[ "test"; "bench"; "examples" ] ~root
        ~dirs:[ "lib"; "bin" ] ()
    in
    List.iter
      (fun (f : Lint.Rules.finding) ->
        Printf.eprintf "lint: %s:%d [%s] %s\n" f.file f.line f.rule f.message)
      r.findings;
    Alcotest.(check int) "zero findings on lib/ + bin/" 0 (List.length r.findings);
    Alcotest.(check bool) "scanned a real tree" true (r.files_scanned > 50);
    Alcotest.(check int) "no stale waivers" r.waivers_total r.waivers_used;
    (* one facts probe through the single-file entry point the CLI shares *)
    let facts, _, bad = Lint.Engine.scan_source ~file:"lib/x.ml" "let a b c = b == c\n" in
    Alcotest.(check int) "scan_source sees the site" 1 (List.length facts.Lint.Rules.ff_findings);
    Alcotest.(check int) "no bad waivers" 0 (List.length bad)

let suite =
  [
    Alcotest.test_case "R1 fires on bare Hashtbl.iter" `Quick test_r1_fires;
    Alcotest.test_case "R1 sorted in same expression" `Quick test_r1_sorted_same_expression;
    Alcotest.test_case "R1 binding sorted a statement later is safe" `Quick
      test_r1_binding_sorted_later_ok;
    Alcotest.test_case "R1 binding read unsorted still fires" `Quick
      test_r1_binding_read_unsorted_fires;
    Alcotest.test_case "R1 commutative fold is safe" `Quick test_r1_commutative_fold_ok;
    Alcotest.test_case "R1 non-commutative fold fires" `Quick test_r1_noncommutative_fold_fires;
    Alcotest.test_case "R1 pipeline sort" `Quick test_r1_pipeline_sort_ok;
    Alcotest.test_case "R1 waiver" `Quick test_r1_waiver;
    Alcotest.test_case "R2 fires on ambient sources" `Quick test_r2_fires;
    Alcotest.test_case "R2 allows seeded Random.State" `Quick test_r2_seeded_state_ok;
    Alcotest.test_case "R5 fires and waives" `Quick test_r5_fires_and_waives;
    Alcotest.test_case "R5 ignores strings and chars" `Quick test_r5_not_confused_by_strings;
    Alcotest.test_case "R3 unbalanced span" `Quick test_r3_unbalanced;
    Alcotest.test_case "R3 pairs across files" `Quick test_r3_paired_across_files;
    Alcotest.test_case "R3 unresolved kind" `Quick test_r3_unresolved_kind;
    Alcotest.test_case "R3 helper segment fallback" `Quick test_r3_helper_segment_fallback;
    Alcotest.test_case "R4 name grammar" `Quick test_r4_grammar;
    Alcotest.test_case "R4 series name prefix" `Quick test_r4_series_prefix;
    Alcotest.test_case "R4 baseline coverage" `Quick test_r4_baseline_coverage;
    Alcotest.test_case "R4 meta.bytes grammar" `Quick test_r4_meta_bytes_grammar;
    Alcotest.test_case "R4 blame family" `Quick test_r4_blame_family;
    Alcotest.test_case "glob matcher" `Quick test_glob;
    Alcotest.test_case "R6 chain reaches sink" `Quick test_r6_chain_reaches_sink;
    Alcotest.test_case "R6 fold taint reaches registry" `Quick
      test_r6_fold_taint_reaches_registry;
    Alcotest.test_case "R6 sort kills taint" `Quick test_r6_sort_kills_taint;
    Alcotest.test_case "R6 no sink, no finding" `Quick test_r6_no_sink_no_taint_finding;
    Alcotest.test_case "R7 prefix deny" `Quick test_r7_prefix_deny;
    Alcotest.test_case "R7 layer deny: ident + dune edges" `Quick
      test_r7_layer_deny_both_edges;
    Alcotest.test_case "R7 alias cannot hide the edge" `Quick test_r7_alias_cannot_hide_edge;
    Alcotest.test_case "R7 allowed direction is clean" `Quick test_r7_allowed_direction_clean;
    Alcotest.test_case "R7 waiver names the plan" `Quick test_r7_waiver_names_plan;
    Alcotest.test_case "R8 ship missing everything" `Quick test_r8_ship_missing_everything;
    Alcotest.test_case "R8 fully threaded ship" `Quick test_r8_ship_fully_threaded;
    Alcotest.test_case "R8 epoch only required in core" `Quick
      test_r8_epoch_only_required_in_core;
    Alcotest.test_case "R8 probe constructor needs consumer" `Quick
      test_r8_probe_constructor_needs_consumer;
    Alcotest.test_case "R9 dead mli val" `Quick test_r9_dead_mli_val;
    Alcotest.test_case "R9 use dir keeps alive" `Quick test_r9_use_dir_keeps_alive;
    Alcotest.test_case "R9 alias use keeps alive" `Quick test_r9_alias_use_keeps_alive;
    Alcotest.test_case "R9 submodule val path" `Quick test_r9_submodule_val_path;
    Alcotest.test_case "R9 hidden unused ml value" `Quick test_r9_hidden_unused_ml_value;
    Alcotest.test_case "R9 hidden but used internally" `Quick
      test_r9_hidden_but_used_internally_ok;
    Alcotest.test_case "unused waiver reported" `Quick test_unused_waiver;
    Alcotest.test_case "bad waiver reported" `Quick test_bad_waiver;
    Alcotest.test_case "waiver covers two lines only" `Quick test_waiver_scope_is_two_lines;
    Alcotest.test_case "waiver ratchet" `Quick test_waiver_ratchet;
    Alcotest.test_case "JSON report shape" `Quick test_json_shape;
    Alcotest.test_case "per-rule counts" `Quick test_by_rule_counts;
    Alcotest.test_case "table and step summary" `Quick test_table_and_summary;
    QCheck_alcotest.to_alcotest prop_waived_never_in_json;
    Alcotest.test_case "fixture: unordered-iteration" `Quick
      (test_fixture "unordered-iteration");
    Alcotest.test_case "fixture: ambient-nondeterminism" `Quick
      (test_fixture "ambient-nondeterminism");
    Alcotest.test_case "fixture: span-pairing" `Quick (test_fixture "span-pairing");
    Alcotest.test_case "fixture: counter-name-grammar" `Quick
      (test_fixture "counter-name-grammar");
    Alcotest.test_case "fixture: physical-equality" `Quick (test_fixture "physical-equality");
    Alcotest.test_case "fixture: nondeterminism-taint" `Quick
      (test_fixture "nondeterminism-taint");
    Alcotest.test_case "fixture: layer-boundary" `Quick (test_fixture "layer-boundary");
    Alcotest.test_case "fixture: protocol-invariant" `Quick
      (test_fixture "protocol-invariant");
    Alcotest.test_case "fixture: dead-export" `Quick (test_fixture "dead-export");
    Alcotest.test_case "real lib/ + bin/ tree is clean" `Quick test_real_tree_clean;
  ]
