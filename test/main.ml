let () =
  Alcotest.run "saturn"
    [
      ("sim", Test_sim.suite);
      ("stats", Test_stats.suite);
      ("series", Test_series.suite);
      ("obs", Test_obs.suite);
      ("spans", Test_spans.suite);
      ("blame", Test_blame.suite);
      ("kvstore", Test_kvstore.suite);
      ("label", Test_label.suite);
      ("tree", Test_tree.suite);
      ("transport", Test_transport.suite);
      ("proxy", Test_proxy.suite);
      ("integration", Test_integration.suite);
      ("system", Test_system.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("scale", Test_scale.suite);
      ("reconfig", Test_reconfig.suite);
      ("consistency", Test_consistency.suite);
      ("harness", Test_harness.suite);
      ("faults", Test_faults.suite);
      ("more", Test_more.suite);
      ("sessions", Test_sessions.suite);
      ("shapes", Test_shapes.suite);
      ("lint", Test_lint.suite);
    ]
