(* Additional coverage: determinism, compaction, the always-on timestamp
   sweep, transport edge cases and small API corners. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- end-to-end determinism -------------------------------------------------- *)

let test_runs_are_deterministic () =
  let run () =
    let setup =
      { Harness.Scenario.default_setup with
        Harness.Scenario.n_dcs = 3;
        n_keys = 40;
        clients_per_dc = 10;
        measure = Sim.Time.of_ms 400;
        warmup = Sim.Time.of_ms 150;
        cooldown = Sim.Time.of_ms 50;
      }
    in
    let o = Harness.Scenario.run Harness.Scenario.Saturn_sys setup in
    (o.Harness.Scenario.ops, Harness.Metrics.visible_count o.Harness.Scenario.metrics,
     o.Harness.Scenario.mean_visibility_ms)
  in
  let a = run () and b = run () in
  if a <> b then Alcotest.fail "identical seeds must give bit-identical results"

(* ---- proxy: timestamp sweep in stream mode ----------------------------------- *)

let test_sweep_rescues_lost_label () =
  (* a payload whose tree label never arrives (lost with a dead serializer)
     is still installed once stable in timestamp order — the §6.1
     availability argument *)
  let engine = Sim.Engine.create () in
  let installed = ref [] in
  let proxy =
    Saturn.Proxy.create engine ~dc:0 ~n_dcs:3
      ~stage_update:(fun _ ~k -> k ())
      ~install_update:(fun p -> installed := p.Saturn.Proxy.label.Saturn.Label.ts :: !installed)
      ~mode:Saturn.Proxy.Stream ()
  in
  let l = Saturn.Label.update ~ts:(Sim.Time.of_ms 10) ~src_dc:1 ~src_gear:0 ~key:1 in
  Saturn.Proxy.on_payload proxy
    { Saturn.Proxy.label = l; value = Kvstore.Value.make ~payload:1 ~size_bytes:2;
      origin_time = Sim.Time.zero; epoch = 0 };
  (* no on_label ever (the label died with its serializer); heartbeats make
     it ts-stable *)
  Saturn.Proxy.on_heartbeat proxy ~src:1 (Sim.Time.of_ms 20);
  Saturn.Proxy.on_heartbeat proxy ~src:2 (Sim.Time.of_ms 20);
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "installed by the sweep" [ Sim.Time.of_ms 10 ] !installed;
  (* a late label arrival is recognized as already applied *)
  Saturn.Proxy.on_label proxy l;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "no duplicate" [ Sim.Time.of_ms 10 ] !installed;
  Alcotest.(check int) "stream drained" 0 (Saturn.Proxy.pending_stream proxy)

let test_proxy_compact () =
  let engine = Sim.Engine.create () in
  let proxy =
    Saturn.Proxy.create engine ~dc:0 ~n_dcs:2
      ~stage_update:(fun _ ~k -> k ())
      ~install_update:(fun _ -> ())
      ()
  in
  let l = Saturn.Label.update ~ts:(Sim.Time.of_ms 5) ~src_dc:1 ~src_gear:0 ~key:1 in
  Saturn.Proxy.on_payload proxy
    { Saturn.Proxy.label = l; value = Kvstore.Value.make ~payload:1 ~size_bytes:2;
      origin_time = Sim.Time.zero; epoch = 0 };
  Saturn.Proxy.on_label proxy l;
  Sim.Engine.run engine;
  Alcotest.(check bool) "applied" true (Saturn.Proxy.label_was_applied proxy l);
  (* a compact below the retention horizon keeps the record *)
  Saturn.Proxy.on_heartbeat proxy ~src:1 (Sim.Time.of_sec 1.);
  Saturn.Proxy.compact proxy;
  Alcotest.(check bool) "retained within the margin" true (Saturn.Proxy.label_was_applied proxy l);
  (* once the source's promise is far past the label, the record is pruned *)
  Saturn.Proxy.on_heartbeat proxy ~src:1 (Sim.Time.of_sec 30.);
  Saturn.Proxy.compact proxy;
  Alcotest.(check bool) "pruned after the horizon" false (Saturn.Proxy.label_was_applied proxy l)

(* ---- chain compaction --------------------------------------------------------- *)

let test_chain_compact_long_run () =
  let engine = Sim.Engine.create () in
  let committed = ref 0 in
  let chain =
    Saturn.Chain.create engine ~replicas:2 ~intra_latency:(Sim.Time.of_us 10)
      ~deliver:(fun _ -> incr committed)
      ()
  in
  for i = 1 to 5_000 do
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_us (i * 30)) (fun () ->
        Saturn.Chain.input chain ~ext_key:(0, i) i ~confirm:(fun () -> ()))
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "all committed" 5_000 !committed;
  (* a retransmission inside the retention window still dedups *)
  Saturn.Chain.input chain ~ext_key:(0, 5_000) 5_000 ~confirm:(fun () -> ());
  Sim.Engine.run engine;
  Alcotest.(check int) "windowed dedup" 5_000 !committed

(* ---- reliable fifo with jittered links ----------------------------------------- *)

let prop_fifo_with_jitter =
  QCheck.Test.make ~name:"reliable fifo over jittered links stays in order" ~count:30
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, n) ->
      let e = Sim.Engine.create () in
      let rng = Sim.Rng.create ~seed in
      let data = Sim.Link.create ~jitter_us:3_000 ~rng e ~latency:(Sim.Time.of_ms 2) () in
      let ack = Sim.Link.create ~jitter_us:3_000 ~rng e ~latency:(Sim.Time.of_ms 2) () in
      let received = ref [] in
      let recv = Saturn.Reliable_fifo.receiver e ~deliver:(fun m -> received := m :: !received) in
      let sender = Saturn.Reliable_fifo.sender e ~resend_period:(Sim.Time.of_ms 40) in
      Saturn.Reliable_fifo.connect sender ~data ~ack recv;
      for i = 1 to n do
        Sim.Engine.schedule e ~delay:(Sim.Time.of_us (i * 200)) (fun () ->
            Saturn.Reliable_fifo.send sender i)
      done;
      Sim.Engine.run ~until:(Sim.Time.of_sec 1.) e;
      Saturn.Reliable_fifo.stop sender;
      Sim.Engine.run e;
      List.rev !received = List.init n (fun i -> i + 1))

(* ---- small API corners ---------------------------------------------------------- *)

let test_link_set_latency () =
  let e = Sim.Engine.create () in
  let l = Sim.Link.create e ~latency:(Sim.Time.of_ms 10) () in
  Alcotest.(check int) "initial" 10_000 (Sim.Time.to_us (Sim.Link.latency l));
  Sim.Link.set_latency l (Sim.Time.of_ms 25);
  let at = ref 0 in
  Sim.Link.send l (fun () -> at := Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "new latency used" 25_000 !at;
  Alcotest.(check int) "counters" 1 (Sim.Link.delivered_count l)

let test_server_backlog () =
  let e = Sim.Engine.create () in
  let s = Sim.Server.create e in
  Alcotest.(check int) "idle backlog" 0 (Sim.Time.to_us (Sim.Server.backlog s));
  Sim.Server.submit s ~cost:(Sim.Time.of_ms 4) (fun () -> ());
  Sim.Server.submit s ~cost:(Sim.Time.of_ms 3) (fun () -> ());
  Alcotest.(check int) "queued backlog" 7_000 (Sim.Time.to_us (Sim.Server.backlog s));
  Alcotest.(check int) "queue length" 2 (Sim.Server.queue_length s);
  Sim.Engine.run e;
  Alcotest.(check int) "drained" 0 (Sim.Time.to_us (Sim.Server.backlog s))

let test_rng_split_independence () =
  let parent = Sim.Rng.create ~seed:5 in
  let a = Sim.Rng.split parent in
  let b = Sim.Rng.split parent in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_sample_misc () =
  let s = Stats.Sample.create () in
  Stats.Sample.add_time s (Sim.Time.of_ms 3);
  Stats.Sample.add s 5.;
  Alcotest.(check (float 1e-9)) "total" 8. (Stats.Sample.total s);
  Alcotest.(check (array (float 1e-9))) "values in insertion order" [| 3.; 5. |]
    (Stats.Sample.values s)

let test_table_csv () =
  let t = Stats.Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  Stats.Table.add_row t [ "plain"; "with,comma" ];
  Stats.Table.add_row t [ "quote\"y"; "z" ];
  let csv = Stats.Table.to_csv t in
  Alcotest.(check string) "escaping" "a,b\nplain,\"with,comma\"\n\"quote\"\"y\",z\n" csv;
  Alcotest.(check string) "cell_pct" "+3.5%" (Stats.Table.cell_pct 3.5);
  Alcotest.(check string) "cell_f" "2.0" (Stats.Table.cell_f 2.)

let test_value_pp_and_label_pp () =
  let v = Kvstore.Value.make ~payload:3 ~size_bytes:9 in
  Alcotest.(check string) "value pp" "v3(9B)" (Format.asprintf "%a" Kvstore.Value.pp v);
  let l = Saturn.Label.update ~ts:(Sim.Time.of_ms 1) ~src_dc:2 ~src_gear:1 ~key:4 in
  let s = Format.asprintf "%a" Saturn.Label.pp l in
  Alcotest.(check bool) "label pp mentions key" true
    (String.length s > 0 && String.contains s '4')

let test_keyspace_nearest_degree_caps () =
  let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
  let rm = Workload.Keyspace.nearest_degree ~topo:Sim.Ec2.topology ~dc_sites ~n_keys:9 ~degree:10 in
  Alcotest.(check (float 1e-9)) "degree capped at n_dcs" 3. (Kvstore.Replica_map.mean_degree rm)

let test_synthetic_full_replication_remote_path () =
  (* under full replication a remote read still exercises the attach path
     at the nearest other datacenter *)
  let dc_sites = Array.of_list (Sim.Ec2.first_n 3) in
  let rm = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys:16 in
  let w =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys = 16; remote_read_ratio = 1.0; read_ratio = 1.0 }
      ~rmap:rm ~topo:Sim.Ec2.topology ~dc_sites
  in
  (match Workload.Synthetic.next w ~dc:1 with
  | Workload.Op.Remote_read { at; _ } ->
    Alcotest.(check int) "nearest other dc of NC is O" 2 at
  | _ -> Alcotest.fail "expected a remote read")

(* saturn peer-mode remote read cycle completes (regression for the
   migration-label deadlock) *)
let test_peer_mode_remote_read_cycle () =
  let engine, system = Helpers.star_system ~peer_mode:true () in
  let c = Helpers.client ~id:0 ~dc:0 in
  let done_ = ref false in
  Saturn.System.attach system c ~dc:0 ~k:(fun () ->
      Saturn.System.update system c ~key:3 ~value:(Helpers.value 1) ~k:(fun () ->
          Saturn.System.migrate system c ~dest_dc:1 ~k:(fun () ->
              Saturn.System.read system c ~key:3 ~k:(fun _ ->
                  Saturn.System.migrate system c ~dest_dc:0 ~k:(fun () -> done_ := true)))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 5.) engine;
  Alcotest.(check bool) "peer-mode remote cycle completes" true !done_

let test_multiple_label_waiters_fire_in_order () =
  let engine = Sim.Engine.create () in
  let proxy =
    Saturn.Proxy.create engine ~dc:0 ~n_dcs:2
      ~stage_update:(fun _ ~k -> k ())
      ~install_update:(fun _ -> ())
      ()
  in
  let m = Saturn.Label.migration ~ts:(Sim.Time.of_ms 5) ~src_dc:1 ~src_gear:0 ~dest_dc:0 in
  let fired = ref [] in
  Saturn.Proxy.wait_for_label proxy m (fun () -> fired := 1 :: !fired);
  Saturn.Proxy.wait_for_label proxy m (fun () -> fired := 2 :: !fired);
  Saturn.Proxy.wait_for_label proxy m (fun () -> fired := 3 :: !fired);
  Saturn.Proxy.on_label proxy m;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "registration order" [ 1; 2; 3 ] (List.rev !fired)

let test_engine_step_api () =
  let e = Sim.Engine.create () in
  Alcotest.(check bool) "empty queue" false (Sim.Engine.step e);
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 1) (fun () -> ());
  Sim.Engine.schedule e ~delay:(Sim.Time.of_ms 2) (fun () -> ());
  Alcotest.(check int) "pending" 2 (Sim.Engine.pending e);
  Alcotest.(check bool) "first step" true (Sim.Engine.step e);
  Alcotest.(check int) "one left" 1 (Sim.Engine.pending e);
  Alcotest.(check int) "clock at first event" 1_000 (Sim.Engine.now e)

let test_attach_semantics_matrix () =
  (* Algorithm 1's three cases, exercised directly against a datacenter *)
  let engine, system = Helpers.star_system () in
  let dcx = Saturn.System.datacenter system 1 in
  (* case 0: no causal past -> immediate *)
  let hits = ref [] in
  Saturn.Datacenter.attach dcx ~client_label:None ~k:(fun () -> hits := `Empty :: !hits);
  (* case 1: locally generated label -> immediate *)
  let local = Saturn.Label.update ~ts:(Sim.Time.of_ms 999) ~src_dc:1 ~src_gear:0 ~key:0 in
  Saturn.Datacenter.attach dcx ~client_label:(Some local) ~k:(fun () -> hits := `Local :: !hits);
  (* case 2: remote update label -> blocked until stabilization *)
  let remote = Saturn.Label.update ~ts:(Sim.Time.of_ms 50) ~src_dc:0 ~src_gear:0 ~key:0 in
  Saturn.Datacenter.attach dcx ~client_label:(Some remote) ~k:(fun () -> hits := `Remote :: !hits);
  Sim.Engine.run ~until:(Sim.Time.of_ms 20) engine;
  Alcotest.(check bool) "empty immediate" true (List.mem `Empty !hits);
  Alcotest.(check bool) "local immediate" true (List.mem `Local !hits);
  Alcotest.(check bool) "remote still blocked" false (List.mem `Remote !hits);
  (* heartbeats eventually stabilize past 50ms *)
  Sim.Engine.run ~until:(Sim.Time.of_ms 400) engine;
  Alcotest.(check bool) "remote released by stabilization" true (List.mem `Remote !hits)

let test_social_ops_kind_distribution () =
  (* the Benevenuto mix actually drives the generated kinds *)
  let graph = Workload.Social_graph.facebook_scaled ~n_users:600 ~seed:21 in
  let part = Workload.Social_partition.partition graph ~n_dcs:7 ~min_replicas:2 ~max_replicas:4 ~seed:22 in
  let ops = Workload.Social_ops.create part ~value_size:8 ~seed:23 in
  let rng = Sim.Rng.create ~seed:24 in
  let writes = ref 0 and own_reads = ref 0 in
  let n = 8_000 in
  for _ = 1 to n do
    let user = Sim.Rng.int rng 600 in
    match Workload.Social_ops.next ops ~user with
    | Workload.Op.Write _ -> incr writes
    | Workload.Op.Read { key } when key = Workload.Social_partition.wall_key part ~user -> incr own_reads
    | Workload.Op.Read _ | Workload.Op.Remote_read _ -> ()
  done;
  let wf = float_of_int !writes /. float_of_int n in
  (* writes = update-own 5% + wall posts 3% + uploads 2% = ~10% *)
  if wf < 0.07 || wf > 0.13 then Alcotest.failf "write kind fraction off: %.3f" wf

let test_config_pp_smoke () =
  let tree = Saturn.Tree.star ~n_dcs:2 in
  let config = Saturn.Config.create ~tree ~placement:[| 0 |] ~dc_sites:[| 0; 1 |] () in
  Saturn.Config.set_delay config ~from:0 ~hop:(Saturn.Config.To_dc 1) (Sim.Time.of_ms 2);
  let s = Format.asprintf "%a" Saturn.Config.pp config in
  Alcotest.(check bool) "mentions the delay" true
    (String.length s > 0 && Saturn.Config.total_delay config = Sim.Time.of_ms 2)

let suite =
  [
    Alcotest.test_case "runs are deterministic" `Quick test_runs_are_deterministic;
    Alcotest.test_case "label waiters fire in order" `Quick test_multiple_label_waiters_fire_in_order;
    Alcotest.test_case "engine step API" `Quick test_engine_step_api;
    Alcotest.test_case "attach semantics matrix (Alg 1)" `Quick test_attach_semantics_matrix;
    Alcotest.test_case "social op kind distribution" `Quick test_social_ops_kind_distribution;
    Alcotest.test_case "config printer/delay accounting" `Quick test_config_pp_smoke;
    Alcotest.test_case "ts sweep rescues a lost label" `Quick test_sweep_rescues_lost_label;
    Alcotest.test_case "proxy compaction" `Quick test_proxy_compact;
    Alcotest.test_case "chain compaction over a long run" `Quick test_chain_compact_long_run;
    qtest prop_fifo_with_jitter;
    Alcotest.test_case "link set_latency" `Quick test_link_set_latency;
    Alcotest.test_case "server backlog accounting" `Quick test_server_backlog;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independence;
    Alcotest.test_case "sample totals and values" `Quick test_sample_misc;
    Alcotest.test_case "table csv escaping" `Quick test_table_csv;
    Alcotest.test_case "value/label printers" `Quick test_value_pp_and_label_pp;
    Alcotest.test_case "nearest-degree caps at n_dcs" `Quick test_keyspace_nearest_degree_caps;
    Alcotest.test_case "full-replication remote path" `Quick test_synthetic_full_replication_remote_path;
    Alcotest.test_case "peer-mode remote read cycle" `Quick test_peer_mode_remote_read_cycle;
  ]
