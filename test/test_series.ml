(* Tests for Stats.Series: windowed telemetry semantics, recovery-point
   detection, and digest determinism under random fault plans. *)

let qtest = QCheck_alcotest.to_alcotest
let ms = Sim.Time.of_ms

(* ---- window semantics ------------------------------------------------------ *)

(* windows are left-closed, right-open: an event at exactly k*window lands
   in window k only *)
let test_window_edge () =
  let t = Stats.Series.create ~window:(ms 50) () in
  let c = Stats.Series.counter t "series.edge" in
  Stats.Series.incr c ~now:(Sim.Time.of_us 49_999);
  Stats.Series.incr c ~now:(ms 50);
  Stats.Series.seal t ~now:(ms 120);
  let p = Stats.Series.points t "series.edge" in
  Alcotest.(check int) "three windows" 3 (Stats.Series.n_windows t);
  Alcotest.(check int) "window 0 delta" 1 p.(0).Stats.Series.count;
  Alcotest.(check int) "window 1 delta (boundary event)" 1 p.(1).Stats.Series.count;
  Alcotest.(check int) "window 2 empty" 0 p.(2).Stats.Series.count

let test_empty_windows_padded () =
  let t = Stats.Series.create ~window:(ms 50) () in
  let c = Stats.Series.counter t "series.sparse" in
  Stats.Series.incr ~by:7 c ~now:(ms 10);
  (* nothing in windows 1-3 *)
  Stats.Series.incr ~by:2 c ~now:(ms 210);
  Stats.Series.seal t ~now:(ms 240);
  let v = Stats.Series.primary t "series.sparse" in
  Alcotest.(check (array (float 1e-9)))
    "deltas with zero-filled gaps" [| 7.; 0.; 0.; 0.; 2. |] v

(* ---- counter-delta vs gauge-sample ---------------------------------------- *)

let test_counter_vs_gauge () =
  let t = Stats.Series.create ~window:(ms 50) () in
  let c = Stats.Series.counter t "series.rate" in
  let level = ref 0. in
  Stats.Series.sample t "series.depth" (fun () -> !level);
  (* window 0: three increments, gauge sampled at 2 then 10 *)
  Stats.Series.incr ~by:3 c ~now:(ms 5);
  level := 2.;
  Stats.Series.tick t ~now:(ms 10);
  level := 10.;
  Stats.Series.tick t ~now:(ms 40);
  (* window 1: one increment, gauge back at 4 *)
  Stats.Series.incr c ~now:(ms 60);
  level := 4.;
  Stats.Series.tick t ~now:(ms 70);
  Stats.Series.seal t ~now:(ms 99);
  (* counters report the per-window delta, not the running total *)
  Alcotest.(check (array (float 1e-9))) "counter deltas" [| 3.; 1. |]
    (Stats.Series.primary t "series.rate");
  let g = Stats.Series.points t "series.depth" in
  Alcotest.(check int) "gauge samples in window 0" 2 g.(0).Stats.Series.count;
  Alcotest.(check (float 1e-9)) "gauge min" 2. g.(0).Stats.Series.vmin;
  Alcotest.(check (float 1e-9)) "gauge mean" 6. g.(0).Stats.Series.vmean;
  Alcotest.(check (float 1e-9)) "gauge max" 10. g.(0).Stats.Series.vmax;
  (* a gauge's primary is its per-window max *)
  Alcotest.(check (array (float 1e-9))) "gauge primary" [| 10.; 4. |]
    (Stats.Series.primary t "series.depth");
  Alcotest.(check bool) "kinds differ" true
    (Stats.Series.kind_of t "series.rate" <> Stats.Series.kind_of t "series.depth")

let test_hist_per_window () =
  let t = Stats.Series.create ~window:(ms 50) () in
  let h = Stats.Series.hist t "series.lat_ms" in
  List.iter (Stats.Series.observe h ~now:(ms 10)) [ 10.; 10.; 10.; 10. ];
  (* the next window's histogram is reused (reset), not contaminated *)
  List.iter (Stats.Series.observe h ~now:(ms 60)) [ 100.; 100. ];
  Stats.Series.seal t ~now:(ms 99);
  let p = Stats.Series.points t "series.lat_ms" in
  Alcotest.(check int) "window 0 n" 4 p.(0).Stats.Series.count;
  Alcotest.(check bool) "window 0 p99 near 10" true (abs_float (p.(0).Stats.Series.p99 -. 10.) < 2.);
  Alcotest.(check bool) "window 1 p99 near 100 (no carry-over)" true
    (abs_float (p.(1).Stats.Series.p99 -. 100.) < 2.)

(* ---- registration rules ---------------------------------------------------- *)

let test_registration_rules () =
  let t = Stats.Series.create () in
  Alcotest.check_raises "names must start with series."
    (Invalid_argument "Series: name \"bogus.name\" must start with \"series.\"") (fun () ->
      ignore (Stats.Series.counter t "bogus.name"));
  Stats.Series.sample t "series.g" (fun () -> 0.);
  (* a second closure for the same gauge would be ambiguous *)
  Alcotest.(check bool) "duplicate gauge raises" true
    (try
       Stats.Series.sample t "series.g" (fun () -> 1.);
       false
     with Invalid_argument _ -> true);
  (* one name, one kind *)
  Alcotest.(check bool) "kind clash raises" true
    (try
       ignore (Stats.Series.counter t "series.g");
       false
     with Invalid_argument _ -> true)

(* ---- recovery detection ----------------------------------------------------- *)

(* hand-built series: steady at 10, spikes to 100 at the fault (window 8),
   heals at window 14, decays back to steady at window 17 *)
let test_recovery_window () =
  let values =
    Array.init 24 (fun i -> if i >= 8 && i < 17 then 100. else 10.)
  in
  Alcotest.(check (option int)) "first recovered window" (Some 17)
    (Stats.Series.recovery_window ~window_us:50_000 ~fault_at_us:400_000 ~heal_at_us:700_000
       values);
  (* still elevated at the heal itself: detection must not fire early *)
  Alcotest.(check (option int)) "not the heal window" (Some 17)
    (Stats.Series.recovery_window ~window_us:50_000 ~fault_at_us:400_000 ~heal_at_us:700_000
       ~tolerance:0.5 values);
  (* no pre-fault windows: nothing to calibrate against *)
  Alcotest.(check (option int)) "no steady state" None
    (Stats.Series.recovery_window ~window_us:50_000 ~fault_at_us:0 ~heal_at_us:100_000 values);
  (* never recovers *)
  Alcotest.(check (option int)) "no recovery" None
    (Stats.Series.recovery_window ~window_us:50_000 ~fault_at_us:400_000 ~heal_at_us:700_000
       (Array.init 24 (fun i -> if i >= 8 then 100. else 10.)))

(* the boundary cases of the window quantization: a fault landing exactly
   on a window's left edge makes that window fault-era (excluded from the
   steady-state calibration), and a heal landing exactly on a left edge
   makes that very window the first recovery candidate *)
let test_recovery_window_boundary () =
  let w = 50_000 in
  (* fault at exactly window 4's left edge; elevated through window 8 *)
  let v = Array.init 12 (fun i -> if i >= 4 && i < 9 then 100. else 10.) in
  Alcotest.(check (option int)) "boundary fault window excluded from steady state" (Some 9)
    (Stats.Series.recovery_window ~window_us:w ~fault_at_us:(4 * w) ~heal_at_us:(8 * w) v);
  (* heal at exactly window 8's left edge, and window 8 is already back at
     steady: the heal window itself is the answer *)
  let v2 = Array.init 12 (fun i -> if i >= 4 && i < 8 then 100. else 10.) in
  Alcotest.(check (option int)) "heal-boundary window itself can be the recovery" (Some 8)
    (Stats.Series.recovery_window ~window_us:w ~fault_at_us:(4 * w) ~heal_at_us:(8 * w) v2);
  (* one microsecond earlier the heal falls inside window 7, which is still
     elevated — the scan starts there and walks forward to the same answer *)
  Alcotest.(check (option int)) "heal one us before the boundary" (Some 8)
    (Stats.Series.recovery_window ~window_us:w ~fault_at_us:(4 * w) ~heal_at_us:((8 * w) - 1) v2)

(* degenerate inputs: an empty series has no steady state and no windows
   to scan, and a series that only recovers in its very last window must
   still report that window rather than treating the array end as a miss *)
let test_recovery_window_edges () =
  let w = 50_000 in
  Alcotest.(check (option int)) "empty series" None
    (Stats.Series.recovery_window ~window_us:w ~fault_at_us:(2 * w) ~heal_at_us:(4 * w) [||]);
  (* elevated all the way through the penultimate window: the final window
     is the first (and only) recovered one *)
  let v = Array.init 12 (fun i -> if i >= 4 && i < 11 then 100. else 10.) in
  Alcotest.(check (option int)) "recovery at the final window" (Some 11)
    (Stats.Series.recovery_window ~window_us:w ~fault_at_us:(4 * w) ~heal_at_us:(6 * w) v);
  (* heal lands past the end of the recorded windows: nothing to scan *)
  Alcotest.(check (option int)) "heal beyond the recorded range" None
    (Stats.Series.recovery_window ~window_us:w ~fault_at_us:(4 * w) ~heal_at_us:(20 * w) v)

(* when the series never returns to steady state, the window-derived
   recovery is None and the agreement cross-check declines to answer
   rather than reporting a spurious (dis)agreement *)
let test_recovery_never_happens () =
  let series = Stats.Series.create ~window:(ms 50) () in
  let h = Stats.Series.hist series "series.vis_ms" in
  for i = 0 to 23 do
    Stats.Series.observe h
      ~now:(Sim.Time.of_us ((i * 50_000) + 10_000))
      (if i >= 8 then 100. else 10.)
  done;
  (* seal inside the last observed window: an extra empty window would
     read as "recovered" (p99 back to 0) and defeat the point *)
  Stats.Series.seal series ~now:(ms 1195);
  let o =
    {
      Harness.Fault_run.scenario = "synthetic";
      system = "saturn";
      ops = 0;
      vis_mean_ms = 0.;
      vis_p99_ms = 0.;
      recovery_ms = 120.;
      report = Faults.Checker.analyze (Sim.Probe.create ());
      digest = "";
      n_events = 0;
      flame = [];
      span_us = [];
      registry = Stats.Registry.create ();
      series;
      fault_at_us = Some 400_000;
      heal_at_us = Some 700_000;
      probe = Sim.Probe.create ();
    }
  in
  Alcotest.(check (option (float 1e-9))) "series_recovery_ms is None" None
    (Harness.Fault_run.series_recovery_ms o);
  Alcotest.(check (option bool)) "recovery_agrees is None" None
    (Harness.Fault_run.recovery_agrees o)

(* ---- annotations -------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_annotations () =
  let t = Stats.Series.create ~window:(ms 50) () in
  let c = Stats.Series.counter t "series.a" in
  Stats.Series.incr c ~now:(ms 10);
  (* emitted out of order, two at the same instant *)
  Stats.Series.annotate t ~us:60_000 "switch.graceful";
  Stats.Series.annotate t ~us:10_000 "fault";
  Stats.Series.annotate t ~us:10_000 "a-first";
  Stats.Series.seal t ~now:(ms 100);
  Alcotest.(check (list (pair int string)))
    "sorted by time then name"
    [ (10_000, "a-first"); (10_000, "fault"); (60_000, "switch.graceful") ]
    (Stats.Series.annotations t);
  (* CSV pseudo-rows keep the column count and place the mark in its window *)
  let lines = String.split_on_char '\n' (Stats.Series.to_csv t) in
  Alcotest.(check bool) "csv pseudo-row, window 1" true
    (List.mem "switch.graceful,annotation,1,60.0,0,0.000,0.000,0.000,0.000,0.000" lines);
  Alcotest.(check bool) "csv pseudo-row, window 0" true
    (List.mem "fault,annotation,0,10.0,0,0.000,0.000,0.000,0.000,0.000" lines);
  Alcotest.(check bool) "json annotations array" true
    (contains (Stats.Series.to_json t)
       "\"annotations\":[{\"name\":\"a-first\",\"us\":10000,\"w\":0}");
  (* the digest is over the CSV, pseudo-rows included: a mark drifting in
     time or appearing/vanishing fails the determinism gate *)
  let d = Stats.Series.digest t in
  Stats.Series.annotate t ~us:90_000 "heal";
  Alcotest.(check bool) "digest covers annotations" true (d <> Stats.Series.digest t)

(* ---- rendering --------------------------------------------------------------- *)

let test_sparkline () =
  Alcotest.(check string) "zeros render as spaces" "    " (Stats.Series.sparkline [| 0.; 0.; 0.; 0. |]);
  let s = Stats.Series.sparkline [| 0.; 1.; 5.; 10. |] in
  Alcotest.(check int) "one char per window" 4 (String.length s);
  Alcotest.(check char) "zero is blank" ' ' s.[0];
  Alcotest.(check char) "max is the densest glyph" '@' s.[3]

let test_csv_shape () =
  let t = Stats.Series.create ~window:(ms 50) () in
  let c = Stats.Series.counter t "series.a" in
  Stats.Series.incr c ~now:(ms 10);
  Stats.Series.seal t ~now:(ms 60);
  (match String.split_on_char '\n' (Stats.Series.to_csv t) with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "series,kind,window,start_ms,count,min,mean,max,p50,p99" header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check int) "digest is 16 hex chars" 16 (String.length (Stats.Series.digest t))

(* ---- digest determinism under random fault plans ----------------------------- *)

(* one Saturn run under a random fault plan, returning the sealed series
   digest; the same seed must reproduce it bit-for-bit *)
let series_digest_of_random_plan ~seed =
  let topo = Harness.Obs.topo3 () in
  let dc_sites = [| 0; 1; 2 |] in
  let n_keys = 24 in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let freg = Faults.Registry.create () in
  let series = Stats.Series.create () in
  let spec =
    {
      (Harness.Build.default_spec ~topo ~dc_sites ~rmap) with
      Harness.Build.saturn_config = Some (Harness.Obs.chain_config ~dc_sites);
      serializer_replicas = 2;
    }
  in
  let metrics = Harness.Metrics.create ~registry engine ~topo ~dc_sites in
  let api, _system = Harness.Build.saturn ~registry ~series ~faults:freg engine spec metrics in
  let vis = Stats.Series.hist series "series.vis_ms" in
  Harness.Metrics.subscribe metrics (fun ~dc:_ ~key:_ ~origin_dc:_ ~origin_time ~value:_ ->
      let now = Sim.Engine.now engine in
      Stats.Series.observe vis ~now (Sim.Time.to_ms_float (Sim.Time.sub now origin_time)));
  let plan =
    Faults.Plan.random ~seed
      ~link_names:(Faults.Registry.link_names freg)
      ~serializer_names:(Faults.Registry.serializer_names freg)
      ~clock_names:(Faults.Registry.clock_names freg)
      ~max_replica_crashes:1
      ~horizon:(Sim.Time.of_ms 500) ()
  in
  let (_ : Faults.Injector.t) = Faults.Injector.arm ~registry engine freg plan in
  let clients = Harness.Driver.make_clients ~dc_sites ~per_dc:2 in
  let syn =
    Workload.Synthetic.create
      { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
      ~rmap ~topo ~dc_sites
  in
  ignore
    (Harness.Driver.run engine api metrics ~clients
       ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Harness.Client.preferred_dc)
       ~warmup:(Sim.Time.of_ms 100) ~measure:(Sim.Time.of_ms 400)
       ~cooldown:(Sim.Time.of_ms 100));
  Stats.Series.seal series ~now:(Sim.Engine.now engine);
  (Stats.Series.digest series, Stats.Series.n_windows series)

let prop_series_digest_deterministic =
  QCheck.Test.make ~name:"series digest identical across two runs of a random fault plan"
    ~count:3
    QCheck.(int_bound 1000)
    (fun seed ->
      let d1, w1 = series_digest_of_random_plan ~seed in
      let d2, w2 = series_digest_of_random_plan ~seed in
      if w1 = 0 then QCheck.Test.fail_report "no windows closed";
      String.equal d1 d2 && w1 = w2)

(* ---- fault-run integration ---------------------------------------------------- *)

(* the partition cell of the fault matrix: queue depths must rise during
   the cut and return to steady state, and the series-derived recovery
   point must agree with the drain-based faults.recovery_ms *)
let test_partition_timeline () =
  let o = Harness.Fault_run.run_scenario ~seed:7 ~scenario:"partition" ~system:`Saturn () in
  let sr = o.Harness.Fault_run.series in
  let fault_us = Option.get o.Harness.Fault_run.fault_at_us in
  let heal_us = Option.get o.Harness.Fault_run.heal_at_us in
  let w_us = Sim.Time.to_us (Stats.Series.window sr) in
  let peak_in lo hi v =
    let acc = ref 0. in
    Array.iteri (fun i x -> if i >= lo && i < hi && x > !acc then acc := x) v;
    !acc
  in
  let check_queue name =
    let v = Stats.Series.primary sr name in
    let fw = fault_us / w_us and hw = heal_us / w_us in
    let steady = peak_in 1 fw v in
    let during = peak_in fw (hw + 4) v in
    Alcotest.(check bool) (name ^ " builds up during the cut") true (during > 2. *. steady);
    let tail = peak_in (Array.length v - 6) (Array.length v) v in
    Alcotest.(check bool) (name ^ " drains after the heal") true (tail < during /. 2.)
  in
  check_queue "series.pending.dc2";
  check_queue "series.ser2.pending";
  Alcotest.(check (option bool)) "series recovery agrees with faults.recovery_ms" (Some true)
    (Harness.Fault_run.recovery_agrees o)

let suite =
  [
    Alcotest.test_case "window edge is left-closed right-open" `Quick test_window_edge;
    Alcotest.test_case "empty windows are zero-padded" `Quick test_empty_windows_padded;
    Alcotest.test_case "counter delta vs gauge sample" `Quick test_counter_vs_gauge;
    Alcotest.test_case "per-window histogram percentiles" `Quick test_hist_per_window;
    Alcotest.test_case "registration rules" `Quick test_registration_rules;
    Alcotest.test_case "recovery-point detection" `Quick test_recovery_window;
    Alcotest.test_case "recovery window: fault/heal exactly on a boundary" `Quick
      test_recovery_window_boundary;
    Alcotest.test_case "recovery window: empty series, final-window recovery" `Quick
      test_recovery_window_edges;
    Alcotest.test_case "recovery never happens: series answer is None" `Quick
      test_recovery_never_happens;
    Alcotest.test_case "annotations: ordering, csv/json rows, digest coverage" `Quick
      test_annotations;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "csv shape + digest" `Quick test_csv_shape;
    qtest prop_series_digest_deterministic;
    Alcotest.test_case "partition timeline: buildup, drain, recovery agreement" `Slow
      test_partition_timeline;
  ]
