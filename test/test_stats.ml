(* Tests for the statistics library. *)

let qtest = QCheck_alcotest.to_alcotest

let sample_of xs =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) xs;
  s

let test_sample_basic () =
  let s = sample_of [ 3.; 1.; 2. ] in
  Alcotest.(check int) "count" 3 (Stats.Sample.count s);
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.Sample.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Sample.min_value s);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.Sample.max_value s);
  Alcotest.(check (float 1e-9)) "median" 2. (Stats.Sample.median s);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.Sample.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 3. (Stats.Sample.percentile s 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 1.5 (Stats.Sample.percentile s 25.)

let test_sample_errors () =
  let s = Stats.Sample.create () in
  Alcotest.check_raises "empty percentile" (Invalid_argument "Sample.percentile: empty sample")
    (fun () -> ignore (Stats.Sample.percentile s 50.));
  Stats.Sample.add s 1.;
  Alcotest.check_raises "out of range" (Invalid_argument "Sample.percentile: p out of [0,100]")
    (fun () -> ignore (Stats.Sample.percentile s 101.))

let test_sample_stddev () =
  let s = sample_of [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13808993 (Stats.Sample.stddev s)

let test_sample_insert_after_sort () =
  let s = sample_of [ 5.; 1. ] in
  Alcotest.(check (float 1e-9)) "median before" 3. (Stats.Sample.median s);
  Stats.Sample.add s 10.;
  (* the sorted cache must be invalidated *)
  Alcotest.(check (float 1e-9)) "median after" 5. (Stats.Sample.median s)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = sample_of xs in
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vals = List.map (Stats.Sample.percentile s) ps in
      let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
      mono vals)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf is non-decreasing and ends at 1" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.))
    (fun xs ->
      let s = sample_of xs in
      let cdf = Stats.Sample.cdf s () in
      let rec mono = function
        | (v1, f1) :: ((v2, f2) :: _ as rest) -> v1 <= v2 && f1 <= f2 && mono rest
        | _ -> true
      in
      mono cdf && snd (List.nth cdf (List.length cdf - 1)) = 1.)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.; 42. ];
  Alcotest.(check int) "count includes outliers" 6 (Stats.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h);
  let p50 = Stats.Histogram.percentile h 50. in
  if p50 < 1.0 || p50 > 2.0 then Alcotest.failf "p50 should land in the 1-2 bucket: %f" p50

let test_histogram_merge () =
  let a = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  let b = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  Stats.Histogram.add a 1.;
  Stats.Histogram.add b 9.;
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Stats.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 5. (Stats.Histogram.mean m);
  let c = Stats.Histogram.create ~lo:0. ~hi:5. ~buckets:5 in
  Alcotest.check_raises "geometry mismatch" (Invalid_argument "Histogram.merge: geometry mismatch")
    (fun () -> ignore (Stats.Histogram.merge a c))

let prop_histogram_percentile_in_range =
  QCheck.Test.make ~name:"histogram percentile within [lo,hi]" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 10.))
    (fun xs ->
      let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:20 in
      List.iter (Stats.Histogram.add h) xs;
      let p = Stats.Histogram.percentile h 90. in
      p >= 0. && p <= 10.)

let test_meta_bytes_tiling () =
  (* the attached counter must tile the per-op histogram's total: every
     recorded op contributes bytes x fanout to both, so the headline
     bytes-per-op figure is consistent with the counter breakdown *)
  let registry = Stats.Registry.create () in
  let m = Stats.Meta_bytes.create registry ~system:"testsys" in
  let ops = [ (12, 2); (12, 1); (0, 2); (24, 3); (17, 1) ] in
  List.iter (fun (bytes, fanout) -> Stats.Meta_bytes.record_op m ~bytes ~fanout) ops;
  let expected_attached = List.fold_left (fun a (b, f) -> a + (b * f)) 0 ops in
  Alcotest.(check int) "attached tiles the ops" expected_attached (Stats.Meta_bytes.attached_bytes m);
  Alcotest.(check int) "every op counted (zero-byte ones too)" (List.length ops)
    (Stats.Meta_bytes.ops m);
  let hist_total =
    Stats.Histogram.mean (Stats.Meta_bytes.per_op_hist m)
    *. float_of_int (Stats.Histogram.count (Stats.Meta_bytes.per_op_hist m))
  in
  Alcotest.(check (float 1e-6)) "histogram sum = attached counter"
    (float_of_int expected_attached) hist_total;
  Alcotest.(check (float 1e-6)) "attached per op"
    (float_of_int expected_attached /. float_of_int (List.length ops))
    (Stats.Meta_bytes.attached_per_op m);
  Stats.Meta_bytes.record_stabilization m ~bytes:40;
  Stats.Meta_bytes.record_heartbeat m ~bytes:12;
  Stats.Meta_bytes.record_heartbeat m ~bytes:12;
  Alcotest.(check int) "total = attached + stabilization + heartbeat"
    (expected_attached + 40 + 24) (Stats.Meta_bytes.total_bytes m);
  (* the counters land in the registry under the shared grammar *)
  Alcotest.(check int) "registry counter view" expected_attached
    (Stats.Registry.counter_value (Stats.Registry.counter registry "meta.bytes.testsys.attached"));
  Alcotest.check_raises "negative bytes rejected"
    (Invalid_argument "Meta_bytes.record_op: negative bytes or fanout") (fun () ->
      Stats.Meta_bytes.record_op m ~bytes:(-1) ~fanout:1)

(* ---- Hdr: log-bucketed histogram ------------------------------------------ *)

let test_hdr_basics () =
  let h = Stats.Hdr.create () in
  Alcotest.(check int) "empty count" 0 (Stats.Hdr.count h);
  Alcotest.(check int) "empty max" 0 (Stats.Hdr.max_value h);
  List.iter (Stats.Hdr.add h) [ 5; 1; 1000; 40_000; 3 ];
  Alcotest.(check int) "count" 5 (Stats.Hdr.count h);
  Alcotest.(check int) "max is exact" 40_000 (Stats.Hdr.max_value h);
  Alcotest.(check int) "min is exact" 1 (Stats.Hdr.min_value h);
  Alcotest.(check (float 1e-9)) "mean is exact (sum is kept raw)" 8201.8 (Stats.Hdr.mean h);
  (* values below 2^sub_bits land in unit buckets: percentiles are exact *)
  Alcotest.(check (float 1e-9)) "p0 exact in unit range" 1. (Stats.Hdr.percentile h 0.);
  Alcotest.(check (float 1e-9)) "top rank reports the exact max" 40_000.
    (Stats.Hdr.percentile h 100.);
  Stats.Hdr.add h (-3);
  Alcotest.(check int) "negatives counted apart" 1 (Stats.Hdr.negatives h);
  Alcotest.(check int) "negatives excluded from the distribution" 5 (Stats.Hdr.count h);
  Stats.Hdr.reset h;
  Alcotest.(check int) "reset clears count" 0 (Stats.Hdr.count h);
  Alcotest.(check int) "reset clears negatives" 0 (Stats.Hdr.negatives h);
  Alcotest.check_raises "sub_bits out of range rejected"
    (Invalid_argument "Hdr.create: sub_bits outside [0, 16]") (fun () ->
      ignore (Stats.Hdr.create ~sub_bits:17 ()))

let test_hdr_relative_error () =
  (* the contract the Series/Journey migration buys: every percentile's
     representative is within 2^-sub_bits (0.8% at the default) of some
     recorded value, at every magnitude *)
  let h = Stats.Hdr.create () in
  let values = List.init 400 (fun i -> 31 + (i * 997)) in
  List.iter (Stats.Hdr.add h) values;
  List.iter
    (fun p ->
      let v = Stats.Hdr.percentile h p in
      let nearest =
        List.fold_left
          (fun acc x ->
            if Float.abs (float_of_int x -. v) < Float.abs (float_of_int acc -. v) then x else acc)
          (List.hd values) values
      in
      let rel = Float.abs (v -. float_of_int nearest) /. float_of_int nearest in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f representative within 0.8%% (got %.4f)" p rel)
        true (rel < 0.008))
    [ 1.; 25.; 50.; 75.; 90.; 99.; 99.9 ]

let test_hdr_merge () =
  let a = Stats.Hdr.create () and b = Stats.Hdr.create () in
  List.iter (Stats.Hdr.add a) [ 10; 20 ];
  List.iter (Stats.Hdr.add b) [ 30_000; -1 ];
  let m = Stats.Hdr.merge a b in
  Alcotest.(check int) "merged count" 3 (Stats.Hdr.count m);
  Alcotest.(check int) "merged negatives" 1 (Stats.Hdr.negatives m);
  Alcotest.(check int) "merged max" 30_000 (Stats.Hdr.max_value m);
  Alcotest.(check int) "merged min" 10 (Stats.Hdr.min_value m);
  (* fresh result: resetting an input leaves the merge intact *)
  Stats.Hdr.reset a;
  Alcotest.(check int) "merge survives input reset" 3 (Stats.Hdr.count m);
  Alcotest.check_raises "geometry mismatch rejected"
    (Invalid_argument "Hdr.merge: geometry mismatch") (fun () ->
      ignore (Stats.Hdr.merge (Stats.Hdr.create ~sub_bits:4 ()) (Stats.Hdr.create ())))

let prop_hdr_percentile_in_range =
  QCheck.Test.make ~name:"hdr percentile stays within [min, max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (int_bound 1_000_000)) (int_bound 100))
    (fun (xs, p) ->
      let p = float_of_int p in
      let h = Stats.Hdr.create () in
      List.iter (Stats.Hdr.add h) xs;
      let v = Stats.Hdr.percentile h p in
      v >= float_of_int (Stats.Hdr.min_value h) && v <= float_of_int (Stats.Hdr.max_value h))

let test_table_render () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "x"; "1" ];
  Stats.Table.add_row t [ "longer"; "2" ];
  let out = Stats.Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0 && String.sub out 0 7 = "== demo");
  (* rows render in insertion order *)
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 6 (List.length lines);
  Alcotest.(check bool) "x row before longer row" true
    (String.length (List.nth lines 3) >= 1 && (List.nth lines 3).[0] = 'x')

let suite =
  [
    Alcotest.test_case "sample basics" `Quick test_sample_basic;
    Alcotest.test_case "sample error cases" `Quick test_sample_errors;
    Alcotest.test_case "sample stddev" `Quick test_sample_stddev;
    Alcotest.test_case "sorted cache invalidation" `Quick test_sample_insert_after_sort;
    qtest prop_percentile_monotone;
    qtest prop_cdf_monotone;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    qtest prop_histogram_percentile_in_range;
    Alcotest.test_case "hdr basics, negatives and reset" `Quick test_hdr_basics;
    Alcotest.test_case "hdr constant relative error" `Quick test_hdr_relative_error;
    Alcotest.test_case "hdr merge" `Quick test_hdr_merge;
    qtest prop_hdr_percentile_in_range;
    Alcotest.test_case "meta-bytes accounting tiles per-op total" `Quick test_meta_bytes_tiling;
    Alcotest.test_case "table rendering" `Quick test_table_render;
  ]
