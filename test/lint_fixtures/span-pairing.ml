(* rule: span-pairing
   The exact-tiling gate requires every span kind that is ever begun to
   also be ended somewhere in the tree — an unpaired begin_ leaves an
   open interval the tiling check rejects on every scenario that hits
   it. The end_ may live in another file. *)
(* --bad-- *)
(* @file lib/fixture.ml *)
let enter tr ~at = Sim.Span.begin_ tr ~at Sim.Span.Sk_flush
(* --good-- *)
(* @file lib/fixture.ml *)
let enter tr ~at = Sim.Span.begin_ tr ~at Sim.Span.Sk_flush
let leave tr ~at = Sim.Span.end_ tr ~at Sim.Span.Sk_flush
