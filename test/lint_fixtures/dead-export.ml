(* rule: dead-export
   An .mli val no other file references is surface the remaining rules
   must reason about for nothing — delete it (the compiler's unused-value
   warning then walks the dead implementation chain for you), or waive
   it naming the planned caller. Uses in test/, bench/ and examples/
   count as live. *)
(* --bad-- *)
(* @file lib/m.mli *)
val used : int -> int
val helper : int -> int
(* @file lib/m.ml *)
let used x = x + 1
let helper x = x * 2
(* @file lib/caller.ml *)
let y = M.used 1
(* --good-- *)
(* @file lib/m.mli *)
val used : int -> int
(* @file lib/m.ml *)
let used x = x + 1
(* @file lib/caller.ml *)
let y = M.used 1
