(* rule: physical-equality
   == and != compare addresses, not contents: two structurally equal
   labels allocated separately compare unequal, and the result can vary
   with allocation order. Use structural =/<>, or waive an intentional
   identity check with the reason. *)
(* --bad-- *)
(* @file lib/fixture.ml *)
let same_label a b = a == b
(* --good-- *)
(* @file lib/fixture.ml *)
let same_label a b = a = b
