(* rule: counter-name-grammar
   Counter names reaching the registry must match [a-z0-9_.*>-]+ and the
   dotted family.metric convention, because the probe-counter gate globs
   the smoke baseline against registration sites — a name outside the
   grammar can never be covered and silently escapes the gate. *)
(* --bad-- *)
(* @file lib/fixture.ml *)
let c reg = Stats.Registry.counter reg "Commit Count"
let g reg = Stats.Registry.counter reg "blame gap us"
(* --good-- *)
(* @file lib/fixture.ml *)
let c reg = Stats.Registry.counter reg "serializer.commits"
let g reg = Stats.Registry.counter reg "blame.gap.us"
let p reg part = Stats.Registry.counter reg (Printf.sprintf "blame.part.%s.us" part)
