(* rule: ambient-nondeterminism
   Wall clocks, module-level Random, Marshal and Hashtbl.hash differ
   run-to-run even under the simulated clock, so the digest gate would
   only catch them after the fact. Take time from the engine clock and
   randomness from a seeded Random.State threaded explicitly. *)
(* --bad-- *)
(* @file lib/fixture.ml *)
let jitter () = Random.float 1.0
(* --good-- *)
(* @file lib/fixture.ml *)
let jitter st = Random.State.float st 1.0
