(* rule: protocol-invariant
   Every bulk shipment must pass ~size_bytes so Meta_bytes can attribute
   it, record Stats.Meta_bytes in its enclosing definition, and — in
   lib/core, where shipments cross reconfiguration epochs — thread an
   epoch. Separately, every Probe.event constructor needs a consumer in
   Faults.Checker, Harness.Journey or Harness.Chrome. *)
(* --bad-- *)
(* @file lib/core/fixture.ml *)
let flush t links = Transport.ship links t.buf
(* --good-- *)
(* @file lib/core/fixture.ml *)
let flush t links ~epoch =
  Stats.Meta_bytes.record t.meta ~bytes:(bytes t.buf);
  Transport.ship links t.buf ~size_bytes:(bytes t.buf) ~epoch
