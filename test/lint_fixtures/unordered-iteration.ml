(* rule: unordered-iteration
   Hashtbl iteration order is arbitrary and differs run-to-run, so any
   value that escapes an iter/fold in table order reaches the trace
   digest and breaks replay. Sort in the same expression (or in the
   binding's later uses), or make the reduction commutative. *)
(* --bad-- *)
(* @file lib/fixture.ml *)
let keys tbl =
  let out = ref [] in
  Hashtbl.iter (fun k _ -> out := k :: !out) tbl;
  !out
(* --good-- *)
(* @file lib/fixture.ml *)
let keys tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
