(* rule: nondeterminism-taint
   An ambient source two let-bindings away from a probe/registry/digest
   sink is invisible to the per-site ambient check, but the value still
   corrupts replay. Taint flows through bindings until a canonicalizing
   sort kills it or a sink consumes it. Thread deterministic inputs
   instead of laundering ambient ones. *)
(* --bad-- *)
(* @file lib/fixture.ml *)
let stamp probe ~at =
  let t0 = Unix.gettimeofday () in
  let skew = t0 *. 1e6 in
  Sim.Probe.custom probe ~at skew
(* --good-- *)
(* @file lib/fixture.ml *)
let stamp probe ~at ~skew = Sim.Probe.custom probe ~at skew
