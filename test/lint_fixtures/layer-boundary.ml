(* rule: layer-boundary
   ci/layers.txt declares which layers may not reach which identifier
   families or sibling layers: core and the baselines stay free of
   Unix/Sys/printing/harness so the live-mode refactor can swap the
   transport under them, and the simulator never reaches back into core.
   Inject the capability instead of importing it. *)
(* --bad-- *)
(* @file lib/core/fixture.ml *)
let log msg = Printf.printf "%s\n" msg
(* --good-- *)
(* @file lib/core/fixture.ml *)
let log ~emit msg = emit msg
