(* Randomized whole-system consistency checking.

   An oracle tracks, for every update, the set of updates in its causal
   past (what the issuing client had observed, transitively). Whenever an
   update becomes visible at a datacenter, every dependency stored at that
   datacenter must already be visible there — the definition of causal
   consistency the paper targets. At quiescence, all replicas of every key
   must agree (convergence). The same harness runs against Saturn (tree and
   peer modes), GentleRain and Cure; the eventually consistent baseline is
   checked for convergence only, since it makes no causal promise. *)

module IntSet = Set.Make (Int)

(* set by fault-injecting builders; invoked mid-run when [crash_replicas] *)
let crash_hook : (int -> unit) option ref = ref None

type oracle = {
  mutable deps : IntSet.t array; (* payload id -> causal past (payload ids) *)
  key_of : (int, int) Hashtbl.t;
  visible : (int * int, unit) Hashtbl.t; (* (dc, payload) *)
  mutable violations : string list;
  mutable checked : int;
}

let oracle_create () =
  { deps = Array.make 4096 IntSet.empty; key_of = Hashtbl.create 256; visible = Hashtbl.create 1024;
    violations = []; checked = 0 }

let record_visible o rmap ~dc ~payload =
  (match Hashtbl.find_opt o.key_of payload with
  | None -> ()
  | Some _ ->
    IntSet.iter
      (fun d ->
        match Hashtbl.find_opt o.key_of d with
        | Some dkey when Kvstore.Replica_map.replicates rmap ~dc ~key:dkey ->
          o.checked <- o.checked + 1;
          if not (Hashtbl.mem o.visible (dc, d)) then
            o.violations <-
              Printf.sprintf "update %d visible at dc%d before its dependency %d (key %d)" payload
                dc d dkey
              :: o.violations
        | Some _ | None -> ())
      o.deps.(payload));
  Hashtbl.replace o.visible (dc, payload) ()

type client_state = { client : Harness.Client.t; mutable observed : IntSet.t }

let run_system ?(full_replication = false) ?(crash_replicas = false) ~seed ~build ~check_causality () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let n_dcs = 3 + Sim.Rng.int rng 2 in
  let n_keys = 24 in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  (* random partial replication with degree >= 2 (or full for systems that
     are only sound under full replication) *)
  let rmap =
    if full_replication then Kvstore.Replica_map.full ~n_dcs ~n_keys
    else
      Kvstore.Replica_map.create ~n_dcs ~n_keys ~assign:(fun key ->
          let home = key mod n_dcs in
          let extra = (home + 1 + Sim.Rng.int rng (n_dcs - 1)) mod n_dcs in
          let maybe = if Sim.Rng.bool rng then [ Sim.Rng.int rng n_dcs ] else [] in
          home :: extra :: maybe)
  in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let api : Harness.Api.t = build engine spec metrics in
  let o = oracle_create () in
  Harness.Metrics.subscribe metrics (fun ~dc ~key:_ ~origin_dc:_ ~origin_time:_ ~value ->
      record_visible o rmap ~dc ~payload:value.Kvstore.Value.payload);
  let next_payload = ref 0 in
  let clients =
    List.init (2 * n_dcs) (fun i ->
        let dc = i mod n_dcs in
        { client = Harness.Client.create ~id:i ~home_site:dc_sites.(dc) ~preferred_dc:dc;
          observed = IntSet.empty })
  in
  let stop_at = Sim.Time.of_sec 4. in
  let running () = Sim.Time.compare (Sim.Engine.now engine) stop_at < 0 in
  let local_keys = Array.init n_dcs (fun dc -> Array.of_list (Kvstore.Replica_map.local_keys rmap ~dc)) in
  let rec loop cs () =
    if running () then begin
      let dc = cs.client.Harness.Client.current_dc in
      let dice = Sim.Rng.int rng 100 in
      if dice < 55 then begin
        (* local read: merge the version's causal past into ours *)
        let key = Sim.Rng.pick rng local_keys.(dc) in
        api.Harness.Api.read cs.client ~key ~k:(fun v ->
            (match v with
            | Some value ->
              let p = value.Kvstore.Value.payload in
              cs.observed <- IntSet.add p (IntSet.union o.deps.(p) cs.observed)
            | None -> ());
            loop cs ())
      end
      else if dice < 85 then begin
        let key = Sim.Rng.pick rng local_keys.(dc) in
        incr next_payload;
        let p = !next_payload in
        if p >= Array.length o.deps then begin
          let bigger = Array.make (2 * Array.length o.deps) IntSet.empty in
          Array.blit o.deps 0 bigger 0 (Array.length o.deps);
          o.deps <- bigger
        end;
        o.deps.(p) <- cs.observed;
        Hashtbl.replace o.key_of p key;
        let value = Kvstore.Value.make ~payload:p ~size_bytes:2 in
        api.Harness.Api.update cs.client ~key ~value ~k:(fun () ->
            (* visible at the origin once the write returns *)
            Hashtbl.replace o.visible (dc, p) ();
            cs.observed <- IntSet.add p cs.observed;
            loop cs ())
      end
      else begin
        (* roam to a random datacenter and come home *)
        let dest = Sim.Rng.int rng n_dcs in
        api.Harness.Api.migrate cs.client ~dest_dc:dest ~k:(fun () ->
            let key = Sim.Rng.pick rng local_keys.(dest) in
            api.Harness.Api.read cs.client ~key ~k:(fun v ->
                (match v with
                | Some value ->
                  let p = value.Kvstore.Value.payload in
                  cs.observed <- IntSet.add p (IntSet.union o.deps.(p) cs.observed)
                | None -> ());
                api.Harness.Api.migrate cs.client ~dest_dc:cs.client.Harness.Client.preferred_dc
                  ~k:(loop cs)))
      end
    end
  in
  List.iter (fun cs -> api.Harness.Api.attach cs.client ~dc:cs.client.Harness.Client.preferred_dc ~k:(loop cs)) clients;
  if crash_replicas then begin
    (* fault injection: crash one replica of every serializer mid-run; the
       chains heal and causality must hold throughout *)
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_sec 1.) (fun () ->
        match !crash_hook with Some f -> f 0 | None -> ());
    Sim.Engine.schedule engine ~delay:(Sim.Time.of_sec 2.) (fun () ->
        match !crash_hook with Some f -> f 1 | None -> ())
  end;
  Sim.Engine.run ~until:stop_at engine;
  (* quiescence: let replication drain with the system (heartbeats,
     stabilization rounds) still alive, then stop it *)
  Sim.Engine.run ~until:(Sim.Time.add stop_at (Sim.Time.of_sec 3.)) engine;
  api.Harness.Api.stop ();
  (* convergence: all replicas agree on the final version of every key *)
  let diverged = ref [] in
  for key = 0 to n_keys - 1 do
    let values =
      List.filter_map
        (fun dc ->
          if Kvstore.Replica_map.replicates rmap ~dc ~key then
            Option.map (fun (v : Kvstore.Value.t) -> v.Kvstore.Value.payload)
              (api.Harness.Api.store_value ~dc ~key)
          else None)
        (List.init n_dcs Fun.id)
    in
    match values with
    | [] -> ()
    | first :: rest ->
      if not (List.for_all (fun v -> v = first) rest) then
        diverged := Printf.sprintf "key %d: %s" key (String.concat "," (List.map string_of_int values)) :: !diverged
  done;
  if check_causality then begin
    (match o.violations with
    | [] -> ()
    | v :: _ -> Alcotest.failf "causality violated (%d checks): %s" o.checked v);
    if o.checked = 0 then Alcotest.fail "oracle never checked anything (broken test)"
  end;
  (match !diverged with [] -> () | d :: _ -> Alcotest.failf "replicas diverged: %s" d);
  if !next_payload < 50 then Alcotest.failf "too few updates issued (%d): broken driver" !next_payload

let saturn_build engine spec metrics = fst (Harness.Build.saturn engine spec metrics)
let peer_build engine spec metrics = fst (Harness.Build.saturn_peer engine spec metrics)

let saturn_replicated_build engine spec metrics =
  let api, system =
    Harness.Build.saturn engine { spec with Harness.Build.serializer_replicas = 3 } metrics
  in
  (crash_hook :=
     Some
       (fun replica ->
         match Saturn.System.service system with
         | Some service ->
           for s = 0 to Saturn.Tree.n_serializers (Saturn.Config.tree (Saturn.Service.config service)) - 1 do
             (try Saturn.Service.crash_replica service ~serializer:s ~replica
              with Invalid_argument _ -> ())
           done
         | None -> ()));
  api

let test_sys ?full_replication ?crash_replicas ~name ~build ~check_causality () =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "%s: randomized causal oracle (seed %d)" name seed)
        `Slow
        (fun () -> run_system ?full_replication ?crash_replicas ~seed ~build ~check_causality ()))
    [ 1; 2; 3 ]

let orbe_build engine spec metrics = fst (Harness.Build.orbe engine spec metrics)

let saturn_switching_build engine spec metrics =
  (* mid-run graceful tree switch: the oracle keeps checking causality
     across the epoch change *)
  let api, system = Harness.Build.saturn engine spec metrics in
  (crash_hook :=
     Some
       (fun phase ->
         if phase = 0 then begin
           let n_dcs = Saturn.System.n_dcs system in
           let dc_sites = (Saturn.System.params system).Saturn.System.dc_sites in
           let alt =
             if n_dcs < 3 then
               Saturn.Config.create ~tree:(Saturn.Tree.star ~n_dcs)
                 ~placement:[| dc_sites.(n_dcs - 1) |] ~dc_sites:(Array.copy dc_sites) ()
             else begin
               let tree =
                 Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ]
                   ~attach:(Array.init n_dcs (fun dc -> if dc < 2 then 0 else 1))
               in
               Saturn.Config.create ~tree ~placement:[| dc_sites.(0); dc_sites.(2) |]
                 ~dc_sites:(Array.copy dc_sites) ()
             end
           in
           Saturn.System.switch_config system alt ~graceful:true
         end));
  api

let suite =
  test_sys ~name:"saturn" ~build:saturn_build ~check_causality:true ()
  @ test_sys ~name:"saturn-peer" ~build:peer_build ~check_causality:true ()
  @ test_sys ~name:"gentlerain" ~build:Harness.Build.gentlerain ~check_causality:true ()
  @ test_sys ~name:"cure" ~build:Harness.Build.cure ~check_causality:true ()
  @ test_sys ~name:"eunomia" ~build:Harness.Build.eunomia ~check_causality:true ()
  @ test_sys ~name:"okapi" ~build:Harness.Build.okapi ~check_causality:true ()
  @ test_sys ~name:"orbe (full replication)" ~full_replication:true ~build:orbe_build
      ~check_causality:true ()
  @ test_sys ~name:"saturn + replica crashes" ~crash_replicas:true ~build:saturn_replicated_build
      ~check_causality:true ()
  @ test_sys ~name:"saturn + graceful tree switch" ~crash_replicas:true
      ~build:saturn_switching_build ~check_causality:true ()
  @ test_sys ~name:"eventual (convergence only)" ~build:Harness.Build.eventual ~check_causality:false ()
