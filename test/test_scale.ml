(* The million-user scale tier: streaming graph generation, arithmetic
   placement, and the engine perf-regression gate. *)

let qtest = QCheck_alcotest.to_alcotest

module Scale = Workload.Scale
module EB = Harness.Engine_bench

let words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* ---- generator ------------------------------------------------------------ *)

let test_determinism () =
  let a = Scale.generate ~n_users:20_000 ~seed:7 () in
  let b = Scale.generate ~n_users:20_000 ~seed:7 () in
  Alcotest.(check string) "same seed, same digest" (Scale.digest a) (Scale.digest b);
  Alcotest.(check int) "same edge count" (Scale.n_edges a) (Scale.n_edges b);
  let c = Scale.generate ~n_users:20_000 ~seed:8 () in
  if String.equal (Scale.digest a) (Scale.digest c) then
    Alcotest.fail "different seeds produced identical edge streams"

(* the 61k tier is the real New Orleans network's size; its generated shape
   must carry the facebook_scaled statistics — mean degree 30, a heavy tail,
   and no isolated users *)
let test_tier_shape () =
  let g = Scale.of_tier Scale.T61k ~seed:42 in
  Alcotest.(check int) "users" 61_096 (Scale.n_users g);
  let mean = Scale.mean_degree g in
  if Float.abs (mean -. 30.) > 1. then Alcotest.failf "mean degree %.2f, expected ~30" mean;
  let dmax = Scale.max_degree g in
  if dmax < 10 * int_of_float mean then
    Alcotest.failf "max degree %d: no heavy tail over mean %.1f" dmax mean;
  for u = 0 to Scale.n_users g - 1 do
    if Scale.degree g u = 0 then Alcotest.failf "user %d is isolated" u
  done;
  (* CSR rows are sorted ascending, like Social_graph.friends *)
  let prev = ref (-1) in
  Scale.iter_friends g 0 (fun v ->
      if v <= !prev then Alcotest.failf "row 0 not sorted: %d after %d" v !prev;
      prev := v)

(* generation memory is O(edges): words allocated per edge must not grow
   with the user count (the quadratic Social_graph would blow this bound
   immediately) *)
let prop_generation_linear =
  QCheck.Test.make ~name:"generation allocates O(1) words per edge" ~count:5
    QCheck.(int_range 2_000 20_000)
    (fun n_users ->
      let w0 = words () in
      let g = Scale.generate ~n_users ~seed:(n_users land 0xff) () in
      let per_edge = (words () -. w0) /. float_of_int (Scale.n_edges g) in
      if per_edge > 120. then
        QCheck.Test.fail_reportf "%.1f words/edge at %d users" per_edge n_users;
      true)

(* streaming ops out of a finished graph allocates O(1) per op — no hidden
   per-op pool rebuild, whatever the graph size *)
let prop_stream_constant_alloc =
  QCheck.Test.make ~name:"op stream allocates O(1) words per op" ~count:4
    QCheck.(int_range 3_000 30_000)
    (fun n_users ->
      let g = Scale.generate ~n_users ~seed:5 () in
      let ops = Scale.Ops.create g ~n_dcs:3 ~value_size:128 ~seed:11 in
      let budget = 20_000 in
      let w0 = words () in
      for i = 0 to budget - 1 do
        ignore (Scale.Ops.next ops ~dc:(i mod 3) : Workload.Op.t)
      done;
      let per_op = (words () -. w0) /. float_of_int budget in
      if per_op > 300. then QCheck.Test.fail_reportf "%.1f words/op at %d users" per_op n_users;
      true)

(* ---- placement ------------------------------------------------------------ *)

let test_ops_well_formed () =
  let n_dcs = 3 in
  let g = Scale.generate ~n_users:10_000 ~seed:3 () in
  let ops = Scale.Ops.create g ~n_dcs ~value_size:64 ~seed:13 in
  let n_keys = Scale.Ops.n_keys g in
  for i = 0 to 20_000 - 1 do
    let dc = i mod n_dcs in
    match Scale.Ops.next ops ~dc with
    | Workload.Op.Read { key } ->
      if key < 0 || key >= n_keys then Alcotest.failf "read key %d out of range" key;
      (* local reads must actually be replicated here *)
      if not (List.mem dc (Scale.Ops.replicas g ~n_dcs ~key)) then
        Alcotest.failf "local read of key %d not replicated at dc%d" key dc
    | Workload.Op.Write { key; _ } ->
      (* writes always land on data mastered at the issuing datacenter *)
      let master = List.hd (Scale.Ops.replicas g ~n_dcs ~key) in
      if master <> dc then Alcotest.failf "write to key %d mastered at dc%d from dc%d" key master dc
    | Workload.Op.Remote_read { key; at } ->
      if List.mem dc (Scale.Ops.replicas g ~n_dcs ~key) then
        Alcotest.failf "remote read of key %d, but it is replicated at dc%d" key dc;
      if at <> List.hd (Scale.Ops.replicas g ~n_dcs ~key) then
        Alcotest.failf "remote read of key %d targets dc%d, not its master" key at
  done;
  Alcotest.(check int) "ops counted" 20_000 (Scale.Ops.ops_issued ops);
  let rf = Scale.Ops.remote_fraction ops in
  if rf <= 0. || rf > 0.3 then Alcotest.failf "remote fraction %.3f out of plausible band" rf

let test_replicas_consistent () =
  let g = Scale.generate ~n_users:5_000 ~seed:9 () in
  let n_dcs = 3 in
  for key = 0 to Scale.Ops.n_keys g - 1 do
    let reps = Scale.Ops.replicas g ~n_dcs ~key in
    (match reps with
    | [ m; s ] ->
      if s <> (m + 1) mod n_dcs then Alcotest.failf "key %d: replicas %d,%d not adjacent" key m s
    | _ -> Alcotest.failf "key %d: expected 2 replicas" key);
    List.iter
      (fun dc ->
        if not (List.mem dc reps) && List.length reps = n_dcs then
          Alcotest.failf "key %d claims full replication" key)
      [ 0; 1; 2 ]
  done

(* ---- the bench-check gate -------------------------------------------------- *)

(* a miniature saturn-bench-engine/1 document; [det] and [wall] splice in *)
let doc ?(schema = "saturn-bench-engine/1") ?(seed = 42) ~det ~wall () =
  Printf.sprintf "{\"schema\":%S,\"seed\":%d,\"tiers\":[{\"tier\":\"61k\",\"users\":61096,\"det\":{%s},\"wall\":{%s}}]}"
    schema seed det wall

let base_det = "\"edges\":916320,\"sim_ops\":3039,\"sim_words_per_op\":399.45"
let base_wall = "\"sim_events_per_s\":1515127"
let baseline = doc ~det:base_det ~wall:base_wall ()

let check_ok name r =
  (match r.EB.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "%s: unexpected failure: %s" name f)

let check_fails name r =
  if r.EB.failures = [] then Alcotest.failf "%s: expected a gate failure" name

let test_gate_identical () =
  check_ok "identical" (EB.check ~baseline ~fresh:baseline ~tolerance:0.02)

let test_gate_regression_fails () =
  (* an injected deterministic regression: words/op up 25% — the exact
     shape of an accidental per-event allocation creeping back in *)
  let fresh =
    doc ~det:"\"edges\":916320,\"sim_ops\":3039,\"sim_words_per_op\":499.31" ~wall:base_wall ()
  in
  check_fails "words/op +25%" (EB.check ~baseline ~fresh ~tolerance:0.02);
  (* event-count drift beyond tolerance fails too *)
  let fresh2 =
    doc ~det:"\"edges\":916320,\"sim_ops\":2500,\"sim_words_per_op\":399.45" ~wall:base_wall ()
  in
  check_fails "sim_ops -18%" (EB.check ~baseline ~fresh:fresh2 ~tolerance:0.02)

let test_gate_within_tolerance () =
  let fresh =
    doc ~det:"\"edges\":916320,\"sim_ops\":3039,\"sim_words_per_op\":403.00" ~wall:base_wall ()
  in
  check_ok "words/op +0.9%" (EB.check ~baseline ~fresh ~tolerance:0.02)

let test_gate_wall_advisory () =
  (* a 10x wall-clock swing (a slow CI runner) must not fail the gate,
     only produce a note *)
  let fresh = doc ~det:base_det ~wall:"\"sim_events_per_s\":151512" () in
  let r = EB.check ~baseline ~fresh ~tolerance:0.02 in
  check_ok "wall 10x slower" r;
  if r.EB.notes = [] then Alcotest.fail "expected an advisory note for the wall delta"

let test_gate_shape_drift () =
  (* missing tier *)
  let fresh = Printf.sprintf "{\"schema\":\"saturn-bench-engine/1\",\"seed\":42,\"tiers\":[]}" in
  check_fails "missing tier" (EB.check ~baseline ~fresh ~tolerance:0.02);
  (* a new deterministic field the baseline has never seen: regenerate *)
  let fresh =
    doc ~det:(base_det ^ ",\"sim_allocs\":12") ~wall:base_wall ()
  in
  check_fails "new det field" (EB.check ~baseline ~fresh ~tolerance:0.02);
  (* schema or seed mismatch: not comparable *)
  check_fails "schema" (EB.check ~baseline ~fresh:(doc ~schema:"saturn-bench-engine/2" ~det:base_det ~wall:base_wall ()) ~tolerance:0.02);
  check_fails "seed" (EB.check ~baseline ~fresh:(doc ~seed:43 ~det:base_det ~wall:base_wall ()) ~tolerance:0.02)

let test_gate_roundtrip () =
  (* a real (sub-tier) bench result must round-trip through to_json and
     pass the gate against itself with zero tolerance *)
  let r = EB.run_tier ~stream_ops:5_000 ~seed:42 Scale.T61k in
  Alcotest.(check int) "edges" 916_320 r.EB.edges;
  if r.EB.sim_ops <= 0 then Alcotest.fail "simulation completed no ops";
  let j = EB.to_json ~seed:42 [ r ] in
  check_ok "self" (EB.check ~baseline:j ~fresh:j ~tolerance:0.0)

let test_json_parser () =
  let j = EB.Json.parse "{\"a\":[1,2.5,-3e2],\"b\":\"x\\\"y\",\"c\":true,\"d\":null}" in
  (match EB.Json.member "a" j with
  | Some (EB.Json.Arr [ EB.Json.Num 1.; EB.Json.Num 2.5; EB.Json.Num -300. ]) -> ()
  | _ -> Alcotest.fail "array of numbers");
  (match EB.Json.member "b" j with
  | Some (EB.Json.Str "x\"y") -> ()
  | _ -> Alcotest.fail "escaped string");
  (match EB.Json.parse "  [ ]  " with EB.Json.Arr [] -> () | _ -> Alcotest.fail "empty array");
  Alcotest.check_raises "trailing garbage" (Failure "json: trailing garbage at offset 2") (fun () ->
      ignore (EB.Json.parse "{}x"))

let suite =
  [
    Alcotest.test_case "fixed-seed determinism digest" `Quick test_determinism;
    Alcotest.test_case "61k tier reference shape" `Quick test_tier_shape;
    qtest prop_generation_linear;
    qtest prop_stream_constant_alloc;
    Alcotest.test_case "op stream well-formedness" `Quick test_ops_well_formed;
    Alcotest.test_case "replica sets are master+next" `Quick test_replicas_consistent;
    Alcotest.test_case "gate: identical runs pass" `Quick test_gate_identical;
    Alcotest.test_case "gate: injected regression fails" `Quick test_gate_regression_fails;
    Alcotest.test_case "gate: small drift within tolerance" `Quick test_gate_within_tolerance;
    Alcotest.test_case "gate: wall-clock is advisory" `Quick test_gate_wall_advisory;
    Alcotest.test_case "gate: shape drift fails" `Quick test_gate_shape_drift;
    Alcotest.test_case "gate: real run round-trips" `Quick test_gate_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
  ]
