(* Tests for the measurement harness: metrics windowing, the closed-loop
   driver, and an end-to-end scenario smoke check. *)

let test_metrics_windowing () =
  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 2) in
  let m = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  Harness.Metrics.set_window m ~start_at:(Sim.Time.of_ms 10) ~end_at:(Sim.Time.of_ms 20);
  let observe () =
    Harness.Metrics.on_visible m ~dc:1 ~key:0 ~origin_dc:0
      ~origin_time:(Sim.Time.sub (Sim.Engine.now engine) (Sim.Time.of_ms 40))
      ~value:(Kvstore.Value.make ~payload:0 ~size_bytes:1)
  in
  observe (); (* t=0: outside *)
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 15) observe; (* inside *)
  Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 30) observe; (* outside *)
  Sim.Engine.run engine;
  Alcotest.(check int) "only in-window observations" 1 (Harness.Metrics.visible_count m);
  (* visibility 40ms over a 37ms optimal path -> extra 3ms *)
  Alcotest.(check (float 0.01)) "raw latency" 40.
    (Stats.Sample.mean (Harness.Metrics.visibility m));
  Alcotest.(check (float 0.01)) "extra latency" 3.
    (Stats.Sample.mean (Harness.Metrics.extra_visibility m))

let test_metrics_subscribe_ignores_window () =
  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 2) in
  let m = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  Harness.Metrics.set_window m ~start_at:(Sim.Time.of_ms 10) ~end_at:(Sim.Time.of_ms 20);
  let seen = ref 0 in
  Harness.Metrics.subscribe m (fun ~dc:_ ~key:_ ~origin_dc:_ ~origin_time:_ ~value:_ -> incr seen);
  Harness.Metrics.on_visible m ~dc:1 ~key:0 ~origin_dc:0 ~origin_time:Sim.Time.zero
    ~value:(Kvstore.Value.make ~payload:0 ~size_bytes:1);
  Alcotest.(check int) "observer fired outside window" 1 !seen;
  Alcotest.(check int) "sample not recorded" 0 (Harness.Metrics.visible_count m)

let test_driver_counts_window_only () =
  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n 2) in
  let rmap = Kvstore.Replica_map.full ~n_dcs:2 ~n_keys:8 in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  let api = Harness.Build.eventual engine spec metrics in
  let clients = Harness.Driver.make_clients ~dc_sites ~per_dc:2 in
  Alcotest.(check int) "client count" 4 (List.length clients);
  let w =
    Workload.Synthetic.create
      { Workload.Synthetic.default with Workload.Synthetic.n_keys = 8 }
      ~rmap ~topo:Sim.Ec2.topology ~dc_sites
  in
  let result =
    Harness.Driver.run engine api metrics ~clients
      ~next_op:(fun c -> Workload.Synthetic.next w ~dc:c.Harness.Client.preferred_dc)
      ~warmup:(Sim.Time.of_ms 100) ~measure:(Sim.Time.of_ms 500) ~cooldown:(Sim.Time.of_ms 100)
  in
  Alcotest.(check bool) "positive throughput" true (result.Harness.Driver.throughput > 0.);
  (* windowed ops must be a strict subset of total ops *)
  let total = List.fold_left (fun acc c -> acc + c.Harness.Client.total) 0 clients in
  Alcotest.(check bool) "warmup/cooldown excluded" true (result.Harness.Driver.ops_completed < total)

let test_scenario_smoke () =
  (* a tiny comparative run must preserve the paper's headline ordering:
     eventual >= saturn > cure on throughput; saturn extra << gentlerain *)
  let setup =
    { Harness.Scenario.default_setup with
      Harness.Scenario.n_dcs = 3;
      n_keys = 60;
      clients_per_dc = 15;
      measure = Sim.Time.of_ms 600;
      warmup = Sim.Time.of_ms 200;
      cooldown = Sim.Time.of_ms 100;
    }
  in
  let ev = Harness.Scenario.run Harness.Scenario.Eventual setup in
  let sat = Harness.Scenario.run Harness.Scenario.Saturn_sys setup in
  let gr = Harness.Scenario.run Harness.Scenario.Gentlerain setup in
  let cu = Harness.Scenario.run Harness.Scenario.Cure setup in
  let t (o : Harness.Scenario.outcome) = o.Harness.Scenario.throughput in
  if t ev < t sat then Alcotest.fail "eventual should be the throughput upper bound";
  if t sat <= t cu then Alcotest.fail "saturn should beat cure on throughput";
  if t sat < 0.9 *. t ev then Alcotest.fail "saturn overhead should be small";
  let extra (o : Harness.Scenario.outcome) = o.Harness.Scenario.extra_visibility_ms in
  if extra sat > 0.5 *. extra gr then
    Alcotest.failf "saturn staleness (%.1f) should be far below gentlerain (%.1f)" (extra sat) (extra gr);
  ignore (t gr)

(* the CLI's subcommand list is single-sourced from Harness.Cli_spec: the
   built binary's --help must mention every declared subcommand, so a new
   subcommand wired into the CLI but missing from the spec (or vice
   versa — the binary refuses to start on a mismatch) cannot ship with
   stale top-level usage *)
let test_cli_help_lists_subcommands () =
  (* resolve the built CLI next to this test binary so the test works from
     both `dune runtest` (sandbox cwd) and `dune exec` (repo-root cwd) *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      (Filename.concat "bin" "saturn_cli.exe")
  in
  if not (Sys.file_exists exe) then Alcotest.failf "saturn_cli.exe not built at %s" exe;
  let ic = Unix.open_process_in (Filename.quote exe ^ " --help=plain 2>/dev/null") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "saturn-cli --help exited nonzero");
  let help = Buffer.contents buf in
  let has_sub ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "--help mentions %s" name) true (has_sub ~sub:name help);
      Alcotest.(check bool)
        (Printf.sprintf "--help carries %s's one-line summary" name)
        true
        (has_sub ~sub:(Harness.Cli_spec.summary name) help))
    Harness.Cli_spec.names;
  (* the generated usage block is itself built from the same list *)
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " in usage") true
      (has_sub ~sub:name (Harness.Cli_spec.usage ())))
    Harness.Cli_spec.names;
  (* names/summary/usage are all views of the one subs list *)
  Alcotest.(check (list string)) "names is the subs projection"
    (List.map (fun (s : Harness.Cli_spec.sub) -> s.Harness.Cli_spec.name) Harness.Cli_spec.subs)
    Harness.Cli_spec.names;
  List.iter
    (fun (s : Harness.Cli_spec.sub) ->
      Alcotest.(check bool) (s.Harness.Cli_spec.name ^ " has a summary") true
        (String.length s.Harness.Cli_spec.summary > 0))
    Harness.Cli_spec.subs

let suite =
  [
    Alcotest.test_case "metrics windowing" `Quick test_metrics_windowing;
    Alcotest.test_case "metrics observers ignore the window" `Quick test_metrics_subscribe_ignores_window;
    Alcotest.test_case "driver counts only the window" `Quick test_driver_counts_window_only;
    Alcotest.test_case "scenario smoke: headline ordering" `Slow test_scenario_smoke;
    Alcotest.test_case "cli --help lists every subcommand" `Quick test_cli_help_lists_subcommands;
  ]
