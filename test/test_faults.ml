(* Fault-injection subsystem: link drop semantics, registry/partition
   construction, plan edges, injector wiring, invariant checker, and the
   whole-system property that any survivable random plan preserves
   exactly-once FIFO-per-origin commit. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- link cut/restore round trip ---------------------------------------- *)

let test_link_drop_reasons () =
  let engine = Sim.Engine.create () in
  let link = Sim.Link.create engine ~latency:(Sim.Time.of_ms 10) () in
  let delivered = ref 0 in
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      Sim.Link.send link (fun () -> incr delivered);
      (* in flight when the cut lands *)
      Sim.Link.cut link;
      Sim.Link.send link (fun () -> incr delivered);
      (* sent while down *)
      Sim.Link.restore link;
      Sim.Link.send link (fun () -> incr delivered);
      (* after restore: delivered normally *)
      Sim.Engine.run ~until:(Sim.Time.of_ms 50) engine);
  Alcotest.(check int) "one delivery" 1 !delivered;
  Alcotest.(check int) "in-flight drop" 1 (Sim.Link.dropped_cut_count link);
  Alcotest.(check int) "while-down drop" 1 (Sim.Link.dropped_down_count link);
  Alcotest.(check int) "total" 2 (Sim.Link.dropped_count link);
  let drops =
    List.filter_map
      (fun (_, ev) ->
        match ev with Sim.Probe.Link_drop { in_flight } -> Some in_flight | _ -> None)
      (Sim.Probe.events probe)
  in
  (* the down-drop is recorded at send time, the cut-drop when its delivery
     would have fired — hence the order *)
  Alcotest.(check (list bool)) "drop reasons traced" [ false; true ] drops

let test_link_restore_idempotent () =
  let engine = Sim.Engine.create () in
  let link = Sim.Link.create engine ~latency:(Sim.Time.of_ms 1) () in
  Sim.Link.restore link;
  (* restore of an up link is a no-op *)
  Alcotest.(check bool) "still up" true (Sim.Link.is_up link);
  Sim.Link.cut link;
  Sim.Link.cut link;
  Sim.Link.restore link;
  Sim.Link.restore link;
  let delivered = ref 0 in
  Sim.Link.send link (fun () -> incr delivered);
  Sim.Engine.run ~until:(Sim.Time.of_ms 5) engine;
  Alcotest.(check int) "delivers after double cut/restore" 1 !delivered;
  Alcotest.(check int) "nothing dropped" 0 (Sim.Link.dropped_count link)

(* ---- registry + partition construction ---------------------------------- *)

let small_registry engine =
  let reg = Faults.Registry.create () in
  let mk () = Sim.Link.create engine ~latency:(Sim.Time.of_ms 5) () in
  Faults.Registry.register_link reg ~name:"ab" ~site_a:0 ~site_b:1 (mk ());
  Faults.Registry.register_link reg ~name:"bc" ~site_a:1 ~site_b:2 (mk ());
  Faults.Registry.register_link reg ~name:"ca" ~site_a:2 ~site_b:0 (mk ());
  Faults.Registry.register_link reg ~name:"aa" ~site_a:0 ~site_b:0 (mk ());
  reg

let test_partition_cut_set () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  let names side = List.map fst (Faults.Registry.links_crossing reg ~side) in
  (* exactly the links with one endpoint inside the side; internal links
     (both endpoints in, or both out) survive a partition *)
  Alcotest.(check (list string)) "side {0}" [ "ab"; "ca" ] (names [ 0 ]);
  Alcotest.(check (list string)) "side {1}" [ "ab"; "bc" ] (names [ 1 ]);
  Alcotest.(check (list string)) "side {0,1}" [ "bc"; "ca" ] (names [ 0; 1 ]);
  Alcotest.(check (list string)) "whole world: empty cut" [] (names [ 0; 1; 2 ])

let test_registry_errors () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  Alcotest.check_raises "duplicate link" (Invalid_argument "Faults.Registry: duplicate link \"ab\"")
    (fun () ->
      Faults.Registry.register_link reg ~name:"ab" ~site_a:0 ~site_b:1
        (Sim.Link.create engine ~latency:Sim.Time.zero ()));
  Alcotest.check_raises "unknown link" (Invalid_argument "Faults.Registry: unknown link \"zz\"")
    (fun () -> ignore (Faults.Registry.link reg "zz"));
  Alcotest.check_raises "unknown serializer"
    (Invalid_argument "Faults.Registry: unknown serializer \"ser9\"") (fun () ->
      ignore (Faults.Registry.serializer_down reg "ser9"))

let test_injector_partition_round_trip () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  let registry = Stats.Registry.create () in
  let plan =
    Faults.Plan.make
      [
        { Faults.Plan.at = Sim.Time.of_ms 1; action = Faults.Plan.Partition [ 0 ] };
        { Faults.Plan.at = Sim.Time.of_ms 2; action = Faults.Plan.Heal_partition [ 0 ] };
      ]
  in
  let inj = Faults.Injector.arm ~registry engine reg plan in
  let up name = Sim.Link.is_up (Faults.Registry.link reg name) in
  Sim.Engine.run ~until:(Sim.Time.of_us 1500) engine;
  Alcotest.(check bool) "ab cut" false (up "ab");
  Alcotest.(check bool) "ca cut" false (up "ca");
  Alcotest.(check bool) "bc untouched" true (up "bc");
  Alcotest.(check bool) "aa untouched" true (up "aa");
  Sim.Engine.run ~until:(Sim.Time.of_ms 3) engine;
  Alcotest.(check bool) "ab healed" true (up "ab");
  Alcotest.(check bool) "ca healed" true (up "ca");
  Alcotest.(check int) "both events applied" 2 (Faults.Injector.events_applied inj);
  let counter name =
    match Stats.Registry.find registry name with
    | Some (Stats.Registry.Counter n) -> n
    | _ -> Alcotest.failf "counter %s missing" name
  in
  Alcotest.(check int) "cuts counted" 2 (counter "faults.cuts");
  Alcotest.(check int) "heals counted" 2 (counter "faults.heals")

let test_injector_validates_eagerly () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  let plan =
    Faults.Plan.make [ { Faults.Plan.at = Sim.Time.zero; action = Faults.Plan.Cut "nope" } ]
  in
  Alcotest.check_raises "unknown name at arm time"
    (Invalid_argument "Faults.Registry: unknown link \"nope\"") (fun () ->
      ignore (Faults.Injector.arm engine reg plan))

(* ---- plan edges ---------------------------------------------------------- *)

let test_plan_sort_and_heal_time () =
  Alcotest.(check bool) "empty plan" true (Faults.Plan.is_empty (Faults.Plan.make []));
  Alcotest.(check (option int)) "no restorative event" None
    (Option.map Sim.Time.to_us
       (Faults.Plan.last_heal_time
          (Faults.Plan.make
             [
               {
                 Faults.Plan.at = Sim.Time.of_ms 5;
                 action = Faults.Plan.Crash_replica { serializer = "s"; replica = 0 };
               };
             ])));
  let plan =
    Faults.Plan.make
      [
        { Faults.Plan.at = Sim.Time.of_ms 12; action = Faults.Plan.Cut "x" };
        { Faults.Plan.at = Sim.Time.of_ms 10; action = Faults.Plan.Heal "x" };
        { Faults.Plan.at = Sim.Time.of_ms 5; action = Faults.Plan.Cut "x" };
      ]
  in
  Alcotest.(check (list int)) "time-sorted" [ 5; 10; 12 ]
    (List.map (fun (e : Faults.Plan.event) -> Sim.Time.to_ms_float e.at |> int_of_float)
       (Faults.Plan.events plan));
  Alcotest.(check (option int)) "last heal, not last event" (Some 10)
    (Option.map Sim.Time.to_us (Faults.Plan.last_heal_time plan) |> Option.map (fun us -> us / 1000))

let prop_random_plans_always_heal =
  QCheck.Test.make ~name:"random plans heal every cut and reset every spike" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let plan =
        Faults.Plan.random ~seed
          ~link_names:[ "l1"; "l2"; "l3" ]
          ~serializer_names:[ "s0"; "s1" ] ~clock_names:[ "c0" ] ~max_replica_crashes:1
          ~horizon:(Sim.Time.of_ms 100)
      in
      let ends_healed =
        List.fold_left
          (fun acc (e : Faults.Plan.event) ->
            match e.action with
            | Faults.Plan.Cut l -> (l, `Down) :: List.remove_assoc l acc
            | Faults.Plan.Heal l -> (l, `Up) :: List.remove_assoc l acc
            | Faults.Plan.Latency_factor { link; _ } ->
              (link ^ "!", `Down) :: List.remove_assoc (link ^ "!") acc
            | Faults.Plan.Latency_reset link ->
              (link ^ "!", `Up) :: List.remove_assoc (link ^ "!") acc
            | _ -> acc)
          [] (Faults.Plan.events plan)
      in
      List.for_all (fun (_, st) -> st = `Up) ends_healed
      && List.for_all
           (fun (e : Faults.Plan.event) ->
             Sim.Time.compare e.at (Sim.Time.of_ms 100) < 0
             &&
             match e.action with
             | Faults.Plan.Crash_serializer _ -> false (* never the whole chain *)
             | _ -> true)
           (Faults.Plan.events plan))

(* ---- checker ------------------------------------------------------------- *)

let with_events emits =
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      List.iter (fun (us, ev) -> Sim.Probe.emit ~at:(Sim.Time.of_us us) ev) emits);
  Faults.Checker.analyze probe

let commit ser origin oseq = Sim.Probe.Ser_commit { ser; origin; oseq }

let test_checker_clean_stream () =
  let r =
    with_events
      [
        (1, commit 0 1 1);
        (2, commit 0 1 2);
        (3, commit 0 2 1);
        (* gaps are legal: partial replication skips uninterested subtrees *)
        (4, commit 0 1 5);
        (5, Sim.Probe.Sink_emit { dc = 0; ts = 10 });
        (6, Sim.Probe.Sink_emit { dc = 0; ts = 10 });
        (* equal sink ts fine *)
        (7, Sim.Probe.Proxy_apply { dc = 0; src_dc = 1; gear = 0; ts = 4; fallback = false });
        (8, Sim.Probe.Proxy_apply { dc = 0; src_dc = 1; gear = 0; ts = 9; fallback = true });
      ]
  in
  Alcotest.(check bool) "ok" true (Faults.Checker.ok r);
  Alcotest.(check int) "commits" 4 r.Faults.Checker.commits

let test_checker_flags_duplicate_commit () =
  let r = with_events [ (1, commit 0 1 1); (2, commit 0 1 1) ] in
  Alcotest.(check int) "one violation" 1 (List.length r.Faults.Checker.violations);
  (* same oseq at a different serializer is NOT a duplicate *)
  let r2 = with_events [ (1, commit 0 1 1); (2, commit 1 1 1) ] in
  Alcotest.(check bool) "per-serializer scope" true (Faults.Checker.ok r2)

let test_checker_flags_reorder () =
  let r = with_events [ (1, commit 0 1 3); (2, commit 0 1 2) ] in
  Alcotest.(check int) "fifo violation" 1 (List.length r.Faults.Checker.violations);
  let r2 = with_events [ (1, Sim.Probe.Sink_emit { dc = 2; ts = 9 });
                         (2, Sim.Probe.Sink_emit { dc = 2; ts = 8 }) ] in
  Alcotest.(check int) "sink violation" 1 (List.length r2.Faults.Checker.violations)

let test_checker_counts () =
  let r =
    with_events
      [
        (1, Sim.Probe.Fifo_resend { sender = 0; seq = 1 });
        (2, Sim.Probe.Link_drop { in_flight = true });
        (3, Sim.Probe.Link_drop { in_flight = false });
        (4, Sim.Probe.Head_change { ser = 0 });
        (5, Sim.Probe.Proxy_mode { dc = 0; mode = Sim.Probe.Fallback });
        (6, Sim.Probe.Proxy_mode { dc = 0; mode = Sim.Probe.Stream });
      ]
  in
  Alcotest.(check int) "resends" 1 r.Faults.Checker.resends;
  Alcotest.(check int) "drops cut" 1 r.Faults.Checker.drops_cut;
  Alcotest.(check int) "drops down" 1 r.Faults.Checker.drops_down;
  Alcotest.(check int) "head changes" 1 r.Faults.Checker.head_changes;
  Alcotest.(check int) "fallbacks (activations only)" 1 r.Faults.Checker.fallback_activations

(* ---- whole-system property ----------------------------------------------- *)

(* a 3-DC chain deployment under a random (but survivable) plan: whatever
   the plan breaks, every serializer must commit each origin's labels
   exactly once, in FIFO order *)
let run_random_plan ~seed =
  let topo = Harness.Obs.topo3 () in
  let dc_sites = [| 0; 1; 2 |] in
  let n_keys = 24 in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let probe = Sim.Probe.create () in
  let freg = Faults.Registry.create () in
  let spec =
    {
      (Harness.Build.default_spec ~topo ~dc_sites ~rmap) with
      Harness.Build.saturn_config = Some (Harness.Obs.chain_config ~dc_sites);
      serializer_replicas = 2;
    }
  in
  let metrics = Harness.Metrics.create ~registry engine ~topo ~dc_sites in
  Sim.Probe.with_probe probe (fun () ->
      let api, _system = Harness.Build.saturn ~registry ~faults:freg engine spec metrics in
      let plan =
        Faults.Plan.random ~seed
          ~link_names:(Faults.Registry.link_names freg)
          ~serializer_names:(Faults.Registry.serializer_names freg)
          ~clock_names:(Faults.Registry.clock_names freg)
          ~max_replica_crashes:1 (* of 2 replicas: the chain survives *)
          ~horizon:(Sim.Time.of_ms 500)
      in
      let (_ : Faults.Injector.t) = Faults.Injector.arm ~registry engine freg plan in
      let clients = Harness.Driver.make_clients ~dc_sites ~per_dc:2 in
      let syn =
        Workload.Synthetic.create
          { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
          ~rmap ~topo ~dc_sites
      in
      ignore
        (Harness.Driver.run engine api metrics ~clients
           ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Harness.Client.preferred_dc)
           ~warmup:(Sim.Time.of_ms 100) ~measure:(Sim.Time.of_ms 400)
           ~cooldown:(Sim.Time.of_ms 100)));
  Faults.Checker.analyze probe

let prop_random_plan_exactly_once_fifo =
  QCheck.Test.make ~name:"random fault plans preserve exactly-once FIFO-per-origin commit"
    ~count:4
    QCheck.(int_bound 1000)
    (fun seed ->
      let r = run_random_plan ~seed in
      if not (Faults.Checker.ok r) then
        QCheck.Test.fail_reportf "%a" (fun fmt -> Format.fprintf fmt "%a" Faults.Checker.pp) r;
      r.Faults.Checker.commits > 0)

(* the fixed scenario matrix itself stays deterministic and violation-free;
   covers recovery-time plumbing end to end *)
let test_matrix_smoke () =
  let outcomes = Harness.Fault_run.run_matrix ~seed:7 () in
  Alcotest.(check int) "eight runs" 8 (List.length outcomes);
  Alcotest.(check int) "no violations" 0 (Harness.Fault_run.violations outcomes);
  List.iter
    (fun (o : Harness.Fault_run.outcome) ->
      Alcotest.(check bool)
        (o.Harness.Fault_run.scenario ^ "/" ^ o.Harness.Fault_run.system ^ " recovery bounded")
        true
        (o.Harness.Fault_run.recovery_ms >= 0. && o.Harness.Fault_run.recovery_ms < 2000.))
    outcomes;
  let crash_run = List.hd outcomes in
  Alcotest.(check int) "head change healed the chain" 1
    crash_run.Harness.Fault_run.report.Faults.Checker.head_changes

let suite =
  [
    Alcotest.test_case "link drop reasons" `Quick test_link_drop_reasons;
    Alcotest.test_case "link restore idempotent" `Quick test_link_restore_idempotent;
    Alcotest.test_case "partition cut set" `Quick test_partition_cut_set;
    Alcotest.test_case "registry errors" `Quick test_registry_errors;
    Alcotest.test_case "injector partition round trip" `Quick test_injector_partition_round_trip;
    Alcotest.test_case "injector validates eagerly" `Quick test_injector_validates_eagerly;
    Alcotest.test_case "plan sort + heal time" `Quick test_plan_sort_and_heal_time;
    qtest prop_random_plans_always_heal;
    Alcotest.test_case "checker clean stream" `Quick test_checker_clean_stream;
    Alcotest.test_case "checker duplicate commit" `Quick test_checker_flags_duplicate_commit;
    Alcotest.test_case "checker reorder" `Quick test_checker_flags_reorder;
    Alcotest.test_case "checker fault counts" `Quick test_checker_counts;
    qtest prop_random_plan_exactly_once_fifo;
    Alcotest.test_case "scenario matrix smoke" `Slow test_matrix_smoke;
  ]
