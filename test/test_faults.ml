(* Fault-injection subsystem: link drop semantics, registry/partition
   construction, plan edges, injector wiring, invariant checker, and the
   whole-system property that any survivable random plan preserves
   exactly-once FIFO-per-origin commit. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- link cut/restore round trip ---------------------------------------- *)

let test_link_drop_reasons () =
  let engine = Sim.Engine.create () in
  let link = Sim.Link.create engine ~latency:(Sim.Time.of_ms 10) () in
  let delivered = ref 0 in
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      Sim.Link.send link (fun () -> incr delivered);
      (* in flight when the cut lands *)
      Sim.Link.cut link;
      Sim.Link.send link (fun () -> incr delivered);
      (* sent while down *)
      Sim.Link.restore link;
      Sim.Link.send link (fun () -> incr delivered);
      (* after restore: delivered normally *)
      Sim.Engine.run ~until:(Sim.Time.of_ms 50) engine);
  Alcotest.(check int) "one delivery" 1 !delivered;
  Alcotest.(check int) "in-flight drop" 1 (Sim.Link.dropped_cut_count link);
  Alcotest.(check int) "while-down drop" 1 (Sim.Link.dropped_down_count link);
  Alcotest.(check int) "total" 2 (Sim.Link.dropped_count link);
  let drops =
    List.filter_map
      (fun (_, ev) ->
        match ev with Sim.Probe.Link_drop { in_flight } -> Some in_flight | _ -> None)
      (Sim.Probe.events probe)
  in
  (* the down-drop is recorded at send time, the cut-drop when its delivery
     would have fired — hence the order *)
  Alcotest.(check (list bool)) "drop reasons traced" [ false; true ] drops

let test_link_restore_idempotent () =
  let engine = Sim.Engine.create () in
  let link = Sim.Link.create engine ~latency:(Sim.Time.of_ms 1) () in
  Sim.Link.restore link;
  (* restore of an up link is a no-op *)
  Alcotest.(check bool) "still up" true (Sim.Link.is_up link);
  Sim.Link.cut link;
  Sim.Link.cut link;
  Sim.Link.restore link;
  Sim.Link.restore link;
  let delivered = ref 0 in
  Sim.Link.send link (fun () -> incr delivered);
  Sim.Engine.run ~until:(Sim.Time.of_ms 5) engine;
  Alcotest.(check int) "delivers after double cut/restore" 1 !delivered;
  Alcotest.(check int) "nothing dropped" 0 (Sim.Link.dropped_count link)

(* ---- registry + partition construction ---------------------------------- *)

let small_registry engine =
  let reg = Faults.Registry.create () in
  let mk () = Sim.Link.create engine ~latency:(Sim.Time.of_ms 5) () in
  Faults.Registry.register_link reg ~name:"ab" ~site_a:0 ~site_b:1 (mk ());
  Faults.Registry.register_link reg ~name:"bc" ~site_a:1 ~site_b:2 (mk ());
  Faults.Registry.register_link reg ~name:"ca" ~site_a:2 ~site_b:0 (mk ());
  Faults.Registry.register_link reg ~name:"aa" ~site_a:0 ~site_b:0 (mk ());
  reg

let test_partition_cut_set () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  let names side = List.map fst (Faults.Registry.links_crossing reg ~side) in
  (* exactly the links with one endpoint inside the side; internal links
     (both endpoints in, or both out) survive a partition *)
  Alcotest.(check (list string)) "side {0}" [ "ab"; "ca" ] (names [ 0 ]);
  Alcotest.(check (list string)) "side {1}" [ "ab"; "bc" ] (names [ 1 ]);
  Alcotest.(check (list string)) "side {0,1}" [ "bc"; "ca" ] (names [ 0; 1 ]);
  Alcotest.(check (list string)) "whole world: empty cut" [] (names [ 0; 1; 2 ])

let test_registry_errors () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  Alcotest.check_raises "duplicate link" (Invalid_argument "Faults.Registry: duplicate link \"ab\"")
    (fun () ->
      Faults.Registry.register_link reg ~name:"ab" ~site_a:0 ~site_b:1
        (Sim.Link.create engine ~latency:Sim.Time.zero ()));
  Alcotest.check_raises "unknown link" (Invalid_argument "Faults.Registry: unknown link \"zz\"")
    (fun () -> ignore (Faults.Registry.link reg "zz"));
  Alcotest.check_raises "unknown serializer"
    (Invalid_argument "Faults.Registry: unknown serializer \"ser9\"") (fun () ->
      ignore (Faults.Registry.serializer_down reg "ser9"))

let test_injector_partition_round_trip () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  let registry = Stats.Registry.create () in
  let plan =
    Faults.Plan.make
      [
        { Faults.Plan.at = Sim.Time.of_ms 1; action = Faults.Plan.Partition [ 0 ] };
        { Faults.Plan.at = Sim.Time.of_ms 2; action = Faults.Plan.Heal_partition [ 0 ] };
      ]
  in
  let inj = Faults.Injector.arm ~registry engine reg plan in
  let up name = Sim.Link.is_up (Faults.Registry.link reg name) in
  Sim.Engine.run ~until:(Sim.Time.of_us 1500) engine;
  Alcotest.(check bool) "ab cut" false (up "ab");
  Alcotest.(check bool) "ca cut" false (up "ca");
  Alcotest.(check bool) "bc untouched" true (up "bc");
  Alcotest.(check bool) "aa untouched" true (up "aa");
  Sim.Engine.run ~until:(Sim.Time.of_ms 3) engine;
  Alcotest.(check bool) "ab healed" true (up "ab");
  Alcotest.(check bool) "ca healed" true (up "ca");
  Alcotest.(check int) "both events applied" 2 (Faults.Injector.events_applied inj);
  let counter name =
    match Stats.Registry.find registry name with
    | Some (Stats.Registry.Counter n) -> n
    | _ -> Alcotest.failf "counter %s missing" name
  in
  Alcotest.(check int) "cuts counted" 2 (counter "faults.cuts");
  Alcotest.(check int) "heals counted" 2 (counter "faults.heals")

let test_injector_validates_eagerly () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  let plan =
    Faults.Plan.make [ { Faults.Plan.at = Sim.Time.zero; action = Faults.Plan.Cut "nope" } ]
  in
  Alcotest.check_raises "unknown name at arm time"
    (Invalid_argument "Faults.Registry: unknown link \"nope\"") (fun () ->
      ignore (Faults.Injector.arm engine reg plan))

(* ---- plan edges ---------------------------------------------------------- *)

let test_plan_sort_and_heal_time () =
  Alcotest.(check bool) "empty plan" true (Faults.Plan.is_empty (Faults.Plan.make []));
  Alcotest.(check (option int)) "no restorative event" None
    (Option.map Sim.Time.to_us
       (Faults.Plan.last_heal_time
          (Faults.Plan.make
             [
               {
                 Faults.Plan.at = Sim.Time.of_ms 5;
                 action = Faults.Plan.Crash_replica { serializer = "s"; replica = 0 };
               };
             ])));
  let plan =
    Faults.Plan.make
      [
        { Faults.Plan.at = Sim.Time.of_ms 12; action = Faults.Plan.Cut "x" };
        { Faults.Plan.at = Sim.Time.of_ms 10; action = Faults.Plan.Heal "x" };
        { Faults.Plan.at = Sim.Time.of_ms 5; action = Faults.Plan.Cut "x" };
      ]
  in
  Alcotest.(check (list int)) "time-sorted" [ 5; 10; 12 ]
    (List.map (fun (e : Faults.Plan.event) -> Sim.Time.to_ms_float e.at |> int_of_float)
       (Faults.Plan.events plan));
  Alcotest.(check (option int)) "last heal, not last event" (Some 10)
    (Option.map Sim.Time.to_us (Faults.Plan.last_heal_time plan) |> Option.map (fun us -> us / 1000))

let prop_random_plans_always_heal =
  QCheck.Test.make ~name:"random plans heal every cut and reset every spike" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let plan =
        Faults.Plan.random ~seed
          ~link_names:[ "l1"; "l2"; "l3" ]
          ~serializer_names:[ "s0"; "s1" ] ~clock_names:[ "c0" ] ~max_replica_crashes:1
          ~horizon:(Sim.Time.of_ms 100) ()
      in
      let ends_healed =
        List.fold_left
          (fun acc (e : Faults.Plan.event) ->
            match e.action with
            | Faults.Plan.Cut l -> (l, `Down) :: List.remove_assoc l acc
            | Faults.Plan.Heal l -> (l, `Up) :: List.remove_assoc l acc
            | Faults.Plan.Latency_factor { link; _ } ->
              (link ^ "!", `Down) :: List.remove_assoc (link ^ "!") acc
            | Faults.Plan.Latency_reset link ->
              (link ^ "!", `Up) :: List.remove_assoc (link ^ "!") acc
            | _ -> acc)
          [] (Faults.Plan.events plan)
      in
      List.for_all (fun (_, st) -> st = `Up) ends_healed
      && List.for_all
           (fun (e : Faults.Plan.event) ->
             Sim.Time.compare e.at (Sim.Time.of_ms 100) < 0
             &&
             match e.action with
             | Faults.Plan.Crash_serializer _ -> false (* never the whole chain *)
             | _ -> true)
           (Faults.Plan.events plan))

(* ---- reconfiguration plan/injector edges ---------------------------------- *)

let dc_sites3 = [| 0; 1; 2 |]

let switch_event ~at ~graceful =
  {
    Faults.Plan.at;
    action =
      Faults.Plan.Switch_config
        { graceful; config = Harness.Build.backup_config ~dc_sites:dc_sites3 };
  }

let test_switch_plan_not_restorative () =
  let plan = Faults.Plan.make [ switch_event ~at:(Sim.Time.of_ms 5) ~graceful:true ] in
  (* a switch is a migration, not a heal: recovery is not measured from it *)
  Alcotest.(check (option int)) "no heal time" None
    (Option.map Sim.Time.to_us (Faults.Plan.last_heal_time plan));
  Alcotest.(check string) "pp" "t=5000us switch-config graceful\n"
    (Format.asprintf "%a" Faults.Plan.pp plan)

let prop_random_plans_at_most_one_early_switch =
  QCheck.Test.make ~name:"random plans include at most one switch, in the first half" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let plan =
        Faults.Plan.random ~seed ~link_names:[ "l1"; "l2" ] ~serializer_names:[ "s0" ]
          ~clock_names:[] ~max_replica_crashes:1
          ~switch:(Harness.Build.backup_config ~dc_sites:dc_sites3)
          ~horizon:(Sim.Time.of_ms 100) ()
      in
      let switches =
        List.filter_map
          (fun (e : Faults.Plan.event) ->
            match e.action with Faults.Plan.Switch_config _ -> Some e.at | _ -> None)
          (Faults.Plan.events plan)
      in
      List.length switches <= 1
      && List.for_all (fun at -> Sim.Time.compare at (Sim.Time.of_ms 50) < 0) switches)

let test_injector_rejects_switch_without_system () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  (* nothing bound via bind_system: the registry cannot reconfigure *)
  Alcotest.check_raises "switch needs a Saturn system"
    (Invalid_argument "Faults.Injector: switch-config needs a reconfigurable (Saturn) system")
    (fun () ->
      ignore
        (Faults.Injector.arm engine reg
           (Faults.Plan.make [ switch_event ~at:Sim.Time.zero ~graceful:true ])))

let test_injector_e2_names_deferred () =
  let engine = Sim.Engine.create () in
  let reg = small_registry engine in
  (* an epoch-2 name before any switch is a typo and must fail at arm time *)
  Alcotest.check_raises "e2. name without a preceding switch"
    (Invalid_argument "Faults.Registry: unknown link \"e2.ab\"") (fun () ->
      ignore
        (Faults.Injector.arm engine reg
           (Faults.Plan.make [ { Faults.Plan.at = Sim.Time.zero; action = Faults.Plan.Cut "e2.ab" } ])))

(* arm a plan that cuts an epoch-2 tree link after the switch: the name only
   exists once the switch fires, so validation is deferred — and the cut
   then resolves against the new tree's registered link *)
let test_switch_registers_epoch2_pieces () =
  let topo = Harness.Build.topo3 () in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys:8 in
  let engine = Sim.Engine.create () in
  let freg = Faults.Registry.create () in
  let metrics = Harness.Metrics.create engine ~topo ~dc_sites:dc_sites3 in
  let spec =
    {
      (Harness.Build.default_spec ~topo ~dc_sites:dc_sites3 ~rmap) with
      Harness.Build.saturn_config = Some (Harness.Build.chain_config ~dc_sites:dc_sites3);
    }
  in
  let _api, _system = Harness.Build.saturn ~faults:freg engine spec metrics in
  let plan =
    Faults.Plan.make
      [
        switch_event ~at:(Sim.Time.of_ms 10) ~graceful:true;
        { Faults.Plan.at = Sim.Time.of_ms 20; action = Faults.Plan.Cut "e2.tree.s0->s1.data" };
        { Faults.Plan.at = Sim.Time.of_ms 30; action = Faults.Plan.Heal "e2.tree.s0->s1.data" };
      ]
  in
  let inj = Faults.Injector.arm engine freg plan in
  Alcotest.(check bool) "epoch-2 names unknown before the switch" true
    (not (List.exists (fun n -> String.length n > 3 && String.sub n 0 3 = "e2.")
            (Faults.Registry.link_names freg)));
  Sim.Engine.run ~until:(Sim.Time.of_ms 15) engine;
  (* the backup tree's serializers and links are now addressable *)
  Alcotest.(check bool) "e2 serializer registered" true
    (List.mem "e2.ser0" (Faults.Registry.serializer_names freg));
  Alcotest.(check bool) "e2 tree link registered" true
    (List.mem "e2.tree.s0->s1.data" (Faults.Registry.link_names freg));
  Sim.Engine.run ~until:(Sim.Time.of_ms 25) engine;
  Alcotest.(check bool) "deferred cut applied to the new tree" false
    (Sim.Link.is_up (Faults.Registry.link freg "e2.tree.s0->s1.data"));
  Sim.Engine.run ~until:(Sim.Time.of_ms 35) engine;
  Alcotest.(check bool) "healed" true
    (Sim.Link.is_up (Faults.Registry.link freg "e2.tree.s0->s1.data"));
  Alcotest.(check int) "all three events applied" 3 (Faults.Injector.events_applied inj)

let test_double_switch_rejected () =
  let topo = Harness.Build.topo3 () in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys:8 in
  let engine = Sim.Engine.create () in
  let freg = Faults.Registry.create () in
  let metrics = Harness.Metrics.create engine ~topo ~dc_sites:dc_sites3 in
  let spec =
    {
      (Harness.Build.default_spec ~topo ~dc_sites:dc_sites3 ~rmap) with
      Harness.Build.saturn_config = Some (Harness.Build.chain_config ~dc_sites:dc_sites3);
    }
  in
  let _api, _system = Harness.Build.saturn ~faults:freg engine spec metrics in
  Alcotest.check_raises "one switch per plan"
    (Invalid_argument "Faults.Injector: at most one switch-config per plan (one switch per system)")
    (fun () ->
      ignore
        (Faults.Injector.arm engine freg
           (Faults.Plan.make
              [
                switch_event ~at:(Sim.Time.of_ms 1) ~graceful:true;
                switch_event ~at:(Sim.Time.of_ms 2) ~graceful:false;
              ])))

(* ---- checker ------------------------------------------------------------- *)

let with_events emits =
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      List.iter (fun (us, ev) -> Sim.Probe.emit ~at:(Sim.Time.of_us us) ev) emits);
  Faults.Checker.analyze probe

let commit ser origin oseq = Sim.Probe.Ser_commit { ser; origin; oseq; epoch = 0 }
let commit_e epoch ser origin oseq = Sim.Probe.Ser_commit { ser; origin; oseq; epoch }

let forward ?(gear = 0) ~dc ~oseq ~epoch () =
  Sim.Probe.Label_forward { dc; gear; ts = oseq; oseq; inst = epoch; epoch }

let marker = forward ~gear:Saturn.Label.marker_gear

let has_violation r sub =
  let contains s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    go 0
  in
  List.exists (fun (v : Faults.Checker.violation) -> contains v.Faults.Checker.what)
    r.Faults.Checker.violations

let test_checker_clean_stream () =
  let r =
    with_events
      [
        (1, commit 0 1 1);
        (2, commit 0 1 2);
        (3, commit 0 2 1);
        (* gaps are legal: partial replication skips uninterested subtrees *)
        (4, commit 0 1 5);
        (5, Sim.Probe.Sink_emit { dc = 0; ts = 10 });
        (6, Sim.Probe.Sink_emit { dc = 0; ts = 10 });
        (* equal sink ts fine *)
        (7, Sim.Probe.Proxy_apply { dc = 0; src_dc = 1; gear = 0; ts = 4; fallback = false });
        (8, Sim.Probe.Proxy_apply { dc = 0; src_dc = 1; gear = 0; ts = 9; fallback = true });
      ]
  in
  Alcotest.(check bool) "ok" true (Faults.Checker.ok r);
  Alcotest.(check int) "commits" 4 r.Faults.Checker.commits

let test_checker_flags_duplicate_commit () =
  let r = with_events [ (1, commit 0 1 1); (2, commit 0 1 1) ] in
  Alcotest.(check int) "one violation" 1 (List.length r.Faults.Checker.violations);
  (* same oseq at a different serializer is NOT a duplicate *)
  let r2 = with_events [ (1, commit 0 1 1); (2, commit 1 1 1) ] in
  Alcotest.(check bool) "per-serializer scope" true (Faults.Checker.ok r2)

let test_checker_flags_reorder () =
  let r = with_events [ (1, commit 0 1 3); (2, commit 0 1 2) ] in
  Alcotest.(check int) "fifo violation" 1 (List.length r.Faults.Checker.violations);
  let r2 = with_events [ (1, Sim.Probe.Sink_emit { dc = 2; ts = 9 });
                         (2, Sim.Probe.Sink_emit { dc = 2; ts = 8 }) ] in
  Alcotest.(check int) "sink violation" 1 (List.length r2.Faults.Checker.violations)

let test_checker_counts () =
  let r =
    with_events
      [
        (1, Sim.Probe.Fifo_resend { sender = 0; seq = 1 });
        (2, Sim.Probe.Link_drop { in_flight = true });
        (3, Sim.Probe.Link_drop { in_flight = false });
        (4, Sim.Probe.Head_change { ser = 0 });
        (5, Sim.Probe.Proxy_mode { dc = 0; mode = Sim.Probe.Fallback });
        (6, Sim.Probe.Proxy_mode { dc = 0; mode = Sim.Probe.Stream });
      ]
  in
  Alcotest.(check int) "resends" 1 r.Faults.Checker.resends;
  Alcotest.(check int) "drops cut" 1 r.Faults.Checker.drops_cut;
  Alcotest.(check int) "drops down" 1 r.Faults.Checker.drops_down;
  Alcotest.(check int) "head changes" 1 r.Faults.Checker.head_changes;
  Alcotest.(check int) "fallbacks (activations only)" 1 r.Faults.Checker.fallback_activations

(* ---- cross-epoch invariants ----------------------------------------------- *)

let test_checker_epoch_scopes_commit_keys () =
  (* epoch-2 serializer ids and per-origin uid counters restart at 0: the
     same (ser, origin, oseq) in a later epoch is a fresh commit, not a
     duplicate or a FIFO regression *)
  let r =
    with_events
      [ (1, commit_e 0 0 1 1); (2, commit_e 0 0 1 2); (3, commit_e 1 0 1 1); (4, commit_e 1 0 1 2) ]
  in
  Alcotest.(check bool) "ok across epochs" true (Faults.Checker.ok r);
  Alcotest.(check int) "all four commits counted" 4 r.Faults.Checker.commits;
  (* but within one epoch the old rules still bite *)
  let r2 = with_events [ (1, commit_e 1 0 1 1); (2, commit_e 1 0 1 1) ] in
  Alcotest.(check bool) "duplicate within an epoch still flagged" true
    (has_violation r2 "committed twice")

let test_checker_marker_last () =
  (* §6.2: the epoch-change marker must be the last label its origin pushes
     through the old tree *)
  let r =
    with_events
      [
        (1, forward ~dc:1 ~oseq:4 ~epoch:0 ());
        (2, marker ~dc:1 ~oseq:5 ~epoch:0 ());
        (3, forward ~dc:1 ~oseq:6 ~epoch:0 ());
      ]
  in
  Alcotest.(check bool) "old-tree forward after the marker flagged" true
    (has_violation r "after marker");
  (* the same origin continuing on the NEW tree is the intended behaviour *)
  let r2 =
    with_events
      [
        (1, forward ~dc:1 ~oseq:4 ~epoch:0 ());
        (2, marker ~dc:1 ~oseq:5 ~epoch:0 ());
        (3, forward ~dc:1 ~oseq:6 ~epoch:1 ());
        (4, commit_e 1 0 1 6);
      ]
  in
  Alcotest.(check bool) "new-tree labels after the marker are fine" true (Faults.Checker.ok r2);
  let r3 =
    with_events [ (1, marker ~dc:1 ~oseq:5 ~epoch:0 ()); (2, marker ~dc:1 ~oseq:7 ~epoch:0 ()) ]
  in
  Alcotest.(check bool) "duplicate marker flagged" true (has_violation r3 "duplicate epoch-change")

let test_checker_route_monotone_and_duplicate_apply () =
  let r =
    with_events [ (1, forward ~dc:2 ~oseq:1 ~epoch:1 ()); (2, forward ~dc:2 ~oseq:2 ~epoch:0 ()) ]
  in
  Alcotest.(check bool) "route regression flagged" true (has_violation r "route regression");
  let apply ts = Sim.Probe.Proxy_apply { dc = 2; src_dc = 1; gear = 0; ts; fallback = false } in
  let r2 = with_events [ (1, apply 7); (2, apply 7) ] in
  Alcotest.(check bool) "old/new tree race installing a label twice flagged" true
    (has_violation r2 "installed twice")

(* ---- whole-system property ----------------------------------------------- *)

(* a 3-DC chain deployment under a random (but survivable) plan: whatever
   the plan breaks, every serializer must commit each origin's labels
   exactly once, in FIFO order *)
let run_random_plan ~seed =
  let topo = Harness.Obs.topo3 () in
  let dc_sites = [| 0; 1; 2 |] in
  let n_keys = 24 in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let probe = Sim.Probe.create () in
  let freg = Faults.Registry.create () in
  let spec =
    {
      (Harness.Build.default_spec ~topo ~dc_sites ~rmap) with
      Harness.Build.saturn_config = Some (Harness.Obs.chain_config ~dc_sites);
      serializer_replicas = 2;
    }
  in
  let metrics = Harness.Metrics.create ~registry engine ~topo ~dc_sites in
  Sim.Probe.with_probe probe (fun () ->
      let api, _system = Harness.Build.saturn ~registry ~faults:freg engine spec metrics in
      let plan =
        Faults.Plan.random ~seed
          ~link_names:(Faults.Registry.link_names freg)
          ~serializer_names:(Faults.Registry.serializer_names freg)
          ~clock_names:(Faults.Registry.clock_names freg)
          ~max_replica_crashes:1 (* of 2 replicas: the chain survives *)
          ~switch:(Harness.Build.backup_config ~dc_sites)
          ~horizon:(Sim.Time.of_ms 500) ()
      in
      let (_ : Faults.Injector.t) = Faults.Injector.arm ~registry engine freg plan in
      let clients = Harness.Driver.make_clients ~dc_sites ~per_dc:2 in
      let syn =
        Workload.Synthetic.create
          { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
          ~rmap ~topo ~dc_sites
      in
      ignore
        (Harness.Driver.run engine api metrics ~clients
           ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Harness.Client.preferred_dc)
           ~warmup:(Sim.Time.of_ms 100) ~measure:(Sim.Time.of_ms 400)
           ~cooldown:(Sim.Time.of_ms 100)));
  Faults.Checker.analyze probe

(* regression pin: plan seed 877 forces a switch at t=38ms with ~40ms of
   bulk traffic still in flight; the old completion rule adopted C2
   instantly (empty payload table) and the late C1-era payloads then
   applied out of per-origin timestamp order.  The epoch-tag drain
   barrier must hold the switch open until that traffic lands. *)
let test_forced_switch_drain_barrier_seed877 () =
  let r = run_random_plan ~seed:877 in
  if not (Faults.Checker.ok r) then
    Alcotest.failf "%s" (Format.asprintf "%a" Faults.Checker.pp r);
  Alcotest.(check bool) "commits flowed" true (r.Faults.Checker.commits > 0);
  Alcotest.(check int) "one switch" 1 r.Faults.Checker.switches

let prop_random_plan_exactly_once_fifo =
  QCheck.Test.make
    ~name:"random fault plans (incl. epoch switches) preserve exactly-once FIFO-per-origin commit"
    ~count:4
    QCheck.(int_bound 1000)
    (fun seed ->
      let r = run_random_plan ~seed in
      if not (Faults.Checker.ok r) then
        QCheck.Test.fail_reportf "%a" (fun fmt -> Format.fprintf fmt "%a" Faults.Checker.pp) r;
      r.Faults.Checker.commits > 0)

(* the fixed scenario matrix itself stays deterministic and violation-free;
   covers recovery-time plumbing end to end *)
let test_matrix_smoke () =
  let outcomes = Harness.Fault_run.run_matrix ~seed:7 () in
  Alcotest.(check int) "twelve runs" 12 (List.length outcomes);
  Alcotest.(check int) "no violations" 0 (Harness.Fault_run.violations outcomes);
  List.iter
    (fun (o : Harness.Fault_run.outcome) ->
      Alcotest.(check bool)
        (o.Harness.Fault_run.scenario ^ "/" ^ o.Harness.Fault_run.system ^ " recovery bounded")
        true
        (o.Harness.Fault_run.recovery_ms >= 0. && o.Harness.Fault_run.recovery_ms < 2000.))
    outcomes;
  let crash_run = List.hd outcomes in
  Alcotest.(check int) "head change healed the chain" 1
    crash_run.Harness.Fault_run.report.Faults.Checker.head_changes;
  (* every reconfig row records exactly one epoch switch in its trace, and
     the series carries the switch annotation the timeline renders *)
  List.iter
    (fun (o : Harness.Fault_run.outcome) ->
      let s = o.Harness.Fault_run.scenario in
      if String.length s >= 8 && String.equal (String.sub s 0 8) "reconfig" then begin
        Alcotest.(check int) (s ^ " one switch") 1
          o.Harness.Fault_run.report.Faults.Checker.switches;
        Alcotest.(check bool) (s ^ " switch annotated") true
          (List.exists
             (fun (_, n) -> String.length n >= 7 && String.equal (String.sub n 0 7) "switch.")
             (Stats.Series.annotations o.Harness.Fault_run.series))
      end)
    outcomes

let suite =
  [
    Alcotest.test_case "link drop reasons" `Quick test_link_drop_reasons;
    Alcotest.test_case "link restore idempotent" `Quick test_link_restore_idempotent;
    Alcotest.test_case "partition cut set" `Quick test_partition_cut_set;
    Alcotest.test_case "registry errors" `Quick test_registry_errors;
    Alcotest.test_case "injector partition round trip" `Quick test_injector_partition_round_trip;
    Alcotest.test_case "injector validates eagerly" `Quick test_injector_validates_eagerly;
    Alcotest.test_case "plan sort + heal time" `Quick test_plan_sort_and_heal_time;
    qtest prop_random_plans_always_heal;
    Alcotest.test_case "switch plan is not restorative" `Quick test_switch_plan_not_restorative;
    qtest prop_random_plans_at_most_one_early_switch;
    Alcotest.test_case "injector rejects switch without system" `Quick
      test_injector_rejects_switch_without_system;
    Alcotest.test_case "injector defers e2. names" `Quick test_injector_e2_names_deferred;
    Alcotest.test_case "switch registers epoch-2 pieces" `Quick test_switch_registers_epoch2_pieces;
    Alcotest.test_case "double switch rejected" `Quick test_double_switch_rejected;
    Alcotest.test_case "checker epoch-scoped commit keys" `Quick
      test_checker_epoch_scopes_commit_keys;
    Alcotest.test_case "checker marker-last invariant" `Quick test_checker_marker_last;
    Alcotest.test_case "checker route monotonicity + duplicate apply" `Quick
      test_checker_route_monotone_and_duplicate_apply;
    Alcotest.test_case "checker clean stream" `Quick test_checker_clean_stream;
    Alcotest.test_case "checker duplicate commit" `Quick test_checker_flags_duplicate_commit;
    Alcotest.test_case "checker reorder" `Quick test_checker_flags_reorder;
    Alcotest.test_case "checker fault counts" `Quick test_checker_counts;
    Alcotest.test_case "forced-switch drain barrier (seed 877)" `Quick
      test_forced_switch_drain_barrier_seed877;
    qtest prop_random_plan_exactly_once_fifo;
    Alcotest.test_case "scenario matrix smoke" `Slow test_matrix_smoke;
  ]
