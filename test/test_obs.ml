(* Observability layer: registry, probe and smoke-run determinism. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- registry --------------------------------------------------------------- *)

let test_registry_counters () =
  let r = Stats.Registry.create () in
  let c = Stats.Registry.counter r "a.hits" in
  Alcotest.(check int) "fresh counter" 0 (Stats.Registry.counter_value c);
  Stats.Registry.incr c;
  Stats.Registry.incr ~by:4 c;
  Alcotest.(check int) "incremented" 5 (Stats.Registry.counter_value c);
  Alcotest.(check string) "name" "a.hits" (Stats.Registry.counter_name c);
  (* get-or-create: same name is the same counter *)
  let c' = Stats.Registry.counter r "a.hits" in
  Stats.Registry.incr c';
  Alcotest.(check int) "shared" 6 (Stats.Registry.counter_value c)

let test_registry_snapshot () =
  let r = Stats.Registry.create () in
  Stats.Registry.incr ~by:2 (Stats.Registry.counter r "z.count");
  Stats.Registry.set (Stats.Registry.gauge r "a.level") 1.5;
  let snap = Stats.Registry.snapshot r in
  Alcotest.(check (list string)) "name-sorted" [ "a.level"; "z.count" ] (List.map fst snap);
  (match Stats.Registry.find r "z.count" with
  | Some (Stats.Registry.Counter 2) -> ()
  | _ -> Alcotest.fail "z.count should be Counter 2");
  match Stats.Registry.find r "missing" with
  | None -> ()
  | Some _ -> Alcotest.fail "missing name should be absent"

let test_registry_kind_clash () =
  let r = Stats.Registry.create () in
  ignore (Stats.Registry.counter r "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Registry: \"x\" already registered as a counter, not a gauge") (fun () ->
      ignore (Stats.Registry.gauge r "x"))

let test_registry_pull () =
  let r = Stats.Registry.create () in
  let v = ref 0 in
  Stats.Registry.register_pull r "engine.steps" (fun () -> float_of_int !v);
  v := 7;
  (match Stats.Registry.find r "engine.steps" with
  | Some (Stats.Registry.Gauge g) -> Alcotest.(check (float 1e-9)) "sampled now" 7. g
  | _ -> Alcotest.fail "pull gauge should read as a gauge");
  Alcotest.check_raises "duplicate pull"
    (Invalid_argument "Registry: \"engine.steps\" already registered as a pull gauge, not a pull gauge")
    (fun () -> Stats.Registry.register_pull r "engine.steps" (fun () -> 0.))

let test_registry_sum_prefix () =
  let r = Stats.Registry.create () in
  Stats.Registry.incr ~by:3 (Stats.Registry.counter r "proxy.dc0.applied");
  Stats.Registry.incr ~by:4 (Stats.Registry.counter r "proxy.dc1.applied");
  Stats.Registry.incr ~by:9 (Stats.Registry.counter r "sink.dc0.emitted");
  Alcotest.(check int) "proxy total" 7 (Stats.Registry.sum_counters r ~prefix:"proxy.");
  Alcotest.(check int) "no match" 0 (Stats.Registry.sum_counters r ~prefix:"nope.")

(* ---- probe ------------------------------------------------------------------ *)

let test_probe_record_and_digest () =
  let p = Sim.Probe.create () in
  Sim.Probe.install p;
  Alcotest.(check bool) "active" true (Sim.Probe.active ());
  Sim.Probe.emit ~at:(Sim.Time.of_us 5) (Sim.Probe.Engine_step { seq = 0 });
  Sim.Probe.emit ~at:(Sim.Time.of_us 9) (Sim.Probe.Serializer_hop { from_ser = 0; to_ser = 1 });
  Sim.Probe.uninstall ();
  Alcotest.(check bool) "inactive" false (Sim.Probe.active ());
  Alcotest.(check int) "count" 2 (Sim.Probe.count p);
  Alcotest.(check (list (pair string int)))
    "counts by kind"
    [ ("engine_step", 1); ("serializer_hop", 1) ]
    (Sim.Probe.counts_by_kind p);
  (* same events, same digest; one more event, different digest *)
  let q = Sim.Probe.create () in
  Sim.Probe.with_probe q (fun () ->
      Sim.Probe.emit ~at:(Sim.Time.of_us 5) (Sim.Probe.Engine_step { seq = 0 });
      Sim.Probe.emit ~at:(Sim.Time.of_us 9) (Sim.Probe.Serializer_hop { from_ser = 0; to_ser = 1 }));
  Alcotest.(check string) "replayed digest" (Sim.Probe.digest p) (Sim.Probe.digest q);
  Sim.Probe.with_probe q (fun () -> Sim.Probe.emit ~at:(Sim.Time.of_us 11) Sim.Probe.Link_deliver);
  Alcotest.(check bool) "digest moved" false
    (String.equal (Sim.Probe.digest p) (Sim.Probe.digest q))

let test_probe_json_stable () =
  (* the digest hashes this rendering: lock the format *)
  Alcotest.(check string)
    "serializer_hop json" {|{"t":1200,"ev":"serializer_hop","from":0,"to":1}|}
    (Sim.Probe.to_json (Sim.Time.of_us 1200) (Sim.Probe.Serializer_hop { from_ser = 0; to_ser = 1 }));
  Alcotest.(check string)
    "proxy_apply json" {|{"t":7,"ev":"proxy_apply","dc":2,"src":0,"gear":1,"ts":33,"via":"fallback"}|}
    (Sim.Probe.to_json (Sim.Time.of_us 7)
       (Sim.Probe.Proxy_apply { dc = 2; src_dc = 0; gear = 1; ts = 33; fallback = true }));
  Alcotest.(check string)
    "span json"
    {|{"t":42,"ev":"span_begin","kind":"chain","origin":1,"seq":7,"aux":0,"site":2,"peer":-1,"epoch":0}|}
    (Sim.Probe.to_json (Sim.Time.of_us 42)
       (Sim.Probe.Span_begin
          { Sim.Probe.sk = Sim.Probe.Sk_chain; origin = 1; seq = 7; aux = 0; site = 2; peer = -1;
            epoch = 0 }))

let test_probe_unbuffered () =
  let p = Sim.Probe.create ~keep:false () in
  Sim.Probe.with_probe p (fun () ->
      Sim.Probe.emit ~at:Sim.Time.zero Sim.Probe.Link_deliver;
      Sim.Probe.emit ~at:Sim.Time.zero (Sim.Probe.Link_drop { in_flight = false }));
  Alcotest.(check int) "counted" 2 (Sim.Probe.count p);
  Alcotest.(check (list (pair string int)))
    "kinds survive" [ ("link_deliver", 1); ("link_drop", 1) ]
    (Sim.Probe.counts_by_kind p);
  Alcotest.(check int) "no buffered events" 0 (List.length (Sim.Probe.events p));
  (* digest matches a buffered probe over the same stream *)
  let q = Sim.Probe.create () in
  Sim.Probe.with_probe q (fun () ->
      Sim.Probe.emit ~at:Sim.Time.zero Sim.Probe.Link_deliver;
      Sim.Probe.emit ~at:Sim.Time.zero (Sim.Probe.Link_drop { in_flight = false }));
  Alcotest.(check string) "keep-independent digest" (Sim.Probe.digest q) (Sim.Probe.digest p)

let prop_smoke_digest_deterministic =
  QCheck.Test.make ~name:"same-seed smoke runs digest identically" ~count:3
    QCheck.(int_bound 1000)
    (fun seed ->
      let a = Harness.Obs.smoke ~seed () in
      let b = Harness.Obs.smoke ~seed () in
      String.equal a.Harness.Obs.digest b.Harness.Obs.digest
      && a.Harness.Obs.n_events = b.Harness.Obs.n_events)

let test_smoke_counters_nonzero () =
  let r = Harness.Obs.smoke ~seed:42 () in
  let reg = r.Harness.Obs.registry in
  let counter name =
    match Stats.Registry.find reg name with
    | Some (Stats.Registry.Counter n) -> n
    | _ -> Alcotest.failf "counter %s missing" name
  in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " > 0") true (counter name > 0))
    [ "probe.engine_step"; "probe.link_send"; "probe.serializer_hop"; "probe.proxy_apply" ];
  Alcotest.(check bool) "proxies applied" true (Stats.Registry.sum_counters reg ~prefix:"proxy." > 0);
  Alcotest.(check bool) "different seed, different digest" false
    (String.equal r.Harness.Obs.digest (Harness.Obs.smoke ~seed:7 ()).Harness.Obs.digest)

(* ---- metrics window edges --------------------------------------------------- *)

let test_metrics_window_edges () =
  let topo = Sim.Topology.create ~names:[| "a"; "b" |] ~latency_ms:[| [| 0; 10 |]; [| 10; 0 |] |] in
  let engine = Sim.Engine.create () in
  let metrics = Harness.Metrics.create engine ~topo ~dc_sites:[| 0; 1 |] in
  Harness.Metrics.set_window metrics ~start_at:(Sim.Time.of_ms 10) ~end_at:(Sim.Time.of_ms 20);
  let at ms = Sim.Engine.run ~until:(Sim.Time.of_ms ms) engine in
  at 5;
  Alcotest.(check bool) "before window" false (Harness.Metrics.in_window metrics);
  at 10;
  Alcotest.(check bool) "start edge is inside" true (Harness.Metrics.in_window metrics);
  at 15;
  Alcotest.(check bool) "middle" true (Harness.Metrics.in_window metrics);
  at 20;
  Alcotest.(check bool) "end edge is inside" true (Harness.Metrics.in_window metrics);
  at 25;
  Alcotest.(check bool) "after window" false (Harness.Metrics.in_window metrics)

let test_time_infinity () =
  Alcotest.(check bool) "zero < infinity" true
    (Sim.Time.compare Sim.Time.zero Sim.Time.infinity < 0);
  Alcotest.(check bool) "later than an hour" true
    (Sim.Time.compare (Sim.Time.of_sec 3600.) Sim.Time.infinity < 0);
  Alcotest.(check int) "min with infinity" (Sim.Time.to_us (Sim.Time.of_ms 3))
    (Sim.Time.to_us (Sim.Time.min Sim.Time.infinity (Sim.Time.of_ms 3)))

let suite =
  [
    Alcotest.test_case "registry counters" `Quick test_registry_counters;
    Alcotest.test_case "registry snapshot" `Quick test_registry_snapshot;
    Alcotest.test_case "registry kind clash" `Quick test_registry_kind_clash;
    Alcotest.test_case "registry pull gauges" `Quick test_registry_pull;
    Alcotest.test_case "registry sum by prefix" `Quick test_registry_sum_prefix;
    Alcotest.test_case "probe record + digest" `Quick test_probe_record_and_digest;
    Alcotest.test_case "probe json format" `Quick test_probe_json_stable;
    Alcotest.test_case "probe unbuffered mode" `Quick test_probe_unbuffered;
    Alcotest.test_case "smoke counters nonzero" `Slow test_smoke_counters_nonzero;
    qtest prop_smoke_digest_deterministic;
    Alcotest.test_case "metrics window edges" `Quick test_metrics_window_edges;
    Alcotest.test_case "time infinity" `Quick test_time_infinity;
  ]
