(* Unit tests for the remote proxy: stream ordering, the concurrency
   optimization, staging, fallback, watermarks and attach waits. *)

let ulabel ~ts ~src ~key = Saturn.Label.update ~ts:(Sim.Time.of_ms ts) ~src_dc:src ~src_gear:0 ~key
let mlabel ~ts ~src ~dest = Saturn.Label.migration ~ts:(Sim.Time.of_ms ts) ~src_dc:src ~src_gear:0 ~dest_dc:dest

let payload ?(origin = 0.) ?(epoch = 0) label =
  { Saturn.Proxy.label; value = Kvstore.Value.make ~payload:label.Saturn.Label.ts ~size_bytes:2;
    origin_time = Sim.Time.of_sec origin; epoch }

(* proxy with instantaneous staging and an install log *)
type ctx = {
  engine : Sim.Engine.t;
  proxy : Saturn.Proxy.t;
  installed : int list ref; (* label ts of installed payloads, in order *)
  mutable stage_delay : Sim.Time.t;
}

let make_ctx ?(n_dcs = 3) ?(mode = Saturn.Proxy.Stream) () =
  let engine = Sim.Engine.create () in
  let installed = ref [] in
  let ctx_ref = ref None in
  let proxy =
    Saturn.Proxy.create engine ~dc:0 ~n_dcs
      ~stage_update:(fun _ ~k ->
        match !ctx_ref with
        | Some ctx -> Sim.Engine.schedule engine ~delay:ctx.stage_delay k
        | None -> k ())
      ~install_update:(fun p ->
        installed := Sim.Time.to_us p.Saturn.Proxy.label.Saturn.Label.ts :: !installed)
      ~mode ()
  in
  let ctx = { engine; proxy; installed; stage_delay = Sim.Time.zero } in
  ctx_ref := Some ctx;
  ctx

let ts_us ms = ms * 1000

let test_stream_applies_in_order () =
  let ctx = make_ctx () in
  let l1 = ulabel ~ts:10 ~src:1 ~key:1 and l2 = ulabel ~ts:20 ~src:1 ~key:2 in
  Saturn.Proxy.on_payload ctx.proxy (payload l1);
  Saturn.Proxy.on_payload ctx.proxy (payload l2);
  Saturn.Proxy.on_label ctx.proxy l1;
  Saturn.Proxy.on_label ctx.proxy l2;
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "in stream order" [ ts_us 10; ts_us 20 ] (List.rev !(ctx.installed));
  Alcotest.(check int) "applied counter" 2 (Saturn.Proxy.applied_updates ctx.proxy);
  Alcotest.(check bool) "label recorded applied" true (Saturn.Proxy.label_was_applied ctx.proxy l1)

let test_stream_blocks_on_missing_payload () =
  let ctx = make_ctx () in
  let l1 = ulabel ~ts:10 ~src:1 ~key:1 and l2 = ulabel ~ts:20 ~src:2 ~key:2 in
  Saturn.Proxy.on_label ctx.proxy l1;
  Saturn.Proxy.on_label ctx.proxy l2;
  Saturn.Proxy.on_payload ctx.proxy (payload l2);
  Sim.Engine.run ctx.engine;
  (* l2 (larger ts) must wait for l1 which has no payload yet *)
  Alcotest.(check (list int)) "dependent entry held" [] !(ctx.installed);
  Saturn.Proxy.on_payload ctx.proxy (payload l1);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "both released in order" [ ts_us 10; ts_us 20 ] (List.rev !(ctx.installed))

let test_concurrency_optimization () =
  (* Saturn delivers a LARGER ts first: the later-delivered smaller-ts label
     is concurrent and must not wait for the blocked head (§4.3) *)
  let ctx = make_ctx () in
  let head = ulabel ~ts:20 ~src:1 ~key:1 in
  let concurrent = ulabel ~ts:10 ~src:2 ~key:2 in
  Saturn.Proxy.on_label ctx.proxy head;
  (* head has no payload: blocked *)
  Saturn.Proxy.on_label ctx.proxy concurrent;
  Saturn.Proxy.on_payload ctx.proxy (payload concurrent);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "concurrent label applied around the blocked head"
    [ ts_us 10 ] (List.rev !(ctx.installed));
  Alcotest.(check int) "head still pending" 1 (Saturn.Proxy.pending_stream ctx.proxy)

let test_migration_label_fires_hook () =
  let ctx = make_ctx () in
  let hook_fired = ref None in
  Saturn.Proxy.on_migration_applicable ctx.proxy (fun l -> hook_fired := Some l);
  let waited = ref false in
  let m = mlabel ~ts:15 ~src:1 ~dest:0 in
  Saturn.Proxy.wait_for_label ctx.proxy m (fun () -> waited := true);
  Saturn.Proxy.on_label ctx.proxy m;
  Sim.Engine.run ctx.engine;
  Alcotest.(check bool) "hook fired" true (!hook_fired <> None);
  Alcotest.(check bool) "attach waiter released" true !waited;
  (* waiting after application returns immediately *)
  let late = ref false in
  Saturn.Proxy.wait_for_label ctx.proxy m (fun () -> late := true);
  Alcotest.(check bool) "late waiter immediate" true !late

let test_staging_consumes_time () =
  let ctx = make_ctx () in
  ctx.stage_delay <- Sim.Time.of_ms 5;
  let l = ulabel ~ts:10 ~src:1 ~key:1 in
  Saturn.Proxy.on_label ctx.proxy l;
  Saturn.Proxy.on_payload ctx.proxy (payload l);
  Sim.Engine.run ~until:(Sim.Time.of_ms 3) ctx.engine;
  Alcotest.(check (list int)) "not installed while staging" [] !(ctx.installed);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "installed after staging" [ ts_us 10 ] !(ctx.installed)

let test_fallback_ts_order () =
  let ctx = make_ctx ~mode:Saturn.Proxy.Fallback () in
  let l1 = ulabel ~ts:10 ~src:1 ~key:1 in
  let l2 = ulabel ~ts:20 ~src:2 ~key:2 in
  (* payloads arrive out of ts order; the bulk floor of each source reaches
     its own payload's ts, so l1 (ts 10 <= min floor 10) is already stable,
     while l2 (ts 20) must wait for src 1's promise to pass 20 *)
  Saturn.Proxy.on_payload ctx.proxy (payload l2);
  Saturn.Proxy.on_payload ctx.proxy (payload l1);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "only the globally-stable prefix" [ ts_us 10 ] !(ctx.installed);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:1 (Sim.Time.of_ms 30);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "applied in timestamp order" [ ts_us 10; ts_us 20 ]
    (List.rev !(ctx.installed))

let test_fallback_partial_stability () =
  let ctx = make_ctx ~mode:Saturn.Proxy.Fallback () in
  let l1 = ulabel ~ts:10 ~src:1 ~key:1 in
  Saturn.Proxy.on_payload ctx.proxy (payload l1);
  (* only src 1 has promised past 10; src 2 is silent -> not stable *)
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:1 (Sim.Time.of_ms 30);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "held until all sources promise" [] !(ctx.installed);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:2 (Sim.Time.of_ms 12);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "released" [ ts_us 10 ] !(ctx.installed)

let test_wait_for_ts_watermarks () =
  let ctx = make_ctx () in
  let released = ref false in
  Saturn.Proxy.wait_for_ts ctx.proxy (Sim.Time.of_ms 10) (fun () -> released := true);
  Alcotest.(check bool) "blocked initially" false !released;
  (* src1 applies an update with ts 15; src2 only heartbeats *)
  let l = ulabel ~ts:15 ~src:1 ~key:1 in
  Saturn.Proxy.on_payload ctx.proxy (payload l);
  Saturn.Proxy.on_label ctx.proxy l;
  Sim.Engine.run ctx.engine;
  Alcotest.(check bool) "still blocked on src2" false !released;
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:2 (Sim.Time.of_ms 11);
  Alcotest.(check bool) "released once every source passed" true !released

let test_heartbeat_floor_unsafe_with_pending () =
  (* a pending (unstaged) payload with a small ts must hold the effective
     watermark below a later heartbeat *)
  let ctx = make_ctx () in
  ctx.stage_delay <- Sim.Time.of_sec 1.;
  let l = ulabel ~ts:5 ~src:1 ~key:1 in
  Saturn.Proxy.on_payload ctx.proxy (payload l);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:1 (Sim.Time.of_ms 50);
  let wm = Saturn.Proxy.effective_watermark ctx.proxy ~src:1 in
  Alcotest.(check bool) "watermark capped by pending payload" true
    (Sim.Time.compare wm (Sim.Time.of_ms 5) < 0)

let test_epoch_graceful_switch () =
  (* dc2 stays silent so the always-on timestamp sweep cannot install
     anything: the test isolates the label-buffering of the protocol *)
  let ctx = make_ctx ~n_dcs:3 () in
  Saturn.Proxy.start_graceful_switch ctx.proxy ~epoch:1;
  (* a C2 label arrives early and must be buffered *)
  let future = ulabel ~ts:40 ~src:1 ~key:9 in
  Saturn.Proxy.on_payload ctx.proxy (payload future);
  Saturn.Proxy.on_label_next ctx.proxy future;
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "buffered during switch" [] !(ctx.installed);
  Alcotest.(check bool) "switch not complete" false (Saturn.Proxy.switch_complete ctx.proxy);
  (* the other dcs' epoch-change labels flow through C1 *)
  Saturn.Proxy.on_label ctx.proxy (Saturn.Label.epoch_change ~ts:(Sim.Time.of_ms 30) ~src_dc:1 ~epoch:1);
  Saturn.Proxy.on_label ctx.proxy (Saturn.Label.epoch_change ~ts:(Sim.Time.of_ms 31) ~src_dc:2 ~epoch:1);
  Sim.Engine.run ctx.engine;
  Alcotest.(check bool) "switch complete" true (Saturn.Proxy.switch_complete ctx.proxy);
  Alcotest.(check (list int)) "buffered label drained" [ ts_us 40 ] !(ctx.installed);
  (* post-switch C2 labels flow directly *)
  let next = ulabel ~ts:50 ~src:1 ~key:10 in
  Saturn.Proxy.on_payload ctx.proxy (payload next);
  Saturn.Proxy.on_label_next ctx.proxy next;
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "direct after switch" [ ts_us 40; ts_us 50 ] (List.rev !(ctx.installed))

let test_epoch_forced_switch () =
  (* three datacenters so that a silent source (src 2) gates stability *)
  let ctx = make_ctx ~n_dcs:3 () in
  (* C1 broke: fall back to ts order, buffer C2, adopt once the old
     epoch's bulk traffic has drained *)
  let l1 = ulabel ~ts:10 ~src:1 ~key:1 in
  Saturn.Proxy.on_payload ctx.proxy (payload l1);
  Saturn.Proxy.start_forced_switch ctx.proxy ~epoch:1;
  Alcotest.(check bool) "fallback mode" true (Saturn.Proxy.mode ctx.proxy = Saturn.Proxy.Fallback);
  let c2 = ulabel ~ts:30 ~src:1 ~key:2 in
  Saturn.Proxy.on_payload ctx.proxy (payload ~epoch:1 c2);
  Saturn.Proxy.on_label_next ctx.proxy c2;
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "nothing before stability" [] !(ctx.installed);
  (* src 1's barrier is already crossed by c2's tag; src 2 stays silent, so
     an old-epoch heartbeat from it must NOT complete the switch *)
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:1 ~epoch:1 (Sim.Time.of_ms 35);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:2 (Sim.Time.of_ms 35);
  Sim.Engine.run ctx.engine;
  Alcotest.(check bool) "old-epoch heartbeat does not complete" false
    (Saturn.Proxy.switch_complete ctx.proxy);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:2 ~epoch:1 (Sim.Time.of_ms 36);
  Sim.Engine.run ctx.engine;
  Alcotest.(check bool) "adopted C2" true (Saturn.Proxy.switch_complete ctx.proxy);
  Alcotest.(check bool) "back in stream mode" true (Saturn.Proxy.mode ctx.proxy = Saturn.Proxy.Stream);
  Alcotest.(check (list int)) "ts-fallback applied both, no duplicates"
    [ ts_us 10; ts_us 30 ] (List.rev !(ctx.installed))

let test_no_duplicate_install_across_paths () =
  (* a label applied via fallback must not re-install when it later arrives
     in a stream *)
  let ctx = make_ctx ~mode:Saturn.Proxy.Fallback () in
  let l = ulabel ~ts:10 ~src:1 ~key:1 in
  Saturn.Proxy.on_payload ctx.proxy (payload l);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:1 (Sim.Time.of_ms 20);
  Saturn.Proxy.on_heartbeat ctx.proxy ~src:2 (Sim.Time.of_ms 20);
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "applied once via fallback" [ ts_us 10 ] !(ctx.installed);
  Saturn.Proxy.set_mode ctx.proxy Saturn.Proxy.Stream;
  Saturn.Proxy.on_label ctx.proxy l;
  Sim.Engine.run ctx.engine;
  Alcotest.(check (list int)) "no re-install" [ ts_us 10 ] !(ctx.installed)

let suite =
  [
    Alcotest.test_case "stream applies in order" `Quick test_stream_applies_in_order;
    Alcotest.test_case "stream blocks on missing payload" `Quick test_stream_blocks_on_missing_payload;
    Alcotest.test_case "concurrency optimization (§4.3)" `Quick test_concurrency_optimization;
    Alcotest.test_case "migration label applicability" `Quick test_migration_label_fires_hook;
    Alcotest.test_case "staging consumes server time" `Quick test_staging_consumes_time;
    Alcotest.test_case "fallback applies in ts order" `Quick test_fallback_ts_order;
    Alcotest.test_case "fallback needs every source stable" `Quick test_fallback_partial_stability;
    Alcotest.test_case "wait_for_ts watermark release" `Quick test_wait_for_ts_watermarks;
    Alcotest.test_case "heartbeats unsafe over pending payloads" `Quick test_heartbeat_floor_unsafe_with_pending;
    Alcotest.test_case "graceful epoch switch" `Quick test_epoch_graceful_switch;
    Alcotest.test_case "forced epoch switch" `Quick test_epoch_forced_switch;
    Alcotest.test_case "no duplicate installs across paths" `Quick test_no_duplicate_install_across_paths;
  ]
