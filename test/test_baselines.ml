(* Tests for the baseline protocols: eventual, GentleRain, Cure and the
   COPS-style explicit-check system. *)

let fixture ?(n_dcs = 3) ?(n_keys = 16) ?rmap () =
  let engine = Sim.Engine.create () in
  let dc_sites = Array.of_list (Sim.Ec2.first_n n_dcs) in
  let rmap = match rmap with Some r -> r | None -> Kvstore.Replica_map.full ~n_dcs ~n_keys in
  let metrics = Harness.Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites in
  let spec = Harness.Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites ~rmap in
  (engine, dc_sites, spec, metrics)

let v n = Kvstore.Value.make ~payload:n ~size_bytes:2

let test_eventual_visibility_is_bulk_latency () =
  let engine, dc_sites, spec, metrics = fixture () in
  Harness.Metrics.set_window metrics ~start_at:Sim.Time.zero ~end_at:Sim.Time.infinity;
  let api = Harness.Build.eventual engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 1.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  (* visibility at dc1 (NV->NC 37 ms) must be the bulk latency exactly *)
  let s = Harness.Metrics.pair_visibility metrics ~origin:0 ~dest:1 in
  Alcotest.(check int) "one observation" 1 (Stats.Sample.count s);
  let lat = Stats.Sample.mean s in
  if lat < 37.0 || lat > 39.0 then Alcotest.failf "eventual visibility should be ~37ms, got %.1f" lat

let test_gentlerain_visibility_bounded_by_furthest () =
  (* GentleRain's lower bound is the latency to the furthest datacenter
     regardless of the originator (§7.3.1) *)
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:4 () in
  Harness.Metrics.set_window metrics ~start_at:Sim.Time.zero ~end_at:Sim.Time.infinity;
  let api = Harness.Build.gentlerain engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  (* NV -> NC bulk is 37 ms, but dc3 is Ireland: lat(I, NC) = 74 ms, so the
     GST at NC lags ~84ms (Frankfurt not in this 4-dc set; max into NC is I at 74) *)
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  let s = Harness.Metrics.pair_visibility metrics ~origin:0 ~dest:1 in
  Alcotest.(check int) "one observation" 1 (Stats.Sample.count s);
  let lat = Stats.Sample.mean s in
  if lat < 70.0 then
    Alcotest.failf "GentleRain visibility must be gated by the furthest DC (>= ~74ms), got %.1f" lat

let test_cure_visibility_near_direct () =
  (* Cure's lower bound is the direct latency plus a stabilization round *)
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:4 () in
  Harness.Metrics.set_window metrics ~start_at:Sim.Time.zero ~end_at:Sim.Time.infinity;
  let api = Harness.Build.cure engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  let s = Harness.Metrics.pair_visibility metrics ~origin:0 ~dest:1 in
  Alcotest.(check int) "one observation" 1 (Stats.Sample.count s);
  let lat = Stats.Sample.mean s in
  if lat < 37.0 || lat > 60.0 then
    Alcotest.failf "Cure visibility should be direct latency + stabilization, got %.1f" lat

let test_gentlerain_attach_waits_for_gst () =
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  let api = Harness.Build.gentlerain engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let attached_at = ref None in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          (* remote attach right after a fresh local write must wait for the
             destination's stable time to pass the write's timestamp *)
          api.Harness.Api.migrate c ~dest_dc:1 ~k:(fun () ->
              attached_at := Some (Sim.Time.sub (Sim.Engine.now engine) t0))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  match !attached_at with
  | None -> Alcotest.fail "attach never completed"
  | Some d ->
    let ms = Sim.Time.to_ms_float d in
    (* NC's GST lags by max incoming latency (NV 37, O 10 -> 37) + rounds;
       the request itself takes 37 each way; the wait must exceed a plain
       RTT (74) because of stabilization *)
    if ms < 74.0 then Alcotest.failf "GentleRain attach should include a GST wait, got %.1f" ms

let test_eventual_attach_immediate () =
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  let api = Harness.Build.eventual engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let attached_at = ref None in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          api.Harness.Api.migrate c ~dest_dc:1 ~k:(fun () ->
              attached_at := Some (Sim.Time.sub (Sim.Engine.now engine) t0))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  match !attached_at with
  | None -> Alcotest.fail "attach never completed"
  | Some d ->
    let ms = Sim.Time.to_ms_float d in
    if ms > 75.0 then Alcotest.failf "eventual attach is just an RTT (74ms), got %.1f" ms

let test_eunomia_visibility_gated_by_furthest () =
  (* Eunomia's stable time is the min over every remote sequencer's
     announced floor, so — like GentleRain's GST — visibility is gated by
     the furthest datacenter, not the origin *)
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:4 () in
  Harness.Metrics.set_window metrics ~start_at:Sim.Time.zero ~end_at:Sim.Time.infinity;
  let api = Harness.Build.eunomia engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  let s = Harness.Metrics.pair_visibility metrics ~origin:0 ~dest:1 in
  Alcotest.(check int) "one observation" 1 (Stats.Sample.count s);
  let lat = Stats.Sample.mean s in
  if lat < 70.0 then
    Alcotest.failf "Eunomia visibility must be gated by the furthest DC (>= ~74ms), got %.1f" lat

let test_eunomia_attach_waits_for_stable_time () =
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  let api = Harness.Build.eunomia engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let attached_at = ref None in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          api.Harness.Api.migrate c ~dest_dc:1 ~k:(fun () ->
              attached_at := Some (Sim.Time.sub (Sim.Engine.now engine) t0))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  match !attached_at with
  | None -> Alcotest.fail "attach never completed"
  | Some d ->
    let ms = Sim.Time.to_ms_float d in
    (* the destination's stable time must pass the fresh write's timestamp:
       more than the plain 74ms RTT, like GentleRain *)
    if ms < 74.0 then Alcotest.failf "Eunomia attach should include a stabilization wait, got %.1f" ms

let test_eunomia_write_cheaper_than_gentlerain_visibility_equal () =
  (* the point of Eunomia: local update latency stays near the eventual
     baseline because stabilization happens off the client path *)
  let run build =
    let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
    let api = build engine spec metrics in
    let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
    let done_at = ref None in
    api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
        let t0 = Sim.Engine.now engine in
        api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () ->
            done_at := Some (Sim.Time.sub (Sim.Engine.now engine) t0)));
    Sim.Engine.run ~until:(Sim.Time.of_sec 1.) engine;
    api.Harness.Api.stop ();
    Sim.Engine.run engine;
    match !done_at with
    | None -> Alcotest.fail "update never completed"
    | Some d -> Sim.Time.to_us d
  in
  let eunomia = run Harness.Build.eunomia in
  let gentlerain = run Harness.Build.gentlerain in
  if eunomia > gentlerain then
    Alcotest.failf "Eunomia's write path (%dus) should not exceed GentleRain's (%dus)" eunomia
      gentlerain

let test_okapi_visibility_waits_for_ust () =
  (* Okapi's universal stable time needs a stabilization round after the
     payload lands, so visibility exceeds the bulk latency *)
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  Harness.Metrics.set_window metrics ~start_at:Sim.Time.zero ~end_at:Sim.Time.infinity;
  let api = Harness.Build.okapi engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () -> ()));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  let s = Harness.Metrics.pair_visibility metrics ~origin:0 ~dest:1 in
  Alcotest.(check int) "one observation" 1 (Stats.Sample.count s);
  let lat = Stats.Sample.mean s in
  (* bulk NV->NC is 37ms; the UST must additionally carry every matrix
     row's floor across the mesh before the update is exposed *)
  if lat < 37.0 then
    Alcotest.failf "Okapi visibility cannot beat the bulk latency, got %.1f" lat;
  if lat < 40.0 then
    Alcotest.failf "Okapi visibility should include a stabilization round, got %.1f" lat

let test_okapi_attach_waits_for_ust () =
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  let api = Harness.Build.okapi engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let attached_at = ref None in
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () ->
          let t0 = Sim.Engine.now engine in
          api.Harness.Api.migrate c ~dest_dc:1 ~k:(fun () ->
              attached_at := Some (Sim.Time.sub (Sim.Engine.now engine) t0))));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  match !attached_at with
  | None -> Alcotest.fail "attach never completed"
  | Some d ->
    let ms = Sim.Time.to_ms_float d in
    if ms < 74.0 then Alcotest.failf "Okapi attach should include a UST wait, got %.1f" ms

let test_cops_dependency_growth () =
  (* pruning on: tiny contexts; pruning off (the only sound option under
     partial replication): contexts grow with the read history *)
  let run ~prune_on_write =
    let engine, dc_sites, spec, metrics = fixture ~n_keys:32 () in
    let api, cops = Harness.Build.cops engine spec metrics ~prune_on_write in
    let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
    let rec ops i k = if i = 0 then k () else begin
        api.Harness.Api.update c ~key:(i mod 32) ~value:(v i) ~k:(fun () ->
            api.Harness.Api.read c ~key:((i + 7) mod 32) ~k:(fun _ -> ops (i - 1) k))
      end
    in
    api.Harness.Api.attach c ~dc:0 ~k:(fun () -> ops 40 (fun () -> ()));
    Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
    api.Harness.Api.stop ();
    Sim.Engine.run engine;
    Baselines.Cops.mean_dependency_size cops
  in
  let pruned = run ~prune_on_write:true in
  let unpruned = run ~prune_on_write:false in
  if pruned > 3.0 then Alcotest.failf "pruned contexts should stay tiny, got %.1f" pruned;
  if unpruned < 2. *. pruned then
    Alcotest.failf "unpruned contexts should grow (pruned %.1f vs unpruned %.1f)" pruned unpruned

let test_cops_checks_dependencies () =
  (* an update must not become visible before a dependency it can check *)
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  let order = ref [] in
  Harness.Metrics.subscribe metrics (fun ~dc ~key ~origin_dc:_ ~origin_time:_ ~value:_ ->
      if dc = 2 then order := key :: !order);
  let api, _ = Harness.Build.cops engine spec metrics ~prune_on_write:false in
  let c0 = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let c1 = Harness.Client.create ~id:1 ~home_site:dc_sites.(1) ~preferred_dc:1 in
  api.Harness.Api.attach c0 ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c0 ~key:1 ~value:(v 11) ~k:(fun () -> ()));
  let rec poll () =
    api.Harness.Api.read c1 ~key:1 ~k:(fun r ->
        match r with
        | Some _ -> api.Harness.Api.update c1 ~key:2 ~value:(v 22) ~k:(fun () -> ())
        | None -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 5) poll)
  in
  api.Harness.Api.attach c1 ~dc:1 ~k:poll;
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  match List.rev !order with
  | [ 1; 2 ] -> ()
  | other ->
    Alcotest.failf "expected key1 then key2 at dc2, got [%s]"
      (String.concat ";" (List.map string_of_int other))

let test_orbe_dependency_order () =
  (* the causal chain must hold under explicit matrix checking *)
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 () in
  let order = ref [] in
  Harness.Metrics.subscribe metrics (fun ~dc ~key ~origin_dc:_ ~origin_time:_ ~value:_ ->
      if dc = 2 then order := key :: !order);
  let api, orbe = Harness.Build.orbe engine spec metrics in
  let c0 = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  let c1 = Harness.Client.create ~id:1 ~home_site:dc_sites.(1) ~preferred_dc:1 in
  api.Harness.Api.attach c0 ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c0 ~key:1 ~value:(v 11) ~k:(fun () -> ()));
  let rec poll () =
    api.Harness.Api.read c1 ~key:1 ~k:(fun r ->
        match r with
        | Some _ -> api.Harness.Api.update c1 ~key:2 ~value:(v 22) ~k:(fun () -> ())
        | None -> Sim.Engine.schedule engine ~delay:(Sim.Time.of_ms 5) poll)
  in
  api.Harness.Api.attach c1 ~dc:1 ~k:poll;
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  (match List.rev !order with
  | [ 1; 2 ] -> ()
  | other ->
    Alcotest.failf "expected key1 then key2 at dc2, got [%s]"
      (String.concat ";" (List.map string_of_int other)));
  Alcotest.(check int) "nothing stuck under full replication" 0
    (Baselines.Orbe.blocked_updates orbe ~dc:2);
  Alcotest.(check bool) "matrix metadata shipped" true (Baselines.Orbe.mean_matrix_entries orbe > 0.)

let test_orbe_blocks_under_partial_replication () =
  (* the Table 2 "no partial replication" row, demonstrated: a dependency on
     a partition whose updates never reach dc2 wedges the dependent update *)
  let n_keys = 16 in
  let rmap =
    Kvstore.Replica_map.create ~n_dcs:3 ~n_keys ~assign:(fun key ->
        if key = 1 then [ 0; 1 ] (* key 1 never reaches dc2 *) else [ 0; 1; 2 ])
  in
  let engine, dc_sites, spec, metrics = fixture ~n_dcs:3 ~rmap () in
  let api, orbe = Harness.Build.orbe engine spec metrics in
  let c = Harness.Client.create ~id:0 ~home_site:dc_sites.(0) ~preferred_dc:0 in
  (* write key 1 (not at dc2), then a dependent write on key 0 (everywhere):
     dc2 can never satisfy the dependency matrix *)
  api.Harness.Api.attach c ~dc:0 ~k:(fun () ->
      api.Harness.Api.update c ~key:1 ~value:(v 1) ~k:(fun () ->
          api.Harness.Api.update c ~key:0 ~value:(v 2) ~k:(fun () -> ())));
  Sim.Engine.run ~until:(Sim.Time.of_sec 2.) engine;
  api.Harness.Api.stop ();
  Sim.Engine.run engine;
  Alcotest.(check bool) "dependent update wedged at dc2" true
    (Baselines.Orbe.blocked_updates orbe ~dc:2 > 0)

let suite =
  [
    Alcotest.test_case "eventual: visibility = bulk latency" `Quick test_eventual_visibility_is_bulk_latency;
    Alcotest.test_case "gentlerain: visibility gated by furthest DC" `Quick
      test_gentlerain_visibility_bounded_by_furthest;
    Alcotest.test_case "cure: visibility near direct latency" `Quick test_cure_visibility_near_direct;
    Alcotest.test_case "gentlerain: attach waits for GST" `Quick test_gentlerain_attach_waits_for_gst;
    Alcotest.test_case "eventual: attach is immediate" `Quick test_eventual_attach_immediate;
    Alcotest.test_case "eunomia: visibility gated by furthest DC" `Quick
      test_eunomia_visibility_gated_by_furthest;
    Alcotest.test_case "eunomia: attach waits for stable time" `Quick
      test_eunomia_attach_waits_for_stable_time;
    Alcotest.test_case "eunomia: write path no slower than GentleRain" `Quick
      test_eunomia_write_cheaper_than_gentlerain_visibility_equal;
    Alcotest.test_case "okapi: visibility waits for UST" `Quick test_okapi_visibility_waits_for_ust;
    Alcotest.test_case "okapi: attach waits for UST" `Quick test_okapi_attach_waits_for_ust;
    Alcotest.test_case "cops: dependency metadata growth" `Quick test_cops_dependency_growth;
    Alcotest.test_case "cops: dependency checking order" `Quick test_cops_checks_dependencies;
    Alcotest.test_case "orbe: dependency-matrix order" `Quick test_orbe_dependency_order;
    Alcotest.test_case "orbe: wedges under partial replication" `Quick
      test_orbe_blocks_under_partial_replication;
  ]
