(* Span pairing in the probe, per-label journey decomposition, the
   streaming JSONL sink, and the Chrome trace-event export. *)

let us = Sim.Time.of_us

(* ---- span pairing ---------------------------------------------------------- *)

let test_span_matching () =
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      (* two overlapping spans of different kinds, one nested pair of the
         same kind at different sites *)
      Sim.Span.begin_ ~at:(us 100) Sim.Span.Sk_chain ~origin:0 ~seq:1 ~aux:0 ~site:1;
      Sim.Span.begin_ ~at:(us 150) Sim.Span.Sk_hop ~origin:0 ~seq:1 ~aux:0 ~site:1 ~peer:2;
      Sim.Span.end_ ~at:(us 300) Sim.Span.Sk_chain ~origin:0 ~seq:1 ~aux:0 ~site:1;
      Sim.Span.begin_ ~at:(us 300) Sim.Span.Sk_chain ~origin:0 ~seq:1 ~aux:0 ~site:2;
      Sim.Span.end_ ~at:(us 450) Sim.Span.Sk_hop ~origin:0 ~seq:1 ~aux:0 ~site:1 ~peer:2;
      Sim.Span.end_ ~at:(us 460) Sim.Span.Sk_chain ~origin:0 ~seq:1 ~aux:0 ~site:2);
  Alcotest.(check (list (pair string int)))
    "totals"
    [ ("chain", 360); ("hop", 300) ]
    (Sim.Probe.span_totals_us probe);
  Alcotest.(check (list (pair string int)))
    "pair counts"
    [ ("chain", 2); ("hop", 1) ]
    (Sim.Probe.span_counts probe);
  Alcotest.(check int) "no orphans" 0 (Sim.Probe.span_orphans probe);
  Alcotest.(check int) "none open" 0 (Sim.Probe.open_span_count probe)

let test_duplicate_begin_first_wins () =
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      Sim.Span.begin_ ~at:(us 100) Sim.Span.Sk_bulk ~origin:0 ~seq:7 ~site:0 ~peer:1;
      (* a duplicate begin (e.g. a retransmitted message) must not reset
         the span's start time *)
      Sim.Span.begin_ ~at:(us 200) Sim.Span.Sk_bulk ~origin:0 ~seq:7 ~site:0 ~peer:1;
      Sim.Span.end_ ~at:(us 300) Sim.Span.Sk_bulk ~origin:0 ~seq:7 ~site:0 ~peer:1);
  Alcotest.(check (list (pair string int))) "totals" [ ("bulk", 200) ]
    (Sim.Probe.span_totals_us probe)

let test_orphan_end () =
  let probe = Sim.Probe.create () in
  Sim.Probe.with_probe probe (fun () ->
      Sim.Span.end_ ~at:(us 100) Sim.Span.Sk_proxy_order ~origin:1 ~seq:5 ~aux:0 ~site:2;
      Sim.Span.begin_ ~at:(us 200) Sim.Span.Sk_egress ~origin:1 ~seq:5 ~aux:0 ~site:0 ~peer:2);
  Alcotest.(check int) "orphan counted" 1 (Sim.Probe.span_orphans probe);
  Alcotest.(check (list (pair string int))) "no time attributed" []
    (Sim.Probe.span_totals_us probe);
  Alcotest.(check int) "begin left open" 1 (Sim.Probe.open_span_count probe);
  (* both phases still count as probe events under one span.* kind *)
  Alcotest.(check (list (pair string int)))
    "event kinds"
    [ ("span.egress", 1); ("span.proxy_order", 1) ]
    (Sim.Probe.counts_by_kind probe)

(* ---- streaming JSONL sink -------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let test_stream_jsonl () =
  let probe = Sim.Probe.create ~keep:false () in
  let path = Filename.temp_file "spans" ".jsonl" in
  let oc = open_out path in
  Sim.Probe.stream_jsonl probe oc;
  let evs =
    [
      (us 10, Sim.Probe.Sink_emit { dc = 0; ts = 10 });
      (us 20, Sim.Probe.Span_begin { Sim.Probe.sk = Sim.Probe.Sk_sink_hold; origin = 0; seq = 10;
                                     aux = 1; site = 0; peer = -1; epoch = 0 });
      (us 30, Sim.Probe.Span_end { Sim.Probe.sk = Sim.Probe.Sk_sink_hold; origin = 0; seq = 10;
                                   aux = 1; site = 0; peer = -1; epoch = 0 });
    ]
  in
  Sim.Probe.with_probe probe (fun () -> List.iter (fun (at, e) -> Sim.Probe.emit ~at e) evs);
  close_out oc;
  Alcotest.(check (list string))
    "streamed lines match to_json"
    (List.map (fun (at, e) -> Sim.Probe.to_json at e) evs)
    (read_lines path);
  Sys.remove path;
  (* span totals survive keep:false; the buffered export rightly does not *)
  Alcotest.(check (list (pair string int))) "totals on count-only probe" [ ("sink_hold", 10) ]
    (Sim.Probe.span_totals_us probe);
  Alcotest.check_raises "write_jsonl still refuses count-only probes"
    (Invalid_argument "Probe.write_jsonl: probe created with ~keep:false")
    (fun () -> Sim.Probe.write_jsonl probe stdout)

(* ---- smoke-run decomposition ----------------------------------------------- *)

(* one smoke run shared by the decomposition and Chrome tests *)
let smoke = lazy (Harness.Obs.smoke ())

let seg_stat report name =
  List.find
    (fun (s : Harness.Journey.seg_stat) -> Harness.Journey.segment_name s.segment = name)
    report.Harness.Journey.per_segment

let test_smoke_decomposition () =
  let r = Lazy.force smoke in
  let report = Harness.Journey.analyze r.Harness.Obs.probe in
  (match Harness.Journey.check report with
  | Ok () -> ()
  | Error ms ->
    Alcotest.failf "%d journeys fail to tile, e.g. %s" (List.length ms) (List.hd ms));
  Alcotest.(check bool) "journeys reconstructed" true (List.length report.Harness.Journey.journeys > 0);
  (* every journey's segments sum to its measured visibility latency *)
  List.iter
    (fun (j : Harness.Journey.journey) ->
      Alcotest.(check int)
        (Printf.sprintf "dc%d#%d->dc%d tiles" j.origin j.oseq j.dst)
        j.visibility_us j.total_us)
    report.Harness.Journey.journeys;
  (* the scenario's geography guarantees time in these segments *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " accrues time") true ((seg_stat report name).total_us > 0))
    [ "sink_hold"; "hop"; "delay_hop"; "delay_egress"; "proxy_order" ];
  (* the explicit chain forwards through serializers for every journey *)
  Alcotest.(check int) "every journey hops"
    (List.length report.Harness.Journey.journeys)
    (seg_stat report "hop").Harness.Journey.journeys

let test_table_deterministic () =
  let r = Lazy.force smoke in
  let render () = Stats.Table.render (Harness.Journey.table (Harness.Journey.analyze r.Harness.Obs.probe)) in
  Alcotest.(check string) "same trace renders identically" (render ()) (render ())

(* ---- Chrome trace-event export --------------------------------------------- *)

(* a minimal JSON reader — just enough to validate the export without
   adding a JSON dependency *)
type json = Null | Bool of bool | Num of float | Str of string | Arr of json list | Obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "bad JSON at byte %d: %s" !pos msg in
  let peek () = if !pos >= n then fail "eof" else s.[!pos] in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    incr pos
  in
  let lit word v =
    String.iter (fun c -> if peek () <> c then fail word; incr pos) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> incr pos; Buffer.contents b
      | '\\' ->
        incr pos;
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | c -> Buffer.add_char b c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then (incr pos; Obj [])
      else
        let rec members acc =
          let k = parse_string () in
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; members ((k, v) :: acc)
          | '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
          | _ -> fail "object"
        in
        members []
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then (incr pos; Arr [])
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; items (v :: acc)
          | ']' -> incr pos; Arr (List.rev (v :: acc))
          | _ -> fail "array"
        in
        items []
    | '"' -> Str (parse_string ())
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | 'n' -> lit "null" Null
    | _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr pos
      done;
      if !pos = start then fail "value";
      Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let member name = function
  | Obj fields -> (
    match List.assoc_opt name fields with Some v -> v | None -> Alcotest.failf "no %S member" name)
  | _ -> Alcotest.failf "not an object looking up %S" name

let to_str = function Str s -> s | _ -> Alcotest.fail "expected string"
let to_num = function Num f -> f | _ -> Alcotest.fail "expected number"
let to_arr = function Arr l -> l | _ -> Alcotest.fail "expected array"

let is_int f = Float.equal f (Float.round f)

let test_chrome_roundtrip () =
  let r = Lazy.force smoke in
  let path = Filename.temp_file "trace" ".chrome.json" in
  Harness.Chrome.write_file r.Harness.Obs.probe ~path;
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let doc = parse_json raw in
  Alcotest.(check string) "display unit" "ms" (to_str (member "displayTimeUnit" doc));
  let events = to_arr (member "traceEvents" doc) in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  (* exactly one named track per site and per serializer *)
  let tracks =
    List.filter_map
      (fun e ->
        if to_str (member "ph" e) = "M" && to_str (member "name" e) = "thread_name" then
          Some
            ( int_of_float (to_num (member "pid" e)),
              int_of_float (to_num (member "tid" e)),
              to_str (member "name" (member "args" e)) )
        else None)
      events
  in
  Alcotest.(check (list (triple int int string)))
    "one track per site and serializer"
    [ (1, 0, "dc0"); (1, 1, "dc1"); (1, 2, "dc2"); (2, 0, "ser0"); (2, 1, "ser1"); (2, 2, "ser2") ]
    (List.sort compare tracks);
  (* complete events carry integral µs timestamps and non-negative durations *)
  let xs = List.filter (fun e -> to_str (member "ph" e) = "X") events in
  Alcotest.(check bool) "has span slices" true (List.length xs > 0);
  List.iter
    (fun e ->
      let ts = to_num (member "ts" e) and dur = to_num (member "dur" e) in
      if not (is_int ts && is_int dur && dur >= 0. && ts >= 0.) then
        Alcotest.failf "bad X event ts=%f dur=%f" ts dur)
    xs;
  (* every span kind that accrued time in the run appears as a slice *)
  let slice_names = List.sort_uniq compare (List.map (fun e -> to_str (member "name" e)) xs) in
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) (k ^ " sliced") true (List.mem k slice_names))
    (Sim.Probe.span_totals_us r.Harness.Obs.probe)

(* ---- decomposition under faults -------------------------------------------- *)

(* the shared 3-DC chain deployment under a fault plan; returns the probe *)
let run_faulted ~seed ~plan_of =
  let topo = Harness.Obs.topo3 () in
  let dc_sites = [| 0; 1; 2 |] in
  let n_keys = 24 in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let probe = Sim.Probe.create () in
  let freg = Faults.Registry.create () in
  let spec =
    {
      (Harness.Build.default_spec ~topo ~dc_sites ~rmap) with
      Harness.Build.saturn_config = Some (Harness.Obs.chain_config ~dc_sites);
      serializer_replicas = 2;
    }
  in
  let metrics = Harness.Metrics.create ~registry engine ~topo ~dc_sites in
  Sim.Probe.with_probe probe (fun () ->
      let api, _system = Harness.Build.saturn ~registry ~faults:freg engine spec metrics in
      let plan = plan_of freg in
      let (_ : Faults.Injector.t) = Faults.Injector.arm ~registry engine freg plan in
      let clients = Harness.Driver.make_clients ~dc_sites ~per_dc:2 in
      let syn =
        Workload.Synthetic.create
          { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
          ~rmap ~topo ~dc_sites
      in
      ignore
        (Harness.Driver.run engine api metrics ~clients
           ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Harness.Client.preferred_dc)
           ~warmup:(Sim.Time.of_ms 100) ~measure:(Sim.Time.of_ms 400)
           ~cooldown:(Sim.Time.of_ms 300)));
  probe

let check_report probe =
  let report = Harness.Journey.analyze probe in
  (match Harness.Journey.check report with
  | Ok () -> ()
  | Error ms ->
    Alcotest.failf "%d journeys fail to tile under faults, e.g. %s" (List.length ms) (List.hd ms));
  report

(* a transient metadata-tree partition: labels crossing the cut are dropped
   and retransmitted, so spans stretch across the outage — they must still
   tile exactly for every stream-ordered journey *)
let test_decomposition_across_link_cut () =
  let probe =
    run_faulted ~seed:11 ~plan_of:(fun freg ->
        let metadata (name, _) =
          String.length name >= 5
          && (String.sub name 0 5 = "tree." || String.sub name 0 7 = "attach.")
        in
        let cut = List.filter metadata (Faults.Registry.links_crossing freg ~side:[ 2 ]) in
        Alcotest.(check bool) "plan cuts something" true (cut <> []);
        Faults.Plan.make
          (List.concat_map
             (fun (name, _) ->
               [
                 { Faults.Plan.at = Sim.Time.of_ms 250; action = Faults.Plan.Cut name };
                 { Faults.Plan.at = Sim.Time.of_ms 400; action = Faults.Plan.Heal name };
               ])
             cut))
  in
  let report = check_report probe in
  Alcotest.(check bool) "journeys survive the cut" true
    (List.length report.Harness.Journey.journeys > 0)

let prop_decomposition_sums_under_random_plans =
  QCheck.Test.make ~name:"decomposition tiles visibility latency under random survivable plans"
    ~count:3
    QCheck.(int_bound 1000)
    (fun seed ->
      let probe =
        run_faulted ~seed ~plan_of:(fun freg ->
            Faults.Plan.random ~seed
              ~link_names:(Faults.Registry.link_names freg)
              ~serializer_names:(Faults.Registry.serializer_names freg)
              ~clock_names:(Faults.Registry.clock_names freg)
              ~max_replica_crashes:1 ~horizon:(Sim.Time.of_ms 500) ())
      in
      let report = Harness.Journey.analyze probe in
      (match Harness.Journey.check report with
      | Ok () -> ()
      | Error ms ->
        QCheck.Test.fail_reportf "seed %d: %d tiling violations, e.g. %s" seed (List.length ms)
          (List.hd ms));
      List.length report.Harness.Journey.journeys
      + report.Harness.Journey.fallback_applied + report.Harness.Journey.incomplete
      > 0)

let suite =
  [
    Alcotest.test_case "span matching and totals" `Quick test_span_matching;
    Alcotest.test_case "duplicate begin keeps first" `Quick test_duplicate_begin_first_wins;
    Alcotest.test_case "orphaned span end" `Quick test_orphan_end;
    Alcotest.test_case "streaming JSONL sink" `Quick test_stream_jsonl;
    Alcotest.test_case "smoke decomposition tiles exactly" `Slow test_smoke_decomposition;
    Alcotest.test_case "decomposition table deterministic" `Slow test_table_deterministic;
    Alcotest.test_case "Chrome export round-trips" `Slow test_chrome_roundtrip;
    Alcotest.test_case "decomposition across a link cut" `Slow test_decomposition_across_link_cut;
    QCheck_alcotest.to_alcotest prop_decomposition_sums_under_random_plans;
  ]
