(* Tests for Harness.Blame (optimality-gap attribution) and Harness.Diff
   (differential run localization): the optimal matrix is a true all-pairs
   shortest path, every journey's blame parts tile its gap exactly, the
   gap artifacts are deterministic, and the localizers name the first
   diverging window / counter / journey instead of dumping raw diffs. *)

module Blame = Harness.Blame
module Diff = Harness.Diff

(* one smoke run shared across the blame tests *)
let smoke = lazy (Harness.Obs.smoke ())

(* ---- optimal matrix -------------------------------------------------------- *)

let test_optimal_matrix_topo3 () =
  let topo = Harness.Obs.topo3 () in
  let m = Blame.optimal_matrix ~topo ~dc_sites:[| 0; 1; 2 |] ~bulk_factor:1.0 in
  (* topo3 respects the triangle inequality, so optimal = direct *)
  Alcotest.(check (array (array int)))
    "direct latencies in us"
    [| [| 0; 40_000; 90_000 |]; [| 40_000; 0; 50_000 |]; [| 90_000; 50_000; 0 |] |]
    m;
  let m2 = Blame.optimal_matrix ~topo ~dc_sites:[| 0; 1; 2 |] ~bulk_factor:0.5 in
  Alcotest.(check int) "bulk_factor scales the matrix" 20_000 m2.(0).(1)

let test_optimal_matrix_relays () =
  (* a geography that violates the triangle inequality: west->east direct
     is 100ms but relaying through central costs 10+10. Floyd-Warshall
     must find the 20ms floor — the paper's "deviation from optimal"
     baseline, not the direct-link cost *)
  let topo =
    Sim.Topology.create
      ~names:[| "west"; "central"; "east" |]
      ~latency_ms:[| [| 0; 10; 100 |]; [| 10; 0; 10 |]; [| 100; 10; 0 |] |]
  in
  let m = Blame.optimal_matrix ~topo ~dc_sites:[| 0; 1; 2 |] ~bulk_factor:1.0 in
  Alcotest.(check int) "relayed path beats the direct link" 20_000 m.(0).(2);
  Alcotest.(check int) "symmetric" 20_000 m.(2).(0);
  Alcotest.(check int) "diagonal is zero" 0 m.(1).(1)

(* ---- blame tiling on the smoke scenario ------------------------------------ *)

let test_smoke_blame_tiles () =
  let r = Lazy.force smoke in
  let b = r.Harness.Obs.blame in
  (match Blame.check b with
  | Ok () -> ()
  | Error ms -> Alcotest.failf "%d blame mismatches, e.g. %s" (List.length ms) (List.hd ms));
  Alcotest.(check bool) "journeys blamed" true (List.length b.Blame.blamed > 0);
  List.iter
    (fun (bl : Blame.blamed) ->
      Alcotest.(check bool) "gap never negative" true (bl.Blame.gap_us >= 0);
      (* one entry per part, in presentation order, summing exactly to the gap *)
      Alcotest.(check (list string))
        "blame covers every part in order"
        (List.map Blame.part_name Blame.parts)
        (List.map (fun (p, _) -> Blame.part_name p) bl.Blame.blame);
      Alcotest.(check int)
        (Printf.sprintf "dc%d#%d->dc%d parts tile the gap" bl.Blame.j.Harness.Journey.origin
           bl.Blame.j.Harness.Journey.oseq bl.Blame.j.Harness.Journey.dst)
        bl.Blame.gap_us
        (List.fold_left (fun acc (_, us) -> acc + us) 0 bl.Blame.blame))
    b.Blame.blamed;
  (* the scenario's configured delta-delays must surface as culprits *)
  let culprit n =
    List.exists (fun (c : Blame.culprit_stat) -> String.equal c.Blame.culprit n) b.Blame.culprits
  in
  Alcotest.(check bool) "egress delta culprit" true (culprit "delta.s1->dc1");
  Alcotest.(check bool) "hop delta culprit" true (culprit "delta.s0->s1");
  (* topo3's chain rides shortest paths: no route detours *)
  Alcotest.(check bool) "no route culprit on topo3" false (culprit "route.dc0->dc2")

let test_smoke_blame_deterministic () =
  let r = Lazy.force smoke in
  (* re-deriving the report from the same probe must reproduce the digest
     bit-for-bit — the property the CI double-run blame gate leans on *)
  let optimal =
    Blame.optimal_matrix ~topo:(Harness.Obs.topo3 ()) ~dc_sites:[| 0; 1; 2 |] ~bulk_factor:1.0
  in
  let again = Blame.analyze ~optimal (Harness.Journey.analyze r.Harness.Obs.probe) in
  Alcotest.(check string) "digest replays" (Blame.digest r.Harness.Obs.blame) (Blame.digest again);
  Alcotest.(check int) "16 hex digits" 16 (String.length (Blame.digest again))

let test_top_k_and_render () =
  let b = (Lazy.force smoke).Harness.Obs.blame in
  let top = Blame.top_k b ~k:5 in
  Alcotest.(check int) "k journeys" 5 (List.length top);
  let gaps = List.map (fun (bl : Blame.blamed) -> bl.Blame.gap_us) top in
  Alcotest.(check (list int)) "sorted by gap desc" (List.sort (fun a b -> compare b a) gaps) gaps;
  (* the slowest journey's gap is the histogram's max *)
  Alcotest.(check int) "top journey is the max gap"
    (Stats.Hdr.max_value b.Blame.gap_hist)
    (List.hd gaps);
  let j = Blame.render_journey (List.hd top) in
  Alcotest.(check bool) "journey renders its path legs" true (String.length j > 0
    && String.contains j '|');
  let has_sub ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-part table renders" true
    (has_sub ~sub:"sink_hold" (Stats.Table.render (Blame.table b)));
  Alcotest.(check bool) "culprit table renders" true
    (has_sub ~sub:"delta.s1->dc1" (Stats.Table.render (Blame.culprit_table b)));
  Alcotest.(check bool) "full report renders the digest" true
    (has_sub ~sub:(Blame.digest b) (Blame.render ~top:2 b))

let test_fold_counters () =
  let b = (Lazy.force smoke).Harness.Obs.blame in
  let reg = Stats.Registry.create () in
  Blame.fold_counters b reg;
  let v name =
    match Stats.Registry.find reg name with
    | Some (Stats.Registry.Counter n) -> n
    | _ -> Alcotest.failf "counter %s not registered" name
  in
  Alcotest.(check int) "blame.journeys" (List.length b.Blame.blamed) (v "blame.journeys");
  Alcotest.(check int) "blame.gap.us tiles into parts"
    (v "blame.gap.us")
    (List.fold_left
       (fun acc p -> acc + v (Printf.sprintf "blame.part.%s.us" (Blame.part_name p)))
       0 Blame.parts)

(* ---- fault-run gap recovery ------------------------------------------------- *)

let test_gap_recovery_wired () =
  (* gap_recovery_ms mirrors series_recovery_ms but over series.gap_ms:
     a synthetic outcome whose gap series spikes at the fault and returns
     to steady at window 17 answers 150ms after the 700ms heal, even when
     no series.vis_ms was ever registered *)
  let series = Stats.Series.create ~window:(Sim.Time.of_ms 50) () in
  let h = Stats.Series.hist series "series.gap_ms" in
  for i = 0 to 23 do
    Stats.Series.observe h
      ~now:(Sim.Time.of_us ((i * 50_000) + 10_000))
      (if i >= 8 && i < 17 then 100. else 10.)
  done;
  Stats.Series.seal series ~now:(Sim.Time.of_ms 1195);
  let o =
    {
      Harness.Fault_run.scenario = "synthetic";
      system = "saturn";
      ops = 0;
      vis_mean_ms = 0.;
      vis_p99_ms = 0.;
      recovery_ms = 120.;
      report = Faults.Checker.analyze (Sim.Probe.create ());
      digest = "";
      n_events = 0;
      flame = [];
      span_us = [];
      registry = Stats.Registry.create ();
      series;
      fault_at_us = Some 400_000;
      heal_at_us = Some 700_000;
      probe = Sim.Probe.create ();
    }
  in
  Alcotest.(check (option (float 1e-9))) "gap recovery at window 17" (Some 150.)
    (Harness.Fault_run.gap_recovery_ms o);
  Alcotest.(check (option (float 1e-9))) "vis series absent: vis recovery is None" None
    (Harness.Fault_run.series_recovery_ms o)

(* ---- differential localizers ------------------------------------------------ *)

let test_diff_lines () =
  Alcotest.(check bool) "identical" true (Diff.lines "a\nb\n" "a\nb\n" = Diff.Same);
  (match Diff.lines "a\nb\n" "a\nc\n" with
  | Diff.Differs f ->
    Alcotest.(check string) "kind" "line" f.Diff.kind;
    Alcotest.(check string) "first diverging line" "line 2" f.Diff.where;
    Alcotest.(check string) "A side" "b" f.Diff.a;
    Alcotest.(check string) "B side" "c" f.Diff.b
  | Diff.Same -> Alcotest.fail "expected divergence");
  match Diff.lines "a\n" "a\nextra\n" with
  | Diff.Differs f -> Alcotest.(check string) "one-sided tail" "<absent>" f.Diff.a
  | Diff.Same -> Alcotest.fail "expected divergence"

let test_diff_counters () =
  let a = "# comment\nalpha 1\nbeta 2\ngamma 3\n" in
  Alcotest.(check bool) "comments ignored" true (Diff.counters a "alpha 1\nbeta 2\ngamma 3\n" = Diff.Same);
  (match Diff.counters a "alpha 1\nbeta 5\ngamma 3\n" with
  | Diff.Differs f ->
    Alcotest.(check string) "names the drifted counter" "counter beta" f.Diff.where;
    Alcotest.(check string) "A value" "2" f.Diff.a;
    Alcotest.(check string) "B value" "5" f.Diff.b
  | Diff.Same -> Alcotest.fail "expected divergence");
  (* a missing counter is one finding, not a cascade over later lines *)
  match Diff.counters a "alpha 1\ngamma 3\n" with
  | Diff.Differs f ->
    Alcotest.(check string) "missing counter named" "counter beta" f.Diff.where;
    Alcotest.(check string) "absent on B" "<absent>" f.Diff.b
  | Diff.Same -> Alcotest.fail "expected divergence"

let test_diff_series_csv () =
  let a =
    "series.vis_ms,hist,11,550.0,10,1.2,3.4\nseries.vis_ms,hist,12,600.0,10,1.2,3.4\n"
  in
  let b =
    "series.vis_ms,hist,11,550.0,10,1.2,3.4\nseries.vis_ms,hist,12,600.0,10,1.2,9.9\n"
  in
  Alcotest.(check bool) "identical" true (Diff.series_csv a a = Diff.Same);
  match Diff.series_csv a b with
  | Diff.Differs f ->
    Alcotest.(check string) "names series and window"
      "series series.vis_ms window 12 (start 600.0ms)" f.Diff.where
  | Diff.Same -> Alcotest.fail "expected divergence"

let test_diff_journeys () =
  let b = (Lazy.force smoke).Harness.Obs.blame in
  let csv = Blame.gap_csv b in
  Alcotest.(check bool) "gap csv agrees with itself" true (Diff.journeys csv csv = Diff.Same);
  (* perturb one journey's gap field: the localizer must name the journey
     and the exact column, not just a line number *)
  let ls = String.split_on_char '\n' csv in
  let target = List.nth ls 7 in
  let perturbed =
    String.concat "\n"
      (List.map
         (fun l ->
           if l == target then
             match String.split_on_char ',' l with
             | o :: q :: d :: p :: v :: _opt :: rest ->
               String.concat "," (o :: q :: d :: p :: v :: "123456" :: rest)
             | _ -> l
           else l)
         ls)
  in
  match Diff.journeys csv perturbed with
  | Diff.Differs f ->
    let id =
      match String.split_on_char ',' target with
      | o :: q :: d :: _ -> Printf.sprintf "journey dc%s#%s -> dc%s optimal_us" o q d
      | _ -> assert false
    in
    Alcotest.(check string) "names journey and column" id f.Diff.where
  | Diff.Same -> Alcotest.fail "expected divergence"

let test_diff_dispatch_and_render () =
  (* content picks the localizer from the basename *)
  (match Diff.content ~file:"run1/smoke-counters.txt" "a 1\n" "a 2\n" with
  | Diff.Differs f -> Alcotest.(check string) "counters dispatch" "counter" f.Diff.kind
  | Diff.Same -> Alcotest.fail "expected divergence");
  (match Diff.content ~file:"out/series.csv" "s,hist,0,0.0,1\n" "s,hist,0,0.0,2\n" with
  | Diff.Differs f -> Alcotest.(check string) "series dispatch" "series" f.Diff.kind
  | Diff.Same -> Alcotest.fail "expected divergence");
  match Diff.content ~file:"notes.md" "x\n" "y\n" with
  | Diff.Differs f ->
    Alcotest.(check string) "fallback dispatch" "line" f.Diff.kind;
    Alcotest.(check string) "render shows locator and both sides"
      "first divergence at notes.md: line 1\n  A: x\n  B: y" (Diff.render f)
  | Diff.Same -> Alcotest.fail "expected divergence"

let suite =
  [
    Alcotest.test_case "optimal matrix: topo3 direct latencies" `Quick test_optimal_matrix_topo3;
    Alcotest.test_case "optimal matrix: Floyd-Warshall relays" `Quick test_optimal_matrix_relays;
    Alcotest.test_case "smoke blame parts tile every gap" `Slow test_smoke_blame_tiles;
    Alcotest.test_case "blame digest replays bit-for-bit" `Slow test_smoke_blame_deterministic;
    Alcotest.test_case "top-k ordering and rendering" `Slow test_top_k_and_render;
    Alcotest.test_case "blame.* counters tile the gap" `Slow test_fold_counters;
    Alcotest.test_case "gap recovery declines without a fault" `Slow test_gap_recovery_wired;
    Alcotest.test_case "diff: first differing line" `Quick test_diff_lines;
    Alcotest.test_case "diff: counter drift and absence" `Quick test_diff_counters;
    Alcotest.test_case "diff: series window localization" `Quick test_diff_series_csv;
    Alcotest.test_case "diff: journey and column localization" `Quick test_diff_journeys;
    Alcotest.test_case "diff: basename dispatch + render" `Quick test_diff_dispatch_and_render;
  ]
