type t = int

let zero = 0
let infinity = max_int
let of_us n = n
let of_ms n = n * 1_000
let of_sec s = int_of_float (Float.round (s *. 1_000_000.))
let to_us t = t
let to_ms_float t = float_of_int t /. 1_000.
let to_sec_float t = float_of_int t /. 1_000_000.
let add = ( + )
let sub = ( - )
let max (a : t) (b : t) = Stdlib.max a b
let min (a : t) (b : t) = Stdlib.min a b
let compare = Int.compare
let equal = Int.equal

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dus" t
  else if t < 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms_float t)
  else Format.fprintf ppf "%.3fs" (to_sec_float t)

let to_string t = Format.asprintf "%a" pp t
