type mode = Stream | Fallback

type event =
  | Engine_step of { seq : int }
  | Link_send of { size_bytes : int }
  | Link_deliver
  | Link_drop of { in_flight : bool }
  | Fifo_resend of { sender : int; seq : int }
  | Label_forward of { dc : int; ts : int }
  | Serializer_hop of { from_ser : int; to_ser : int }
  | Serializer_deliver of { dc : int }
  | Delay_wait of { serializer : int; us : int }
  | Chain_ack of { seq : int }
  | Ser_commit of { ser : int; origin : int; oseq : int }
  | Head_change of { ser : int }
  | Sink_emit of { dc : int; ts : int }
  | Proxy_apply of { dc : int; src_dc : int; ts : int; fallback : bool }
  | Proxy_mode of { dc : int; mode : mode }
  | Stab_round of { dc : int; gst : int }
  | Vec_advance of { dc : int; src : int; ts : int }

let kind = function
  | Engine_step _ -> "engine_step"
  | Link_send _ -> "link_send"
  | Link_deliver -> "link_deliver"
  | Link_drop _ -> "link_drop"
  | Fifo_resend _ -> "fifo_resend"
  | Label_forward _ -> "label_forward"
  | Serializer_hop _ -> "serializer_hop"
  | Serializer_deliver _ -> "serializer_deliver"
  | Delay_wait _ -> "delay_wait"
  | Chain_ack _ -> "chain_ack"
  | Ser_commit _ -> "ser_commit"
  | Head_change _ -> "head_change"
  | Sink_emit _ -> "sink_emit"
  | Proxy_apply _ -> "proxy_apply"
  | Proxy_mode _ -> "proxy_mode"
  | Stab_round _ -> "stab_round"
  | Vec_advance _ -> "vec_advance"

let mode_string = function Stream -> "stream" | Fallback -> "fallback"

let to_json at ev =
  let t = Time.to_us at in
  match ev with
  | Engine_step { seq } -> Printf.sprintf {|{"t":%d,"ev":"engine_step","seq":%d}|} t seq
  | Link_send { size_bytes } -> Printf.sprintf {|{"t":%d,"ev":"link_send","bytes":%d}|} t size_bytes
  | Link_deliver -> Printf.sprintf {|{"t":%d,"ev":"link_deliver"}|} t
  | Link_drop { in_flight } ->
    Printf.sprintf {|{"t":%d,"ev":"link_drop","why":"%s"}|} t (if in_flight then "cut" else "down")
  | Fifo_resend { sender; seq } ->
    Printf.sprintf {|{"t":%d,"ev":"fifo_resend","sender":%d,"seq":%d}|} t sender seq
  | Label_forward { dc; ts } -> Printf.sprintf {|{"t":%d,"ev":"label_forward","dc":%d,"ts":%d}|} t dc ts
  | Serializer_hop { from_ser; to_ser } ->
    Printf.sprintf {|{"t":%d,"ev":"serializer_hop","from":%d,"to":%d}|} t from_ser to_ser
  | Serializer_deliver { dc } -> Printf.sprintf {|{"t":%d,"ev":"serializer_deliver","dc":%d}|} t dc
  | Delay_wait { serializer; us } ->
    Printf.sprintf {|{"t":%d,"ev":"delay_wait","serializer":%d,"us":%d}|} t serializer us
  | Chain_ack { seq } -> Printf.sprintf {|{"t":%d,"ev":"chain_ack","seq":%d}|} t seq
  | Ser_commit { ser; origin; oseq } ->
    Printf.sprintf {|{"t":%d,"ev":"ser_commit","ser":%d,"origin":%d,"oseq":%d}|} t ser origin oseq
  | Head_change { ser } -> Printf.sprintf {|{"t":%d,"ev":"head_change","ser":%d}|} t ser
  | Sink_emit { dc; ts } -> Printf.sprintf {|{"t":%d,"ev":"sink_emit","dc":%d,"ts":%d}|} t dc ts
  | Proxy_apply { dc; src_dc; ts; fallback } ->
    Printf.sprintf {|{"t":%d,"ev":"proxy_apply","dc":%d,"src":%d,"ts":%d,"via":"%s"}|} t dc src_dc ts
      (if fallback then "fallback" else "stream")
  | Proxy_mode { dc; mode } ->
    Printf.sprintf {|{"t":%d,"ev":"proxy_mode","dc":%d,"mode":"%s"}|} t dc (mode_string mode)
  | Stab_round { dc; gst } -> Printf.sprintf {|{"t":%d,"ev":"stab_round","dc":%d,"gst":%d}|} t dc gst
  | Vec_advance { dc; src; ts } ->
    Printf.sprintf {|{"t":%d,"ev":"vec_advance","dc":%d,"src":%d,"ts":%d}|} t dc src ts

(* FNV-1a, 64-bit: stable across runs, processes and architectures — the
   digest doubles as CI's determinism oracle, so no Hashtbl.hash/Marshal *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

type t = {
  keep : bool;
  mutable items : (Time.t * event) array;
  mutable len : int;
  mutable hash : int64;
  counts : (string, int) Hashtbl.t;
}

let create ?(keep = true) () =
  { keep; items = Array.make 1024 (Time.zero, Link_deliver); len = 0; hash = fnv_offset;
    counts = Hashtbl.create 16 }

let count t = t.len

let record t at ev =
  t.hash <- fnv_string (fnv_string t.hash (to_json at ev)) "\n";
  let k = kind ev in
  Hashtbl.replace t.counts k (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts k));
  if t.keep then begin
    if t.len = Array.length t.items then begin
      let bigger = Array.make (2 * t.len) (Time.zero, Link_deliver) in
      Array.blit t.items 0 bigger 0 t.len;
      t.items <- bigger
    end;
    t.items.(t.len) <- (at, ev)
  end;
  t.len <- t.len + 1

let events t = if not t.keep then [] else List.init t.len (fun i -> t.items.(i))

let counts_by_kind t =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.counts [])

let digest t = Printf.sprintf "%016Lx" t.hash

let iter_jsonl t f =
  if not t.keep then invalid_arg "Probe.write_jsonl: probe created with ~keep:false";
  for i = 0 to t.len - 1 do
    let at, ev = t.items.(i) in
    f (to_json at ev)
  done

let write_jsonl t oc =
  iter_jsonl t (fun line ->
      output_string oc line;
      output_char oc '\n')

(* ---- the global sink ---------------------------------------------------- *)

(* One process-wide sink, Logs-reporter style: instrumentation points all
   over the simulator and the systems built on it stay a single branch on
   the fast path, and nothing has to thread a probe handle through every
   constructor. The simulator is single-threaded; installs are scoped by
   the observability entry points (smoke runs, tests). *)
let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let installed () = !current
let active () = !current <> None

let emit ~at ev = match !current with None -> () | Some t -> record t at ev

let with_probe t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f
