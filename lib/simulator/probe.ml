type mode = Stream | Fallback

type span_kind =
  | Sk_sink_hold
  | Sk_attach
  | Sk_chain
  | Sk_delay_hop
  | Sk_hop
  | Sk_delay_egress
  | Sk_egress
  | Sk_proxy_order
  | Sk_bulk
  | Sk_stab

let span_kind_name = function
  | Sk_sink_hold -> "sink_hold"
  | Sk_attach -> "attach"
  | Sk_chain -> "chain"
  | Sk_delay_hop -> "delay_hop"
  | Sk_hop -> "hop"
  | Sk_delay_egress -> "delay_egress"
  | Sk_egress -> "egress"
  | Sk_proxy_order -> "proxy_order"
  | Sk_bulk -> "bulk"
  | Sk_stab -> "stab"

let span_kinds =
  [ Sk_sink_hold; Sk_attach; Sk_chain; Sk_delay_hop; Sk_hop; Sk_delay_egress; Sk_egress;
    Sk_proxy_order; Sk_bulk; Sk_stab ]

let n_span_kinds = 10

(* dense id per span kind, in [span_kinds] order *)
let span_kind_id = function
  | Sk_sink_hold -> 0
  | Sk_attach -> 1
  | Sk_chain -> 2
  | Sk_delay_hop -> 3
  | Sk_hop -> 4
  | Sk_delay_egress -> 5
  | Sk_egress -> 6
  | Sk_proxy_order -> 7
  | Sk_bulk -> 8
  | Sk_stab -> 9

type span = {
  sk : span_kind;
  origin : int;
  seq : int;
  aux : int;
  site : int;
  peer : int;
  epoch : int;
}

type event =
  | Engine_step of { seq : int }
  | Link_send of { size_bytes : int }
  | Link_deliver
  | Link_drop of { in_flight : bool }
  | Fifo_resend of { sender : int; seq : int }
  | Label_forward of { dc : int; gear : int; ts : int; oseq : int; inst : int; epoch : int }
  | Serializer_hop of { from_ser : int; to_ser : int }
  | Serializer_deliver of { dc : int }
  | Delay_wait of { serializer : int; us : int }
  | Chain_ack of { seq : int }
  | Ser_commit of { ser : int; origin : int; oseq : int; epoch : int }
  | Head_change of { ser : int }
  | Sink_emit of { dc : int; ts : int }
  | Proxy_apply of { dc : int; src_dc : int; gear : int; ts : int; fallback : bool }
  | Proxy_mode of { dc : int; mode : mode }
  | Stab_round of { dc : int; gst : int }
  | Vec_advance of { dc : int; src : int; ts : int }
  | Switch_begin of { epoch : int; graceful : bool }
  | Switch_done of { dc : int; epoch : int }
  | Span_begin of span
  | Span_end of span

(* Interned kind ids: per-event counting bumps a dense [int array] slot
   instead of hashing the kind string. Span begins and ends share one
   "span.<kind>" bucket, matching [kind]. *)
let n_point_kinds = 19
let n_kinds = n_point_kinds + n_span_kinds

let kind_id = function
  | Engine_step _ -> 0
  | Link_send _ -> 1
  | Link_deliver -> 2
  | Link_drop _ -> 3
  | Fifo_resend _ -> 4
  | Label_forward _ -> 5
  | Serializer_hop _ -> 6
  | Serializer_deliver _ -> 7
  | Delay_wait _ -> 8
  | Chain_ack _ -> 9
  | Ser_commit _ -> 10
  | Head_change _ -> 11
  | Sink_emit _ -> 12
  | Proxy_apply _ -> 13
  | Proxy_mode _ -> 14
  | Stab_round _ -> 15
  | Vec_advance _ -> 16
  | Switch_begin _ -> 17
  | Switch_done _ -> 18
  | Span_begin s | Span_end s -> n_point_kinds + span_kind_id s.sk

let kind_names =
  Array.append
    [| "engine_step"; "link_send"; "link_deliver"; "link_drop"; "fifo_resend"; "label_forward";
       "serializer_hop"; "serializer_deliver"; "delay_wait"; "chain_ack"; "ser_commit";
       "head_change"; "sink_emit"; "proxy_apply"; "proxy_mode"; "stab_round"; "vec_advance";
       "switch_begin"; "switch_done" |]
    (Array.of_list (List.map (fun sk -> "span." ^ span_kind_name sk) span_kinds))

let mode_string = function Stream -> "stream" | Fallback -> "fallback"

let span_json t ph { sk; origin; seq; aux; site; peer; epoch } =
  Printf.sprintf
    {|{"t":%d,"ev":"span_%s","kind":"%s","origin":%d,"seq":%d,"aux":%d,"site":%d,"peer":%d,"epoch":%d}|}
    t ph (span_kind_name sk) origin seq aux site peer epoch

let to_json at ev =
  let t = Time.to_us at in
  match ev with
  | Engine_step { seq } -> Printf.sprintf {|{"t":%d,"ev":"engine_step","seq":%d}|} t seq
  | Link_send { size_bytes } -> Printf.sprintf {|{"t":%d,"ev":"link_send","bytes":%d}|} t size_bytes
  | Link_deliver -> Printf.sprintf {|{"t":%d,"ev":"link_deliver"}|} t
  | Link_drop { in_flight } ->
    Printf.sprintf {|{"t":%d,"ev":"link_drop","why":"%s"}|} t (if in_flight then "cut" else "down")
  | Fifo_resend { sender; seq } ->
    Printf.sprintf {|{"t":%d,"ev":"fifo_resend","sender":%d,"seq":%d}|} t sender seq
  | Label_forward { dc; gear; ts; oseq; inst; epoch } ->
    Printf.sprintf
      {|{"t":%d,"ev":"label_forward","dc":%d,"gear":%d,"ts":%d,"oseq":%d,"inst":%d,"epoch":%d}|} t
      dc gear ts oseq inst epoch
  | Serializer_hop { from_ser; to_ser } ->
    Printf.sprintf {|{"t":%d,"ev":"serializer_hop","from":%d,"to":%d}|} t from_ser to_ser
  | Serializer_deliver { dc } -> Printf.sprintf {|{"t":%d,"ev":"serializer_deliver","dc":%d}|} t dc
  | Delay_wait { serializer; us } ->
    Printf.sprintf {|{"t":%d,"ev":"delay_wait","serializer":%d,"us":%d}|} t serializer us
  | Chain_ack { seq } -> Printf.sprintf {|{"t":%d,"ev":"chain_ack","seq":%d}|} t seq
  | Ser_commit { ser; origin; oseq; epoch } ->
    Printf.sprintf {|{"t":%d,"ev":"ser_commit","ser":%d,"origin":%d,"oseq":%d,"epoch":%d}|} t ser
      origin oseq epoch
  | Head_change { ser } -> Printf.sprintf {|{"t":%d,"ev":"head_change","ser":%d}|} t ser
  | Sink_emit { dc; ts } -> Printf.sprintf {|{"t":%d,"ev":"sink_emit","dc":%d,"ts":%d}|} t dc ts
  | Proxy_apply { dc; src_dc; gear; ts; fallback } ->
    Printf.sprintf {|{"t":%d,"ev":"proxy_apply","dc":%d,"src":%d,"gear":%d,"ts":%d,"via":"%s"}|} t
      dc src_dc gear ts
      (if fallback then "fallback" else "stream")
  | Proxy_mode { dc; mode } ->
    Printf.sprintf {|{"t":%d,"ev":"proxy_mode","dc":%d,"mode":"%s"}|} t dc (mode_string mode)
  | Stab_round { dc; gst } -> Printf.sprintf {|{"t":%d,"ev":"stab_round","dc":%d,"gst":%d}|} t dc gst
  | Vec_advance { dc; src; ts } ->
    Printf.sprintf {|{"t":%d,"ev":"vec_advance","dc":%d,"src":%d,"ts":%d}|} t dc src ts
  | Switch_begin { epoch; graceful } ->
    Printf.sprintf {|{"t":%d,"ev":"switch_begin","epoch":%d,"mode":"%s"}|} t epoch
      (if graceful then "graceful" else "forced")
  | Switch_done { dc; epoch } ->
    Printf.sprintf {|{"t":%d,"ev":"switch_done","dc":%d,"epoch":%d}|} t dc epoch
  | Span_begin s -> span_json t "begin" s
  | Span_end s -> span_json t "end" s

(* FNV-1a, 64-bit: stable across runs, processes and architectures — the
   digest doubles as CI's determinism oracle, so no Hashtbl.hash/Marshal *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

type t = {
  keep : bool;
  mutable items : (Time.t * event) array;
  mutable len : int;
  mutable hash : int64;
  counts : int array; (* indexed by [kind_id] *)
  (* span pairing state: lives in the probe (not in [events]) so matched
     totals are available even on count-only (~keep:false) probes, which is
     what bench's flame table runs under *)
  open_spans : (span, Time.t) Hashtbl.t;
  span_us : int array; (* indexed by [span_kind_id] *)
  span_n : int array;
  mutable span_orphans : int;
  mutable stream : out_channel option;
}

let create ?(keep = true) () =
  { keep; items = Array.make 1024 (Time.zero, Link_deliver); len = 0; hash = fnv_offset;
    counts = Array.make n_kinds 0; open_spans = Hashtbl.create 64;
    span_us = Array.make n_span_kinds 0; span_n = Array.make n_span_kinds 0; span_orphans = 0;
    stream = None }

let count t = t.len

let stream_jsonl t oc = t.stream <- Some oc

let record t at ev =
  let line = to_json at ev in
  t.hash <- fnv_string (fnv_string t.hash line) "\n";
  (match t.stream with
  | Some oc ->
    output_string oc line;
    output_char oc '\n'
  | None -> ());
  let kid = kind_id ev in
  t.counts.(kid) <- t.counts.(kid) + 1;
  (match ev with
  | Span_begin s ->
    (* keep the first begin: duplicates (none are expected from the core
       instrumentation) must not reset an open interval *)
    if not (Hashtbl.mem t.open_spans s) then Hashtbl.replace t.open_spans s at
  | Span_end s -> (
    match Hashtbl.find_opt t.open_spans s with
    | Some t0 ->
      Hashtbl.remove t.open_spans s;
      let sid = span_kind_id s.sk in
      t.span_us.(sid) <- t.span_us.(sid) + (Time.to_us at - Time.to_us t0);
      t.span_n.(sid) <- t.span_n.(sid) + 1
    | None -> t.span_orphans <- t.span_orphans + 1)
  | _ -> ());
  if t.keep then begin
    if t.len = Array.length t.items then begin
      let bigger = Array.make (2 * t.len) (Time.zero, Link_deliver) in
      Array.blit t.items 0 bigger 0 t.len;
      t.items <- bigger
    end;
    t.items.(t.len) <- (at, ev)
  end;
  t.len <- t.len + 1

let events t = if not t.keep then [] else List.init t.len (fun i -> t.items.(i))

(* rebuild the historical (name, count) view: nonzero slots only, so
   kinds a run never emitted stay absent, name-sorted *)
let sorted_nonzero names arr =
  let acc = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if arr.(i) <> 0 then acc := (names i, arr.(i)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let span_name_of_id i = span_kind_name (List.nth span_kinds i)
let counts_by_kind t = sorted_nonzero (fun i -> kind_names.(i)) t.counts
let span_totals_us t = sorted_nonzero span_name_of_id t.span_us
let span_counts t = sorted_nonzero span_name_of_id t.span_n
let span_orphans t = t.span_orphans
let open_span_count t = Hashtbl.length t.open_spans

let digest t = Printf.sprintf "%016Lx" t.hash

let iter_jsonl t f =
  if not t.keep then invalid_arg "Probe.write_jsonl: probe created with ~keep:false";
  for i = 0 to t.len - 1 do
    let at, ev = t.items.(i) in
    f (to_json at ev)
  done

let write_jsonl t oc =
  iter_jsonl t (fun line ->
      output_string oc line;
      output_char oc '\n')

(* ---- the global sink ---------------------------------------------------- *)

(* One process-wide sink, Logs-reporter style: instrumentation points all
   over the simulator and the systems built on it stay a single branch on
   the fast path, and nothing has to thread a probe handle through every
   constructor. The simulator is single-threaded; installs are scoped by
   the observability entry points (smoke runs, tests). *)
let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let active () = !current <> None

let emit ~at ev = match !current with None -> () | Some t -> record t at ev

let with_probe t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f
