(** Array-based binary min-heap, polymorphic in the element type.

    The ordering function is supplied at creation time. Used by the event
    queue and by the statistics modules; kept generic so it can be
    property-tested in isolation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element at the top). *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; does not modify the heap. *)

(** Min-heap keyed by a pair of unboxed integers, compared lexicographically
    [(k1, k2)]. Keys are stored in parallel [int array]s so the per-event hot
    path (engine queue, sink/proxy label buffers) touches flat arrays instead
    of chasing per-entry records through a comparison closure. Pushing and
    popping never allocate (beyond amortised array doubling). *)
module Keyed : sig
  type 'a t

  val create : ?capacity:int -> dummy:'a -> unit -> 'a t
  (** [dummy] fills unused slots so popped payloads do not leak. *)

  val size : 'a t -> int
  val is_empty : 'a t -> bool

  val push : 'a t -> k1:int -> k2:int -> 'a -> unit

  val peek : 'a t -> 'a option
  (** Payload of the smallest key without removing it. *)

  val min_k1 : 'a t -> int
  (** Primary key of the smallest entry. @raise Invalid_argument if empty. *)

  val pop : 'a t -> 'a option
  (** Removes and returns the payload of the smallest key. The popped entry's
      keys are readable via {!popped_k1}/{!popped_k2} until the next [pop]. *)

  val pop_exn : 'a t -> 'a
  (** @raise Invalid_argument on an empty heap. *)

  val popped_k1 : 'a t -> int
  val popped_k2 : 'a t -> int
  (** Keys of the most recently popped entry. Unspecified before the first
      successful [pop]. *)

  val clear : 'a t -> unit
end
