type site = int

type t = { names : string array; lat : Time.t array array }

let create ~names ~latency_ms =
  let n = Array.length names in
  if Array.length latency_ms <> n then
    invalid_arg "Topology.create: matrix size does not match names";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Topology.create: non-square matrix";
      Array.iteri
        (fun j v ->
          if i = j && v <> 0 then invalid_arg "Topology.create: non-zero diagonal";
          if v < 0 then invalid_arg "Topology.create: negative latency";
          if latency_ms.(j).(i) <> v then invalid_arg "Topology.create: asymmetric matrix")
        row)
    latency_ms;
  let lat = Array.map (Array.map Time.of_ms) latency_ms in
  { names; lat }

let n_sites t = Array.length t.names
let name t s = t.names.(s)

let site_of_name t n =
  let rec loop i =
    if i >= Array.length t.names then raise Not_found
    else if String.equal t.names.(i) n then i
    else loop (i + 1)
  in
  loop 0

let latency t a b = t.lat.(a).(b)

let sub t chosen =
  let chosen = Array.of_list chosen in
  let n = Array.length chosen in
  let names = Array.map (fun s -> t.names.(s)) chosen in
  let lat = Array.init n (fun i -> Array.init n (fun j -> t.lat.(chosen.(i)).(chosen.(j)))) in
  ({ names; lat }, chosen)

let pp_matrix ppf t =
  let n = n_sites t in
  Format.fprintf ppf "%6s" "";
  for j = 1 to n - 1 do
    Format.fprintf ppf "%8s" t.names.(j)
  done;
  Format.fprintf ppf "@.";
  for i = 0 to n - 2 do
    Format.fprintf ppf "%6s" t.names.(i);
    for j = 1 to n - 1 do
      if j <= i then Format.fprintf ppf "%8s" "-"
      else Format.fprintf ppf "%6dms" (Time.to_us t.lat.(i).(j) / 1000)
    done;
    Format.fprintf ppf "@."
  done
