type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp () = { cmp; data = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let grow h x =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.len && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.data.(0)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.len <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i) :: acc) in
  loop (h.len - 1) []

module Keyed = struct
  (* Keys live in two parallel unboxed [int array]s instead of per-entry
     records, so a push/pop touches flat arrays and never allocates. The
     comparison is fixed lexicographic (k1, k2) — no closure call per
     sift step. *)
  type 'a t = {
    dummy : 'a;
    mutable k1 : int array;
    mutable k2 : int array;
    mutable data : 'a array;
    mutable len : int;
    mutable popped_k1 : int;
    mutable popped_k2 : int;
  }

  let create ?(capacity = 16) ~dummy () =
    let capacity = max capacity 1 in
    { dummy;
      k1 = Array.make capacity 0;
      k2 = Array.make capacity 0;
      data = Array.make capacity dummy;
      len = 0;
      popped_k1 = 0;
      popped_k2 = 0 }

  let size h = h.len
  let is_empty h = h.len = 0

  let grow h =
    let cap = Array.length h.data in
    if h.len = cap then begin
      let ncap = cap * 2 in
      let nk1 = Array.make ncap 0 and nk2 = Array.make ncap 0 in
      let ndata = Array.make ncap h.dummy in
      Array.blit h.k1 0 nk1 0 h.len;
      Array.blit h.k2 0 nk2 0 h.len;
      Array.blit h.data 0 ndata 0 h.len;
      h.k1 <- nk1;
      h.k2 <- nk2;
      h.data <- ndata
    end

  (* true iff entry [i] orders strictly before entry [j] *)
  let lt h i j =
    let a = h.k1.(i) and b = h.k1.(j) in
    a < b || (a = b && h.k2.(i) < h.k2.(j))

  let swap h i j =
    let t1 = h.k1.(i) in
    h.k1.(i) <- h.k1.(j);
    h.k1.(j) <- t1;
    let t2 = h.k2.(i) in
    h.k2.(i) <- h.k2.(j);
    h.k2.(j) <- t2;
    let td = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- td

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt h i parent then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && lt h l !smallest then smallest := l;
    if r < h.len && lt h r !smallest then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h ~k1 ~k2 x =
    grow h;
    let i = h.len in
    h.k1.(i) <- k1;
    h.k2.(i) <- k2;
    h.data.(i) <- x;
    h.len <- i + 1;
    sift_up h i

  let peek h = if h.len = 0 then None else Some h.data.(0)
  let min_k1 h = if h.len = 0 then invalid_arg "Heap.Keyed.min_k1: empty heap" else h.k1.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.popped_k1 <- h.k1.(0);
      h.popped_k2 <- h.k2.(0);
      h.len <- h.len - 1;
      if h.len > 0 then begin
        let n = h.len in
        h.k1.(0) <- h.k1.(n);
        h.k2.(0) <- h.k2.(n);
        h.data.(0) <- h.data.(n);
        h.data.(n) <- h.dummy;
        sift_down h 0
      end
      else h.data.(0) <- h.dummy;
      Some top
    end

  let pop_exn h =
    match pop h with
    | Some x -> x
    | None -> invalid_arg "Heap.Keyed.pop_exn: empty heap"

  let popped_k1 h = h.popped_k1
  let popped_k2 h = h.popped_k2

  let clear h =
    Array.fill h.data 0 h.len h.dummy;
    h.len <- 0
end
