(** Simulated time.

    All simulated time is kept as an integer number of microseconds since the
    start of the run. Integer time keeps the simulator fully deterministic:
    event ordering never depends on floating-point rounding. *)

type t = int
(** Microseconds since simulation start. Always non-negative. *)

val zero : t

val infinity : t
(** A time later than every reachable simulated instant. Use it for
    open-ended measurement windows and as the identity of [min]-folds over
    watermarks/floors, instead of leaking [max_int] through the
    abstraction. [add]ing to it is meaningless. *)

val of_us : int -> t
(** [of_us n] is [n] microseconds. *)

val of_ms : int -> t
(** [of_ms n] is [n] milliseconds. *)

val of_sec : float -> t
(** [of_sec s] is [s] seconds, rounded to the nearest microsecond. *)

val to_us : t -> int
val to_ms_float : t -> float
val to_sec_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t

val max : t -> t -> t
val min : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints a human-readable duration, e.g. ["12.430ms"]. *)

val to_string : t -> string
