type entry = { at : Time.t; component : string; msg : string }

type t = {
  engine : Engine.t;
  capacity : int;
  mutable enabled : bool;
  buf : entry option array;
  mutable next : int;
  mutable count : int;
}

let create ?(capacity = 65536) engine =
  { engine; capacity; enabled = false; buf = Array.make capacity None; next = 0; count = 0 }

let set_enabled t v = t.enabled <- v

let log t ~component msg =
  if t.enabled then begin
    t.buf.(t.next) <- Some { at = Engine.now t.engine; component; msg };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- min (t.count + 1) t.capacity
  end

let entries t =
  let start = if t.count < t.capacity then 0 else t.next in
  let rec loop i acc =
    if i >= t.count then List.rev acc
    else
      let idx = (start + i) mod t.capacity in
      match t.buf.(idx) with
      | None -> loop (i + 1) acc
      | Some e -> loop (i + 1) ((e.at, e.component, e.msg) :: acc)
  in
  loop 0 []

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0
