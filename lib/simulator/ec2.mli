(** The paper's Table 1: measured half-RTT latencies among seven Amazon EC2
    regions. This matrix is the network substrate for every experiment. *)

val topology : Topology.t
(** Sites in order: NV (N. Virginia), NC (N. California), O (Oregon),
    I (Ireland), F (Frankfurt), T (Tokyo), S (Sydney). *)

val nv : Topology.site
val nc : Topology.site
val o : Topology.site
val i : Topology.site
val f : Topology.site
val t : Topology.site
val s : Topology.site

val first_n : int -> Topology.site list
(** The first [n] regions in table order, used by the 3–7 datacenter
    scaling experiments (Fig. 1). *)
