type kind = Probe.span_kind =
  | Sk_sink_hold
  | Sk_attach
  | Sk_chain
  | Sk_delay_hop
  | Sk_hop
  | Sk_delay_egress
  | Sk_egress
  | Sk_proxy_order
  | Sk_bulk
  | Sk_stab

let begin_ ~at ?(aux = -1) ?(site = -1) ?(peer = -1) ?(epoch = 0) sk ~origin ~seq =
  Probe.emit ~at (Probe.Span_begin { Probe.sk; origin; seq; aux; site; peer; epoch })

let end_ ~at ?(aux = -1) ?(site = -1) ?(peer = -1) ?(epoch = 0) sk ~origin ~seq =
  Probe.emit ~at (Probe.Span_end { Probe.sk; origin; seq; aux; site; peer; epoch })
