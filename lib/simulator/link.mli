(** Point-to-point FIFO network link.

    Links model the two transports the paper relies on:
    - the bulk-data transfer service between datacenters, and
    - the FIFO channels connecting serializers and datacenters
      (FIFO order is what makes the tree dissemination causal).

    Delivery time is [now + base latency + jitter + size/bandwidth], but
    never before a previously sent message: FIFO is enforced even under
    jitter. A link can be cut and restored to model partitions; messages in
    flight when the link is cut are dropped, messages sent while the link is
    down are dropped. *)

type t

val create :
  ?jitter_us:int ->
  ?bandwidth_bytes_per_us:float ->
  ?rng:Rng.t ->
  Engine.t ->
  latency:Time.t ->
  unit ->
  t
(** [jitter_us] adds a uniform random [0, jitter_us) component per message
    (requires [rng] when non-zero). [bandwidth_bytes_per_us], when given,
    adds a size-proportional transmission delay. *)

val send : t -> ?size_bytes:int -> (unit -> unit) -> unit
(** Schedules [deliver] on the receiving side after the link delay.
    [size_bytes] defaults to 0 (metadata-sized message). Messages that
    share an arrival instant are delivered by a single engine event
    (batched), in send order; cut/epoch checks still happen per message at
    delivery time, so batching is invisible to fault semantics. *)

val set_latency : t -> Time.t -> unit
(** Changes the base latency for subsequent messages (used by the
    latency-variability experiment, Fig. 6). *)

val latency : t -> Time.t

val cut : t -> unit
(** Take the link down: in-flight and future messages are dropped.
    Idempotent, but each call bumps the epoch, so anything still in flight
    is invalidated again. *)

val restore : t -> unit
(** Bring the link back up. Messages sent after the restore are delivered
    normally; messages lost during the outage stay lost (reliability is the
    sender's job — see [Reliable_fifo]). A cut/restore round trip therefore
    only affects traffic that overlapped the outage. Idempotent. *)

val is_up : t -> bool

val delivered_count : t -> int

val dropped_count : t -> int
(** Total losses: [dropped_down_count + dropped_cut_count]. *)

val dropped_down_count : t -> int
(** Messages sent while the link was down. *)

val dropped_cut_count : t -> int
(** Messages that were in flight when the link was cut. *)

val in_flight_count : t -> int
(** Messages sent but neither delivered nor dropped yet — the queue depth
    of the wire at the current simulated instant. *)
