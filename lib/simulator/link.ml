(* A batch is the set of messages sharing one arrival instant: the link
   schedules one engine event per batch instead of one per message. FIFO
   order within the batch is send order; [b_epoch] is checked per item at
   fire time so a mid-batch cut still drops exactly the in-flight tail. *)
type batch = {
  b_epoch : int;
  mutable b_items : (unit -> unit) array;
  mutable b_n : int;
  mutable b_fired : bool;
}

type t = {
  engine : Engine.t;
  mutable base_latency : Time.t;
  jitter_us : int;
  bandwidth : float option;
  rng : Rng.t option;
  mutable last_arrival : Time.t;
  mutable up : bool;
  mutable epoch : int; (* bumped on cut: invalidates in-flight messages *)
  mutable open_batch : batch option;
  mutable open_batch_at : Time.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_down : int; (* sent while the link was down *)
  mutable dropped_cut : int; (* in flight when the link was cut *)
  mutable bytes : int;
}

let create ?(jitter_us = 0) ?bandwidth_bytes_per_us ?rng engine ~latency () =
  if jitter_us > 0 && rng = None then invalid_arg "Link.create: jitter requires an rng";
  {
    engine;
    base_latency = latency;
    jitter_us;
    bandwidth = bandwidth_bytes_per_us;
    rng;
    last_arrival = Time.zero;
    up = true;
    epoch = 0;
    open_batch = None;
    open_batch_at = Time.zero;
    sent = 0;
    delivered = 0;
    dropped_down = 0;
    dropped_cut = 0;
    bytes = 0;
  }

let delay t ~size_bytes =
  let jitter =
    match (t.jitter_us, t.rng) with
    | 0, _ | _, None -> 0
    | j, Some rng -> Rng.int rng j
  in
  let transmission =
    match t.bandwidth with
    | None -> 0
    | Some bw -> if bw <= 0. then 0 else int_of_float (float_of_int size_bytes /. bw)
  in
  Time.add t.base_latency (Time.of_us (jitter + transmission))

let nop () = ()

let batch_push b deliver =
  let cap = Array.length b.b_items in
  if b.b_n = cap then begin
    let bigger = Array.make (cap * 2) nop in
    Array.blit b.b_items 0 bigger 0 b.b_n;
    b.b_items <- bigger
  end;
  b.b_items.(b.b_n) <- deliver;
  b.b_n <- b.b_n + 1

let fire t b =
  (* mark first: a deliver callback that immediately sends back through
     this link at the same instant must open a fresh batch (a later engine
     event), preserving the unbatched ordering *)
  b.b_fired <- true;
  (match t.open_batch with
  | Some ob when ob.b_fired -> t.open_batch <- None
  | Some _ | None -> ());
  let at = Engine.now t.engine in
  for i = 0 to b.b_n - 1 do
    (* per-item check: a cut by an earlier item in this batch (epoch bump)
       drops the rest, exactly as per-message events did *)
    if t.up && t.epoch = b.b_epoch then begin
      t.delivered <- t.delivered + 1;
      if Probe.active () then Probe.emit ~at Probe.Link_deliver;
      b.b_items.(i) ()
    end
    else begin
      t.dropped_cut <- t.dropped_cut + 1;
      if Probe.active () then Probe.emit ~at (Probe.Link_drop { in_flight = true })
    end;
    b.b_items.(i) <- nop
  done

let send t ?(size_bytes = 0) deliver =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size_bytes;
  if Probe.active () then Probe.emit ~at:(Engine.now t.engine) (Probe.Link_send { size_bytes });
  if not t.up then begin
    t.dropped_down <- t.dropped_down + 1;
    if Probe.active () then
      Probe.emit ~at:(Engine.now t.engine) (Probe.Link_drop { in_flight = false })
  end
  else begin
    let now = Engine.now t.engine in
    let arrival = Time.max (Time.add now (delay t ~size_bytes)) t.last_arrival in
    t.last_arrival <- arrival;
    match t.open_batch with
    | Some b
      when (not b.b_fired) && b.b_epoch = t.epoch && Time.equal t.open_batch_at arrival ->
      batch_push b deliver
    | Some _ | None ->
      let b = { b_epoch = t.epoch; b_items = Array.make 4 nop; b_n = 0; b_fired = false } in
      batch_push b deliver;
      t.open_batch <- Some b;
      t.open_batch_at <- arrival;
      Engine.schedule_at t.engine arrival (fun () -> fire t b)
  end

let set_latency t l = t.base_latency <- l
let latency t = t.base_latency

let cut t =
  t.up <- false;
  t.epoch <- t.epoch + 1

let restore t = t.up <- true
let is_up t = t.up
let delivered_count t = t.delivered
let dropped_count t = t.dropped_down + t.dropped_cut
let dropped_down_count t = t.dropped_down
let dropped_cut_count t = t.dropped_cut
let in_flight_count t = t.sent - t.delivered - t.dropped_down - t.dropped_cut
