type t = {
  engine : Engine.t;
  mutable offset : Time.t;
  drift_ppm : float;
  mutable last : Time.t;
}

let create ?(offset = Time.zero) ?(drift_ppm = 0.) engine =
  { engine; offset; drift_ppm; last = Time.zero }

let raw t =
  let now = Engine.now t.engine in
  let drift = int_of_float (float_of_int (Time.to_us now) *. t.drift_ppm /. 1_000_000.) in
  Time.max Time.zero (Time.add now (Time.add t.offset (Time.of_us drift)))

let peek t = Time.max (raw t) t.last

let bump t d = t.offset <- Time.add t.offset d

let read t =
  let v = raw t in
  let v = if Time.compare v t.last <= 0 then Time.add t.last (Time.of_us 1) else v in
  t.last <- v;
  v
