type event = { at : Time.t; seq : int; run : unit -> unit }

let compare_event a b =
  match Time.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c

type t = {
  queue : event Heap.t;
  mutable now : Time.t;
  mutable seq : int;
  mutable processed : int;
}

let create () =
  { queue = Heap.create ~cmp:compare_event (); now = Time.zero; seq = 0; processed = 0 }

let now t = t.now

let schedule_at t at run =
  let at = Time.max at t.now in
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.queue { at; seq; run }

let schedule t ~delay run =
  let delay = Time.max delay Time.zero in
  schedule_at t (Time.add t.now delay) run

let periodic t ~every run ~stop =
  let rec tick () =
    if not (stop ()) then begin
      run ();
      schedule t ~delay:every tick
    end
  in
  schedule t ~delay:every tick

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.now <- ev.at;
    t.processed <- t.processed + 1;
    if Probe.active () then Probe.emit ~at:ev.at (Probe.Engine_step { seq = ev.seq });
    ev.run ();
    true

let run ?until t =
  let horizon_reached () =
    match until with
    | None -> false
    | Some h -> ( match Heap.peek t.queue with None -> false | Some ev -> Time.compare ev.at h > 0 )
  in
  let continue = ref true in
  while !continue do
    if horizon_reached () then continue := false else if not (step t) then continue := false
  done;
  match until with
  | Some h when Time.compare t.now h < 0 -> t.now <- h
  | Some _ | None -> ()

let pending t = Heap.size t.queue
let events_processed t = t.processed
