(* The event queue is a Keyed heap: k1 = absolute time in µs, k2 = the
   scheduling sequence number, payload = the closure. Equal-time events
   still fire in scheduling (FIFO) order via k2, and the per-event path
   never materialises an event record. *)

let nop () = ()

type t = {
  queue : (unit -> unit) Heap.Keyed.t;
  mutable now : Time.t;
  mutable seq : int;
  mutable processed : int;
  mutable ids : int;
}

let create () =
  { queue = Heap.Keyed.create ~capacity:64 ~dummy:nop ();
    now = Time.zero; seq = 0; processed = 0; ids = 0 }

let fresh_id t =
  t.ids <- t.ids + 1;
  t.ids

let now t = t.now

let schedule_at t at run =
  let at = Time.max at t.now in
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.Keyed.push t.queue ~k1:(Time.to_us at) ~k2:seq run

let schedule t ~delay run =
  let delay = Time.max delay Time.zero in
  schedule_at t (Time.add t.now delay) run

let periodic t ~every run ~stop =
  let rec tick () =
    if not (stop ()) then begin
      run ();
      schedule t ~delay:every tick
    end
  in
  schedule t ~delay:every tick

let step t =
  match Heap.Keyed.pop t.queue with
  | None -> false
  | Some run ->
    let at = Time.of_us (Heap.Keyed.popped_k1 t.queue) in
    t.now <- at;
    t.processed <- t.processed + 1;
    if Probe.active () then
      Probe.emit ~at (Probe.Engine_step { seq = Heap.Keyed.popped_k2 t.queue });
    run ();
    true

let run ?until t =
  let horizon_reached () =
    match until with
    | None -> false
    | Some h ->
      (not (Heap.Keyed.is_empty t.queue)) && Heap.Keyed.min_k1 t.queue > Time.to_us h
  in
  let continue = ref true in
  while !continue do
    if horizon_reached () then continue := false else if not (step t) then continue := false
  done;
  match until with
  | Some h when Time.compare t.now h < 0 -> t.now <- h
  | Some _ | None -> ()

let pending t = Heap.Keyed.size t.queue
let events_processed t = t.processed
