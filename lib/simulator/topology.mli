(** Named sites and the inter-site latency matrix.

    A topology is the static description of the geo-distributed substrate:
    a set of sites (potential datacenter and serializer locations) and the
    one-way latency between each pair. *)

type site = int
(** Dense site identifier, [0 .. n_sites-1]. *)

type t

val create : names:string array -> latency_ms:int array array -> t
(** [latency_ms] must be square, symmetric, with a zero diagonal.
    @raise Invalid_argument otherwise. *)

val n_sites : t -> int
val name : t -> site -> string

val site_of_name : t -> string -> site
(** @raise Not_found for an unknown name. *)

val latency : t -> site -> site -> Time.t
(** One-way latency between two sites ([Time.zero] on the diagonal). *)

val sub : t -> site list -> t * site array
(** [sub t chosen] restricts the topology to [chosen] sites; also returns
    the mapping from new dense ids to the original ids. *)

val pp_matrix : Format.formatter -> t -> unit
(** Renders the latency matrix in the format of the paper's Table 1. *)
