(** Simulated physical clock with bounded skew and drift.

    The paper's gears use NTP-synchronized physical clocks to generate
    monotonically increasing label timestamps. We model each site's clock as
    [true_time + offset + drift * true_time], with small defaults matching
    the paper's "negligible after NTP sync" observation. Reads are forced
    monotonic, exactly like a real gear's clock discipline. *)

type t

val create : ?offset:Time.t -> ?drift_ppm:float -> Engine.t -> t
(** [offset] is a constant skew (may be negative); [drift_ppm] a rate error
    in parts per million. Defaults: zero offset, zero drift. *)

val read : t -> Time.t
(** Current clock value. Guaranteed strictly monotonic across calls: two
    successive reads never return the same value, mirroring gears that must
    emit unique, increasing timestamps. *)

val peek : t -> Time.t
(** Clock value without the monotonic-bump side effect. *)

val bump : t -> Time.t -> unit
(** Adds to the constant offset at runtime — a step change in skew, as a
    bad NTP adjustment would produce. A negative bump never makes reads go
    backwards: the monotonic discipline in {!read} absorbs it. *)
