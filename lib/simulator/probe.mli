(** Structured simulation tracing.

    A probe records typed events — event-loop steps, link traffic, label
    forwarding, serializer hops, proxy applies, chain acks, stabilization
    rounds — keyed by simulated time. Because the simulator is
    deterministic, the stream of events (and hence its digest) is a pure
    function of the scenario and its seed: two same-seed runs must produce
    byte-identical traces, which CI asserts as a regression oracle.

    The facility is zero-cost when disabled: instrumentation points guard
    with {!active} (one ref read and a branch) and allocate nothing unless
    a sink is installed. Exactly one process-wide sink can be installed at
    a time, in the style of a [Logs] reporter. *)

type mode = Stream | Fallback

type event =
  | Engine_step of { seq : int }  (** the event loop dispatched one event *)
  | Link_send of { size_bytes : int }  (** message entered a FIFO link *)
  | Link_deliver  (** message came out the far end *)
  | Link_drop of { in_flight : bool }
      (** message lost: [in_flight] = true means it was mid-flight when the
          link was cut, false means it was sent while the link was down —
          the distinction fault counters and the invariant checker need to
          tell loss-by-cut from loss-by-outage *)
  | Fifo_resend of { sender : int; seq : int }
      (** a reliable-FIFO sender retransmitted an unacknowledged message *)
  | Label_forward of { dc : int; ts : int }  (** label entered the metadata service at [dc] *)
  | Serializer_hop of { from_ser : int; to_ser : int }  (** serializer-to-serializer forward *)
  | Serializer_deliver of { dc : int }  (** service egress toward [dc]'s proxy *)
  | Delay_wait of { serializer : int; us : int }  (** artificial delay δ applied on a hop *)
  | Chain_ack of { seq : int }  (** chain commit acknowledged back to the sender *)
  | Ser_commit of { ser : int; origin : int; oseq : int }
      (** serializer [ser]'s chain committed the [oseq]-th label that origin
          datacenter [origin] pushed into the service — the exactly-once,
          FIFO-per-origin oracle the fault checker asserts over *)
  | Head_change of { ser : int }  (** chain head crashed and the chain healed *)
  | Sink_emit of { dc : int; ts : int }  (** label sink emitted a stable label *)
  | Proxy_apply of { dc : int; src_dc : int; ts : int; fallback : bool }
      (** remote update installed; [fallback] tells which path ordered it *)
  | Proxy_mode of { dc : int; mode : mode }  (** proxy switched ordering modes *)
  | Stab_round of { dc : int; gst : int }  (** baseline stabilization round completed *)
  | Vec_advance of { dc : int; src : int; ts : int }  (** baseline version-vector advance *)

type t

val create : ?keep:bool -> unit -> t
(** [keep] (default true) buffers every event for {!events} and
    {!write_jsonl}. With [~keep:false] only the running digest and
    per-kind counts are maintained, so unbounded runs stay O(1) space. *)

(** {2 The process-wide sink} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

val active : unit -> bool
(** Cheap guard for instrumentation points: check before building an
    event so disabled probes cost one branch and no allocation. *)

val emit : at:Time.t -> event -> unit
(** Records into the installed sink, if any. *)

val with_probe : t -> (unit -> 'a) -> 'a
(** Installs [t] for the duration of the callback, restoring the previous
    sink afterwards (exception-safe). *)

(** {2 Reading a probe} *)

val count : t -> int
val events : t -> (Time.t * event) list

val counts_by_kind : t -> (string * int) list
(** Event counts grouped by {!kind}, name-sorted. Available regardless of
    [keep]. *)

val digest : t -> string
(** 64-bit FNV-1a over the JSONL rendering of the event stream, as a
    16-character hex string. Incremental, stable across processes, and
    independent of [keep] — the CI determinism gate compares these. *)

(** {2 Export} *)

val kind : event -> string
val to_json : Time.t -> event -> string
(** One JSON object, e.g. [{"t":1200,"ev":"serializer_hop","from":0,"to":1}]. *)

val write_jsonl : t -> out_channel -> unit
(** One {!to_json} line per recorded event, in emission order.
    @raise Invalid_argument if the probe was created with [~keep:false]. *)
