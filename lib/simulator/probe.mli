(** Structured simulation tracing.

    A probe records typed events — event-loop steps, link traffic, label
    forwarding, serializer hops, proxy applies, chain acks, stabilization
    rounds — keyed by simulated time. Because the simulator is
    deterministic, the stream of events (and hence its digest) is a pure
    function of the scenario and its seed: two same-seed runs must produce
    byte-identical traces, which CI asserts as a regression oracle.

    Besides point events, the probe understands {e spans}: matched
    {!Span_begin}/{!Span_end} pairs that attribute simulated time to a
    subsystem. Pairing happens inside the probe as events arrive, so
    per-kind span totals ({!span_totals_us}) are available even on
    count-only ([~keep:false]) probes. The {!Span} module provides the
    ergonomic emit helpers instrumentation sites use.

    The facility is zero-cost when disabled: instrumentation points guard
    with {!active} (one ref read and a branch) and allocate nothing unless
    a sink is installed. Exactly one process-wide sink can be installed at
    a time, in the style of a [Logs] reporter. *)

type mode = Stream | Fallback

(** Subsystems a span can attribute time to, following a label's life
    (paper §4): held in the origin sink for gear stability; attached into
    the tree; replicated by a serializer's chain; parked for the
    artificial delay δ before a hop or an egress; in flight between
    serializers; in flight toward the destination proxy; and waiting in
    the proxy's ordering buffer. [Sk_bulk] covers the payload's trip on
    the bulk data plane, [Sk_stab] the baselines' stabilization holds. *)
type span_kind =
  | Sk_sink_hold
  | Sk_attach
  | Sk_chain
  | Sk_delay_hop
  | Sk_hop
  | Sk_delay_egress
  | Sk_egress
  | Sk_proxy_order
  | Sk_bulk
  | Sk_stab

val span_kind_name : span_kind -> string
(** ["sink_hold"], ["attach"], … — the keys of {!span_totals_us}. *)

(** A span's correlation key. Begin and end must agree on {e every} field
    — the probe pairs them structurally. Two keying conventions are used:
    tree-side spans ([Sk_attach]..[Sk_delay_egress]) carry the service uid
    [(origin dc, seq = oseq)] with [aux] = the service instance, while
    label-identity spans ([Sk_sink_hold], [Sk_egress], [Sk_proxy_order],
    [Sk_bulk], [Sk_stab]) carry [(origin dc, seq = label ts in µs)] with
    [aux] = the source gear (timestamps are only unique per gear).
    [site]/[peer] locate the span (serializer or datacenter ids; -1 when
    unused). [epoch] is the configuration epoch the span's work belongs to
    (0 for spans whose begin/end sites cannot both know it).
    [Harness.Journey] joins the two keyings via {!Label_forward}. *)
type span = {
  sk : span_kind;
  origin : int;
  seq : int;
  aux : int;
  site : int;
  peer : int;
  epoch : int;
}

type event =
  | Engine_step of { seq : int }  (** the event loop dispatched one event *)
  | Link_send of { size_bytes : int }  (** message entered a FIFO link *)
  | Link_deliver  (** message came out the far end *)
  | Link_drop of { in_flight : bool }
      (** message lost: [in_flight] = true means it was mid-flight when the
          link was cut, false means it was sent while the link was down —
          the distinction fault counters and the invariant checker need to
          tell loss-by-cut from loss-by-outage *)
  | Fifo_resend of { sender : int; seq : int }
      (** a reliable-FIFO sender retransmitted an unacknowledged message *)
  | Label_forward of { dc : int; gear : int; ts : int; oseq : int; inst : int; epoch : int }
      (** label [(dc, gear, ts)] entered the metadata service at [dc]. When
          it had remote targets it was assigned uid [(dc, oseq)] by service
          instance [inst]; [oseq] = -1 means local-only, never forwarded.
          [epoch] is the configuration epoch of the tree it entered. This
          event is the lid→uid join point for journey reconstruction. *)
  | Serializer_hop of { from_ser : int; to_ser : int }  (** serializer-to-serializer forward *)
  | Serializer_deliver of { dc : int }  (** service egress toward [dc]'s proxy *)
  | Delay_wait of { serializer : int; us : int }  (** artificial delay δ applied on a hop *)
  | Chain_ack of { seq : int }  (** chain commit acknowledged back to the sender *)
  | Ser_commit of { ser : int; origin : int; oseq : int; epoch : int }
      (** serializer [ser]'s chain committed the [oseq]-th label that origin
          datacenter [origin] pushed into the service — the exactly-once,
          FIFO-per-origin oracle the fault checker asserts over. [epoch] is
          the tree's configuration epoch; serializer ids and oseq counters
          both restart per epoch, so cross-epoch analysis keys on it *)
  | Head_change of { ser : int }  (** chain head crashed and the chain healed *)
  | Sink_emit of { dc : int; ts : int }  (** label sink emitted a stable label *)
  | Proxy_apply of { dc : int; src_dc : int; gear : int; ts : int; fallback : bool }
      (** remote update installed; [fallback] tells which path ordered it *)
  | Proxy_mode of { dc : int; mode : mode }  (** proxy switched ordering modes *)
  | Stab_round of { dc : int; gst : int }  (** baseline stabilization round completed *)
  | Vec_advance of { dc : int; src : int; ts : int }  (** baseline version-vector advance *)
  | Switch_begin of { epoch : int; graceful : bool }
      (** online reconfiguration (paper §6.2) started: the system begins
          migrating from epoch-1 trees to the [epoch] configuration *)
  | Switch_done of { dc : int; epoch : int }
      (** datacenter [dc]'s proxy finished its migration into [epoch] —
          the old tree carries no more of its traffic *)
  | Span_begin of span  (** simulated time starts accruing to [span.sk] *)
  | Span_end of span  (** …and stops; must match an open begin field-for-field *)

type t

val create : ?keep:bool -> unit -> t
(** [keep] (default true) buffers every event for {!events} and
    {!write_jsonl}. With [~keep:false] only the running digest, per-kind
    counts and span totals are maintained, so unbounded runs stay O(1)
    space. *)

(** {2 The process-wide sink} *)

val install : t -> unit
val uninstall : unit -> unit

val active : unit -> bool
(** Cheap guard for instrumentation points: check before building an
    event so disabled probes cost one branch and no allocation. *)

val emit : at:Time.t -> event -> unit
(** Records into the installed sink, if any. *)

val with_probe : t -> (unit -> 'a) -> 'a
(** Installs [t] for the duration of the callback, restoring the previous
    sink afterwards (exception-safe). *)

(** {2 Reading a probe} *)

val count : t -> int
val events : t -> (Time.t * event) list

val counts_by_kind : t -> (string * int) list
(** Event counts grouped by {!kind}, name-sorted. Available regardless of
    [keep]. Span begins and ends share one ["span.<kind>"] bucket. *)

val span_totals_us : t -> (string * int) list
(** Total simulated µs accrued by {e matched} spans, per
    {!span_kind_name}, name-sorted. Available regardless of [keep]. *)

val span_counts : t -> (string * int) list
(** Matched span pairs per kind, name-sorted. *)

val span_orphans : t -> int
(** [Span_end] events that matched no open begin (they contribute nothing
    to the totals). *)

val open_span_count : t -> int
(** Spans begun but not yet ended — in-flight work at the end of a run. *)

val digest : t -> string
(** 64-bit FNV-1a over the JSONL rendering of the event stream, as a
    16-character hex string. Incremental, stable across processes, and
    independent of [keep] — the CI determinism gate compares these. *)

(** {2 Export} *)

val to_json : Time.t -> event -> string
(** One JSON object, e.g. [{"t":1200,"ev":"serializer_hop","from":0,"to":1}]. *)

(** {2 Interned kind ids}

    The set of event kinds is closed, so per-event accounting uses a dense
    integer id instead of the kind string: {!record} bumps [counts.(kind_id
    ev)] — no hashing, no allocation on the per-event path. *)

val write_jsonl : t -> out_channel -> unit
(** One {!to_json} line per recorded event, in emission order.
    @raise Invalid_argument if the probe was created with [~keep:false].
    For count-only probes use {!stream_jsonl} instead. *)

val stream_jsonl : t -> out_channel -> unit
(** Attaches a streaming JSONL sink: every event recorded {e from now on}
    is written to [oc] as it happens, regardless of [keep] — O(1) memory
    export for unbounded runs. The caller owns (flushes, closes) the
    channel after the run. *)
