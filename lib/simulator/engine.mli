(** Discrete-event simulation engine.

    A single-threaded scheduler drives the whole simulated distributed
    system: datacenters, serializers, links and clients are all closures
    registered as timed events. Events with equal timestamps fire in
    scheduling (FIFO) order, which keeps runs deterministic. *)

type t

val create : unit -> t

val fresh_id : t -> int
(** Engine-scoped unique id (1, 2, …). Ids that may reach the probe
    stream (e.g. reliable-FIFO sender ids in [fifo_resend] events) must
    come from here, not from a process-global counter: engine-scoped ids
    make a second same-seed run inside one process replay bit-for-bit,
    which the [--check] determinism self-checks rely on. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay]. Negative delays are
    clamped to zero. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t when_ f] runs [f] at absolute time [when_] (clamped to
    [now] if already past). *)

val periodic : t -> every:Time.t -> (unit -> unit) -> stop:(unit -> bool) -> unit
(** [periodic t ~every f ~stop] runs [f] every [every] until [stop ()] is
    true (checked before each firing). *)

val run : ?until:Time.t -> t -> unit
(** Processes events until the queue is empty or simulated time would pass
    [until]. After [run ~until], [now] equals [until] if the horizon was
    reached. *)

val step : t -> bool
(** Processes a single event. Returns [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total number of events processed since creation. *)
