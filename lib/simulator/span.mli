(** Terse span-emission helpers over {!Probe}.

    Instrumentation sites guard with {!active} and then call {!begin_} /
    {!end_} with the same key fields; the probe pairs them structurally
    and accrues the simulated-time difference to the kind's total. See
    {!Probe.span} for the keying conventions ([aux]/[site]/[peer] default
    to -1 = unused). *)

type kind = Probe.span_kind =
  | Sk_sink_hold
  | Sk_attach
  | Sk_chain
  | Sk_delay_hop
  | Sk_hop
  | Sk_delay_egress
  | Sk_egress
  | Sk_proxy_order
  | Sk_bulk
  | Sk_stab

val begin_ :
  at:Time.t -> ?aux:int -> ?site:int -> ?peer:int -> ?epoch:int -> kind -> origin:int -> seq:int ->
  unit

val end_ :
  at:Time.t -> ?aux:int -> ?site:int -> ?peer:int -> ?epoch:int -> kind -> origin:int -> seq:int ->
  unit
(** [epoch] defaults to 0; begin and end must pass the same value or the
    span will not pair. Only sites where both ends know the configuration
    epoch (the tree-side spans, emitted inside one service instance)
    should override it. *)
