(** Lightweight event tracing for debugging simulated runs.

    Disabled by default; when enabled, components log timestamped lines that
    can be dumped or filtered after a run. Kept in the simulator library so
    every layer can trace without extra dependencies. *)

type t

val create : ?capacity:int -> Engine.t -> t
(** Ring buffer of at most [capacity] entries (default 65536). *)

val set_enabled : t -> bool -> unit

val log : t -> component:string -> string -> unit
(** Records a line tagged with the current simulated time. No-op when
    disabled; the message is built eagerly, so guard expensive formatting
    with [enabled]. *)

val entries : t -> (Time.t * string * string) list
(** Oldest first. *)

val clear : t -> unit
