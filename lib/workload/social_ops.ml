type kind =
  | Browse_friend_wall
  | Browse_friend_albums
  | Read_own_wall
  | Universal_search
  | Update_own_wall
  | Write_friend_wall
  | Upload_album

let mix =
  [
    (Browse_friend_wall, 0.52);
    (Browse_friend_albums, 0.15);
    (Read_own_wall, 0.17);
    (Universal_search, 0.06);
    (Update_own_wall, 0.05);
    (Write_friend_wall, 0.03);
    (Upload_album, 0.02);
  ]

type t = {
  part : Social_partition.t;
  value_size : int;
  rng : Sim.Rng.t;
  nearest_holder : (int * int, int) Hashtbl.t; (* (dc, key) memo *)
  mutable payload : int;
  mutable ops : int;
  mutable remote : int;
}

let create part ~value_size ~seed =
  { part; value_size; rng = Sim.Rng.create ~seed; nearest_holder = Hashtbl.create 4096;
    payload = 0; ops = 0; remote = 0 }

let pick_kind t =
  let x = Sim.Rng.float t.rng 1.0 in
  let rec walk acc = function
    | [] -> Upload_album
    | (k, p) :: rest -> if x < acc +. p then k else walk (acc +. p) rest
  in
  walk 0. mix

let fresh_value t =
  t.payload <- t.payload + 1;
  Kvstore.Value.make ~payload:t.payload ~size_bytes:t.value_size

let random_friend t user =
  let friends = Social_graph.friends (Social_partition.graph t.part) user in
  if Array.length friends = 0 then user else Sim.Rng.pick t.rng friends

let holder_near t ~dc ~key =
  match Hashtbl.find_opt t.nearest_holder (dc, key) with
  | Some h -> h
  | None ->
    let rmap = Social_partition.replica_map t.part in
    let holders = Kvstore.Replica_map.replicas rmap ~key in
    (* without a topology handle we take the first holder; the driver's
       latency model still charges the WAN round-trip *)
    let h = match holders with h :: _ -> h | [] -> dc in
    Hashtbl.replace t.nearest_holder (dc, key) h;
    h

let resolve_read t ~dc key =
  let rmap = Social_partition.replica_map t.part in
  if Kvstore.Replica_map.replicates rmap ~dc ~key then Op.Read { key }
  else begin
    t.remote <- t.remote + 1;
    Op.Remote_read { key; at = holder_near t ~dc ~key }
  end

let next t ~user =
  t.ops <- t.ops + 1;
  let dc = Social_partition.master t.part ~user in
  match pick_kind t with
  | Browse_friend_wall -> resolve_read t ~dc (Social_partition.wall_key t.part ~user:(random_friend t user))
  | Browse_friend_albums ->
    resolve_read t ~dc (Social_partition.album_key t.part ~user:(random_friend t user))
  | Read_own_wall -> Op.Read { key = Social_partition.wall_key t.part ~user }
  | Universal_search ->
    let target = Sim.Rng.int t.rng (Social_graph.n_users (Social_partition.graph t.part)) in
    resolve_read t ~dc (Social_partition.wall_key t.part ~user:target)
  | Update_own_wall -> Op.Write { key = Social_partition.wall_key t.part ~user; value = fresh_value t }
  | Write_friend_wall ->
    (* writes must target locally-replicated data; if the friend's wall is
       not local, write our own wall instead (a wall-to-wall post) *)
    let friend_key = Social_partition.wall_key t.part ~user:(random_friend t user) in
    let rmap = Social_partition.replica_map t.part in
    let key =
      if Kvstore.Replica_map.replicates rmap ~dc ~key:friend_key then friend_key
      else Social_partition.wall_key t.part ~user
    in
    Op.Write { key; value = fresh_value t }
  | Upload_album -> Op.Write { key = Social_partition.album_key t.part ~user; value = fresh_value t }

let remote_fraction t = if t.ops = 0 then 0. else float_of_int t.remote /. float_of_int t.ops
