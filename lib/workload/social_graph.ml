type t = {
  adj : int array array;
  community : int array;
  n_communities : int;
  n_edges : int;
}

let generate ~n_users ~mean_degree ~communities ~locality ~seed =
  if n_users < 2 then invalid_arg "Social_graph.generate: need at least 2 users";
  if mean_degree < 2 then invalid_arg "Social_graph.generate: mean_degree < 2";
  if communities < 1 then invalid_arg "Social_graph.generate: communities < 1";
  if locality < 0. || locality > 1. then invalid_arg "Social_graph.generate: locality out of [0,1]";
  let rng = Sim.Rng.create ~seed in
  let m = max 1 (mean_degree / 2) in
  let community = Array.init n_users (fun u -> u mod communities) in
  let neighbor_sets = Array.init n_users (fun _ -> Hashtbl.create 8) in
  (* preferential attachment: [targets] repeats every endpoint once per
     incident edge, so sampling it uniformly is degree-proportional; one
     such pool per community plus a global pool support the locality bias *)
  let global_pool = ref [] in
  let local_pool = Array.make communities [] in
  let add_endpoint u =
    global_pool := u :: !global_pool;
    local_pool.(community.(u)) <- u :: local_pool.(community.(u))
  in
  let n_edges = ref 0 in
  let add_edge u v =
    if u <> v && not (Hashtbl.mem neighbor_sets.(u) v) then begin
      Hashtbl.replace neighbor_sets.(u) v ();
      Hashtbl.replace neighbor_sets.(v) u ();
      add_endpoint u;
      add_endpoint v;
      incr n_edges;
      true
    end
    else false
  in
  (* seed clique so the pools are non-empty *)
  let seed_size = min n_users (m + 1) in
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      let _ = add_edge u v in
      ()
    done
  done;
  let pick_from pool =
    match pool with
    | [] -> None
    | l ->
      let arr = Array.of_list l in
      Some (Sim.Rng.pick rng arr)
  in
  for u = seed_size to n_users - 1 do
    let wanted = m in
    let attempts = ref 0 in
    let added = ref 0 in
    while !added < wanted && !attempts < wanted * 20 do
      incr attempts;
      let use_local = Sim.Rng.float rng 1.0 < locality && local_pool.(community.(u)) <> [] in
      let target = if use_local then pick_from local_pool.(community.(u)) else pick_from !global_pool in
      match target with
      | Some v -> if add_edge u v then incr added
      | None -> attempts := wanted * 20
    done;
    (* guarantee connectivity *)
    if !added = 0 then begin
      let v = Sim.Rng.int rng u in
      let _ = add_edge u v in
      ()
    end
  done;
  let adj =
    Array.map
      (fun set ->
        let arr = Array.make (Hashtbl.length set) 0 in
        let i = ref 0 in
        Hashtbl.iter
          (fun v () ->
            arr.(!i) <- v;
            incr i)
          set;
        Array.sort Int.compare arr;
        arr)
      neighbor_sets
  in
  { adj; community; n_communities = communities; n_edges = !n_edges }

let facebook_scaled ~n_users ~seed =
  (* New Orleans network: mean degree ~30; communities sized a few hundred
     users with ~80% of edges internal *)
  let communities = max 2 (n_users / 250) in
  generate ~n_users ~mean_degree:30 ~communities ~locality:0.8 ~seed

let n_users t = Array.length t.adj
let n_edges t = t.n_edges
let friends t u = t.adj.(u)
let community t u = t.community.(u)

let mean_degree t =
  if n_users t = 0 then 0. else 2. *. float_of_int t.n_edges /. float_of_int (n_users t)

let max_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.adj
