type t = { queues : (int, Op.t Queue.t) Hashtbl.t; mutable remaining : int }

let queue_of t client =
  match Hashtbl.find_opt t.queues client with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues client q;
    q

let of_ops ops =
  let t = { queues = Hashtbl.create 16; remaining = 0 } in
  List.iter
    (fun (client, op) ->
      Queue.push op (queue_of t client);
      t.remaining <- t.remaining + 1)
    ops;
  t

let record ~clients ~next ~ops_per_client =
  of_ops
    (List.concat_map
       (fun client -> List.init ops_per_client (fun _ -> (client, next ~client)))
       clients)

let next t ~client =
  match Hashtbl.find_opt t.queues client with
  | None -> None
  | Some q ->
    if Queue.is_empty q then None
    else begin
      t.remaining <- t.remaining - 1;
      Some (Queue.pop q)
    end

let remaining t = t.remaining

let line_of client op =
  match op with
  | Op.Read { key } -> Printf.sprintf "R %d %d" client key
  | Op.Write { key; value } -> Printf.sprintf "W %d %d %d" client key value.Kvstore.Value.size_bytes
  | Op.Remote_read { key; at } -> Printf.sprintf "RR %d %d %d" client key at

let to_string t =
  let buf = Buffer.create 1024 in
  let clients = List.sort Int.compare (Hashtbl.fold (fun c _ acc -> c :: acc) t.queues []) in
  List.iter
    (fun client ->
      Queue.iter
        (fun op ->
          Buffer.add_string buf (line_of client op);
          Buffer.add_char buf '\n')
        (Hashtbl.find t.queues client))
    clients;
  Buffer.contents buf

let parse_line payload_counter lineno line =
  let fail () = failwith (Printf.sprintf "Trace: malformed line %d: %S" lineno line) in
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> None
  | s :: _ when String.length s > 0 && s.[0] = '#' -> None
  | [ "R"; client; key ] -> (
    match (int_of_string_opt client, int_of_string_opt key) with
    | Some c, Some k -> Some (c, Op.Read { key = k })
    | _ -> fail ())
  | [ "W"; client; key; size ] -> (
    match (int_of_string_opt client, int_of_string_opt key, int_of_string_opt size) with
    | Some c, Some k, Some sz ->
      incr payload_counter;
      Some (c, Op.Write { key = k; value = Kvstore.Value.make ~payload:!payload_counter ~size_bytes:sz })
    | _ -> fail ())
  | [ "RR"; client; key; at ] -> (
    match (int_of_string_opt client, int_of_string_opt key, int_of_string_opt at) with
    | Some c, Some k, Some a -> Some (c, Op.Remote_read { key = k; at = a })
    | _ -> fail ())
  | _ -> fail ()

let of_string s =
  (* parse-scoped, not process-global: payload values only need to be
     distinct within one trace, and a global counter would make the same
     trace parse differently on a second in-process run *)
  let payload_counter = ref 0 in
  let ops =
    String.split_on_char '\n' s
    |> List.mapi (fun i line -> parse_line payload_counter (i + 1) line)
    |> List.filter_map Fun.id
  in
  of_ops ops

let save t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
