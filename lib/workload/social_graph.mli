(** Synthetic social graph — the stand-in for the (no longer distributed)
    New Orleans Facebook dataset [52] used by §7.4.

    The original network has 61,096 users and 905,565 edges (mean degree
    ≈ 29.6) with a heavy-tailed degree distribution and strong community
    structure. The generator reproduces those statistics at a configurable
    scale: users join communities round-robin and attach by preferential
    attachment, biased toward their own community, which yields a power-law
    tail plus locality — the two properties the benchmark and the
    partitioner consume. *)

type t

val facebook_scaled : n_users:int -> seed:int -> t
(** The New Orleans statistics (mean degree ≈ 30, strong communities)
    scaled to [n_users]. *)

val n_users : t -> int
val n_edges : t -> int
val friends : t -> int -> int array
val community : t -> int -> int
val mean_degree : t -> float
val max_degree : t -> int
