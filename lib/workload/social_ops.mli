(** Social-network operation mix (§7.4).

    Based on the characterization of Benevenuto et al. [15]: sessions are
    dominated by browsing (~92% reads), most activity targets friends'
    content, a small share is universal (random-user) browsing, and writes
    split between own content, friends' walls and album uploads. Each
    operation is resolved against the partitioning: a target key not
    replicated at the user's master datacenter becomes a remote read. *)

type kind =
  | Browse_friend_wall  (** 52% — read a friend's wall *)
  | Browse_friend_albums  (** 15% — read a friend's albums *)
  | Read_own_wall  (** 17% — read own wall/profile *)
  | Universal_search  (** 6% — read a random user's wall *)
  | Update_own_wall  (** 5% — write own wall (status, settings) *)
  | Write_friend_wall  (** 3% — message/comment on a friend's wall *)
  | Upload_album  (** 2% — write own albums object *)

val mix : (kind * float) list
(** The percentages above; sums to 1. *)

type t

val create : Social_partition.t -> value_size:int -> seed:int -> t

val next : t -> user:int -> Op.t
(** Next operation for [user], resolved to local read / write / remote read
    against the user's master datacenter. *)

val remote_fraction : t -> float
(** Fraction of generated operations that required remote access so far. *)
