type tier = T61k | T250k | T1m

let tiers = [ T61k; T250k; T1m ]
let tier_name = function T61k -> "61k" | T250k -> "250k" | T1m -> "1m"

(* 61,096 is the real New Orleans network's user count (§7.4) *)
let tier_users = function T61k -> 61_096 | T250k -> 250_000 | T1m -> 1_000_000

let tier_of_name = function
  | "61k" -> Some T61k
  | "250k" -> Some T250k
  | "1m" -> Some T1m
  | _ -> None

(* growable flat int buffer: the only dynamic structure in the generator *)
type vec = { mutable a : int array; mutable n : int }

let vec_make cap = { a = Array.make (max cap 4) 0; n = 0 }

let vec_push v x =
  let cap = Array.length v.a in
  if v.n = cap then begin
    let bigger = Array.make (cap * 2) 0 in
    Array.blit v.a 0 bigger 0 v.n;
    v.a <- bigger
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type t = {
  n_users : int;
  n_edges : int;
  n_communities : int;
  offsets : int array; (* CSR row starts, length n_users + 1 *)
  adj : int array; (* CSR neighbor lists, length 2 * n_edges, rows ascending *)
  edge_hash : int64;
}

(* FNV-1a over the bytes of each int, little-endian — same family as the
   probe digest, so test expectations read the same way *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_int h x =
  let h = ref h in
  for i = 0 to 7 do
    let b = (x lsr (i * 8)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int b)) fnv_prime
  done;
  !h

let generate ~n_users ?(mean_degree = 30) ?(locality = 0.8) ?communities ~seed () =
  if n_users < 2 then invalid_arg "Scale.generate: need at least 2 users";
  if mean_degree < 2 then invalid_arg "Scale.generate: mean_degree < 2";
  if locality < 0. || locality > 1. then invalid_arg "Scale.generate: locality out of [0,1]";
  let n_comm =
    match communities with
    | Some c -> if c < 1 then invalid_arg "Scale.generate: communities < 1" else c
    | None -> max 2 (n_users / 250)
  in
  let rng = Sim.Rng.create ~seed in
  let m = max 1 (mean_degree / 2) in
  let community u = u mod n_comm in
  let seed_size = min n_users (m + 1) in
  let max_edges = (seed_size * (seed_size - 1) / 2) + ((n_users - seed_size) * m) + n_users in
  (* the flat edge stream is also the global endpoint pool: every endpoint
     appears once per incident edge, so a uniform index into the live
     prefix is a degree-proportional pick *)
  let endpoints = Array.make (2 * max_edges) 0 in
  let deg = Array.make n_users 0 in
  let hash = ref fnv_offset in
  let n_edges = ref 0 in
  (* per-community endpoint pools back the locality bias; freed before the
     CSR build so peak memory stays ~3 ints per edge endpoint *)
  let comm_pool = Array.init n_comm (fun _ -> vec_make 16) in
  let add_edge u v =
    let i = 2 * !n_edges in
    endpoints.(i) <- u;
    endpoints.(i + 1) <- v;
    incr n_edges;
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1;
    vec_push comm_pool.(community u) u;
    vec_push comm_pool.(community v) v;
    hash := fnv_int (fnv_int !hash u) v
  in
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      add_edge u v
    done
  done;
  (* round targets chosen for the current node: duplicate suppression needs
     only these — the node is new, so it has no other edges *)
  let round = Array.make m (-1) in
  let in_round u v added =
    let dup = ref (v = u) in
    for i = 0 to added - 1 do
      if round.(i) = v then dup := true
    done;
    !dup
  in
  for u = seed_size to n_users - 1 do
    let added = ref 0 in
    let attempts = ref 0 in
    let cpool = comm_pool.(community u) in
    while !added < m && !attempts < m * 20 do
      incr attempts;
      let use_local = cpool.n > 0 && Sim.Rng.float rng 1.0 < locality in
      let v =
        if use_local then cpool.a.(Sim.Rng.int rng cpool.n)
        else endpoints.(Sim.Rng.int rng (2 * !n_edges))
      in
      if not (in_round u v !added) then begin
        round.(!added) <- v;
        incr added;
        add_edge u v
      end
    done;
    (* guarantee connectivity, as Social_graph does *)
    if !added = 0 then add_edge u (Sim.Rng.int rng u);
    Array.fill round 0 !added (-1)
  done;
  Array.iter (fun v -> v.a <- [||]; v.n <- 0) comm_pool;
  (* CSR build: prefix-sum offsets, then scatter both directions of every
     edge; rows are then sorted in place (ascending neighbors, matching
     Social_graph.friends) *)
  let ne = !n_edges in
  let offsets = Array.make (n_users + 1) 0 in
  for u = 0 to n_users - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let cursor = Array.copy offsets in
  let adj = Array.make (2 * ne) 0 in
  for e = 0 to ne - 1 do
    let u = endpoints.(2 * e) and v = endpoints.((2 * e) + 1) in
    adj.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    adj.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  for u = 0 to n_users - 1 do
    let row = Array.sub adj offsets.(u) deg.(u) in
    Array.sort Int.compare row;
    Array.blit row 0 adj offsets.(u) deg.(u)
  done;
  { n_users; n_edges = ne; n_communities = n_comm; offsets; adj; edge_hash = !hash }

let of_tier tier ~seed = generate ~n_users:(tier_users tier) ~seed ()

let n_users t = t.n_users
let n_edges t = t.n_edges
let degree t u = t.offsets.(u + 1) - t.offsets.(u)

let mean_degree t =
  if t.n_users = 0 then 0. else 2. *. float_of_int t.n_edges /. float_of_int t.n_users

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n_users - 1 do
    if degree t u > !best then best := degree t u
  done;
  !best

let iter_friends t u f =
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.adj.(i)
  done

let friend t rng u =
  let d = degree t u in
  if d = 0 then u else t.adj.(t.offsets.(u) + Sim.Rng.int rng d)

let digest t = Printf.sprintf "%016Lx" t.edge_hash

module Ops = struct
  type graph = t

  type t = {
    g : graph;
    n_dcs : int;
    value_size : int;
    rng : Sim.Rng.t;
    mutable payload : int;
    mutable ops : int;
    mutable remote : int;
  }

  let master_dc g ~n_dcs ~user = user mod g.n_communities mod n_dcs
  let wall_key _ ~user = user
  let album_key g ~user = g.n_users + user
  let n_keys g = 2 * g.n_users
  let user_of_key g key = if key < g.n_users then key else key - g.n_users

  let replicas g ~n_dcs ~key =
    let m = master_dc g ~n_dcs ~user:(user_of_key g key) in
    if n_dcs < 2 then [ m ] else [ m; (m + 1) mod n_dcs ]

  let replicated_at g ~n_dcs ~key ~dc =
    let m = master_dc g ~n_dcs ~user:(user_of_key g key) in
    dc = m || (n_dcs >= 2 && dc = (m + 1) mod n_dcs)

  let create g ~n_dcs ~value_size ~seed =
    if n_dcs < 1 then invalid_arg "Scale.Ops.create: n_dcs < 1";
    if n_dcs > g.n_communities then invalid_arg "Scale.Ops.create: more datacenters than communities";
    { g; n_dcs; value_size; rng = Sim.Rng.create ~seed; payload = 0; ops = 0; remote = 0 }

  (* uniform user homed at [dc], O(1): communities are assigned to users
     round-robin (community u = u mod C) and to datacenters round-robin
     (master c = c mod n_dcs), so the users of [dc] are exactly
     { c + k*C | c ≡ dc (mod n_dcs) } — pick a stratum, then a row *)
  let user_at t ~dc =
    let c_count = ((t.g.n_communities - 1 - dc) / t.n_dcs) + 1 in
    let rec pick () =
      let c = dc + (t.n_dcs * Sim.Rng.int t.rng c_count) in
      let rows = ((t.g.n_users - 1 - c) / t.g.n_communities) + 1 in
      if rows <= 0 then pick ()
      else c + (t.g.n_communities * Sim.Rng.int t.rng rows)
    in
    pick ()

  let fresh_value t =
    t.payload <- t.payload + 1;
    Kvstore.Value.make ~payload:t.payload ~size_bytes:t.value_size

  let resolve_read t ~dc key =
    if replicated_at t.g ~n_dcs:t.n_dcs ~key ~dc then Op.Read { key }
    else begin
      t.remote <- t.remote + 1;
      Op.Remote_read { key; at = master_dc t.g ~n_dcs:t.n_dcs ~user:(user_of_key t.g key) }
    end

  let pick_kind t =
    let x = Sim.Rng.float t.rng 1.0 in
    let rec walk acc = function
      | [] -> Social_ops.Upload_album
      | (k, p) :: rest -> if x < acc +. p then k else walk (acc +. p) rest
    in
    walk 0. Social_ops.mix

  let next t ~dc =
    t.ops <- t.ops + 1;
    let user = user_at t ~dc in
    match pick_kind t with
    | Social_ops.Browse_friend_wall ->
      resolve_read t ~dc (wall_key t.g ~user:(friend t.g t.rng user))
    | Social_ops.Browse_friend_albums ->
      resolve_read t ~dc (album_key t.g ~user:(friend t.g t.rng user))
    | Social_ops.Read_own_wall -> Op.Read { key = wall_key t.g ~user }
    | Social_ops.Universal_search ->
      resolve_read t ~dc (wall_key t.g ~user:(Sim.Rng.int t.rng t.g.n_users))
    | Social_ops.Update_own_wall -> Op.Write { key = wall_key t.g ~user; value = fresh_value t }
    | Social_ops.Write_friend_wall ->
      (* writes must land on locally-mastered data; a friend mastered
         elsewhere gets the post on our own wall instead *)
      let fr = friend t.g t.rng user in
      let key =
        if master_dc t.g ~n_dcs:t.n_dcs ~user:fr = dc then wall_key t.g ~user:fr
        else wall_key t.g ~user
      in
      Op.Write { key; value = fresh_value t }
    | Social_ops.Upload_album -> Op.Write { key = album_key t.g ~user; value = fresh_value t }

  let ops_issued t = t.ops
  let remote_fraction t = if t.ops = 0 then 0. else float_of_int t.remote /. float_of_int t.ops
end
