(** Million-user scale tier: streaming social-graph generation and op
    streams with O(edges) memory.

    {!Social_graph} reproduces the New Orleans statistics faithfully but
    materialises an [Array.of_list] of the whole endpoint pool {e per
    attachment pick} — quadratic work that tops out around 10⁴ users. This
    module generates the same family of graphs (preferential attachment,
    round-robin communities, locality bias) against flat preallocated int
    arrays: the edge list itself doubles as the degree-proportional
    endpoint pool, so a pick is one array index. Generation is O(edges)
    time and memory, and streaming operations out of the finished graph
    allocates O(1) per op — no per-op list, no per-op closure.

    The benchmark tiers follow the paper's §7.4 dataset (61k ≈ the real
    New Orleans network) scaled ×4 and ×16: [T61k], [T250k], [T1m]. *)

type tier = T61k | T250k | T1m

val tiers : tier list
(** Smallest first. *)

val tier_name : tier -> string
(** ["61k"], ["250k"], ["1m"] — the keys used by [BENCH_engine.json]. *)

val tier_users : tier -> int
val tier_of_name : string -> tier option

type t
(** A generated graph: CSR adjacency plus community assignment. *)

val generate :
  n_users:int -> ?mean_degree:int -> ?locality:float -> ?communities:int -> seed:int -> unit -> t
(** Streaming preferential attachment. Defaults reproduce
    [Social_graph.facebook_scaled]: mean degree 30, communities ≈ n/250,
    locality 0.8. @raise Invalid_argument on nonsensical parameters. *)

val of_tier : tier -> seed:int -> t
(** [generate] at the tier's user count with facebook-shaped defaults. *)

val n_users : t -> int
val n_edges : t -> int
val degree : t -> int -> int
val mean_degree : t -> float
val max_degree : t -> int

val iter_friends : t -> int -> (int -> unit) -> unit
(** Neighbors of a user, ascending, straight out of the CSR row — no
    per-call array. *)

val digest : t -> string
(** FNV-1a (64-bit hex) over the edge stream in generation order — the
    fixed-seed determinism oracle for this generator. *)

(** Streaming operation source over a scale graph.

    Placement is arithmetic, not materialised: a user's master datacenter
    is [community mod n_dcs], and every key is replicated at its master
    and the next datacenter (so metadata always has somewhere to flow).
    Sampling a user of a given datacenter exploits the round-robin
    community layout and is O(1); resolving an op allocates only the
    returned {!Op.t}. *)
module Ops : sig
  type graph := t
  type t

  val n_keys : graph -> int
  (** [2 * n_users]: walls then albums. *)

  val replicas : graph -> n_dcs:int -> key:int -> int list
  (** Replica set of a key: master followed by the next datacenter
      (just the master when [n_dcs = 1]). For seeding a
      [Kvstore.Replica_map]. *)

  val create : graph -> n_dcs:int -> value_size:int -> seed:int -> t

  val next : t -> dc:int -> Op.t
  (** Next operation issued from a client homed at [dc], following the
      {!Social_ops.mix} distribution. Reads of keys not replicated at [dc]
      become remote reads at the key's master. *)

  val ops_issued : t -> int
  val remote_fraction : t -> float
end
