(** The full Saturn deployment: datacenters + bulk-data transfer + the
    metadata service, wired over a geographic topology.

    This is the module a user of the library instantiates: give it a
    topology, a replica map and a Saturn configuration, and drive it with
    clients. Baseline systems (eventual, GentleRain, Cure) live in the
    [baselines] library and expose the same operation surface through the
    harness. *)

type params = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;  (** geographic site of each datacenter *)
  partitions : int;
  frontends : int;
  cost : Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  config : Config.t;
  serializer_replicas : int;
  peer_mode : bool;
      (** true = P-configuration: no serializer tree; remote updates applied
          in conservative timestamp order from the bulk channel only *)
  bulk_factor : float;
      (** bulk-data path inflation over the shortest-path latency matrix:
          bulk transfers do not necessarily take the shortest path (§5.3),
          which is when artificial delays δ earn their keep *)
  clock_offsets : Sim.Time.t array option;
      (** per-datacenter physical-clock skew (NTP residue); [None] = all
          synchronized. Gears discipline timestamps regardless. *)
}

val default_params :
  topo:Sim.Topology.t ->
  dc_sites:Sim.Topology.site array ->
  rmap:Kvstore.Replica_map.t ->
  config:Config.t ->
  params

type hooks = {
  on_visible :
    dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit;
}

val no_hooks : hooks

type t

val create :
  ?registry:Stats.Registry.t -> ?series:Stats.Series.t -> Sim.Engine.t -> params -> hooks -> t
(** [series], when given, receives windowed queue-depth and throughput
    telemetry from every layer (sink hold queues, proxy pending sets,
    serializer ingress/backlog, metadata and bulk link in-flight counts)
    and the system drives its sampling tick until {!stop}. The tick only
    reads state and emits no probe events, so trace digests are unchanged.
    [registry] collects every counter of the deployment (per-datacenter
    counters are scoped by id, the serializer tree under ["service"]);
    a private registry is created when omitted. *)

val n_dcs : t -> int
val datacenter : t -> int -> Datacenter.t
val service : t -> Service.t option
(** [None] in peer mode. *)

val next_service : t -> Service.t option
(** The epoch-2 tree installed by {!switch_config}; [None] before a switch.
    Fault registries bind its serializers and links so faults compose with
    the migration window. *)

val bulk_link : t -> src:int -> dst:int -> Sim.Link.t
(** The directed bulk-data link between two datacenters — the handle a
    fault registry cuts, heals and degrades.
    @raise Invalid_argument when [src = dst]. *)

val params : t -> params

(** {2 Client operations} (continuation-passing; includes network latency
    from the client's home site to the target datacenter) *)

val attach : t -> Client_lib.t -> dc:int -> k:(unit -> unit) -> unit
val read : t -> Client_lib.t -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
(** At the client's current datacenter. *)

val update : t -> Client_lib.t -> key:int -> value:Kvstore.Value.t -> k:(unit -> unit) -> unit

val update_with_label :
  t -> Client_lib.t -> key:int -> value:Kvstore.Value.t -> k:(Label.t -> unit) -> unit
(** Like {!update} but hands the minted label to the continuation, as the
    paper's frontend does (Algorithm 1 returns the label to the client
    library). Useful for tools and session-guarantee checks. *)

val migrate : t -> Client_lib.t -> dest_dc:int -> k:(unit -> unit) -> unit
(** Issues the migration label at the current datacenter, then attaches at
    [dest_dc]; on completion the client is attached there. *)

(** {2 Online reconfiguration (§6.2)} *)

val switch_config : t -> Config.t -> graceful:bool -> unit
(** Installs a new tree. [graceful = true] runs the epoch-change protocol
    through the old tree; [graceful = false] runs the fallback protocol for
    a broken old tree (timestamp order during the transition). One switch
    per system lifetime is supported — the paper's reconfigurations are
    rare, operator-triggered events; chain further switches by rebuilding.

    Observability: emits a [Switch_begin] probe event (each proxy emits
    [Switch_done] as it finishes), bumps [reconfig.switches], counts labels
    routed into either tree during the migration window under
    [reconfig.labels_old_tree] / [reconfig.labels_new_tree], accumulates the
    window's length in [reconfig.dual_window_us], and (with a series) holds
    the [series.reconfig.dual_tree] gauge at 1 for the window's duration. *)

val switch_complete : t -> bool

(** {2 Failure injection} *)

val crash_serializer : t -> int -> unit
val enter_fallback : t -> unit
(** Puts every proxy in timestamp-fallback mode (Saturn outage response). *)

val stop : t -> unit

(** {2 Statistics} *)

val total_updates : t -> int
val total_remote_applied : t -> int
