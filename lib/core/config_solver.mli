(** Placement-and-delay optimizer for a fixed tree shape.

    Plays the role of the OscaR constraint solver in the paper's
    configuration pipeline: given a tree over the datacenters, choose (a) a
    geographic site for every serializer from the candidate set W and (b)
    non-negative artificial delays δ per directed hop, minimizing the
    Weighted Minimal Mismatch objective.

    The objective is convex piecewise-linear in the delays, so for a fixed
    placement we run exact coordinate descent (each coordinate minimized by
    a weighted median). Placement is optimized by coordinate descent with
    random restarts, seeded deterministically. *)

type problem = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;  (** geographic site of each datacenter *)
  candidates : Sim.Topology.site array;  (** W: allowed serializer locations *)
  crit : Mismatch.t;
}

val default_candidates : dc_sites:Sim.Topology.site array -> Sim.Topology.site array
(** Each datacenter is a natural potential serializer location (§5.4). *)

val optimize_delays : problem -> Config.t -> float
(** Sets the config's artificial delays to a minimizer for its placement.
    Returns the resulting objective value. *)

val optimize_placement :
  ?fast:bool -> ?restarts:int -> rng:Sim.Rng.t -> problem -> Tree.t -> Config.t * float
(** Full solve for one tree shape. [fast] ranks candidate placements with
    the cheap lower bound (used while enumerating many trees); the returned
    config always has fully optimized delays and the returned float is the
    true objective. Default [restarts] is 3. *)

val solve : ?restarts:int -> seed:int -> problem -> Tree.t -> Config.t * float
(** Convenience wrapper: deterministic full solve. *)

val solve_exact : ?max_enum:int -> problem -> Tree.t -> Config.t * float
(** Exhaustive placement enumeration (the constraint-solver role played by
    OscaR in the paper for one tree): every assignment of serializers to
    candidate sites is tried, each with exact-coordinate-descent delays.
    @raise Invalid_argument when the enumeration would exceed [max_enum]
    placements (default 200,000). *)
