type t = {
  clock : Sim.Clock.t;
  dc : int;
  gear_id : int;
  mutable last_ts : Sim.Time.t;
  mutable issued : int;
}

let create clock ~dc ~gear_id = { clock; dc; gear_id; last_ts = Sim.Time.zero; issued = 0 }

let generate_ts t ~client_ts =
  let physical = Sim.Clock.read t.clock in
  let ts =
    Sim.Time.max physical
      (Sim.Time.max (Sim.Time.add client_ts (Sim.Time.of_us 1)) (Sim.Time.add t.last_ts (Sim.Time.of_us 1)))
  in
  t.last_ts <- ts;
  t.issued <- t.issued + 1;
  ts

let floor t = Sim.Time.max (Sim.Clock.peek t.clock) t.last_ts
let issued t = t.issued
