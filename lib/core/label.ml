type target =
  | Update of { key : int }
  | Migration of { dest_dc : int }
  | Epoch_change of { epoch : int }

type t = { ts : Sim.Time.t; src_dc : int; src_gear : int; target : target }

let update ~ts ~src_dc ~src_gear ~key = { ts; src_dc; src_gear; target = Update { key } }

let migration ~ts ~src_dc ~src_gear ~dest_dc =
  { ts; src_dc; src_gear; target = Migration { dest_dc } }

(* The epoch-change marker's src_gear: the maximum that fits [key_src]'s
   20-bit gear field. No real gear index reaches it (gear counts are
   partition counts, a few bits), so at equal ts the marker sorts after
   every data label from its own datacenter under [compare_ts_src] — the
   §6.2 requirement that the marker is the last label through the old
   tree — and doubles as the marker's identity in the probe stream. *)
let marker_gear = 0xFFFFF

let epoch_change ~ts ~src_dc ~epoch =
  { ts; src_dc; src_gear = marker_gear; target = Epoch_change { epoch } }

let compare_target a b =
  let rank = function Update _ -> 0 | Migration _ -> 1 | Epoch_change _ -> 2 in
  match (a, b) with
  | Update { key = ka }, Update { key = kb } -> Int.compare ka kb
  | Migration { dest_dc = da }, Migration { dest_dc = db } -> Int.compare da db
  | Epoch_change { epoch = ea }, Epoch_change { epoch = eb } -> Int.compare ea eb
  | (Update _ | Migration _ | Epoch_change _), _ -> Int.compare (rank a) (rank b)

let compare_ts_src a b =
  match Sim.Time.compare a.ts b.ts with
  | 0 -> ( match Int.compare a.src_dc b.src_dc with 0 -> Int.compare a.src_gear b.src_gear | c -> c )
  | c -> c

let compare a b =
  match compare_ts_src a b with 0 -> compare_target a.target b.target | c -> c

(* Integer keys realising [compare_ts_src] for Sim.Heap.Keyed buffers:
   k1 = timestamp in µs, k2 = (src_dc, src_gear) packed. Gear indices are
   partition counts (a few bits); 20 bits leaves src_dc its full range on
   63-bit ints. *)
let key_ts t = Sim.Time.to_us t.ts
let key_src t = (t.src_dc lsl 20) lor t.src_gear

let equal a b = compare a b = 0
let is_update t = match t.target with Update _ -> true | Migration _ | Epoch_change _ -> false
let is_migration t = match t.target with Migration _ -> true | Update _ | Epoch_change _ -> false

(* type tag (1) + ts (8) + src (4) + target (4): the constant footprint the
   paper argues for. *)
let size_bytes = 17

let pp ppf t =
  match t.target with
  | Update { key } ->
    Format.fprintf ppf "upd⟨ts=%a src=%d.%d key=%d⟩" Sim.Time.pp t.ts t.src_dc t.src_gear key
  | Migration { dest_dc } ->
    Format.fprintf ppf "mig⟨ts=%a src=%d.%d dest=dc%d⟩" Sim.Time.pp t.ts t.src_dc t.src_gear dest_dc
  | Epoch_change { epoch } ->
    Format.fprintf ppf "epoch⟨ts=%a src=%d epoch=%d⟩" Sim.Time.pp t.ts t.src_dc epoch
