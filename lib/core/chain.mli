(** Chain replication of a serializer (§6.1).

    A logical serializer is a chain of replicas at one site. Messages enter
    at the head, are stored and forwarded replica-to-replica over intra-site
    links, and commit at the tail, which is when the group output fires and
    the external sender is acknowledged. The prefix property of chain
    replication (every replica stores a superset of its successors) makes
    fail-stop crashes of any replica recoverable with no loss, duplication
    or reordering: on a crash the chain heals, the predecessor re-syncs its
    new successor, and unacknowledged external messages are retransmitted
    and deduplicated by origin key.

    With [replicas = 1] (the common experimental setup) the chain degrades
    to a plain process with one intra-site hop worth of latency removed. *)

type 'msg t

val create :
  Sim.Engine.t ->
  replicas:int ->
  intra_latency:Sim.Time.t ->
  deliver:('msg -> unit) ->
  unit ->
  'msg t
(** [deliver] fires exactly once per committed message, in commit order.
    @raise Invalid_argument when [replicas < 1]. *)

val input : 'msg t -> ext_key:int * int -> 'msg -> confirm:(unit -> unit) -> unit
(** Hands a message to the current head. [ext_key] identifies the message
    at its origin (sender id × sequence) so that retransmissions after a
    head crash are not committed twice. [confirm] fires at commit (used to
    acknowledge the external sender). *)

val set_on_head_change : 'msg t -> (unit -> unit) -> unit
(** Invoked after a head crash heals the chain. Sequence numbers the dead
    head assigned to unreplicated messages are gone, so the service uses
    this hook to replay delivered-but-unconfirmed channel messages into the
    new head (deduplicated by origin key). *)

val crash_replica : 'msg t -> int -> unit
(** Fail-stop crash of replica [i] (0-based original index). The chain
    heals immediately — fail-stop detection is assumed instantaneous, as in
    the paper's fault model. @raise Invalid_argument if already crashed or
    out of range. *)

val alive_replicas : 'msg t -> int
val committed : 'msg t -> int
val is_down : 'msg t -> bool
(** True when every replica has crashed. *)
