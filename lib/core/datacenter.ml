type hooks = {
  ship_payload : dst:int -> Proxy.payload -> unit;
  emit_label : Label.t -> unit;
  on_remote_visible : key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit;
}

type t = {
  engine : Sim.Engine.t;
  dc : int;
  cost : Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  hooks : hooks;
  partitioning : Kvstore.Partitioning.t;
  clock : Sim.Clock.t;
  servers : Sim.Server.t array;
  stores : (Label.t, int) Kvstore.Store.t array;
  gears : Gear.t array;
  frontends : Sim.Server.t array;
  mutable next_frontend : int;
  mutable next_gear : int;
  sink : Sink.t;
  mutable proxy : Proxy.t;
  updates_counter : Stats.Registry.counter;
  mutable stopped : bool;
}

let proxy t = t.proxy

let responsible t ~key = Kvstore.Partitioning.responsible t.partitioning ~key
let store_of_key t ~key = t.stores.(responsible t ~key)

let gear_floor t =
  Array.fold_left (fun acc g -> Sim.Time.min acc (Gear.floor g)) Sim.Time.infinity t.gears

(* staging pays the remote-apply service time when the payload arrives;
   installation later flips visibility at the payload's position in the
   causal serialization *)
let stage_remote t (p : Proxy.payload) ~k =
  match p.label.Label.target with
  | Label.Update { key } ->
    let part = responsible t ~key in
    let cost =
      Sim.Time.of_us (Cost_model.saturn_apply_us t.cost ~size_bytes:p.value.Kvstore.Value.size_bytes)
    in
    Sim.Server.submit t.servers.(part) ~cost k
  | Label.Migration _ | Label.Epoch_change _ ->
    (* only update payloads travel on the bulk channel *)
    assert false

let install_remote t (p : Proxy.payload) =
  match p.label.Label.target with
  | Label.Update { key } ->
    let part = responsible t ~key in
    let _ = Kvstore.Store.put_if_newer t.stores.(part) ~cmp:Label.compare ~key p.value p.label in
    t.hooks.on_remote_visible ~key ~origin_dc:p.label.Label.src_dc ~origin_time:p.origin_time
      ~value:p.value
  | Label.Migration _ | Label.Epoch_change _ -> assert false

let create engine ~dc ~n_dcs ~partitions ~frontends ~cost ~rmap ~hooks ?(clock_offset = Sim.Time.zero)
    ?registry ?series ?(proxy_mode = Proxy.Stream) () =
  let registry = match registry with Some r -> r | None -> Stats.Registry.create () in
  let clock = Sim.Clock.create ~offset:clock_offset engine in
  let gears = Array.init partitions (fun gear_id -> Gear.create clock ~dc ~gear_id) in
  let sink =
    Sink.create engine ~gears ~period:cost.Cost_model.sink_period ~emit:(fun l -> hooks.emit_label l)
      ~registry ?series ~name:(Printf.sprintf "sink.dc%d" dc) ()
  in
  let t =
    {
      engine;
      dc;
      cost;
      rmap;
      hooks;
      partitioning = Kvstore.Partitioning.create ~partitions;
      clock;
      servers = Array.init partitions (fun _ -> Sim.Server.create engine);
      stores = Array.init partitions (fun _ -> Kvstore.Store.create ());
      gears;
      frontends = Array.init frontends (fun _ -> Sim.Server.create engine);
      next_frontend = 0;
      next_gear = 0;
      sink;
      proxy =
        Proxy.create engine ~dc ~n_dcs
          ~stage_update:(fun _ ~k -> k ())
          ~install_update:(fun _ -> ())
          ~registry ~mode:proxy_mode ();
      updates_counter = Stats.Registry.counter registry (Printf.sprintf "dc%d.updates_originated" dc);
      stopped = false;
    }
  in
  (* tie the proxy's staging/install back to the datacenter's servers; only
     this real proxy registers series gauges — the placeholder above must
     not claim the names *)
  t.proxy <-
    Proxy.create engine ~dc ~n_dcs
      ~stage_update:(fun p ~k -> stage_remote t p ~k)
      ~install_update:(fun p -> install_remote t p)
      ~registry ?series ~mode:proxy_mode ();
  (* long-running deployments: bound the proxy's applied-label bookkeeping *)
  Sim.Engine.periodic engine ~every:(Sim.Time.of_sec 10.) (fun () -> Proxy.compact t.proxy)
    ~stop:(fun () -> t.stopped);
  t

let via_frontend t k =
  let fe = t.frontends.(t.next_frontend) in
  t.next_frontend <- (t.next_frontend + 1) mod Array.length t.frontends;
  Sim.Server.submit fe ~cost:(Sim.Time.of_us t.cost.Cost_model.frontend_us) k

let attach t ~client_label ~k =
  via_frontend t (fun () ->
      match client_label with
      | None -> k ()
      | Some (label : Label.t) ->
        if label.Label.src_dc = t.dc then k ()
        else begin
          match label.Label.target with
          | Label.Migration { dest_dc } when dest_dc = t.dc && Proxy.mode t.proxy = Proxy.Stream ->
            (* the fast path needs the tree to deliver the migration label;
               in fallback/peer mode only timestamp stabilization works *)
            Proxy.wait_for_label t.proxy label k
          | Label.Migration _ | Label.Update _ | Label.Epoch_change _ ->
            Proxy.wait_for_ts t.proxy label.Label.ts k
        end)

let read t ~key ~k =
  via_frontend t (fun () ->
      let part = responsible t ~key in
      (* read cost depends on the stored value's size *)
      let size =
        match Kvstore.Store.get t.stores.(part) ~key with
        | Some (v, _) -> v.Kvstore.Value.size_bytes
        | None -> 0
      in
      let cost = Sim.Time.of_us (Cost_model.saturn_read_us t.cost ~size_bytes:size) in
      Sim.Server.submit t.servers.(part) ~cost (fun () -> k (Kvstore.Store.get t.stores.(part) ~key)))

let update t ~key ~value ~client_ts ~k =
  via_frontend t (fun () ->
      let part = responsible t ~key in
      let cost =
        Sim.Time.of_us (Cost_model.saturn_write_us t.cost ~size_bytes:value.Kvstore.Value.size_bytes)
      in
      Sim.Server.submit t.servers.(part) ~cost (fun () ->
          let gear = t.gears.(part) in
          let ts = Gear.generate_ts gear ~client_ts in
          let label = Label.update ~ts ~src_dc:t.dc ~src_gear:part ~key in
          Kvstore.Store.put t.stores.(part) ~key value label;
          Stats.Registry.incr t.updates_counter;
          let origin_time = Sim.Engine.now t.engine in
          List.iter
            (fun dst ->
              if dst <> t.dc then
                (* epoch 0 placeholder: the ship hook stamps the system's
                   current epoch on the way out *)
                t.hooks.ship_payload ~dst { Proxy.label; value; origin_time; epoch = 0 })
            (Kvstore.Replica_map.replicas t.rmap ~key);
          Sink.offer t.sink label;
          k label))

let migrate t ~dest_dc ~client_ts ~k =
  via_frontend t (fun () ->
      let part = t.next_gear in
      t.next_gear <- (t.next_gear + 1) mod Array.length t.gears;
      let cost = Sim.Time.of_us t.cost.Cost_model.scalar_meta_us in
      Sim.Server.submit t.servers.(part) ~cost (fun () ->
          let gear = t.gears.(part) in
          let ts = Gear.generate_ts gear ~client_ts in
          let label = Label.migration ~ts ~src_dc:t.dc ~src_gear:part ~dest_dc in
          Sink.offer t.sink label;
          k label))

let emit_epoch_label t ~epoch =
  let gear = t.gears.(0) in
  let ts = Gear.generate_ts gear ~client_ts:Sim.Time.zero in
  let label = Label.epoch_change ~ts ~src_dc:t.dc ~epoch in
  Sink.offer t.sink label;
  label

let bump_clock t d = Sim.Clock.bump t.clock d

let stop t =
  t.stopped <- true;
  Sink.stop t.sink
let updates_originated t = Stats.Registry.counter_value t.updates_counter
let remote_applied t = Proxy.applied_updates t.proxy
