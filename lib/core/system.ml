type params = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  partitions : int;
  frontends : int;
  cost : Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  config : Config.t;
  serializer_replicas : int;
  peer_mode : bool;
  bulk_factor : float;
  clock_offsets : Sim.Time.t array option;
}

let default_params ~topo ~dc_sites ~rmap ~config =
  {
    topo;
    dc_sites;
    partitions = 4;
    frontends = 2;
    cost = Cost_model.default;
    rmap;
    config;
    serializer_replicas = 1;
    peer_mode = false;
    bulk_factor = 1.0;
    clock_offsets = None;
  }

type hooks = {
  on_visible :
    dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit;
}

let no_hooks = { on_visible = (fun ~dc:_ ~key:_ ~origin_dc:_ ~origin_time:_ ~value:_ -> ()) }

type route = { mutable to_next : bool; mutable marker : Label.t option }

type t = {
  engine : Sim.Engine.t;
  p : params;
  hooks : hooks;
  registry : Stats.Registry.t;
  mutable dcs : Datacenter.t array;
  bulk : Sim.Link.t array array; (* [src].[dst]; diagonal unused *)
  mutable service : Service.t option;
  mutable next_service : Service.t option;
  routes : route array; (* per-dc: which tree the sink currently feeds *)
  mutable epoch : int;
  mutable stopped : bool;
  (* reconfiguration observability: the dual-tree overlap window is open
     from [switch_config] until the last proxy completes its migration *)
  mutable switch_at : Sim.Time.t option;
  mutable switch_pending_dcs : int;
  switches_counter : Stats.Registry.counter;
  labels_old_counter : Stats.Registry.counter;
  labels_new_counter : Stats.Registry.counter;
  dual_window_counter : Stats.Registry.counter;
}

let n_dcs t = Array.length t.dcs
let datacenter t i = t.dcs.(i)
let service t = t.service
let next_service t = t.next_service
let params t = t.p

let bulk_link t ~src ~dst =
  if src = dst then invalid_arg "System.bulk_link: src = dst";
  t.bulk.(src).(dst)

let interest_of p label =
  match label.Label.target with
  | Label.Update { key } -> Kvstore.Replica_map.replicas p.rmap ~key
  | Label.Migration { dest_dc } -> [ dest_dc ]
  | Label.Epoch_change _ -> List.init (Array.length p.dc_sites) Fun.id

let deliver_current t ~dc label = Proxy.on_label (Datacenter.proxy t.dcs.(dc)) label
let deliver_next t ~dc label = Proxy.on_label_next (Datacenter.proxy t.dcs.(dc)) label

let route_label t dc label =
  let route = t.routes.(dc) in
  let input service = Service.input service ~dc label in
  let in_dual_window = t.switch_at <> None && t.switch_pending_dcs > 0 in
  (if route.to_next then begin
     if in_dual_window then Stats.Registry.incr t.labels_new_counter;
     Option.iter input t.next_service
   end
   else begin
     if in_dual_window then Stats.Registry.incr t.labels_old_counter;
     Option.iter input t.service
   end);
  (* the epoch-change marker is the last label through the old tree *)
  match route.marker with
  | Some m when Label.equal m label -> route.to_next <- true
  | Some _ | None -> ()

let heartbeat_wire_bytes = 12 (* floor ts (8) + src dc (2) + epoch tag (2) *)

let create ?registry ?series engine p hooks =
  let registry = match registry with Some r -> r | None -> Stats.Registry.create () in
  (* Metadata-byte accounting: Saturn attaches one constant label per
     remote payload shipment; the metadata tree itself is the
     stabilization mechanism (its cost shows up as tree-hop latency, not
     as per-update wire bytes), so the stabilization counter stays 0 by
     construction and only heartbeats add background bytes. *)
  let meta = Stats.Meta_bytes.create registry ~system:"saturn" in
  let n = Array.length p.dc_sites in
  let bulk =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let lat =
              if i = j then Sim.Time.zero else Sim.Topology.latency p.topo p.dc_sites.(i) p.dc_sites.(j)
            in
            let lat = Sim.Time.of_us (int_of_float (float_of_int (Sim.Time.to_us lat) *. p.bulk_factor)) in
            Sim.Link.create engine ~latency:lat ()))
  in
  let t =
    {
      engine;
      p;
      hooks;
      registry;
      dcs = [||];
      bulk;
      service = None;
      next_service = None;
      routes = Array.init n (fun _ -> { to_next = false; marker = None });
      epoch = 0;
      stopped = false;
      switch_at = None;
      switch_pending_dcs = 0;
      switches_counter = Stats.Registry.counter registry "reconfig.switches";
      labels_old_counter = Stats.Registry.counter registry "reconfig.labels_old_tree";
      labels_new_counter = Stats.Registry.counter registry "reconfig.labels_new_tree";
      dual_window_counter = Stats.Registry.counter registry "reconfig.dual_window_us";
    }
  in
  t.dcs <-
    Array.init n (fun dc ->
        let hooks_dc =
          {
            Datacenter.ship_payload =
              (fun ~dst payload ->
                (* stamp the sender's epoch at SEND time: the drain barrier
                   relies on per-channel FIFO, so a tag read at delivery
                   time would claim too much *)
                let payload = { payload with Proxy.epoch = t.epoch } in
                let size = payload.Proxy.value.Kvstore.Value.size_bytes + Label.size_bytes in
                Stats.Meta_bytes.record_op meta ~bytes:Label.size_bytes ~fanout:1;
                if Sim.Probe.active () then begin
                  (* closed at [dst] once the payload finishes staging *)
                  let l = payload.Proxy.label in
                  Sim.Span.begin_ ~at:(Sim.Engine.now engine) Sim.Span.Sk_bulk
                    ~origin:l.Label.src_dc ~seq:(Sim.Time.to_us l.Label.ts) ~aux:l.Label.src_gear
                    ~site:l.Label.src_dc ~peer:dst
                end;
                Sim.Link.send t.bulk.(dc).(dst) ~size_bytes:size (fun () ->
                    Proxy.on_payload (Datacenter.proxy t.dcs.(dst)) payload));
            emit_label = (fun label -> route_label t dc label);
            on_remote_visible =
              (fun ~key ~origin_dc ~origin_time ~value ->
                hooks.on_visible ~dc ~key ~origin_dc ~origin_time ~value);
          }
        in
        let clock_offset =
          match p.clock_offsets with Some offs -> offs.(dc) | None -> Sim.Time.zero
        in
        Datacenter.create engine ~dc ~n_dcs:n ~partitions:p.partitions ~frontends:p.frontends
          ~cost:p.cost ~rmap:p.rmap ~hooks:hooks_dc ~clock_offset ~registry ?series
          ~proxy_mode:(if p.peer_mode then Proxy.Fallback else Proxy.Stream)
          ());
  if not p.peer_mode then
    t.service <-
      Some
        (Service.create engine ~topo:p.topo ~config:p.config ~interest:(interest_of p)
           ~deliver:(fun ~dc label -> deliver_current t ~dc label)
           ~serializer_replicas:p.serializer_replicas ~registry ?series ~name:"service"
           ~instance:0 ());
  (match series with
  | Some sr ->
    (* datastore-plane wire depth: every inter-dc bulk link, flattened in
       (src, dst) order once at startup *)
    let bulk_links = ref [] in
    for i = n - 1 downto 0 do
      for j = n - 1 downto 0 do
        if i <> j then bulk_links := bulk.(i).(j) :: !bulk_links
      done
    done;
    let bulk_links = !bulk_links in
    Stats.Series.sample sr "series.link.bulk.in_flight" (fun () ->
        float_of_int
          (List.fold_left (fun acc l -> acc + Sim.Link.in_flight_count l) 0 bulk_links));
    (* dual-tree overlap: 1 while a reconfiguration is migrating (both trees
       carry traffic), 0 at steady state *)
    Stats.Series.sample sr "series.reconfig.dual_tree" (fun () ->
        if t.switch_at <> None && t.switch_pending_dcs > 0 then 1.0 else 0.0);
    (* drive the sampling clock: ticks only read state and emit no probe
       events, so the trace digest is unchanged by instrumentation *)
    Sim.Engine.periodic engine ~every:(Stats.Series.tick_period sr)
      (fun () -> Stats.Series.tick sr ~now:(Sim.Engine.now engine))
      ~stop:(fun () -> t.stopped)
  | None -> ());
  (* bulk-channel heartbeats: each datacenter periodically promises its gear
     floor to every other datacenter (liveness for attach stabilization and
     for the timestamp fallback) *)
  for dc = 0 to n - 1 do
    Sim.Engine.periodic engine ~every:p.cost.Cost_model.heartbeat_period
      (fun () ->
        let floor = Datacenter.gear_floor t.dcs.(dc) in
        let epoch = t.epoch in
        (* captured at send time, like payload tags *)
        for dst = 0 to n - 1 do
          if dst <> dc then begin
            Stats.Meta_bytes.record_heartbeat meta ~bytes:heartbeat_wire_bytes;
            Sim.Link.send t.bulk.(dc).(dst) ~size_bytes:heartbeat_wire_bytes (fun () ->
                Proxy.on_heartbeat (Datacenter.proxy t.dcs.(dst)) ~src:dc ~epoch floor)
          end
        done)
      ~stop:(fun () -> t.stopped)
  done;
  t

(* ---- client operations -------------------------------------------------- *)

let request_latency t client ~dc =
  let dc_site = t.p.dc_sites.(dc) in
  let home = Client_lib.home_site client in
  if home = dc_site then Sim.Time.of_us t.p.cost.Cost_model.intra_dc_us
  else Sim.Topology.latency t.p.topo home dc_site

let round_trip t client ~dc work ~k =
  let lat = request_latency t client ~dc in
  Sim.Engine.schedule t.engine ~delay:lat (fun () ->
      work (fun result -> Sim.Engine.schedule t.engine ~delay:lat (fun () -> k result)))

let attach t client ~dc ~k =
  round_trip t client ~dc
    (fun reply ->
      Datacenter.attach t.dcs.(dc) ~client_label:(Client_lib.causal_past client) ~k:(fun () ->
          reply ()))
    ~k:(fun () ->
      Client_lib.set_current_dc client dc;
      k ())

let read t client ~key ~k =
  let dc = Client_lib.current_dc client in
  round_trip t client ~dc
    (fun reply -> Datacenter.read t.dcs.(dc) ~key ~k:reply)
    ~k:(fun result ->
      match result with
      | Some (value, label) ->
        Client_lib.observe client label;
        k (Some value)
      | None -> k None)

let update_with_label t client ~key ~value ~k =
  let dc = Client_lib.current_dc client in
  round_trip t client ~dc
    (fun reply ->
      Datacenter.update t.dcs.(dc) ~key ~value ~client_ts:(Client_lib.causal_ts client) ~k:reply)
    ~k:(fun label ->
      Client_lib.observe client label;
      k label)

let update t client ~key ~value ~k = update_with_label t client ~key ~value ~k:(fun _ -> k ())

let migrate t client ~dest_dc ~k =
  let dc = Client_lib.current_dc client in
  (* Migration labels are an optimization (§4.4), not a requirement: they
     pay one request round-trip to the current datacenter. That is free
     when the client is at its preferred site, but from a remote datacenter
     the request itself crosses the WAN, costing more than the conservative
     attach it would save — so a returning client attaches directly
     (Algorithm 1 handles its label: instantly when the causal past was
     generated at the destination, per-source stabilization otherwise). *)
  if dc = Client_lib.preferred_dc client && not t.p.peer_mode then
    round_trip t client ~dc
      (fun reply ->
        Datacenter.migrate t.dcs.(dc) ~dest_dc ~client_ts:(Client_lib.causal_ts client) ~k:reply)
      ~k:(fun label ->
        Client_lib.observe client label;
        attach t client ~dc:dest_dc ~k)
  else attach t client ~dc:dest_dc ~k

(* ---- reconfiguration ---------------------------------------------------- *)

let switch_config t config2 ~graceful =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let now = Sim.Engine.now t.engine in
  Stats.Registry.incr t.switches_counter;
  t.switch_at <- Some now;
  t.switch_pending_dcs <- Array.length t.dcs;
  if Sim.Probe.active () then Sim.Probe.emit ~at:now (Sim.Probe.Switch_begin { epoch; graceful });
  let service2 =
    Service.create t.engine ~topo:t.p.topo ~config:config2 ~interest:(interest_of t.p)
      ~deliver:(fun ~dc label -> deliver_next t ~dc label)
      ~serializer_replicas:t.p.serializer_replicas ~registry:t.registry
      ~name:(Printf.sprintf "service.e%d" epoch) ~instance:epoch ()
  in
  t.next_service <- Some service2;
  Array.iteri
    (fun dc dcx ->
      let proxy = Datacenter.proxy dcx in
      (* close the dual-tree window when the last proxy finishes migrating *)
      Proxy.on_switch_done proxy (fun () ->
          t.switch_pending_dcs <- t.switch_pending_dcs - 1;
          if t.switch_pending_dcs = 0 then
            match t.switch_at with
            | Some t0 ->
              let dual_us = Sim.Time.to_us (Sim.Engine.now t.engine) - Sim.Time.to_us t0 in
              Stats.Registry.incr ~by:dual_us t.dual_window_counter
            | None -> ());
      if graceful then begin
        Proxy.start_graceful_switch proxy ~epoch;
        (* inject the epoch-change marker through the old tree; labels the
           sink emits after it flow through the new tree *)
        let marker = Datacenter.emit_epoch_label dcx ~epoch in
        t.routes.(dc).marker <- Some marker
      end
      else begin
        Proxy.start_forced_switch proxy ~epoch;
        t.routes.(dc).to_next <- true
      end)
    t.dcs

let switch_complete t =
  Array.for_all (fun dcx -> Proxy.switch_complete (Datacenter.proxy dcx)) t.dcs

let crash_serializer t s =
  match t.service with
  | Some service -> Service.crash_serializer service s
  | None -> invalid_arg "System.crash_serializer: peer mode has no serializers"

let enter_fallback t =
  Array.iter (fun dcx -> Proxy.set_mode (Datacenter.proxy dcx) Proxy.Fallback) t.dcs

let stop t =
  t.stopped <- true;
  Array.iter Datacenter.stop t.dcs;
  Option.iter Service.shutdown t.service;
  Option.iter Service.shutdown t.next_service

let total_updates t = Array.fold_left (fun acc d -> acc + Datacenter.updates_originated d) 0 t.dcs

let total_remote_applied t =
  Array.fold_left (fun acc d -> acc + Datacenter.remote_applied d) 0 t.dcs
