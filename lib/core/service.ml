type msg = { uid : int * int; label : Label.t; targets : int list }

type attach_links = {
  in_data : Sim.Link.t;
  in_ack : Sim.Link.t;
  out_data : Sim.Link.t;
  out_ack : Sim.Link.t;
}

type t = {
  engine : Sim.Engine.t;
  topo : Sim.Topology.t;
  config : Config.t;
  instance : int; (* disambiguates uid-keyed spans across service epochs *)
  deliver : dc:int -> Label.t -> unit;
  interest : Label.t -> int list;
  mutable chains : msg Chain.t array;
  (* serializer and datacenter id spaces are dense, so the per-hop routing
     tables are plain arrays indexed [from].[to] — no (int*int) hashing on
     the per-label path *)
  edge_senders : msg Reliable_fifo.sender option array array;
  edge_links : (Sim.Link.t * Sim.Link.t) option array array; (* a->b: data, ack *)
  dc_in_senders : msg Reliable_fifo.sender array;
  dc_out_senders : Label.t Reliable_fifo.sender option array;
  mutable dc_links : attach_links array; (* dc <-> home-serializer channels *)
  uid_counter : int array;
  input_counter : Stats.Registry.counter;
  delivered_counter : Stats.Registry.counter;
  head_change_counter : Stats.Registry.counter;
  mutable all_senders : (unit -> unit) list; (* stop functions *)
}

let resend_period lat = Sim.Time.add (Sim.Time.add lat lat) (Sim.Time.of_ms 50)

let probe_delay t s delta =
  if Sim.Time.compare delta Sim.Time.zero > 0 then
    Sim.Probe.emit ~at:(Sim.Engine.now t.engine)
      (Sim.Probe.Delay_wait { serializer = s; us = Sim.Time.to_us delta })

let positive delta = Sim.Time.compare delta Sim.Time.zero > 0

let route t s msg =
  let origin, oseq = msg.uid in
  if Sim.Probe.active () then begin
    let at = Sim.Engine.now t.engine in
    Sim.Probe.emit ~at (Sim.Probe.Ser_commit { ser = s; origin; oseq; epoch = t.instance });
    Sim.Span.end_ ~at Sim.Span.Sk_chain ~origin ~seq:oseq ~aux:t.instance ~site:s
      ~epoch:t.instance
  end;
  let tree = Config.tree t.config in
  let local = List.filter (fun dc -> List.mem dc (Tree.dcs_at tree s)) msg.targets in
  List.iter
    (fun dc ->
      let delta = Config.delay t.config ~from:s ~hop:(To_dc dc) in
      if Sim.Probe.active () then begin
        let at = Sim.Engine.now t.engine in
        Sim.Probe.emit ~at (Sim.Probe.Serializer_deliver { dc });
        probe_delay t s delta;
        if positive delta then
          Sim.Span.begin_ ~at Sim.Span.Sk_delay_egress ~origin ~seq:oseq ~aux:t.instance ~site:s
            ~peer:dc ~epoch:t.instance
      end;
      let sender =
        match t.dc_out_senders.(dc) with Some snd -> snd | None -> assert false
      in
      Sim.Engine.schedule t.engine ~delay:delta (fun () ->
          if Sim.Probe.active () then begin
            let at = Sim.Engine.now t.engine in
            if positive delta then
              Sim.Span.end_ ~at Sim.Span.Sk_delay_egress ~origin ~seq:oseq ~aux:t.instance ~site:s
                ~peer:dc ~epoch:t.instance;
            let l = msg.label in
            Sim.Span.begin_ ~at Sim.Span.Sk_egress ~origin:l.Label.src_dc
              ~seq:(Sim.Time.to_us l.Label.ts) ~aux:l.Label.src_gear ~site:s ~peer:dc
              ~epoch:t.instance
          end;
          Reliable_fifo.send sender ~size_bytes:Label.size_bytes msg.label))
    local;
  List.iter
    (fun b ->
      let behind = Tree.dcs_behind tree ~from:s ~via:b in
      let sub = List.filter (fun dc -> List.mem dc behind) msg.targets in
      if sub <> [] then begin
        let delta = Config.delay t.config ~from:s ~hop:(To_serializer b) in
        if Sim.Probe.active () then begin
          let at = Sim.Engine.now t.engine in
          Sim.Probe.emit ~at (Sim.Probe.Serializer_hop { from_ser = s; to_ser = b });
          probe_delay t s delta;
          if positive delta then
            Sim.Span.begin_ ~at Sim.Span.Sk_delay_hop ~origin ~seq:oseq ~aux:t.instance ~site:s
              ~peer:b ~epoch:t.instance
        end;
        let sender =
          match t.edge_senders.(s).(b) with Some snd -> snd | None -> assert false
        in
        let forwarded = { msg with targets = sub } in
        Sim.Engine.schedule t.engine ~delay:delta (fun () ->
            if Sim.Probe.active () then begin
              let at = Sim.Engine.now t.engine in
              if positive delta then
                Sim.Span.end_ ~at Sim.Span.Sk_delay_hop ~origin ~seq:oseq ~aux:t.instance ~site:s
                  ~peer:b ~epoch:t.instance;
              Sim.Span.begin_ ~at Sim.Span.Sk_hop ~origin ~seq:oseq ~aux:t.instance ~site:s ~peer:b
                ~epoch:t.instance
            end;
            Reliable_fifo.send sender ~size_bytes:Label.size_bytes forwarded)
      end)
    (Tree.neighbors tree s)

let create engine ~topo ~config ~interest ~deliver ?(serializer_replicas = 1)
    ?(intra_latency = Sim.Time.of_us 300) ?registry ?series ?(name = "service") ?(instance = 0)
    () =
  let registry = match registry with Some r -> r | None -> Stats.Registry.create () in
  let tree = Config.tree config in
  let n_ser = Tree.n_serializers tree in
  let n_dcs = Tree.n_dcs tree in
  let ser_ingress =
    match series with
    | Some sr ->
      Array.init n_ser (fun s ->
          Some (Stats.Series.counter sr (Printf.sprintf "series.ser%d.ingress" s)))
    | None -> Array.make n_ser None
  in
  let t =
    {
      engine;
      topo;
      config;
      instance;
      deliver;
      interest;
      chains = [||];
      edge_senders = Array.init n_ser (fun _ -> Array.make n_ser None);
      edge_links = Array.init n_ser (fun _ -> Array.make n_ser None);
      dc_in_senders = Array.make n_dcs (Reliable_fifo.sender engine ~resend_period:(Sim.Time.of_ms 100));
      dc_out_senders = Array.make n_dcs None;
      dc_links = [||];
      uid_counter = Array.make n_dcs 0;
      input_counter = Stats.Registry.counter registry (name ^ ".labels_input");
      delivered_counter = Stats.Registry.counter registry (name ^ ".labels_delivered");
      head_change_counter = Stats.Registry.counter registry (name ^ ".head_changes");
      all_senders = [];
    }
  in
  t.chains <-
    Array.init n_ser (fun s ->
        Chain.create engine ~replicas:serializer_replicas ~intra_latency
          ~deliver:(fun msg -> route t s msg)
          ());
  let register_sender s = t.all_senders <- (fun () -> Reliable_fifo.stop s) :: t.all_senders in
  let ingress_receivers : msg Reliable_fifo.receiver list array = Array.make n_ser [] in
  (* chain ingress shared by every inbound channel of serializer [s].
     Sequencing state of the receivers is modelled as surviving replica
     crashes: in a real deployment the healed chain re-syncs senders from
     its committed prefix, and the chain's dedup-by-origin already gives the
     exactly-once commit that such a re-sync provides. *)
  let ingest s msg ~confirm = Chain.input t.chains.(s) ~ext_key:msg.uid msg ~confirm in
  (* [from] names the inbound channel so the span layer can close the right
     in-flight segment (attach from a datacenter, hop from a serializer)
     and open the chain span at the same instant *)
  let chain_ingress s ~from =
    let deliver msg ~confirm =
      if Sim.Probe.active () then begin
        let origin, oseq = msg.uid in
        let at = Sim.Engine.now engine in
        (match from with
        | `Dc dc ->
          Sim.Span.end_ ~at Sim.Span.Sk_attach ~origin ~seq:oseq ~aux:instance ~site:dc ~peer:s
            ~epoch:instance
        | `Ser x ->
          Sim.Span.end_ ~at Sim.Span.Sk_hop ~origin ~seq:oseq ~aux:instance ~site:x ~peer:s
            ~epoch:instance);
        Sim.Span.begin_ ~at Sim.Span.Sk_chain ~origin ~seq:oseq ~aux:instance ~site:s
          ~epoch:instance
      end;
      (match ser_ingress.(s) with
      | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now engine)
      | None -> ());
      ingest s msg ~confirm
    in
    let recv = Reliable_fifo.receiver_deferred engine ~deliver in
    ingress_receivers.(s) <- recv :: ingress_receivers.(s);
    recv
  in
  (* a head crash loses sequence numbers the dead head never replicated;
     replaying unconfirmed channel messages re-ingests them exactly once *)
  Array.iteri
    (fun s chain ->
      Chain.set_on_head_change chain (fun () ->
          Stats.Registry.incr t.head_change_counter;
          if Sim.Probe.active () then
            Sim.Probe.emit ~at:(Sim.Engine.now engine) (Sim.Probe.Head_change { ser = s });
          List.iter
            (fun recv -> Reliable_fifo.redeliver_unconfirmed recv ~deliver:(ingest s))
            ingress_receivers.(s)))
    t.chains;
  (* serializer-to-serializer edges *)
  List.iter
    (fun (a, b) ->
      List.iter
        (fun (x, y) ->
          let lat = Sim.Topology.latency topo (Config.site_of_serializer config x) (Config.site_of_serializer config y) in
          let data = Sim.Link.create engine ~latency:lat () in
          let ack = Sim.Link.create engine ~latency:lat () in
          t.edge_links.(x).(y) <- Some (data, ack);
          let sender = Reliable_fifo.sender engine ~resend_period:(resend_period lat) in
          Reliable_fifo.connect sender ~data ~ack (chain_ingress y ~from:(`Ser x));
          t.edge_senders.(x).(y) <- Some sender;
          register_sender sender)
        [ (a, b); (b, a) ])
    (Tree.edges tree);
  (* datacenter attachments: ingress (sink -> serializer) and egress
     (serializer -> remote proxy) *)
  t.dc_links <-
    Array.init n_dcs (fun dc ->
        let s = Tree.serializer_of tree ~dc in
        let lat = Sim.Topology.latency topo (Config.site_of_dc config dc) (Config.site_of_serializer config s) in
        let data = Sim.Link.create engine ~latency:lat () in
        let ack = Sim.Link.create engine ~latency:lat () in
        let sender = Reliable_fifo.sender engine ~resend_period:(resend_period lat) in
        Reliable_fifo.connect sender ~data ~ack (chain_ingress s ~from:(`Dc dc));
        t.dc_in_senders.(dc) <- sender;
        register_sender sender;
        let out_data = Sim.Link.create engine ~latency:lat () in
        let out_ack = Sim.Link.create engine ~latency:lat () in
        let out_sender = Reliable_fifo.sender engine ~resend_period:(resend_period lat) in
        let out_recv =
          Reliable_fifo.receiver engine ~deliver:(fun label ->
              Stats.Registry.incr t.delivered_counter;
              if Sim.Probe.active () then
                Sim.Span.end_ ~at:(Sim.Engine.now engine) Sim.Span.Sk_egress
                  ~origin:label.Label.src_dc ~seq:(Sim.Time.to_us label.Label.ts)
                  ~aux:label.Label.src_gear ~site:s ~peer:dc ~epoch:instance;
              deliver ~dc label)
        in
        Reliable_fifo.connect out_sender ~data:out_data ~ack:out_ack out_recv;
        t.dc_out_senders.(dc) <- Some out_sender;
        register_sender out_sender;
        { in_data = data; in_ack = ack; out_data; out_ack });
  (match series with
  | Some sr ->
    (* per-serializer backlog: unacked messages on every reliable channel
       feeding serializer [s] (sink attachments + inbound tree edges); the
       feeder lists are resolved here, once — the pull closures do single
       reads, no hash iteration *)
    for s = 0 to n_ser - 1 do
      let dc_feeds = List.map (fun dc -> t.dc_in_senders.(dc)) (Tree.dcs_at tree s) in
      let edge_feeds = List.filter_map (fun x -> t.edge_senders.(x).(s)) (Tree.neighbors tree s) in
      Stats.Series.sample sr
        (Printf.sprintf "series.ser%d.pending" s)
        (fun () ->
          let n =
            List.fold_left (fun acc snd -> acc + Reliable_fifo.unacked snd) 0 dc_feeds
            + List.fold_left (fun acc snd -> acc + Reliable_fifo.unacked snd) 0 edge_feeds
          in
          float_of_int n)
    done;
    (* metadata-plane wire depth: label-bearing data links only (tree edges
       + attach ingress/egress), resolved into a flat list up front *)
    let meta_links =
      let edges =
        List.concat_map
          (fun (a, b) ->
            List.filter_map
              (fun (x, y) -> Option.map fst t.edge_links.(x).(y))
              [ (a, b); (b, a) ])
          (Tree.edges tree)
      in
      let attach =
        Array.to_list t.dc_links
        |> List.concat_map (fun l -> [ l.in_data; l.out_data ])
      in
      edges @ attach
    in
    Stats.Series.sample sr "series.link.meta.in_flight" (fun () ->
        float_of_int
          (List.fold_left (fun acc l -> acc + Sim.Link.in_flight_count l) 0 meta_links))
  | None -> ());
  t

let input t ~dc label =
  Stats.Registry.incr t.input_counter;
  let targets = List.filter (fun d -> d <> dc) (t.interest label) in
  let oseq = if targets = [] then -1 else t.uid_counter.(dc) in
  if Sim.Probe.active () then begin
    let at = Sim.Engine.now t.engine in
    Sim.Probe.emit ~at
      (Sim.Probe.Label_forward
         { dc; gear = label.Label.src_gear; ts = Sim.Time.to_us label.Label.ts; oseq;
           inst = t.instance; epoch = t.instance });
    if oseq >= 0 then
      Sim.Span.begin_ ~at Sim.Span.Sk_attach ~origin:dc ~seq:oseq ~aux:t.instance ~site:dc
        ~epoch:t.instance
        ~peer:(Tree.serializer_of (Config.tree t.config) ~dc)
  end;
  if targets <> [] then begin
    let uid = (dc, oseq) in
    t.uid_counter.(dc) <- oseq + 1;
    Reliable_fifo.send t.dc_in_senders.(dc) ~size_bytes:Label.size_bytes { uid; label; targets }
  end

let config t = t.config

let crash_replica t ~serializer ~replica = Chain.crash_replica t.chains.(serializer) replica

let crash_serializer t s =
  let chain = t.chains.(s) in
  (* crash replicas until none remain; ids are original indices *)
  let rec go i =
    if not (Chain.is_down chain) then
      if i >= 16 then ()
      else begin
        (try Chain.crash_replica chain i with Invalid_argument _ -> ());
        go (i + 1)
      end
  in
  go 0

let serializer_down t s = Chain.is_down t.chains.(s)

let edge_links_of t x y =
  let n = Array.length t.edge_links in
  if x < 0 || x >= n || y < 0 || y >= n then None else t.edge_links.(x).(y)

let cut_edge t a b =
  List.iter
    (fun (x, y) ->
      match edge_links_of t x y with
      | Some (data, ack) ->
        Sim.Link.cut data;
        Sim.Link.cut ack
      | None -> invalid_arg "Service.cut_edge: not an edge")
    [ (a, b); (b, a) ]

let restore_edge t a b =
  List.iter
    (fun (x, y) ->
      match edge_links_of t x y with
      | Some (data, ack) ->
        Sim.Link.restore data;
        Sim.Link.restore ack
      | None -> invalid_arg "Service.restore_edge: not an edge")
    [ (a, b); (b, a) ]

let labels_input t = Stats.Registry.counter_value t.input_counter
let labels_delivered t = Stats.Registry.counter_value t.delivered_counter

let n_serializers t = Array.length t.chains

let edge_link_list t =
  (* index-order iteration over the dense table is already (from, to)-sorted *)
  let acc = ref [] in
  let n = Array.length t.edge_links in
  for x = n - 1 downto 0 do
    for y = n - 1 downto 0 do
      match t.edge_links.(x).(y) with
      | Some links -> acc := ((x, y), links) :: !acc
      | None -> ()
    done
  done;
  !acc

let attach_links t ~dc = t.dc_links.(dc)

let edge_traffic t =
  List.map (fun (edge, (data, _)) -> (edge, Sim.Link.delivered_count data)) (edge_link_list t)

let total_label_hops t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (edge_traffic t) + labels_delivered t
let shutdown t = List.iter (fun stop -> stop ()) t.all_senders
