(** Remote proxy (§4.3): applies remote operations at a datacenter in an
    order that respects causality.

    Two sources of ordering information are combined:
    - the label serialization delivered by Saturn's tree (the fast path);
    - the label timestamp order, always available because labels ride along
      with the bulk payloads (the fallback that keeps data available during
      a Saturn outage, and the whole story of the P-configuration).

    The timestamp-order path runs {e concurrently} with the stream: a
    payload stable in timestamp order is installed even when its tree label
    is slow or was lost with a crashed serializer. The tree is virtually
    always faster, so in normal operation this sweep is invisible; under
    failures it is §6.1's availability guarantee in action. [Fallback] mode
    merely stops trusting the stream (tree outage / P-configuration).

    In stream mode the proxy exploits the paper's concurrency observation:
    when Saturn delivers labels in an order that disagrees with timestamp
    order, the involved operations are concurrent, so the proxy applies
    them in parallel instead of serially. Concretely, a stream entry is
    applicable as soon as every {e earlier} entry with a {e strictly
    smaller} timestamp has been applied and its payload has arrived.

    The proxy also implements the attach stabilization conditions of
    Algorithm 1 and both online reconfiguration protocols of §6.2. *)

type payload = {
  label : Label.t;
  value : Kvstore.Value.t;
  origin_time : Sim.Time.t;
  epoch : int;
      (** configuration epoch at the origin when the shipment left; stamped
          by {!System}'s ship hook and used by the forced-switch drain
          barrier (bulk channels are FIFO, so a post-switch tag from a
          source proves all its pre-switch shipments have arrived) *)
}

type mode = Stream  (** follow Saturn's serialization *) | Fallback  (** timestamp order *)

type t

val create :
  Sim.Engine.t ->
  dc:int ->
  n_dcs:int ->
  stage_update:(payload -> k:(unit -> unit) -> unit) ->
  install_update:(payload -> unit) ->
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?mode:mode ->
  unit ->
  t
(** [stage_update] is invoked when a payload arrives: it should consume
    storage-server service time (the remote-apply cost) and call [k] when
    staged. [install_update] fires later, at the payload's position in the
    causal serialization, and must synchronously make the version visible
    (store install + measurement hook). Splitting the two keeps the
    stream's ordered installs off the storage servers' queues — remote
    updates are staged in parallel as they arrive and exposed in order, as
    in the paper's remote-proxy parallelism discussion (§4.3). Defaults to
    [Stream] mode. [registry] receives the proxy's counters, scoped
    [proxy.dc<k>.*]; a private registry is created when omitted. [series],
    when given, gains a [series.pending.dc<k>] queue-depth gauge (stream
    entries waiting + payloads held) and a [series.apply.dc<k>] per-window
    apply-throughput counter. Applies and mode transitions are also traced
    through {!Sim.Probe} when a probe is installed. *)

val mode : t -> mode
val set_mode : t -> mode -> unit

val on_label : t -> Label.t -> unit
(** A label delivered by the current Saturn tree. *)

val on_payload : t -> payload -> unit
(** An update payload delivered by the bulk-data transfer service. *)

val on_heartbeat : t -> src:int -> ?epoch:int -> Sim.Time.t -> unit
(** Bulk-channel heartbeat: origin [src] promises to never issue smaller
    timestamps. [epoch] (default 0) is the origin's configuration epoch at
    send time, feeding the same drain barrier as payload tags. *)

val wait_for_label : t -> Label.t -> (unit -> unit) -> unit
(** Attach with a migration label: fires once that label has been applied
    here (immediately if it already was). *)

val wait_for_ts : t -> Sim.Time.t -> (unit -> unit) -> unit
(** Attach with a remote update label: fires once, from every remote
    datacenter, an update (or safe heartbeat) with timestamp ≥ the given
    one has been applied locally. *)

val on_migration_applicable : t -> (Label.t -> unit) -> unit
(** Optional hook invoked when a migration label targeting this datacenter
    becomes applicable. *)

(** {2 Online reconfiguration (§6.2)} *)

val on_label_next : t -> Label.t -> unit
(** A label delivered by the next tree (C2); buffered until the switch
    completes, then treated as {!on_label}. *)

val start_graceful_switch : t -> epoch:int -> unit
(** Fast protocol: complete once the epoch-change label of every datacenter
    has arrived through C1 and every C1 label has been applied. The local
    epoch-change label must also be injected through the sink by the
    caller. *)

val start_forced_switch : t -> epoch:int -> unit
(** Slow protocol for a broken C1: apply updates in timestamp order and
    adopt C2 once the old epoch's traffic has drained — every peer's bulk
    channel has carried a post-switch epoch tag and every old-era payload
    that arrived has been applied by the timestamp-order sweep. *)

val switch_complete : t -> bool

val on_switch_done : t -> (unit -> unit) -> unit
(** Optional hook fired the instant this proxy's migration completes — just
    after the [Switch_done] probe event, before the buffered C2 labels are
    replayed. {!System} uses it to close the dual-tree overlap window. *)

val compact : t -> unit
(** Prunes bookkeeping that can no longer matter: applied-label records
    whose timestamps are far below every source's bulk-channel promise
    (such labels can no longer arrive for the first time on any path).
    Called periodically by the datacenter; safe to call any time. *)

(** {2 Introspection} *)

val applied_updates : t -> int
val pending_stream : t -> int
val label_was_applied : t -> Label.t -> bool
val effective_watermark : t -> src:int -> Sim.Time.t
