(** Gears (§4): per-storage-server label factories.

    A gear intercepts update and migration requests at its storage server
    and mints the label timestamp: strictly greater than the issuing
    client's causal past and strictly greater than anything the gear issued
    before, derived from the server's physical clock. The gear also exposes
    its {e floor} — a promise that it will never issue a smaller timestamp —
    which the label sink uses to emit a causality-compliant serial stream
    without blocking on idle gears. *)

type t

val create : Sim.Clock.t -> dc:int -> gear_id:int -> t

val generate_ts : t -> client_ts:Sim.Time.t -> Sim.Time.t
(** Timestamp for a new label: [> client_ts], [>] every previous timestamp
    from this gear, and [>=] the physical clock. *)

val floor : t -> Sim.Time.t
(** Largest timestamp this gear can promise never to go below. Any label it
    issues later is strictly greater. *)

val issued : t -> int
