(** Label sink (§4): turns the per-gear label streams of one datacenter
    into a single serial stream that respects causality.

    Follows the deferred-stabilization technique the paper adopts from
    Eunomia [32]: labels are collected asynchronously from all gears, and
    every period the sink emits — in timestamp order — those labels whose
    timestamp is below every gear's floor, i.e. labels that can no longer
    be preceded by anything. The coordination is off the client's critical
    path, unlike sequencer-based designs. *)

type t

val create :
  Sim.Engine.t ->
  gears:Gear.t array ->
  period:Sim.Time.t ->
  emit:(Label.t -> unit) ->
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?name:string ->
  unit ->
  t
(** [emit] receives labels in non-decreasing (ts, src) order; it typically
    feeds {!Service.input}. The periodic flush stops after {!stop}.
    [registry] receives the sink's counters under [name] (default
    ["sink"], e.g. ["sink.dc0"] when scoped by the datacenter); a private
    registry is created when omitted. [series], when given, gains a
    [series.<name>.depth] gauge sampling the hold-queue depth. *)

val offer : t -> Label.t -> unit
(** Called by a gear right after persisting the update (same site; modelled
    as instantaneous). *)

val flush : t -> unit
(** Runs one stabilization round immediately (also runs periodically). *)

val stop : t -> unit

val emitted : t -> int
val buffered : t -> int
