type hop = To_serializer of int | To_dc of int

type t = {
  tree : Tree.t;
  placement : Sim.Topology.site array;
  dc_sites : Sim.Topology.site array;
  delays : (int * int, Sim.Time.t) Hashtbl.t; (* (from, encoded hop) -> delta *)
}

let encode = function To_serializer s -> s | To_dc d -> -d - 1

let create ~tree ~placement ~dc_sites () =
  if Array.length placement <> Tree.n_serializers tree then
    invalid_arg "Config.create: placement size mismatch";
  if Array.length dc_sites <> Tree.n_dcs tree then
    invalid_arg "Config.create: dc_sites size mismatch";
  { tree; placement; dc_sites; delays = Hashtbl.create 16 }

let tree t = t.tree
let placement t = t.placement
let dc_sites t = t.dc_sites
let site_of_serializer t s = t.placement.(s)
let site_of_dc t d = t.dc_sites.(d)

let set_delay t ~from ~hop d =
  if Sim.Time.compare d Sim.Time.zero < 0 then invalid_arg "Config.set_delay: negative delay";
  Hashtbl.replace t.delays (from, encode hop) d

let delay t ~from ~hop =
  match Hashtbl.find_opt t.delays (from, encode hop) with
  | Some d -> d
  | None -> Sim.Time.zero

let hop_site t = function To_serializer s -> t.placement.(s) | To_dc d -> t.dc_sites.(d)

let hop_latency t topo ~from ~hop =
  let physical = Sim.Topology.latency topo t.placement.(from) (hop_site t hop) in
  Sim.Time.add physical (delay t ~from ~hop)

let metadata_latency t topo ~src_dc ~dst_dc =
  let path = Tree.serializer_path t.tree ~src_dc ~dst_dc in
  match path with
  | [] -> assert false
  | first :: _ ->
    let entry = Sim.Topology.latency topo t.dc_sites.(src_dc) t.placement.(first) in
    let rec hops acc = function
      | a :: (b :: _ as rest) ->
        hops (Sim.Time.add acc (hop_latency t topo ~from:a ~hop:(To_serializer b))) rest
      | [ last ] -> Sim.Time.add acc (hop_latency t topo ~from:last ~hop:(To_dc dst_dc))
      | [] -> acc
    in
    hops entry path

let total_delay t = Hashtbl.fold (fun _ d acc -> Sim.Time.add acc d) t.delays Sim.Time.zero

let clear_delays t = Hashtbl.reset t.delays

let copy t =
  { tree = t.tree; placement = Array.copy t.placement; dc_sites = Array.copy t.dc_sites;
    delays = Hashtbl.copy t.delays }

let pp ppf t =
  Format.fprintf ppf "config(%a; placement:" Tree.pp t.tree;
  Array.iteri (fun s site -> Format.fprintf ppf " s%d@@%d" s site) t.placement;
  let total = total_delay t in
  if Sim.Time.compare total Sim.Time.zero > 0 then
    Format.fprintf ppf "; total δ=%a" Sim.Time.pp total;
  Format.fprintf ppf ")"
