(** Client-side library (§2, §4.1).

    Clients never talk to each other: all communication goes through the
    storage system. The library keeps the client's causal past as the
    greatest label the client has observed, updating it on reads (when the
    read version's label is greater) and on every write/migration (whose
    label is greater by construction). The label is piggybacked on every
    request and is what makes safe datacenter migration possible. *)

type t

val create : id:int -> home_site:Sim.Topology.site -> preferred_dc:int -> t

val home_site : t -> Sim.Topology.site
val preferred_dc : t -> int

val current_dc : t -> int
(** Datacenter the client is currently attached to. *)

val set_current_dc : t -> int -> unit

val causal_past : t -> Label.t option
(** [None] until the client has observed any labelled operation. *)

val causal_ts : t -> Sim.Time.t
(** Timestamp of the causal past, [Time.zero] when empty. *)

val observe : t -> Label.t -> unit
(** Merge a label into the causal past: replaces it iff greater. *)
