(** Runtime of Saturn's metadata service: the serializer tree (§5.3).

    Builds, from a {!Config.t}, one chain-replicated serializer per tree
    node and reliable FIFO channels along every tree edge (and between each
    datacenter and its serializer). Labels enter at the origin datacenter's
    serializer and are forwarded hop by hop in arrival order; at each hop a
    label is only propagated toward subtrees that contain an interested
    datacenter — genuine partial replication — and each outgoing hop adds
    the configured artificial delay δ.

    Edge cuts are transparent (retransmission resumes after {!restore_edge});
    serializer crashes stall the affected subtree until the application
    switches trees or falls back to timestamp order, exactly the paper's
    availability story. *)

type t

val create :
  Sim.Engine.t ->
  topo:Sim.Topology.t ->
  config:Config.t ->
  interest:(Label.t -> int list) ->
  deliver:(dc:int -> Label.t -> unit) ->
  ?serializer_replicas:int ->
  ?intra_latency:Sim.Time.t ->
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?name:string ->
  ?instance:int ->
  unit ->
  t
(** [interest label] lists the datacenters that must receive [label]
    (the origin itself is filtered out automatically). [deliver] is invoked
    at each interested datacenter, in that datacenter's serialization
    order. [registry] receives the service's counters under [name]
    (default ["service"]); a private registry is created when omitted.
    [series], when given, gains per-serializer [series.ser<k>.ingress]
    (per-window chain-ingress rate) and [series.ser<k>.pending] (unacked
    backlog on the channels feeding [k]) plus [series.link.meta.in_flight]
    (labels on the wire across the whole metadata plane). Pass it only to
    one service instance per run: gauge names would collide across epochs.
    Label ingress, serializer hops and artificial-delay waits are traced
    through {!Sim.Probe} when a probe is installed, and every leg of a
    forwarded label's trip (attach, chain, δ-waits, hops, egress) is
    bracketed by {!Sim.Span} begin/end pairs keyed by the label's
    [(origin, oseq)] uid. [instance] (default 0) tags those span keys so
    concurrent service epochs during reconfiguration cannot collide. *)

val input : t -> dc:int -> Label.t -> unit
(** Called by datacenter [dc]'s label sink, in a causality-compliant order. *)

val config : t -> Config.t

val crash_serializer : t -> int -> unit
(** Crashes every remaining replica of serializer [i]. *)

val crash_replica : t -> serializer:int -> replica:int -> unit
val serializer_down : t -> int -> bool

val cut_edge : t -> int -> int -> unit
(** Cuts both directions of the serializer edge (transient partition). *)

val restore_edge : t -> int -> int -> unit

val labels_input : t -> int
val labels_delivered : t -> int

(** {2 Fault-injection surface}

    Enumerations a fault registry uses to bind the service's links and
    serializers under stable names; handles stay valid for the service's
    lifetime. *)

val n_serializers : t -> int

val edge_link_list : t -> ((int * int) * (Sim.Link.t * Sim.Link.t)) list
(** Every directed serializer edge [(a, b)] with its (data, ack) links,
    sorted by edge for deterministic iteration. *)

type attach_links = {
  in_data : Sim.Link.t;  (** sink → serializer label channel *)
  in_ack : Sim.Link.t;
  out_data : Sim.Link.t;  (** serializer → remote-proxy delivery channel *)
  out_ack : Sim.Link.t;
}

val attach_links : t -> dc:int -> attach_links
(** The four links connecting datacenter [dc] to its home serializer. *)

val edge_traffic : t -> ((int * int) * int) list
(** Labels sent over each directed serializer edge — the quantitative face
    of genuine partial replication: subtrees without interested
    datacenters see no traffic. *)

val total_label_hops : t -> int
(** Sum of labels over every tree hop (serializer edges + dc egress). *)

val shutdown : t -> unit
(** Stops retransmission timers (end-of-run teardown). *)
