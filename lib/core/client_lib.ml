type t = {
  id : int;
  home_site : Sim.Topology.site;
  preferred_dc : int;
  mutable current_dc : int;
  mutable label : Label.t option;
  mutable ops : int;
}

let create ~id ~home_site ~preferred_dc =
  { id; home_site; preferred_dc; current_dc = preferred_dc; label = None; ops = 0 }

let home_site t = t.home_site
let preferred_dc t = t.preferred_dc
let current_dc t = t.current_dc
let set_current_dc t dc = t.current_dc <- dc
let causal_past t = t.label
let causal_ts t = match t.label with Some l -> l.Label.ts | None -> Sim.Time.zero

let observe t label =
  match t.label with
  | None -> t.label <- Some label
  | Some current -> if Label.compare label current > 0 then t.label <- Some label

