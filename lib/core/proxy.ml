type payload = {
  label : Label.t;
  value : Kvstore.Value.t;
  origin_time : Sim.Time.t;
  epoch : int; (* configuration epoch at the origin when the shipment left *)
}
type mode = Stream | Fallback
type state = Waiting | Applied
type entry = { label : Label.t; mutable state : state }
type switch_state = Graceful of { epoch : int; seen : bool array } | Forced

(* the per-datacenter serialization, as a growable array-deque: the applied
   prefix is pruned by advancing [head]; appends are amortized O(1) *)
type stream = { mutable arr : entry option array; mutable head : int; mutable tail : int }

type t = {
  engine : Sim.Engine.t;
  dc : int;
  n_dcs : int;
  stage_update : payload -> k:(unit -> unit) -> unit;
  install_update : payload -> unit;
  mutable mode : mode;
  stream : stream;
  payloads : (Label.t, payload) Hashtbl.t;
  staged : (Label.t, unit) Hashtbl.t; (* payloads whose server apply completed *)
  applied_set : (Label.t, unit) Hashtbl.t;
  applied_wm : Sim.Time.t array; (* per-source applied watermark *)
  bulk_floor : Sim.Time.t array; (* per-source promise carried by bulk channel *)
  bulk_epoch : int array; (* per-source highest epoch tag seen on bulk traffic *)
  mutable old_pending : int;
    (* during a forced switch: arrived-but-unapplied payloads shipped under
       the outgoing epoch; completion waits for this to reach zero *)
  pending_by_src : Label.t Sim.Heap.Keyed.t array;
    (* payloads not yet applied, per source, keyed by (ts, src) *)
  label_waiters : (Label.t, (unit -> unit) list) Hashtbl.t;
  mutable ts_waiters : (Sim.Time.t * (unit -> unit)) list;
  mutable migration_hook : (Label.t -> unit) option;
  next_buffer : Label.t Queue.t;
  mutable switch : switch_state option;
  mutable switch_done : bool;
  mutable target_epoch : int; (* epoch being migrated into while a switch runs *)
  mutable switch_done_hook : (unit -> unit) option;
  applied_counter : Stats.Registry.counter;
  fallback_counter : Stats.Registry.counter;
  apply_series : Stats.Series.counter option;
  mutable scanning : bool;
  mutable need_rescan : bool;
}

let create engine ~dc ~n_dcs ~stage_update ~install_update ?registry ?series ?(mode = Stream) ()
    =
  let registry = match registry with Some r -> r | None -> Stats.Registry.create () in
  let t =
    {
    engine;
    dc;
    n_dcs;
    stage_update;
    install_update;
    mode;
    stream = { arr = Array.make 64 None; head = 0; tail = 0 };
    payloads = Hashtbl.create 256;
    staged = Hashtbl.create 256;
    applied_set = Hashtbl.create 256;
    applied_wm = Array.make n_dcs Sim.Time.zero;
    bulk_floor = Array.make n_dcs Sim.Time.zero;
    bulk_epoch = Array.make n_dcs 0;
    old_pending = 0;
    pending_by_src =
      (let dummy = Label.update ~ts:Sim.Time.zero ~src_dc:0 ~src_gear:0 ~key:0 in
       Array.init n_dcs (fun _ -> Sim.Heap.Keyed.create ~dummy ()));
    label_waiters = Hashtbl.create 32;
    ts_waiters = [];
    migration_hook = None;
    next_buffer = Queue.create ();
    switch = None;
    switch_done = false;
    target_epoch = 0;
    switch_done_hook = None;
    applied_counter = Stats.Registry.counter registry (Printf.sprintf "proxy.dc%d.applied_updates" dc);
    fallback_counter =
      Stats.Registry.counter registry (Printf.sprintf "proxy.dc%d.fallback_activations" dc);
    apply_series =
      Option.map (fun s -> Stats.Series.counter s (Printf.sprintf "series.apply.dc%d" dc)) series;
    scanning = false;
    need_rescan = false;
    }
  in
  (match series with
  | Some series ->
    Stats.Series.sample series
      (Printf.sprintf "series.pending.dc%d" dc)
      (fun () ->
        let s = t.stream in
        let n = ref (Hashtbl.length t.payloads) in
        for i = s.head to s.tail - 1 do
          match s.arr.(i) with Some { state = Waiting; _ } -> incr n | Some _ | None -> ()
        done;
        float_of_int !n)
  | None -> ());
  t

let probe_mode t m =
  if Sim.Probe.active () then
    Sim.Probe.emit ~at:(Sim.Engine.now t.engine)
      (Sim.Probe.Proxy_mode
         { dc = t.dc; mode = (match m with Stream -> Sim.Probe.Stream | Fallback -> Sim.Probe.Fallback) })

let probe_apply t (label : Label.t) ~fallback =
  if Sim.Probe.active () then
    Sim.Probe.emit ~at:(Sim.Engine.now t.engine)
      (Sim.Probe.Proxy_apply
         { dc = t.dc; src_dc = label.Label.src_dc; gear = label.Label.src_gear;
           ts = Sim.Time.to_us label.Label.ts; fallback })

let span_label ~at ph t (label : Label.t) =
  let emit =
    match ph with `Begin -> Sim.Span.begin_ ~at | `End -> Sim.Span.end_ ~at
  in
  emit Sim.Span.Sk_proxy_order ~origin:label.Label.src_dc ~seq:(Sim.Time.to_us label.Label.ts)
    ~aux:label.Label.src_gear ~site:t.dc

let mode t = t.mode

let set_mode t m =
  if m <> t.mode then begin
    probe_mode t m;
    if m = Fallback then Stats.Registry.incr t.fallback_counter
  end;
  t.mode <- m

let on_migration_applicable t f = t.migration_hook <- Some f
let applied_updates t = Stats.Registry.counter_value t.applied_counter
let pending_stream t =
  let s = t.stream in
  let n = ref 0 in
  for i = s.head to s.tail - 1 do
    match s.arr.(i) with Some { state = Waiting; _ } -> incr n | Some _ | None -> ()
  done;
  !n
let label_was_applied t l = Hashtbl.mem t.applied_set l

(* ---- watermarks and waiters ------------------------------------------- *)

let pending_min t src =
  (* smallest not-yet-applied payload timestamp from [src]; lazily drops
     applied labels left in the heap *)
  let heap = t.pending_by_src.(src) in
  let rec peek () =
    match Sim.Heap.Keyed.peek heap with
    | Some l when Hashtbl.mem t.applied_set l ->
      ignore (Sim.Heap.Keyed.pop_exn heap);
      peek ()
    | Some l -> Some l.Label.ts
    | None -> None
  in
  peek ()

let effective_watermark t ~src =
  if src = t.dc then Sim.Time.infinity
  else begin
    let safe_floor =
      match pending_min t src with
      | Some pts -> Sim.Time.min t.bulk_floor.(src) (Sim.Time.sub pts (Sim.Time.of_us 1))
      | None -> t.bulk_floor.(src)
    in
    Sim.Time.max t.applied_wm.(src) safe_floor
  end

let ts_satisfied t ts =
  let ok = ref true in
  for src = 0 to t.n_dcs - 1 do
    if src <> t.dc && Sim.Time.compare (effective_watermark t ~src) ts < 0 then ok := false
  done;
  !ok

let check_ts_waiters t =
  let ready, still = List.partition (fun (ts, _) -> ts_satisfied t ts) t.ts_waiters in
  t.ts_waiters <- still;
  List.iter (fun (_, k) -> k ()) ready

let fire_label_waiters t label =
  match Hashtbl.find_opt t.label_waiters label with
  | Some ks ->
    Hashtbl.remove t.label_waiters label;
    List.iter (fun k -> k ()) (List.rev ks)
  | None -> ()

let mark_applied t (label : Label.t) =
  (* ordering-wait span: opened by [append_label] for entries that had to
     wait; in fallback mode the stream is not appended, so no begin exists
     and no end is owed *)
  if t.mode = Stream && Sim.Probe.active () then
    span_label ~at:(Sim.Engine.now t.engine) `End t label;
  Hashtbl.replace t.applied_set label ();
  (match t.switch with
  | Some Forced -> (
    match Hashtbl.find_opt t.payloads label with
    | Some p when p.epoch < t.target_epoch -> t.old_pending <- t.old_pending - 1
    | Some _ | None -> ())
  | Some (Graceful _) | None -> ());
  Hashtbl.remove t.payloads label;
  Hashtbl.remove t.staged label;
  (* any label from a source advances its watermark: sinks emit per-source
     labels in timestamp order *)
  if label.src_dc <> t.dc then
    t.applied_wm.(label.src_dc) <- Sim.Time.max t.applied_wm.(label.src_dc) label.ts;
  if Label.is_update label then begin
    Stats.Registry.incr t.applied_counter;
    match t.apply_series with
    | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now t.engine)
    | None -> ()
  end;
  fire_label_waiters t label;
  check_ts_waiters t

(* ---- the Saturn-serialization path ------------------------------------ *)

let stream_get s i = match s.arr.(i) with Some e -> e | None -> assert false

let stream_prune s =
  while s.head < s.tail && (stream_get s s.head).state = Applied do
    s.arr.(s.head) <- None;
    s.head <- s.head + 1
  done

let stream_push s e =
  let cap = Array.length s.arr in
  if s.tail = cap then begin
    let live = s.tail - s.head in
    if live * 2 <= cap then begin
      (* compact in place *)
      Array.blit s.arr s.head s.arr 0 live;
      Array.fill s.arr live (cap - live) None
    end
    else begin
      let bigger = Array.make (cap * 2) None in
      Array.blit s.arr s.head bigger 0 live;
      s.arr <- bigger
    end;
    s.head <- 0;
    s.tail <- live
  end;
  s.arr.(s.tail) <- Some e;
  s.tail <- s.tail + 1

(* Timestamp inversions in the delivered stream (the §4.3 concurrency
   signal) are shallow: they only span labels in flight simultaneously on
   different tree branches. Scanning a bounded window past the first
   blocked entry captures all of that parallelism while keeping each scan
   O(window). *)
let scan_window = 64

let rec scan t =
  if t.scanning then t.need_rescan <- true
  else begin
    t.scanning <- true;
    let continue = ref true in
    while !continue do
      continue := false;
      let s = t.stream in
      stream_prune s;
      (* an entry is applicable when no earlier entry with a strictly
         smaller timestamp is still unapplied: Saturn delivering a larger
         timestamp first certifies concurrency (§4.3) *)
      let min_unapplied = ref Sim.Time.infinity in
      let blocked_seen = ref 0 in
      let i = ref s.head in
      while !i < s.tail && !blocked_seen < scan_window do
        let e = stream_get s !i in
        (match e.state with
        | Waiting when Sim.Time.compare !min_unapplied e.label.Label.ts >= 0 ->
          if try_apply t e then continue := true
        | Waiting | Applied -> ());
        (match e.state with
        | Applied -> ()
        | Waiting ->
          incr blocked_seen;
          min_unapplied := Sim.Time.min !min_unapplied e.label.Label.ts);
        incr i
      done;
      if t.need_rescan then begin
        t.need_rescan <- false;
        continue := true
      end
    done;
    t.scanning <- false;
    check_switch_completion t
  end

and try_apply t e =
  let label = e.label in
  match label.Label.target with
  | Label.Update _ ->
    if Hashtbl.mem t.applied_set label then begin
      e.state <- Applied;
      true
    end
    else if Hashtbl.mem t.staged label then begin
      let p = Hashtbl.find t.payloads label in
      e.state <- Applied;
      t.install_update p;
      probe_apply t label ~fallback:false;
      mark_applied t label;
      true
    end
    else false (* bulk transfer / staging not completed yet *)
  | Label.Migration { dest_dc } ->
    e.state <- Applied;
    if dest_dc = t.dc then (match t.migration_hook with Some f -> f label | None -> ());
    mark_applied t label;
    true
  | Label.Epoch_change { epoch } ->
    e.state <- Applied;
    (match t.switch with
    | Some (Graceful g) when g.epoch = epoch -> g.seen.(label.Label.src_dc) <- true
    | Some (Graceful _) | Some Forced | None -> ());
    mark_applied t label;
    true

and check_switch_completion t =
  stream_prune t.stream;
  match t.switch with
  | Some (Graceful g) when Array.for_all Fun.id g.seen && t.stream.head = t.stream.tail ->
    complete_switch t
  | Some Forced ->
    (* C1-era traffic has drained when (a) every peer's bulk channel has
       delivered a post-switch epoch tag — the channel is FIFO, so nothing
       shipped before the switch is still in flight behind it — and (b)
       every old-era payload that did arrive was applied by the
       timestamp-order sweep.  Only then is adopting C2 safe: any label
       the old tree can still deliver is already in [applied_set], and
       each source's C2 timestamps lie above all its C1-era ones, so the
       stream stays FIFO per origin across the epoch boundary. *)
    let drained = ref (t.old_pending = 0) in
    for src = 0 to t.n_dcs - 1 do
      if src <> t.dc && t.bulk_epoch.(src) < t.target_epoch then drained := false
    done;
    if !drained then begin
      if t.mode <> Stream then probe_mode t Stream;
      t.mode <- Stream;
      complete_switch t
    end
  | Some (Graceful _) | None -> ()

and complete_switch t =
  t.switch <- None;
  t.switch_done <- true;
  if Sim.Probe.active () then
    Sim.Probe.emit ~at:(Sim.Engine.now t.engine)
      (Sim.Probe.Switch_done { dc = t.dc; epoch = t.target_epoch });
  (match t.switch_done_hook with Some f -> f () | None -> ());
  let drained = ref [] in
  Queue.iter (fun l -> drained := l :: !drained) t.next_buffer;
  Queue.clear t.next_buffer;
  List.iter (fun l -> append_label t l) (List.rev !drained);
  scan t

and append_label t label =
  let state = if Hashtbl.mem t.applied_set label then Applied else Waiting in
  if state = Waiting && Sim.Probe.active () then
    span_label ~at:(Sim.Engine.now t.engine) `Begin t label;
  stream_push t.stream { label; state }

let on_label t label =
  match t.mode with
  | Stream ->
    append_label t label;
    scan t
  | Fallback -> () (* during an outage the stream is not trusted *)

(* ---- the timestamp-order fallback path --------------------------------- *)

let stable_floor t =
  let stable = ref Sim.Time.infinity in
  for src = 0 to t.n_dcs - 1 do
    if src <> t.dc then stable := Sim.Time.min !stable t.bulk_floor.(src)
  done;
  !stable

(* The timestamp-order sweep runs in BOTH modes: labels ride along with the
   bulk payloads, so a payload that is stable in timestamp order can always
   be installed even if its tree label is slow or lost (the paper's
   availability argument, §6.1). In stream mode the tree is virtually
   always faster, so the sweep only catches pathological stragglers. *)
let rec try_fallback t =
  begin
    let stable = stable_floor t in
    (* smallest pending payload overall, in (ts, src) order *)
    let best = ref None in
    for src = 0 to t.n_dcs - 1 do
      if src <> t.dc then begin
        let heap = t.pending_by_src.(src) in
        let rec clean () =
          match Sim.Heap.Keyed.peek heap with
          | Some l when Hashtbl.mem t.applied_set l ->
            ignore (Sim.Heap.Keyed.pop_exn heap);
            clean ()
          | Some l -> Some l
          | None -> None
        in
        match clean () with
        | Some l -> (
          match !best with
          | Some b when Label.compare_ts_src b l <= 0 -> ()
          | Some _ | None -> best := Some l)
        | None -> ()
      end
    done;
    match !best with
    | Some l when Sim.Time.compare l.Label.ts stable <= 0 ->
      (* in-ts-order install; if the next payload is still staging we wait
         for its staging continuation to re-enter *)
      if Hashtbl.mem t.staged l then begin
        let p = Hashtbl.find t.payloads l in
        t.install_update p;
        probe_apply t l ~fallback:true;
        mark_applied t l;
        (match t.mode with Stream -> scan t | Fallback -> ());
        check_switch_completion t;
        try_fallback t
      end
    | Some _ | None -> ()
  end

(* ---- inputs ------------------------------------------------------------ *)

let on_payload t (p : payload) =
  let src = p.label.Label.src_dc in
  t.bulk_floor.(src) <- Sim.Time.max t.bulk_floor.(src) p.label.Label.ts;
  if p.epoch > t.bulk_epoch.(src) then t.bulk_epoch.(src) <- p.epoch;
  if not (Hashtbl.mem t.applied_set p.label) then begin
    (match t.switch with
    | Some Forced when p.epoch < t.target_epoch && not (Hashtbl.mem t.payloads p.label) ->
      t.old_pending <- t.old_pending + 1
    | Some Forced | Some (Graceful _) | None -> ());
    Hashtbl.replace t.payloads p.label p;
    Sim.Heap.Keyed.push t.pending_by_src.(src) ~k1:(Label.key_ts p.label)
      ~k2:(Label.key_src p.label) p.label;
    t.stage_update p ~k:(fun () ->
        if not (Hashtbl.mem t.applied_set p.label) then begin
          (* closes the bulk-transfer span opened when the payload left the
             origin datacenter (System's ship hook) *)
          if Sim.Probe.active () then begin
            let l = p.label in
            Sim.Span.end_ ~at:(Sim.Engine.now t.engine) Sim.Span.Sk_bulk ~origin:l.Label.src_dc
              ~seq:(Sim.Time.to_us l.Label.ts) ~aux:l.Label.src_gear ~site:l.Label.src_dc ~peer:t.dc
          end;
          Hashtbl.replace t.staged p.label ();
          (match t.mode with Stream -> scan t | Fallback -> ());
          try_fallback t
        end)
  end;
  check_ts_waiters t;
  (match t.mode with Stream -> scan t | Fallback -> ());
  try_fallback t;
  check_switch_completion t

let on_heartbeat t ~src ?(epoch = 0) ts =
  t.bulk_floor.(src) <- Sim.Time.max t.bulk_floor.(src) ts;
  if epoch > t.bulk_epoch.(src) then t.bulk_epoch.(src) <- epoch;
  check_ts_waiters t;
  try_fallback t;
  check_switch_completion t

(* Labels older than every source's promise minus this margin can no longer
   arrive for the first time: tree propagation and channel retransmission
   are bounded far below it. *)
let compact_margin = Sim.Time.of_sec 5.

let compact t =
  let floor = ref Sim.Time.infinity in
  for src = 0 to t.n_dcs - 1 do
    if src <> t.dc then floor := Sim.Time.min !floor t.bulk_floor.(src)
  done;
  if Sim.Time.compare !floor Sim.Time.infinity < 0 then begin
    let cutoff = Sim.Time.sub !floor compact_margin in
    if Sim.Time.compare cutoff Sim.Time.zero > 0 then begin
      let stale =
        Hashtbl.fold
          (fun (l : Label.t) () acc -> if Sim.Time.compare l.Label.ts cutoff < 0 then l :: acc else acc)
          t.applied_set []
      in
      List.iter (Hashtbl.remove t.applied_set) stale
    end
  end

let wait_for_label t label k =
  if Hashtbl.mem t.applied_set label then k ()
  else begin
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.label_waiters label) in
    Hashtbl.replace t.label_waiters label (k :: existing)
  end

let wait_for_ts t ts k = if ts_satisfied t ts then k () else t.ts_waiters <- (ts, k) :: t.ts_waiters

(* ---- reconfiguration --------------------------------------------------- *)

let on_label_next t label = if t.switch_done then on_label t label else Queue.push label t.next_buffer

let on_switch_done t f = t.switch_done_hook <- Some f

let start_graceful_switch t ~epoch =
  let seen = Array.make t.n_dcs false in
  seen.(t.dc) <- true;
  t.target_epoch <- epoch;
  t.switch <- Some (Graceful { epoch; seen });
  check_switch_completion t

let start_forced_switch t ~epoch =
  t.target_epoch <- epoch;
  t.old_pending <-
    Hashtbl.fold (fun _ (p : payload) acc -> if p.epoch < epoch then acc + 1 else acc) t.payloads 0;
  t.switch <- Some Forced;
  if t.mode <> Fallback then probe_mode t Fallback;
  t.mode <- Fallback;
  try_fallback t;
  check_switch_completion t

let switch_complete t = t.switch_done
