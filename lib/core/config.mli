(** A complete Saturn configuration (§5.4): a tree shape, a geographic
    placement for every serializer, and the artificial propagation delays δ
    a serializer adds on each outgoing hop to approximate optimal visibility
    times. *)

type hop = To_serializer of int | To_dc of int

type t

val create :
  tree:Tree.t ->
  placement:Sim.Topology.site array ->
  dc_sites:Sim.Topology.site array ->
  unit ->
  t
(** Delays start at zero; set them with {!set_delay}.
    @raise Invalid_argument when array sizes disagree with the tree. *)

val tree : t -> Tree.t
val placement : t -> Sim.Topology.site array
val dc_sites : t -> Sim.Topology.site array
val site_of_serializer : t -> int -> Sim.Topology.site
val site_of_dc : t -> int -> Sim.Topology.site

val set_delay : t -> from:int -> hop:hop -> Sim.Time.t -> unit
(** δ added by serializer [from] when forwarding along [hop]. Negative
    values are rejected. *)

val delay : t -> from:int -> hop:hop -> Sim.Time.t

val metadata_latency : t -> Sim.Topology.t -> src_dc:int -> dst_dc:int -> Sim.Time.t
(** End-to-end label propagation latency from [src_dc] to [dst_dc]: the
    dc→serializer hop, every serializer hop (with δ), and the final
    serializer→dc hop. *)

val total_delay : t -> Sim.Time.t
(** Sum of all configured artificial delays (diagnostics). *)

val copy : t -> t
(** Deep copy: delays of the copy can be mutated independently. *)

val clear_delays : t -> unit
(** Drops every artificial delay (used by the δ-ablation experiment). *)

val pp : Format.formatter -> t -> unit
