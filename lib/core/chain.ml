type 'msg replica = {
  id : int;
  store : (int, (int * int) * 'msg) Hashtbl.t; (* seq -> (ext_key, msg) *)
  mutable max_contig : int; (* highest seq with all 0..seq stored; -1 if none *)
  mutable alive : bool;
}

type 'msg t = {
  engine : Sim.Engine.t;
  intra_latency : Sim.Time.t;
  deliver : 'msg -> unit;
  reps : 'msg replica array;
  mutable order : int list; (* alive replica ids, head first *)
  mutable next_seq : int;
  mutable committed : int; (* seqs [0, committed) delivered *)
  dedup : (int * int, int) Hashtbl.t; (* ext_key -> assigned seq *)
  confirms : (int, unit -> unit) Hashtbl.t; (* seq -> external confirm *)
  mutable on_head_change : unit -> unit;
}

let create engine ~replicas ~intra_latency ~deliver () =
  if replicas < 1 then invalid_arg "Chain.create: replicas < 1";
  {
    engine;
    intra_latency;
    deliver;
    reps =
      Array.init replicas (fun id ->
          { id; store = Hashtbl.create 64; max_contig = -1; alive = true });
    order = List.init replicas Fun.id;
    next_seq = 0;
    committed = 0;
    dedup = Hashtbl.create 64;
    confirms = Hashtbl.create 64;
    on_head_change = (fun () -> ());
  }

let set_on_head_change t f = t.on_head_change <- f
let alive_replicas t = List.length t.order
let committed t = t.committed
let is_down t = t.order = []

let successor t id =
  let rec find = function
    | a :: (b :: _) when a = id -> Some b
    | _ :: rest -> find rest
    | [] -> None
  in
  find t.order

let compact_window = 1024

let compact t =
  let floor = t.committed - compact_window in
  if floor > 0 then begin
    let stale = Hashtbl.fold (fun k seq acc -> if seq < floor then k :: acc else acc) t.dedup [] in
    List.iter (Hashtbl.remove t.dedup) stale;
    Array.iter
      (fun r ->
        if r.alive then begin
          let old = Hashtbl.fold (fun seq _ acc -> if seq < floor then seq :: acc else acc) r.store [] in
          List.iter (Hashtbl.remove r.store) old
        end)
      t.reps
  end

let rec try_commit t =
  match List.rev t.order with
  | [] -> ()
  | tail_id :: _ ->
    let tail = t.reps.(tail_id) in
    if tail.max_contig >= t.committed then begin
      let seq = t.committed in
      t.committed <- seq + 1;
      let _ext_key, msg = Hashtbl.find tail.store seq in
      (* the dedup entry is kept for a window after commit: a retransmission
         whose ack was lost must be confirmed, not committed again; entries
         far below the committed point can no longer be retransmitted and
         are compacted away *)
      t.deliver msg;
      if seq land 255 = 0 then compact t;
      (match Hashtbl.find_opt t.confirms seq with
      | Some confirm ->
        Hashtbl.remove t.confirms seq;
        if Sim.Probe.active () then
          Sim.Probe.emit ~at:(Sim.Engine.now t.engine) (Sim.Probe.Chain_ack { seq });
        (* the commit ack travels back up the chain before the external
           sender is acknowledged *)
        let upstream_hops = List.length t.order - 1 in
        let delay = Sim.Time.of_us (upstream_hops * Sim.Time.to_us t.intra_latency) in
        Sim.Engine.schedule t.engine ~delay confirm
      | None -> ());
      try_commit t
    end

let rec store_at t id ~seq entry =
  let r = t.reps.(id) in
  if r.alive && not (Hashtbl.mem r.store seq) then begin
    Hashtbl.replace r.store seq entry;
    while Hashtbl.mem r.store (r.max_contig + 1) do
      r.max_contig <- r.max_contig + 1
    done;
    forward t id ~seq entry
  end

and forward t id ~seq entry =
  match successor t id with
  | Some succ ->
    Sim.Engine.schedule t.engine ~delay:t.intra_latency (fun () ->
        if t.reps.(succ).alive then store_at t succ ~seq entry)
  | None -> try_commit t

let input t ~ext_key msg ~confirm =
  match t.order with
  | [] -> () (* chain down: no ack, the sender keeps retransmitting *)
  | head :: _ -> (
    match Hashtbl.find_opt t.dedup ext_key with
    | Some seq ->
      (* retransmission of a message the chain already holds *)
      if seq < t.committed then confirm () else Hashtbl.replace t.confirms seq confirm
    | None ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Hashtbl.replace t.dedup ext_key seq;
      Hashtbl.replace t.confirms seq confirm;
      store_at t head ~seq (ext_key, msg))

let resync t =
  (* every adjacent pair re-syncs: the predecessor holds a superset (chain
     prefix property), so it can replay whatever the successor is missing *)
  let rec pairs = function
    | p :: (s :: _ as rest) ->
      let pred = t.reps.(p) and succ = t.reps.(s) in
      for seq = succ.max_contig + 1 to pred.max_contig do
        let entry = Hashtbl.find pred.store seq in
        Sim.Engine.schedule t.engine ~delay:t.intra_latency (fun () ->
            if t.reps.(s).alive then store_at t s ~seq entry)
      done;
      pairs rest
    | [ _ ] | [] -> ()
  in
  pairs t.order

let crash_replica t i =
  if i < 0 || i >= Array.length t.reps then invalid_arg "Chain.crash_replica: no such replica";
  if not t.reps.(i).alive then invalid_arg "Chain.crash_replica: already crashed";
  let was_head = match t.order with h :: _ -> h = i | [] -> false in
  t.reps.(i).alive <- false;
  t.order <- List.filter (fun id -> id <> i) t.order;
  (match t.order with
  | [] -> ()
  | new_head :: _ ->
    if was_head then begin
      (* sequence numbers the dead head assigned but never replicated are
         lost; their dedup entries must go so retransmissions are re-keyed *)
      let floor = max t.committed (t.reps.(new_head).max_contig + 1) in
      t.next_seq <- floor;
      let stale = Hashtbl.fold (fun k seq acc -> if seq >= floor then k :: acc else acc) t.dedup [] in
      List.iter
        (fun k ->
          let seq = Hashtbl.find t.dedup k in
          Hashtbl.remove t.dedup k;
          Hashtbl.remove t.confirms seq)
        stale
    end;
    resync t;
    try_commit t;
    if was_head then t.on_head_change ())
