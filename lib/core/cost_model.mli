(** Service-time model for the throughput experiments.

    The paper's throughput differences come from per-operation metadata work
    (none / scalar / O(N) vector) plus the background stabilization that
    GentleRain and Cure run every 5 ms. This module centralises those costs
    as microseconds of storage-server time, so every protocol draws from the
    same calibrated budget. Absolute values are not meant to match EC2
    m4.large; ratios are what reproduce the paper's shapes (documented in
    DESIGN.md §2.1).

    All functions return the service time one operation consumes on the
    responsible storage server. *)

type t = {
  read_base_us : int;  (** storage read, no consistency metadata *)
  write_base_us : int;  (** storage write, no consistency metadata *)
  remote_apply_base_us : int;  (** installing a replicated remote update *)
  byte_cost_us_per_kb : int;  (** value handling cost per KiB *)
  scalar_meta_us : int;  (** touch one scalar (Saturn label / GentleRain ts) *)
  vector_entry_us : int;  (** per-vector-entry cost (Cure), ×N per op *)
  stabilization_us : int;  (** per-partition cost of one stabilization round *)
  stabilization_vector_entry_us : int;  (** extra per-entry stabilization cost (Cure) *)
  frontend_us : int;  (** frontend routing cost per client request *)
  serializer_label_us : int;  (** serializer cost to relay one label *)
  intra_dc_us : int;  (** one-way latency client↔frontend↔server *)
  stabilization_period : Sim.Time.t;  (** 5 ms, as in the authors' setup *)
  sink_period : Sim.Time.t;  (** label-sink flush/ordering period *)
  heartbeat_period : Sim.Time.t;  (** bulk-channel heartbeat period *)
}

val default : t

(* Per-protocol operation costs (returned in microseconds). [n_dcs] sizes
   the vectors for Cure. *)

val eventual_read_us : t -> size_bytes:int -> int
val eventual_write_us : t -> size_bytes:int -> int
val eventual_apply_us : t -> size_bytes:int -> int

val saturn_read_us : t -> size_bytes:int -> int
val saturn_write_us : t -> size_bytes:int -> int
val saturn_apply_us : t -> size_bytes:int -> int

val gentlerain_read_us : t -> size_bytes:int -> int
val gentlerain_write_us : t -> size_bytes:int -> int
val gentlerain_apply_us : t -> size_bytes:int -> int
val gentlerain_stab_us : t -> int

val cure_read_us : t -> n_dcs:int -> size_bytes:int -> int
val cure_write_us : t -> n_dcs:int -> size_bytes:int -> int
val cure_apply_us : t -> n_dcs:int -> size_bytes:int -> int
val cure_stab_us : t -> n_dcs:int -> int

val eunomia_read_us : t -> size_bytes:int -> int
val eunomia_write_us : t -> size_bytes:int -> int

val eunomia_apply_us : t -> size_bytes:int -> int
(** Installing a replicated update at a remote DC (scalar metadata). *)

val eunomia_seq_us : t -> int
(** Sequencer cost to absorb one asynchronous update notification. *)

val eunomia_stab_us : t -> int
(** Per-round stabilization cost, paid on the sequencer — not on the
    storage servers: Eunomia's defining move. *)

val okapi_read_us : t -> size_bytes:int -> int
val okapi_write_us : t -> size_bytes:int -> int
val okapi_apply_us : t -> size_bytes:int -> int

val okapi_stab_us : t -> int
(** Per-partition cost of one stable-vector round: one row entry, not the
    full O(N) vector Cure aggregates. *)
