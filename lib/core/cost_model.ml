type t = {
  read_base_us : int;
  write_base_us : int;
  remote_apply_base_us : int;
  byte_cost_us_per_kb : int;
  scalar_meta_us : int;
  vector_entry_us : int;
  stabilization_us : int;
  stabilization_vector_entry_us : int;
  frontend_us : int;
  serializer_label_us : int;
  intra_dc_us : int;
  stabilization_period : Sim.Time.t;
  sink_period : Sim.Time.t;
  heartbeat_period : Sim.Time.t;
}

(* Calibration notes (see DESIGN.md): with 90:10 reads and 7 DCs the mean
   eventual op cost is ~42us; Saturn adds one scalar per op (~2%);
   GentleRain adds a scalar plus stabilization work (~5%); Cure adds ~3us
   ~2us per vector entry per op plus vector stabilization work, which puts
   Cure's penalty at ~13% (3 DCs) to ~25% (7 DCs) as in Figure 1a. *)
let default =
  {
    read_base_us = 40;
    write_base_us = 60;
    remote_apply_base_us = 55;
    byte_cost_us_per_kb = 30;
    scalar_meta_us = 1;
    vector_entry_us = 2;
    stabilization_us = 40;
    stabilization_vector_entry_us = 8;
    frontend_us = 4;
    serializer_label_us = 1;
    intra_dc_us = 250;
    stabilization_period = Sim.Time.of_ms 5;
    sink_period = Sim.Time.of_ms 1;
    heartbeat_period = Sim.Time.of_ms 5;
  }

let value_cost_us t ~size_bytes = size_bytes * t.byte_cost_us_per_kb / 1024
let eventual_read_us t ~size_bytes = t.read_base_us + value_cost_us t ~size_bytes
let eventual_write_us t ~size_bytes = t.write_base_us + value_cost_us t ~size_bytes
let eventual_apply_us t ~size_bytes = t.remote_apply_base_us + value_cost_us t ~size_bytes
let saturn_read_us t ~size_bytes = eventual_read_us t ~size_bytes + t.scalar_meta_us

let saturn_write_us t ~size_bytes =
  (* label generation + handing the label to the sink *)
  eventual_write_us t ~size_bytes + (2 * t.scalar_meta_us)

let saturn_apply_us t ~size_bytes = eventual_apply_us t ~size_bytes + t.scalar_meta_us
let gentlerain_read_us t ~size_bytes = eventual_read_us t ~size_bytes + (2 * t.scalar_meta_us)
let gentlerain_write_us t ~size_bytes = eventual_write_us t ~size_bytes + (2 * t.scalar_meta_us)
let gentlerain_apply_us t ~size_bytes = eventual_apply_us t ~size_bytes + t.scalar_meta_us
let gentlerain_stab_us t = t.stabilization_us
let cure_read_us t ~n_dcs ~size_bytes = eventual_read_us t ~size_bytes + (t.vector_entry_us * n_dcs)
let cure_write_us t ~n_dcs ~size_bytes = eventual_write_us t ~size_bytes + (t.vector_entry_us * n_dcs)
let cure_apply_us t ~n_dcs ~size_bytes = eventual_apply_us t ~size_bytes + (t.vector_entry_us * n_dcs)
let cure_stab_us t ~n_dcs = t.stabilization_us + (t.stabilization_vector_entry_us * n_dcs)

(* Eunomia: writes touch one scalar only — the sequencer notification is
   asynchronous and stabilization runs on the sequencer, not on the storage
   servers, so the client path is one scalar cheaper than GentleRain's. *)
let eunomia_read_us t ~size_bytes = eventual_read_us t ~size_bytes + t.scalar_meta_us
let eunomia_write_us t ~size_bytes = eventual_write_us t ~size_bytes + t.scalar_meta_us
let eunomia_apply_us t ~size_bytes = eventual_apply_us t ~size_bytes + t.scalar_meta_us
let eunomia_seq_us t = t.scalar_meta_us
let eunomia_stab_us t = t.stabilization_us

(* Okapi: hybrid timestamps cost a few scalars on the client path (more than
   GentleRain's single scalar, far less than Cure's O(N) vectors), and the
   stable-vector round touches one row entry instead of the full vector. *)
let okapi_read_us t ~size_bytes = eventual_read_us t ~size_bytes + (2 * t.scalar_meta_us)
let okapi_write_us t ~size_bytes = eventual_write_us t ~size_bytes + (3 * t.scalar_meta_us)
let okapi_apply_us t ~size_bytes = eventual_apply_us t ~size_bytes + t.scalar_meta_us
let okapi_stab_us t = t.stabilization_us + t.stabilization_vector_entry_us
