type t = {
  engine : Sim.Engine.t;
  gears : Gear.t array;
  buffer : Label.t Sim.Heap.Keyed.t; (* keyed by (ts, src): Label.compare_ts_src *)
  emit : Label.t -> unit;
  emitted_counter : Stats.Registry.counter;
  mutable last_emitted_ts : Sim.Time.t;
  mutable stopped : bool;
}

let stable_ts t =
  Array.fold_left (fun acc g -> Sim.Time.min acc (Gear.floor g)) Sim.Time.infinity t.gears

let flush t =
  let stable = stable_ts t in
  let rec drain () =
    match Sim.Heap.Keyed.peek t.buffer with
    | Some l when Sim.Time.compare l.Label.ts stable <= 0 ->
      let l = Sim.Heap.Keyed.pop_exn t.buffer in
      (* the stability rule guarantees monotone emission *)
      assert (Sim.Time.compare l.Label.ts t.last_emitted_ts >= 0);
      t.last_emitted_ts <- l.Label.ts;
      Stats.Registry.incr t.emitted_counter;
      if Sim.Probe.active () then begin
        let at = Sim.Engine.now t.engine in
        Sim.Span.end_ ~at Sim.Span.Sk_sink_hold ~origin:l.Label.src_dc
          ~seq:(Sim.Time.to_us l.Label.ts) ~aux:l.Label.src_gear ~site:l.Label.src_dc;
        Sim.Probe.emit ~at (Sim.Probe.Sink_emit { dc = l.Label.src_dc; ts = Sim.Time.to_us l.Label.ts })
      end;
      t.emit l;
      drain ()
    | Some _ | None -> ()
  in
  drain ()

let create engine ~gears ~period ~emit ?registry ?series ?(name = "sink") () =
  let registry = match registry with Some r -> r | None -> Stats.Registry.create () in
  let t =
    {
      engine;
      gears;
      buffer =
        Sim.Heap.Keyed.create
          ~dummy:(Label.update ~ts:Sim.Time.zero ~src_dc:0 ~src_gear:0 ~key:0)
          ();
      emit;
      emitted_counter = Stats.Registry.counter registry (name ^ ".emitted");
      last_emitted_ts = Sim.Time.zero;
      stopped = false;
    }
  in
  (match series with
  | Some series ->
    Stats.Series.sample series
      ("series." ^ name ^ ".depth")
      (fun () -> float_of_int (Sim.Heap.Keyed.size t.buffer))
  | None -> ());
  Sim.Engine.periodic engine ~every:period (fun () -> flush t) ~stop:(fun () -> t.stopped);
  t

let offer t label =
  if Sim.Probe.active () then
    Sim.Span.begin_ ~at:(Sim.Engine.now t.engine) Sim.Span.Sk_sink_hold
      ~origin:label.Label.src_dc ~seq:(Sim.Time.to_us label.Label.ts) ~aux:label.Label.src_gear
      ~site:label.Label.src_dc;
  Sim.Heap.Keyed.push t.buffer ~k1:(Label.key_ts label) ~k2:(Label.key_src label) label
let stop t = t.stopped <- true
let emitted t = Stats.Registry.counter_value t.emitted_counter
let buffered t = Sim.Heap.Keyed.size t.buffer
