type 'msg receiver = {
  r_engine : Sim.Engine.t;
  r_deliver : 'msg receiver -> sender_id:int -> seq:int -> 'msg -> unit;
  (* per-sender expected sequence and out-of-order buffer *)
  r_expected : (int, int) Hashtbl.t;
  r_buffer : (int * int, 'msg) Hashtbl.t; (* (sender, seq) -> msg *)
  (* deferred mode: next seq to confirm and the latest ack channel *)
  r_confirmed : (int, int) Hashtbl.t;
  r_unconfirmed : (int * int, 'msg) Hashtbl.t; (* (sender, seq) delivered, unconfirmed *)
  r_ack_via : (int, int -> unit) Hashtbl.t;
  r_deferred : bool;
  mutable r_delivered : int;
}

type 'msg entry = { seq : int; size : int; msg : 'msg; mutable last_sent : Sim.Time.t }

type 'msg sender = {
  s_engine : Sim.Engine.t;
  s_id : int;
  resend_period : Sim.Time.t;
  mutable next_seq : int;
  unacked : 'msg entry Queue.t; (* oldest first; seqs strictly increasing *)
  mutable route : 'msg route option;
  mutable stopped : bool;
  mutable timer_running : bool;
}

and 'msg route = { data : Sim.Link.t; ack : Sim.Link.t; dest : 'msg receiver }

let make_receiver r_engine ~deferred ~deliver =
  { r_engine; r_deliver = deliver; r_expected = Hashtbl.create 8; r_buffer = Hashtbl.create 8;
    r_confirmed = Hashtbl.create 8; r_unconfirmed = Hashtbl.create 8;
    r_ack_via = Hashtbl.create 8; r_deferred = deferred; r_delivered = 0 }

let receiver r_engine ~deliver =
  make_receiver r_engine ~deferred:false ~deliver:(fun _ ~sender_id:_ ~seq:_ msg -> deliver msg)

let deliver_deferred consumer recv ~sender_id ~seq msg =
  let confirm () =
    if Hashtbl.mem recv.r_unconfirmed (sender_id, seq) then begin
      Hashtbl.remove recv.r_unconfirmed (sender_id, seq);
      let confirmed = Option.value ~default:0 (Hashtbl.find_opt recv.r_confirmed sender_id) in
      Hashtbl.replace recv.r_confirmed sender_id (confirmed + 1);
      match Hashtbl.find_opt recv.r_ack_via sender_id with
      | Some send_ack -> send_ack confirmed
      | None -> ()
    end
  in
  Hashtbl.replace recv.r_unconfirmed (sender_id, seq) msg;
  consumer msg ~confirm

let receiver_deferred r_engine ~deliver =
  make_receiver r_engine ~deferred:true
    ~deliver:(fun recv ~sender_id ~seq msg -> deliver_deferred deliver recv ~sender_id ~seq msg)

let redeliver_unconfirmed recv ~deliver =
  (* replay delivered-but-unconfirmed messages in sequence order per
     sender: the consumer (a healed chain) may have lost them *)
  let sorted =
    List.sort
      (fun ((s1, q1), _) ((s2, q2), _) ->
        match Int.compare s1 s2 with 0 -> Int.compare q1 q2 | c -> c)
      (Hashtbl.fold (fun k m acc -> (k, m) :: acc) recv.r_unconfirmed [])
  in
  List.iter (fun ((sender_id, seq), msg) -> deliver_deferred deliver recv ~sender_id ~seq msg) sorted

let delivered r = r.r_delivered

let receive recv ~sender_id ~seq msg ~send_ack =
  Hashtbl.replace recv.r_ack_via sender_id send_ack;
  let expected = Option.value ~default:0 (Hashtbl.find_opt recv.r_expected sender_id) in
  if seq >= expected then Hashtbl.replace recv.r_buffer (sender_id, seq) msg;
  (* drain the in-order prefix *)
  let rec drain e =
    match Hashtbl.find_opt recv.r_buffer (sender_id, e) with
    | Some m ->
      Hashtbl.remove recv.r_buffer (sender_id, e);
      recv.r_delivered <- recv.r_delivered + 1;
      recv.r_deliver recv ~sender_id ~seq:e m;
      drain (e + 1)
    | None -> e
  in
  let expected' = drain expected in
  Hashtbl.replace recv.r_expected sender_id expected';
  if recv.r_deferred then begin
    (* ack only the confirmed prefix *)
    let confirmed = Option.value ~default:0 (Hashtbl.find_opt recv.r_confirmed sender_id) in
    if confirmed > 0 then send_ack (confirmed - 1)
  end
  else
    (* cumulative ack: everything below expected' has been delivered *)
    send_ack (expected' - 1)

let sender s_engine ~resend_period =
  (* engine-scoped, not process-global: the id reaches the probe stream
     via [Fifo_resend], and a global counter would make a second
     same-seed run in the same process digest differently *)
  { s_engine; s_id = Sim.Engine.fresh_id s_engine; resend_period; next_seq = 0;
    unacked = Queue.create (); route = None; stopped = false; timer_running = false }

let unacked s = Queue.length s.unacked

let transmit s route entry =
  entry.last_sent <- Sim.Engine.now s.s_engine;
  Sim.Link.send route.data ~size_bytes:entry.size (fun () ->
      receive route.dest ~sender_id:s.s_id ~seq:entry.seq entry.msg ~send_ack:(fun acked ->
          Sim.Link.send route.ack (fun () ->
              (* cumulative ack + seq-ordered queue: drop the acked prefix *)
              let rec drop () =
                match Queue.peek_opt s.unacked with
                | Some e when e.seq <= acked ->
                  ignore (Queue.pop s.unacked);
                  drop ()
                | Some _ | None -> ()
              in
              drop ())))

let rec arm_timer s =
  if (not s.timer_running) && not s.stopped then begin
    s.timer_running <- true;
    Sim.Engine.schedule s.s_engine ~delay:s.resend_period (fun () ->
        s.timer_running <- false;
        if not s.stopped then begin
          let now = Sim.Engine.now s.s_engine in
          (match s.route with
          | None -> ()
          | Some route ->
            (* retransmit only entries that have been in flight for a full
               period — fresh entries are just waiting on the normal RTT *)
            Queue.iter
              (fun e ->
                if Sim.Time.compare (Sim.Time.sub now e.last_sent) s.resend_period >= 0 then begin
                  if Sim.Probe.active () then
                    Sim.Probe.emit ~at:now (Sim.Probe.Fifo_resend { sender = s.s_id; seq = e.seq });
                  transmit s route e
                end)
              s.unacked);
          if not (Queue.is_empty s.unacked) then arm_timer s
        end)
  end

let send s ?(size_bytes = 0) msg =
  match s.route with
  | None -> invalid_arg "Reliable_fifo.send: not connected"
  | Some route ->
    let seq = s.next_seq in
    s.next_seq <- seq + 1;
    let entry = { seq; size = size_bytes; msg; last_sent = Sim.Engine.now s.s_engine } in
    Queue.push entry s.unacked;
    transmit s route entry;
    arm_timer s

let connect s ~data ~ack dest =
  s.route <- Some { data; ack; dest };
  let route = { data; ack; dest } in
  Queue.iter (transmit s route) s.unacked;
  if not (Queue.is_empty s.unacked) then arm_timer s

let stop s = s.stopped <- true
