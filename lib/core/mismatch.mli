(** The Weighted Minimal Mismatch objective (§5.4, Definition 2).

    For each ordered pair of datacenters (i, j) that share data, the optimal
    label propagation latency equals the bulk-data transfer latency β(i, j):
    delivering a label earlier creates premature false dependencies,
    delivering it later sacrifices freshness. A configuration's quality is
    the weighted sum over pairs of |λ(i, j) − β(i, j)| where λ is the
    metadata-path latency through the serializer tree. *)

type t = {
  n_dcs : int;
  weight : int -> int -> float;  (** c(i, j); pairs with weight 0 are ignored *)
  bulk : int -> int -> Sim.Time.t;  (** β(i, j), the bulk-data latency *)
}

val uniform : n_dcs:int -> bulk:(int -> int -> Sim.Time.t) -> t
(** Every ordered pair weighs 1. *)

val of_replica_map : Kvstore.Replica_map.t -> bulk:(int -> int -> Sim.Time.t) -> t
(** c(i, j) = number of keys replicated at both i and j (the workload-derived
    correlation weights of §5.4); pairs sharing nothing are ignored. *)

val objective : t -> Config.t -> Sim.Topology.t -> float
(** The Definition 2 sum, in weighted milliseconds. *)

val lower_bound : t -> Config.t -> Sim.Topology.t -> float
(** Objective achievable if delays could be chosen per-pair: counts only the
    pairs whose metadata path is *slower* than bulk (delays cannot speed a
    path up). Cheap; used to rank candidate trees during generation. *)
