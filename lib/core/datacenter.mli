(** One Saturn-enabled datacenter (§4, Figure 2).

    Composes the abstract decomposition of the paper: stateless frontends,
    storage servers with attached gears, the label sink, and the remote
    proxy. The datacenter is linearizable (single simulated process), and
    exports a serial label stream through its sink.

    Networking (client latency, bulk links, the metadata tree) is wired by
    {!System}; this module owns only intra-datacenter behaviour. *)

type t

type hooks = {
  ship_payload : dst:int -> Proxy.payload -> unit;
      (** bulk-data transfer of an update to a replica datacenter *)
  emit_label : Label.t -> unit;  (** sink output toward the metadata service *)
  on_remote_visible : key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit;
      (** a remote update just became visible locally *)
}

val create :
  Sim.Engine.t ->
  dc:int ->
  n_dcs:int ->
  partitions:int ->
  frontends:int ->
  cost:Cost_model.t ->
  rmap:Kvstore.Replica_map.t ->
  hooks:hooks ->
  ?clock_offset:Sim.Time.t ->
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?proxy_mode:Proxy.mode ->
  unit ->
  t
(** [registry] collects the datacenter's counters and those of its sink and
    proxy, scoped by datacenter id ([dc0.updates_originated],
    [sink.dc0.emitted], [proxy.dc0.applied_updates], …); a private registry
    is created when omitted. [series] is forwarded to the sink and proxy
    for windowed queue-depth / apply-throughput telemetry. *)

val proxy : t -> Proxy.t
val store_of_key : t -> key:int -> (Label.t, int) Kvstore.Store.t
val gear_floor : t -> Sim.Time.t
(** min over gears — the datacenter's bulk-heartbeat promise. *)

(** {2 Frontend operations} — continuation-passing; each consumes frontend
    and storage-server service time before completing. *)

val attach : t -> client_label:Label.t option -> k:(unit -> unit) -> unit
(** Algorithm 1 ATTACH: returns immediately for locally-generated (or
    empty) causal pasts; waits for migration-label application or for
    per-source timestamp stabilization otherwise. *)

val read : t -> key:int -> k:((Kvstore.Value.t * Label.t) option -> unit) -> unit

val update :
  t -> key:int -> value:Kvstore.Value.t -> client_ts:Sim.Time.t -> k:(Label.t -> unit) -> unit
(** Algorithm 2 UPDATE: mints the label, persists locally, ships payloads
    to replica datacenters and hands the label to the sink. *)

val migrate : t -> dest_dc:int -> client_ts:Sim.Time.t -> k:(Label.t -> unit) -> unit
(** Algorithm 2 MIGRATION: mints a migration label (greater than the
    client's past) and sinks it. *)

val emit_epoch_label : t -> epoch:int -> Label.t
(** Mints an epoch-change label (§6.2) and hands it to the sink; returns it
    so the caller can detect when the sink emits it. *)

val bump_clock : t -> Sim.Time.t -> unit
(** Fault injection: step-change the datacenter's physical-clock skew
    (shared by all its gears). Gear discipline keeps label timestamps
    monotonic through the bump. *)

val stop : t -> unit

(** {2 Introspection} *)

val updates_originated : t -> int
val remote_applied : t -> int
