type meta = Sim.Time.t * int (* (hybrid ts, origin dc) *)

let compare_meta (ta, da) (tb, db) =
  match Sim.Time.compare ta tb with 0 -> Int.compare da db | c -> c

type pending = {
  key : int;
  value : Kvstore.Value.t;
  meta : meta;
  origin_time : Sim.Time.t;
}

type dc_state = {
  stores : (meta, int) Kvstore.Store.t array;
  known : Sim.Time.t array array; (* known.(i).(k): what DC i has received from k *)
  mutable ust : Sim.Time.t; (* min over the whole matrix *)
  pending : pending Sim.Heap.t; (* applied payloads awaiting UST *)
  mutable waiters : (Sim.Time.t * (unit -> unit)) list; (* attach waits *)
}

type t = {
  geo : Common.t;
  hooks : Common.hooks;
  dcs : dc_state array;
  client_dt : (int, Sim.Time.t) Hashtbl.t; (* client dependency time *)
  apply_series : Stats.Series.counter option array; (* per dc *)
  meta_bytes : Stats.Meta_bytes.t option;
}

(* hybrid timestamp (physical 8 + logical 4) + origin (4) + dependency
   cut (8): a constant, between GentleRain's scalar and Cure's vector *)
let meta_wire_bytes = 24

(* one matrix row: n scalar entries (8 each) + row owner (4) *)
let row_wire_bytes n = (8 * n) + 4

let probe_vec t ~dc ~src ts =
  if Sim.Probe.active () then
    Sim.Probe.emit
      ~at:(Sim.Engine.now (Common.engine t.geo))
      (Sim.Probe.Vec_advance { dc; src; ts = Sim.Time.to_us ts })

(* Recompute dc's UST from its matrix and flush every pending remote
   update it now covers: UST ≥ ts means every DC has received everything
   up to ts, so installing in timestamp order cannot skip a dependency. *)
let advance t dc =
  let geo = t.geo in
  let n = Common.n_dcs geo in
  let d = t.dcs.(dc) in
  let ust = ref Sim.Time.infinity in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      ust := Sim.Time.min !ust d.known.(i).(k)
    done
  done;
  if n > 1 && Sim.Time.compare !ust d.ust > 0 then d.ust <- !ust;
  let rec flush () =
    match Sim.Heap.peek d.pending with
    | Some pn when Sim.Time.compare (fst pn.meta) d.ust <= 0 ->
      let pn = Sim.Heap.pop_exn d.pending in
      let part = Common.partition_of geo ~key:pn.key in
      if Sim.Probe.active () then
        Sim.Span.end_
          ~at:(Sim.Engine.now (Common.engine geo))
          Sim.Span.Sk_stab ~origin:(snd pn.meta)
          ~seq:(Sim.Time.to_us (fst pn.meta))
          ~aux:part ~site:dc;
      let _ =
        Kvstore.Store.put_if_newer d.stores.(part) ~cmp:compare_meta ~key:pn.key pn.value pn.meta
      in
      (match t.apply_series.(dc) with
      | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now (Common.engine geo))
      | None -> ());
      t.hooks.Common.on_visible ~dc ~key:pn.key ~origin_dc:(snd pn.meta)
        ~origin_time:pn.origin_time ~value:pn.value;
      flush ()
    | Some _ | None -> ()
  in
  flush ();
  let ready, still = List.partition (fun (ts, _) -> Sim.Time.compare ts d.ust <= 0) d.waiters in
  d.waiters <- still;
  List.iter (fun (_, k) -> k ()) ready

(* Merge a broadcast of src's own matrix row into dst's matrix. The row's
   diagonal entry is src's announced floor: merging it into dst's own row
   is safe because any payload below the floor was shipped before the row
   on the same FIFO link. *)
let merge_row t ~dst ~src row =
  let d = t.dcs.(dst) in
  Array.iteri
    (fun k x -> if Sim.Time.compare x d.known.(src).(k) > 0 then d.known.(src).(k) <- x)
    row;
  if Sim.Time.compare row.(src) d.known.(dst).(src) > 0 then begin
    d.known.(dst).(src) <- row.(src);
    probe_vec t ~dc:dst ~src row.(src)
  end;
  advance t dst

let rec create ?series ?meta engine p hooks =
  let geo = Common.create ?series engine p in
  let n = Common.n_dcs geo in
  let dcs =
    Array.init n (fun _ ->
        {
          stores = Array.init p.Common.partitions (fun _ -> Kvstore.Store.create ());
          known = Array.init n (fun _ -> Array.make n Sim.Time.zero);
          ust = Sim.Time.zero;
          pending = Sim.Heap.create ~cmp:(fun a b -> compare_meta a.meta b.meta) ();
          waiters = [];
        })
  in
  let apply_series =
    Array.init n (fun dc ->
        Option.map
          (fun sr -> Stats.Series.counter sr (Printf.sprintf "series.apply.dc%d" dc))
          series)
  in
  let t = { geo; hooks; dcs; client_dt = Hashtbl.create 256; apply_series; meta_bytes = meta } in
  (match series with
  | Some sr ->
    for dc = 0 to n - 1 do
      Stats.Series.sample sr
        (Printf.sprintf "series.pending.dc%d" dc)
        (fun () -> float_of_int (Sim.Heap.size t.dcs.(dc).pending))
    done
  | None -> ());
  let cost = p.Common.cost in
  (* stable-time rounds: like Cure the round only completes once every
     partition has finished its (cheaper, one-entry) aggregation task; the
     completed round broadcasts this DC's matrix row. No heartbeats. *)
  for dc = 0 to n - 1 do
    Common.every geo cost.Saturn.Cost_model.stabilization_period (fun () ->
        let remaining = ref p.Common.partitions in
        for part = 0 to p.Common.partitions - 1 do
          Common.submit geo ~dc ~part ~cost_us:(Saturn.Cost_model.okapi_stab_us cost)
            (fun () ->
              decr remaining;
              if !remaining = 0 then finish_stab_round t dc)
        done)
  done;
  t

and finish_stab_round t dc =
  let geo = t.geo in
  let n = Common.n_dcs geo in
  let d = t.dcs.(dc) in
  let floor = Common.dc_floor geo ~dc in
  if Sim.Time.compare floor d.known.(dc).(dc) > 0 then d.known.(dc).(dc) <- floor;
  if Sim.Probe.active () then
    Sim.Probe.emit
      ~at:(Sim.Engine.now (Common.engine geo))
      (Sim.Probe.Stab_round { dc; gst = Sim.Time.to_us d.ust });
  let row = Array.copy d.known.(dc) in
  for dst = 0 to n - 1 do
    if dst <> dc then begin
      (match t.meta_bytes with
      | Some m -> Stats.Meta_bytes.record_stabilization m ~bytes:(row_wire_bytes n)
      | None -> ());
      Common.ship geo ~src:dc ~dst ~size_bytes:(row_wire_bytes n) (fun () ->
          merge_row t ~dst ~src:dc row)
    end
  done;
  advance t dc

let fabric t = t.geo
let cost t = (Common.params t.geo).Common.cost
let rmap t = (Common.params t.geo).Common.rmap
let client_dt t client = Option.value ~default:Sim.Time.zero (Hashtbl.find_opt t.client_dt client)

let bump_dt t client ts =
  let cur = client_dt t client in
  if Sim.Time.compare ts cur > 0 then Hashtbl.replace t.client_dt client ts

let attach t ~client ~home ~dc ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let d = t.dcs.(dc) in
          let dt = client_dt t client in
          if Sim.Time.compare dt d.ust <= 0 then reply ()
          else d.waiters <- (dt, reply) :: d.waiters))
    ~k

let read t ~client ~home ~dc ~key ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let store = t.dcs.(dc).stores.(part) in
          let size =
            match Kvstore.Store.get store ~key with
            | Some (v, _) -> v.Kvstore.Value.size_bytes
            | None -> 0
          in
          let cost_us = Saturn.Cost_model.okapi_read_us (cost t) ~size_bytes:size in
          Common.submit t.geo ~dc ~part ~cost_us (fun () -> reply (Kvstore.Store.get store ~key))))
    ~k:(fun result ->
      match result with
      | Some (v, (ts, _)) ->
        bump_dt t client ts;
        k (Some v)
      | None -> k None)

let update t ~client ~home ~dc ~key ~value ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let cost_us =
            Saturn.Cost_model.okapi_write_us (cost t) ~size_bytes:value.Kvstore.Value.size_bytes
          in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              let ts = Common.gen_ts t.geo ~dc ~part ~floor:(client_dt t client) in
              let meta = (ts, dc) in
              Kvstore.Store.put t.dcs.(dc).stores.(part) ~key value meta;
              let origin_time = Sim.Engine.now (Common.engine t.geo) in
              let size = value.Kvstore.Value.size_bytes + meta_wire_bytes in
              let fanout = ref 0 in
              List.iter
                (fun dst ->
                  if dst <> dc then begin
                    incr fanout;
                    if Sim.Probe.active () then
                      Sim.Span.begin_ ~at:origin_time Sim.Span.Sk_bulk ~origin:dc
                        ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                    Common.ship t.geo ~src:dc ~dst ~size_bytes:size (fun () ->
                        let dd = t.dcs.(dst) in
                        if Sim.Time.compare ts dd.known.(dst).(dc) > 0 then begin
                          dd.known.(dst).(dc) <- ts;
                          probe_vec t ~dc:dst ~src:dc ts
                        end;
                        let apply_cost =
                          Saturn.Cost_model.okapi_apply_us (cost t)
                            ~size_bytes:value.Kvstore.Value.size_bytes
                        in
                        Common.submit t.geo ~dc:dst ~part:(Common.partition_of t.geo ~key)
                          ~cost_us:apply_cost (fun () ->
                            if Sim.Probe.active () then begin
                              let at = Sim.Engine.now (Common.engine t.geo) in
                              Sim.Span.end_ ~at Sim.Span.Sk_bulk ~origin:dc
                                ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                              (* universal-stability hold: until UST ≥ ts *)
                              Sim.Span.begin_ ~at Sim.Span.Sk_stab ~origin:dc
                                ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dst
                            end;
                            Sim.Heap.push dd.pending { key; value; meta; origin_time };
                            advance t dst))
                  end)
                (Kvstore.Replica_map.replicas (rmap t) ~key);
              (match t.meta_bytes with
              | Some m -> Stats.Meta_bytes.record_op m ~bytes:meta_wire_bytes ~fanout:!fanout
              | None -> ());
              reply ts)))
    ~k:(fun ts ->
      bump_dt t client ts;
      k ())

let stop t = Common.stop t.geo

let store_value t ~dc ~key =
  let part = Common.partition_of t.geo ~key in
  Option.map fst (Kvstore.Store.get t.dcs.(dc).stores.(part) ~key)
