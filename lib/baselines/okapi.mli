(** Okapi (Didona, Spirovska & Zwaenepoel, 2017) — hybrid vector/scalar
    stable time: causal geo-replication made faster, cheaper and more
    available than Cure.

    Updates carry a scalar hybrid timestamp (physical + logical + origin +
    a dependency cut) instead of Cure's O(N) dependency vector, so the
    attached metadata is a small constant. Stabilization is global rather
    than pairwise: each DC keeps an N×N matrix of known timestamps
    ([known.(i).(k)] = what DC [i] has received from DC [k], learned from
    periodic row broadcasts), and the {e universal stable time} (UST) is
    the minimum over the whole matrix — the time below which {e every} DC
    has received {e everything}. A remote update is installed when
    UST ≥ its timestamp; because stability is universal, any DC can fail
    over to any other without losing causal cuts (the availability claim),
    at the price of visibility latency that waits on the slowest pair of
    DCs. No heartbeats: the row broadcasts carry the liveness floors. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> t

val fabric : t -> Common.t

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option
