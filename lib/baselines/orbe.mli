(** Orbe (Du et al., SoCC '13) — explicit dependency checking with
    dependency matrices.

    The fourth metadata family of the paper's Table 2: each version carries
    a dependency matrix with one entry per (datacenter, partition) — the
    number of updates from that partition the version depends on. A replica
    applies a remote update once it has locally applied at least that many
    updates from every referenced partition. After a write, the client's
    context collapses to the new version (the transitivity-based pruning
    that is sound under full replication only — under partial
    geo-replication a dependency on a partition whose updates this
    datacenter does not receive can never be satisfied, which is why the
    paper rules the whole explicit-check family out; see
    {!blocked_updates}). Visibility is dependency-bound (fresh, like COPS),
    metadata is O(datacenters × partitions) per update. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> t

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option

val mean_matrix_entries : t -> float
(** Mean number of non-zero dependency-matrix entries shipped per update —
    bounded by datacenters × partitions, vs Saturn's constant label. *)

val blocked_updates : t -> dc:int -> int
(** Remote updates stuck at [dc] because a dependency-matrix entry
    references a partition whose updates never reach it (the
    partial-replication failure mode). *)
