(** GentleRain (Du et al., SoCC '14) — the scalar-metadata baseline.

    Causal consistency with a single scalar: every version carries one
    timestamp; a background stabilization mechanism runs every 5 ms and
    computes the Global Stable Time (GST) from the timestamps received from
    {e every} datacenter (payloads and heartbeats). A remote update becomes
    visible when GST ≥ its timestamp, so the visibility lower bound is the
    latency to the {e furthest} datacenter regardless of the update's
    origin — cheap metadata, poor freshness, and no benefit from partial
    replication. Remote attaches block until GST ≥ the client's dependency
    time. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> t

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option
