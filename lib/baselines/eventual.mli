(** Eventually consistent geo-replicated store — the paper's baseline
    (§7.1).

    No consistency metadata at all: updates are timestamped only for
    last-writer-wins convergence, replicated over the bulk channel and made
    visible the instant the payload arrives. This is the throughput
    upper-bound and visibility-latency lower-bound ("optimal") every other
    system is compared against. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> t

val fabric : t -> Common.t

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option
