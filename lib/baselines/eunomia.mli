(** Eunomia (Gunawardhana, Bravo & Rodrigues, ATC '17) — unobtrusive
    deferred update stabilization.

    Same scalar metadata as GentleRain, different division of labour: each
    datacenter runs an intra-DC {e sequencer} that totally orders the DC's
    local updates off the client path. Storage servers notify the sequencer
    asynchronously after acking the client, so writes pay for one scalar
    only; the sequencer periodically announces its stable timestamp (the
    floor below which no more local updates will be issued) to every remote
    DC. A remote DC installs an update when every {e remote} sequencer's
    announced stable time covers the update's timestamp — stabilization
    work moved entirely onto the sequencer, never onto storage servers or
    the client path.

    The sequencer is a single point of order per DC: [sequencer_crash]
    silences it for a failover window (announcements stop, remote GSTs —
    and hence remote visibility — stall) until the backup takes over,
    mirroring the paper's fault-tolerance discussion. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> t

val fabric : t -> Common.t

val sequencer_crash : t -> dc:int -> unit
(** Crash [dc]'s sequencer: announcements (and stabilization rounds) stop
    until a backup takes over after a fixed failover window. Idempotent
    while already down. *)

val sequencer_down : t -> dc:int -> bool

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option
