type meta = { vc : Sim.Time.t array; origin : int }

(* last-writer-wins on (commit timestamp, origin) *)
let compare_meta a b =
  match Sim.Time.compare a.vc.(a.origin) b.vc.(b.origin) with
  | 0 -> Int.compare a.origin b.origin
  | c -> c

type pending = {
  key : int;
  value : Kvstore.Value.t;
  meta : meta;
  origin_time : Sim.Time.t;
}

type dc_state = {
  stores : (meta, int) Kvstore.Store.t array;
  vv : Sim.Time.t array;
  gsv : Sim.Time.t array; (* snapshot taken at stabilization rounds *)
  mutable pending : pending list;
  mutable waiters : (Sim.Time.t array * (unit -> unit)) list;
}

type t = {
  geo : Common.t;
  hooks : Common.hooks;
  dcs : dc_state array;
  client_dv : (int, Sim.Time.t array) Hashtbl.t;
  apply_series : Stats.Series.counter option array; (* per dc *)
  meta_bytes : Stats.Meta_bytes.t option;
}

let vector_wire_bytes n = (8 * n) + 4

let dominated ~except v ~by =
  let ok = ref true in
  Array.iteri (fun j x -> if j <> except && Sim.Time.compare x by.(j) > 0 then ok := false) v;
  !ok

let probe_vec t ~dc ~src ts =
  if Sim.Probe.active () then
    Sim.Probe.emit
      ~at:(Sim.Engine.now (Common.engine t.geo))
      (Sim.Probe.Vec_advance { dc; src; ts = Sim.Time.to_us ts })

let rec create ?series ?meta engine p hooks =
  let geo = Common.create ?series engine p in
  let n = Common.n_dcs geo in
  let dcs =
    Array.init n (fun _ ->
        {
          stores = Array.init p.Common.partitions (fun _ -> Kvstore.Store.create ());
          vv = Array.make n Sim.Time.zero;
          gsv = Array.make n Sim.Time.zero;
          pending = [];
          waiters = [];
        })
  in
  let apply_series =
    Array.init n (fun dc ->
        Option.map
          (fun sr -> Stats.Series.counter sr (Printf.sprintf "series.apply.dc%d" dc))
          series)
  in
  let t = { geo; hooks; dcs; client_dv = Hashtbl.create 256; apply_series; meta_bytes = meta } in
  (match series with
  | Some sr ->
    for dc = 0 to n - 1 do
      Stats.Series.sample sr
        (Printf.sprintf "series.pending.dc%d" dc)
        (fun () -> float_of_int (List.length t.dcs.(dc).pending))
    done
  | None -> ());
  let cost = p.Common.cost in
  for dc = 0 to n - 1 do
    Common.every geo cost.Saturn.Cost_model.heartbeat_period (fun () ->
        let floor = Common.dc_floor geo ~dc in
        for dst = 0 to n - 1 do
          if dst <> dc then begin
            (match t.meta_bytes with
            | Some m -> Stats.Meta_bytes.record_heartbeat m ~bytes:(vector_wire_bytes n)
            | None -> ());
            Common.ship geo ~src:dc ~dst ~size_bytes:(vector_wire_bytes n) (fun () ->
                let d = t.dcs.(dst) in
                if Sim.Time.compare floor d.vv.(dc) > 0 then begin
                  d.vv.(dc) <- floor;
                  probe_vec t ~dc:dst ~src:dc floor
                end)
          end
        done)
  done;
  (* the GSV advances only after every partition finishes its aggregation
     task: stabilization pays for its queueing under load *)
  for dc = 0 to n - 1 do
    Common.every geo cost.Saturn.Cost_model.stabilization_period (fun () ->
        let remaining = ref p.Common.partitions in
        for part = 0 to p.Common.partitions - 1 do
          Common.submit geo ~dc ~part ~cost_us:(Saturn.Cost_model.cure_stab_us cost ~n_dcs:n)
            (fun () ->
              decr remaining;
              if !remaining = 0 then finish_stab_round t dc)
        done)
  done;
  t

and finish_stab_round t dc =
  let geo = t.geo in
  let n = Common.n_dcs geo in
  begin
    let d = t.dcs.(dc) in
        for src = 0 to n - 1 do
          if src <> dc then d.gsv.(src) <- Sim.Time.max d.gsv.(src) d.vv.(src)
        done;
        (* the local entry is always stable: local updates are applied at
           commit time *)
        d.gsv.(dc) <- Sim.Time.max d.gsv.(dc) (Common.dc_floor geo ~dc);
        if Sim.Probe.active () then begin
          (* the stable snapshot is summarized by its oldest entry, matching
             the scalar GST of the GentleRain probe *)
          let oldest = ref Sim.Time.infinity in
          Array.iter (fun x -> oldest := Sim.Time.min !oldest x) d.gsv;
          Sim.Probe.emit
            ~at:(Sim.Engine.now (Common.engine geo))
            (Sim.Probe.Stab_round { dc; gst = Sim.Time.to_us !oldest })
        end;
        (* a remote update is visible once the GSV dominates its dependency
           vector on every entry but its own *)
        let visible, still =
          List.partition (fun pn -> dominated ~except:pn.meta.origin pn.meta.vc ~by:d.gsv) d.pending
        in
        d.pending <- still;
        List.iter
          (fun pn ->
            let part = Common.partition_of geo ~key:pn.key in
            if Sim.Probe.active () then
              Sim.Span.end_
                ~at:(Sim.Engine.now (Common.engine geo))
                Sim.Span.Sk_stab ~origin:pn.meta.origin
                ~seq:(Sim.Time.to_us pn.meta.vc.(pn.meta.origin))
                ~aux:part ~site:dc;
            let _ =
              Kvstore.Store.put_if_newer d.stores.(part) ~cmp:compare_meta ~key:pn.key pn.value pn.meta
            in
            (match t.apply_series.(dc) with
            | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now (Common.engine geo))
            | None -> ());
            t.hooks.Common.on_visible ~dc ~key:pn.key ~origin_dc:pn.meta.origin
              ~origin_time:pn.origin_time ~value:pn.value)
          (List.sort (fun a b -> compare_meta a.meta b.meta) visible);
        let ready, waiting =
          List.partition (fun (dv, _) -> dominated ~except:dc dv ~by:d.gsv) d.waiters
        in
        d.waiters <- waiting;
        List.iter (fun (_, k) -> k ()) ready
  end

let cost t = (Common.params t.geo).Common.cost
let rmap t = (Common.params t.geo).Common.rmap

let client_dv t client =
  match Hashtbl.find_opt t.client_dv client with
  | Some dv -> dv
  | None ->
    let dv = Array.make (Common.n_dcs t.geo) Sim.Time.zero in
    Hashtbl.replace t.client_dv client dv;
    dv

let merge_dv dv vc = Array.iteri (fun j x -> if Sim.Time.compare x dv.(j) > 0 then dv.(j) <- x) vc

let attach t ~client ~home ~dc ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let d = t.dcs.(dc) in
          let dv = Array.copy (client_dv t client) in
          if dominated ~except:dc dv ~by:d.gsv then reply ()
          else d.waiters <- (dv, reply) :: d.waiters))
    ~k

let read t ~client ~home ~dc ~key ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let store = t.dcs.(dc).stores.(part) in
          let size =
            match Kvstore.Store.get store ~key with
            | Some (v, _) -> v.Kvstore.Value.size_bytes
            | None -> 0
          in
          let cost_us = Saturn.Cost_model.cure_read_us (cost t) ~n_dcs:(Common.n_dcs t.geo) ~size_bytes:size in
          Common.submit t.geo ~dc ~part ~cost_us (fun () -> reply (Kvstore.Store.get store ~key))))
    ~k:(fun result ->
      match result with
      | Some (v, m) ->
        merge_dv (client_dv t client) m.vc;
        k (Some v)
      | None -> k None)

let update t ~client ~home ~dc ~key ~value ~k =
  let n = Common.n_dcs t.geo in
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let cost_us =
            Saturn.Cost_model.cure_write_us (cost t) ~n_dcs:n ~size_bytes:value.Kvstore.Value.size_bytes
          in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              let dv = client_dv t client in
              let ts = Common.gen_ts t.geo ~dc ~part ~floor:dv.(dc) in
              let vc = Array.copy dv in
              vc.(dc) <- ts;
              let meta = { vc; origin = dc } in
              Kvstore.Store.put t.dcs.(dc).stores.(part) ~key value meta;
              let origin_time = Sim.Engine.now (Common.engine t.geo) in
              let size = value.Kvstore.Value.size_bytes + vector_wire_bytes n in
              let fanout = ref 0 in
              List.iter
                (fun dst ->
                  if dst <> dc then begin
                    incr fanout;
                    if Sim.Probe.active () then
                      Sim.Span.begin_ ~at:origin_time Sim.Span.Sk_bulk ~origin:dc
                        ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                    Common.ship t.geo ~src:dc ~dst ~size_bytes:size (fun () ->
                        let dd = t.dcs.(dst) in
                        if Sim.Time.compare ts dd.vv.(dc) > 0 then begin
                          dd.vv.(dc) <- ts;
                          probe_vec t ~dc:dst ~src:dc ts
                        end;
                        let apply_cost =
                          Saturn.Cost_model.cure_apply_us (cost t) ~n_dcs:n
                            ~size_bytes:value.Kvstore.Value.size_bytes
                        in
                        Common.submit t.geo ~dc:dst ~part:(Common.partition_of t.geo ~key)
                          ~cost_us:apply_cost (fun () ->
                            if Sim.Probe.active () then begin
                              let at = Sim.Engine.now (Common.engine t.geo) in
                              Sim.Span.end_ ~at Sim.Span.Sk_bulk ~origin:dc
                                ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                              (* GSV-domination hold *)
                              Sim.Span.begin_ ~at Sim.Span.Sk_stab ~origin:dc
                                ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dst
                            end;
                            dd.pending <- { key; value; meta; origin_time } :: dd.pending))
                  end)
                (Kvstore.Replica_map.replicas (rmap t) ~key);
              (match t.meta_bytes with
              | Some m -> Stats.Meta_bytes.record_op m ~bytes:(vector_wire_bytes n) ~fanout:!fanout
              | None -> ());
              reply meta)))
    ~k:(fun meta ->
      merge_dv (client_dv t client) meta.vc;
      k ())

let stop t = Common.stop t.geo

let store_value t ~dc ~key =
  let part = Common.partition_of t.geo ~key in
  Option.map fst (Kvstore.Store.get t.dcs.(dc).stores.(part) ~key)
