(** Cure (Akkoorath et al., ICDCS '16) — the vector-metadata baseline.

    Causal consistency with a vector clock carrying one entry per
    datacenter. A remote update from datacenter [k] becomes visible once the
    Global Stable Vector dominates its dependency vector on every entry
    other than [k], so the visibility lower bound is the direct latency from
    the originator — fresh data, but every operation pays O(N) metadata
    work and the stabilization rounds handle vectors too, which is what
    costs Cure its throughput. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> t

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option
