type params = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  partitions : int;
  frontends : int;
  cost : Saturn.Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  bulk_factor : float;
}

type hooks = {
  on_visible :
    dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit;
}

type dc_state = {
  servers : Sim.Server.t array;
  frontends : Sim.Server.t array;
  mutable next_frontend : int;
  gears : Saturn.Gear.t array;
}

type t = {
  engine : Sim.Engine.t;
  p : params;
  partitioning : Kvstore.Partitioning.t;
  dcs : dc_state array;
  bulk : Sim.Link.t array array;
  series : Stats.Series.t option;
  mutable is_stopped : bool;
}

let create ?series engine p =
  let n = Array.length p.dc_sites in
  let dcs =
    Array.init n (fun dc ->
        let clock = Sim.Clock.create engine in
        {
          servers = Array.init p.partitions (fun _ -> Sim.Server.create engine);
          frontends = Array.init p.frontends (fun _ -> Sim.Server.create engine);
          next_frontend = 0;
          gears = Array.init p.partitions (fun gear_id -> Saturn.Gear.create clock ~dc ~gear_id);
        })
  in
  let bulk =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let lat =
              if i = j then Sim.Time.zero
              else Sim.Topology.latency p.topo p.dc_sites.(i) p.dc_sites.(j)
            in
            let lat = Sim.Time.of_us (int_of_float (float_of_int (Sim.Time.to_us lat) *. p.bulk_factor)) in
            Sim.Link.create engine ~latency:lat ()))
  in
  let t =
    { engine; p; partitioning = Kvstore.Partitioning.create ~partitions:p.partitions; dcs; bulk;
      series; is_stopped = false }
  in
  (match series with
  | Some sr ->
    (* same series names as the Saturn deployment, so queue dynamics are
       directly comparable across systems *)
    let bulk_links = ref [] in
    for i = n - 1 downto 0 do
      for j = n - 1 downto 0 do
        if i <> j then bulk_links := bulk.(i).(j) :: !bulk_links
      done
    done;
    let bulk_links = !bulk_links in
    Stats.Series.sample sr "series.link.bulk.in_flight" (fun () ->
        float_of_int
          (List.fold_left (fun acc l -> acc + Sim.Link.in_flight_count l) 0 bulk_links));
    Sim.Engine.periodic engine ~every:(Stats.Series.tick_period sr)
      (fun () -> Stats.Series.tick sr ~now:(Sim.Engine.now engine))
      ~stop:(fun () -> t.is_stopped)
  | None -> ());
  t

let engine t = t.engine
let n_dcs t = Array.length t.dcs
let params t = t.p
let partition_of t ~key = Kvstore.Partitioning.responsible t.partitioning ~key

let via_frontend t ~dc k =
  let d = t.dcs.(dc) in
  let fe = d.frontends.(d.next_frontend) in
  d.next_frontend <- (d.next_frontend + 1) mod Array.length d.frontends;
  Sim.Server.submit fe ~cost:(Sim.Time.of_us t.p.cost.Saturn.Cost_model.frontend_us) k

let submit t ~dc ~part ~cost_us k =
  Sim.Server.submit t.dcs.(dc).servers.(part) ~cost:(Sim.Time.of_us cost_us) k

let ship t ~src ~dst ~size_bytes k = Sim.Link.send t.bulk.(src).(dst) ~size_bytes k

let bulk_link t ~src ~dst =
  if src = dst then invalid_arg "Common.bulk_link: src = dst";
  t.bulk.(src).(dst)

let gen_ts t ~dc ~part ~floor = Saturn.Gear.generate_ts t.dcs.(dc).gears.(part) ~client_ts:floor

let dc_floor t ~dc =
  Array.fold_left (fun acc g -> Sim.Time.min acc (Saturn.Gear.floor g)) Sim.Time.infinity t.dcs.(dc).gears

let round_trip t ~home ~dc work ~k =
  let dc_site = t.p.dc_sites.(dc) in
  let lat =
    if home = dc_site then Sim.Time.of_us t.p.cost.Saturn.Cost_model.intra_dc_us
    else Sim.Topology.latency t.p.topo home dc_site
  in
  Sim.Engine.schedule t.engine ~delay:lat (fun () ->
      work (fun result -> Sim.Engine.schedule t.engine ~delay:lat (fun () -> k result)))

let every t period f = Sim.Engine.periodic t.engine ~every:period f ~stop:(fun () -> t.is_stopped)
let stop t = t.is_stopped <- true
let stopped t = t.is_stopped
