type meta = Sim.Time.t * int (* (update ts, origin dc) *)

let compare_meta (ta, da) (tb, db) =
  match Sim.Time.compare ta tb with 0 -> Int.compare da db | c -> c

type pending = {
  key : int;
  value : Kvstore.Value.t;
  meta : meta;
  origin_time : Sim.Time.t;
}

type dc_state = {
  stores : (meta, int) Kvstore.Store.t array;
  seq : Sim.Server.t; (* the intra-DC sequencer: its own server, not storage *)
  mutable seq_up : bool;
  mutable announced : Sim.Time.t; (* own sequencer's last announced stable ts *)
  stable : Sim.Time.t array; (* stable.(src): src's announced stable ts, as received here *)
  mutable gst : Sim.Time.t;
  pending : pending Sim.Heap.t; (* applied payloads awaiting GST *)
  mutable waiters : (Sim.Time.t * (unit -> unit)) list; (* attach waits *)
}

type t = {
  geo : Common.t;
  hooks : Common.hooks;
  dcs : dc_state array;
  client_dt : (int, Sim.Time.t) Hashtbl.t; (* client dependency time *)
  apply_series : Stats.Series.counter option array; (* per dc *)
  meta_bytes : Stats.Meta_bytes.t option;
}

let meta_wire_bytes = 12 (* ts (8) + origin (4): one scalar, as in GentleRain *)
let announce_wire_bytes = 12 (* stable ts (8) + sequencer dc (4) *)
let failover_window = Sim.Time.of_ms 100 (* backup sequencer takeover *)

let probe_vec t ~dc ~src ts =
  if Sim.Probe.active () then
    Sim.Probe.emit
      ~at:(Sim.Engine.now (Common.engine t.geo))
      (Sim.Probe.Vec_advance { dc; src; ts = Sim.Time.to_us ts })

(* Recompute dc's GST from the announced stable times and flush every
   pending remote update it now covers. Unlike GentleRain this runs on
   announcement receipt, not in a storage-server stabilization round: the
   storage servers never pay for stabilization. *)
let advance t dc =
  let geo = t.geo in
  let n = Common.n_dcs geo in
  let d = t.dcs.(dc) in
  let gst = ref Sim.Time.infinity in
  for src = 0 to n - 1 do
    if src <> dc then gst := Sim.Time.min !gst d.stable.(src)
  done;
  if n > 1 && Sim.Time.compare !gst d.gst > 0 then begin
    d.gst <- !gst;
    if Sim.Probe.active () then
      Sim.Probe.emit
        ~at:(Sim.Engine.now (Common.engine geo))
        (Sim.Probe.Stab_round { dc; gst = Sim.Time.to_us d.gst })
  end;
  let rec flush () =
    match Sim.Heap.peek d.pending with
    | Some pn when Sim.Time.compare (fst pn.meta) d.gst <= 0 ->
      let pn = Sim.Heap.pop_exn d.pending in
      let part = Common.partition_of geo ~key:pn.key in
      if Sim.Probe.active () then
        Sim.Span.end_
          ~at:(Sim.Engine.now (Common.engine geo))
          Sim.Span.Sk_stab ~origin:(snd pn.meta)
          ~seq:(Sim.Time.to_us (fst pn.meta))
          ~aux:part ~site:dc;
      let _ =
        Kvstore.Store.put_if_newer d.stores.(part) ~cmp:compare_meta ~key:pn.key pn.value pn.meta
      in
      (match t.apply_series.(dc) with
      | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now (Common.engine geo))
      | None -> ());
      t.hooks.Common.on_visible ~dc ~key:pn.key ~origin_dc:(snd pn.meta)
        ~origin_time:pn.origin_time ~value:pn.value;
      flush ()
    | Some _ | None -> ()
  in
  flush ();
  let ready, still = List.partition (fun (ts, _) -> Sim.Time.compare ts d.gst <= 0) d.waiters in
  d.waiters <- still;
  List.iter (fun (_, k) -> k ()) ready

(* The sequencer announces its stable timestamp to every remote DC. The
   floor is read in the same engine callback that ships it, and every
   issued timestamp was shipped in the callback that issued it, so on the
   FIFO bulk link an announcement never overtakes a payload it covers. *)
let announce t dc =
  let geo = t.geo in
  let n = Common.n_dcs geo in
  let d = t.dcs.(dc) in
  let floor = Common.dc_floor geo ~dc in
  if Sim.Time.compare floor d.announced > 0 then d.announced <- floor;
  let stable = d.announced in
  for dst = 0 to n - 1 do
    if dst <> dc then begin
      (match t.meta_bytes with
      | Some m -> Stats.Meta_bytes.record_stabilization m ~bytes:announce_wire_bytes
      | None -> ());
      Common.ship geo ~src:dc ~dst ~size_bytes:announce_wire_bytes (fun () ->
          let dd = t.dcs.(dst) in
          if Sim.Time.compare stable dd.stable.(dc) > 0 then begin
            dd.stable.(dc) <- stable;
            probe_vec t ~dc:dst ~src:dc stable
          end;
          advance t dst)
    end
  done

let create ?series ?meta engine p hooks =
  let geo = Common.create ?series engine p in
  let n = Common.n_dcs geo in
  let dcs =
    Array.init n (fun _ ->
        {
          stores = Array.init p.Common.partitions (fun _ -> Kvstore.Store.create ());
          seq = Sim.Server.create engine;
          seq_up = true;
          announced = Sim.Time.zero;
          stable = Array.make n Sim.Time.zero;
          gst = Sim.Time.zero;
          pending = Sim.Heap.create ~cmp:(fun a b -> compare_meta a.meta b.meta) ();
          waiters = [];
        })
  in
  let apply_series =
    Array.init n (fun dc ->
        Option.map
          (fun sr -> Stats.Series.counter sr (Printf.sprintf "series.apply.dc%d" dc))
          series)
  in
  let t = { geo; hooks; dcs; client_dt = Hashtbl.create 256; apply_series; meta_bytes = meta } in
  (match series with
  | Some sr ->
    for dc = 0 to n - 1 do
      Stats.Series.sample sr
        (Printf.sprintf "series.pending.dc%d" dc)
        (fun () -> float_of_int (Sim.Heap.size t.dcs.(dc).pending))
    done
  | None -> ());
  let cost = p.Common.cost in
  (* the whole stabilization mechanism lives on the sequencer: every period
     it pays the aggregation cost on its own server and announces. No
     heartbeats — announcements carry the liveness floor. *)
  for dc = 0 to n - 1 do
    Common.every geo cost.Saturn.Cost_model.stabilization_period (fun () ->
        let d = t.dcs.(dc) in
        if d.seq_up then
          Sim.Server.submit d.seq
            ~cost:(Sim.Time.of_us (Saturn.Cost_model.eunomia_stab_us cost))
            (fun () -> if t.dcs.(dc).seq_up && not (Common.stopped geo) then announce t dc))
  done;
  t

let fabric t = t.geo
let sequencer_down t ~dc = not t.dcs.(dc).seq_up

let sequencer_crash t ~dc =
  let d = t.dcs.(dc) in
  if d.seq_up then begin
    d.seq_up <- false;
    (* the backup sequencer takes over after the failover window; announced
       state is durable (it is derived from the gear floors), so the backup
       resumes from the current floor at its next round *)
    Sim.Engine.schedule (Common.engine t.geo) ~delay:failover_window (fun () ->
        if not (Common.stopped t.geo) then d.seq_up <- true)
  end

let cost t = (Common.params t.geo).Common.cost
let rmap t = (Common.params t.geo).Common.rmap
let client_dt t client = Option.value ~default:Sim.Time.zero (Hashtbl.find_opt t.client_dt client)

let bump_dt t client ts =
  let cur = client_dt t client in
  if Sim.Time.compare ts cur > 0 then Hashtbl.replace t.client_dt client ts

let attach t ~client ~home ~dc ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let d = t.dcs.(dc) in
          let dt = client_dt t client in
          if Sim.Time.compare dt d.gst <= 0 then reply ()
          else d.waiters <- (dt, reply) :: d.waiters))
    ~k

let read t ~client ~home ~dc ~key ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let store = t.dcs.(dc).stores.(part) in
          let size =
            match Kvstore.Store.get store ~key with
            | Some (v, _) -> v.Kvstore.Value.size_bytes
            | None -> 0
          in
          let cost_us = Saturn.Cost_model.eunomia_read_us (cost t) ~size_bytes:size in
          Common.submit t.geo ~dc ~part ~cost_us (fun () -> reply (Kvstore.Store.get store ~key))))
    ~k:(fun result ->
      match result with
      | Some (v, (ts, _)) ->
        bump_dt t client ts;
        k (Some v)
      | None -> k None)

let update t ~client ~home ~dc ~key ~value ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let cost_us =
            Saturn.Cost_model.eunomia_write_us (cost t) ~size_bytes:value.Kvstore.Value.size_bytes
          in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              let ts = Common.gen_ts t.geo ~dc ~part ~floor:(client_dt t client) in
              let meta = (ts, dc) in
              Kvstore.Store.put t.dcs.(dc).stores.(part) ~key value meta;
              let origin_time = Sim.Engine.now (Common.engine t.geo) in
              (* asynchronous sequencer notification: load on the sequencer,
                 zero extra latency or cost on the client path *)
              Sim.Server.submit t.dcs.(dc).seq
                ~cost:(Sim.Time.of_us (Saturn.Cost_model.eunomia_seq_us (cost t)))
                (fun () -> ());
              let size = value.Kvstore.Value.size_bytes + meta_wire_bytes in
              let fanout = ref 0 in
              List.iter
                (fun dst ->
                  if dst <> dc then begin
                    incr fanout;
                    if Sim.Probe.active () then
                      Sim.Span.begin_ ~at:origin_time Sim.Span.Sk_bulk ~origin:dc
                        ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                    Common.ship t.geo ~src:dc ~dst ~size_bytes:size (fun () ->
                        let dd = t.dcs.(dst) in
                        let apply_cost =
                          Saturn.Cost_model.eunomia_apply_us (cost t)
                            ~size_bytes:value.Kvstore.Value.size_bytes
                        in
                        Common.submit t.geo ~dc:dst ~part:(Common.partition_of t.geo ~key)
                          ~cost_us:apply_cost (fun () ->
                            if Sim.Probe.active () then begin
                              let at = Sim.Engine.now (Common.engine t.geo) in
                              Sim.Span.end_ ~at Sim.Span.Sk_bulk ~origin:dc
                                ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                              (* stabilization hold: until the remote
                                 sequencers' announcements cover ts *)
                              Sim.Span.begin_ ~at Sim.Span.Sk_stab ~origin:dc
                                ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dst
                            end;
                            Sim.Heap.push dd.pending { key; value; meta; origin_time };
                            (* the covering announcement may already have
                               arrived while this payload sat in the apply
                               queue — flush immediately rather than waiting
                               a full period for the next one *)
                            advance t dst))
                  end)
                (Kvstore.Replica_map.replicas (rmap t) ~key);
              (match t.meta_bytes with
              | Some m -> Stats.Meta_bytes.record_op m ~bytes:meta_wire_bytes ~fanout:!fanout
              | None -> ());
              reply ts)))
    ~k:(fun ts ->
      bump_dt t client ts;
      k ())

let stop t = Common.stop t.geo

let store_value t ~dc ~key =
  let part = Common.partition_of t.geo ~key in
  Option.map fst (Kvstore.Store.get t.dcs.(dc).stores.(part) ~key)
