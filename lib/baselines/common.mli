(** Shared data-plane fabric for the baseline protocols.

    Eventual consistency, GentleRain and Cure all share the same substrate:
    partitioned storage servers per datacenter, frontends, bulk links over
    the latency matrix, per-partition monotonic timestamp sources and
    periodic heartbeats. They differ only in the metadata attached to
    versions and in when remote updates become visible; those parts live in
    the per-protocol modules. *)

type params = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  partitions : int;
  frontends : int;
  cost : Saturn.Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  bulk_factor : float;  (** bulk-path inflation; 1.0 = shortest path *)
}

type hooks = {
  on_visible :
    dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit;
}

type t

val create : ?series:Stats.Series.t -> Sim.Engine.t -> params -> t
(** [series], when given, gains a [series.link.bulk.in_flight] gauge over
    the fabric's links — the same name the Saturn deployment uses, so
    Saturn-vs-baseline queue dynamics line up — and the fabric drives the
    series sampling tick until [stop]. Per-protocol modules add their own
    apply/pending series via {!series}. *)

val engine : t -> Sim.Engine.t

val n_dcs : t -> int
val params : t -> params
val partition_of : t -> key:int -> int

val via_frontend : t -> dc:int -> (unit -> unit) -> unit
(** Consumes frontend service time at [dc] (round-robin). *)

val submit : t -> dc:int -> part:int -> cost_us:int -> (unit -> unit) -> unit
(** Consumes storage-server time on partition [part] of [dc]. *)

val ship : t -> src:int -> dst:int -> size_bytes:int -> (unit -> unit) -> unit
(** Bulk-data transfer; the continuation runs at arrival. *)

val bulk_link : t -> src:int -> dst:int -> Sim.Link.t
(** The directed bulk link [src -> dst], for fault injection.
    @raise Invalid_argument when [src = dst]. *)

val gen_ts : t -> dc:int -> part:int -> floor:Sim.Time.t -> Sim.Time.t
(** Monotonic per-gear timestamp strictly greater than [floor]. *)

val dc_floor : t -> dc:int -> Sim.Time.t
(** Heartbeat promise of [dc] (min over its gears). *)

val round_trip :
  t -> home:Sim.Topology.site -> dc:int -> (('r -> unit) -> unit) -> k:('r -> unit) -> unit
(** Client request/response latency wrapper: home site → datacenter and
    back. *)

val every : t -> Sim.Time.t -> (unit -> unit) -> unit
(** Periodic task tied to the fabric's lifetime. *)

val stop : t -> unit
val stopped : t -> bool
