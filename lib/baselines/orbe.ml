type meta = { ts : Sim.Time.t; origin : int } (* LWW order *)

let compare_meta a b =
  match Sim.Time.compare a.ts b.ts with 0 -> Int.compare a.origin b.origin | c -> c

(* dependency matrix: sparse map (dc, partition) -> required applied count *)
module Dm = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type pending = {
  key : int;
  value : Kvstore.Value.t;
  meta : meta;
  dm : int Dm.t;
  src_part : int;
  seq : int; (* sequence number within (origin, partition) *)
  origin_time : Sim.Time.t;
}

type dc_state = {
  stores : (meta, int) Kvstore.Store.t array;
  applied : int array array; (* [src dc].[partition] -> updates applied locally *)
  mutable pending : pending list;
}

type t = {
  geo : Common.t;
  hooks : Common.hooks;
  dcs : dc_state array;
  seq : int array array; (* [dc].[partition] -> updates issued *)
  contexts : (int, int Dm.t) Hashtbl.t; (* client -> dependency matrix *)
  apply_series : Stats.Series.counter option array; (* per dc *)
  meta_bytes : Stats.Meta_bytes.t option;
  mutable entries_shipped : int;
  mutable updates_shipped : int;
}

let create ?series ?meta engine p hooks =
  let geo = Common.create ?series engine p in
  let n = Common.n_dcs geo in
  let dcs =
    Array.init n (fun _ ->
        {
          stores = Array.init p.Common.partitions (fun _ -> Kvstore.Store.create ());
          applied = Array.init n (fun _ -> Array.make p.Common.partitions 0);
          pending = [];
        })
  in
  let apply_series =
    Array.init n (fun dc ->
        Option.map
          (fun sr -> Stats.Series.counter sr (Printf.sprintf "series.apply.dc%d" dc))
          series)
  in
  let t =
    {
      geo;
      hooks;
      dcs;
      seq = Array.init n (fun _ -> Array.make p.Common.partitions 0);
      contexts = Hashtbl.create 256;
      apply_series;
      meta_bytes = meta;
      entries_shipped = 0;
      updates_shipped = 0;
    }
  in
  (match series with
  | Some sr ->
    for dc = 0 to n - 1 do
      Stats.Series.sample sr
        (Printf.sprintf "series.pending.dc%d" dc)
        (fun () -> float_of_int (List.length t.dcs.(dc).pending))
    done
  | None -> ());
  t

let cost t = (Common.params t.geo).Common.cost
let rmap t = (Common.params t.geo).Common.rmap

let context t client = Option.value ~default:Dm.empty (Hashtbl.find_opt t.contexts client)

let merge_entry dm key count =
  Dm.update key (function Some c when c >= count -> Some c | Some _ | None -> Some count) dm

let satisfied t ~dc dm =
  Dm.for_all (fun (j, part) need -> t.dcs.(dc).applied.(j).(part) >= need) dm

(* sequence numbers are per (origin, partition): updates from one partition
   must be applied in order for the applied counters to mean "prefix" *)
let in_order t ~dc pn = t.dcs.(dc).applied.(pn.meta.origin).(pn.src_part) = pn.seq - 1

let applicable t ~dc pn = in_order t ~dc pn && satisfied t ~dc pn.dm

let rec drain t ~dc =
  let d = t.dcs.(dc) in
  let ready, still = List.partition (fun pn -> applicable t ~dc pn) d.pending in
  d.pending <- still;
  if ready <> [] then begin
    List.iter (install t ~dc) ready;
    drain t ~dc
  end

and install t ~dc pn =
  let part = Common.partition_of t.geo ~key:pn.key in
  let _ =
    Kvstore.Store.put_if_newer t.dcs.(dc).stores.(part) ~cmp:compare_meta ~key:pn.key pn.value pn.meta
  in
  let applied = t.dcs.(dc).applied.(pn.meta.origin) in
  applied.(pn.src_part) <- pn.seq;
  (match t.apply_series.(dc) with
  | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now (Common.engine t.geo))
  | None -> ());
  t.hooks.Common.on_visible ~dc ~key:pn.key ~origin_dc:pn.meta.origin ~origin_time:pn.origin_time
    ~value:pn.value

let apply_remote t ~dc pn =
  if applicable t ~dc pn then begin
    install t ~dc pn;
    drain t ~dc
  end
  else t.dcs.(dc).pending <- pn :: t.dcs.(dc).pending

let attach t ~client:_ ~home ~dc ~k =
  Common.round_trip t.geo ~home ~dc (fun reply -> Common.via_frontend t.geo ~dc (fun () -> reply ())) ~k

let read t ~client ~home ~dc ~key ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let store = t.dcs.(dc).stores.(part) in
          let size =
            match Kvstore.Store.get store ~key with
            | Some (v, _) -> v.Kvstore.Value.size_bytes
            | None -> 0
          in
          let cost_us = Saturn.Cost_model.eventual_read_us (cost t) ~size_bytes:size in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              (* the read's dependency is summarized by the local applied
                 counters for the version's (origin, partition) *)
              let result = Kvstore.Store.get store ~key in
              let dep =
                Option.map
                  (fun (_, m) -> ((m.origin, part), t.dcs.(dc).applied.(m.origin).(part)))
                  result
              in
              reply (result, dep))))
    ~k:(fun (result, dep) ->
      (match dep with
      | Some ((j, part), count) when count > 0 ->
        Hashtbl.replace t.contexts client (merge_entry (context t client) (j, part) count)
      | Some _ | None -> ());
      k (Option.map fst result))

let update t ~client ~home ~dc ~key ~value ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let dm = context t client in
          let entry_cost = Dm.cardinal dm * (cost t).Saturn.Cost_model.scalar_meta_us in
          let cost_us =
            Saturn.Cost_model.eventual_write_us (cost t) ~size_bytes:value.Kvstore.Value.size_bytes
            + entry_cost
          in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              let ts = Common.gen_ts t.geo ~dc ~part ~floor:Sim.Time.zero in
              let meta = { ts; origin = dc } in
              t.seq.(dc).(part) <- t.seq.(dc).(part) + 1;
              let seq = t.seq.(dc).(part) in
              Kvstore.Store.put t.dcs.(dc).stores.(part) ~key value meta;
              t.dcs.(dc).applied.(dc).(part) <- seq;
              let origin_time = Sim.Engine.now (Common.engine t.geo) in
              t.updates_shipped <- t.updates_shipped + 1;
              t.entries_shipped <- t.entries_shipped + Dm.cardinal dm;
              (* wire layout: 16-byte LWW version header (excluded from
                 causal accounting, as everywhere) + 16 bytes of sequencing
                 coordinates and matrix framing (src partition, sequence
                 number, entry count — the prefix-order machinery) + 12 per
                 (dc, partition) matrix entry *)
              let causal_bytes = 16 + (12 * Dm.cardinal dm) in
              let size = value.Kvstore.Value.size_bytes + 16 + causal_bytes in
              let fanout = ref 0 in
              List.iter
                (fun dst ->
                  if dst <> dc then begin
                    incr fanout;
                    Common.ship t.geo ~src:dc ~dst ~size_bytes:size (fun () ->
                        let apply_cost =
                          Saturn.Cost_model.eventual_apply_us (cost t)
                            ~size_bytes:value.Kvstore.Value.size_bytes
                          + entry_cost
                        in
                        Common.submit t.geo ~dc:dst ~part:(Common.partition_of t.geo ~key)
                          ~cost_us:apply_cost (fun () ->
                            apply_remote t ~dc:dst
                              { key; value; meta; dm; src_part = part; seq; origin_time }))
                  end)
                (Kvstore.Replica_map.replicas (rmap t) ~key);
              (match t.meta_bytes with
              | Some m -> Stats.Meta_bytes.record_op m ~bytes:causal_bytes ~fanout:!fanout
              | None -> ());
              (* transitivity: the new version subsumes the whole context *)
              Hashtbl.replace t.contexts client (Dm.singleton (dc, part) seq);
              reply ())))
    ~k

let stop t = Common.stop t.geo

let store_value t ~dc ~key =
  let part = Common.partition_of t.geo ~key in
  Option.map fst (Kvstore.Store.get t.dcs.(dc).stores.(part) ~key)

let mean_matrix_entries t =
  if t.updates_shipped = 0 then 0.
  else float_of_int t.entries_shipped /. float_of_int t.updates_shipped

let blocked_updates t ~dc = List.length t.dcs.(dc).pending
