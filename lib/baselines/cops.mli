(** COPS-style explicit dependency checking (Lloyd et al., SOSP '11).

    Clients track explicit dependencies (key, version) and updates carry
    them; a replica applies a remote update only once every dependency it
    can check locally is satisfied. The module exists to reproduce the
    paper's §7.3.1 argument: under full replication the client's context
    can be pruned to the last write (one dependency), but under partial
    geo-replication the transitivity-based pruning is unsound — a
    dependency on an item the receiving datacenter does not replicate can
    never be checked there — so dependency lists keep growing. The
    [prune_on_write] knob selects the two regimes and
    {!mean_dependency_size} exposes the measured metadata growth. *)

type t

val create :
  ?series:Stats.Series.t -> ?meta:Stats.Meta_bytes.t -> Sim.Engine.t -> Common.params ->
  Common.hooks -> prune_on_write:bool -> t

val attach : t -> client:int -> home:Sim.Topology.site -> dc:int -> k:(unit -> unit) -> unit
val read :
  t -> client:int -> home:Sim.Topology.site -> dc:int -> key:int -> k:(Kvstore.Value.t option -> unit) -> unit
val update :
  t ->
  client:int ->
  home:Sim.Topology.site ->
  dc:int ->
  key:int ->
  value:Kvstore.Value.t ->
  k:(unit -> unit) ->
  unit
val stop : t -> unit
val store_value : t -> dc:int -> key:int -> Kvstore.Value.t option

val mean_dependency_size : t -> float
(** Mean number of dependencies attached to shipped updates. *)

val max_dependency_size : t -> int
