type meta = Sim.Time.t * int (* (write ts, origin dc): last-writer-wins order *)

let compare_meta (ta, da) (tb, db) =
  match Sim.Time.compare ta tb with 0 -> Int.compare da db | c -> c

type t = {
  geo : Common.t;
  hooks : Common.hooks;
  stores : (meta, int) Kvstore.Store.t array array; (* [dc].[partition] *)
  apply_series : Stats.Series.counter option array; (* per dc *)
  meta_bytes : Stats.Meta_bytes.t option;
}

let create ?series ?meta engine p hooks =
  let geo = Common.create ?series engine p in
  let stores =
    Array.init (Common.n_dcs geo) (fun _ ->
        Array.init p.Common.partitions (fun _ -> Kvstore.Store.create ()))
  in
  let apply_series =
    Array.init (Common.n_dcs geo) (fun dc ->
        Option.map
          (fun sr -> Stats.Series.counter sr (Printf.sprintf "series.apply.dc%d" dc))
          series)
  in
  { geo; hooks; stores; apply_series; meta_bytes = meta }

let fabric t = t.geo
let cost t = (Common.params t.geo).Common.cost
let rmap t = (Common.params t.geo).Common.rmap

let attach t ~client:_ ~home ~dc ~k =
  Common.round_trip t.geo ~home ~dc (fun reply -> Common.via_frontend t.geo ~dc (fun () -> reply ())) ~k

let read t ~client:_ ~home ~dc ~key ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let store = t.stores.(dc).(part) in
          let size =
            match Kvstore.Store.get store ~key with
            | Some (v, _) -> v.Kvstore.Value.size_bytes
            | None -> 0
          in
          let cost_us = Saturn.Cost_model.eventual_read_us (cost t) ~size_bytes:size in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              reply (Option.map fst (Kvstore.Store.get store ~key)))))
    ~k

let apply_remote t ~dc ~key ~value ~meta ~origin_time =
  let part = Common.partition_of t.geo ~key in
  let cost_us = Saturn.Cost_model.eventual_apply_us (cost t) ~size_bytes:value.Kvstore.Value.size_bytes in
  Common.submit t.geo ~dc ~part ~cost_us (fun () ->
      if Sim.Probe.active () then
        Sim.Span.end_
          ~at:(Sim.Engine.now (Common.engine t.geo))
          Sim.Span.Sk_bulk ~origin:(snd meta)
          ~seq:(Sim.Time.to_us (fst meta))
          ~aux:part ~site:(snd meta) ~peer:dc;
      let _ = Kvstore.Store.put_if_newer t.stores.(dc).(part) ~cmp:compare_meta ~key value meta in
      (match t.apply_series.(dc) with
      | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now (Common.engine t.geo))
      | None -> ());
      t.hooks.Common.on_visible ~dc ~key ~origin_dc:(snd meta) ~origin_time ~value)

let update t ~client:_ ~home ~dc ~key ~value ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let cost_us =
            Saturn.Cost_model.eventual_write_us (cost t) ~size_bytes:value.Kvstore.Value.size_bytes
          in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              let ts = Common.gen_ts t.geo ~dc ~part ~floor:Sim.Time.zero in
              let meta = (ts, dc) in
              Kvstore.Store.put t.stores.(dc).(part) ~key value meta;
              let origin_time = Sim.Engine.now (Common.engine t.geo) in
              (* the 16 bytes are the LWW (ts, origin) storage-version
                 header every protocol ships; they are versioning, not
                 causal metadata, so Meta_bytes records this op at 0 *)
              let size = value.Kvstore.Value.size_bytes + 16 in
              let fanout = ref 0 in
              List.iter
                (fun dst ->
                  if dst <> dc then begin
                    incr fanout;
                    if Sim.Probe.active () then
                      Sim.Span.begin_ ~at:origin_time Sim.Span.Sk_bulk ~origin:dc
                        ~seq:(Sim.Time.to_us ts) ~aux:part ~site:dc ~peer:dst;
                    Common.ship t.geo ~src:dc ~dst ~size_bytes:size (fun () ->
                        apply_remote t ~dc:dst ~key ~value ~meta ~origin_time)
                  end)
                (Kvstore.Replica_map.replicas (rmap t) ~key);
              (match t.meta_bytes with
              | Some m -> Stats.Meta_bytes.record_op m ~bytes:0 ~fanout:!fanout
              | None -> ());
              reply ())))
    ~k

let stop t = Common.stop t.geo

let store_value t ~dc ~key =
  let part = Common.partition_of t.geo ~key in
  Option.map fst (Kvstore.Store.get t.stores.(dc).(part) ~key)
