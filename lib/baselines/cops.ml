type version = Sim.Time.t * int (* (ts, origin dc) *)

let compare_version (ta, da) (tb, db) =
  match Sim.Time.compare ta tb with 0 -> Int.compare da db | c -> c

type pending = {
  key : int;
  value : Kvstore.Value.t;
  version : version;
  deps : (int * version) list;
  origin_time : Sim.Time.t;
}

type dc_state = {
  stores : (version, int) Kvstore.Store.t array;
  mutable pending : pending list;
}

type t = {
  geo : Common.t;
  hooks : Common.hooks;
  prune_on_write : bool;
  dcs : dc_state array;
  (* client context: explicit dependency set, one version per key *)
  contexts : (int, (int, version) Hashtbl.t) Hashtbl.t;
  apply_series : Stats.Series.counter option array; (* per dc *)
  meta_bytes : Stats.Meta_bytes.t option;
  mutable deps_shipped : int;
  mutable updates_shipped : int;
  mutable max_deps : int;
}

let create ?series ?meta engine p hooks ~prune_on_write =
  let geo = Common.create ?series engine p in
  let dcs =
    Array.init (Common.n_dcs geo) (fun _ ->
        { stores = Array.init p.Common.partitions (fun _ -> Kvstore.Store.create ()); pending = [] })
  in
  let apply_series =
    Array.init (Common.n_dcs geo) (fun dc ->
        Option.map
          (fun sr -> Stats.Series.counter sr (Printf.sprintf "series.apply.dc%d" dc))
          series)
  in
  let t =
    { geo; hooks; prune_on_write; dcs; contexts = Hashtbl.create 256; apply_series;
      meta_bytes = meta; deps_shipped = 0; updates_shipped = 0; max_deps = 0 }
  in
  (match series with
  | Some sr ->
    for dc = 0 to Common.n_dcs geo - 1 do
      Stats.Series.sample sr
        (Printf.sprintf "series.pending.dc%d" dc)
        (fun () -> float_of_int (List.length t.dcs.(dc).pending))
    done
  | None -> ());
  t

let cost t = (Common.params t.geo).Common.cost
let rmap t = (Common.params t.geo).Common.rmap

let context t client =
  match Hashtbl.find_opt t.contexts client with
  | Some ctx -> ctx
  | None ->
    let ctx = Hashtbl.create 16 in
    Hashtbl.replace t.contexts client ctx;
    ctx

let add_dep ctx key version =
  match Hashtbl.find_opt ctx key with
  | Some existing when compare_version existing version >= 0 -> ()
  | Some _ | None -> Hashtbl.replace ctx key version

(* a dependency is satisfied when the local replica holds that version or a
   newer one; dependencies on keys this datacenter does not replicate are
   uncheckable (the paper's partial-replication problem) and are skipped *)
let dep_satisfied t ~dc (key, version) =
  if not (Kvstore.Replica_map.replicates (rmap t) ~dc ~key) then true
  else begin
    let part = Common.partition_of t.geo ~key in
    match Kvstore.Store.get t.dcs.(dc).stores.(part) ~key with
    | Some (_, v) -> compare_version v version >= 0
    | None -> false
  end

let rec drain_pending t ~dc =
  let d = t.dcs.(dc) in
  let ready, still =
    List.partition (fun pn -> List.for_all (dep_satisfied t ~dc) pn.deps) d.pending
  in
  d.pending <- still;
  if ready <> [] then begin
    List.iter (fun pn -> install t ~dc pn) ready;
    drain_pending t ~dc
  end

and install t ~dc pn =
  let part = Common.partition_of t.geo ~key:pn.key in
  let _ =
    Kvstore.Store.put_if_newer t.dcs.(dc).stores.(part) ~cmp:compare_version ~key:pn.key pn.value
      pn.version
  in
  (match t.apply_series.(dc) with
  | Some c -> Stats.Series.incr c ~now:(Sim.Engine.now (Common.engine t.geo))
  | None -> ());
  t.hooks.Common.on_visible ~dc ~key:pn.key ~origin_dc:(snd pn.version) ~origin_time:pn.origin_time
    ~value:pn.value

let apply_remote t ~dc pn =
  if List.for_all (dep_satisfied t ~dc) pn.deps then begin
    install t ~dc pn;
    drain_pending t ~dc
  end
  else t.dcs.(dc).pending <- pn :: t.dcs.(dc).pending

let attach t ~client:_ ~home ~dc ~k =
  Common.round_trip t.geo ~home ~dc (fun reply -> Common.via_frontend t.geo ~dc (fun () -> reply ())) ~k

let read t ~client ~home ~dc ~key ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let part = Common.partition_of t.geo ~key in
          let store = t.dcs.(dc).stores.(part) in
          let size =
            match Kvstore.Store.get store ~key with
            | Some (v, _) -> v.Kvstore.Value.size_bytes
            | None -> 0
          in
          let cost_us = Saturn.Cost_model.eventual_read_us (cost t) ~size_bytes:size in
          Common.submit t.geo ~dc ~part ~cost_us (fun () -> reply (Kvstore.Store.get store ~key))))
    ~k:(fun result ->
      match result with
      | Some (v, version) ->
        add_dep (context t client) key version;
        k (Some v)
      | None -> k None)

let update t ~client ~home ~dc ~key ~value ~k =
  Common.round_trip t.geo ~home ~dc
    (fun reply ->
      Common.via_frontend t.geo ~dc (fun () ->
          let ctx = context t client in
          let deps = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx []) in
          let part = Common.partition_of t.geo ~key in
          let dep_cost = List.length deps * (cost t).Saturn.Cost_model.scalar_meta_us in
          let cost_us =
            Saturn.Cost_model.eventual_write_us (cost t) ~size_bytes:value.Kvstore.Value.size_bytes
            + dep_cost
          in
          Common.submit t.geo ~dc ~part ~cost_us (fun () ->
              let ts = Common.gen_ts t.geo ~dc ~part ~floor:Sim.Time.zero in
              let version = (ts, dc) in
              Kvstore.Store.put t.dcs.(dc).stores.(part) ~key value version;
              let origin_time = Sim.Engine.now (Common.engine t.geo) in
              let n_deps = List.length deps in
              t.deps_shipped <- t.deps_shipped + n_deps;
              t.updates_shipped <- t.updates_shipped + 1;
              t.max_deps <- max t.max_deps n_deps;
              (* 16 bytes of version header (excluded from causal-metadata
                 accounting, as everywhere) + 16 per (key, version) dep *)
              let size = value.Kvstore.Value.size_bytes + (16 * (1 + n_deps)) in
              let fanout = ref 0 in
              List.iter
                (fun dst ->
                  if dst <> dc then begin
                    incr fanout;
                    Common.ship t.geo ~src:dc ~dst ~size_bytes:size (fun () ->
                        let apply_cost =
                          Saturn.Cost_model.eventual_apply_us (cost t)
                            ~size_bytes:value.Kvstore.Value.size_bytes
                          + dep_cost
                        in
                        Common.submit t.geo ~dc:dst ~part:(Common.partition_of t.geo ~key)
                          ~cost_us:apply_cost (fun () ->
                            apply_remote t ~dc:dst { key; value; version; deps; origin_time }))
                  end)
                (Kvstore.Replica_map.replicas (rmap t) ~key);
              (match t.meta_bytes with
              | Some m -> Stats.Meta_bytes.record_op m ~bytes:(16 * n_deps) ~fanout:!fanout
              | None -> ());
              (* transitivity-based pruning: sound only under full
                 replication *)
              if t.prune_on_write then Hashtbl.reset ctx;
              add_dep ctx key version;
              reply version)))
    ~k:(fun version ->
      add_dep (context t client) key version;
      k ())

let stop t = Common.stop t.geo

let store_value t ~dc ~key =
  let part = Common.partition_of t.geo ~key in
  Option.map fst (Kvstore.Store.get t.dcs.(dc).stores.(part) ~key)

let mean_dependency_size t =
  if t.updates_shipped = 0 then 0.
  else float_of_int t.deps_shipped /. float_of_int t.updates_shipped

let max_dependency_size t = t.max_deps
