type sub = { name : string; summary : string }

let subs =
  [
    { name = "matrix"; summary = "print the inter-region latency matrix (the paper's Table 1)" };
    { name = "plan"; summary = "plan a serializer tree for a set of regions (Algorithm 3)" };
    { name = "bench"; summary = "run a comparative synthetic workload (the Figure 5/7 harness)" };
    {
      name = "bench-check";
      summary = "gate a fresh engine-bench JSON against the checked-in baseline";
    };
    { name = "social"; summary = "run the Facebook-like benchmark (§7.4)" };
    { name = "trace"; summary = "record / replay operation traces, or export the smoke span trace" };
    { name = "obs"; summary = "observability smoke run: deterministic trace + counter gate" };
    { name = "faults"; summary = "fault-injection scenario matrix with invariant checking" };
    { name = "series"; summary = "windowed telemetry timelines (queue depths, recovery points)" };
    {
      name = "blame";
      summary = "per-journey optimality-gap attribution, culprit ranking, top-K critical paths";
    };
    { name = "diff"; summary = "localize the first divergence between two runs' artifacts" };
  ]

let names = List.map (fun s -> s.name) subs

let summary name =
  match List.find_opt (fun s -> String.equal s.name name) subs with
  | Some s -> s.summary
  | None -> invalid_arg ("Cli_spec.summary: unknown subcommand " ^ name)

let usage () =
  let w = List.fold_left (fun acc s -> Stdlib.max acc (String.length s.name)) 0 subs in
  String.concat "\n"
    (List.map (fun s -> Printf.sprintf "  %-*s  %s" w s.name s.summary) subs)
