(** Per-label journey reconstruction and visibility-latency decomposition.

    Replays a kept probe trace and rebuilds, for every label the metadata
    service forwarded, the end-to-end path to each destination it was
    applied at — then attributes every simulated microsecond of its
    visibility latency to one of the {!segment}s below. The segments of a
    stream-ordered journey tile its latency exactly: consecutive spans
    share boundary instants, so the sum telescopes to
    [apply time - update time]. {!analyze} verifies that invariant per
    journey and reports violations in [mismatches] — CI fails on any.

    Labels applied through the timestamp fallback are counted in
    [fallback_applied] but not decomposed (the fallback path does not ride
    the tree, so tree segments do not tile its latency); labels still in
    flight when the run ends — or never applied at a destination, like
    migration markers — count as [incomplete].

    Span pairing is keyed two ways (see {!Sim.Probe.span}): tree-side
    spans by the service uid [(origin, oseq)], edge spans by the label
    identity [(origin dc, ts, gear)]. The [Label_forward] event carries
    both and is the join point. *)

(** One leg of a label's trip, in lifecycle order (paper §4): held at the
    origin sink for gear stability; attach channel into the home
    serializer; chain replication at each serializer; artificial delay δ
    before a hop or an egress; serializer-to-serializer hop; egress toward
    the destination; and the destination proxy's ordering wait. *)
type segment =
  | Sink_hold
  | Attach
  | Chain
  | Delay_hop
  | Hop
  | Delay_egress
  | Egress
  | Proxy_order

val segment_name : segment -> string

type journey = {
  origin : int;  (** origin datacenter *)
  oseq : int;  (** per-origin forward sequence (the fault checker's key) *)
  dst : int;  (** destination datacenter *)
  visibility_us : int;  (** proxy apply instant − sink offer instant *)
  total_us : int;  (** sum over [parts] — equals [visibility_us] or it's a mismatch *)
  parts : (segment * int) list;  (** per-leg µs, path order; [Chain]/[Hop] repeat per serializer *)
  path : int list;  (** serializer ids visited, attach point first — the
                        identity [Blame] needs to pin overhead on edges *)
}

type seg_stat = {
  segment : segment;
  journeys : int;  (** journeys that include the segment *)
  total_us : int;
  p50_ms : float;  (** per-journey segment time percentiles *)
  p99_ms : float;
}

type report = {
  journeys : journey list;  (** complete stream-ordered journeys, (origin, oseq, dst)-sorted *)
  fallback_applied : int;
  incomplete : int;
  mismatches : string list;  (** tiling violations: must be empty on a healthy trace *)
  per_segment : seg_stat list;  (** one entry per {!segments} element, in order *)
}

val analyze : Sim.Probe.t -> report
(** @raise Invalid_argument if the probe was created with [~keep:false]
    (journeys need the buffered event stream). *)

val spans : Sim.Probe.t -> (Sim.Probe.span * Sim.Time.t * Sim.Time.t) list
(** Every matched [(span, begin, end)] in the trace, in end order — the
    raw material for {!Chrome} export. Same [~keep:false] restriction. *)

val table : report -> Stats.Table.t
(** The decomposition table printed after bench experiments: per segment,
    journey count, total ms, share of attributed time, p50/p99. Output is
    deterministic for a deterministic trace. *)

val check : report -> (unit, string list) result
(** [Error mismatches] when any journey's segments fail to sum to its
    measured visibility latency. *)
