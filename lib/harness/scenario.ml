type system = Saturn_sys | Saturn_peer | Eventual | Gentlerain | Cure | Eunomia | Okapi

let system_name = function
  | Saturn_sys -> "Saturn"
  | Saturn_peer -> "Saturn-P"
  | Eventual -> "Eventual"
  | Gentlerain -> "GentleRain"
  | Cure -> "Cure"
  | Eunomia -> "Eunomia"
  | Okapi -> "Okapi"

let all_systems = [ Eventual; Saturn_sys; Gentlerain; Eunomia; Okapi; Cure ]

type setup = {
  n_dcs : int;
  n_keys : int;
  correlation : Workload.Keyspace.correlation;
  value_size : int;
  read_ratio : float;
  remote_read_ratio : float;
  clients_per_dc : int;
  partitions : int;
  warmup : Sim.Time.t;
  measure : Sim.Time.t;
  cooldown : Sim.Time.t;
  seed : int;
  saturn_config : Saturn.Config.t option;
  serializer_replicas : int;
  bulk_factor : float;
}

let default_setup =
  {
    n_dcs = 7;
    n_keys = 700;
    correlation = Workload.Keyspace.Exponential;
    value_size = 2;
    read_ratio = 0.9;
    remote_read_ratio = 0.;
    clients_per_dc = 40;
    partitions = 2;
    warmup = Sim.Time.of_ms 400;
    measure = Sim.Time.of_sec 1.5;
    cooldown = Sim.Time.of_ms 200;
    seed = 17;
    saturn_config = None;
    serializer_replicas = 1;
    bulk_factor = 1.0;
  }

type outcome = {
  system : system;
  throughput : float;
  ops : int;
  mean_visibility_ms : float;
  extra_visibility_ms : float;
  p90_visibility_ms : float;
  metrics : Metrics.t;
}

let dc_sites setup = Array.of_list (Sim.Ec2.first_n setup.n_dcs)

let replica_map setup =
  let rng = Sim.Rng.create ~seed:(setup.seed * 31 + 5) in
  Workload.Keyspace.make ~rng ~topo:Sim.Ec2.topology ~dc_sites:(dc_sites setup)
    ~n_keys:setup.n_keys setup.correlation

(* Algorithm-3 runs are deterministic in (n_dcs, correlation, seed); memoize
   so sweeps that share a deployment do not re-solve. *)
let config_cache : (int * string * int * float, Saturn.Config.t) Hashtbl.t = Hashtbl.create 8

let solved_config setup =
  let corr = Format.asprintf "%a" Workload.Keyspace.pp_correlation setup.correlation in
  let key = (setup.n_dcs, corr, setup.seed, setup.bulk_factor) in
  match Hashtbl.find_opt config_cache key with
  | Some c -> c
  | None ->
    let sites = dc_sites setup in
    let spec =
      { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap:(replica_map setup)) with
        Build.bulk_factor = setup.bulk_factor;
      }
    in
    let c = Build.solve_config spec in
    Hashtbl.replace config_cache key c;
    c

let run_with ?rmap system setup =
  let engine = Sim.Engine.create () in
  let sites = dc_sites setup in
  let rmap_overridden = Option.is_some rmap in
  let rmap = match rmap with Some r -> r | None -> replica_map setup in
  let metrics = Metrics.create ~bulk_factor:setup.bulk_factor engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
  let spec =
    { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with
      Build.partitions = setup.partitions;
      saturn_config = None;
      serializer_replicas = setup.serializer_replicas;
      bulk_factor = setup.bulk_factor;
    }
  in
  let saturn_config =
    match (setup.saturn_config, system) with
    | Some c, _ -> Some c
    | None, Saturn_sys ->
      (* Algorithm 3 is deterministic; memoize for repeated sweeps over the
         same deployment *)
      Some (if rmap_overridden then Build.solve_config spec else solved_config setup)
    | None, (Saturn_peer | Eventual | Gentlerain | Cure | Eunomia | Okapi) -> None
  in
  let spec = { spec with Build.saturn_config } in
  let api =
    match system with
    | Saturn_sys -> fst (Build.saturn engine spec metrics)
    | Saturn_peer -> fst (Build.saturn_peer engine spec metrics)
    | Eventual -> Build.eventual engine spec metrics
    | Gentlerain -> Build.gentlerain engine spec metrics
    | Cure -> Build.cure engine spec metrics
    | Eunomia -> Build.eunomia engine spec metrics
    | Okapi -> Build.okapi engine spec metrics
  in
  let workload =
    Workload.Synthetic.create
      {
        Workload.Synthetic.n_keys = setup.n_keys;
        value_size = setup.value_size;
        read_ratio = setup.read_ratio;
        remote_read_ratio = setup.remote_read_ratio;
        seed = setup.seed;
      }
      ~rmap ~topo:Sim.Ec2.topology ~dc_sites:sites
  in
  let clients = Driver.make_clients ~dc_sites:sites ~per_dc:setup.clients_per_dc in
  let next_op (c : Client.t) = Workload.Synthetic.next workload ~dc:c.Client.preferred_dc in
  let result =
    Driver.run engine api metrics ~clients ~next_op ~warmup:setup.warmup ~measure:setup.measure
      ~cooldown:setup.cooldown
  in
  let vis = Metrics.visibility metrics in
  let extra = Metrics.extra_visibility metrics in
  {
    system;
    throughput = result.Driver.throughput;
    ops = result.Driver.ops_completed;
    mean_visibility_ms = Stats.Sample.mean vis;
    extra_visibility_ms = Stats.Sample.mean extra;
    p90_visibility_ms = (if Stats.Sample.is_empty vis then 0. else Stats.Sample.percentile vis 90.);
    metrics;
  }

let run system setup = run_with system setup
let run_all setup = List.map (fun s -> run s setup) all_systems

(* ---- Facebook-based benchmark ------------------------------------------ *)

type social_setup = {
  n_users : int;
  value_size : int;
  min_replicas : int;
  max_replicas : int;
  social_clients_per_dc : int;
  s_warmup : Sim.Time.t;
  s_measure : Sim.Time.t;
  s_cooldown : Sim.Time.t;
  s_seed : int;
}

let default_social_setup =
  {
    n_users = 3500;
    value_size = 64;
    min_replicas = 2;
    max_replicas = 5;
    social_clients_per_dc = 250;
    s_warmup = Sim.Time.of_ms 400;
    s_measure = Sim.Time.of_sec 1.0;
    s_cooldown = Sim.Time.of_ms 200;
    s_seed = 29;
  }

(* graph generation and partitioning are deterministic; memoize across the
   per-system runs of one experiment point *)
let social_cache : (int * int * int * int, Workload.Social_partition.t) Hashtbl.t =
  Hashtbl.create 8

let social_partition s =
  let key = (s.n_users, s.min_replicas, s.max_replicas, s.s_seed) in
  match Hashtbl.find_opt social_cache key with
  | Some p -> p
  | None ->
    let graph = Workload.Social_graph.facebook_scaled ~n_users:s.n_users ~seed:s.s_seed in
    let p =
      Workload.Social_partition.partition graph ~n_dcs:7 ~min_replicas:s.min_replicas
        ~max_replicas:s.max_replicas ~seed:(s.s_seed + 1)
    in
    Hashtbl.replace social_cache key p;
    p

let run_social system s =
  let engine = Sim.Engine.create () in
  let sites = Array.of_list (Sim.Ec2.first_n 7) in
  let part = social_partition s in
  let rmap = Workload.Social_partition.replica_map part in
  let metrics = Metrics.create engine ~topo:Sim.Ec2.topology ~dc_sites:sites in
  let spec =
    { (Build.default_spec ~topo:Sim.Ec2.topology ~dc_sites:sites ~rmap) with
      Build.saturn_config = None;
    }
  in
  let saturn_config =
    match system with Saturn_sys -> Some (Build.solve_config spec) | _ -> None
  in
  let spec = { spec with Build.saturn_config } in
  let api =
    match system with
    | Saturn_sys -> fst (Build.saturn engine spec metrics)
    | Saturn_peer -> fst (Build.saturn_peer engine spec metrics)
    | Eventual -> Build.eventual engine spec metrics
    | Gentlerain -> Build.gentlerain engine spec metrics
    | Cure -> Build.cure engine spec metrics
    | Eunomia -> Build.eunomia engine spec metrics
    | Okapi -> Build.okapi engine spec metrics
  in
  let ops = Workload.Social_ops.create part ~value_size:s.value_size ~seed:(s.s_seed + 2) in
  (* sample active users per datacenter, keyed by master placement *)
  let by_dc = Array.make 7 [] in
  for u = Workload.Social_graph.n_users (Workload.Social_partition.graph part) - 1 downto 0 do
    let m = Workload.Social_partition.master part ~user:u in
    by_dc.(m) <- u :: by_dc.(m)
  done;
  let clients =
    List.concat
      (List.init 7 (fun dc ->
           let users = by_dc.(dc) in
           List.filteri (fun i _ -> i < s.social_clients_per_dc) users
           |> List.map (fun u -> Client.create ~id:u ~home_site:sites.(dc) ~preferred_dc:dc)))
  in
  let next_op (c : Client.t) = Workload.Social_ops.next ops ~user:c.Client.id in
  let result =
    Driver.run engine api metrics ~clients ~next_op ~warmup:s.s_warmup ~measure:s.s_measure
      ~cooldown:s.s_cooldown
  in
  let vis = Metrics.visibility metrics in
  let extra = Metrics.extra_visibility metrics in
  {
    system;
    throughput = result.Driver.throughput;
    ops = result.Driver.ops_completed;
    mean_visibility_ms = Stats.Sample.mean vis;
    extra_visibility_ms = Stats.Sample.mean extra;
    p90_visibility_ms = (if Stats.Sample.is_empty vis then 0. else Stats.Sample.percentile vis 90.);
    metrics;
  }
