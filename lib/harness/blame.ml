type part = Sink_hold | Serializer | Delta | Proxy_order | Transit_excess

let parts = [ Sink_hold; Serializer; Delta; Proxy_order; Transit_excess ]

let part_name = function
  | Sink_hold -> "sink_hold"
  | Serializer -> "serializer"
  | Delta -> "delta"
  | Proxy_order -> "proxy_order"
  | Transit_excess -> "transit_excess"

type blamed = {
  j : Journey.journey;
  optimal_us : int;
  gap_us : int;
  blame : (part * int) list;
  culprits : (string * int) list;
}

type part_stat = {
  part : part;
  journeys : int;
  total_us : int;
  p50_ms : float;
  p99_ms : float;
}

type culprit_stat = {
  culprit : string;
  c_journeys : int;
  c_total_us : int;
  c_tail_us : int;
}

type report = {
  blamed : blamed list;
  per_part : part_stat list;
  culprits : culprit_stat list;
  gap_hist : Stats.Hdr.t;
  tail_threshold_us : int;
  optimal_total_us : int;
  mismatches : string list;
  fallback_applied : int;
  incomplete : int;
}

(* ---- the optimum ---------------------------------------------------------- *)

let scaled_us ~bulk_factor t =
  int_of_float (float_of_int (Sim.Time.to_us t) *. bulk_factor)

let optimal_matrix ~topo ~dc_sites ~bulk_factor =
  let n = Array.length dc_sites in
  let m =
    Array.init n (fun i ->
        Array.init n (fun j ->
            scaled_us ~bulk_factor (Sim.Topology.latency topo dc_sites.(i) dc_sites.(j))))
  in
  (* Floyd–Warshall: the bulk fabric is a full mesh of direct links, but a
     geography violating the triangle inequality makes a relayed path the
     true optimum — the paper's "deviation from optimal" baseline *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if m.(i).(k) + m.(k).(j) < m.(i).(j) then m.(i).(j) <- m.(i).(k) + m.(k).(j)
      done
    done
  done;
  m

(* ---- per-journey attribution ---------------------------------------------- *)

(* walk the path-ordered segments, pinning each occurrence on its edge or
   serializer: the k-th Chain is path.(k), each Delay_hop belongs to the
   Hop that follows it, Delay_egress/Egress to (last serializer, dst) *)
type walk_leg =
  | L_sink of int
  | L_attach of int
  | L_chain of int * int (* serializer, us *)
  | L_delay_hop of int * int * int (* from, to, us *)
  | L_hop of int * int * int
  | L_delay_egress of int * int (* last serializer, us *)
  | L_egress of int * int
  | L_proxy of int

let walk (j : Journey.journey) =
  let path = Array.of_list j.Journey.path in
  let last = if Array.length path = 0 then -1 else path.(Array.length path - 1) in
  let chain_i = ref 0 in
  let edge_i = ref 0 in
  List.map
    (fun ((seg : Journey.segment), us) ->
      match seg with
      | Journey.Sink_hold -> L_sink us
      | Journey.Attach -> L_attach us
      | Journey.Chain ->
        let s = if !chain_i < Array.length path then path.(!chain_i) else -1 in
        incr chain_i;
        L_chain (s, us)
      | Journey.Delay_hop ->
        let a = path.(!edge_i) and b = path.(!edge_i + 1) in
        L_delay_hop (a, b, us)
      | Journey.Hop ->
        let a = path.(!edge_i) and b = path.(!edge_i + 1) in
        incr edge_i;
        L_hop (a, b, us)
      | Journey.Delay_egress -> L_delay_egress (last, us)
      | Journey.Egress -> L_egress (last, us)
      | Journey.Proxy_order -> L_proxy us)
    j.Journey.parts

(* assoc-merge keeping first-occurrence order *)
let merge_culprits legs_named =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, us) ->
      match Hashtbl.find_opt tbl name with
      | Some v -> Hashtbl.replace tbl name (v + us)
      | None ->
        Hashtbl.replace tbl name us;
        order := name :: !order)
    legs_named;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

let blame_journey ~optimal (j : Journey.journey) =
  let opt = optimal.(j.Journey.origin).(j.Journey.dst) in
  let gap = j.Journey.visibility_us - opt in
  let legs = walk j in
  let sum f = List.fold_left (fun acc l -> acc + f l) 0 legs in
  let sink = sum (function L_sink us -> us | _ -> 0) in
  let attach = sum (function L_attach us -> us | _ -> 0) in
  let chain = sum (function L_chain (_, us) -> us | _ -> 0) in
  let delta = sum (function L_delay_hop (_, _, us) | L_delay_egress (_, us) -> us | _ -> 0) in
  let hops = sum (function L_hop (_, _, us) -> us | _ -> 0) in
  let egress = sum (function L_egress (_, us) -> us | _ -> 0) in
  let proxy = sum (function L_proxy us -> us | _ -> 0) in
  (* shortest-path transit is the necessary floor: whatever the label's
     physical route (attach link + tree hops + egress) costs beyond it is
     overhead — off-shortest-path detours, retransmissions, spiked links *)
  let transit_excess = attach + hops + egress - opt in
  let blame =
    [
      (Sink_hold, sink);
      (Serializer, chain);
      (Delta, delta);
      (Proxy_order, proxy);
      (Transit_excess, transit_excess);
    ]
  in
  let culprits =
    merge_culprits
      (List.filter_map
         (function
           | L_sink us -> Some (Printf.sprintf "sink.dc%d" j.Journey.origin, us)
           | L_chain (s, us) -> Some (Printf.sprintf "ser%d" s, us)
           | L_delay_hop (a, b, us) -> Some (Printf.sprintf "delta.s%d->s%d" a b, us)
           | L_delay_egress (s, us) -> Some (Printf.sprintf "delta.s%d->dc%d" s j.Journey.dst, us)
           | L_proxy us -> Some (Printf.sprintf "proxy.dc%d" j.Journey.dst, us)
           | L_attach _ | L_hop _ | L_egress _ -> None)
         legs
      @
      if transit_excess = 0 then []
      else [ (Printf.sprintf "route.dc%d->dc%d" j.Journey.origin j.Journey.dst, transit_excess) ])
  in
  { j; optimal_us = opt; gap_us = gap; blame; culprits }

let analyze ~optimal (r : Journey.report) =
  let blamed = List.map (blame_journey ~optimal) r.Journey.journeys in
  let mismatches = ref [] in
  List.iter
    (fun b ->
      let total = List.fold_left (fun acc (_, us) -> acc + us) 0 b.blame in
      if total <> b.gap_us then
        mismatches :=
          Printf.sprintf "dc%d#%d -> dc%d: blame parts sum %dus, gap %dus" b.j.Journey.origin
            b.j.Journey.oseq b.j.Journey.dst total b.gap_us
          :: !mismatches)
    blamed;
  let gap_hist = Stats.Hdr.create () in
  List.iter (fun b -> Stats.Hdr.add gap_hist b.gap_us) blamed;
  let per_part =
    List.map
      (fun part ->
        let hist = Stats.Hdr.create () in
        let n = ref 0 and total = ref 0 in
        List.iter
          (fun b ->
            let us = List.assoc part b.blame in
            if us <> 0 then begin
              incr n;
              total := !total + us;
              Stats.Hdr.add hist us
            end)
          blamed;
        {
          part;
          journeys = !n;
          total_us = !total;
          p50_ms = (if Stats.Hdr.count hist = 0 then 0. else Stats.Hdr.percentile hist 50. /. 1000.);
          p99_ms = (if Stats.Hdr.count hist = 0 then 0. else Stats.Hdr.percentile hist 99. /. 1000.);
        })
      parts
  in
  (* the tail: the slowest tenth of journeys by gap (at least one), ties
     broken by identity so the set is deterministic *)
  let by_gap =
    List.sort
      (fun a b ->
        match compare b.gap_us a.gap_us with
        | 0 ->
          compare
            (a.j.Journey.origin, a.j.Journey.oseq, a.j.Journey.dst)
            (b.j.Journey.origin, b.j.Journey.oseq, b.j.Journey.dst)
        | c -> c)
      blamed
  in
  let n = List.length blamed in
  let n_tail = if n = 0 then 0 else Stdlib.max 1 (n / 10) in
  let tail = List.filteri (fun i _ -> i < n_tail) by_gap in
  let tail_threshold_us = match List.rev tail with [] -> 0 | b :: _ -> b.gap_us in
  let in_tail = Hashtbl.create 64 in
  List.iter
    (fun b -> Hashtbl.replace in_tail (b.j.Journey.origin, b.j.Journey.oseq, b.j.Journey.dst) ())
    tail;
  let order = ref [] in
  let ctbl = Hashtbl.create 32 in
  List.iter
    (fun b ->
      let tailed = Hashtbl.mem in_tail (b.j.Journey.origin, b.j.Journey.oseq, b.j.Journey.dst) in
      List.iter
        (fun (name, us) ->
          let js, tot, tl =
            match Hashtbl.find_opt ctbl name with
            | Some x -> x
            | None ->
              order := name :: !order;
              (0, 0, 0)
          in
          Hashtbl.replace ctbl name (js + 1, tot + us, if tailed then tl + us else tl))
        b.culprits)
    blamed;
  let culprits =
    List.rev_map
      (fun name ->
        let c_journeys, c_total_us, c_tail_us = Hashtbl.find ctbl name in
        { culprit = name; c_journeys; c_total_us; c_tail_us })
      !order
    |> List.sort (fun a b ->
           match compare b.c_tail_us a.c_tail_us with
           | 0 -> (
             match compare b.c_total_us a.c_total_us with
             | 0 -> String.compare a.culprit b.culprit
             | c -> c)
           | c -> c)
  in
  {
    blamed;
    per_part;
    culprits;
    gap_hist;
    tail_threshold_us;
    optimal_total_us = List.fold_left (fun acc b -> acc + b.optimal_us) 0 blamed;
    mismatches = r.Journey.mismatches @ List.rev !mismatches;
    fallback_applied = r.Journey.fallback_applied;
    incomplete = r.Journey.incomplete;
  }

let check r = match r.mismatches with [] -> Ok () | ms -> Error ms

let top_k r ~k =
  let by_gap =
    List.sort
      (fun a b ->
        match compare b.gap_us a.gap_us with
        | 0 ->
          compare
            (a.j.Journey.origin, a.j.Journey.oseq, a.j.Journey.dst)
            (b.j.Journey.origin, b.j.Journey.oseq, b.j.Journey.dst)
        | c -> c)
      r.blamed
  in
  List.filteri (fun i _ -> i < k) by_gap

(* ---- rendering ------------------------------------------------------------ *)

let ms us = float_of_int us /. 1000.

let table r =
  let gap_total = List.fold_left (fun acc b -> acc + b.gap_us) 0 r.blamed in
  let tbl =
    Stats.Table.create
      ~title:
        (Printf.sprintf "optimality-gap blame (%d journeys, gap total %.1f ms over optimal %.1f ms)"
           (List.length r.blamed) (ms gap_total) (ms r.optimal_total_us))
      ~columns:[ "part"; "journeys"; "total ms"; "share of gap"; "p50 ms"; "p99 ms"; "" ]
  in
  List.iter
    (fun s ->
      let share =
        if gap_total = 0 then 0. else 100. *. float_of_int s.total_us /. float_of_int gap_total
      in
      let bar = String.make (int_of_float (Float.max 0. share /. 2.5)) '#' in
      Stats.Table.add_row tbl
        [
          part_name s.part;
          string_of_int s.journeys;
          Printf.sprintf "%.1f" (ms s.total_us);
          Printf.sprintf "%.1f%%" share;
          (if s.journeys = 0 then "-" else Printf.sprintf "%.2f" s.p50_ms);
          (if s.journeys = 0 then "-" else Printf.sprintf "%.2f" s.p99_ms);
          bar;
        ])
    r.per_part;
  tbl

let culprit_table r =
  let tbl =
    Stats.Table.create
      ~title:
        (Printf.sprintf "culprit ranking (tail = gap >= %.1f ms, the slowest tenth)"
           (ms r.tail_threshold_us))
      ~columns:[ "culprit"; "journeys"; "total ms"; "tail ms"; "" ]
  in
  let tail_max =
    List.fold_left (fun acc c -> Stdlib.max acc c.c_tail_us) 0 r.culprits
  in
  List.iter
    (fun c ->
      let bar =
        if tail_max <= 0 then ""
        else String.make (40 * Stdlib.max 0 c.c_tail_us / tail_max) '#'
      in
      Stats.Table.add_row tbl
        [
          c.culprit;
          string_of_int c.c_journeys;
          Printf.sprintf "%.1f" (ms c.c_total_us);
          Printf.sprintf "%.1f" (ms c.c_tail_us);
          bar;
        ])
    r.culprits;
  tbl

let render_journey b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "dc%d#%d -> dc%d  vis %.3fms = optimal %.3f + gap %.3f\n" b.j.Journey.origin
       b.j.Journey.oseq b.j.Journey.dst (ms b.j.Journey.visibility_us) (ms b.optimal_us)
       (ms b.gap_us));
  let legs =
    List.map
      (function
        | L_sink us -> Printf.sprintf "sink %.3f" (ms us)
        | L_attach us -> Printf.sprintf "attach %.3f" (ms us)
        | L_chain (s, us) -> Printf.sprintf "ser%d %.3f" s (ms us)
        | L_delay_hop (a, b, us) -> Printf.sprintf "delta s%d->s%d %.3f" a b (ms us)
        | L_hop (a, b, us) -> Printf.sprintf "hop s%d->s%d %.3f" a b (ms us)
        | L_delay_egress (s, us) -> Printf.sprintf "delta s%d->egress %.3f" s (ms us)
        | L_egress (s, us) -> Printf.sprintf "egress s%d %.3f" s (ms us)
        | L_proxy us -> Printf.sprintf "proxy %.3f" (ms us))
      (walk b.j)
  in
  Buffer.add_string buf ("    " ^ String.concat " | " legs ^ "\n");
  Buffer.contents buf

let gap_csv r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "origin,oseq,dst,path,visibility_us,optimal_us,gap_us,sink_hold_us,serializer_us,delta_us,proxy_order_us,transit_excess_us\n";
  List.iter
    (fun b ->
      let part p = List.assoc p b.blame in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d\n" b.j.Journey.origin
           b.j.Journey.oseq b.j.Journey.dst
           (String.concat ">" (List.map (Printf.sprintf "s%d") b.j.Journey.path))
           b.j.Journey.visibility_us b.optimal_us b.gap_us (part Sink_hold) (part Serializer)
           (part Delta) (part Proxy_order) (part Transit_excess)))
    r.blamed;
  Buffer.contents buf

(* FNV-1a 64-bit over the per-journey CSV, matching the probe/series digest
   convention: a single blame number moving flips the digest *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let digest r =
  let s = gap_csv r in
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let render ?(top = 5) r =
  let buf = Buffer.create 4096 in
  let n = List.length r.blamed in
  Buffer.add_string buf
    (Printf.sprintf
       "blame: %d complete journeys (%d fallback, %d in flight); gap = visibility - shortest \
        bulk path; digest %s\n"
       n r.fallback_applied r.incomplete (digest r));
  (if Stats.Hdr.count r.gap_hist > 0 then
     Buffer.add_string buf
       (Printf.sprintf "gap ms: mean %.3f  p50 %.3f  p99 %.3f  p99.9 %.3f  max %.3f\n"
          (Stats.Hdr.mean r.gap_hist /. 1000.)
          (Stats.Hdr.percentile r.gap_hist 50. /. 1000.)
          (Stats.Hdr.percentile r.gap_hist 99. /. 1000.)
          (Stats.Hdr.percentile r.gap_hist 99.9 /. 1000.)
          (ms (Stats.Hdr.max_value r.gap_hist))));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Stats.Table.render (table r));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Stats.Table.render (culprit_table r));
  Buffer.add_char buf '\n';
  if top > 0 && n > 0 then begin
    Buffer.add_string buf (Printf.sprintf "top %d journeys by gap:\n" (Stdlib.min top n));
    List.iteri
      (fun i b -> Buffer.add_string buf (Printf.sprintf "  #%d %s" (i + 1) (render_journey b)))
      (top_k r ~k:top)
  end;
  (match r.mismatches with
  | [] -> ()
  | ms ->
    Buffer.add_string buf (Printf.sprintf "TILING MISMATCHES (%d):\n" (List.length ms));
    List.iter (fun m -> Buffer.add_string buf ("  " ^ m ^ "\n")) ms);
  Buffer.contents buf

(* registration names stay literal (or sprintf-literal) at the call site:
   saturn-lint's counter-name pass globs these against the smoke baseline *)
let fold_counters r registry =
  Stats.Registry.incr ~by:(List.length r.blamed)
    (Stats.Registry.counter registry "blame.journeys");
  Stats.Registry.incr
    ~by:(List.fold_left (fun acc b -> acc + b.gap_us) 0 r.blamed)
    (Stats.Registry.counter registry "blame.gap.us");
  Stats.Registry.incr ~by:r.optimal_total_us (Stats.Registry.counter registry "blame.optimal.us");
  List.iter
    (fun s ->
      Stats.Registry.incr ~by:s.total_us
        (Stats.Registry.counter registry (Printf.sprintf "blame.part.%s.us" (part_name s.part))))
    r.per_part
