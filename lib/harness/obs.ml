type result = {
  digest : string;
  n_events : int;
  ops : int;
  registry : Stats.Registry.t;
  series : Stats.Series.t;
  probe : Sim.Probe.t;
  blame : Blame.report;
}

(* the shared deployment shapes live in Build so the fault matrix can use
   them without depending on this module; re-exported here for callers *)
let topo3 = Build.topo3
let chain_config = Build.chain_config

let smoke ?(seed = 42) () =
  let topo = topo3 () in
  let dc_sites = [| 0; 1; 2 |] in
  let n_keys = 24 in
  (* full replication: every update interests both remote datacenters, so
     labels provably cross both tree edges *)
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  Stats.Registry.register_pull registry "engine.events_processed" (fun () ->
      float_of_int (Sim.Engine.events_processed engine));
  let probe = Sim.Probe.create ~keep:true () in
  let spec =
    {
      (Build.default_spec ~topo ~dc_sites ~rmap) with
      Build.saturn_config = Some (chain_config ~dc_sites);
      partitions = 2;
      frontends = 2;
    }
  in
  let metrics = Metrics.create ~registry engine ~topo ~dc_sites in
  let vis_hist = Stats.Registry.histogram registry "smoke.visibility_ms" ~lo:0. ~hi:1000. ~buckets:40 in
  let series = Stats.Series.create () in
  let vis_series = Stats.Series.hist series "series.vis_ms" in
  (* the optimality floor per (origin, dst): shortest bulk path, the same
     matrix Blame attributes against after the run *)
  let optimal = Blame.optimal_matrix ~topo ~dc_sites ~bulk_factor:spec.Build.bulk_factor in
  let gap_series = Stats.Series.hist series "series.gap_ms" in
  Metrics.subscribe metrics (fun ~dc ~key:_ ~origin_dc ~origin_time ~value:_ ->
      let now = Sim.Engine.now engine in
      let ms = Sim.Time.to_ms_float (Sim.Time.sub now origin_time) in
      Stats.Histogram.add vis_hist ms;
      Stats.Series.observe vis_series ~now ms;
      Stats.Series.observe gap_series ~now
        (ms -. (float_of_int optimal.(origin_dc).(dc) /. 1000.)));
  let driver_result =
    Sim.Probe.with_probe probe (fun () ->
        let api, _system = Build.saturn ~registry ~series engine spec metrics in
        let clients = Driver.make_clients ~dc_sites ~per_dc:2 in
        let syn =
          Workload.Synthetic.create
            { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
            ~rmap ~topo ~dc_sites
        in
        Driver.run engine api metrics ~clients
          ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Client.preferred_dc)
          ~warmup:(Sim.Time.of_ms 200) ~measure:(Sim.Time.of_sec 1.) ~cooldown:(Sim.Time.of_ms 200))
  in
  (* fold the per-kind trace counts into the registry so one table shows
     engine, link, tree and proxy activity side by side *)
  List.iter
    (fun (k, n) -> Stats.Registry.incr ~by:n (Stats.Registry.counter registry ("probe." ^ k)))
    (Sim.Probe.counts_by_kind probe);
  (* matched-span time per subsystem: the simulated-time face of the flame
     table, and counter-gated in CI like every other probe statistic *)
  List.iter
    (fun (k, us) -> Stats.Registry.incr ~by:us (Stats.Registry.counter registry ("span." ^ k ^ ".us")))
    (Sim.Probe.span_totals_us probe);
  Stats.Series.seal series ~now:(Sim.Engine.now engine);
  (* fold each series' total event/sample count into the registry, so the
     probe-counter gate also catches a series going silent *)
  List.iter
    (fun name ->
      let total = Array.fold_left (fun acc p -> acc + p.Stats.Series.count) 0 (Stats.Series.points series name) in
      Stats.Registry.incr ~by:total (Stats.Registry.counter registry (name ^ ".n")))
    (Stats.Series.names series);
  (* the blame pass: optimality-gap attribution over the journey report,
     with its aggregates folded into the counter baseline so a silent
     attribution change trips the probe-counter gate *)
  let blame = Blame.analyze ~optimal (Journey.analyze probe) in
  Blame.fold_counters blame registry;
  {
    digest = Sim.Probe.digest probe;
    n_events = Sim.Probe.count probe;
    ops = driver_result.Driver.ops_completed;
    registry;
    series;
    probe;
    blame;
  }

let write_artifacts r ~out_dir =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let file name writer =
    let path = Filename.concat out_dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> writer oc);
    path
  in
  [
    file "trace.jsonl" (fun oc -> Sim.Probe.write_jsonl r.probe oc);
    file "trace.digest" (fun oc -> output_string oc (r.digest ^ "\n"));
    file "trace.chrome.json" (fun oc -> Chrome.write r.probe oc);
    file "decomposition.txt" (fun oc ->
        output_string oc (Stats.Table.render (Journey.table (Journey.analyze r.probe)));
        output_char oc '\n');
    file "series.csv" (fun oc -> output_string oc (Stats.Series.to_csv r.series));
    file "series.json" (fun oc -> output_string oc (Stats.Series.to_json r.series));
    file "blame.txt" (fun oc -> output_string oc (Blame.render r.blame));
    file "gap.csv" (fun oc -> output_string oc (Blame.gap_csv r.blame));
    file "reconfig.timeline.txt" (fun oc ->
        (* the migration view rides along with the smoke artifacts: a fresh
           fixed-seed reconfig-cut run (graceful epoch switch composed with
           a metadata-tree cut), rendered as the same timeline
           `saturn-cli series --scenario reconfig-cut` prints *)
        let o = Fault_run.run_scenario ~scenario:"reconfig-cut" ~system:`Saturn () in
        output_string oc (Fault_run.timeline_string o));
  ]

(* ---- probe-counter regression gate ------------------------------------- *)

let counter_lines registry =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Stats.Registry.Counter n -> Some (Printf.sprintf "%s %d" name n)
      | Stats.Registry.Gauge _ | Stats.Registry.Hist _ -> None)
    (Stats.Registry.snapshot registry)

let write_counters r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# smoke-run counter baseline; regenerate every baseline with\n";
      output_string oc "#   ci/regen.sh   (or just this file: saturn-cli obs --counters-out <path>)\n";
      List.iter (fun l -> output_string oc (l ^ "\n")) (counter_lines r.registry))

let check_counters r ~baseline ~tolerance =
  let ic = open_in baseline in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  let failures = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | None -> failures := Printf.sprintf "malformed baseline line %S" line :: !failures
        | Some i ->
          let name = String.sub line 0 i in
          let expect = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
          let got =
            match Stats.Registry.find r.registry name with
            | Some (Stats.Registry.Counter n) -> Some n
            | _ -> None
          in
          (match got with
          | None -> failures := Printf.sprintf "counter %s missing from run" name :: !failures
          | Some got ->
            let slack = Stdlib.max 1. (tolerance *. float_of_int expect) in
            if Float.abs (float_of_int (got - expect)) > slack then
              failures :=
                Printf.sprintf "counter %s drifted: baseline %d, run %d (tolerance %.0f%%)" name
                  expect got (tolerance *. 100.)
                :: !failures))
    (List.rev !lines);
  match List.rev !failures with [] -> Ok () | fs -> Error fs

let run_smoke ?(seed = 42) ?out_dir () =
  let r = smoke ~seed () in
  Stats.Registry.print ~title:(Printf.sprintf "smoke seed=%d" seed) r.registry;
  Printf.printf "trace: %d events, digest %s\n" r.n_events r.digest;
  (match out_dir with
  | Some dir -> Printf.printf "wrote %s\n" (String.concat ", " (write_artifacts r ~out_dir:dir))
  | None -> ());
  r
