type spec = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  partitions : int;
  frontends : int;
  cost : Saturn.Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  saturn_config : Saturn.Config.t option;
  serializer_replicas : int;
  bulk_factor : float;
}

let default_spec ~topo ~dc_sites ~rmap =
  {
    topo;
    dc_sites;
    partitions = 2;
    frontends = 2;
    cost = Saturn.Cost_model.default;
    rmap;
    saturn_config = None;
    serializer_replicas = 1;
    bulk_factor = 1.0;
  }

(* three sites with unequal latencies, so the solver-independent chain tree
   below has a genuinely asymmetric geography to work against *)
let topo3 () =
  Sim.Topology.create
    ~names:[| "west"; "central"; "east" |]
    ~latency_ms:[| [| 0; 40; 90 |]; [| 40; 0; 50 |]; [| 90; 50; 0 |] |]

(* an explicit chain of three serializers (one per datacenter). The smoke
   scenario must exercise serializer-to-serializer forwarding; the solved
   configuration for three sites can collapse to a star, which never hops. *)
let chain_config ~dc_sites =
  let tree = Saturn.Tree.create ~n_serializers:3 ~edges:[ (0, 1); (1, 2) ] ~attach:[| 0; 1; 2 |] in
  let config = Saturn.Config.create ~tree ~placement:(Array.copy dc_sites) ~dc_sites () in
  (* small artificial delays so the δ-wait path is traced too *)
  Saturn.Config.set_delay config ~from:1 ~hop:(Saturn.Config.To_dc 1) (Sim.Time.of_ms 2);
  Saturn.Config.set_delay config ~from:0 ~hop:(Saturn.Config.To_serializer 1) (Sim.Time.of_ms 1);
  config

(* a pre-computed backup tree for the same three datacenters (§6.2): two
   serializers at the chain's endpoints, so the epoch-2 topology is
   genuinely different from the 0–1–2 chain it replaces *)
let backup_config ~dc_sites =
  let tree = Saturn.Tree.create ~n_serializers:2 ~edges:[ (0, 1) ] ~attach:[| 0; 0; 1 |] in
  Saturn.Config.create ~tree
    ~placement:[| dc_sites.(0); dc_sites.(2) |]
    ~dc_sites:(Array.copy dc_sites) ()

let solve_config spec =
  let bulk i j =
    let lat = Sim.Topology.latency spec.topo spec.dc_sites.(i) spec.dc_sites.(j) in
    Sim.Time.of_us (int_of_float (float_of_int (Sim.Time.to_us lat) *. spec.bulk_factor))
  in
  let crit = Saturn.Mismatch.of_replica_map spec.rmap ~bulk in
  let crit =
    (* fully-disjoint replica maps would zero every weight; fall back to
       uniform weights in that case *)
    let any = ref false in
    for i = 0 to Array.length spec.dc_sites - 1 do
      for j = 0 to Array.length spec.dc_sites - 1 do
        if i <> j && crit.Saturn.Mismatch.weight i j > 0. then any := true
      done
    done;
    if !any then crit else Saturn.Mismatch.uniform ~n_dcs:(Array.length spec.dc_sites) ~bulk
  in
  let problem =
    {
      Saturn.Config_solver.topo = spec.topo;
      dc_sites = Array.copy spec.dc_sites;
      candidates = Saturn.Config_solver.default_candidates ~dc_sites:spec.dc_sites;
      crit;
    }
  in
  fst (Saturn.Config_gen.find_configuration ~seed:11 problem)

let hooks_of_metrics metrics =
  {
    Saturn.System.on_visible =
      (fun ~dc ~key ~origin_dc ~origin_time ~value ->
        Metrics.on_visible metrics ~dc ~key ~origin_dc ~origin_time ~value);
  }

let saturn_with ~peer ?registry ?series ?faults engine spec metrics =
  let config =
    match spec.saturn_config with
    | Some c -> c
    | None ->
      if peer then
        (* placeholder tree; unused in peer mode *)
        Saturn.Config.create
          ~tree:(Saturn.Tree.star ~n_dcs:(Array.length spec.dc_sites))
          ~placement:[| spec.dc_sites.(0) |] ~dc_sites:(Array.copy spec.dc_sites) ()
      else solve_config spec
  in
  let params =
    {
      Saturn.System.topo = spec.topo;
      dc_sites = Array.copy spec.dc_sites;
      partitions = spec.partitions;
      frontends = spec.frontends;
      cost = spec.cost;
      rmap = spec.rmap;
      config;
      serializer_replicas = spec.serializer_replicas;
      peer_mode = peer;
      bulk_factor = spec.bulk_factor;
      clock_offsets = None;
    }
  in
  let system = Saturn.System.create ?registry ?series engine params (hooks_of_metrics metrics) in
  Option.iter (fun f -> Faults.Registry.bind_system f system) faults;
  let table : (int, Saturn.Client_lib.t) Hashtbl.t = Hashtbl.create 256 in
  let lib (c : Client.t) =
    match Hashtbl.find_opt table c.Client.id with
    | Some l -> l
    | None ->
      let l =
        Saturn.Client_lib.create ~id:c.Client.id ~home_site:c.Client.home_site
          ~preferred_dc:c.Client.preferred_dc
      in
      Hashtbl.replace table c.Client.id l;
      l
  in
  let api =
    {
      Api.name = (if peer then "saturn-peer" else "saturn");
      attach =
        (fun c ~dc ~k ->
          Saturn.System.attach system (lib c) ~dc ~k:(fun () ->
              c.Client.current_dc <- dc;
              k ()));
      read = (fun c ~key ~k -> Saturn.System.read system (lib c) ~key ~k);
      update = (fun c ~key ~value ~k -> Saturn.System.update system (lib c) ~key ~value ~k);
      migrate =
        (fun c ~dest_dc ~k ->
          Saturn.System.migrate system (lib c) ~dest_dc ~k:(fun () ->
              c.Client.current_dc <- dest_dc;
              k ()));
      stop = (fun () -> Saturn.System.stop system);
      store_value =
        (fun ~dc ~key ->
          let store = Saturn.Datacenter.store_of_key (Saturn.System.datacenter system dc) ~key in
          Option.map fst (Kvstore.Store.get store ~key));
    }
  in
  (api, system)

let saturn ?registry ?series ?faults engine spec metrics =
  saturn_with ~peer:false ?registry ?series ?faults engine spec metrics

let saturn_peer ?registry ?series ?faults engine spec metrics =
  saturn_with ~peer:true ?registry ?series ?faults engine spec metrics

let baseline_params spec =
  {
    Baselines.Common.topo = spec.topo;
    dc_sites = Array.copy spec.dc_sites;
    partitions = spec.partitions;
    frontends = spec.frontends;
    cost = spec.cost;
    rmap = spec.rmap;
    bulk_factor = spec.bulk_factor;
  }

let baseline_hooks metrics =
  {
    Baselines.Common.on_visible =
      (fun ~dc ~key ~origin_dc ~origin_time ~value ->
        Metrics.on_visible metrics ~dc ~key ~origin_dc ~origin_time ~value);
  }

let meta_of ?registry system =
  Option.map (fun r -> Stats.Meta_bytes.create r ~system) registry

let eventual ?registry ?series ?faults engine spec metrics =
  let meta = meta_of ?registry "eventual" in
  let sys =
    Baselines.Eventual.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
  in
  Option.iter (fun f -> Faults.Registry.bind_fabric f (Baselines.Eventual.fabric sys)) faults;
  {
    Api.name = "eventual";
    attach =
      (fun c ~dc ~k ->
        Baselines.Eventual.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc ~k:(fun () ->
            c.Client.current_dc <- dc;
            k ()));
    read =
      (fun c ~key ~k ->
        Baselines.Eventual.read sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~k);
    update =
      (fun c ~key ~value ~k ->
        Baselines.Eventual.update sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~value ~k);
    migrate =
      (fun c ~dest_dc ~k ->
        Baselines.Eventual.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
          ~k:(fun () ->
            c.Client.current_dc <- dest_dc;
            k ()));
    stop = (fun () -> Baselines.Eventual.stop sys);
    store_value = (fun ~dc ~key -> Baselines.Eventual.store_value sys ~dc ~key);
  }

let gentlerain ?registry ?series engine spec metrics =
  let meta = meta_of ?registry "gentlerain" in
  let sys =
    Baselines.Gentlerain.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
  in
  {
    Api.name = "gentlerain";
    attach =
      (fun c ~dc ~k ->
        Baselines.Gentlerain.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc
          ~k:(fun () ->
            c.Client.current_dc <- dc;
            k ()));
    read =
      (fun c ~key ~k ->
        Baselines.Gentlerain.read sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~k);
    update =
      (fun c ~key ~value ~k ->
        Baselines.Gentlerain.update sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~value ~k);
    migrate =
      (fun c ~dest_dc ~k ->
        Baselines.Gentlerain.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
          ~k:(fun () ->
            c.Client.current_dc <- dest_dc;
            k ()));
    stop = (fun () -> Baselines.Gentlerain.stop sys);
    store_value = (fun ~dc ~key -> Baselines.Gentlerain.store_value sys ~dc ~key);
  }

let cure ?registry ?series engine spec metrics =
  let meta = meta_of ?registry "cure" in
  let sys =
    Baselines.Cure.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
  in
  {
    Api.name = "cure";
    attach =
      (fun c ~dc ~k ->
        Baselines.Cure.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc ~k:(fun () ->
            c.Client.current_dc <- dc;
            k ()));
    read =
      (fun c ~key ~k ->
        Baselines.Cure.read sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~k);
    update =
      (fun c ~key ~value ~k ->
        Baselines.Cure.update sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~value ~k);
    migrate =
      (fun c ~dest_dc ~k ->
        Baselines.Cure.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
          ~k:(fun () ->
            c.Client.current_dc <- dest_dc;
            k ()));
    stop = (fun () -> Baselines.Cure.stop sys);
    store_value = (fun ~dc ~key -> Baselines.Cure.store_value sys ~dc ~key);
  }

let cops ?registry ?series engine spec metrics ~prune_on_write =
  let meta = meta_of ?registry "cops" in
  let sys =
    Baselines.Cops.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
      ~prune_on_write
  in
  let api =
    {
      Api.name = "cops";
      attach =
        (fun c ~dc ~k ->
          Baselines.Cops.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc ~k:(fun () ->
              c.Client.current_dc <- dc;
              k ()));
      read =
        (fun c ~key ~k ->
          Baselines.Cops.read sys ~client:c.Client.id ~home:c.Client.home_site
            ~dc:c.Client.current_dc ~key ~k);
      update =
        (fun c ~key ~value ~k ->
          Baselines.Cops.update sys ~client:c.Client.id ~home:c.Client.home_site
            ~dc:c.Client.current_dc ~key ~value ~k);
      migrate =
        (fun c ~dest_dc ~k ->
          Baselines.Cops.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
            ~k:(fun () ->
              c.Client.current_dc <- dest_dc;
              k ()));
      stop = (fun () -> Baselines.Cops.stop sys);
      store_value = (fun ~dc ~key -> Baselines.Cops.store_value sys ~dc ~key);
    }
  in
  (api, sys)

let orbe ?registry ?series engine spec metrics =
  let meta = meta_of ?registry "orbe" in
  let sys =
    Baselines.Orbe.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
  in
  let api =
    {
      Api.name = "orbe";
      attach =
        (fun c ~dc ~k ->
          Baselines.Orbe.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc ~k:(fun () ->
              c.Client.current_dc <- dc;
              k ()));
      read =
        (fun c ~key ~k ->
          Baselines.Orbe.read sys ~client:c.Client.id ~home:c.Client.home_site
            ~dc:c.Client.current_dc ~key ~k);
      update =
        (fun c ~key ~value ~k ->
          Baselines.Orbe.update sys ~client:c.Client.id ~home:c.Client.home_site
            ~dc:c.Client.current_dc ~key ~value ~k);
      migrate =
        (fun c ~dest_dc ~k ->
          Baselines.Orbe.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
            ~k:(fun () ->
              c.Client.current_dc <- dest_dc;
              k ()));
      stop = (fun () -> Baselines.Orbe.stop sys);
      store_value = (fun ~dc ~key -> Baselines.Orbe.store_value sys ~dc ~key);
    }
  in
  (api, sys)

let eunomia ?registry ?series ?faults engine spec metrics =
  let meta = meta_of ?registry "eunomia" in
  let sys =
    Baselines.Eunomia.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
  in
  Option.iter
    (fun f ->
      Faults.Registry.bind_fabric f (Baselines.Eunomia.fabric sys);
      (* each per-DC sequencer registers as a crashable serializer: the
         ser-crash scenario shape applies to Eunomia's single point of
         order, with the backup takeover as the recovery path *)
      Array.iteri
        (fun dc site ->
          Faults.Registry.register_serializer f
            ~name:(Printf.sprintf "seq%d" dc)
            ~site
            ~crash_all:(fun () -> Baselines.Eunomia.sequencer_crash sys ~dc)
            ~crash_replica:(fun _ -> Baselines.Eunomia.sequencer_crash sys ~dc)
            ~down:(fun () -> Baselines.Eunomia.sequencer_down sys ~dc))
        spec.dc_sites)
    faults;
  {
    Api.name = "eunomia";
    attach =
      (fun c ~dc ~k ->
        Baselines.Eunomia.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc
          ~k:(fun () ->
            c.Client.current_dc <- dc;
            k ()));
    read =
      (fun c ~key ~k ->
        Baselines.Eunomia.read sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~k);
    update =
      (fun c ~key ~value ~k ->
        Baselines.Eunomia.update sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~value ~k);
    migrate =
      (fun c ~dest_dc ~k ->
        Baselines.Eunomia.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
          ~k:(fun () ->
            c.Client.current_dc <- dest_dc;
            k ()));
    stop = (fun () -> Baselines.Eunomia.stop sys);
    store_value = (fun ~dc ~key -> Baselines.Eunomia.store_value sys ~dc ~key);
  }

let okapi ?registry ?series ?faults engine spec metrics =
  let meta = meta_of ?registry "okapi" in
  let sys =
    Baselines.Okapi.create ?series ?meta engine (baseline_params spec) (baseline_hooks metrics)
  in
  Option.iter (fun f -> Faults.Registry.bind_fabric f (Baselines.Okapi.fabric sys)) faults;
  {
    Api.name = "okapi";
    attach =
      (fun c ~dc ~k ->
        Baselines.Okapi.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc ~k:(fun () ->
            c.Client.current_dc <- dc;
            k ()));
    read =
      (fun c ~key ~k ->
        Baselines.Okapi.read sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~k);
    update =
      (fun c ~key ~value ~k ->
        Baselines.Okapi.update sys ~client:c.Client.id ~home:c.Client.home_site
          ~dc:c.Client.current_dc ~key ~value ~k);
    migrate =
      (fun c ~dest_dc ~k ->
        Baselines.Okapi.attach sys ~client:c.Client.id ~home:c.Client.home_site ~dc:dest_dc
          ~k:(fun () ->
            c.Client.current_dc <- dest_dc;
            k ()));
    stop = (fun () -> Baselines.Okapi.stop sys);
    store_value = (fun ~dc ~key -> Baselines.Okapi.store_value sys ~dc ~key);
  }
