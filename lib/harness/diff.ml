type finding = {
  file : string;
  kind : string;
  where : string;
  a : string;
  b : string;
}

type result = Same | Differs of finding

let split_lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let split_csv l = String.split_on_char ',' l

let differs ?(file = "") kind where a b = Differs { file; kind; where; a; b }

(* ---- generic: first differing line ---------------------------------------- *)

let lines ?(file = "") a b =
  let la = split_lines a and lb = split_lines b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> Same
    | x :: _, [] -> differs ~file "line" (Printf.sprintf "line %d" i) x "<absent>"
    | [], y :: _ -> differs ~file "line" (Printf.sprintf "line %d" i) "<absent>" y
    | x :: xs, y :: ys ->
      if String.equal x y then go (i + 1) xs ys
      else differs ~file "line" (Printf.sprintf "line %d" i) x y
  in
  go 1 la lb

(* ---- counters: "name value" files ----------------------------------------- *)

(* merge-walk the two name-sorted counter lists so a missing counter is
   named as such rather than cascading into every later line *)
let counters ?(file = "") a b =
  let parse s =
    split_lines s
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None
           else
             match String.index_opt l ' ' with
             | Some i -> Some (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
             | None -> Some (l, ""))
  in
  let rec go la lb =
    match (la, lb) with
    | [], [] -> Same
    | (n, v) :: _, [] -> differs ~file "counter" (Printf.sprintf "counter %s" n) v "<absent>"
    | [], (n, v) :: _ -> differs ~file "counter" (Printf.sprintf "counter %s" n) "<absent>" v
    | (na, va) :: xs, (nb, vb) :: ys ->
      let c = String.compare na nb in
      if c < 0 then differs ~file "counter" (Printf.sprintf "counter %s" na) va "<absent>"
      else if c > 0 then differs ~file "counter" (Printf.sprintf "counter %s" nb) "<absent>" vb
      else if String.equal va vb then go xs ys
      else differs ~file "counter" (Printf.sprintf "counter %s" na) va vb
  in
  go (parse a) (parse b)

(* ---- series CSV: name the first diverging window -------------------------- *)

let series_csv ?(file = "") a b =
  let la = split_lines a and lb = split_lines b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> Same
    | x :: xs, y :: ys when String.equal x y -> go (i + 1) xs ys
    | la, lb ->
      let line = match (la, lb) with x :: _, _ -> x | _, y :: _ -> y | _ -> "" in
      let where =
        match split_csv line with
        | name :: "annotation" :: _ :: start :: _ ->
          Printf.sprintf "annotation %s at %sms" name start
        | name :: _kind :: window :: start :: _ ->
          Printf.sprintf "series %s window %s (start %sms)" name window start
        | _ -> Printf.sprintf "line %d" i
      in
      let side = function [] -> "<absent>" | x :: _ -> x in
      differs ~file "series" where (side la) (side lb)
  in
  go 1 la lb

(* ---- journey gap CSV: name the journey and the column --------------------- *)

let journeys ?(file = "") a b =
  let parse s =
    match split_lines s with
    | [] -> ([], [])
    | header :: rows ->
      ( split_csv header,
        List.map
          (fun r ->
            match split_csv r with
            | o :: q :: d :: _ as cells -> ((o, q, d), cells, r)
            | cells -> (("", "", ""), cells, r))
          rows )
  in
  let ha, ra = parse a and hb, rb = parse b in
  if ha <> hb then
    differs ~file "journey" "header" (String.concat "," ha) (String.concat "," hb)
  else
    let jname (o, q, d) = Printf.sprintf "journey dc%s#%s -> dc%s" o q d in
    (* rows are (origin, oseq, dst)-sorted on both sides: merge-walk *)
    let rec go ra rb =
      match (ra, rb) with
      | [], [] -> Same
      | (k, _, r) :: _, [] -> differs ~file "journey" (jname k) r "<absent>"
      | [], (k, _, r) :: _ -> differs ~file "journey" (jname k) "<absent>" r
      | (ka, ca, rowa) :: xs, (kb, cb, rowb) :: ys ->
        let c = compare ka kb in
        if c < 0 then differs ~file "journey" (jname ka) rowa "<absent>"
        else if c > 0 then differs ~file "journey" (jname kb) "<absent>" rowb
        else if String.equal rowa rowb then go xs ys
        else
          (* same journey, different numbers: name the first column off *)
          let rec col hs ca cb =
            match (hs, ca, cb) with
            | h :: _, x :: _, y :: _ when not (String.equal x y) -> (h, x, y)
            | _ :: hs, _ :: ca, _ :: cb -> col hs ca cb
            | _ -> ("row", rowa, rowb)
          in
          let h, x, y = col ha ca cb in
          differs ~file "journey" (Printf.sprintf "%s %s" (jname ka) h) x y
    in
    go ra rb

(* ---- dispatch ------------------------------------------------------------- *)

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let content ~file a b =
  match basename file with
  | "series.csv" -> series_csv ~file a b
  | "gap.csv" -> journeys ~file a b
  | base when ends_with ~suffix:"counters.txt" base || ends_with ~suffix:".counters" base ->
    counters ~file a b
  | _ -> lines ~file a b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let files ~a ~b =
  match (read_file a, read_file b) with
  | ca, cb -> content ~file:(basename a) ca cb

(* compare two artifact directories: every file present in either side,
   name-sorted, one finding per differing or one-sided file *)
let dirs a b =
  let list d =
    if Sys.file_exists d && Sys.is_directory d then
      Sys.readdir d |> Array.to_list
      |> List.filter (fun f -> not (Sys.is_directory (Filename.concat d f)))
      |> List.sort String.compare
    else []
  in
  let fa = list a and fb = list b in
  let all = List.sort_uniq String.compare (fa @ fb) in
  List.filter_map
    (fun f ->
      let ina = List.mem f fa and inb = List.mem f fb in
      if not ina then Some { file = f; kind = "missing"; where = "file"; a = "<absent>"; b = "present" }
      else if not inb then
        Some { file = f; kind = "missing"; where = "file"; a = "present"; b = "<absent>" }
      else
        match
          content ~file:f (read_file (Filename.concat a f)) (read_file (Filename.concat b f))
        with
        | Same -> None
        | Differs d -> Some d)
    all

let render f =
  let where = if f.file = "" then f.where else Printf.sprintf "%s: %s" f.file f.where in
  Printf.sprintf "first divergence at %s\n  A: %s\n  B: %s" where f.a f.b
