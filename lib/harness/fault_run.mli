(** Fixed-seed fault-injection scenario matrix.

    Runs the shared three-datacenter chain deployment (see {!Build}) under
    the paper's §6 failure model — a serializer head crash mid-stream, a
    transient partition, and a latency spike on the tree's busiest edge —
    for Saturn and for the eventual baseline, with a probe installed and a
    {!Faults.Checker} pass over every trace. Four Saturn-only
    reconfiguration rows (§6.2) drive a mid-run epoch switch to
    {!Build.backup_config}: a clean graceful switch, a graceful switch
    composed with a metadata-tree cut, a forced switch after a whole
    serializer chain crashes, and a backup-tree failover while the busiest
    edge is degraded — the cross-epoch checker invariants (marker last
    through the old tree, no duplicate applies across trees, route
    monotonicity) run over all of them.

    Saturn's partition cuts the metadata tree (its failure domain; the
    paper's bulk-data transfer service is the datastore's own, reliable
    channel), while the eventual baseline's partition cuts the bulk links
    it replicates over — its only channel, and an unreliable one, which is
    the point of the comparison.

    The matrix is deterministic in its seed: CI runs it twice and asserts
    the combined digest is byte-identical. *)

type outcome = {
  scenario : string;
  system : string;
  ops : int;  (** client operations completed in the measurement window *)
  vis_mean_ms : float;  (** remote-update visibility, mean *)
  vis_p99_ms : float;
  recovery_ms : float;
      (** time after the last restorative plan event until the last
          fault-era update (origin time before that event) became visible;
          0 when nothing was left to drain. Recorded in the registry's
          [faults.recovery_ms] histogram. *)
  report : Faults.Checker.report;
  digest : string;  (** probe digest of this run *)
  n_events : int;
  flame : (string * int) list;  (** probe event counts by kind, name-sorted *)
  span_us : (string * int) list;  (** matched-span µs by span kind, name-sorted *)
  registry : Stats.Registry.t;
  series : Stats.Series.t;
      (** windowed telemetry of this run (queue depths, apply throughput,
          [series.vis_ms] visibility latency), sealed at run end *)
  fault_at_us : int option;  (** the plan's earliest event; [None] for empty plans *)
  heal_at_us : int option;
      (** the restorative reference that [recovery_ms] measures from: the
          plan's last heal, or its last event when nothing heals *)
  probe : Sim.Probe.t;
      (** the run's kept trace — what [saturn-cli blame --scenario] feeds
          through {!Journey.analyze} and {!Blame.analyze} *)
}

val scenario_names : string list
(** [["ser-crash"; "seq-crash"; "partition"; "latency-spike";
    "reconfig-graceful"; "reconfig-cut"; "reconfig-forced";
    "reconfig-backup"]] — the single source the CLI builds its
    [--scenario] enum and help text from. *)

val run_matrix : ?seed:int -> unit -> outcome list
(** The fixed row set (default seed 42): every fault scenario for Saturn
    and the eventual control, the rows the newcomers were added for — the
    sequencer crash for Eunomia (mirroring the serializer-crash row) and
    the partition for Okapi — and the four Saturn-only reconfiguration
    rows (the baselines have no tree to migrate). *)

val run_scenario :
  ?seed:int ->
  scenario:string ->
  system:[ `Saturn | `Eventual | `Eunomia | `Okapi ] ->
  unit ->
  outcome
(** One cell of the matrix (default seed 42). Only the latency-spike and
    reconfig-backup scenarios pay for the fault-free pre-run that locates
    the busiest edge.
    @raise Invalid_argument on a name outside {!scenario_names}. *)

val series_recovery_ms : outcome -> float option
(** Recovery measured {e from the windowed series}: the start of the first
    window at or after the heal whose [series.vis_ms] p99 is back within
    tolerance of the pre-fault steady state ({!Stats.Series.recovery_window}),
    minus the heal time. [None] when the run had no fault, no pre-fault
    calibration windows, or never recovered. Independent of — and a
    cross-check on — the drain-based [recovery_ms]; the two agree to within
    one window width. *)

val blame : outcome -> Blame.report
(** Optimality-gap attribution over the outcome's trace, against the
    optimal matrix of this module's own deployment spec — what
    [saturn-cli blame --scenario <fault>] prints. *)

val gap_recovery_ms : outcome -> float option
(** Like {!series_recovery_ms} but over [series.gap_ms] — the per-event
    visibility gap above the shortest-bulk-path optimum. Because the
    optimum is constant per (origin, dst) pair, this isolates recovery of
    the {e avoidable} latency: it lands with {!series_recovery_ms} when
    the fault inflated every journey uniformly, and earlier when the tail
    was all route overhead. Reported per scenario in the matrix table
    ("gap rec ms") next to the drain-based [recovery_ms]. *)

val recovery_agrees : outcome -> bool option
(** Whether the two recovery measurements land in the same window ±1 —
    the finest agreement a window-quantized series can certify. [None]
    when {!series_recovery_ms} is [None]. *)

val timeline_string : outcome -> string
(** The recovery-timeline view: one sparkline per series (queue depths,
    apply throughput, visibility p99, the [series.reconfig.dual_tree]
    migration-window gauge) over the common window axis, a marker row
    locating the fault/heal windows ([^]) and any epoch switch ([S]
    graceful, [F] forced — from the series' annotations), and the
    {!series_recovery_ms} / [recovery_ms] cross-check. *)

val print_timeline : outcome -> unit
(** {!timeline_string} on stdout. *)

val matrix_digest : outcome list -> string
(** Digest over every run's probe digest — one string for the CI
    determinism gate. *)

val violations : outcome list -> int

val print : outcome list -> unit
(** The results table, per-run fault counters, invariant verdicts and the
    combined digest, on stdout. *)
