type tier_result = {
  tier : string;
  users : int;
  edges : int;
  gen_words_per_edge : float;
  stream_ops : int;
  stream_words_per_op : float;
  sim_ops : int;
  sim_events : int;
  sim_words_per_op : float;
  gen_ms : float;
  stream_kops_per_s : float;
  sim_events_per_s : float;
  sim_ms : float;
}

(* words allocated so far, minor + major net of promotions (promoted words
   would otherwise be counted twice) *)
let words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let n_dcs = 3
let per_dc = 16
let value_size = 128

let run_tier ?(now_s = fun () -> 0.) ?(stream_ops = 200_000) ~seed tier =
  let module Scale = Workload.Scale in
  (* phase A — generation: O(edges) memory is the claim, words/edge the
     deterministic witness *)
  let t0 = now_s () and w0 = words () in
  let g = Scale.of_tier tier ~seed in
  let gen_ms = (now_s () -. t0) *. 1e3 in
  let gen_words_per_edge = (words () -. w0) /. float_of_int (Scale.n_edges g) in
  (* phase B — streaming: a fixed op budget drawn round-robin across
     datacenters, no simulator; words/op must not depend on the tier *)
  let ops = Scale.Ops.create g ~n_dcs ~value_size ~seed:(seed + 1) in
  let t0 = now_s () and w0 = words () in
  for i = 0 to stream_ops - 1 do
    ignore (Scale.Ops.next ops ~dc:(i mod n_dcs) : Workload.Op.t)
  done;
  let stream_s = now_s () -. t0 in
  let stream_words_per_op = (words () -. w0) /. float_of_int stream_ops in
  let stream_kops_per_s =
    if stream_s > 0. then float_of_int stream_ops /. stream_s /. 1e3 else 0.
  in
  (* phase C — simulation: the smoke geometry (three sites, explicit
     serializer chain) under the tier's key space, probe off, measuring the
     flattened event path itself *)
  let topo = Obs.topo3 () in
  let dc_sites = [| 0; 1; 2 |] in
  let rmap =
    Kvstore.Replica_map.create ~n_dcs ~n_keys:(Scale.Ops.n_keys g) ~assign:(fun key ->
        Scale.Ops.replicas g ~n_dcs ~key)
  in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let spec =
    {
      (Build.default_spec ~topo ~dc_sites ~rmap) with
      Build.saturn_config = Some (Obs.chain_config ~dc_sites);
      partitions = 2;
      frontends = 2;
    }
  in
  let metrics = Metrics.create ~registry engine ~topo ~dc_sites in
  let api, _system = Build.saturn ~registry engine spec metrics in
  let clients = Driver.make_clients ~dc_sites ~per_dc in
  let sim_ops_src = Scale.Ops.create g ~n_dcs ~value_size ~seed:(seed + 2) in
  (* per-kind accounting through the interned fast path: one id lookup at
     setup, one array bump per op *)
  let read_id = Stats.Registry.intern registry "bench.engine.ops.read" in
  let write_id = Stats.Registry.intern registry "bench.engine.ops.write" in
  let remote_id = Stats.Registry.intern registry "bench.engine.ops.remote_read" in
  let next_op c =
    let op = Scale.Ops.next sim_ops_src ~dc:c.Client.preferred_dc in
    (match op with
    | Workload.Op.Read _ -> Stats.Registry.incr_id registry read_id
    | Workload.Op.Write _ -> Stats.Registry.incr_id registry write_id
    | Workload.Op.Remote_read _ -> Stats.Registry.incr_id registry remote_id);
    op
  in
  let t0 = now_s () and w0 = words () in
  let driver_result =
    Driver.run engine api metrics ~clients ~next_op ~warmup:(Sim.Time.of_ms 200)
      ~measure:(Sim.Time.of_sec 1.) ~cooldown:(Sim.Time.of_ms 200)
  in
  let sim_s = now_s () -. t0 in
  let sim_words = words () -. w0 in
  let sim_ops = driver_result.Driver.ops_completed in
  let sim_events = Sim.Engine.events_processed engine in
  {
    tier = Scale.tier_name tier;
    users = Scale.n_users g;
    edges = Scale.n_edges g;
    gen_words_per_edge;
    stream_ops;
    stream_words_per_op;
    sim_ops;
    sim_events;
    sim_words_per_op = (if sim_ops > 0 then sim_words /. float_of_int sim_ops else 0.);
    gen_ms;
    stream_kops_per_s;
    sim_events_per_s = (if sim_s > 0. then float_of_int sim_events /. sim_s else 0.);
    sim_ms = sim_s *. 1e3;
  }

(* ---- saturn-bench-engine/1 --------------------------------------------- *)

let to_json ~seed results =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"saturn-bench-engine/1\",\"seed\":%d,\"tiers\":[" seed);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"tier\":%S,\"users\":%d,\"det\":{\"edges\":%d,\"gen_words_per_edge\":%.2f,\"stream_ops\":%d,\"stream_words_per_op\":%.2f,\"sim_ops\":%d,\"sim_events\":%d,\"sim_words_per_op\":%.2f},\"wall\":{\"gen_ms\":%.1f,\"stream_kops_per_s\":%.1f,\"sim_events_per_s\":%.0f,\"sim_ms\":%.1f}}"
           r.tier r.users r.edges r.gen_words_per_edge r.stream_ops r.stream_words_per_op
           r.sim_ops r.sim_events r.sim_words_per_op r.gen_ms r.stream_kops_per_s
           r.sim_events_per_s r.sim_ms))
    results;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ---- minimal JSON reader ------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "json: %s at offset %d" msg !pos) in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      if peek () <> c then fail (Printf.sprintf "expected %c" c);
      advance ()
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal"
    in
    let string_body () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | c -> fail (Printf.sprintf "unsupported escape \\%c" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((k, v) :: acc)
            | '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elems (v :: acc)
            | ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elems [])
        end
      | '"' -> Str (string_body ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> number ()
      | _ -> fail "unexpected character"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* ---- the gate ----------------------------------------------------------- *)

type check_result = { failures : string list; notes : string list }

let check ~baseline ~fresh ~tolerance =
  let b = Json.parse baseline and f = Json.parse fresh in
  let failures = ref [] and notes = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let str_member k j = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  (match (str_member "schema" b, str_member "schema" f) with
  | Some sb, Some sf when sb = sf -> ()
  | sb, sf ->
    fail "schema mismatch: baseline %s vs fresh %s"
      (Option.value sb ~default:"<missing>")
      (Option.value sf ~default:"<missing>"));
  (match (Json.member "seed" b, Json.member "seed" f) with
  | Some (Json.Num sb), Some (Json.Num sf) when sb = sf -> ()
  | _ -> fail "seed mismatch: deterministic fields are only comparable at equal seeds");
  let tiers_of j =
    match Json.member "tiers" j with
    | Some (Json.Arr ts) ->
      List.filter_map (fun t -> Option.map (fun name -> (name, t)) (str_member "tier" t)) ts
    | _ -> []
  in
  let b_tiers = tiers_of b and f_tiers = tiers_of f in
  if b_tiers = [] then fail "baseline has no tiers";
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name b_tiers) then note "tier %s present only in fresh run" name)
    f_tiers;
  List.iter
    (fun (name, bt) ->
      match List.assoc_opt name f_tiers with
      | None -> fail "tier %s missing from fresh run" name
      | Some ft ->
        let fields section j =
          match Json.member section j with
          | Some (Json.Obj kvs) ->
            List.filter_map (fun (k, v) -> match v with Json.Num x -> Some (k, x) | _ -> None) kvs
          | _ -> []
        in
        let b_det = fields "det" bt and f_det = fields "det" ft in
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k f_det with
            | None -> fail "%s: deterministic field %s missing from fresh run" name k
            | Some fv ->
              (* relative band with a ±tolerance absolute floor, so
                 near-zero baselines are not brittle *)
              let band = tolerance *. Float.max (Float.abs bv) 1.0 in
              if Float.abs (fv -. bv) > band then
                fail "%s: %s = %g, baseline %g (tolerance %.1f%%)" name k fv bv
                  (tolerance *. 100.))
          b_det;
        List.iter
          (fun (k, _) ->
            if not (List.mem_assoc k b_det) then
              fail "%s: new deterministic field %s not in baseline (regenerate it)" name k)
          f_det;
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k (fields "wall" ft) with
            | Some fv when Float.abs bv > 0. ->
              note "%s: %s %+.1f%% (advisory)" name k ((fv -. bv) /. bv *. 100.)
            | Some _ | None -> ())
          (fields "wall" bt))
    b_tiers;
  { failures = List.rev !failures; notes = List.rev !notes }
