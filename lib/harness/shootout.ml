type row = {
  system : string;
  ops : int;
  throughput : float;
  vis_mean_ms : float;
  vis_p50_ms : float;
  vis_p99_ms : float;
  attached_bytes : int;
  stabilization_bytes : int;
  heartbeat_bytes : int;
  bytes_per_op : float;
}

(* fixed order: cheapest metadata family first, matching the Table 2
   hierarchy the shootout is built to reproduce *)
let systems =
  [ "eventual"; "gentlerain"; "eunomia"; "saturn"; "okapi"; "cure"; "orbe"; "cops" ]

let n_keys = 24
let dc_sites = [| 0; 1; 2 |]
let warmup = Sim.Time.of_ms 200
let measure = Sim.Time.of_sec 1.
let cooldown = Sim.Time.of_ms 400

(* the star: one serializer at the central site, every datacenter attached
   to it. No serializer-to-serializer hops, so Saturn's attached bytes are
   one label per payload shipment — the per-label metadata cost the
   shootout compares, not the relaying a deeper tree would add. *)
let star_config ~dc_sites =
  let tree = Saturn.Tree.star ~n_dcs:3 in
  Saturn.Config.create ~tree ~placement:[| 1 |] ~dc_sites ()

let spec () =
  let topo = Obs.topo3 () in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  {
    (Build.default_spec ~topo ~dc_sites ~rmap) with
    Build.saturn_config = Some (star_config ~dc_sites);
  }

let build_api name ~registry engine spec metrics =
  match name with
  | "eventual" -> Build.eventual ~registry engine spec metrics
  | "gentlerain" -> Build.gentlerain ~registry engine spec metrics
  | "eunomia" -> Build.eunomia ~registry engine spec metrics
  | "saturn" -> fst (Build.saturn ~registry engine spec metrics)
  | "okapi" -> Build.okapi ~registry engine spec metrics
  | "cure" -> Build.cure ~registry engine spec metrics
  | "orbe" -> fst (Build.orbe ~registry engine spec metrics)
  | "cops" -> fst (Build.cops ~registry engine spec metrics ~prune_on_write:false)
  | s -> invalid_arg ("Shootout: unknown system " ^ s)

let run_system ?(seed = 42) name =
  if not (List.mem name systems) then invalid_arg ("Shootout: unknown system " ^ name);
  let spec = spec () in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let metrics = Metrics.create ~registry engine ~topo:spec.Build.topo ~dc_sites in
  let api = build_api name ~registry engine spec metrics in
  let clients = Driver.make_clients ~dc_sites ~per_dc:4 in
  let syn =
    Workload.Synthetic.create
      { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
      ~rmap:spec.Build.rmap ~topo:spec.Build.topo ~dc_sites
  in
  let r =
    Driver.run engine api metrics ~clients
      ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Client.preferred_dc)
      ~warmup ~measure ~cooldown
  in
  let cval suffix =
    Stats.Registry.counter_value
      (Stats.Registry.counter registry (Printf.sprintf "meta.bytes.%s.%s" name suffix))
  in
  let attached_bytes = cval "attached" in
  let stabilization_bytes = cval "stabilization" in
  let heartbeat_bytes = cval "heartbeat" in
  let total = attached_bytes + stabilization_bytes + heartbeat_bytes in
  let vis = Metrics.visibility metrics in
  let pct p = if Stats.Sample.is_empty vis then 0. else Stats.Sample.percentile vis p in
  {
    system = name;
    ops = r.Driver.ops_completed;
    throughput = r.Driver.throughput;
    vis_mean_ms = (if Stats.Sample.is_empty vis then 0. else Stats.Sample.mean vis);
    vis_p50_ms = pct 50.;
    vis_p99_ms = pct 99.;
    attached_bytes;
    stabilization_bytes;
    heartbeat_bytes;
    bytes_per_op =
      (if r.Driver.ops_completed = 0 then 0.
       else float_of_int total /. float_of_int r.Driver.ops_completed);
  }

(* the Table 2 metadata hierarchy, as adjacent-family bands on bytes/op *)
let families =
  [
    ("none", [ "eventual" ]);
    ("scalar", [ "gentlerain"; "eunomia"; "saturn" ]);
    ("hybrid", [ "okapi" ]);
    ("vector", [ "cure"; "orbe" ]);
    ("dependencies", [ "cops" ]);
  ]

let ordering_violations rows =
  let bpo name =
    match List.find_opt (fun r -> r.system = name) rows with
    | Some r -> Some r.bytes_per_op
    | None -> None
  in
  let band members =
    match List.filter_map bpo members with
    | [] -> None
    | xs -> Some (List.fold_left min infinity xs, List.fold_left max neg_infinity xs)
  in
  let rec pairs acc = function
    | (na, ma) :: ((nb, mb) :: _ as rest) ->
      let acc =
        match (band ma, band mb) with
        | Some (_, max_a), Some (min_b, _) when max_a >= min_b ->
          Printf.sprintf "%s (max %.2f B/op) not below %s (min %.2f B/op)" na max_a nb min_b
          :: acc
        | _ -> acc
      in
      pairs acc rest
    | _ -> List.rev acc
  in
  pairs [] families

let print rows =
  let table =
    Stats.Table.create ~title:"stabilization shootout (3 DCs, full replication, star Saturn)"
      ~columns:
        [
          "system"; "ops"; "ops/s"; "vis ms"; "p50 ms"; "p99 ms"; "attached B";
          "stab B"; "hb B"; "B/op";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          r.system;
          string_of_int r.ops;
          Printf.sprintf "%.0f" r.throughput;
          Printf.sprintf "%.1f" r.vis_mean_ms;
          Printf.sprintf "%.1f" r.vis_p50_ms;
          Printf.sprintf "%.1f" r.vis_p99_ms;
          string_of_int r.attached_bytes;
          string_of_int r.stabilization_bytes;
          string_of_int r.heartbeat_bytes;
          Printf.sprintf "%.2f" r.bytes_per_op;
        ])
    rows;
  Stats.Table.print table;
  match ordering_violations rows with
  | [] ->
    print_endline
      "metadata ordering: eventual < scalar [gentlerain eunomia saturn] < hybrid [okapi] < \
       vector [cure orbe] < dependencies [cops] -- holds"
  | vs ->
    print_endline "metadata ordering VIOLATED:";
    List.iter (fun v -> Printf.printf "  %s\n" v) vs

(* every field is simulated-time deterministic, so everything lands under
   "det" and the bench-check gate hard-gates all of it; no "wall" section *)
let to_json ~seed rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"saturn-bench-shootout/1\",\"seed\":%d,\"tiers\":[" seed);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"tier\":%S,\"det\":{\"ops\":%d,\"throughput_ops_s\":%.1f,\"vis_mean_ms\":%.3f,\"vis_p50_ms\":%.3f,\"vis_p99_ms\":%.3f,\"meta_attached_bytes\":%d,\"meta_stabilization_bytes\":%d,\"meta_heartbeat_bytes\":%d,\"meta_bytes_per_op\":%.3f}}"
           r.system r.ops r.throughput r.vis_mean_ms r.vis_p50_ms r.vis_p99_ms
           r.attached_bytes r.stabilization_bytes r.heartbeat_bytes r.bytes_per_op))
    rows;
  Buffer.add_string b "]}\n";
  Buffer.contents b
