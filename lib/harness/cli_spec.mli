(** The single source of truth for saturn-cli's subcommand surface.

    The binary builds every [Cmd.info] doc string, the top-level usage
    listing and a startup self-check from this list, and the test suite
    asserts that each name here appears in [saturn-cli --help] — so a
    subcommand can no longer be added to the binary without appearing in
    the help, or documented here without existing. *)

type sub = { name : string; summary : string }

val subs : sub list
(** Registration order — the order the usage listing shows. *)

val names : string list

val summary : string -> string
(** @raise Invalid_argument on a name outside {!names}. *)

val usage : unit -> string
(** The generated "Subcommands:" body — one aligned line per entry. *)
