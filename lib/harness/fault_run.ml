type outcome = {
  scenario : string;
  system : string;
  ops : int;
  vis_mean_ms : float;
  vis_p99_ms : float;
  recovery_ms : float;
  report : Faults.Checker.report;
  digest : string;
  n_events : int;
  flame : (string * int) list;
  span_us : (string * int) list;
  registry : Stats.Registry.t;
  series : Stats.Series.t;
  fault_at_us : int option;
  heal_at_us : int option;
  probe : Sim.Probe.t;
}

let scenario_names =
  [
    "ser-crash"; "seq-crash"; "partition"; "latency-spike"; "reconfig-graceful"; "reconfig-cut";
    "reconfig-forced"; "reconfig-backup";
  ]

let n_keys = 24
let dc_sites = [| 0; 1; 2 |]
let warmup = Sim.Time.of_ms 200
let measure = Sim.Time.of_sec 1.
let cooldown = Sim.Time.of_ms 400

let spec () =
  let topo = Build.topo3 () in
  let rmap = Kvstore.Replica_map.full ~n_dcs:3 ~n_keys in
  {
    (Build.default_spec ~topo ~dc_sites ~rmap) with
    Build.saturn_config = Some (Build.chain_config ~dc_sites);
    (* three chain replicas per serializer, so a head crash heals (§6.1)
       instead of stalling the subtree *)
    serializer_replicas = 3;
  }

let run_driver engine api metrics ~seed ~rmap ~topo =
  let clients = Driver.make_clients ~dc_sites ~per_dc:2 in
  let syn =
    Workload.Synthetic.create
      { Workload.Synthetic.default with n_keys; read_ratio = 0.5; seed }
      ~rmap ~topo ~dc_sites
  in
  Driver.run engine api metrics ~clients
    ~next_op:(fun c -> Workload.Synthetic.next syn ~dc:c.Client.preferred_dc)
    ~warmup ~measure ~cooldown

(* the tree's busiest directed edge, from a dry (fault-free) pre-run: the
   latency-spike scenario needs its target fixed before the faulted run *)
let busiest_edge ~seed =
  let spec = spec () in
  let engine = Sim.Engine.create () in
  let metrics = Metrics.create engine ~topo:spec.Build.topo ~dc_sites in
  let _api, system = Build.saturn engine spec metrics in
  ignore (run_driver engine _api metrics ~seed ~rmap:spec.Build.rmap ~topo:spec.Build.topo);
  match Saturn.System.service system with
  | None -> assert false
  | Some service ->
    List.fold_left
      (fun (best, n) (edge, count) -> if count > n then (edge, count) else (best, n))
      ((0, 1), min_int)
      (Saturn.Service.edge_traffic service)
    |> fst

(* plan timings: all inside the measurement window [200ms, 1200ms] *)
let crash_at = Sim.Time.of_ms 500
let fault_at = Sim.Time.of_ms 400
let heal_at = Sim.Time.of_ms 700
let spike_factor = 8.

(* reconfiguration timings: the switch fires mid-window; the forced
   scenario's serializer crash lands shortly before it, so the old tree is
   already broken when the fallback engages *)
let switch_at = Sim.Time.of_ms 500
let pre_switch_crash_at = Sim.Time.of_ms 450

let plan_for ~scenario ~busiest freg system =
  let open Faults in
  let switch graceful =
    Plan.Switch_config { graceful; config = Build.backup_config ~dc_sites }
  in
  match (scenario, system) with
  | "ser-crash", `Saturn ->
    (* head replica of the middle serializer: chain re-keys, the new head
       redelivers unconfirmed labels, dedup keeps commits exactly-once *)
    Plan.make [ { Plan.at = crash_at; action = Plan.Crash_replica { serializer = "ser1"; replica = 0 } } ]
  | "ser-crash", (`Eventual | `Eunomia | `Okapi) ->
    (* no serializer tree to crash: the fault-free control *)
    Plan.make []
  | "seq-crash", `Eunomia ->
    (* DC 1's sequencer crashes mid-stream, mirroring the ser-crash row:
       local updates keep committing (the sequencer is off the client
       path), remote visibility stalls until failover re-announces *)
    Plan.make [ { Plan.at = crash_at; action = Plan.Crash_replica { serializer = "seq1"; replica = 0 } } ]
  | "seq-crash", (`Saturn | `Eventual | `Okapi) ->
    (* no per-DC sequencer in these systems: the fault-free control *)
    Plan.make []
  | "partition", `Saturn ->
    (* partition the metadata tree away from site 2; bulk data keeps
       flowing (the datastore's channel is reliable, §2) *)
    let metadata (name, _) =
      String.length name >= 5 && (String.sub name 0 5 = "tree." || String.sub name 0 7 = "attach.")
    in
    let cut = List.filter metadata (Registry.links_crossing freg ~side:[ 2 ]) in
    Plan.make
      (List.concat_map
         (fun (name, _) ->
           [
             { Plan.at = fault_at; action = Plan.Cut name };
             { Plan.at = heal_at; action = Plan.Heal name };
           ])
         cut)
  | "partition", (`Eventual | `Eunomia | `Okapi) ->
    (* the baselines replicate over the bulk links themselves *)
    Plan.make
      [
        { Plan.at = fault_at; action = Plan.Partition [ 2 ] };
        { Plan.at = heal_at; action = Plan.Heal_partition [ 2 ] };
      ]
  | "latency-spike", `Saturn ->
    let a, b = busiest in
    let link = Printf.sprintf "tree.s%d->s%d.data" a b in
    Plan.make
      [
        { Plan.at = fault_at; action = Plan.Latency_factor { link; factor = spike_factor } };
        { Plan.at = heal_at; action = Plan.Latency_reset link };
      ]
  | "latency-spike", (`Eventual | `Eunomia | `Okapi) ->
    (* the bulk link between the datacenters the busiest tree edge joins
       (serializer s serves datacenter s on the chain) *)
    let a, b = busiest in
    let link = Printf.sprintf "bulk.dc%d->dc%d" a b in
    Plan.make
      [
        { Plan.at = fault_at; action = Plan.Latency_factor { link; factor = spike_factor } };
        { Plan.at = heal_at; action = Plan.Latency_reset link };
      ]
  | "reconfig-graceful", `Saturn ->
    (* clean graceful epoch change: the marker flushes the old chain and
       the dual-tree window closes on its own *)
    Plan.make [ { Plan.at = switch_at; action = switch true } ]
  | "reconfig-cut", `Saturn ->
    (* graceful switch under fire: the old tree's middle data edge is down
       across the switch, so the epoch-change marker is itself delayed by
       retransmission and the dual-tree window stretches toward the heal *)
    Plan.make
      [
        { Plan.at = fault_at; action = Plan.Cut "tree.s1->s2.data" };
        { Plan.at = switch_at; action = switch true };
        { Plan.at = heal_at; action = Plan.Heal "tree.s1->s2.data" };
      ]
  | "reconfig-forced", `Saturn ->
    (* the old tree loses a whole serializer chain just before the switch;
       the forced path abandons the marker protocol for timestamp order on
       the new tree (§6.2's fallback) *)
    Plan.make
      [
        { Plan.at = pre_switch_crash_at; action = Plan.Crash_serializer "ser1" };
        { Plan.at = switch_at; action = switch false };
      ]
  | "reconfig-backup", `Saturn ->
    (* failover to the pre-computed backup tree while the old tree's
       busiest edge is degraded — §6.2's motivation for keeping backups *)
    let a, b = busiest in
    let link = Printf.sprintf "tree.s%d->s%d.data" a b in
    Plan.make
      [
        { Plan.at = fault_at; action = Plan.Latency_factor { link; factor = spike_factor } };
        { Plan.at = switch_at; action = switch true };
        { Plan.at = heal_at; action = Plan.Latency_reset link };
      ]
  | ( ("reconfig-graceful" | "reconfig-cut" | "reconfig-forced" | "reconfig-backup"),
      (`Eventual | `Eunomia | `Okapi) ) ->
    (* no serializer tree to migrate: the fault-free control *)
    Plan.make []
  | s, _ -> invalid_arg ("Fault_run: unknown scenario " ^ s)

let fault_ref plan =
  match Faults.Plan.last_heal_time plan with
  | Some t -> Some t
  | None ->
    List.fold_left
      (fun acc (e : Faults.Plan.event) ->
        Some (match acc with None -> e.at | Some a -> Sim.Time.max a e.at))
      None (Faults.Plan.events plan)

(* the onset of the fault, for the timeline: the plan's earliest event *)
let fault_onset plan =
  List.fold_left
    (fun acc (e : Faults.Plan.event) ->
      Some (match acc with None -> e.at | Some a -> Sim.Time.min a e.at))
    None (Faults.Plan.events plan)

let run_one ~seed ~scenario ~system ~busiest =
  let spec = spec () in
  let engine = Sim.Engine.create () in
  let registry = Stats.Registry.create () in
  let probe = Sim.Probe.create ~keep:true () in
  let freg = Faults.Registry.create () in
  let metrics = Metrics.create ~registry engine ~topo:spec.Build.topo ~dc_sites in
  let recovery_hist =
    Stats.Registry.histogram registry "faults.recovery_ms" ~lo:0. ~hi:2000. ~buckets:40
  in
  let recovery = ref None in
  let series = Stats.Series.create () in
  let vis_series = Stats.Series.hist series "series.vis_ms" in
  let optimal =
    Blame.optimal_matrix ~topo:spec.Build.topo ~dc_sites ~bulk_factor:spec.Build.bulk_factor
  in
  let gap_series = Stats.Series.hist series "series.gap_ms" in
  let fault_at_us = ref None in
  let heal_at_us = ref None in
  let ops =
    Sim.Probe.with_probe probe (fun () ->
        let api =
          match system with
          | `Saturn -> fst (Build.saturn ~registry ~series ~faults:freg engine spec metrics)
          | `Eventual -> Build.eventual ~series ~faults:freg engine spec metrics
          | `Eunomia -> Build.eunomia ~series ~faults:freg engine spec metrics
          | `Okapi -> Build.okapi ~series ~faults:freg engine spec metrics
        in
        let plan = plan_for ~scenario ~busiest freg system in
        let (_ : Faults.Injector.t) = Faults.Injector.arm ~registry engine freg plan in
        fault_at_us := Option.map Sim.Time.to_us (fault_onset plan);
        heal_at_us := Option.map Sim.Time.to_us (fault_ref plan);
        (* annotate the series with the plan's marks, deduplicated (a
           partition cuts several links at one instant): the timeline and
           the digest-covered CSV/JSON dumps render them *)
        List.iter
          (fun (us, name) -> Stats.Series.annotate series ~us name)
          (List.sort_uniq compare
             (List.map
                (fun (e : Faults.Plan.event) ->
                  ( Sim.Time.to_us e.at,
                    match e.action with
                    | Faults.Plan.Switch_config { graceful = true; _ } -> "switch.graceful"
                    | Faults.Plan.Switch_config { graceful = false; _ } -> "switch.forced"
                    | Faults.Plan.Heal _ | Faults.Plan.Heal_partition _
                    | Faults.Plan.Latency_reset _ -> "heal"
                    | _ -> "fault" ))
                (Faults.Plan.events plan)));
        Metrics.subscribe metrics (fun ~dc ~key:_ ~origin_dc ~origin_time ~value:_ ->
            let now = Sim.Engine.now engine in
            let ms = Sim.Time.to_ms_float (Sim.Time.sub now origin_time) in
            Stats.Series.observe vis_series ~now ms;
            (* the same event's gap over the shortest-bulk-path optimum:
               during a fault the gap series spikes while the optimum stays
               put, so gap recovery isolates the avoidable part *)
            Stats.Series.observe gap_series ~now
              (ms -. (float_of_int optimal.(origin_dc).(dc) /. 1000.)));
        (match fault_ref plan with
        | None -> ()
        | Some fr ->
          (* recovery = drain time of the fault-era backlog: the last
             pre-heal-originated update to become visible after the heal *)
          Metrics.subscribe metrics (fun ~dc:_ ~key:_ ~origin_dc:_ ~origin_time ~value:_ ->
              let now = Sim.Engine.now engine in
              if Sim.Time.compare origin_time fr <= 0 && Sim.Time.compare now fr > 0 then
                let lag = Sim.Time.sub now fr in
                match !recovery with
                | Some prev when Sim.Time.compare prev lag >= 0 -> ()
                | _ -> recovery := Some lag));
        (run_driver engine api metrics ~seed ~rmap:spec.Build.rmap ~topo:spec.Build.topo)
          .Driver.ops_completed)
  in
  Stats.Series.seal series ~now:(Sim.Engine.now engine);
  let recovery_ms =
    match !recovery with None -> 0. | Some lag -> Sim.Time.to_ms_float lag
  in
  Stats.Histogram.add recovery_hist recovery_ms;
  List.iter
    (fun (k, n) -> Stats.Registry.incr ~by:n (Stats.Registry.counter registry ("probe." ^ k)))
    (Sim.Probe.counts_by_kind probe);
  let vis = Metrics.visibility metrics in
  {
    scenario;
    system =
      (match system with
      | `Saturn -> "saturn"
      | `Eventual -> "eventual"
      | `Eunomia -> "eunomia"
      | `Okapi -> "okapi");
    ops;
    vis_mean_ms = (if Stats.Sample.is_empty vis then 0. else Stats.Sample.mean vis);
    vis_p99_ms = (if Stats.Sample.is_empty vis then 0. else Stats.Sample.percentile vis 99.);
    recovery_ms;
    report = Faults.Checker.analyze probe;
    digest = Sim.Probe.digest probe;
    n_events = Sim.Probe.count probe;
    flame = Sim.Probe.counts_by_kind probe;
    span_us = Sim.Probe.span_totals_us probe;
    registry;
    series;
    fault_at_us = !fault_at_us;
    heal_at_us = !heal_at_us;
    probe;
  }

let run_scenario ?(seed = 42) ~scenario ~system () =
  if not (List.mem scenario scenario_names) then
    invalid_arg ("Fault_run.run_scenario: unknown scenario " ^ scenario);
  (* only the latency-spike and backup-failover plans need the busiest
     edge; skip the dry pre-run otherwise *)
  let busiest =
    if List.mem scenario [ "latency-spike"; "reconfig-backup" ] then busiest_edge ~seed
    else (0, 1)
  in
  run_one ~seed ~scenario ~system ~busiest

(* blame the scenario's own trace against the same deployment's optimum:
   the spec (topology, bulk factor) is this module's, so the CLI cannot
   pair a fault trace with the wrong matrix *)
let blame o =
  let spec = spec () in
  let optimal =
    Blame.optimal_matrix ~topo:spec.Build.topo ~dc_sites ~bulk_factor:spec.Build.bulk_factor
  in
  Blame.analyze ~optimal (Journey.analyze o.probe)

let recovery_on o name =
  match (o.fault_at_us, o.heal_at_us) with
  | Some fault_at_us, Some heal_at_us ->
    let window_us = Sim.Time.to_us (Stats.Series.window o.series) in
    (match Stats.Series.kind_of o.series name with
    | None -> None
    | Some _ ->
      Stats.Series.recovery_window ~window_us ~fault_at_us ~heal_at_us ~slack:1.0
        (Stats.Series.primary o.series name)
      |> Option.map (fun w ->
             (* quantized to window starts, like the series itself *)
             (float_of_int (w * window_us) -. float_of_int heal_at_us) /. 1000.))
  | _ -> None

let series_recovery_ms o = recovery_on o "series.vis_ms"
let gap_recovery_ms o = recovery_on o "series.gap_ms"

let recovery_agrees o =
  match (series_recovery_ms o, o.heal_at_us) with
  | Some s_ms, Some heal ->
    let window_us = Sim.Time.to_us (Stats.Series.window o.series) in
    (* both recovery points, quantized to the window that contains them:
       the series can only answer at window granularity *)
    let s_win = (heal + int_of_float (s_ms *. 1000.)) / window_us in
    let d_win = (heal + int_of_float (o.recovery_ms *. 1000.)) / window_us in
    Some (abs (s_win - d_win) <= 1)
  | _ -> None

let timeline_string o =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sr = o.series in
  let n = Stats.Series.n_windows sr in
  if n = 0 then pf "%s/%s: no closed windows\n" o.scenario o.system
  else begin
    let window_us = Sim.Time.to_us (Stats.Series.window sr) in
    pf "%s/%s timeline: %d windows x %d ms\n" o.scenario o.system n (window_us / 1000);
    let names = Stats.Series.names sr in
    let name_w = List.fold_left (fun a s -> max a (String.length s)) 0 names in
    List.iter
      (fun name ->
        let v = Stats.Series.primary sr name in
        let peak = Array.fold_left max 0. v in
        pf "  %-*s |%s| peak %.1f\n" name_w name (Stats.Series.sparkline v) peak)
      names;
    let switches =
      List.filter
        (fun (_, name) -> String.length name >= 7 && String.sub name 0 7 = "switch.")
        (Stats.Series.annotations sr)
    in
    (if o.fault_at_us <> None || switches <> [] then begin
       let marks = Bytes.make n ' ' in
       let mark us c =
         let i = us / window_us in
         if i >= 0 && i < n then Bytes.set marks i c
       in
       Option.iter (fun f -> mark f '^') o.fault_at_us;
       Option.iter (fun h -> mark h '^') o.heal_at_us;
       (* switch marks win a shared window: the epoch boundary is the rarer
          and more interesting event *)
       List.iter
         (fun (us, name) -> mark us (if String.equal name "switch.forced" then 'F' else 'S'))
         switches;
       let legend =
         match (o.fault_at_us <> None, switches <> []) with
         | true, true -> "^ = fault / heal, S/F = switch (graceful/forced)"
         | false, true -> "S/F = switch (graceful/forced)"
         | _ -> "^ = fault / heal"
       in
       pf "  %-*s |%s| %s\n" name_w "" (Bytes.to_string marks) legend
     end);
    (match series_recovery_ms o with
    | Some ms ->
      pf
        "  series recovery (vis p99 back to steady state): %.1f ms after heal; drain-based \
         faults.recovery_ms: %.1f; same window +/-1: %s\n"
        ms o.recovery_ms
        (match recovery_agrees o with Some true -> "yes" | Some false -> "NO" | None -> "n/a")
    | None -> ());
    match gap_recovery_ms o with
    | Some ms ->
      pf "  gap recovery (optimality gap p99 back to steady state): %.1f ms after heal\n" ms
    | None -> ()
  end;
  Buffer.contents buf

let print_timeline o = print_string (timeline_string o)

(* one row per (scenario, system) pair that exercises something: every
   scenario runs Saturn and the eventual control, the sequencer crash adds
   the Eunomia row it was built for, and the partition adds an Okapi row
   (its stabilization rounds must survive a cut bulk fabric) *)
let matrix_rows =
  [
    ("ser-crash", `Saturn);
    ("ser-crash", `Eventual);
    ("seq-crash", `Eunomia);
    ("partition", `Saturn);
    ("partition", `Eventual);
    ("partition", `Okapi);
    ("latency-spike", `Saturn);
    ("latency-spike", `Eventual);
    (* reconfiguration is Saturn-only: the baselines have no tree to
       migrate, so a control row would be a plain fault-free run *)
    ("reconfig-graceful", `Saturn);
    ("reconfig-cut", `Saturn);
    ("reconfig-forced", `Saturn);
    ("reconfig-backup", `Saturn);
  ]

let run_matrix ?(seed = 42) () =
  let busiest = busiest_edge ~seed in
  List.map (fun (scenario, system) -> run_one ~seed ~scenario ~system ~busiest) matrix_rows

let matrix_digest outcomes =
  Digest.to_hex (Digest.string (String.concat "," (List.map (fun o -> o.digest) outcomes)))

let violations outcomes =
  List.fold_left (fun n o -> n + List.length o.report.Faults.Checker.violations) 0 outcomes

let print outcomes =
  let table =
    Stats.Table.create ~title:"fault scenario matrix"
      ~columns:
        [
          "scenario"; "system"; "ops"; "vis ms"; "p99 ms"; "recovery ms"; "gap rec ms"; "resends";
          "drops"; "head-chg"; "switch"; "violations";
        ]
  in
  List.iter
    (fun o ->
      let r = o.report in
      Stats.Table.add_row table
        [
          o.scenario;
          o.system;
          string_of_int o.ops;
          Printf.sprintf "%.1f" o.vis_mean_ms;
          Printf.sprintf "%.1f" o.vis_p99_ms;
          Printf.sprintf "%.1f" o.recovery_ms;
          (match gap_recovery_ms o with Some ms -> Printf.sprintf "%.1f" ms | None -> "-");
          string_of_int r.Faults.Checker.resends;
          string_of_int (r.Faults.Checker.drops_cut + r.Faults.Checker.drops_down);
          string_of_int r.Faults.Checker.head_changes;
          string_of_int r.Faults.Checker.switches;
          string_of_int (List.length r.Faults.Checker.violations);
        ])
    outcomes;
  Stats.Table.print table;
  List.iter
    (fun o ->
      if not (Faults.Checker.ok o.report) then begin
        Printf.printf "%s/%s:\n" o.scenario o.system;
        Format.printf "%a@." Faults.Checker.pp o.report
      end)
    outcomes;
  Printf.printf "matrix digest: %s (%d probe events)\n"
    (matrix_digest outcomes)
    (List.fold_left (fun n o -> n + o.n_events) 0 outcomes)
