(** Differential run localization: not "the runs differ" but {e where
    they first diverge}.

    The determinism gates double-run an experiment and compare artifacts;
    when a raw [diff] fails, the operator is left staring at two 2000-row
    CSVs. This module understands the repo's artifact formats and reports
    the first diverging {e unit of meaning} instead:

    - series CSV → the first diverging window, named by series and
      window start time;
    - counter files ("name value" lines, ['#'] comments) → the first
      counter whose value drifts or that exists on one side only
      (merge-walked over the name-sorted lists, so one missing counter
      is one finding, not a cascade);
    - journey gap CSV → the first diverging journey, named by identity
      and the first column that differs ("journey dc0#17 -> dc2 gap_us");
    - anything else → the first differing line number.

    All localizers are pure string functions ({!content} dispatches on
    basename); {!files}/{!dirs} add the IO. Deterministic throughout. *)

type finding = {
  file : string;  (** [""] when comparing raw content *)
  kind : string;  (** ["series" | "counter" | "journey" | "line" | "missing"] *)
  where : string;  (** human-readable locator of the first divergence *)
  a : string;  (** the A side at that point, [ "<absent>"] if one-sided *)
  b : string;
}

type result = Same | Differs of finding

val lines : ?file:string -> string -> string -> result
val counters : ?file:string -> string -> string -> result
val series_csv : ?file:string -> string -> string -> result
val journeys : ?file:string -> string -> string -> result

val content : file:string -> string -> string -> result
(** Dispatch to the right localizer from [file]'s basename:
    [series.csv], [gap.csv], [*counters.txt]/[*.counters], else lines. *)

val files : a:string -> b:string -> result
(** Read both paths and localize ([a]'s basename picks the format). *)

val dirs : string -> string -> finding list
(** Compare two artifact directories file-by-file (union of both sides,
    name-sorted): one finding per differing file — its first divergence —
    or per file present on only one side. Empty means identical. *)

val render : finding -> string
(** Three lines: locator, A value, B value. *)
