(** Raw engine speed per scale tier, and the perf-regression gate over it.

    [bench -- engine] runs three phases per {!Workload.Scale} tier —
    graph generation, op streaming, and a fixed Saturn simulation — and
    records two kinds of numbers:

    - {e deterministic} ("det"): edge counts, op counts, engine event
      counts, and [Gc] allocated words per op/edge. For a fixed seed and
      compiler these are pure functions of the code, so CI hard-gates them
      (within a tolerance for words, which may drift slightly across
      compiler point releases).
    - {e wall-clock} ("wall"): events/sec, ops/sec, milliseconds. Shared
      CI runners make these noisy, so the gate only reports them.

    Wall-clock time enters through the [now_s] parameter (seconds, any
    epoch); the library itself never reads an ambient clock, keeping the
    deterministic/advisory split architectural. *)

type tier_result = {
  tier : string;
  users : int;
  (* deterministic *)
  edges : int;
  gen_words_per_edge : float;
  stream_ops : int;
  stream_words_per_op : float;
  sim_ops : int;
  sim_events : int;
  sim_words_per_op : float;
  (* wall-clock, advisory *)
  gen_ms : float;
  stream_kops_per_s : float;
  sim_events_per_s : float;
  sim_ms : float;
}

val run_tier :
  ?now_s:(unit -> float) -> ?stream_ops:int -> seed:int -> Workload.Scale.tier -> tier_result
(** One tier. [now_s] defaults to a constant clock (wall fields read 0);
    [stream_ops] is the phase-B op budget (default 200_000). *)

val to_json : seed:int -> tier_result list -> string
(** The [saturn-bench-engine/1] document, one line. *)

(** Minimal JSON reader for the gate — just enough for BENCH_*.json
    documents (objects, arrays, numbers, strings, bools, null). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> t
  (** @raise Failure on malformed input. *)

  val member : string -> t -> t option
end

type check_result = {
  failures : string list;  (** deterministic drift — the gate fails *)
  notes : string list;  (** advisory wall-clock deltas *)
}

val check : baseline:string -> fresh:string -> tolerance:float -> check_result
(** Compares two [saturn-bench-engine/1] documents (raw JSON strings).
    Every "det" field of every baseline tier must exist in the fresh run
    within relative [tolerance]; missing tiers, missing or extra "det"
    fields, and schema mismatches are failures. "wall" fields only
    produce notes. @raise Failure if either document is not valid JSON. *)
