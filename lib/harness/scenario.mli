(** Pre-packaged comparative experiment runs used by the benchmark harness
    and the larger tests. One [setup] describes a deployment + workload;
    {!run} executes it for one system and returns the measurements. *)

type system = Saturn_sys | Saturn_peer | Eventual | Gentlerain | Cure | Eunomia | Okapi

val system_name : system -> string
val all_systems : system list
(** Eventual, Saturn, GentleRain, Eunomia, Okapi, Cure — the Figures 5, 7, 8
    lineup extended with the two follow-up protocols. *)

type setup = {
  n_dcs : int;
  n_keys : int;
  correlation : Workload.Keyspace.correlation;
  value_size : int;
  read_ratio : float;
  remote_read_ratio : float;
  clients_per_dc : int;
  partitions : int;
  warmup : Sim.Time.t;
  measure : Sim.Time.t;
  cooldown : Sim.Time.t;
  seed : int;
  saturn_config : Saturn.Config.t option;  (** [None] = run the generator *)
  serializer_replicas : int;  (** chain-replication factor per serializer *)
  bulk_factor : float;  (** bulk-path inflation; 1.0 = shortest path *)
}

val default_setup : setup
(** 7 datacenters (all EC2 regions), the paper's default workload knobs
    (2 B values, 90:10, exponential correlation, 0% remote reads), and a
    short-but-stable simulated window. *)

type outcome = {
  system : system;
  throughput : float;
  ops : int;
  mean_visibility_ms : float;
  extra_visibility_ms : float;
  p90_visibility_ms : float;
  metrics : Metrics.t;
}

val dc_sites : setup -> Sim.Topology.site array
val replica_map : setup -> Kvstore.Replica_map.t
(** Deterministic in the setup's seed. *)

val run : system -> setup -> outcome

val run_with : ?rmap:Kvstore.Replica_map.t -> system -> setup -> outcome
(** Like {!run} with an explicit replica map (overrides the correlation
    pattern). *)

val run_all : setup -> outcome list
(** {!all_systems} under identical workloads. *)

val solved_config : setup -> Saturn.Config.t
(** The Algorithm-3 configuration for this setup (memoized per setup shape). *)

(** {2 Facebook-based benchmark (§7.4)} *)

type social_setup = {
  n_users : int;
  value_size : int;
  min_replicas : int;
  max_replicas : int;
  social_clients_per_dc : int;  (** users sampled as active clients *)
  s_warmup : Sim.Time.t;
  s_measure : Sim.Time.t;
  s_cooldown : Sim.Time.t;
  s_seed : int;
}

val default_social_setup : social_setup

val run_social : system -> social_setup -> outcome
(** Synthetic Facebook graph + Benevenuto op mix + replication-constrained
    partitioning over the seven EC2 regions. *)
