type t = {
  engine : Sim.Engine.t;
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  bulk_factor : float;
  mutable start_at : Sim.Time.t;
  mutable end_at : Sim.Time.t;
  visibility : Stats.Sample.t;
  extra : Stats.Sample.t;
  pairs : (int * int, Stats.Sample.t) Hashtbl.t;
  count : Stats.Registry.counter;
  mutable observers :
    (dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit) list;
}

let create ?(bulk_factor = 1.0) ?registry engine ~topo ~dc_sites =
  let registry = match registry with Some r -> r | None -> Stats.Registry.create () in
  {
    engine;
    topo;
    dc_sites;
    bulk_factor;
    start_at = Sim.Time.zero;
    end_at = Sim.Time.infinity;
    visibility = Stats.Sample.create ();
    extra = Stats.Sample.create ();
    pairs = Hashtbl.create 64;
    count = Stats.Registry.counter registry "metrics.visible_in_window";
    observers = [];
  }

let set_window t ~start_at ~end_at =
  t.start_at <- start_at;
  t.end_at <- end_at

let in_window t =
  let now = Sim.Engine.now t.engine in
  Sim.Time.compare now t.start_at >= 0 && Sim.Time.compare now t.end_at <= 0

let pair_visibility t ~origin ~dest =
  match Hashtbl.find_opt t.pairs (origin, dest) with
  | Some s -> s
  | None ->
    let s = Stats.Sample.create () in
    Hashtbl.replace t.pairs (origin, dest) s;
    s

let subscribe t f = t.observers <- f :: t.observers

let on_visible t ~dc ~key ~origin_dc ~origin_time ~value =
  List.iter (fun f -> f ~dc ~key ~origin_dc ~origin_time ~value) t.observers;
  ignore key;
  if in_window t then begin
    let now = Sim.Engine.now t.engine in
    let latency = Sim.Time.sub now origin_time in
    let optimal =
      let lat = Sim.Topology.latency t.topo t.dc_sites.(origin_dc) t.dc_sites.(dc) in
      Sim.Time.of_us (int_of_float (float_of_int (Sim.Time.to_us lat) *. t.bulk_factor))
    in
    Stats.Registry.incr t.count;
    Stats.Sample.add_time t.visibility latency;
    Stats.Sample.add t.extra (Sim.Time.to_ms_float (Sim.Time.sub latency optimal));
    Stats.Sample.add_time (pair_visibility t ~origin:origin_dc ~dest:dc) latency
  end

let visibility t = t.visibility
let extra_visibility t = t.extra
let visible_count t = Stats.Registry.counter_value t.count
