(** Builders: instantiate each system behind the uniform {!Api.t}. *)

type spec = {
  topo : Sim.Topology.t;
  dc_sites : Sim.Topology.site array;
  partitions : int;
  frontends : int;
  cost : Saturn.Cost_model.t;
  rmap : Kvstore.Replica_map.t;
  saturn_config : Saturn.Config.t option;
      (** serializer tree for Saturn builders; when [None], a configuration
          is computed with the generator (uniform weights) *)
  serializer_replicas : int;
  bulk_factor : float;  (** bulk-path inflation; 1.0 = shortest path *)
}

val default_spec :
  topo:Sim.Topology.t ->
  dc_sites:Sim.Topology.site array ->
  rmap:Kvstore.Replica_map.t ->
  spec

val topo3 : unit -> Sim.Topology.t
(** The three-site (west/central/east) geography the smoke and fault
    scenarios share: unequal latencies, so tree placement matters. *)

val chain_config : dc_sites:Sim.Topology.site array -> Saturn.Config.t
(** An explicit three-serializer chain (0–1–2, one per datacenter) with
    small artificial delays — guarantees serializer-to-serializer hops,
    which a solved three-site configuration may optimize away. *)

val backup_config : dc_sites:Sim.Topology.site array -> Saturn.Config.t
(** A pre-computed backup tree for the same three datacenters (§6.2): two
    serializers at the outer sites, datacenters 0 and 1 attached to the
    first. The reconfiguration scenarios switch to it mid-run. *)

val solve_config : spec -> Saturn.Config.t
(** Runs the configuration generator (Algorithm 3) for the spec's
    datacenters, weighting pairs by shared keys. *)

val saturn :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?faults:Faults.Registry.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  Api.t * Saturn.System.t
(** [registry] collects the deployment's counters (see
    {!Saturn.System.create}); [series] receives windowed queue-depth and
    throughput telemetry (see {!Stats.Series}); [faults] receives the
    deployment's breakable
    pieces via {!Faults.Registry.bind_system}, so a fault plan can be armed
    against it. *)

val saturn_peer :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?faults:Faults.Registry.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  Api.t * Saturn.System.t
(** The P-configuration: timestamp order only, no serializer tree. *)

val eventual :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?faults:Faults.Registry.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  Api.t
(** [faults] receives the baseline's bulk links via
    {!Faults.Registry.bind_fabric}. For every baseline builder, [registry]
    enables per-op metadata-byte accounting: the builder registers
    [meta.bytes.<system>.*] counters via {!Stats.Meta_bytes}. *)

val gentlerain :
  ?registry:Stats.Registry.t -> ?series:Stats.Series.t -> Sim.Engine.t -> spec -> Metrics.t -> Api.t

val cure :
  ?registry:Stats.Registry.t -> ?series:Stats.Series.t -> Sim.Engine.t -> spec -> Metrics.t -> Api.t

val cops :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  prune_on_write:bool ->
  Api.t * Baselines.Cops.t

val orbe :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  Api.t * Baselines.Orbe.t
(** Dependency-matrix explicit checking; sound under full replication only
    (see {!Baselines.Orbe}). *)

val eunomia :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?faults:Faults.Registry.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  Api.t
(** Deferred update stabilization via per-DC sequencers. [faults] receives
    the bulk links ({!Faults.Registry.bind_fabric}) plus one crashable
    serializer per datacenter ([seq0], [seq1], …) mapping serializer-crash
    plan events onto sequencer failover. *)

val okapi :
  ?registry:Stats.Registry.t ->
  ?series:Stats.Series.t ->
  ?faults:Faults.Registry.t ->
  Sim.Engine.t ->
  spec ->
  Metrics.t ->
  Api.t
(** Hybrid vector/scalar stable time with a universal stability condition
    (see {!Baselines.Okapi}). *)
