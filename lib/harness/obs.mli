(** The observability smoke scenario: a small fixed-seed Saturn run that
    exercises every traced subsystem — engine steps, link traffic,
    serializer hops and artificial delays on an explicit three-serializer
    chain, sink emissions and proxy applies — with a probe installed and
    every counter collected in one registry.

    Because the simulator is deterministic, the probe digest is a pure
    function of the seed: CI runs the scenario twice and asserts the two
    digests are byte-identical. *)

type result = {
  digest : string;  (** FNV-1a digest of the JSONL trace *)
  n_events : int;  (** probe events recorded *)
  ops : int;  (** client operations completed in the measurement window *)
  registry : Stats.Registry.t;
  series : Stats.Series.t;  (** windowed telemetry, sealed at run end *)
  probe : Sim.Probe.t;
  blame : Blame.report;
      (** optimality-gap attribution over the run's complete journeys;
          rendered as the [blame.txt]/[gap.csv] artifacts and folded into
          the counter baseline as the [blame.*] family *)
}

val topo3 : unit -> Sim.Topology.t
(** The three-site (west/central/east) geography the smoke and fault
    scenarios share: unequal latencies, so tree placement matters. *)

val chain_config : dc_sites:Sim.Topology.site array -> Saturn.Config.t
(** An explicit three-serializer chain (0–1–2, one per datacenter) with
    small artificial delays — guarantees serializer-to-serializer hops,
    which a solved three-site configuration may optimize away. *)

val smoke : ?seed:int -> unit -> result
(** Runs the scenario (default seed 42). Pure apart from simulation. The
    registry also collects per-subsystem matched-span time as
    [span.<kind>.us] counters next to the [probe.*] event counts, and each
    windowed series' total sample count as [series.<name>.n] counters so
    the counter gate catches a series going silent. Next to [series.vis_ms]
    a [series.gap_ms] histogram series records each visible event's gap
    over its shortest-bulk-path optimum — the time-resolved face of the
    blame report. *)

val run_smoke : ?seed:int -> ?out_dir:string -> unit -> result
(** {!smoke}, then prints the registry table and the digest to stdout and,
    when [out_dir] is given, writes the artifacts. *)

(** {2 Probe-counter regression gate}

    The smoke run's counters are deterministic for a given build, but they
    legitimately drift as the code evolves (new instrumentation, changed
    batching). CI therefore checks them against a checked-in baseline with
    a tolerance band instead of byte equality: a small drift passes, an
    order-of-magnitude regression (a probe silently disabled, a subsystem
    gone quiet) fails. *)

val write_counters : result -> path:string -> unit
(** Writes every counter of the run as ["name value"] lines, name-sorted
    (the baseline format of {!check_counters}). *)

val check_counters :
  result -> baseline:string -> tolerance:float -> (unit, string list) Stdlib.result
(** Compares the run against a baseline file. Each baseline counter must
    exist in the run and lie within [± tolerance × baseline] (at least
    ±1, so zero baselines are not brittle). [Error] lists every failure. *)
