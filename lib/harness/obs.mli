(** The observability smoke scenario: a small fixed-seed Saturn run that
    exercises every traced subsystem — engine steps, link traffic,
    serializer hops and artificial delays on an explicit three-serializer
    chain, sink emissions and proxy applies — with a probe installed and
    every counter collected in one registry.

    Because the simulator is deterministic, the probe digest is a pure
    function of the seed: CI runs the scenario twice and asserts the two
    digests are byte-identical. *)

type result = {
  digest : string;  (** FNV-1a digest of the JSONL trace *)
  n_events : int;  (** probe events recorded *)
  ops : int;  (** client operations completed in the measurement window *)
  registry : Stats.Registry.t;
  probe : Sim.Probe.t;
}

val smoke : ?seed:int -> unit -> result
(** Runs the scenario (default seed 42). Pure apart from simulation. *)

val write_artifacts : result -> out_dir:string -> string * string
(** Writes [trace.jsonl] and [trace.digest] under [out_dir] (created if
    missing); returns both paths. *)

val run_smoke : ?seed:int -> ?out_dir:string -> unit -> result
(** {!smoke}, then prints the registry table and the digest to stdout and,
    when [out_dir] is given, writes the artifacts. *)
