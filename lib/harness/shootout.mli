(** The stabilization shootout: every system — Saturn and the seven
    baselines' worth of causal machinery plus the eventual control — on one
    fixed deployment, measuring what each protocol's stabilization design
    costs in metadata bytes and buys in visibility.

    All systems share the three-site geography ({!Obs.topo3}), full
    replication, the same synthetic workload and the same measurement
    window. Saturn runs its {e star} configuration (one central serializer,
    no serializer-to-serializer hops): the shootout compares metadata
    {e volume}, and the star is the configuration where Saturn's per-label
    cost is not inflated by tree relaying, mirroring the paper's
    single-sequencer deployment point.

    Every number is a pure function of the seed (simulated time
    throughout), so the emitted JSON is byte-reproducible and CI both
    double-runs it and gates it against the checked-in
    [BENCH_shootout.json] with [saturn-cli bench-check]. *)

type row = {
  system : string;
  ops : int;  (** client operations completed in the measurement window *)
  throughput : float;  (** ops per simulated second *)
  vis_mean_ms : float;  (** remote-update visibility latency, mean *)
  vis_p50_ms : float;
  vis_p99_ms : float;
  attached_bytes : int;  (** causal metadata shipped with update payloads *)
  stabilization_bytes : int;
      (** dedicated stabilization traffic (sequencer announcements, matrix
          row broadcasts) *)
  heartbeat_bytes : int;  (** idle-channel heartbeats *)
  bytes_per_op : float;
      (** (attached + stabilization + heartbeat) / completed ops — the
          headline metadata-cost figure *)
}

val systems : string list
(** Fixed run order, cheapest metadata family first:
    [eventual; gentlerain; eunomia; saturn; okapi; cure; orbe; cops]. *)

val run_system : ?seed:int -> string -> row
(** One system by name. @raise Invalid_argument outside {!systems}. *)

val print : row list -> unit
(** The results table plus the ordering verdict, on stdout. *)

val to_json : seed:int -> row list -> string
(** The [saturn-bench-shootout/1] document: one ["tiers"] entry per
    system, every field under ["det"] (there is no wall-clock section —
    the whole run is simulated time), so [saturn-cli bench-check] gates
    every field and a double run is byte-identical. *)
