(* Chrome trace-event ("catapult") JSON export: openable in Perfetto or
   chrome://tracing. Two processes — pid 1 groups datacenter tracks, pid 2
   serializer tracks — with one thread per site/serializer. Matched spans
   become "X" (complete) events; a few point events ride along as "i"
   (instant) marks for orientation. Timestamps are already µs, the unit
   Chrome expects. *)

let sites_pid = 1
let serializers_pid = 2

(* which track a span is drawn on *)
let track (s : Sim.Probe.span) =
  match s.sk with
  | Sim.Probe.Sk_sink_hold -> (sites_pid, s.site)
  | Sim.Probe.Sk_attach -> (serializers_pid, s.peer)
  | Sim.Probe.Sk_chain | Sim.Probe.Sk_delay_hop | Sim.Probe.Sk_hop | Sim.Probe.Sk_delay_egress
  | Sim.Probe.Sk_egress ->
    (serializers_pid, s.site)
  | Sim.Probe.Sk_proxy_order -> (sites_pid, s.site)
  | Sim.Probe.Sk_bulk -> (sites_pid, max 0 s.peer)
  | Sim.Probe.Sk_stab -> (sites_pid, s.site)

let x_event (s : Sim.Probe.span) t0 t1 =
  let pid, tid = track s in
  Printf.sprintf
    {|{"name":"%s","cat":"span","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"origin":%d,"seq":%d,"aux":%d,"site":%d,"peer":%d}}|}
    (Sim.Probe.span_kind_name s.sk)
    (Sim.Time.to_us t0)
    (Sim.Time.to_us t1 - Sim.Time.to_us t0)
    pid tid s.origin s.seq s.aux s.site s.peer

let instant_event at ev =
  let t = Sim.Time.to_us at in
  let mk name pid tid args =
    Some
      (Printf.sprintf {|{"name":"%s","cat":"probe","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{%s}}|}
         name t pid tid args)
  in
  match ev with
  | Sim.Probe.Sink_emit { dc; ts } -> mk "sink_emit" sites_pid dc (Printf.sprintf {|"ts":%d|} ts)
  | Sim.Probe.Ser_commit { ser; origin; oseq; epoch = _ } ->
    mk "ser_commit" serializers_pid ser (Printf.sprintf {|"origin":%d,"oseq":%d|} origin oseq)
  | Sim.Probe.Head_change { ser } -> mk "head_change" serializers_pid ser ""
  | Sim.Probe.Proxy_apply { dc; src_dc; ts; fallback; gear = _ } ->
    mk "proxy_apply" sites_pid dc
      (Printf.sprintf {|"src":%d,"ts":%d,"fallback":%b|} src_dc ts fallback)
  | Sim.Probe.Stab_round { dc; gst } -> mk "stab_round" sites_pid dc (Printf.sprintf {|"gst":%d|} gst)
  | _ -> None

let write probe oc =
  let spans = Journey.spans probe in
  (* metadata: name every track that appears, sorted for determinism *)
  let tids = Hashtbl.create 16 in
  List.iter (fun (s, _, _) -> Hashtbl.replace tids (track s) ()) spans;
  List.iter
    (fun (_, ev) ->
      match instant_event Sim.Time.zero ev with
      | Some _ -> (
        match ev with
        | Sim.Probe.Sink_emit { dc; _ } | Sim.Probe.Proxy_apply { dc; _ } | Sim.Probe.Stab_round { dc; _ }
          ->
          Hashtbl.replace tids (sites_pid, dc) ()
        | Sim.Probe.Ser_commit { ser; _ } | Sim.Probe.Head_change { ser } ->
          Hashtbl.replace tids (serializers_pid, ser) ()
        | _ -> ())
      | None -> ())
    (Sim.Probe.events probe);
  let tracks = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tids []) in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let push line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  push
    (Printf.sprintf {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"datacenters"}}|}
       sites_pid);
  push
    (Printf.sprintf {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"serializers"}}|}
       serializers_pid);
  List.iter
    (fun (pid, tid) ->
      let name = if pid = sites_pid then Printf.sprintf "dc%d" tid else Printf.sprintf "ser%d" tid in
      push
        (Printf.sprintf {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
           pid tid name))
    tracks;
  List.iter (fun (s, t0, t1) -> push (x_event s t0 t1)) spans;
  List.iter
    (fun (at, ev) -> match instant_event at ev with Some line -> push line | None -> ())
    (Sim.Probe.events probe);
  output_string oc {|{"traceEvents":[
|};
  Buffer.output_buffer oc buf;
  output_string oc {|
],"displayTimeUnit":"ms"}
|}

let write_file probe ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write probe oc)
