(** Chrome trace-event (catapult) JSON export.

    Renders a kept probe trace as a [{"traceEvents":[...]}] document that
    Perfetto ([ui.perfetto.dev]) and [chrome://tracing] open directly:
    matched {!Sim.Probe.span}s become complete ("X") slices and key point
    events become instant marks. Tracks are grouped into two processes —
    pid 1 "datacenters" with one thread per site ([dc0], [dc1], …) and
    pid 2 "serializers" with one thread per serializer ([ser0], …) — so a
    label's life reads left to right across sink hold, chain, hops and
    the destination proxy. Output is deterministic for a deterministic
    trace. *)

val write : Sim.Probe.t -> out_channel -> unit
(** @raise Invalid_argument if the probe was created with [~keep:false]. *)

val write_file : Sim.Probe.t -> path:string -> unit
