(** Measurement collection: remote-update visibility latency and windowed
    throughput, matching the paper's methodology (§7: origin apply time vs
    destination visibility time; first and last part of each run ignored). *)

type t

val create :
  ?bulk_factor:float ->
  ?registry:Stats.Registry.t ->
  Sim.Engine.t ->
  topo:Sim.Topology.t ->
  dc_sites:Sim.Topology.site array ->
  t
(** [bulk_factor] scales the optimal (bulk) latency used for the
    extra-visibility computation; default 1.0. [registry] receives the
    windowed visibility counter as [metrics.visible_in_window]; a private
    registry is created when omitted. *)

val set_window : t -> start_at:Sim.Time.t -> end_at:Sim.Time.t -> unit
(** Only observations inside the window are recorded. *)

val in_window : t -> bool

val on_visible :
  t -> dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit
(** Hook to plug into a system's visibility callback. Records the raw
    visibility latency and the extra latency over the bulk ("optimal")
    latency for the (origin, destination) pair. *)

val visibility : t -> Stats.Sample.t
(** Raw remote-update visibility latencies, milliseconds. *)

val extra_visibility : t -> Stats.Sample.t
(** Visibility minus optimal (bulk) latency, milliseconds. *)

val pair_visibility : t -> origin:int -> dest:int -> Stats.Sample.t
(** Per-pair raw visibility latencies (for the CDF figures). *)

val visible_count : t -> int

val subscribe :
  t -> (dc:int -> key:int -> origin_dc:int -> origin_time:Sim.Time.t -> value:Kvstore.Value.t -> unit) -> unit
(** Adds an observer invoked on every visibility event, regardless of the
    measurement window (used by the consistency-oracle tests). *)
