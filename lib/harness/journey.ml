type segment =
  | Sink_hold
  | Attach
  | Chain
  | Delay_hop
  | Hop
  | Delay_egress
  | Egress
  | Proxy_order

let segments =
  [ Sink_hold; Attach; Chain; Delay_hop; Hop; Delay_egress; Egress; Proxy_order ]

let segment_name = function
  | Sink_hold -> "sink_hold"
  | Attach -> "attach"
  | Chain -> "chain"
  | Delay_hop -> "delay_hop"
  | Hop -> "hop"
  | Delay_egress -> "delay_egress"
  | Egress -> "egress"
  | Proxy_order -> "proxy_order"

type journey = {
  origin : int;
  oseq : int;
  dst : int;
  visibility_us : int;
  total_us : int;
  parts : (segment * int) list;
  path : int list;
}

type seg_stat = { segment : segment; journeys : int; total_us : int; p50_ms : float; p99_ms : float }

type report = {
  journeys : journey list;
  fallback_applied : int;
  incomplete : int;
  mismatches : string list;
  per_segment : seg_stat list;
}

let require_events probe =
  let events = Sim.Probe.events probe in
  if events = [] && Sim.Probe.count probe > 0 then
    invalid_arg "Journey.analyze: probe created with ~keep:false";
  events

(* matched (span, begin, end) triples, in end-event order: deterministic
   because the underlying trace is *)
let spans probe =
  let opens = Hashtbl.create 1024 in
  let out = ref [] in
  List.iter
    (fun (at, ev) ->
      match ev with
      | Sim.Probe.Span_begin s -> if not (Hashtbl.mem opens s) then Hashtbl.replace opens s at
      | Sim.Probe.Span_end s -> (
        match Hashtbl.find_opt opens s with
        | Some t0 ->
          Hashtbl.remove opens s;
          out := (s, t0, at) :: !out
        | None -> ())
      | _ -> ())
    (require_events probe);
  List.rev !out

let analyze probe =
  let events = require_events probe in
  (* ---- pass 1: matched span intervals + join/apply points --------------- *)
  let opens = Hashtbl.create 1024 in
  (* secondary indexes over matched intervals, in µs. uid-keyed spans are
     keyed (inst, origin, oseq, ...); lid-keyed spans (origin, ts, gear, ...) *)
  let sink = Hashtbl.create 1024 in (* lid -> iv *)
  let attach = Hashtbl.create 1024 in (* uid -> (dc, s0, iv) *)
  let chain = Hashtbl.create 1024 in (* uid * ser -> iv *)
  let delay_hop = Hashtbl.create 64 in (* uid * (from, to) -> iv *)
  let hop_into = Hashtbl.create 1024 in (* uid * to -> (from, iv) *)
  let delay_eg = Hashtbl.create 64 in (* uid * (ser, dst) -> iv *)
  let egress = Hashtbl.create 1024 in (* lid * dst -> (ser, iv) *)
  let proxy = Hashtbl.create 1024 in (* lid * dst -> iv *)
  let forwards = ref [] in (* (inst, origin, oseq, gear, ts) *)
  let applied = Hashtbl.create 1024 in (* lid * dst -> fallback *)
  let record (s : Sim.Probe.span) iv =
    let open Sim.Probe in
    match s.sk with
    | Sk_sink_hold -> Hashtbl.replace sink (s.origin, s.seq, s.aux) iv
    | Sk_attach -> Hashtbl.replace attach (s.aux, s.origin, s.seq) (s.site, s.peer, iv)
    | Sk_chain -> Hashtbl.replace chain (s.aux, s.origin, s.seq, s.site) iv
    | Sk_delay_hop -> Hashtbl.replace delay_hop (s.aux, s.origin, s.seq, s.site, s.peer) iv
    | Sk_hop -> Hashtbl.replace hop_into (s.aux, s.origin, s.seq, s.peer) (s.site, iv)
    | Sk_delay_egress -> Hashtbl.replace delay_eg (s.aux, s.origin, s.seq, s.site, s.peer) iv
    | Sk_egress -> Hashtbl.replace egress (s.origin, s.seq, s.aux, s.peer) (s.site, iv)
    | Sk_proxy_order -> Hashtbl.replace proxy (s.origin, s.seq, s.aux, s.site) iv
    | Sk_bulk | Sk_stab -> ()
  in
  List.iter
    (fun (at, ev) ->
      match ev with
      | Sim.Probe.Span_begin s -> if not (Hashtbl.mem opens s) then Hashtbl.replace opens s at
      | Sim.Probe.Span_end s -> (
        match Hashtbl.find_opt opens s with
        | Some t0 ->
          Hashtbl.remove opens s;
          record s (Sim.Time.to_us t0, Sim.Time.to_us at)
        | None -> ())
      | Sim.Probe.Label_forward { dc; gear; ts; oseq; inst; epoch = _ } ->
        if oseq >= 0 then forwards := (inst, dc, oseq, gear, ts) :: !forwards
      | Sim.Probe.Proxy_apply { dc; src_dc; gear; ts; fallback } ->
        if not (Hashtbl.mem applied (src_dc, ts, gear, dc)) then
          Hashtbl.replace applied (src_dc, ts, gear, dc) fallback
      | _ -> ())
    events;
  (* destination sets per lid, from both apply events and egress spans (a
     label can be in flight toward a destination it never reached) *)
  let dsts_of = Hashtbl.create 1024 in
  let add_dst lid dst =
    let cur = Option.value ~default:[] (Hashtbl.find_opt dsts_of lid) in
    if not (List.mem dst cur) then Hashtbl.replace dsts_of lid (dst :: cur)
  in
  (* lint: allow unordered-iteration — builds an intermediate set; the only
     consumer sorts each destination list before walking it (pass 2 below) *)
  Hashtbl.iter (fun (o, ts, g, dst) _ -> add_dst (o, ts, g) dst) applied;
  (* lint: allow unordered-iteration — same set as above; order cannot escape *)
  Hashtbl.iter (fun (o, ts, g, dst) _ -> add_dst (o, ts, g) dst) egress;
  (* ---- pass 2: one journey per (forwarded label, destination) ----------- *)
  let journeys = ref [] in
  let fallback_applied = ref 0 in
  let incomplete = ref 0 in
  let mismatches = ref [] in
  let dur (a, b) = b - a in
  List.iter
    (fun (inst, origin, oseq, gear, ts) ->
      let lid = (origin, ts, gear) in
      let who dst = Printf.sprintf "dc%d#%d -> dc%d" origin oseq dst in
      List.iter
        (fun dst ->
          match Hashtbl.find_opt applied (origin, ts, gear, dst) with
          | Some true -> incr fallback_applied
          | None -> incr incomplete
          | Some false -> (
            let missing what = mismatches := Printf.sprintf "%s: missing %s span" (who dst) what :: !mismatches in
            match
              ( Hashtbl.find_opt sink lid,
                Hashtbl.find_opt attach (inst, origin, oseq),
                Hashtbl.find_opt egress (origin, ts, gear, dst),
                Hashtbl.find_opt proxy (origin, ts, gear, dst) )
            with
            | None, _, _, _ -> missing "sink_hold"
            | _, None, _, _ -> missing "attach"
            | _, _, None, _ -> missing "egress"
            | _, _, _, None -> missing "proxy_order"
            | Some iv_sink, Some (_dc, s0, iv_attach), Some (s_last, iv_egress), Some iv_proxy ->
              (* walk the hop spans backward from the last serializer to the
                 attach serializer to recover the tree path *)
              let rec back s acc steps =
                if s = s0 then Some acc
                else if steps > 128 then None
                else
                  match Hashtbl.find_opt hop_into (inst, origin, oseq, s) with
                  | Some (from, iv) -> back from ((from, s, iv) :: acc) (steps + 1)
                  | None -> None
              in
              (match back s_last [] 0 with
              | None -> missing (Printf.sprintf "hop path into s%d" s_last)
              | Some edges ->
                let parts = ref [] in
                let ok = ref true in
                let part seg us = parts := (seg, us) :: !parts in
                part Sink_hold (dur iv_sink);
                part Attach (dur iv_attach);
                (match Hashtbl.find_opt chain (inst, origin, oseq, s0) with
                | Some iv -> part Chain (dur iv)
                | None ->
                  ok := false;
                  missing (Printf.sprintf "chain@s%d" s0));
                List.iter
                  (fun (a, b, iv_hop) ->
                    (match Hashtbl.find_opt delay_hop (inst, origin, oseq, a, b) with
                    | Some iv -> part Delay_hop (dur iv)
                    | None -> () (* δ = 0: no span, no time *));
                    part Hop (dur iv_hop);
                    match Hashtbl.find_opt chain (inst, origin, oseq, b) with
                    | Some iv -> part Chain (dur iv)
                    | None ->
                      ok := false;
                      missing (Printf.sprintf "chain@s%d" b))
                  edges;
                (match Hashtbl.find_opt delay_eg (inst, origin, oseq, s_last, dst) with
                | Some iv -> part Delay_egress (dur iv)
                | None -> ());
                part Egress (dur iv_egress);
                part Proxy_order (dur iv_proxy);
                if !ok then begin
                  let parts = List.rev !parts in
                  let total_us = List.fold_left (fun acc (_, us) -> acc + us) 0 parts in
                  let visibility_us = snd iv_proxy - fst iv_sink in
                  if total_us <> visibility_us then
                    mismatches :=
                      Printf.sprintf "%s: segments sum %dus, visibility %dus" (who dst) total_us
                        visibility_us
                      :: !mismatches;
                  let path = s0 :: List.map (fun (_, b, _) -> b) edges in
                  journeys :=
                    { origin; oseq; dst; visibility_us; total_us; parts; path } :: !journeys
                end)))
        (List.sort compare (Option.value ~default:[] (Hashtbl.find_opt dsts_of lid))))
    (List.sort compare !forwards);
  let journeys = List.rev !journeys in
  (* ---- per-segment aggregation ------------------------------------------ *)
  let per_segment =
    List.map
      (fun seg ->
        (* log-bucketed µs: a 30 µs chain commit and a 40 ms hop resolve
           equally well, where linear ms buckets flattened the former *)
        let hist = Stats.Hdr.create () in
        let n = ref 0 and total = ref 0 in
        List.iter
          (fun j ->
            let us = List.fold_left (fun acc (s, us) -> if s = seg then acc + us else acc) 0 j.parts in
            if List.exists (fun (s, _) -> s = seg) j.parts then begin
              incr n;
              total := !total + us;
              Stats.Hdr.add hist us
            end)
          journeys;
        {
          segment = seg;
          journeys = !n;
          total_us = !total;
          p50_ms = (if !n = 0 then 0. else Stats.Hdr.percentile hist 50. /. 1000.);
          p99_ms = (if !n = 0 then 0. else Stats.Hdr.percentile hist 99. /. 1000.);
        })
      segments
  in
  {
    journeys;
    fallback_applied = !fallback_applied;
    incomplete = !incomplete;
    mismatches = List.rev !mismatches;
    per_segment;
  }

(* ---- rendering ---------------------------------------------------------- *)

let table r =
  let tbl =
    Stats.Table.create
      ~title:
        (Printf.sprintf "visibility-latency decomposition (%d journeys, %d fallback, %d in flight)"
           (List.length r.journeys) r.fallback_applied r.incomplete)
      ~columns:[ "segment"; "journeys"; "total ms"; "share"; "p50 ms"; "p99 ms"; "" ]
  in
  let grand = List.fold_left (fun acc s -> acc + s.total_us) 0 r.per_segment in
  List.iter
    (fun s ->
      let share = if grand = 0 then 0. else 100. *. float_of_int s.total_us /. float_of_int grand in
      let bar = String.make (int_of_float (share /. 2.5)) '#' in
      Stats.Table.add_row tbl
        [
          segment_name s.segment;
          string_of_int s.journeys;
          Printf.sprintf "%.1f" (float_of_int s.total_us /. 1000.);
          Printf.sprintf "%.1f%%" share;
          (if s.journeys = 0 then "-" else Printf.sprintf "%.1f" s.p50_ms);
          (if s.journeys = 0 then "-" else Printf.sprintf "%.1f" s.p99_ms);
          bar;
        ])
    r.per_segment;
  tbl

let check r = match r.mismatches with [] -> Ok () | ms -> Error ms
