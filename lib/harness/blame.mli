(** Tail-latency blame: per-journey optimality-gap attribution.

    {!Journey} tells you where a label's visibility latency went;  this
    module tells you which part of it was {e avoidable}. For every
    complete journey the optimal visibility is the shortest bulk path
    from origin to destination ({!optimal_matrix} — Floyd–Warshall over
    the datacenter-to-datacenter bulk latencies, so a geography that
    violates the triangle inequality still gets the true floor, the
    paper's "deviation from optimal" baseline). The gap

    {[ gap_us = visibility_us - optimal_us ]}

    is then attributed to five {!part}s that {b sum to it exactly}:
    sink hold, serializer chain time, configured δ-delays, proxy
    ordering wait, and [Transit_excess] — the physical route's cost
    (attach + hops + egress) beyond the shortest path, i.e. detours the
    tree takes off the optimal route. The tiling inherits exactness from
    Journey's segment tiling by construction; {!check} fails (and CI
    with it) if any journey's parts miss its gap.

    [Transit_excess] is the one signed part: a direct tree edge can beat
    a relayed shortest path only when they coincide (then it is 0), but
    measurement of the same link under load can make individual journeys
    land a few µs under the static matrix — negative excess is real
    signal (the matrix is conservative), kept so the sum stays exact.

    Beyond the per-part table the report ranks {e culprits}: concrete
    edges, serializers, sinks and proxies ("ser1", "delta.s0->s1",
    "route.dc0->dc2"), scored by how much gap they contributed to the
    {b tail} — the slowest tenth of journeys by gap. That is the
    question an operator actually asks: not "where does time go on
    average" but "what do the p99 stragglers have in common". *)

type part = Sink_hold | Serializer | Delta | Proxy_order | Transit_excess

val parts : part list
(** In presentation order; [per_part] below has one entry per element. *)

val part_name : part -> string

type blamed = {
  j : Journey.journey;
  optimal_us : int;  (** shortest bulk path origin -> dst *)
  gap_us : int;  (** [visibility_us - optimal_us]; never negative on a
                     healthy trace (visibility rides at least one full
                     bulk traversal) *)
  blame : (part * int) list;  (** one entry per {!parts} element; sums to [gap_us] *)
  culprits : (string * int) list;  (** named overhead sources, path order, µs *)
}

type part_stat = { part : part; journeys : int; total_us : int; p50_ms : float; p99_ms : float }

type culprit_stat = {
  culprit : string;
  c_journeys : int;  (** journeys the culprit appears in *)
  c_total_us : int;  (** gap µs attributed to it, all journeys *)
  c_tail_us : int;  (** gap µs attributed to it within tail journeys only *)
}

type report = {
  blamed : blamed list;  (** (origin, oseq, dst)-sorted, like [Journey.journeys] *)
  per_part : part_stat list;
  culprits : culprit_stat list;  (** ranked: tail µs desc, then total, then name *)
  gap_hist : Stats.Hdr.t;  (** gap distribution — p50/p99/p99.9 in {!render} *)
  tail_threshold_us : int;  (** smallest gap that still counts as tail *)
  optimal_total_us : int;
  mismatches : string list;  (** Journey's tiling violations plus any blame
                                 part sum that misses its gap *)
  fallback_applied : int;
  incomplete : int;
}

val optimal_matrix :
  topo:Sim.Topology.t -> dc_sites:int array -> bulk_factor:float -> int array array
(** [m.(i).(j)] is the cheapest bulk-fabric cost from datacenter [i] to
    [j] in µs: all-pairs shortest path over the direct bulk latencies
    (topology latency scaled by [bulk_factor], same rounding as the
    metrics pipeline). Diagonal is 0. *)

val analyze : optimal:int array array -> Journey.report -> report

val check : report -> (unit, string list) result
(** [Error _] when any blame tiling (or underlying journey tiling) is
    violated — the per-PR CI gate. *)

val top_k : report -> k:int -> blamed list
(** The [k] slowest journeys by gap, deterministically tie-broken by
    (origin, oseq, dst). *)

val table : report -> Stats.Table.t
(** Per-part blame table: journeys touched, total ms, share of gap,
    p50/p99 of the per-journey part time. *)

val culprit_table : report -> Stats.Table.t

val render_journey : blamed -> string
(** Two lines: the headline identity/vis/optimal/gap, then the annotated
    path with every leg's µs ("hop s0->s1 40.000 | ser1 0.031 | ..."). *)

val render : ?top:int -> report -> string
(** The blame.txt artifact: gap percentiles, both tables, the [top]
    (default 5) slowest journeys annotated, and any mismatches. *)

val gap_csv : report -> string
(** One row per journey — identity, path, visibility/optimal/gap and the
    five blame parts in µs. Sorted, header included, deterministic. *)

val digest : report -> string
(** FNV-1a 64-bit digest of {!gap_csv}, 16 hex digits — the double-run
    blame gate compares exactly this. *)

val fold_counters : report -> Stats.Registry.t -> unit
(** Register and bump the [blame.*] counters: [blame.journeys],
    [blame.gap.us], [blame.optimal.us] and one [blame.part.<name>.us]
    per part. *)
